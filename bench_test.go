package repro

// One benchmark per evaluation artifact of the paper (DESIGN.md §4). The
// Fig. 6 benches run the full pipeline at a reduced scale and report the
// headline metrics via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates every table and figure in one pass:
//
//	BenchmarkTable1FourBranch      — Table 1
//	BenchmarkFig5MessageAssignment — Figure 5
//	BenchmarkFig6aRedemptionCurve  — Figure 6(a)
//	BenchmarkFig6bPredictiveScores — Figure 6(b)
//	BenchmarkAblationFeatureSets   — A1
//	BenchmarkAblationLearners      — A2
//	BenchmarkAblationRewardPunish  — A3

import (
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/emotion"
	"repro/internal/messaging"
	"repro/internal/ranking"
	"repro/internal/scalebench"
	"repro/internal/store"
)

// benchUsers keeps the full-pipeline benches laptop-fast; cmd/spabench runs
// the same experiments at arbitrary scale.
const benchUsers = 2000

// BenchmarkTable1FourBranch regenerates Table 1 (the Four-Branch Model) and
// reports its dimensions.
func BenchmarkTable1FourBranch(b *testing.B) {
	var rows []emotion.Table1Row
	for i := 0; i < b.N; i++ {
		rows = emotion.Table1()
	}
	attrs := 0
	for _, r := range rows {
		attrs += len(r.Attributes)
	}
	b.ReportMetric(float64(len(rows)), "branches")
	b.ReportMetric(float64(attrs), "attributes")
}

// BenchmarkFig5MessageAssignment regenerates the three Figure 5 samples and
// verifies the paper's cases fire.
func BenchmarkFig5MessageAssignment(b *testing.B) {
	db := messaging.NewDB()
	var samples []messaging.Fig5Sample
	var err error
	for i := 0; i < b.N; i++ {
		samples, err = messaging.Fig5(db, "Course in Digital Marketing")
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(samples) != 3 ||
		samples[0].Case != messaging.CaseSingle ||
		samples[1].Case != messaging.CaseMultiPriority ||
		samples[2].Case != messaging.CaseMultiSensibility {
		b.Fatalf("Fig. 5 cases wrong: %+v", samples)
	}
	b.ReportMetric(3, "cases")
}

func runFig6(b *testing.B, cfg campaign.ExperimentConfig) *campaign.Fig6 {
	b.Helper()
	var fig *campaign.Fig6
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = campaign.RunExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// BenchmarkFig6aRedemptionCurve runs the end-to-end pipeline and reports the
// cumulative-redemption operating point of Figure 6(a): the paper claims
// >76 % of useful impacts at 40 % of commercial action.
func BenchmarkFig6aRedemptionCurve(b *testing.B) {
	fig := runFig6(b, campaign.DefaultExperiment(benchUsers, 7))
	b.ReportMetric(fig.CapturedAt40*100, "captured@40%")
	b.ReportMetric(fig.AUC*1000, "AUCx1000")
	var at20, at60 float64
	for _, p := range fig.Gains {
		if p.ContactedFrac > 0.19 && p.ContactedFrac < 0.21 {
			at20 = p.CapturedFrac
		}
		if p.ContactedFrac > 0.59 && p.ContactedFrac < 0.61 {
			at60 = p.CapturedFrac
		}
	}
	b.ReportMetric(at20*100, "captured@20%")
	b.ReportMetric(at60*100, "captured@60%")
}

// BenchmarkFig6bPredictiveScores reports Figure 6(b): the average
// per-campaign predictive score (paper: 21 %) and the redemption improvement
// over the untargeted process (paper: +90 %).
func BenchmarkFig6bPredictiveScores(b *testing.B) {
	fig := runFig6(b, campaign.DefaultExperiment(benchUsers, 7))
	b.ReportMetric(fig.AvgPredictiveScore*100, "avgScore%")
	b.ReportMetric(fig.RedemptionImprovement*100, "improvement%")
	b.ReportMetric(float64(fig.TotalUsefulImpacts), "impacts")
}

// BenchmarkAblationFeatureSets is A1: objective-only vs +subjective vs the
// full SPA feature set, identical learner and seeds.
func BenchmarkAblationFeatureSets(b *testing.B) {
	for _, fs := range []campaign.FeatureSet{
		campaign.ObjectiveOnly(),
		{Objective: true, Subjective: true},
		campaign.FullFeatures(),
	} {
		b.Run(fs.String(), func(b *testing.B) {
			cfg := campaign.DefaultExperiment(benchUsers, 7)
			cfg.Features = fs
			fig := runFig6(b, cfg)
			b.ReportMetric(fig.CapturedAt40*100, "captured@40%")
			b.ReportMetric(fig.AvgPredictiveScore*100, "avgScore%")
		})
	}
}

// BenchmarkAblationLearners is A2: the SVM against the 2006-era baselines on
// identical features and populations.
func BenchmarkAblationLearners(b *testing.B) {
	for _, l := range []campaign.Learner{
		campaign.LearnerSVM, campaign.LearnerSVMDual, campaign.LearnerLogistic,
		campaign.LearnerRandom, campaign.LearnerPopularity,
	} {
		b.Run(l.String(), func(b *testing.B) {
			cfg := campaign.DefaultExperiment(benchUsers, 7)
			cfg.Learner = l
			fig := runFig6(b, cfg)
			b.ReportMetric(fig.CapturedAt40*100, "captured@40%")
			b.ReportMetric(fig.AvgPredictiveScore*100, "avgScore%")
		})
	}
}

// BenchmarkAblationRewardPunish is A3: the Fig. 4 closed loop on vs frozen
// profiles during the evaluation waves.
func BenchmarkAblationRewardPunish(b *testing.B) {
	for _, update := range []bool{true, false} {
		name := "update-on"
		if !update {
			name = "update-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := campaign.DefaultExperiment(benchUsers, 7)
			cfg.UpdateSUM = update
			fig := runFig6(b, cfg)
			b.ReportMetric(fig.CapturedAt40*100, "captured@40%")
			b.ReportMetric(fig.AvgPredictiveScore*100, "avgScore%")
		})
	}
}

// BenchmarkShardedIngest measures the tentpole end to end: eight
// goroutines pushing 64-user event bursts through a durable, fsync-on SPA
// core (the workload lives in internal/scalebench, shared with spabench's
// [S1] table).
//
//   - single-mutex/unbatched is the seed architecture: one shard (the old
//     global RWMutex) and one synchronous store write — hence one fsync —
//     per updated profile.
//   - sharded/batched is this PR: 16 hash partitions processed
//     concurrently, each persisting its group of profiles as one
//     WriteBatch (group commit: one WAL record, one fsync per group).
//
// The batched path must sustain ≥ 2x the unbatched throughput from fsync
// amortization alone (64 fsyncs vs ≤ 16 per burst); on multi-core hardware
// the shard parallelism adds its own factor on top.
func BenchmarkShardedIngest(b *testing.B) {
	bursts := scalebench.MakeBursts()
	cases := []struct {
		name      string
		shards    int
		unbatched bool
	}{
		{"single-mutex-unbatched", 1, true},
		{"sharded-batched", 16, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			spa, err := core.New(core.Options{
				DataDir:         b.TempDir(),
				Store:           store.Options{SyncWrites: true},
				Shards:          c.shards,
				UnbatchedWrites: c.unbatched,
				Clock:           clock.NewSimulated(clock.Epoch),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer spa.Close()
			for u := 0; u < scalebench.Users; u++ {
				if err := spa.Register(uint64(u+1), nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			err = scalebench.RunWorkers(int64(b.N), func(i int64) error {
				_, _, err := spa.IngestEvents(bursts[i%int64(len(bursts))])
				return err
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(scalebench.EventsPerBurst), "events/op")
		})
	}
}

// BenchmarkStoreBatchPut measures the persistence half in isolation: 128
// profile-sized records per op, written as individual Puts (128 WAL
// records) versus one WriteBatch (one WAL record). The sync variants show
// the group-commit effect — 128 fsyncs vs 1 — which is where batching pays
// for its extra copy; async shows the raw framing cost.
func BenchmarkStoreBatchPut(b *testing.B) {
	const recs = 128
	value := make([]byte, 256)
	key := func(i int64) []byte { return []byte(fmt.Sprintf("sum/%016x", i)) }

	for _, sync := range []bool{false, true} {
		mode := "async"
		if sync {
			mode = "fsync"
		}
		b.Run(mode+"/single-puts", func(b *testing.B) {
			db, err := store.Open(b.TempDir(), store.Options{SyncWrites: sync})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := int64(0); j < recs; j++ {
					if err := db.Put(key(int64(i)*recs+j), value); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(mode+"/write-batch", func(b *testing.B) {
			db, err := store.Open(b.TempDir(), store.Options{SyncWrites: sync})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			var batch store.WriteBatch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Reset()
				for j := int64(0); j < recs; j++ {
					batch.Put(key(int64(i)*recs+j), value)
				}
				if err := db.Apply(&batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGainsCurveOnly isolates the Fig. 6(a) metric computation from the
// pipeline (useful when profiling the evaluation path).
func BenchmarkGainsCurveOnly(b *testing.B) {
	cfg := campaign.DefaultExperiment(benchUsers, 7)
	fig, _, err := campaign.RunExperiment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var pooled []ranking.Scored
	for _, r := range fig.PerCampaign {
		pooled = append(pooled, r.Scored...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ranking.GainsCurve(pooled, nil); err != nil {
			b.Fatal(err)
		}
	}
}
