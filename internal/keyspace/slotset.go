package keyspace

// SlotSet is a fixed bitmap over the NumSlots slots — the unit a handoff
// stream negotiates (one subscribe frame names every slot it moves) and the
// shape a node's ownership filter takes. The zero value is the empty set.
type SlotSet [NumSlots / 8]byte

// Add marks slot as a member. Out-of-range slots are ignored.
func (s *SlotSet) Add(slot int) {
	if slot < 0 || slot >= NumSlots {
		return
	}
	s[slot/8] |= 1 << (slot % 8)
}

// Has reports membership. Out-of-range slots are never members.
func (s *SlotSet) Has(slot int) bool {
	if slot < 0 || slot >= NumSlots {
		return false
	}
	return s[slot/8]&(1<<(slot%8)) != 0
}

// Count returns the number of member slots.
func (s *SlotSet) Count() int {
	n := 0
	for slot := 0; slot < NumSlots; slot++ {
		if s.Has(slot) {
			n++
		}
	}
	return n
}

// Slots lists the member slots in ascending order.
func (s *SlotSet) Slots() []int {
	out := make([]int, 0, s.Count())
	for slot := 0; slot < NumSlots; slot++ {
		if s.Has(slot) {
			out = append(out, slot)
		}
	}
	return out
}
