// Package keyspace is the single definition of how a user id maps onto the
// partitioned key space — the one function the in-process shards
// (internal/core), the cluster's slot ownership (internal/server), and the
// client-side router (internal/spaclient) must all agree on. It lives in its
// own leaf package so the client can import it without dragging in the core.
//
// The map has two levels:
//
//   - Mix64 is the splitmix64 finalizer: a fixed bijective bit-mixer that
//     spreads sequential user ids (the common registration pattern) evenly
//     across the low bits. It is part of the wire contract — changing it
//     reshuffles every slot and orphans every persisted topology.
//   - Partition masks the mixed id down to one of NumSlots fixed slots.
//     Slots are the unit of cluster ownership and of shard handoff: a
//     topology maps each slot to an owning node, and rebalancing moves whole
//     slots, never individual users.
//
// NumSlots is a power of two, and so is every core shard count, so the two
// partitions nest: for any shard count S ≤ NumSlots, the shard index is
// Partition(id) & (S-1) — every user of a slot lives in the same core shard,
// which is what lets a handoff stream filter log records by slot without
// understanding shards (see TestPartitionNestsShards).
package keyspace

// NumSlots is the fixed cluster slot count. 256 slots over a handful of
// nodes keeps per-node ownership granular enough to balance (dozens of
// slots per node) while a full slot map still fits in one small frame
// (a 32-byte bitmap, or 256 JSON entries).
const NumSlots = 256

// slotMask selects the slot bits of a mixed id.
const slotMask = NumSlots - 1

// Mix64 is the splitmix64 finalizer — the fixed bit-mixer under both the
// core's shard index and the cluster's slot index.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Partition maps a user id to its slot in [0, NumSlots).
func Partition(userID uint64) int {
	return int(Mix64(userID) & slotMask)
}

// PartitionN maps a user id onto n partitions, where n must be a power of
// two (every core shard count is). For n ≤ NumSlots the result is derivable
// from Partition alone: PartitionN(id, n) == Partition(id) & (n-1).
func PartitionN(userID uint64, n int) int {
	return int(Mix64(userID) & uint64(n-1))
}
