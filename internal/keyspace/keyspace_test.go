package keyspace

import (
	"math/rand"
	"testing"
)

// TestPartitionNestsShards pins the nesting property the cluster relies on:
// for any power-of-two partition count n ≤ NumSlots, the n-way partition is
// the slot masked down — so all users of one slot land in one core shard,
// and a handoff can move a slot by filtering records per user id.
func TestPartitionNestsShards(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 4, 16, 64, 128, 256} {
		for i := 0; i < 4096; i++ {
			id := rng.Uint64()
			if got, want := PartitionN(id, n), Partition(id)&(n-1); got != want {
				t.Fatalf("PartitionN(%d, %d) = %d, want Partition&mask = %d", id, n, got, want)
			}
		}
	}
}

// TestPartitionRange pins the slot domain and that sequential ids — the
// registration pattern — spread over many slots instead of clustering.
func TestPartitionRange(t *testing.T) {
	seen := make(map[int]bool)
	for id := uint64(1); id <= 4096; id++ {
		s := Partition(id)
		if s < 0 || s >= NumSlots {
			t.Fatalf("Partition(%d) = %d outside [0, %d)", id, s, NumSlots)
		}
		seen[s] = true
	}
	if len(seen) < NumSlots*9/10 {
		t.Fatalf("4096 sequential ids hit only %d of %d slots", len(seen), NumSlots)
	}
}

// TestMix64Fixed pins the mixer's exact algorithm: it is a wire contract
// (the client routes by it, topologies persist slot maps keyed by it), so
// any change must surface as a compatibility break, not pass as a refactor.
// The reference is an independent spelling of the splitmix64 finalizer.
func TestMix64Fixed(t *testing.T) {
	ref := func(h uint64) uint64 {
		h = (h ^ (h >> 33)) * 0xff51afd7ed558ccd
		h = (h ^ (h >> 33)) * 0xc4ceb9fe1a85ec53
		return h ^ (h >> 33)
	}
	rng := rand.New(rand.NewSource(7))
	for _, in := range []uint64{0, 1, 2, 12345, ^uint64(0)} {
		if got, want := Mix64(in), ref(in); got != want {
			t.Fatalf("Mix64(%#x) = %#x, want %#x", in, got, want)
		}
	}
	for i := 0; i < 1024; i++ {
		in := rng.Uint64()
		if got, want := Mix64(in), ref(in); got != want {
			t.Fatalf("Mix64(%#x) = %#x, want %#x", in, got, want)
		}
	}
}
