package colstore

import (
	"errors"
	"fmt"
)

// Predicate scans: the campaign-segmentation queries the Smart Component's
// graphical tools run ("rankings of attributes, items and users, user
// propensity", §4 component 2). A Filter is a conjunction of per-column
// range predicates evaluated column-at-a-time over the validity bitmaps, so
// a selective first predicate prunes most rows before later columns load.

// Pred is one column predicate: Min <= value <= Max. Unset bounds use
// ±infinity semantics via the Lo/Hi flags.
type Pred struct {
	Column string
	// HasLo/HasHi select which bounds apply.
	HasLo, HasHi bool
	Lo, Hi       float32
	// RequireSet, when no bounds are set, matches any non-null value.
	// (Predicates always skip null rows.)
	RequireSet bool
}

// matches reports whether v satisfies the bounds.
func (p Pred) matches(v float32) bool {
	if p.HasLo && v < p.Lo {
		return false
	}
	if p.HasHi && v > p.Hi {
		return false
	}
	return true
}

// Validate checks bound sanity.
func (p Pred) Validate() error {
	if p.Column == "" {
		return errors.New("colstore: predicate without column")
	}
	if p.HasLo && p.HasHi && p.Lo > p.Hi {
		return fmt.Errorf("colstore: predicate on %q has Lo %v > Hi %v", p.Column, p.Lo, p.Hi)
	}
	return nil
}

// Between builds a two-sided predicate.
func Between(column string, lo, hi float32) Pred {
	return Pred{Column: column, HasLo: true, Lo: lo, HasHi: true, Hi: hi}
}

// AtLeast builds a lower-bounded predicate.
func AtLeast(column string, lo float32) Pred {
	return Pred{Column: column, HasLo: true, Lo: lo}
}

// AtMost builds an upper-bounded predicate.
func AtMost(column string, hi float32) Pred {
	return Pred{Column: column, HasHi: true, Hi: hi}
}

// IsSet matches any non-null value in the column.
func IsSet(column string) Pred {
	return Pred{Column: column, RequireSet: true}
}

// Filter returns the row ordinals satisfying every predicate, ascending.
// Rows null in any predicate column are excluded (three-valued logic
// collapses to false, like SQL WHERE).
func (m *Matrix) Filter(preds ...Pred) ([]int, error) {
	if len(preds) == 0 {
		return nil, errors.New("colstore: no predicates")
	}
	cols := make([]*Column, len(preds))
	for i, p := range preds {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		c, err := m.Column(p.Column)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	// Drive the scan from the most selective (lowest-density) column.
	drive := 0
	for i := 1; i < len(cols); i++ {
		if cols[i].Density() < cols[drive].Density() {
			drive = i
		}
	}
	var out []int
	cols[drive].ForEachSet(func(row int, v float32) {
		if !preds[drive].matches(v) {
			return
		}
		for i := range preds {
			if i == drive {
				continue
			}
			w, ok := cols[i].Get(row)
			if !ok || !preds[i].matches(w) {
				return
			}
		}
		out = append(out, row)
	})
	return out, nil
}

// Count returns how many rows satisfy the predicates, without
// materializing them.
func (m *Matrix) Count(preds ...Pred) (int, error) {
	rows, err := m.Filter(preds...)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Aggregate computes Stats over the named column restricted to the rows
// matching the predicates — the per-segment summary behind "classifications,
// rankings of attributes".
func (m *Matrix) Aggregate(column string, preds ...Pred) (Stats, error) {
	target, err := m.Column(column)
	if err != nil {
		return Stats{}, err
	}
	rows, err := m.Filter(preds...)
	if err != nil {
		return Stats{}, err
	}
	sub := New(len(rows))
	c, _ := sub.AddColumn("agg")
	for i, row := range rows {
		if v, ok := target.Get(row); ok {
			c.Set(i, v)
		}
	}
	return c.Stats(), nil
}
