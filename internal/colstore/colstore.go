// Package colstore implements the columnar attribute matrix that backs SPA's
// Smart Component scan path. Campaign scoring evaluates a linear model over a
// handful of the 75 attributes for every one of millions of users; a
// row-oriented profile store would drag the other 70 columns through the
// cache on every scan. The column store keeps one float32 slice per
// attribute plus a validity bitmap (attributes discovered gradually by the
// EIT are null until their first activation — the paper's sparsity problem).
package colstore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// ErrNoColumn is returned when a named column does not exist.
var ErrNoColumn = errors.New("colstore: no such column")

// Matrix is a resizable set of named float32 columns over a fixed row
// universe (row = user ordinal). Safe for concurrent reads; writes serialize
// internally.
type Matrix struct {
	mu    sync.RWMutex
	rows  int
	names []string
	byIdx []*Column
	byKey map[string]int
}

// Column is a single attribute: values plus a null bitmap.
type Column struct {
	Name   string
	values []float32
	valid  []uint64 // bitmap, 1 = value present
	nSet   int
}

// New creates a matrix with the given fixed row count.
func New(rows int) *Matrix {
	if rows < 0 {
		panic("colstore: negative row count")
	}
	return &Matrix{rows: rows, byKey: make(map[string]int)}
}

// Rows returns the row universe size.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byIdx)
}

// ColumnNames returns column names in creation order.
func (m *Matrix) ColumnNames() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.names...)
}

// AddColumn creates an all-null column. Adding an existing name is an error:
// the attribute registry owns name uniqueness and a silent overwrite would
// hide a registry bug.
func (m *Matrix) AddColumn(name string) (*Column, error) {
	if name == "" {
		return nil, errors.New("colstore: empty column name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byKey[name]; ok {
		return nil, fmt.Errorf("colstore: column %q already exists", name)
	}
	c := &Column{
		Name:   name,
		values: make([]float32, m.rows),
		valid:  make([]uint64, (m.rows+63)/64),
	}
	m.byKey[name] = len(m.byIdx)
	m.byIdx = append(m.byIdx, c)
	m.names = append(m.names, name)
	return c, nil
}

// Column returns the named column.
func (m *Matrix) Column(name string) (*Column, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i, ok := m.byKey[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, name)
	}
	return m.byIdx[i], nil
}

// MustColumn is Column for callers that have already validated the name.
func (m *Matrix) MustColumn(name string) *Column {
	c, err := m.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Set stores a value at row.
func (c *Column) Set(row int, v float32) {
	if row < 0 || row >= len(c.values) {
		panic(fmt.Sprintf("colstore: row %d out of range [0,%d)", row, len(c.values)))
	}
	word, bit := row/64, uint(row%64)
	if c.valid[word]&(1<<bit) == 0 {
		c.valid[word] |= 1 << bit
		c.nSet++
	}
	c.values[row] = v
}

// Clear nulls the value at row.
func (c *Column) Clear(row int) {
	word, bit := row/64, uint(row%64)
	if c.valid[word]&(1<<bit) != 0 {
		c.valid[word] &^= 1 << bit
		c.nSet--
		c.values[row] = 0
	}
}

// Get returns the value at row and whether it is set.
func (c *Column) Get(row int) (float32, bool) {
	if row < 0 || row >= len(c.values) {
		return 0, false
	}
	word, bit := row/64, uint(row%64)
	if c.valid[word]&(1<<bit) == 0 {
		return 0, false
	}
	return c.values[row], true
}

// GetOr returns the value at row or def when null.
func (c *Column) GetOr(row int, def float32) float32 {
	if v, ok := c.Get(row); ok {
		return v
	}
	return def
}

// Len returns the row count.
func (c *Column) Len() int { return len(c.values) }

// CountSet returns how many rows have values.
func (c *Column) CountSet() int { return c.nSet }

// Density is the fraction of non-null rows — the paper's sparsity measure.
func (c *Column) Density() float64 {
	if len(c.values) == 0 {
		return 0
	}
	return float64(c.nSet) / float64(len(c.values))
}

// Stats summarizes the non-null values of a column.
type Stats struct {
	Count          int
	Mean, Std      float64
	Min, Max       float64
	NullCount      int
	DensityPercent float64
}

// Stats computes summary statistics over non-null rows in one pass.
func (c *Column) Stats() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumsq float64
	for i, v := range c.values {
		word, bit := i/64, uint(i%64)
		if c.valid[word]&(1<<bit) == 0 {
			continue
		}
		f := float64(v)
		s.Count++
		sum += f
		sumsq += f * f
		if f < s.Min {
			s.Min = f
		}
		if f > s.Max {
			s.Max = f
		}
	}
	s.NullCount = len(c.values) - s.Count
	if s.Count > 0 {
		s.Mean = sum / float64(s.Count)
		variance := sumsq/float64(s.Count) - s.Mean*s.Mean
		if variance < 0 {
			variance = 0
		}
		s.Std = math.Sqrt(variance)
		s.DensityPercent = 100 * float64(s.Count) / float64(len(c.values))
	} else {
		s.Min, s.Max = 0, 0
	}
	return s
}

// ForEachSet calls fn for every non-null row in ascending order, skipping
// whole 64-row words that are entirely null.
func (c *Column) ForEachSet(fn func(row int, v float32)) {
	for w, word := range c.valid {
		if word == 0 {
			continue
		}
		base := w * 64
		for word != 0 {
			bit := trailingZeros64(word)
			row := base + bit
			fn(row, c.values[row])
			word &= word - 1
		}
	}
}

func trailingZeros64(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// GatherRow copies the values of the named columns at row into dst (which is
// allocated when nil), using def for nulls. This is the row-materialization
// step feeding a model's feature vector.
func (m *Matrix) GatherRow(row int, cols []string, def float32, dst []float32) ([]float32, error) {
	if dst == nil {
		dst = make([]float32, len(cols))
	}
	if len(dst) != len(cols) {
		return nil, errors.New("colstore: dst length mismatch")
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i, name := range cols {
		idx, ok := m.byKey[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoColumn, name)
		}
		dst[i] = m.byIdx[idx].GetOr(row, def)
	}
	return dst, nil
}

// TopRows returns the k row ordinals with the largest values in the named
// column (nulls excluded), descending. Ties break toward lower row numbers
// so the result is deterministic.
func (m *Matrix) TopRows(name string, k int) ([]int, error) {
	c, err := m.Column(name)
	if err != nil {
		return nil, err
	}
	type rv struct {
		row int
		v   float32
	}
	all := make([]rv, 0, c.nSet)
	c.ForEachSet(func(row int, v float32) { all = append(all, rv{row, v}) })
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].row < all[j].row
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].row
	}
	return out, nil
}

// Normalize rescales the column's non-null values to zero mean, unit
// variance in place and returns the (mean, std) used, enabling the same
// transform on future values. Constant columns get std 1.
func (c *Column) Normalize() (mean, std float64) {
	s := c.Stats()
	mean, std = s.Mean, s.Std
	if std == 0 {
		std = 1
	}
	for w, word := range c.valid {
		if word == 0 {
			continue
		}
		base := w * 64
		for word != 0 {
			bit := trailingZeros64(word)
			row := base + bit
			c.values[row] = float32((float64(c.values[row]) - mean) / std)
			word &= word - 1
		}
	}
	return mean, std
}
