package colstore

import (
	"testing"
	"testing/quick"
)

func filterFixture(t *testing.T) *Matrix {
	t.Helper()
	m := New(10)
	age, _ := m.AddColumn("age")
	score, _ := m.AddColumn("score")
	for i := 0; i < 10; i++ {
		age.Set(i, float32(20+i*5)) // 20,25,...,65
	}
	// score set only on even rows: 0.0, 0.2, ..., 0.8.
	for i := 0; i < 10; i += 2 {
		score.Set(i, float32(i)/10)
	}
	return m
}

func TestFilterSingle(t *testing.T) {
	m := filterFixture(t)
	rows, err := m.Filter(Between("age", 30, 45))
	if err != nil {
		t.Fatal(err)
	}
	// ages 30,35,40,45 → rows 2..5.
	want := []int{2, 3, 4, 5}
	if len(rows) != len(want) {
		t.Fatalf("rows %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows %v want %v", rows, want)
		}
	}
}

func TestFilterConjunctionAndNulls(t *testing.T) {
	m := filterFixture(t)
	// age >= 30 AND score <= 0.6: score nulls (odd rows) are excluded.
	rows, err := m.Filter(AtLeast("age", 30), AtMost("score", 0.6))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 6}
	if len(rows) != len(want) {
		t.Fatalf("rows %v want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows %v want %v", rows, want)
		}
	}
}

func TestFilterIsSet(t *testing.T) {
	m := filterFixture(t)
	n, err := m.Count(IsSet("score"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("IsSet count %d", n)
	}
}

func TestFilterErrors(t *testing.T) {
	m := filterFixture(t)
	if _, err := m.Filter(); err == nil {
		t.Fatal("no predicates accepted")
	}
	if _, err := m.Filter(AtLeast("ghost", 1)); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := m.Filter(Between("age", 50, 40)); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := m.Filter(Pred{HasLo: true, Lo: 1}); err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestAggregate(t *testing.T) {
	m := filterFixture(t)
	// Mean score among users aged <= 40 (rows 0,2,4 have scores 0,0.2,0.4).
	st, err := m.Aggregate("score", AtMost("age", 40))
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 3 {
		t.Fatalf("aggregate count %d", st.Count)
	}
	if st.Mean < 0.19 || st.Mean > 0.21 {
		t.Fatalf("aggregate mean %v", st.Mean)
	}
}

// Property: Filter with an unbounded IsSet predicate equals ForEachSet row
// enumeration.
func TestFilterMatchesForEachSetProperty(t *testing.T) {
	f := func(mask []bool) bool {
		if len(mask) == 0 {
			return true
		}
		if len(mask) > 200 {
			mask = mask[:200]
		}
		m := New(len(mask))
		c, _ := m.AddColumn("x")
		var want []int
		for i, set := range mask {
			if set {
				c.Set(i, float32(i))
				want = append(want, i)
			}
		}
		got, err := m.Filter(IsSet("x"))
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFilter(b *testing.B) {
	m := New(100000)
	a, _ := m.AddColumn("a")
	c, _ := m.AddColumn("b")
	for i := 0; i < 100000; i++ {
		a.Set(i, float32(i%100))
		if i%3 == 0 {
			c.Set(i, float32(i%50))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Filter(Between("a", 20, 60), AtLeast("b", 10)); err != nil {
			b.Fatal(err)
		}
	}
}
