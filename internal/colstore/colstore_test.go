package colstore

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAddAndGetColumn(t *testing.T) {
	m := New(10)
	c, err := m.AddColumn("age")
	if err != nil {
		t.Fatal(err)
	}
	c.Set(3, 42)
	got, err := m.Column("age")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := got.Get(3)
	if !ok || v != 42 {
		t.Fatalf("got %v %v", v, ok)
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	m := New(5)
	if _, err := m.AddColumn("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddColumn("x"); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestEmptyNameRejected(t *testing.T) {
	m := New(5)
	if _, err := m.AddColumn(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestMissingColumn(t *testing.T) {
	m := New(5)
	if _, err := m.Column("ghost"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("want ErrNoColumn, got %v", err)
	}
}

func TestNullSemantics(t *testing.T) {
	m := New(8)
	c, _ := m.AddColumn("valence")
	if _, ok := c.Get(0); ok {
		t.Fatal("fresh column has non-null value")
	}
	c.Set(0, 1.5)
	if v, ok := c.Get(0); !ok || v != 1.5 {
		t.Fatalf("set value lost: %v %v", v, ok)
	}
	c.Clear(0)
	if _, ok := c.Get(0); ok {
		t.Fatal("cleared value still present")
	}
	if c.GetOr(0, -9) != -9 {
		t.Fatal("GetOr default not applied")
	}
}

func TestCountSetAndDensity(t *testing.T) {
	m := New(100)
	c, _ := m.AddColumn("a")
	for i := 0; i < 25; i++ {
		c.Set(i*4, float32(i))
	}
	if c.CountSet() != 25 {
		t.Fatalf("CountSet=%d", c.CountSet())
	}
	if math.Abs(c.Density()-0.25) > 1e-9 {
		t.Fatalf("Density=%v", c.Density())
	}
	// Re-setting the same row must not double count.
	c.Set(0, 7)
	if c.CountSet() != 25 {
		t.Fatalf("CountSet after overwrite=%d", c.CountSet())
	}
}

func TestStats(t *testing.T) {
	m := New(6)
	c, _ := m.AddColumn("s")
	for i, v := range []float32{2, 4, 6} {
		c.Set(i, v)
	}
	s := c.Stats()
	if s.Count != 3 || s.NullCount != 3 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("moments: %+v", s)
	}
	wantStd := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.Std-wantStd) > 1e-9 {
		t.Fatalf("std %v want %v", s.Std, wantStd)
	}
}

func TestStatsEmptyColumn(t *testing.T) {
	m := New(4)
	c, _ := m.AddColumn("e")
	s := c.Stats()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestForEachSetSkipsNulls(t *testing.T) {
	m := New(200)
	c, _ := m.AddColumn("f")
	want := map[int]float32{1: 10, 63: 20, 64: 30, 127: 40, 199: 50}
	for row, v := range want {
		c.Set(row, v)
	}
	got := map[int]float32{}
	prev := -1
	c.ForEachSet(func(row int, v float32) {
		if row <= prev {
			t.Fatalf("rows out of order: %d after %d", row, prev)
		}
		prev = row
		got[row] = v
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d rows, want %d", len(got), len(want))
	}
	for row, v := range want {
		if got[row] != v {
			t.Fatalf("row %d: got %v want %v", row, got[row], v)
		}
	}
}

func TestGatherRow(t *testing.T) {
	m := New(3)
	a, _ := m.AddColumn("a")
	b, _ := m.AddColumn("b")
	a.Set(1, 5)
	b.Set(1, 7)
	vec, err := m.GatherRow(1, []string{"b", "a"}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vec[0] != 7 || vec[1] != 5 {
		t.Fatalf("gathered %v", vec)
	}
	// Null fills default.
	vec, err = m.GatherRow(0, []string{"a", "b"}, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vec[0] != -1 || vec[1] != -1 {
		t.Fatalf("defaults %v", vec)
	}
	if _, err := m.GatherRow(0, []string{"ghost"}, 0, nil); err == nil {
		t.Fatal("gather with missing column succeeded")
	}
}

func TestTopRows(t *testing.T) {
	m := New(5)
	c, _ := m.AddColumn("score")
	c.Set(0, 0.1)
	c.Set(1, 0.9)
	c.Set(2, 0.5)
	c.Set(4, 0.9) // tie with row 1: lower row wins
	top, err := m.TopRows("score", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 || top[0] != 1 || top[1] != 4 || top[2] != 2 {
		t.Fatalf("top rows %v", top)
	}
	// k larger than available clamps.
	top, _ = m.TopRows("score", 99)
	if len(top) != 4 {
		t.Fatalf("clamped top len %d", len(top))
	}
}

func TestNormalize(t *testing.T) {
	m := New(4)
	c, _ := m.AddColumn("n")
	for i, v := range []float32{10, 20, 30, 40} {
		c.Set(i, v)
	}
	mean, std := c.Normalize()
	if mean != 25 {
		t.Fatalf("mean %v", mean)
	}
	if std <= 0 {
		t.Fatalf("std %v", std)
	}
	s := c.Stats()
	if math.Abs(s.Mean) > 1e-6 || math.Abs(s.Std-1) > 1e-6 {
		t.Fatalf("normalized stats %+v", s)
	}
}

func TestNormalizeConstantColumn(t *testing.T) {
	m := New(3)
	c, _ := m.AddColumn("const")
	for i := 0; i < 3; i++ {
		c.Set(i, 5)
	}
	_, std := c.Normalize()
	if std != 1 {
		t.Fatalf("constant column std %v, want fallback 1", std)
	}
	if v, _ := c.Get(0); v != 0 {
		t.Fatalf("constant column normalized to %v, want 0", v)
	}
}

func TestSetPanicsOutOfRange(t *testing.T) {
	m := New(2)
	c, _ := m.AddColumn("x")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Set did not panic")
		}
	}()
	c.Set(2, 1)
}

// Property: CountSet always equals the number of rows ForEachSet visits,
// under arbitrary interleavings of Set and Clear.
func TestPropertyCountMatchesIteration(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New(128)
		c, _ := m.AddColumn("p")
		for _, op := range ops {
			row := int(op) % 128
			if op&0x8000 != 0 {
				c.Clear(row)
			} else {
				c.Set(row, float32(op))
			}
		}
		visited := 0
		c.ForEachSet(func(int, float32) { visited++ })
		return visited == c.CountSet()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkColumnScan(b *testing.B) {
	m := New(100000)
	c, _ := m.AddColumn("score")
	for i := 0; i < 100000; i += 2 {
		c.Set(i, float32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		c.ForEachSet(func(_ int, v float32) { sum += float64(v) })
		_ = sum
	}
}

func BenchmarkGatherRow(b *testing.B) {
	m := New(1000)
	names := make([]string, 75)
	for i := range names {
		names[i] = "attr" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		c, _ := m.AddColumn(names[i])
		for r := 0; r < 1000; r++ {
			c.Set(r, float32(r+i))
		}
	}
	dst := make([]float32, len(names))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.GatherRow(i%1000, names, 0, dst); err != nil {
			b.Fatal(err)
		}
	}
}
