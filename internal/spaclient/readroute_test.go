package spaclient

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/server"
	"repro/internal/wire"
)

// mockPair builds a canned primary + follower for routing decisions: the
// follower serves the given replication status and both sides count the
// sensibilities reads they answer.
func mockPair(t *testing.T, st wire.ReplicationStatus) (c *Client, primaryReads, followerReads *atomic.Int64) {
	t.Helper()
	primaryReads, followerReads = new(atomic.Int64), new(atomic.Int64)
	sens := func(count *atomic.Int64) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			count.Add(1)
			json.NewEncoder(w).Encode(wire.SensibilitiesResponse{Sensibilities: map[string]float64{}})
		}
	}
	pm := http.NewServeMux()
	pm.HandleFunc("GET /v1/users/1/sensibilities", sens(primaryReads))
	primary := httptest.NewServer(pm)
	t.Cleanup(primary.Close)

	fm := http.NewServeMux()
	fm.HandleFunc("GET /v1/users/1/sensibilities", sens(followerReads))
	fm.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(st)
	})
	follower := httptest.NewServer(fm)
	t.Cleanup(follower.Close)

	return New(primary.URL, Options{ReadFrom: []string{follower.URL}, MaxStalenessWaves: 3}), primaryReads, followerReads
}

// TestReadRoutingEligibility pins the guardrails: only a streaming
// follower within the staleness bound with fresh heartbeats takes reads;
// everything else falls back to the primary.
func TestReadRoutingEligibility(t *testing.T) {
	now := time.Now().UnixNano()
	healthy := wire.ReplicationStatus{
		Role: "follower", State: "streaming", LastHeartbeatUnixNano: now,
	}
	cases := []struct {
		name         string
		status       wire.ReplicationStatus
		wantFollower bool
	}{
		{"streaming in bound", healthy, true},
		{"lag at bound", func() wire.ReplicationStatus { s := healthy; s.LagWaves = 3; return s }(), true},
		{"lag past bound", func() wire.ReplicationStatus { s := healthy; s.LagWaves = 4; return s }(), false},
		{"stalled", func() wire.ReplicationStatus { s := healthy; s.State = "stalled"; return s }(), false},
		{"not a follower", func() wire.ReplicationStatus { s := healthy; s.Role = "leader"; return s }(), false},
		{"stale heartbeat", func() wire.ReplicationStatus {
			s := healthy
			s.LastHeartbeatUnixNano = time.Now().Add(-10 * time.Second).UnixNano()
			return s
		}(), false},
		{"no heartbeat yet", func() wire.ReplicationStatus { s := healthy; s.LastHeartbeatUnixNano = 0; return s }(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, primaryReads, followerReads := mockPair(t, tc.status)
			if _, err := c.Sensibilities(1); err != nil {
				t.Fatal(err)
			}
			gotFollower := followerReads.Load() == 1 && primaryReads.Load() == 0
			gotPrimary := followerReads.Load() == 0 && primaryReads.Load() == 1
			if tc.wantFollower && !gotFollower {
				t.Fatalf("read not routed to follower (follower=%d primary=%d)", followerReads.Load(), primaryReads.Load())
			}
			if !tc.wantFollower && !gotPrimary {
				t.Fatalf("read not on primary (follower=%d primary=%d)", followerReads.Load(), primaryReads.Load())
			}
		})
	}
}

// TestReadRoutingFallbackOnError: a replica that passes the status check
// but fails the read itself must not lose the request — the primary
// answers, and the replica stops taking reads until its next poll.
func TestReadRoutingFallbackOnError(t *testing.T) {
	var primaryReads atomic.Int64
	pm := http.NewServeMux()
	pm.HandleFunc("GET /v1/users/1/sensibilities", func(w http.ResponseWriter, r *http.Request) {
		primaryReads.Add(1)
		json.NewEncoder(w).Encode(wire.SensibilitiesResponse{Sensibilities: map[string]float64{}})
	})
	primary := httptest.NewServer(pm)
	t.Cleanup(primary.Close)

	var followerReads atomic.Int64
	fm := http.NewServeMux()
	fm.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wire.ReplicationStatus{
			Role: "follower", State: "streaming", LastHeartbeatUnixNano: time.Now().UnixNano(),
		})
	})
	fm.HandleFunc("GET /v1/users/1/sensibilities", func(w http.ResponseWriter, r *http.Request) {
		followerReads.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	})
	follower := httptest.NewServer(fm)
	t.Cleanup(follower.Close)

	c := New(primary.URL, Options{ReadFrom: []string{follower.URL}})
	if _, err := c.Sensibilities(1); err != nil {
		t.Fatalf("fallback read failed: %v", err)
	}
	if primaryReads.Load() != 1 || followerReads.Load() != 1 {
		t.Fatalf("want one failed follower read + one primary answer, got follower=%d primary=%d",
			followerReads.Load(), primaryReads.Load())
	}
	// The failure benched the replica: the next read (inside the status
	// cache window) goes straight to the primary.
	if _, err := c.Sensibilities(1); err != nil {
		t.Fatal(err)
	}
	if primaryReads.Load() != 2 || followerReads.Load() != 1 {
		t.Fatalf("benched replica still took a read: follower=%d primary=%d",
			followerReads.Load(), primaryReads.Load())
	}
}

// TestReadRoutingLive runs the routing against a real leader+follower
// pair: reads land on the follower and return replicated state, writes
// stay on the leader.
func TestReadRoutingLive(t *testing.T) {
	clk := clock.NewSimulated(t0.Add(24 * time.Hour))
	spaL, err := core.New(core.Options{DataDir: t.TempDir(), Shards: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	srvL := server.New(spaL, server.Options{})
	leaderTS := httptest.NewServer(srvL)
	t.Cleanup(func() {
		leaderTS.Close()
		srvL.Close()
		spaL.Close()
	})

	// Seed the leader before the follower exists.
	seed := New(leaderTS.URL, Options{})
	if err := seed.Register(1, []float64{30, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Ingest([]lifelog.Event{click(1, 1), click(1, 2)}); err != nil {
		t.Fatal(err)
	}

	leaderAddr := strings.TrimPrefix(leaderTS.URL, "http://")
	spaF, err := core.New(core.Options{DataDir: t.TempDir(), Shards: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	srvF := server.New(spaF, server.Options{FollowerOf: leaderAddr})
	var followerReads atomic.Int64
	followerTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/sensibilities") {
			followerReads.Add(1)
		}
		srvF.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		followerTS.Close()
		srvF.Close()
		spaF.Close()
	})

	// Wait for the follower to stream and catch up to the leader.
	fprobe := New(followerTS.URL, Options{})
	lst, err := seed.ReplicationStatus()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := fprobe.ReplicationStatus()
		if err == nil && st.State == "streaming" && st.AppliedLSN >= lst.AppliedLSN && st.LastHeartbeatUnixNano > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v (err %v)", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	c := New(leaderTS.URL, Options{ReadFrom: []string{followerTS.URL}, MaxStalenessWaves: 64})
	sens, err := c.Sensibilities(1)
	if err != nil {
		t.Fatalf("routed read: %v", err)
	}
	if len(sens) == 0 {
		t.Fatal("routed read returned no sensibilities")
	}
	if followerReads.Load() == 0 {
		t.Fatal("read was not routed to the follower")
	}

	// Writes bypass routing entirely and land on the leader.
	if err := c.Register(2, []float64{30, 1}); err != nil {
		t.Fatalf("write through routing client: %v", err)
	}
}
