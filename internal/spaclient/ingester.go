package spaclient

import (
	"errors"
	"sync"
	"time"

	"repro/internal/lifelog"
	"repro/internal/wire"
)

// Ingester batches events client-side before they ever reach the wire: Add
// buffers, and a full buffer (or the flush interval) ships one Ingest
// request — so a chatty producer pays one HTTP round-trip per BatchSize
// events, and the server's coalescer then merges those requests across
// clients. 503 admission-control rejections are retried with the server's
// Retry-After backoff (Close interrupts the wait: the throttled batch gets
// one immediate final attempt instead of stalling shutdown); other errors
// are surfaced through OnError and the batch is dropped (the wire reported
// it unusable, not busy).
//
// Add and Flush are safe for concurrent use, but per-user event order is
// only preserved if each user's events come from one goroutine — the same
// contract the LifeLog pipeline has everywhere.
type Ingester struct {
	// BatchSize triggers a flush when the buffer reaches it (default 256).
	BatchSize int
	// FlushEvery ships a partial buffer at this cadence (default 1 s,
	// 0 keeps the default; set Manual to disable the background flusher).
	FlushEvery time.Duration
	// Manual disables the background flusher: only Add-overflow and
	// explicit Flush/Close ship events.
	Manual bool
	// MaxRetries bounds 503 retries per batch (default 3).
	MaxRetries int
	// OnError observes batches the server refused (after retries) or
	// failed; nil drops them silently. Called without internal locks held.
	OnError func(events []lifelog.Event, err error)

	c *Client

	// sendMu serializes take-and-ship: an Add-overflow flush and a timer
	// flush must not race each other onto the wire, or one user's batches
	// could arrive reordered and poison the merged server-side stream.
	sendMu sync.Mutex

	mu      sync.Mutex
	buf     []lifelog.Event
	stats   IngesterStats
	stopped bool
	stopCh  chan struct{}
	done    chan struct{}

	// closeOnce runs the shutdown sequence (stop flusher, ship the tail)
	// exactly once; concurrent Close calls park inside Do until it has
	// finished, so *every* returned Close implies the tail is on the wire.
	closeOnce sync.Once
}

// IngesterStats counts an Ingester's lifetime traffic.
type IngesterStats struct {
	Added     int // events accepted by Add
	Flushes   int // Ingest requests shipped
	Processed int // server-confirmed processed events
	Skipped   int // server-reported unknown-user events
	Retries   int // 503 retries
	Dropped   int // events abandoned after errors
}

// NewIngester creates a batching ingester over an existing client. Close it
// to flush the tail.
func NewIngester(c *Client, configure ...func(*Ingester)) *Ingester {
	in := &Ingester{
		BatchSize:  256,
		FlushEvery: time.Second,
		MaxRetries: 3,
		c:          c,
		stopCh:     make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, f := range configure {
		f(in)
	}
	if in.BatchSize <= 0 {
		in.BatchSize = 256
	}
	if in.FlushEvery <= 0 {
		in.FlushEvery = time.Second
	}
	if !in.Manual {
		go in.loop()
	} else {
		close(in.done)
	}
	return in
}

// Add buffers one event, flushing synchronously when the buffer fills.
func (in *Ingester) Add(e lifelog.Event) error {
	in.mu.Lock()
	if in.stopped {
		in.mu.Unlock()
		return errors.New("spaclient: ingester closed")
	}
	in.buf = append(in.buf, e)
	in.stats.Added++
	full := len(in.buf) >= in.BatchSize
	in.mu.Unlock()
	if full {
		in.Flush()
	}
	return nil
}

// Flush ships whatever is buffered now. Detaching the buffer and sending
// it happen atomically under sendMu, so concurrent flushes (overflow vs
// timer vs Close) ship batches in the order they were cut.
func (in *Ingester) Flush() {
	in.sendMu.Lock()
	defer in.sendMu.Unlock()
	in.mu.Lock()
	batch := in.take()
	in.mu.Unlock()
	if batch != nil {
		in.ship(batch)
	}
}

// Close stops the background flusher, ships the tail, and makes further
// Adds fail. Safe to call concurrently: whichever call arrives first runs
// the shutdown, and the others block until the tail flush has completed —
// a Close that has returned always means the tail was shipped (previously
// a second concurrent Close could return while the first was still
// flushing).
func (in *Ingester) Close() {
	in.mu.Lock()
	in.stopped = true
	in.mu.Unlock()
	in.closeOnce.Do(func() {
		close(in.stopCh)
		<-in.done
		in.Flush()
	})
}

// Stats snapshots the counters.
func (in *Ingester) Stats() IngesterStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// take detaches the buffer; caller holds in.mu.
func (in *Ingester) take() []lifelog.Event {
	if len(in.buf) == 0 {
		return nil
	}
	batch := in.buf
	in.buf = nil
	return batch
}

func (in *Ingester) loop() {
	defer close(in.done)
	ticker := time.NewTicker(in.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			in.Flush()
		case <-in.stopCh:
			return
		}
	}
}

// ship sends one batch, honouring 503 backoff. The backoff wait is
// interruptible: ship holds sendMu, so an uninterruptible sleep here would
// stall Close (and every other flush) for up to MaxRetries × the clamped
// Retry-After behind one throttled batch. When stopCh fires mid-backoff the
// wait is cut short and the batch gets one immediate final attempt — the
// tail still ships if the server has recovered, and shutdown never waits
// out a 30-second backoff it no longer believes in.
func (in *Ingester) ship(batch []lifelog.Event) {
	var (
		resp    wire.IngestResponse
		err     error
		closing bool
	)
	for attempt := 0; ; attempt++ {
		resp, err = in.c.Ingest(batch)
		var apiErr *APIError
		if err == nil || !errors.As(err, &apiErr) || !apiErr.Temporary() ||
			attempt >= in.MaxRetries || closing {
			break
		}
		in.mu.Lock()
		in.stats.Retries++
		in.mu.Unlock()
		backoff := apiErr.RetryAfter
		if backoff <= 0 {
			backoff = 50 * time.Millisecond
		}
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-in.stopCh:
			timer.Stop()
			closing = true
		}
	}
	in.mu.Lock()
	if err == nil {
		in.stats.Flushes++
		in.stats.Processed += resp.Processed
		in.stats.Skipped += resp.SkippedUnknown
	} else {
		in.stats.Dropped += len(batch)
	}
	onErr := in.OnError
	in.mu.Unlock()
	if err != nil && onErr != nil {
		onErr(batch, err)
	}
}
