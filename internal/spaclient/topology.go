package spaclient

// Topology-aware routing (cluster mode). With Options.Cluster set, the
// client fetches the slot → node map from the primary's /v1/topology,
// routes every user-keyed request to the slot owner, and splits Ingest
// batches so each node receives only the users it owns. The map is a
// cache, not a contract: the server enforces ownership, and a 421 bounce
// carries the true owner in wire.OwnerHeader — the client retries the
// bounced request exactly once against that node and invalidates its
// cache. The retry is never itself retried, so a pathological topology
// (two nodes bouncing at each other mid-handoff) degrades to an error
// after one extra hop instead of a loop.

import (
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/keyspace"
	"repro/internal/lifelog"
	"repro/internal/wire"
)

// topologyTTL bounds how long a cached slot map routes requests before a
// routed call re-fetches it. Bounces refresh sooner: any 421 invalidates
// the cache immediately.
const topologyTTL = 10 * time.Second

// clusterRouter caches the cluster's slot map for request routing. The
// mutex guards the fields only, never the topology fetch itself: routed
// requests must not queue behind a round-trip to a possibly-down primary.
type clusterRouter struct {
	mu         sync.Mutex
	epoch      uint64
	owners     [keyspace.NumSlots]string // base URL per slot
	fetched    time.Time                 // last fetch attempt (success or not)
	ok         bool                      // a map has been adopted
	invalid    bool                      // a bounce contradicted the map; refetch before routing by it
	refreshing bool                      // a fetch is in flight (single-flight)
}

// ownerBase returns the base URL of the node owning userID's slot.
// Routing never fails and (almost) never waits: a TTL expiry refreshes
// the map in the background while requests keep routing on the stale one
// (stale routing is corrected by bounces); only a map a bounce has proven
// wrong — or no map at all — is worth a synchronous fetch, and even then
// exactly one caller pays the round-trip while everyone else falls
// through to the primary base or the old map.
func (c *Client) ownerBase(userID uint64) string {
	cr := c.cluster
	if cr == nil {
		return c.base
	}
	cr.mu.Lock()
	if !cr.refreshing {
		stale := time.Since(cr.fetched) > topologyTTL // fetched zero => stale
		switch {
		case cr.invalid || (!cr.ok && stale):
			cr.refreshing = true
			cr.mu.Unlock()
			cr.refresh(c)
			cr.mu.Lock()
		case stale:
			cr.refreshing = true
			go cr.refresh(c)
		}
	}
	defer cr.mu.Unlock()
	if !cr.ok {
		return c.base
	}
	if base := cr.owners[keyspace.Partition(userID)]; base != "" {
		return base
	}
	return c.base
}

// refresh fetches the topology from the primary and installs it; the
// caller has set cr.refreshing, which completion clears. Failures (node
// down, standalone daemon answering 501) keep whatever map was already
// adopted — stale routing is corrected by bounces, no routing is not —
// and still stamp the attempt, so a dead primary is retried once per TTL,
// not once per request.
func (cr *clusterRouter) refresh(c *Client) {
	var topo wire.Topology
	err := c.doAt(c.base, "GET", wire.TopologyPath, nil, &topo)
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.refreshing = false
	cr.invalid = false
	cr.fetched = time.Now()
	if err != nil || topo.Validate() != nil || (cr.ok && topo.Epoch < cr.epoch) {
		return // unreachable, malformed, or older than what we already route by
	}
	for i, node := range topo.Slots {
		cr.owners[i] = "http://" + topo.Nodes[node]
	}
	cr.epoch = topo.Epoch
	cr.ok = true
}

// invalidate marks the map contradicted: the next routed call re-fetches
// before trusting it again.
func (cr *clusterRouter) invalidate() {
	cr.mu.Lock()
	cr.invalid = true
	cr.mu.Unlock()
}

// bouncedTo extracts the retry target from a 421 bounce: the base URL of
// the node the server named as owner. Stream-path bounces carry no owner
// and do not match.
func bouncedTo(err error) (string, bool) {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusMisdirectedRequest && apiErr.Owner != "" {
		return "http://" + apiErr.Owner, true
	}
	return "", false
}

// doUser runs one user-keyed round-trip, routed to the slot owner in
// cluster mode. A bounce invalidates the cached map and retries exactly
// once against the owner the server named; a second bounce surfaces as
// the error.
func (c *Client) doUser(userID uint64, method, path string, in, out any) error {
	if c.cluster == nil {
		return c.do(method, path, in, out)
	}
	err := c.doAt(c.ownerBase(userID), method, path, in, out)
	if owner, ok := bouncedTo(err); ok {
		c.cluster.invalidate()
		err = c.doAt(owner, method, path, in, out)
	}
	return err
}

// doUserRead routes a user-keyed read: to the slot owner in cluster mode
// (follower read routing is a replication-tree concept, not a cluster
// one), through the replica pool otherwise.
func (c *Client) doUserRead(userID uint64, path string, out any) error {
	if c.cluster != nil {
		return c.doUser(userID, "GET", path, nil, out)
	}
	return c.doRead(path, out)
}

// ingestGroup is one node's share of a split batch.
type ingestGroup struct {
	base   string
	events []lifelog.Event
}

// splitByOwner partitions a batch by owning node. Events keep their batch
// order within each group, so per-user order — all of one user's events
// land in one group — is preserved; groups are ordered by first
// appearance.
func (c *Client) splitByOwner(events []lifelog.Event) []ingestGroup {
	var groups []ingestGroup
	idx := make(map[string]int)
	for _, e := range events {
		base := c.ownerBase(e.UserID)
		i, ok := idx[base]
		if !ok {
			i = len(groups)
			idx[base] = i
			groups = append(groups, ingestGroup{base: base})
		}
		groups[i].events = append(groups[i].events, e)
	}
	return groups
}

// ingestRouted ships one owner group with the single-hop bounce retry.
func (c *Client) ingestRouted(g ingestGroup) (wire.IngestResponse, error) {
	resp, err := c.ingestAt(g.base, g.events)
	if owner, ok := bouncedTo(err); ok {
		c.cluster.invalidate()
		resp, err = c.ingestAt(owner, g.events)
	}
	return resp, err
}

// mergeIngest folds one group's outcome into the batch total. Counts sum;
// CoalescedWith — a per-commit observation, not a count — reports the
// largest group commit any part of the batch rode.
func mergeIngest(total *wire.IngestResponse, resp wire.IngestResponse) {
	total.Processed += resp.Processed
	total.SkippedUnknown += resp.SkippedUnknown
	total.CoalescedWith = max(total.CoalescedWith, resp.CoalescedWith)
}
