// Package spaclient is the Go client of the spad wire API
// (internal/server): typed methods over the HTTP/JSON protocol defined in
// internal/wire, with connection reuse, request timeouts, and a batching
// Ingester helper (ingester.go) for high-volume event submission. Examples,
// load generators and operational tooling all speak the real wire format
// through this package instead of reimplementing it.
package spaclient

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/lifelog"
	"repro/internal/wire"
)

// Options tune the client. The zero value selects a 15 s request timeout,
// a dedicated keep-alive transport, and binary ingest framing with JSON
// fallback.
type Options struct {
	// Timeout bounds one request round-trip (default 15 s).
	Timeout time.Duration
	// HTTPClient overrides the underlying client entirely (its own Timeout
	// then wins); nil builds one with pooled keep-alive connections.
	HTTPClient *http.Client
	// DisableBinary forces JSON on the ingest path. The default prefers
	// the binary framing and falls back permanently (per client) the first
	// time the server answers 415 — so the same client works against a
	// daemon running -no-binary or a pre-framing build.
	DisableBinary bool
	// ReadFrom lists follower base URLs to route read requests to
	// (readroute.go). Empty keeps every request on the primary. Writes
	// always go to the primary; reads round-robin across followers whose
	// replication status is streaming and within MaxStalenessWaves, and
	// fall back to the primary when no follower qualifies or a routed
	// request fails.
	ReadFrom []string
	// MaxStalenessWaves bounds how many waves behind the leader a
	// follower may report and still serve this client's reads. Zero
	// demands a follower that reported no lag at its last status poll.
	MaxStalenessWaves uint64
	// Cluster enables topology-aware routing (topology.go): the client
	// fetches the slot map from BaseURL's /v1/topology, routes user-keyed
	// requests to the owning node, splits Ingest batches by owner, and on
	// a 421 bounce retries once against the owner the server named. User
	// reads then follow the topology, not ReadFrom. Harmless against a
	// standalone daemon: with no topology everything stays on BaseURL.
	Cluster bool
}

// Client talks to one spad instance. Safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	jsonOnly atomic.Bool // flipped on by Options.DisableBinary or a 415

	// Follower read routing (readroute.go); replicas is empty when the
	// client is pinned to the primary.
	replicas []*replica
	maxStale uint64
	rr       atomic.Uint64

	// Cluster routing (topology.go); nil outside cluster mode.
	cluster *clusterRouter
}

// New creates a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8372").
func New(baseURL string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		timeout := opts.Timeout
		if timeout == 0 {
			timeout = 15 * time.Second
		}
		hc = &http.Client{
			Timeout: timeout,
			// Connection reuse across many small JSON calls is the whole
			// game for loopback throughput; raise the per-host idle pool
			// above the default 2 so K concurrent clients in one process
			// (the loadgen) don't thrash dials.
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: hc, maxStale: opts.MaxStalenessWaves}
	c.jsonOnly.Store(opts.DisableBinary)
	for _, base := range opts.ReadFrom {
		c.replicas = append(c.replicas, &replica{base: strings.TrimRight(base, "/")})
	}
	if opts.Cluster {
		c.cluster = &clusterRouter{}
	}
	return c
}

// APIError is a non-2xx wire response. RetryAfter is the server's requested
// backoff (zero when absent) — set on 503 admission-control rejections.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
	// Owner is the wire.OwnerHeader of a 421 cluster bounce: the host:port
	// of the node that owns the request's user slot (empty otherwise).
	Owner string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("spaclient: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// Temporary reports whether the request may succeed if retried (the
// admission-control 503).
func (e *APIError) Temporary() bool { return e.Status == http.StatusServiceUnavailable }

// maxRetryAfter caps the backoff a server can dictate: an operator typo or
// a far-future HTTP-date must not park a client for hours.
const maxRetryAfter = 30 * time.Second

// parseRetryAfter reads a Retry-After header in either RFC 9110 form —
// delay-seconds or an HTTP-date — and clamps the result to
// [0, maxRetryAfter]. Unparseable values yield zero (caller picks its own
// default backoff).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(h); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(h); err == nil {
		d = time.Until(t)
	}
	return min(max(d, 0), maxRetryAfter)
}

// apiError builds the typed error for a non-2xx response. Error bodies are
// always the JSON wire.Error, on the binary ingest path too.
func apiError(resp *http.Response, raw []byte) *APIError {
	apiErr := &APIError{Status: resp.StatusCode}
	var e wire.Error
	if json.Unmarshal(raw, &e) == nil && e.Message != "" {
		apiErr.Message = e.Message
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	apiErr.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	apiErr.Owner = resp.Header.Get(wire.OwnerHeader)
	return apiErr
}

// do runs one JSON round-trip against the primary; out may be nil.
func (c *Client) do(method, path string, in, out any) error {
	return c.doAt(c.base, method, path, in, out)
}

// doAt runs one JSON round-trip against an explicit base URL.
func (c *Client) doAt(base, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("spaclient: encoding request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiError(resp, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func userPath(userID uint64, leaf string) string {
	return fmt.Sprintf("/v1/users/%d/%s", userID, leaf)
}

// Register creates a Smart User Model.
func (c *Client) Register(userID uint64, objective []float64) error {
	return c.doUser(userID, "POST", "/v1/users", wire.RegisterRequest{UserID: userID, Objective: objective}, nil)
}

// Ingest submits one event batch and returns the server's outcome. It
// prefers the binary framing (the hot path skips JSON encode/decode
// entirely); a 415 flips this client to JSON permanently and the batch is
// retried transparently, so callers never see the negotiation. In cluster
// mode the batch is split by owning node (one request per owner, counts
// summed); a group that fails mid-batch returns the error with the totals
// of the groups already committed.
func (c *Client) Ingest(events []lifelog.Event) (wire.IngestResponse, error) {
	if c.cluster == nil {
		return c.ingestAt(c.base, events)
	}
	groups := c.splitByOwner(events)
	if len(groups) == 0 {
		// Empty batches keep the single-node semantics (server answers
		// processed: 0) rather than short-circuiting client-side.
		return c.ingestRouted(ingestGroup{base: c.base})
	}
	var total wire.IngestResponse
	for _, g := range groups {
		resp, err := c.ingestRouted(g)
		mergeIngest(&total, resp)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ingestAt runs one ingest round-trip against an explicit base, with the
// binary-then-JSON negotiation.
func (c *Client) ingestAt(base string, events []lifelog.Event) (wire.IngestResponse, error) {
	if !c.jsonOnly.Load() {
		resp, err := c.ingestBinary(base, events)
		var apiErr *APIError
		if err == nil || !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnsupportedMediaType {
			return resp, err
		}
		// The daemon refused the framing (-no-binary, or predates it and
		// mapped the body to 415): speak JSON from here on.
		c.jsonOnly.Store(true)
	}
	var resp wire.IngestResponse
	err := c.doAt(base, "POST", "/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(events)}, &resp)
	return resp, err
}

// ingestBinary runs one binary-framed ingest round-trip.
func (c *Client) ingestBinary(base string, events []lifelog.Event) (wire.IngestResponse, error) {
	frame := wire.EncodeIngestRequest(wire.FromEvents(events))
	req, err := http.NewRequest("POST", base+"/v1/ingest", bytes.NewReader(frame))
	if err != nil {
		return wire.IngestResponse{}, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	resp, err := c.hc.Do(req)
	if err != nil {
		return wire.IngestResponse{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return wire.IngestResponse{}, err
	}
	if resp.StatusCode >= 300 {
		return wire.IngestResponse{}, apiError(resp, raw)
	}
	if wire.IsBinaryContentType(resp.Header.Get("Content-Type")) {
		out, err := wire.DecodeIngestResponse(raw)
		if err != nil {
			return wire.IngestResponse{}, fmt.Errorf("spaclient: decoding response: %w", err)
		}
		return out, nil
	}
	// A proxy or an older daemon answered 2xx in JSON; accept it.
	var out wire.IngestResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return wire.IngestResponse{}, fmt.Errorf("spaclient: decoding response: %w", err)
	}
	return out, nil
}

// NextQuestion fetches the user's next Gradual EIT item.
func (c *Client) NextQuestion(userID uint64) (wire.Question, error) {
	var q wire.Question
	err := c.doUser(userID, "GET", userPath(userID, "question"), nil, &q)
	return q, err
}

// SubmitAnswer applies a Gradual EIT answer.
func (c *Client) SubmitAnswer(userID uint64, itemID, option int) error {
	return c.doUser(userID, "POST", userPath(userID, "answer"), wire.AnswerRequest{ItemID: itemID, Option: option}, nil)
}

// Reward applies positive reinforcement for the named attributes.
func (c *Client) Reward(userID uint64, attributes []string) error {
	return c.doUser(userID, "POST", userPath(userID, "reward"), wire.AttributesRequest{Attributes: attributes}, nil)
}

// Punish applies negative reinforcement for the named attributes.
func (c *Client) Punish(userID uint64, attributes []string) error {
	return c.doUser(userID, "POST", userPath(userID, "punish"), wire.AttributesRequest{Attributes: attributes}, nil)
}

// Propensity returns the user's calibrated response probability.
func (c *Client) Propensity(userID uint64) (float64, error) {
	var resp wire.PropensityResponse
	err := c.doUserRead(userID, userPath(userID, "propensity"), &resp)
	return resp.Propensity, err
}

// Sensibilities returns the user's absolute sensibility weights by
// attribute name.
func (c *Client) Sensibilities(userID uint64) (map[string]float64, error) {
	var resp wire.SensibilitiesResponse
	err := c.doUserRead(userID, userPath(userID, "sensibilities"), &resp)
	return resp.Sensibilities, err
}

// Advise returns the SUM advice-stage excitation vector for a domain.
func (c *Client) Advise(userID uint64, domain string) (wire.AdviceResponse, error) {
	var resp wire.AdviceResponse
	err := c.doUserRead(userID, userPath(userID, "advice")+"?domain="+url.QueryEscape(domain), &resp)
	return resp, err
}

// Recommend returns the top-n individualized actions.
func (c *Client) Recommend(userID uint64, n int) ([]wire.Recommendation, error) {
	var resp wire.RecommendResponse
	err := c.doUserRead(userID, fmt.Sprintf("%s?n=%d", userPath(userID, "recommendations"), n), &resp)
	return resp.Recommendations, err
}

// SelectTop returns the k users with the highest propensity. In cluster
// mode the answer is node-local (the daemon scans only users it owns);
// a cluster-wide top-k is the caller's merge across nodes.
func (c *Client) SelectTop(k int) ([]uint64, error) {
	var resp wire.SelectTopResponse
	err := c.doRead("/v1/select-top?k="+strconv.Itoa(k), &resp)
	return resp.UserIDs, err
}

// Health probes liveness.
func (c *Client) Health() (wire.Health, error) {
	var h wire.Health
	err := c.do("GET", "/healthz", nil, &h)
	return h, err
}

// Metrics snapshots the daemon's counters.
func (c *Client) Metrics() (wire.Metrics, error) {
	var m wire.Metrics
	err := c.do("GET", "/metrics", nil, &m)
	return m, err
}

// ReplicationStatus reports the primary's replication role and positions.
func (c *Client) ReplicationStatus() (wire.ReplicationStatus, error) {
	var st wire.ReplicationStatus
	err := c.do("GET", "/v1/replication/status", nil, &st)
	return st, err
}
