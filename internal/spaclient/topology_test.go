package spaclient

// Cluster-routing tests against fake nodes: topology-split ingest, the
// single-hop 421 bounce retry, and the refresh-after-bounce behaviour.
// Real multi-node coverage (actual spad servers, handoffs under load)
// lives in internal/server and the scalebench [S9] section; these tests
// pin the client-side contract with handlers that misbehave on purpose.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/keyspace"
	"repro/internal/lifelog"
	"repro/internal/wire"
)

// hostOf strips the scheme from an httptest URL: topology maps and bounce
// headers carry host:port, exactly as the server side publishes them.
func hostOf(ts *httptest.Server) string {
	return strings.TrimPrefix(ts.URL, "http://")
}

// evenOddTopology owns even slots with node a, odd slots with node b.
func evenOddTopology(aHost, bHost string, epoch uint64) wire.Topology {
	topo := wire.Topology{
		Epoch:  epoch,
		NodeID: "a",
		Nodes:  map[string]string{"a": aHost, "b": bHost},
		Slots:  make([]string, keyspace.NumSlots),
	}
	for i := range topo.Slots {
		if i%2 == 0 {
			topo.Slots[i] = "a"
		} else {
			topo.Slots[i] = "b"
		}
	}
	return topo
}

// uniformTopology owns every slot with one node.
func uniformTopology(owner string, nodes map[string]string, epoch uint64) wire.Topology {
	topo := wire.Topology{Epoch: epoch, NodeID: owner, Nodes: nodes,
		Slots: make([]string, keyspace.NumSlots)}
	for i := range topo.Slots {
		topo.Slots[i] = owner
	}
	return topo
}

func TestClusterIngestSplitsByOwner(t *testing.T) {
	var mu sync.Mutex
	got := map[string][]uint64{} // node → user IDs received, in arrival order
	reqs := map[string]int{}

	ingestHandler := func(node string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req wire.IngestRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mu.Lock()
			reqs[node]++
			for _, e := range req.Events {
				got[node] = append(got[node], e.UserID)
			}
			mu.Unlock()
			json.NewEncoder(w).Encode(wire.IngestResponse{Processed: len(req.Events), CoalescedWith: 1})
		}
	}

	muxA, muxB := http.NewServeMux(), http.NewServeMux()
	muxA.HandleFunc("POST /v1/ingest", ingestHandler("a"))
	muxB.HandleFunc("POST /v1/ingest", ingestHandler("b"))
	a := httptest.NewServer(muxA)
	defer a.Close()
	b := httptest.NewServer(muxB)
	defer b.Close()
	topo := evenOddTopology(hostOf(a), hostOf(b), 1)
	muxA.HandleFunc("GET "+wire.TopologyPath, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(topo)
	})

	c := New(a.URL, Options{Cluster: true, DisableBinary: true})
	var events []lifelog.Event
	want := map[string][]uint64{}
	for id := uint64(1); id <= 16; id++ {
		events = append(events, lifelog.Event{UserID: id, Type: lifelog.EventPageView})
		node := topo.Slots[keyspace.Partition(id)]
		want[node] = append(want[node], id)
	}
	if len(want["a"]) == 0 || len(want["b"]) == 0 {
		t.Fatalf("test users all partition to one parity: %v", want)
	}

	resp, err := c.Ingest(events)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if resp.Processed != len(events) || resp.SkippedUnknown != 0 {
		t.Fatalf("aggregate response %+v, want processed=%d", resp, len(events))
	}
	mu.Lock()
	defer mu.Unlock()
	for _, node := range []string{"a", "b"} {
		if reqs[node] != 1 {
			t.Fatalf("node %s received %d ingest requests, want 1 (batch per owner)", node, reqs[node])
		}
		if len(got[node]) != len(want[node]) {
			t.Fatalf("node %s received users %v, want %v", node, got[node], want[node])
		}
		for i, id := range want[node] {
			if got[node][i] != id {
				t.Fatalf("node %s received users %v, want %v (order preserved)", node, got[node], want[node])
			}
		}
	}
}

func TestClusterBounceRetriesOnceAndRefreshes(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{} // "a:reward", "b:punish", ...
	var topo wire.Topology     // what node a's /v1/topology serves right now
	var aHost, bHost string
	bouncePunishFromB := false

	bounce := func(w http.ResponseWriter, owner string) {
		w.Header().Set(wire.OwnerHeader, owner)
		w.Header().Set(wire.EpochHeader, "1")
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(wire.Error{Message: "not the owner"})
	}
	leaf := func(path string) string { return path[strings.LastIndexByte(path, '/')+1:] }

	muxA, muxB := http.NewServeMux(), http.NewServeMux()
	muxA.HandleFunc("POST /v1/users/", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		counts["a:"+leaf(r.URL.Path)]++
		mu.Unlock()
		bounce(w, bHost) // node a owns nothing, whatever its map claims
	})
	muxB.HandleFunc("POST /v1/users/", func(w http.ResponseWriter, r *http.Request) {
		op := leaf(r.URL.Path)
		mu.Lock()
		counts["b:"+op]++
		back := bouncePunishFromB && op == "punish"
		mu.Unlock()
		if back {
			bounce(w, aHost)
			return
		}
		w.Write([]byte("{}"))
	})
	a := httptest.NewServer(muxA)
	defer a.Close()
	b := httptest.NewServer(muxB)
	defer b.Close()
	aHost, bHost = hostOf(a), hostOf(b)
	nodes := map[string]string{"a": aHost, "b": bHost}
	topo = uniformTopology("a", nodes, 1) // stale: claims a owns everything
	muxA.HandleFunc("GET "+wire.TopologyPath, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		cur := topo
		mu.Unlock()
		counts["topology"]++
		json.NewEncoder(w).Encode(cur)
	})

	c := New(a.URL, Options{Cluster: true, DisableBinary: true})
	const user = 42

	// Phase 1: the stale map routes to a, a bounces naming b, and the
	// client retries exactly once against b — success, one hop.
	if err := c.Reward(user, []string{"x"}); err != nil {
		t.Fatalf("bounced reward should succeed on the retry: %v", err)
	}
	mu.Lock()
	if counts["a:reward"] != 1 || counts["b:reward"] != 1 {
		t.Fatalf("bounce hop counts %v, want a:reward=1 b:reward=1", counts)
	}
	// Phase 2: the bounce invalidated the cache; publish the corrected
	// map and the next write goes straight to b without touching a.
	topo = uniformTopology("b", nodes, 2)
	mu.Unlock()
	if err := c.Reward(user, []string{"x"}); err != nil {
		t.Fatalf("rerouted reward: %v", err)
	}
	mu.Lock()
	if counts["a:reward"] != 1 || counts["b:reward"] != 2 {
		t.Fatalf("post-refresh counts %v, want a:reward=1 b:reward=2", counts)
	}
	// Phase 3: both nodes bounce at each other. The retry is never itself
	// retried, so the client makes exactly two requests and surfaces the
	// second 421 — no ping-pong loop.
	bouncePunishFromB = true
	mu.Unlock()
	err := c.Punish(user, []string{"x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusMisdirectedRequest {
		t.Fatalf("mutual bounce should surface the second 421, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts["b:punish"] != 1 || counts["a:punish"] != 1 {
		t.Fatalf("mutual bounce made %v punish requests, want exactly one hop each", counts)
	}
}
