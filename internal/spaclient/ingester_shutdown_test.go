package spaclient

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/lifelog"
	"repro/internal/wire"
)

// TestIngesterOverflowFlushUnderClosingServer: many producers drive
// Add-overflow flushes while the server dies mid-run and the ingester is
// closed concurrently. The accounting contract under that chaos:
//
//   - no event is double-shipped: the server sees each event at most once;
//   - no event is silently lost: every Add'd event is either recorded by
//     the server or handed to OnError (and those are what Dropped counts);
//   - Added == Processed + Dropped once Close has returned (no skips here:
//     every event names a registered user).
//
// A batch whose response was lost after the server processed it may appear
// both server-side and in OnError — at-most-once delivery plus loss-free
// accounting is the contract, not exactly-once.
func TestIngesterOverflowFlushUnderClosingServer(t *testing.T) {
	type recorder struct {
		mu    sync.Mutex
		seen  map[int64]int // event time → times received
		total int
	}
	rec := &recorder{seen: map[int64]int{}}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wire.IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec.mu.Lock()
		for _, e := range req.Events {
			rec.seen[e.TimeUnixNano]++
			rec.total++
		}
		rec.mu.Unlock()
		json.NewEncoder(w).Encode(wire.IngestResponse{Processed: len(req.Events), CoalescedWith: 1})
	}))
	defer ts.Close()

	c := New(ts.URL, Options{Timeout: 2 * time.Second, DisableBinary: true})
	var dropMu sync.Mutex
	dropped := map[int64]int{}
	in := NewIngester(c, func(in *Ingester) {
		in.BatchSize = 8 // small: Adds overflow constantly
		in.Manual = true // only overflow and Close flush — the path under test
		in.MaxRetries = 1
		in.OnError = func(events []lifelog.Event, err error) {
			dropMu.Lock()
			for _, e := range events {
				dropped[e.Time.UnixNano()]++
			}
			dropMu.Unlock()
		}
	})

	const (
		producers = 8
		perProd   = 200
	)
	var wg sync.WaitGroup
	var added sync.Map // unique key per event
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				// Unique, collision-free key: per-producer nanosecond lane.
				key := int64(p)*1_000_000 + int64(i) + 1
				e := lifelog.Event{
					UserID: uint64(p + 1),
					Time:   time.Unix(0, key),
					Type:   lifelog.EventClick,
					Action: 1,
				}
				if err := in.Add(e); err != nil {
					return // ingester closed under us: fine, event not Added
				}
				added.Store(key, true)
			}
		}(p)
	}

	// Kill the server mid-run: in-flight flushes fail, later ones get
	// connection refused — the "concurrently closing server".
	time.Sleep(20 * time.Millisecond)
	ts.CloseClientConnections()
	ts.Close()
	wg.Wait()
	in.Close()

	st := in.Stats()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	dropMu.Lock()
	defer dropMu.Unlock()

	// At most once on the wire.
	for key, n := range rec.seen {
		if n > 1 {
			t.Fatalf("event %d shipped %d times", key, n)
		}
	}
	// Dropped is exactly the OnError volume.
	droppedEvents := 0
	for _, n := range dropped {
		droppedEvents += n
	}
	if st.Dropped != droppedEvents {
		t.Fatalf("Stats().Dropped = %d, OnError saw %d", st.Dropped, droppedEvents)
	}
	// Every Added event is accounted: recorded by the server or dropped.
	addedCount := 0
	added.Range(func(k, _ any) bool {
		addedCount++
		key := k.(int64)
		if rec.seen[key] == 0 && dropped[key] == 0 {
			t.Fatalf("event %d neither shipped nor dropped", key)
		}
		return true
	})
	if st.Added != addedCount {
		t.Fatalf("Stats().Added = %d, test added %d", st.Added, addedCount)
	}
	if st.Skipped != 0 {
		t.Fatalf("unexpected skips: %+v", st)
	}
	// Conservation: what the client counted processed plus what it dropped
	// covers everything it accepted. (Processed can undercount rec.total
	// only by batches whose response was lost — those are in Dropped.)
	if st.Processed+st.Dropped != st.Added {
		t.Fatalf("accounting leak: %+v", st)
	}
	if st.Processed > rec.total {
		t.Fatalf("client claims %d processed, server recorded %d", st.Processed, rec.total)
	}
}
