package spaclient

// StreamIngester speaks the streamed binary ingest protocol of
// internal/wire stream.go: one long-lived connection (HTTP upgrade on
// /v1/ingest/stream, or a raw TCP endpoint via StreamOptions.Addr)
// carrying SPAB ingest frames, answered in order, flow-controlled by
// server-granted credit. Concurrent Ingest calls multiplex onto the one
// connection — each takes a credit token, writes its frame, and waits for
// its in-order answer — which is what makes a stream cheaper than
// per-request HTTP: N calls pipeline on one connection with no per-call
// header cycle.
//
// Failure semantics are deliberately conservative: a call whose frame may
// have reached the server is NEVER retried (a retry could double-ingest);
// only calls that provably sent nothing (credit wait interrupted by a
// broken or draining connection) retry on a fresh connection. Servers
// without the endpoint (pre-stream daemons, spad -no-binary) flip the
// ingester permanently onto the client's per-request Ingest path, so the
// same caller code works against any daemon generation.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/lifelog"
	"repro/internal/wire"
)

// StreamOptions tune a StreamIngester.
type StreamOptions struct {
	// Addr dials a raw TCP stream endpoint (spad -stream-addr) instead of
	// upgrading the client's base URL.
	Addr string
	// DialTimeout bounds connect + handshake (default 10 s).
	DialTimeout time.Duration
	// Timeout bounds one Ingest call end to end: credit wait plus response
	// wait (default: the client's request timeout, else 30 s).
	Timeout time.Duration
}

// errStreamUnsupported marks a server without the stream endpoint; the
// ingester falls back to per-request HTTP permanently.
var errStreamUnsupported = errors.New("spaclient: server does not support streamed ingest")

// errStreamDraining marks a connection the server has asked to wind down;
// nothing was sent on behalf of the failed call, so a retry is safe.
var errStreamDraining = errors.New("spaclient: stream draining")

// ErrIngesterClosed rejects use after Close.
var ErrIngesterClosed = errors.New("spaclient: stream ingester closed")

// StreamIngester is a persistent-connection ingest client. Safe for
// concurrent use; create with Client.Stream.
type StreamIngester struct {
	c    *Client
	opts StreamOptions
	base string // pinned dial target (base URL); empty dials the client's base

	// Cluster mode (topology.go): a routed parent never dials itself — it
	// splits each batch by owning node and multiplexes the groups over one
	// pinned child stream per node. An explicit StreamOptions.Addr opts
	// out: the caller named a socket, so every frame goes there.
	routed  bool
	childMu sync.Mutex
	// children maps base URL → pinned stream; nil after Close, which is
	// what makes a racing Ingest fail instead of resurrecting a child.
	children map[string]*StreamIngester

	// dialMu serializes (re)dials and is held across the connect +
	// handshake. It is separate from mu so a slow dial — bounded only by
	// DialTimeout — never parks Close, which needs mu only briefly.
	dialMu sync.Mutex

	mu       sync.Mutex
	st       *streamState // nil until the first Ingest dials
	closed   bool
	fallback bool // server has no stream endpoint: use per-request HTTP
}

// Stream creates a streamed ingester over the client's daemon. The
// connection is dialed lazily on the first Ingest and redialed after
// failures; Close it to release the connection. In cluster mode the
// ingester keeps one stream per node and routes each batch by slot owner.
func (c *Client) Stream(opts StreamOptions) *StreamIngester {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.Timeout <= 0 {
		if t := c.hc.Timeout; t > 0 {
			opts.Timeout = t
		} else {
			opts.Timeout = 30 * time.Second
		}
	}
	si := &StreamIngester{c: c, opts: opts}
	if c.cluster != nil && opts.Addr == "" {
		si.routed = true
		si.children = make(map[string]*StreamIngester)
	}
	return si
}

// streamCall is one in-flight frame awaiting its in-order answer. done is
// buffered so the reader never blocks delivering to a caller that timed
// out and walked away.
type streamCall struct {
	done chan streamReply
}

type streamReply struct {
	resp wire.IngestResponse
	err  error
}

// streamState is one live connection.
type streamState struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	maxFrame int64
	credit   chan struct{}

	// wmu serializes frame writes; the calls FIFO is appended under it so
	// FIFO order always equals wire order.
	wmu sync.Mutex

	mu         sync.Mutex
	calls      []*streamCall
	broken     bool
	brokenErr  error
	brokenCh   chan struct{}
	draining   bool
	readerDone chan struct{}
}

// Ingest ships one event batch over the stream and returns its in-order
// answer. Stream-level errors carry the same *APIError statuses the HTTP
// path produces, so retry/backoff policies compose unchanged. In cluster
// mode the batch is split by owning node, each group riding that node's
// pinned stream.
func (si *StreamIngester) Ingest(events []lifelog.Event) (wire.IngestResponse, error) {
	if si.routed {
		return si.ingestRouted(events)
	}
	return si.ingestDirect(events)
}

// ingestRouted fans a batch out across the per-node streams. A 421 from a
// stream carries no owner address (frames have no headers), so a bounced
// group refreshes the map and re-sends once over the client's per-request
// HTTP path, whose own bounce retry is single-hop — two bounded hops
// total, never a loop.
func (si *StreamIngester) ingestRouted(events []lifelog.Event) (wire.IngestResponse, error) {
	groups := si.c.splitByOwner(events)
	if len(groups) == 0 {
		groups = []ingestGroup{{base: si.c.base}}
	}
	var total wire.IngestResponse
	for _, g := range groups {
		child, err := si.child(g.base)
		if err != nil {
			return total, err
		}
		resp, err := child.ingestDirect(g.events)
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusMisdirectedRequest {
			si.c.cluster.invalidate()
			resp, err = si.c.Ingest(g.events)
		}
		mergeIngest(&total, resp)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// child returns the pinned stream for one node, creating it on first use.
func (si *StreamIngester) child(base string) (*StreamIngester, error) {
	si.childMu.Lock()
	defer si.childMu.Unlock()
	if si.children == nil {
		return nil, ErrIngesterClosed
	}
	st := si.children[base]
	if st == nil {
		st = &StreamIngester{c: si.c, opts: si.opts, base: base}
		si.children[base] = st
	}
	return st, nil
}

// ingestDirect runs one batch over this ingester's own connection.
func (si *StreamIngester) ingestDirect(events []lifelog.Event) (wire.IngestResponse, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		st, fallback, err := si.state()
		if fallback {
			return si.c.Ingest(events)
		}
		if err != nil {
			return wire.IngestResponse{}, err
		}
		resp, err, retry := st.roundTrip(events, si.opts.Timeout)
		if !retry {
			return resp, err
		}
		lastErr = err
		si.dropState(st)
	}
	return wire.IngestResponse{}, fmt.Errorf("spaclient: stream reconnect budget exhausted: %w", lastErr)
}

// Close announces drain, waits briefly for the server to answer what is
// outstanding and close, then releases the connection. Further Ingest
// calls fail with ErrIngesterClosed.
func (si *StreamIngester) Close() error {
	if si.routed {
		// Detach the child map first — a racing Ingest then fails in
		// child() instead of resurrecting a stream — and drain each child.
		si.childMu.Lock()
		children := si.children
		si.children = nil
		si.childMu.Unlock()
		for _, st := range children {
			st.Close()
		}
	}
	si.mu.Lock()
	if si.closed {
		si.mu.Unlock()
		return nil
	}
	si.closed = true
	st := si.st
	si.st = nil
	si.mu.Unlock()
	if st == nil {
		return nil
	}
	st.wmu.Lock()
	// Mark the state draining before the drain frame exists on the wire:
	// an Ingest racing Close that takes wmu after us must not write its
	// frame behind the drain — the server's reader exits on the drain and
	// would never answer it, turning an orderly shutdown into a spurious
	// "stream broken" failure. With the flag set, that call backs out
	// bytes-unsent and resolves to ErrIngesterClosed on its retry.
	st.mu.Lock()
	st.draining = true
	st.mu.Unlock()
	// Bounded like every other write: drain is best-effort and must not
	// park Close behind a peer that stopped reading.
	st.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteStreamFrame(st.bw, wire.EncodeStreamDrain()); err == nil {
		st.bw.Flush()
	}
	st.wmu.Unlock()
	// The server flushes every outstanding answer, sends its drain ack and
	// closes; the reader exits on that close.
	select {
	case <-st.readerDone:
	case <-time.After(5 * time.Second):
	}
	st.conn.Close()
	return nil
}

// state returns a live connection, dialing if needed, or reports that the
// ingester should use per-request HTTP instead. The dial itself runs under
// dialMu with mu released, so Close (and the fast path of concurrent
// Ingests once the connection exists) is never parked behind a connect.
func (si *StreamIngester) state() (*streamState, bool, error) {
	if st, fallback, err, ok := si.liveState(); ok {
		return st, fallback, err
	}
	si.dialMu.Lock()
	defer si.dialMu.Unlock()
	// Re-check: a concurrent caller may have dialed while we waited on
	// dialMu, or Close may have run.
	if st, fallback, err, ok := si.liveState(); ok {
		return st, fallback, err
	}
	st, err := si.dial()
	if err != nil {
		if errors.Is(err, errStreamUnsupported) {
			si.mu.Lock()
			si.fallback = true
			si.mu.Unlock()
			return nil, true, nil
		}
		return nil, false, err
	}
	si.mu.Lock()
	if si.closed {
		si.mu.Unlock()
		// Close won the race while we were dialing; the fresh connection
		// is ours alone to clean up.
		st.fail(ErrIngesterClosed)
		return nil, false, ErrIngesterClosed
	}
	si.st = st
	si.mu.Unlock()
	return st, false, nil
}

// liveState resolves the cases that need no dial: closed, fallback, or a
// healthy existing connection. ok=false means the caller should dial.
func (si *StreamIngester) liveState() (st *streamState, fallback bool, err error, ok bool) {
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.closed {
		return nil, false, ErrIngesterClosed, true
	}
	if si.fallback {
		return nil, true, nil, true
	}
	if si.st != nil && !si.st.isBroken() {
		return si.st, false, nil, true
	}
	return nil, false, nil, false
}

// dropState forgets a connection so the next Ingest redials. Only the
// state the caller actually used is dropped — a concurrent redial's fresh
// connection survives.
func (si *StreamIngester) dropState(st *streamState) {
	si.mu.Lock()
	if si.st == st {
		si.st = nil
	}
	si.mu.Unlock()
}

// dial connects and completes the handshake: optional HTTP upgrade, then
// the server's hello. Called under dialMu (NOT si.mu), which serializes
// redials without blocking Close.
func (si *StreamIngester) dial() (*streamState, error) {
	addr := si.opts.Addr
	host := addr
	upgrade := addr == ""
	if upgrade {
		base := si.base
		if base == "" {
			base = si.c.base
		}
		u, err := url.Parse(base)
		if err != nil {
			return nil, fmt.Errorf("spaclient: parsing base URL: %w", err)
		}
		if u.Scheme != "http" {
			// TLS upgrades are not implemented; per-request HTTPS still works.
			return nil, errStreamUnsupported
		}
		host = u.Host
		addr = u.Host
		if _, _, err := net.SplitHostPort(addr); err != nil {
			addr = net.JoinHostPort(addr, "80")
		}
	}
	conn, err := net.DialTimeout("tcp", addr, si.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(si.opts.DialTimeout))
	br := bufio.NewReader(conn)
	if upgrade {
		req := "GET " + wire.StreamPath + " HTTP/1.1\r\nHost: " + host +
			"\r\nConnection: Upgrade\r\nUpgrade: " + wire.StreamProtocol + "\r\n\r\n"
		if _, err := io.WriteString(conn, req); err != nil {
			conn.Close()
			return nil, err
		}
		resp, err := http.ReadResponse(br, &http.Request{Method: "GET"})
		if err != nil {
			conn.Close()
			return nil, err
		}
		if resp.StatusCode != http.StatusSwitchingProtocols {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			conn.Close()
			switch resp.StatusCode {
			case http.StatusNotFound, http.StatusNotImplemented,
				http.StatusUpgradeRequired, http.StatusMethodNotAllowed:
				// A daemon predating the endpoint (404 from the mux) or
				// refusing the upgrade outright: speak per-request HTTP.
				return nil, fmt.Errorf("%w: %d", errStreamUnsupported, resp.StatusCode)
			}
			return nil, apiError(resp, raw)
		}
	}
	// The hello is the server's first frame on every stream.
	frame, err := wire.ReadStreamFrame(br, 1<<20)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("spaclient: reading stream hello: %w", err)
	}
	if kind, kerr := wire.FrameKind(frame); kerr == nil && kind == wire.KindStreamError {
		se, derr := wire.DecodeStreamError(frame)
		conn.Close()
		if derr != nil {
			return nil, derr
		}
		if se.Status == http.StatusNotImplemented {
			// Raw TCP against a daemon with streaming disabled: speak
			// per-request HTTP, same as the upgrade path's refusals.
			return nil, fmt.Errorf("%w: %s", errStreamUnsupported, se.Message)
		}
		// A draining server refuses new streams with an error frame.
		return nil, &APIError{Status: se.Status, Message: se.Message}
	}
	hello, err := wire.DecodeStreamHello(frame)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("spaclient: decoding stream hello: %w", err)
	}
	conn.SetDeadline(time.Time{})
	st := &streamState{
		conn:     conn,
		br:       br,
		bw:       bufio.NewWriter(conn),
		maxFrame: hello.MaxFrameBytes,
		// Sized to the server's grant (DecodeStreamHello bounds it at
		// wire.MaxStreamCredit) so no granted credit is ever dropped.
		credit:     make(chan struct{}, hello.Credit),
		brokenCh:   make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	for i := 0; i < hello.Credit; i++ {
		st.credit <- struct{}{}
	}
	go st.readLoop()
	return st, nil
}

func (st *streamState) isBroken() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.broken
}

// fail breaks the connection once: every outstanding call gets err, new
// sends are refused, and the conn closes so the reader unblocks.
func (st *streamState) fail(err error) {
	st.mu.Lock()
	if st.broken {
		st.mu.Unlock()
		return
	}
	st.broken = true
	st.brokenErr = err
	calls := st.calls
	st.calls = nil
	close(st.brokenCh)
	st.mu.Unlock()
	for _, c := range calls {
		c.done <- streamReply{err: fmt.Errorf("spaclient: stream broken: %w", err)}
	}
	st.conn.Close()
}

// pop removes the FIFO head — the call the next answer frame belongs to.
func (st *streamState) pop() *streamCall {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.calls) == 0 {
		return nil
	}
	c := st.calls[0]
	st.calls = st.calls[1:]
	return c
}

// roundTrip runs one frame through the stream. retry reports that nothing
// was sent for this call, so the caller may redial and try again without
// double-ingest risk.
func (st *streamState) roundTrip(events []lifelog.Event, timeout time.Duration) (resp wire.IngestResponse, err error, retry bool) {
	frame := wire.EncodeIngestRequest(wire.FromEvents(events))
	if st.maxFrame > 0 && int64(len(frame)) > st.maxFrame {
		return resp, fmt.Errorf("spaclient: %d-byte frame exceeds server limit %d", len(frame), st.maxFrame), false
	}
	deadline := time.Now().Add(timeout)
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-st.credit:
	case <-st.brokenCh:
		return resp, st.brokenErr, true
	case <-t.C:
		return resp, errors.New("spaclient: timed out waiting for stream credit"), false
	}
	if time.Until(deadline) <= 0 {
		// The credit race can be won with the budget already spent (select
		// picks randomly when both cases are ready). Nothing has been sent,
		// so time out this call alone — arming an expired write deadline
		// would fail the write without a syscall and needlessly tear down
		// the shared connection under every other in-flight call. The
		// token goes back in the bank: no frame means the server will
		// never re-issue it, and leaking it would shrink the window for
		// the life of the connection.
		select {
		case st.credit <- struct{}{}:
		default:
		}
		return resp, errors.New("spaclient: timed out waiting for stream credit"), false
	}
	call := &streamCall{done: make(chan streamReply, 1)}
	st.wmu.Lock()
	st.mu.Lock()
	if st.broken {
		err := st.brokenErr
		st.mu.Unlock()
		st.wmu.Unlock()
		return resp, err, true
	}
	if st.draining {
		st.mu.Unlock()
		st.wmu.Unlock()
		return resp, errStreamDraining, true
	}
	st.calls = append(st.calls, call)
	st.mu.Unlock()
	// The write gets the call's remaining budget as a deadline: Timeout
	// bounds the Ingest end to end, and a server that stopped reading must
	// break this connection rather than park every writer — concurrent
	// Ingest calls and Close all serialize behind wmu — indefinitely.
	werr := st.conn.SetWriteDeadline(deadline)
	if werr == nil {
		werr = wire.WriteStreamFrame(st.bw, frame)
	}
	if werr == nil {
		werr = st.bw.Flush()
	}
	if werr == nil {
		st.conn.SetWriteDeadline(time.Time{})
	}
	st.wmu.Unlock()
	if werr != nil {
		// The frame may be partially on the wire: not retryable. fail
		// delivers the error to our registered call.
		st.fail(werr)
	}
	select {
	case r := <-call.done:
		return r.resp, r.err, false
	case <-t.C:
		// The slot stays registered so in-order matching survives; the
		// buffered done chan absorbs the late answer.
		return resp, errors.New("spaclient: timed out waiting for stream response"), false
	}
}

// readLoop is the connection's single reader: it matches answer frames to
// the calls FIFO, banks credit grants, and observes drain.
func (st *streamState) readLoop() {
	defer close(st.readerDone)
	for {
		frame, err := wire.ReadStreamFrame(st.br, st.maxFrame)
		if err != nil {
			st.fail(err)
			return
		}
		kind, err := wire.FrameKind(frame)
		if err != nil {
			st.fail(err)
			return
		}
		switch kind {
		case wire.KindIngestResponse:
			call := st.pop()
			if call == nil {
				st.fail(errors.New("response frame with no request outstanding"))
				return
			}
			resp, err := wire.DecodeIngestResponse(frame)
			if err != nil {
				call.done <- streamReply{err: err}
				st.fail(err)
				return
			}
			call.done <- streamReply{resp: resp}
		case wire.KindStreamError:
			se, err := wire.DecodeStreamError(frame)
			if err != nil {
				st.fail(err)
				return
			}
			apiErr := &APIError{Status: se.Status, Message: se.Message}
			if call := st.pop(); call != nil {
				// In-order per-request failure; the stream stays up.
				call.done <- streamReply{err: apiErr}
				continue
			}
			// Terminal refusal with nothing outstanding.
			st.fail(apiErr)
			return
		case wire.KindStreamCredit:
			n, err := wire.DecodeStreamCredit(frame)
			if err != nil {
				st.fail(err)
				return
			}
			for i := 0; i < n; i++ {
				select {
				case st.credit <- struct{}{}:
				default:
				}
			}
		case wire.KindStreamDrain:
			// Stop sending; outstanding answers still arrive, then the
			// server closes and the read above returns.
			st.mu.Lock()
			st.draining = true
			st.mu.Unlock()
		default:
			st.fail(fmt.Errorf("unexpected frame kind %#x", kind))
			return
		}
	}
}
