package spaclient

// Follower read routing. A client built with Options.ReadFrom spreads its
// read requests round-robin across the primary AND the replica spads (the
// whole pool serves reads — a leader+follower pair aggregates both nodes'
// read capacity), keeping writes on the primary. Before routing to a
// replica the client consults its /v1/replication/status — cached briefly,
// so the status poll costs one extra request per replica per cache window,
// not per read — and skips any follower that is not live on the stream,
// lags past the client's staleness bound, or has stopped hearing leader
// heartbeats. A routed read that fails for any reason falls back to the
// primary: routing is an optimization, never a correctness risk, and the
// caller sees a replica problem only as the primary's answer.

import (
	"sync"
	"time"

	"repro/internal/wire"
)

const (
	// statusCacheTTL is how long one replica status poll stays
	// authoritative for routing decisions.
	statusCacheTTL = time.Second
	// maxHeartbeatAge is the oldest leader heartbeat a follower may report
	// and still take reads: older means its lag figure itself is stale
	// (the stream is probably down and the follower just doesn't know the
	// leader moved on).
	maxHeartbeatAge = 3 * time.Second
)

// replica is one follower read target with its cached status.
type replica struct {
	base string

	mu      sync.Mutex
	st      wire.ReplicationStatus
	fetched time.Time
	healthy bool
}

// eligible reports whether the replica may serve a read under the
// client's staleness bound, polling its status when the cache expired.
func (r *replica) eligible(c *Client) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if time.Since(r.fetched) >= statusCacheTTL {
		var st wire.ReplicationStatus
		err := c.doAt(r.base, "GET", "/v1/replication/status", nil, &st)
		r.st, r.healthy, r.fetched = st, err == nil, time.Now()
	}
	if !r.healthy || r.st.Role != "follower" || r.st.State != "streaming" {
		return false
	}
	if r.st.LagWaves > c.maxStale {
		return false
	}
	if r.st.LastHeartbeatUnixNano == 0 {
		return false
	}
	return time.Since(time.Unix(0, r.st.LastHeartbeatUnixNano)) < maxHeartbeatAge
}

// markUnhealthy drops a replica from routing until its next status poll.
func (r *replica) markUnhealthy() {
	r.mu.Lock()
	r.healthy = false
	r.mu.Unlock()
}

// doRead runs one GET over the read pool — the replicas plus the primary,
// round-robin, so a leader+follower pair splits the read load — falling
// back to the primary whenever the rotation lands on an ineligible or
// failing replica. Each call starts from the next round-robin position so
// concurrent readers spread across the pool.
func (c *Client) doRead(path string, out any) error {
	if n := len(c.replicas); n > 0 {
		pool := n + 1 // position n is the primary
		start := int(c.rr.Add(1)-1) % pool
		for i := 0; i < pool; i++ {
			p := (start + i) % pool
			if p == n {
				// The primary's turn in the rotation: it always answers.
				break
			}
			r := c.replicas[p]
			if !r.eligible(c) {
				continue
			}
			if err := c.doAt(r.base, "GET", path, nil, out); err == nil {
				return nil
			}
			// Transport failures and server errors alike: this replica
			// stops taking reads until a fresh status poll clears it, and
			// the primary answers this request. (A domain-level error —
			// 404, cold-start 409 — also lands here and re-asks the
			// primary; the primary's answer is the authoritative one
			// either way, at the cost of one duplicate read.)
			r.markUnhealthy()
		}
	}
	return c.do("GET", path, nil, out)
}
