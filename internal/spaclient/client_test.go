package spaclient

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/server"
	"repro/internal/wire"
)

var t0 = clock.Epoch

func liveServer(t *testing.T) (*Client, *core.SPA) {
	t.Helper()
	spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(t0.Add(24 * time.Hour))})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		spa.Close()
	})
	return New(ts.URL, Options{}), spa
}

func click(user uint64, seq int) lifelog.Event {
	return lifelog.Event{
		UserID: user,
		Time:   t0.Add(time.Duration(seq) * time.Second),
		Type:   lifelog.EventClick,
		Action: uint32(seq % lifelog.ActionUniverse),
	}
}

func TestClientRoundTrip(t *testing.T) {
	c, spa := liveServer(t)

	if err := c.Register(1, []float64{25, 1}); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if err := c.Register(1, nil); !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate register: %v", err)
	}
	if err := c.Register(2, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Ingest([]lifelog.Event{click(1, 1), click(1, 2), click(99, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Processed != 2 || resp.SkippedUnknown != 1 {
		t.Fatalf("ingest: %+v", resp)
	}

	q, err := c.NextQuestion(1)
	if err != nil || q.Prompt == "" {
		t.Fatalf("question: %+v %v", q, err)
	}
	if err := c.SubmitAnswer(1, q.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Reward(1, []string{"lively", "hopeful"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Punish(1, []string{"frightened"}); err != nil {
		t.Fatal(err)
	}
	sens, err := c.Sensibilities(1)
	if err != nil || len(sens) != 10 {
		t.Fatalf("sensibilities: %v %v", sens, err)
	}
	adv, err := c.Advise(1, "training")
	if err != nil || len(adv.Excitation) != 10 {
		t.Fatalf("advice: %+v %v", adv, err)
	}
	if _, err := c.NextQuestion(42); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown user: %v", err)
	}
	h, err := c.Health()
	if err != nil || h.Users != 2 {
		t.Fatalf("health: %+v %v", h, err)
	}
	m, err := c.Metrics()
	if err != nil || m.IngestRequests != 1 || m.IngestEvents != 3 {
		t.Fatalf("metrics: %+v %v", m, err)
	}
	if spa.Users() != 2 {
		t.Fatalf("users: %d", spa.Users())
	}
}

func TestIngesterBatches(t *testing.T) {
	c, spa := liveServer(t)
	for u := uint64(1); u <= 4; u++ {
		if err := c.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	in := NewIngester(c, func(in *Ingester) {
		in.BatchSize = 10
		in.Manual = true
		in.OnError = func(_ []lifelog.Event, err error) { t.Errorf("ingester error: %v", err) }
	})
	// 25 events: two overflow flushes of 10, Close ships the tail of 5.
	for seq := 1; seq <= 25; seq++ {
		if err := in.Add(click(uint64(seq%4+1), seq)); err != nil {
			t.Fatal(err)
		}
	}
	in.Close()
	st := in.Stats()
	if st.Added != 25 || st.Flushes != 3 || st.Processed != 25 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := in.Add(click(1, 99)); err == nil {
		t.Fatal("Add accepted after Close")
	}
	_ = spa
}

func TestIngesterRetriesBackpressure(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(wire.Error{Message: "ingest queue full"})
			return
		}
		var req wire.IngestRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(wire.IngestResponse{Processed: len(req.Events), CoalescedWith: 1})
	}))
	defer ts.Close()

	in := NewIngester(New(ts.URL, Options{}), func(in *Ingester) {
		in.BatchSize = 2
		in.Manual = true
		in.OnError = func(_ []lifelog.Event, err error) { t.Errorf("gave up: %v", err) }
	})
	in.Add(click(1, 1))
	in.Add(click(1, 2)) // overflow → ship → two 503s → success on third try
	in.Close()
	st := in.Stats()
	if st.Retries != 2 || st.Processed != 2 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestIngesterDropsOnHardError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(wire.Error{Message: "malformed stream"})
	}))
	defer ts.Close()

	var dropped int
	in := NewIngester(New(ts.URL, Options{}), func(in *Ingester) {
		in.BatchSize = 4
		in.Manual = true
		in.OnError = func(events []lifelog.Event, err error) {
			dropped += len(events)
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Temporary() {
				t.Errorf("unexpected error shape: %v", err)
			}
		}
	})
	for seq := 1; seq <= 4; seq++ {
		in.Add(click(1, seq))
	}
	in.Close()
	st := in.Stats()
	if dropped != 4 || st.Dropped != 4 || st.Retries != 0 {
		t.Fatalf("dropped %d, stats %+v", dropped, st)
	}
}

func TestIngesterBackgroundFlush(t *testing.T) {
	c, _ := liveServer(t)
	if err := c.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	in := NewIngester(c, func(in *Ingester) {
		in.BatchSize = 1000
		in.FlushEvery = 5 * time.Millisecond
	})
	defer in.Close()
	in.Add(click(1, 1))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if in.Stats().Processed == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("background flusher never shipped: %+v", in.Stats())
}
