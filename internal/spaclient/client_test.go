package spaclient

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/server"
	"repro/internal/wire"
)

var t0 = clock.Epoch

func liveServer(t *testing.T) (*Client, *core.SPA) {
	t.Helper()
	spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(t0.Add(24 * time.Hour))})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		spa.Close()
	})
	return New(ts.URL, Options{}), spa
}

// countIngestEvents decodes an ingest request body in whichever framing
// the client chose — mock servers in this file answer both.
func countIngestEvents(r *http.Request) int {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return 0
	}
	if wire.IsBinaryContentType(r.Header.Get("Content-Type")) {
		events, err := wire.DecodeIngestRequest(raw)
		if err != nil {
			return 0
		}
		return len(events)
	}
	var req wire.IngestRequest
	if json.Unmarshal(raw, &req) != nil {
		return 0
	}
	return len(req.Events)
}

// writeIngestResponse answers in the framing the request spoke.
func writeIngestResponse(w http.ResponseWriter, r *http.Request, resp wire.IngestResponse) {
	if wire.IsBinaryContentType(r.Header.Get("Content-Type")) {
		w.Header().Set("Content-Type", wire.ContentTypeBinary)
		w.Write(wire.EncodeIngestResponse(resp))
		return
	}
	json.NewEncoder(w).Encode(resp)
}

func click(user uint64, seq int) lifelog.Event {
	return lifelog.Event{
		UserID: user,
		Time:   t0.Add(time.Duration(seq) * time.Second),
		Type:   lifelog.EventClick,
		Action: uint32(seq % lifelog.ActionUniverse),
	}
}

func TestClientRoundTrip(t *testing.T) {
	c, spa := liveServer(t)

	if err := c.Register(1, []float64{25, 1}); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if err := c.Register(1, nil); !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate register: %v", err)
	}
	if err := c.Register(2, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Ingest([]lifelog.Event{click(1, 1), click(1, 2), click(99, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Processed != 2 || resp.SkippedUnknown != 1 {
		t.Fatalf("ingest: %+v", resp)
	}

	q, err := c.NextQuestion(1)
	if err != nil || q.Prompt == "" {
		t.Fatalf("question: %+v %v", q, err)
	}
	if err := c.SubmitAnswer(1, q.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Reward(1, []string{"lively", "hopeful"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Punish(1, []string{"frightened"}); err != nil {
		t.Fatal(err)
	}
	sens, err := c.Sensibilities(1)
	if err != nil || len(sens) != 10 {
		t.Fatalf("sensibilities: %v %v", sens, err)
	}
	adv, err := c.Advise(1, "training")
	if err != nil || len(adv.Excitation) != 10 {
		t.Fatalf("advice: %+v %v", adv, err)
	}
	if _, err := c.NextQuestion(42); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown user: %v", err)
	}
	h, err := c.Health()
	if err != nil || h.Users != 2 {
		t.Fatalf("health: %+v %v", h, err)
	}
	m, err := c.Metrics()
	if err != nil || m.IngestRequests != 1 || m.IngestEvents != 3 {
		t.Fatalf("metrics: %+v %v", m, err)
	}
	if spa.Users() != 2 {
		t.Fatalf("users: %d", spa.Users())
	}
}

func TestIngesterBatches(t *testing.T) {
	c, spa := liveServer(t)
	for u := uint64(1); u <= 4; u++ {
		if err := c.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	in := NewIngester(c, func(in *Ingester) {
		in.BatchSize = 10
		in.Manual = true
		in.OnError = func(_ []lifelog.Event, err error) { t.Errorf("ingester error: %v", err) }
	})
	// 25 events: two overflow flushes of 10, Close ships the tail of 5.
	for seq := 1; seq <= 25; seq++ {
		if err := in.Add(click(uint64(seq%4+1), seq)); err != nil {
			t.Fatal(err)
		}
	}
	in.Close()
	st := in.Stats()
	if st.Added != 25 || st.Flushes != 3 || st.Processed != 25 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := in.Add(click(1, 99)); err == nil {
		t.Fatal("Add accepted after Close")
	}
	_ = spa
}

// TestIngestBinaryNegotiation: against a live server the client speaks
// binary (visible in /metrics); against one with the framing disabled it
// falls back to JSON on the first 415 — once, transparently, per client.
func TestIngestBinaryNegotiation(t *testing.T) {
	c, _ := liveServer(t)
	if err := c.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Ingest([]lifelog.Event{click(1, 1), click(1, 2)})
	if err != nil || resp.Processed != 2 {
		t.Fatalf("ingest: %+v %v", resp, err)
	}
	m, err := c.Metrics()
	if err != nil || m.IngestBinary != 1 || m.IngestRequests != 1 {
		t.Fatalf("binary not negotiated: %+v %v", m, err)
	}
}

func TestIngestFallsBackOn415(t *testing.T) {
	var binaryAttempts, jsonRequests atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wire.IsBinaryContentType(r.Header.Get("Content-Type")) {
			binaryAttempts.Add(1)
			w.WriteHeader(http.StatusUnsupportedMediaType)
			json.NewEncoder(w).Encode(wire.Error{Message: "binary disabled"})
			return
		}
		jsonRequests.Add(1)
		json.NewEncoder(w).Encode(wire.IngestResponse{Processed: countIngestEvents(r), CoalescedWith: 1})
	}))
	defer ts.Close()

	c := New(ts.URL, Options{})
	for i := 1; i <= 3; i++ {
		resp, err := c.Ingest([]lifelog.Event{click(1, i)})
		if err != nil || resp.Processed != 1 {
			t.Fatalf("ingest %d: %+v %v", i, resp, err)
		}
	}
	// One probing binary request, then JSON only — the batch that hit 415
	// was retried as JSON, so all three landed.
	if binaryAttempts.Load() != 1 || jsonRequests.Load() != 3 {
		t.Fatalf("binary attempts %d (want 1), json requests %d (want 3)",
			binaryAttempts.Load(), jsonRequests.Load())
	}

	// DisableBinary never probes at all.
	binaryAttempts.Store(0)
	jsonRequests.Store(0)
	cj := New(ts.URL, Options{DisableBinary: true})
	if _, err := cj.Ingest([]lifelog.Event{click(1, 9)}); err != nil {
		t.Fatal(err)
	}
	if binaryAttempts.Load() != 0 || jsonRequests.Load() != 1 {
		t.Fatalf("DisableBinary still probed: binary %d json %d", binaryAttempts.Load(), jsonRequests.Load())
	}
}

// TestRetryAfterForms: both RFC 9110 forms parse, nonsense yields zero,
// and nothing can dictate a backoff beyond the clamp.
func TestRetryAfterForms(t *testing.T) {
	var header atomic.Value
	header.Store("1")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := header.Load().(string); h != "" {
			w.Header().Set("Retry-After", h)
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.Error{Message: "busy"})
	}))
	defer ts.Close()
	c := New(ts.URL, Options{})

	check := func(h string, want func(time.Duration) bool, desc string) {
		t.Helper()
		header.Store(h)
		_, err := c.Ingest([]lifelog.Event{click(1, 1)})
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Fatalf("Retry-After %q: err %v", h, err)
		}
		if !want(apiErr.RetryAfter) {
			t.Errorf("Retry-After %q: parsed %v, want %s", h, apiErr.RetryAfter, desc)
		}
	}
	check("2", func(d time.Duration) bool { return d == 2*time.Second }, "2s")
	check(time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat),
		func(d time.Duration) bool { return d > time.Second && d <= 3*time.Second }, "(1s, 3s]")
	// HTTP-date in the past: retry immediately, never negative.
	check(time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat),
		func(d time.Duration) bool { return d == 0 }, "0")
	check("999999", func(d time.Duration) bool { return d == maxRetryAfter }, "the clamp")
	check("-5", func(d time.Duration) bool { return d == 0 }, "0")
	check("garbage", func(d time.Duration) bool { return d == 0 }, "0")
}

func TestIngesterRetriesBackpressure(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(wire.Error{Message: "ingest queue full"})
			return
		}
		writeIngestResponse(w, r, wire.IngestResponse{Processed: countIngestEvents(r), CoalescedWith: 1})
	}))
	defer ts.Close()

	in := NewIngester(New(ts.URL, Options{}), func(in *Ingester) {
		in.BatchSize = 2
		in.Manual = true
		in.OnError = func(_ []lifelog.Event, err error) { t.Errorf("gave up: %v", err) }
	})
	in.Add(click(1, 1))
	in.Add(click(1, 2)) // overflow → ship → two 503s → success on third try
	in.Close()
	st := in.Stats()
	if st.Retries != 2 || st.Processed != 2 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestIngesterDropsOnHardError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(wire.Error{Message: "malformed stream"})
	}))
	defer ts.Close()

	var dropped int
	in := NewIngester(New(ts.URL, Options{}), func(in *Ingester) {
		in.BatchSize = 4
		in.Manual = true
		in.OnError = func(events []lifelog.Event, err error) {
			dropped += len(events)
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Temporary() {
				t.Errorf("unexpected error shape: %v", err)
			}
		}
	})
	for seq := 1; seq <= 4; seq++ {
		in.Add(click(1, seq))
	}
	in.Close()
	st := in.Stats()
	if dropped != 4 || st.Dropped != 4 || st.Retries != 0 {
		t.Fatalf("dropped %d, stats %+v", dropped, st)
	}
}

// TestIngesterConcurrentClose is the double-close regression: every Close
// that returns must imply the tail batch is on the wire. Previously a
// second concurrent Close could return while the first was still shipping
// the tail, so a caller that Closed-then-exited could lose it.
func TestIngesterConcurrentClose(t *testing.T) {
	const tail = 3
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A slow ship keeps the first Close inside its tail flush long
		// enough for the second Close to race it.
		time.Sleep(30 * time.Millisecond)
		writeIngestResponse(w, r, wire.IngestResponse{Processed: countIngestEvents(r), CoalescedWith: 1})
	}))
	defer ts.Close()

	in := NewIngester(New(ts.URL, Options{}), func(in *Ingester) {
		in.Manual = true
		in.OnError = func(_ []lifelog.Event, err error) { t.Errorf("ship failed: %v", err) }
	})
	for seq := 1; seq <= tail; seq++ {
		if err := in.Add(click(1, seq)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in.Close()
			if st := in.Stats(); st.Processed != tail {
				t.Errorf("Close returned with %d of %d tail events shipped: %+v", st.Processed, tail, st)
			}
		}()
	}
	wg.Wait()
}

func TestIngesterBackgroundFlush(t *testing.T) {
	c, _ := liveServer(t)
	if err := c.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	in := NewIngester(c, func(in *Ingester) {
		in.BatchSize = 1000
		in.FlushEvery = 5 * time.Millisecond
	})
	defer in.Close()
	in.Add(click(1, 1))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if in.Stats().Processed == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("background flusher never shipped: %+v", in.Stats())
}

// TestIngesterCloseCutsBackoffShort is the shutdown-stall regression: the
// 503 backoff used to be an uninterruptible time.Sleep held under sendMu,
// so Close (and every other flush) could wait up to MaxRetries × 30s
// behind one throttled batch. Close must now cut the wait short while the
// batch still gets a final attempt.
func TestIngesterCloseCutsBackoffShort(t *testing.T) {
	var calls atomic.Int32
	firstSeen := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			close(firstSeen)
		}
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.Error{Message: "busy"})
	}))
	defer ts.Close()

	var dropped int
	in := NewIngester(New(ts.URL, Options{}), func(in *Ingester) {
		in.Manual = true
		in.MaxRetries = 3
		in.OnError = func(events []lifelog.Event, err error) { dropped += len(events) }
	})
	if err := in.Add(click(1, 1)); err != nil {
		t.Fatal(err)
	}
	go in.Flush() // enters the 30s backoff after the first 503
	select {
	case <-firstSeen:
	case <-time.After(5 * time.Second):
		t.Fatal("flush never reached the server")
	}
	start := time.Now()
	in.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v — backoff not interrupted", elapsed)
	}
	// The throttled batch got its final attempt (≥ 2 server calls) and was
	// then handed to OnError rather than silently lost.
	if calls.Load() < 2 {
		t.Fatalf("server saw %d calls, want the interrupted batch retried once more", calls.Load())
	}
	if st := in.Stats(); st.Dropped != 1 || dropped != 1 {
		t.Fatalf("dropped %d / OnError %d, want 1/1: %+v", st.Dropped, dropped, st)
	}
}
