package synth

import (
	"errors"
	"time"

	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/rng"
)

// WebLog generation: the organic browsing stream that feeds the LifeLogs
// Pre-processor. Volumes follow each user's Activity level; action choice
// follows the user's interest distribution over coarse buckets combined
// with a global Zipf popularity law inside the bucket (real click-streams
// are popularity-skewed and interest-clustered at once).

// WebLogConfig controls stream generation.
type WebLogConfig struct {
	Start time.Time
	Weeks int
	Seed  uint64
	// TransactionBias scales how strongly high-drive users transact
	// organically (gives the subjective features real signal).
	TransactionBias float64
}

// GenerateWebLogs streams events for the whole population into sink in
// timestamp order per user (global order is by week then user). The sink is
// typically a lifelog.Writer; any error aborts generation.
func (p *Population) GenerateWebLogs(cfg WebLogConfig, sink func(lifelog.Event) error) error {
	if sink == nil {
		return errors.New("synth: nil sink")
	}
	if cfg.Weeks < 1 {
		return errors.New("synth: need at least one week")
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2006, time.January, 2, 0, 0, 0, 0, time.UTC)
	}
	r := rng.New(cfg.Seed ^ 0xabcdef)
	zipf := rng.NewZipf(lifelog.ActionUniverse/lifelog.NumActionBuckets+1, 1.05)
	// Per-user monotone cursor: the sessionizer downstream requires
	// non-decreasing per-user timestamps.
	cursor := make([]time.Time, len(p.Users))
	for week := 0; week < cfg.Weeks; week++ {
		weekStart := cfg.Start.Add(time.Duration(week) * 7 * 24 * time.Hour)
		for i := range p.Users {
			u := &p.Users[i]
			// Poisson-ish event count via exponential thinning.
			n := 0
			expected := u.Activity
			for expected > 0 {
				if expected >= 1 {
					n++
					expected--
					continue
				}
				if r.Bool(expected) {
					n++
				}
				break
			}
			if n == 0 {
				continue
			}
			// Events cluster into 1-3 sessions at random offsets.
			sessions := 1 + r.Intn(3)
			perSess := (n + sessions - 1) / sessions
			ev := 0
			for s := 0; s < sessions && ev < n; s++ {
				sessStart := weekStart.Add(time.Duration(r.Intn(7*24*60)) * time.Minute)
				if !cursor[i].IsZero() && sessStart.Before(cursor[i]) {
					sessStart = cursor[i].Add(time.Duration(35+r.Intn(90)) * time.Minute)
				}
				at := sessStart
				for k := 0; k < perSess && ev < n; k++ {
					bucket := r.Categorical(u.InterestBuckets)
					within := zipf.Draw(r)
					action := uint32(bucket*lifelog.ActionUniverse/lifelog.NumActionBuckets + within)
					if action >= lifelog.ActionUniverse {
						action = lifelog.ActionUniverse - 1
					}
					typ := lifelog.EventClick
					val := float32(0)
					switch {
					case r.Bool(0.25):
						typ = lifelog.EventPageView
						val = float32(10 + r.Intn(300)) // dwell seconds
					case r.Bool(0.08):
						typ = lifelog.EventSearch
					case r.Bool(cfg.TransactionBias * sigmoid(u.BaseDrive+objSignal(u)*0.5)):
						typ = lifelog.EventInfoRequest
					}
					if err := sink(lifelog.Event{
						UserID: u.ID,
						Time:   at,
						Type:   typ,
						Action: action,
						Value:  val,
					}); err != nil {
						return err
					}
					cursor[i] = at
					at = at.Add(time.Duration(20+r.Intn(400)) * time.Second)
					ev++
				}
			}
		}
	}
	return nil
}

// EnrollmentGroundTruth marks which users would organically enroll in the
// period — used by tests to check that subjective features carry signal.
func (p *Population) EnrollmentGroundTruth(seed uint64) []bool {
	r := rng.New(seed)
	out := make([]bool, len(p.Users))
	for i := range p.Users {
		u := &p.Users[i]
		out[i] = r.Bool(p.RespondProbability(u, emotion.Attribute(0), true))
	}
	return out
}
