// Package synth generates the synthetic stand-in for the paper's
// proprietary emagister.com data: a seeded population whose members carry
// latent emotional sensibilities, socio-demographics, browsing behaviour
// over the 984-action universe, and a ground-truth response model in which
// emotional-attribute match genuinely drives campaign response.
//
// The substitution logic (DESIGN.md §2): the paper's evaluation only needs a
// population whose response behaviour *correlates with emotional
// attributes*. The generator plants that correlation as ground truth — the
// latent sensibility vector is never exposed to the learners, only observed
// noisily through Gradual EIT answers and interactions — so the
// SPA-vs-baseline delta measured downstream is a property of the method,
// not of leaked labels.
//
// Calibration targets (§5.4 of the paper, measured by cmd/spabench):
//   - base redemption of an untargeted campaign ≈ 11 % (the rate implied by
//     "improved the redemption ... in a 90 %" against the 21 % achieved),
//   - enough learnable signal that a calibrated ranker captures ≥ 76 % of
//     responders at 40 % contact depth.
package synth

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/rng"
)

// NumObjective is the number of objective socio-demographic features.
const NumObjective = 8

// ObjectiveNames labels the objective feature block.
func ObjectiveNames() []string {
	return []string{
		"obj_age", "obj_gender", "obj_education", "obj_employment",
		"obj_income_band", "obj_city_size", "obj_prior_courses", "obj_tenure_months",
	}
}

// User is one synthetic member of the population. Latent* fields are ground
// truth hidden from the learners.
type User struct {
	ID        uint64
	Objective []float64

	// LatentSens is the true emotional sensibility per attribute, in [0,1].
	LatentSens [emotion.NumAttributes]float64
	// LatentVal is the true valence sign the user attaches to each
	// attribute (approach attributes are positive for most users, but a
	// minority inverts — e.g. "impatient" users who *like* urgency).
	LatentVal [emotion.NumAttributes]float64
	// Activity scales browsing volume (events per simulated week).
	Activity float64
	// BaseDrive is the user's idiosyncratic response offset.
	BaseDrive float64
	// InterestBuckets is the user's affinity over coarse action buckets.
	InterestBuckets []float64
	// AnswerRate is the probability the user answers an EIT question.
	AnswerRate float64
}

// Config tunes the generator.
type Config struct {
	NumUsers int
	Seed     uint64
	// TargetBaseRate is the untargeted response rate to calibrate to.
	TargetBaseRate float64
	// ObjectiveWeight scales how much socio-demographics drive response.
	ObjectiveWeight float64
	// EmotionalWeight scales how much emotional match drives response.
	EmotionalWeight float64
	// NoiseStd is the per-touch idiosyncratic noise.
	NoiseStd float64
}

// DefaultConfig returns the calibrated defaults (see cmd/spabench output for the
// resulting Fig. 6 shape).
func DefaultConfig(numUsers int, seed uint64) Config {
	return Config{
		NumUsers:        numUsers,
		Seed:            seed,
		TargetBaseRate:  0.056,
		ObjectiveWeight: 0.85,
		EmotionalWeight: 5.2,
		NoiseStd:        0.9,
	}
}

func (c Config) validate() error {
	if c.NumUsers < 10 {
		return errors.New("synth: need at least 10 users")
	}
	if c.TargetBaseRate <= 0 || c.TargetBaseRate >= 1 {
		return fmt.Errorf("synth: base rate %v out of (0,1)", c.TargetBaseRate)
	}
	if c.NoiseStd < 0 || c.ObjectiveWeight < 0 || c.EmotionalWeight < 0 {
		return errors.New("synth: negative weights")
	}
	return nil
}

// Population is the generated universe plus the calibrated response model.
type Population struct {
	Users []User
	cfg   Config
	// alpha is the calibrated intercept of the response model.
	alpha float64
	rng   *rng.RNG
}

// Generate builds a deterministic population from the config.
func Generate(cfg Config) (*Population, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	p := &Population{cfg: cfg, rng: r.Split()}
	p.Users = make([]User, cfg.NumUsers)
	interestAlpha := make([]float64, lifelog.NumActionBuckets)
	for i := range interestAlpha {
		interestAlpha[i] = 0.35
	}
	for i := range p.Users {
		u := &p.Users[i]
		u.ID = uint64(i + 1)
		u.Objective = []float64{
			clampF(r.Gaussian(34, 11), 16, 75), // age
			float64(r.Intn(2)),                 // gender (binary proxy)
			float64(1 + r.Intn(5)),             // education level 1..5
			float64(r.Intn(4)),                 // employment status
			clampF(r.Gaussian(2.5, 1.2), 0, 6), // income band
			float64(r.Intn(5)),                 // city size class
			math.Floor(r.Exp(0.7)),             // prior courses taken
			clampF(r.Gaussian(18, 12), 0, 120), // months since registration
		}
		// Latent sensibilities: sparse-ish Beta draws — most users have one
		// or two dominant attributes, mirroring "dominant attributes" in §4.
		for a := 0; a < emotion.NumAttributes; a++ {
			if r.Bool(0.10) {
				u.LatentSens[a] = r.Beta(5, 2) // a dominant attribute
			} else {
				u.LatentSens[a] = r.Beta(1, 8)
			}
			base := emotion.Attribute(a).BaseValence()
			sign := 1.0
			if r.Bool(0.10) {
				sign = -1 // minority inverts the population polarity
			}
			u.LatentVal[a] = sign * float64(base.Polarity())
		}
		u.Activity = clampF(r.Exp(1.0/6.0), 0.5, 60) // mean ~6 events/week
		u.BaseDrive = r.NormFloat64() * 0.25
		u.InterestBuckets = r.Dirichlet(interestAlpha)
		u.AnswerRate = clampF(r.Beta(5, 3), 0.05, 0.98) // mean ~0.63
	}
	p.calibrate()
	return p, nil
}

// Len returns the population size.
func (p *Population) Len() int { return len(p.Users) }

// User returns the user with the given ID.
func (p *Population) User(id uint64) (*User, error) {
	if id == 0 || int(id) > len(p.Users) {
		return nil, fmt.Errorf("synth: no user %d", id)
	}
	return &p.Users[id-1], nil
}

// Alpha exposes the calibrated intercept (reporting only).
func (p *Population) Alpha() float64 { return p.alpha }

// Config returns the generator configuration.
func (p *Population) Config() Config { return p.cfg }

// objSignal is the standardized socio-demographic drive: younger, more
// educated, more-experienced users respond more — the structure a
// 2006-style objective-only scorer can learn.
func objSignal(u *User) float64 {
	age := (u.Objective[0] - 34) / 11
	edu := (u.Objective[2] - 3) / 1.4
	prior := math.Min(u.Objective[6], 5) / 2.5
	tenure := (u.Objective[7] - 18) / 12
	return -0.45*age + 0.5*edu + 0.6*prior - 0.25*tenure
}

// EmoMatch is the ground-truth emotional resonance of messaging a user on
// the given attribute: sensibility × valence, in [-1, 1]. A standard
// (non-emotional) message has match 0.
func (u *User) EmoMatch(attr emotion.Attribute, standard bool) float64 {
	if standard || int(attr) < 0 || int(attr) >= emotion.NumAttributes {
		return 0
	}
	return u.LatentSens[attr] * u.LatentVal[attr]
}

// RespondProbability is the ground-truth probability that the user executes
// a transaction after a campaign touch carrying the given message
// attribute. Deterministic per (user, attr) up to the campaign driver's
// noise draw, which the caller supplies via its own RNG (keeping the
// population immutable and shareable).
func (p *Population) RespondProbability(u *User, attr emotion.Attribute, standard bool) float64 {
	// Behavioural term: heavier browsers convert more — the signal the
	// LifeLog subjective features expose to the learners.
	activity := 0.7 * (math.Log1p(u.Activity) - 1.9)
	z := p.alpha +
		p.cfg.ObjectiveWeight*objSignal(u) +
		p.cfg.EmotionalWeight*u.EmoMatch(attr, standard) +
		activity +
		u.BaseDrive
	return sigmoid(z)
}

// calibrate bisects the intercept so that the mean response probability to
// a *standard* (emotionally neutral) touch equals TargetBaseRate.
func (p *Population) calibrate() {
	lo, hi := -12.0, 6.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		p.alpha = mid
		var sum float64
		for i := range p.Users {
			sum += p.RespondProbability(&p.Users[i], 0, true)
		}
		if sum/float64(len(p.Users)) > p.cfg.TargetBaseRate {
			hi = mid
		} else {
			lo = mid
		}
	}
	p.alpha = (lo + hi) / 2
}

// AnswerEIT simulates the user answering a Gradual EIT item: the user picks
// the option whose attribute impacts best align with their latent state,
// softmax-tempered so answers are informative but noisy. Returns the chosen
// option index, or -1 when the user ignores the question.
func (p *Population) AnswerEIT(u *User, item emotion.Item, bank *emotion.Bank, r *rng.RNG) (int, error) {
	if r == nil {
		return -1, errors.New("synth: nil rng")
	}
	if !r.Bool(u.AnswerRate) {
		return -1, nil // no answer — the paper's relevance-feedback sparsity
	}
	weights := make([]float64, len(item.Options))
	for oi := range item.Options {
		impacts, err := bank.Score(emotion.Answer{ItemID: item.ID, Option: oi})
		if err != nil {
			return -1, err
		}
		var affinity float64
		for attr, v := range impacts {
			// Alignment between the option's implied valence and the user's
			// latent (sensibility-weighted) valence.
			affinity += u.LatentSens[attr] * u.LatentVal[attr] * float64(v)
		}
		weights[oi] = math.Exp(8.0 * affinity)
	}
	return r.Categorical(weights), nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
