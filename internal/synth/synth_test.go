package synth

import (
	"math"
	"testing"
	"time"

	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/rng"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(500, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(500, 42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Users {
		if a.Users[i].LatentSens != b.Users[i].LatentSens {
			t.Fatalf("user %d latents diverge across same-seed runs", i)
		}
		if a.Users[i].Objective[0] != b.Users[i].Objective[0] {
			t.Fatalf("user %d objectives diverge", i)
		}
	}
	if a.Alpha() != b.Alpha() {
		t.Fatal("calibration diverges")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(DefaultConfig(100, 1))
	b, _ := Generate(DefaultConfig(100, 2))
	same := 0
	for i := range a.Users {
		if a.Users[i].LatentSens == b.Users[i].LatentSens {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical users across seeds", same)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumUsers: 5, TargetBaseRate: 0.1},
		{NumUsers: 100, TargetBaseRate: 0},
		{NumUsers: 100, TargetBaseRate: 1},
		{NumUsers: 100, TargetBaseRate: 0.1, NoiseStd: -1},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestUserFieldsInRange(t *testing.T) {
	p, _ := Generate(DefaultConfig(2000, 7))
	for i := range p.Users {
		u := &p.Users[i]
		if u.ID != uint64(i+1) {
			t.Fatalf("user %d id %d", i, u.ID)
		}
		if len(u.Objective) != NumObjective {
			t.Fatalf("objective len %d", len(u.Objective))
		}
		if u.Objective[0] < 16 || u.Objective[0] > 75 {
			t.Fatalf("age %v", u.Objective[0])
		}
		for a, s := range u.LatentSens {
			if s < 0 || s > 1 {
				t.Fatalf("sens[%d]=%v", a, s)
			}
		}
		for a, v := range u.LatentVal {
			if v < -1 || v > 1 {
				t.Fatalf("val[%d]=%v", a, v)
			}
		}
		if u.Activity <= 0 || u.AnswerRate <= 0 || u.AnswerRate > 1 {
			t.Fatalf("activity %v answer %v", u.Activity, u.AnswerRate)
		}
		var sum float64
		for _, w := range u.InterestBuckets {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("interests sum %v", sum)
		}
	}
}

func TestUserLookup(t *testing.T) {
	p, _ := Generate(DefaultConfig(50, 1))
	u, err := p.User(10)
	if err != nil || u.ID != 10 {
		t.Fatalf("lookup: %v %v", u, err)
	}
	if _, err := p.User(0); err == nil {
		t.Fatal("user 0 resolved")
	}
	if _, err := p.User(51); err == nil {
		t.Fatal("user 51 resolved")
	}
}

func TestCalibrationHitsBaseRate(t *testing.T) {
	cfg := DefaultConfig(20000, 3)
	p, _ := Generate(cfg)
	var sum float64
	for i := range p.Users {
		sum += p.RespondProbability(&p.Users[i], 0, true)
	}
	got := sum / float64(p.Len())
	if math.Abs(got-cfg.TargetBaseRate) > 0.005 {
		t.Fatalf("calibrated base rate %v, want %v", got, cfg.TargetBaseRate)
	}
}

func TestEmotionalMatchMovesProbability(t *testing.T) {
	p, _ := Generate(DefaultConfig(5000, 5))
	// For users with a strongly positive latent attribute, messaging on it
	// must raise response probability vs the standard message.
	raised, total := 0, 0
	for i := range p.Users {
		u := &p.Users[i]
		for a := 0; a < emotion.NumAttributes; a++ {
			if u.LatentSens[a] > 0.7 && u.LatentVal[a] > 0 {
				std := p.RespondProbability(u, 0, true)
				emo := p.RespondProbability(u, emotion.Attribute(a), false)
				total++
				if emo > std {
					raised++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no strongly-sensitive users generated")
	}
	if raised != total {
		t.Fatalf("emotional match raised probability for %d/%d", raised, total)
	}
}

func TestAversionLowersProbability(t *testing.T) {
	p, _ := Generate(DefaultConfig(5000, 9))
	checked := 0
	for i := range p.Users {
		u := &p.Users[i]
		for a := 0; a < emotion.NumAttributes; a++ {
			if u.LatentSens[a] > 0.7 && u.LatentVal[a] < 0 {
				std := p.RespondProbability(u, 0, true)
				emo := p.RespondProbability(u, emotion.Attribute(a), false)
				checked++
				if emo >= std {
					t.Fatalf("aversion messaging raised probability: %v >= %v", emo, std)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no aversive users found")
	}
}

func TestAnswerEITInformative(t *testing.T) {
	p, _ := Generate(DefaultConfig(300, 11))
	bank := emotion.NewBank()
	r := rng.New(99)
	// Accumulate implied valence per user per attribute from answers and
	// compare against latents: correlation must be clearly positive.
	var agree, disagree int
	for i := range p.Users {
		u := &p.Users[i]
		u.AnswerRate = 1 // force answers for the statistical check
		implied := make([]float64, emotion.NumAttributes)
		for itemID := 0; itemID < bank.Len(); itemID++ {
			item, _ := bank.Item(itemID)
			opt, err := p.AnswerEIT(u, item, bank, r)
			if err != nil {
				t.Fatal(err)
			}
			if opt < 0 {
				continue
			}
			impacts, _ := bank.Score(emotion.Answer{ItemID: itemID, Option: opt})
			for attr, v := range impacts {
				implied[attr] += float64(v)
			}
		}
		for a := 0; a < emotion.NumAttributes; a++ {
			if u.LatentSens[a] < 0.5 || implied[a] == 0 {
				continue
			}
			latentSign := u.LatentVal[a] > 0
			impliedSign := implied[a] > 0
			if latentSign == impliedSign {
				agree++
			} else {
				disagree++
			}
		}
	}
	if agree+disagree == 0 {
		t.Fatal("no informative answers collected")
	}
	rate := float64(agree) / float64(agree+disagree)
	if rate < 0.75 {
		t.Fatalf("EIT answers agree with latents only %.2f of the time", rate)
	}
}

func TestAnswerEITRespectsAnswerRate(t *testing.T) {
	p, _ := Generate(DefaultConfig(100, 13))
	bank := emotion.NewBank()
	item, _ := bank.Item(0)
	r := rng.New(1)
	u := &p.Users[0]
	u.AnswerRate = 0.0001
	skipped := 0
	for i := 0; i < 200; i++ {
		opt, err := p.AnswerEIT(u, item, bank, r)
		if err != nil {
			t.Fatal(err)
		}
		if opt == -1 {
			skipped++
		}
	}
	if skipped < 195 {
		t.Fatalf("low-answer-rate user answered too often: %d/200 skipped", skipped)
	}
	if _, err := p.AnswerEIT(u, item, bank, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestGenerateWebLogs(t *testing.T) {
	p, _ := Generate(DefaultConfig(200, 17))
	var events []lifelog.Event
	cfg := WebLogConfig{Weeks: 4, Seed: 1, TransactionBias: 0.3}
	if err := p.GenerateWebLogs(cfg, func(e lifelog.Event) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) < 200 {
		t.Fatalf("only %d events over 4 weeks for 200 users", len(events))
	}
	users := map[uint64]bool{}
	types := map[lifelog.EventType]int{}
	for _, e := range events {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid event: %v", err)
		}
		users[e.UserID] = true
		types[e.Type]++
	}
	if len(users) < 100 {
		t.Fatalf("only %d users active", len(users))
	}
	if types[lifelog.EventClick] == 0 || types[lifelog.EventPageView] == 0 {
		t.Fatalf("event mix %v", types)
	}
}

func TestGenerateWebLogsValidation(t *testing.T) {
	p, _ := Generate(DefaultConfig(50, 1))
	if err := p.GenerateWebLogs(WebLogConfig{Weeks: 1}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
	if err := p.GenerateWebLogs(WebLogConfig{Weeks: 0}, func(lifelog.Event) error { return nil }); err == nil {
		t.Fatal("zero weeks accepted")
	}
}

func TestWebLogsIntoLifelogWriter(t *testing.T) {
	p, _ := Generate(DefaultConfig(100, 19))
	dir := t.TempDir()
	w, err := lifelog.NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.GenerateWebLogs(WebLogConfig{Weeks: 2, Seed: 2, Start: time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)}, w.Append); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := lifelog.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != w.Count() {
		t.Fatalf("round trip %d events, wrote %d", len(got), w.Count())
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(DefaultConfig(10000, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRespondProbability(b *testing.B) {
	p, _ := Generate(DefaultConfig(1000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := &p.Users[i%p.Len()]
		p.RespondProbability(u, emotion.Attribute(i%emotion.NumAttributes), false)
	}
}
