package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/messaging"
	"repro/internal/sum"
)

func TestShardCountNormalization(t *testing.T) {
	cases := map[int]int{0: 16, -3: 16, 1: 1, 2: 2, 3: 4, 16: 16, 17: 32, 5000: 1024}
	for in, want := range cases {
		if got := shardCount(in); got != want {
			t.Errorf("shardCount(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestShardForIsStableAndInRange(t *testing.T) {
	s, err := New(Options{Shards: 8, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seen := make(map[*shard]int)
	for id := uint64(1); id <= 4096; id++ {
		sh := s.shardFor(id)
		if sh != s.shardFor(id) {
			t.Fatalf("shardFor(%d) unstable", id)
		}
		seen[sh]++
	}
	if len(seen) != 8 {
		t.Fatalf("sequential ids hit %d of 8 shards", len(seen))
	}
	for sh, n := range seen {
		// 4096 ids over 8 shards averages 512; a pathological mixer would
		// concentrate traffic and defeat the sharding entirely.
		if n < 256 || n > 768 {
			t.Fatalf("shard %p got %d of 4096 ids — bad spread", sh, n)
		}
	}
}

// workload is a deterministic mixed script: per-user event streams, EIT
// answers, rewards and punishes, interleaved across users the same way
// regardless of shard count.
type workload struct {
	users   []uint64
	events  []lifelog.Event
	answers map[uint64][]emotion.Answer
	rewards map[uint64][]emotion.Attribute
}

func makeWorkload(nUsers, eventsPerUser int, seed int64) workload {
	rng := rand.New(rand.NewSource(seed))
	w := workload{
		answers: make(map[uint64][]emotion.Answer),
		rewards: make(map[uint64][]emotion.Attribute),
	}
	for u := 0; u < nUsers; u++ {
		id := uint64(1000 + u*7) // spread over id space
		w.users = append(w.users, id)
	}
	types := []lifelog.EventType{
		lifelog.EventClick, lifelog.EventPageView, lifelog.EventEnroll,
		lifelog.EventInfoRequest,
	}
	for i := 0; i < nUsers*eventsPerUser; i++ {
		id := w.users[rng.Intn(len(w.users))]
		// Per-user timestamps must be non-decreasing; a global ascending
		// clock satisfies that for every user.
		at := t0.Add(-24*time.Hour + time.Duration(i)*time.Second)
		w.events = append(w.events, lifelog.Event{
			UserID: id,
			Time:   at,
			Type:   types[rng.Intn(len(types))],
			Action: uint32(rng.Intn(lifelog.ActionUniverse)),
		})
	}
	for _, id := range w.users {
		for q := 0; q < rng.Intn(4); q++ {
			w.answers[id] = append(w.answers[id], emotion.Answer{ItemID: q, Option: rng.Intn(2)})
		}
		for r := 0; r < rng.Intn(3); r++ {
			w.rewards[id] = append(w.rewards[id], emotion.AllAttributes()[rng.Intn(emotion.NumAttributes)])
		}
	}
	return w
}

func applyWorkload(t *testing.T, s *SPA, w workload) {
	t.Helper()
	for _, id := range w.users {
		if err := s.Register(id, []float64{float64(id % 50), 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.BatchIngest(w.events); err != nil {
		t.Fatal(err)
	}
	for _, id := range w.users {
		for _, ans := range w.answers[id] {
			if err := s.SubmitAnswer(id, ans); err != nil {
				t.Fatal(err)
			}
		}
		for _, attr := range w.rewards[id] {
			if err := s.Reward(id, []emotion.Attribute{attr}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedMatchesSingleShard is the equivalence property: the same
// workload pushed through a 1-shard core (the old single-mutex layout) and
// a 16-shard core must produce byte-identical serialized profiles for
// every user — sharding is a concurrency layout, never a semantic change.
func TestShardedMatchesSingleShard(t *testing.T) {
	w := makeWorkload(60, 25, 7)

	run := func(shards int) *SPA {
		s, err := New(Options{Shards: shards, Clock: clock.NewSimulated(t0)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		applyWorkload(t, s, w)
		return s
	}
	single := run(1)
	sharded := run(16)

	for _, id := range w.users {
		p1, err := single.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		pN, err := sharded.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		b1, bN := sum.Encode(&p1), sum.Encode(&pN)
		if !bytes.Equal(b1, bN) {
			t.Fatalf("user %d: profiles diverge between 1 and 16 shards\n1:  %v\n16: %v", id, p1, pN)
		}
	}
}

// TestShardedMatchesSingleShardDurable repeats the property through the
// write-through path: both cores persist, reopen, and must agree.
func TestShardedMatchesSingleShardDurable(t *testing.T) {
	w := makeWorkload(30, 15, 11)

	runAndReopen := func(shards int) *SPA {
		dir := t.TempDir()
		s, err := New(Options{DataDir: dir, Shards: shards, Clock: clock.NewSimulated(t0)})
		if err != nil {
			t.Fatal(err)
		}
		applyWorkload(t, s, w)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen with a different shard count: shards are a memory layout,
		// not a storage layout.
		s2, err := New(Options{DataDir: dir, Shards: shards * 4, Clock: clock.NewSimulated(t0)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s2.Close() })
		return s2
	}
	single := runAndReopen(1)
	sharded := runAndReopen(8)

	if single.Users() != len(w.users) || sharded.Users() != len(w.users) {
		t.Fatalf("user counts after reopen: %d / %d, want %d", single.Users(), sharded.Users(), len(w.users))
	}
	for _, id := range w.users {
		p1, err := single.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		pN, err := sharded.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sum.Encode(&p1), sum.Encode(&pN)) {
			t.Fatalf("user %d: durable profiles diverge", id)
		}
	}
}

func TestBatchIngestCounts(t *testing.T) {
	s, err := New(Options{Shards: 4, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Register(1, nil)
	s.Register(2, nil)
	events := []lifelog.Event{
		{UserID: 1, Time: t0.Add(-2 * time.Hour), Type: lifelog.EventClick, Action: 5},
		{UserID: 2, Time: t0.Add(-2 * time.Hour), Type: lifelog.EventClick, Action: 6},
		{UserID: 99, Time: t0.Add(-1 * time.Hour), Type: lifelog.EventClick, Action: 7},
		{UserID: 1, Time: t0.Add(-1 * time.Hour), Type: lifelog.EventEnroll, Action: 8},
	}
	processed, skipped, err := s.BatchIngest(events)
	if err != nil {
		t.Fatal(err)
	}
	if processed != 3 || skipped != 1 {
		t.Fatalf("processed %d skipped %d", processed, skipped)
	}
	if _, _, err := s.BatchIngest(nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchIngestOutOfOrderFails(t *testing.T) {
	s, err := New(Options{Shards: 1, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Register(1, nil)
	events := []lifelog.Event{
		{UserID: 1, Time: t0.Add(-1 * time.Hour), Type: lifelog.EventClick, Action: 5},
		{UserID: 1, Time: t0.Add(-2 * time.Hour), Type: lifelog.EventClick, Action: 6},
	}
	if _, _, err := s.BatchIngest(events); err == nil {
		t.Fatal("out-of-order stream accepted")
	}
	// The failing shard must not have mutated the profile.
	p, _ := s.Profile(1)
	for i, v := range p.Subjective {
		if v != 0 {
			t.Fatalf("subjective[%d] = %v after failed ingest", i, v)
		}
	}
}

// TestShardedCoreStress is the -race suite's center of gravity: many
// goroutines hammer mixed reads and writes on overlapping users across all
// shards of a durable core, while the store's background compactor runs.
func TestShardedCoreStress(t *testing.T) {
	const (
		users      = 64
		workers    = 8
		opsPerGor  = 300
		eventSpanS = 60
	)
	clk := clock.NewSimulated(t0)
	s, err := New(Options{
		DataDir: t.TempDir(),
		Shards:  8,
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for u := 1; u <= users; u++ {
		if err := s.Register(uint64(u), []float64{float64(u)}); err != nil {
			t.Fatal(err)
		}
	}
	product := messaging.Product{
		Name:            "Course in Digital Marketing",
		SalesAttributes: []emotion.Attribute{emotion.Motivated, emotion.Hopeful},
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for op := 0; op < opsPerGor; op++ {
				id := uint64(1 + rng.Intn(users))
				switch op % 6 {
				case 0: // ingest a small per-user event burst
					base := t0.Add(-time.Duration(1+op) * time.Hour)
					var events []lifelog.Event
					for i := 0; i < 4; i++ {
						events = append(events, lifelog.Event{
							UserID: id,
							Time:   base.Add(time.Duration(i*eventSpanS) * time.Second),
							Type:   lifelog.EventClick,
							Action: uint32(rng.Intn(lifelog.ActionUniverse)),
						})
					}
					if _, _, err := s.BatchIngest(events); err != nil {
						t.Errorf("ingest: %v", err)
						return
					}
				case 1:
					if _, err := s.AssignMessage(id, product); err != nil {
						t.Errorf("assign: %v", err)
						return
					}
				case 2:
					if _, err := s.Sensibilities(id); err != nil {
						t.Errorf("sensibilities: %v", err)
						return
					}
				case 3:
					if err := s.Reward(id, []emotion.Attribute{emotion.Motivated}); err != nil {
						t.Errorf("reward: %v", err)
						return
					}
				case 4:
					if _, err := s.Profile(id); err != nil {
						t.Errorf("profile: %v", err)
						return
					}
				case 5:
					if err := s.SubmitAnswer(id, emotion.Answer{ItemID: op % 5, Option: 0}); err != nil {
						t.Errorf("answer: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every profile must still be readable and persisted.
	if s.Users() != users {
		t.Fatalf("users %d", s.Users())
	}
	for u := 1; u <= users; u++ {
		if _, err := s.Profile(uint64(u)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentRegistrations registers disjoint user ranges from many
// goroutines; the count must come out exact (no lost updates).
func TestConcurrentRegistrations(t *testing.T) {
	s, err := New(Options{Shards: 16, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const perG, workers = 200, 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := uint64(1 + g*perG + i)
				if err := s.Register(id, nil); err != nil {
					t.Errorf("register %d: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Users(); got != perG*workers {
		t.Fatalf("registered %d, want %d", got, perG*workers)
	}
}

// TestBatchIngestAfterCloseFails: the write-through contract surfaces
// store shutdown instead of silently dropping durability.
func TestBatchIngestAfterCloseFails(t *testing.T) {
	s, err := New(Options{DataDir: t.TempDir(), Shards: 4, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	s.Register(1, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	events := []lifelog.Event{
		{UserID: 1, Time: t0.Add(-time.Hour), Type: lifelog.EventClick, Action: 5},
	}
	if _, _, err := s.BatchIngest(events); err == nil {
		t.Fatal("ingest after Close succeeded")
	}
}

func BenchmarkShardHashing(b *testing.B) {
	s, err := New(Options{Shards: 16, Clock: clock.NewSimulated(t0)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var sink *shard
	for i := 0; i < b.N; i++ {
		sink = s.shardFor(uint64(i))
	}
	_ = sink
}
