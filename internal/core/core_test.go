package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/attributes"
	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/messaging"
	"repro/internal/rng"
	"repro/internal/sum"
	"repro/internal/values"
)

var t0 = clock.Epoch

func newSPA(t *testing.T, dir string) *SPA {
	t.Helper()
	s, err := New(Options{DataDir: dir, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRegisterAndProfile(t *testing.T) {
	s := newSPA(t, "")
	if err := s.Register(1, []float64{30, 1, 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(1, nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := s.Register(0, nil); err == nil {
		t.Fatal("zero user accepted")
	}
	p, err := s.Profile(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.UserID != 1 || p.Objective[0] != 30 {
		t.Fatalf("profile %+v", p)
	}
	if _, err := s.Profile(99); !errors.Is(err, ErrNoProfile) {
		t.Fatalf("missing profile: %v", err)
	}
	if s.Users() != 1 {
		t.Fatalf("users %d", s.Users())
	}
}

func TestProfileCopyIsolation(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, []float64{5})
	p, _ := s.Profile(1)
	p.Objective[0] = 999
	p2, _ := s.Profile(1)
	if p2.Objective[0] != 5 {
		t.Fatal("profile copy leaked internal state")
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{DataDir: dir, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	s.Register(7, []float64{42})
	item, _ := s.NextQuestion(7)
	if err := s.SubmitAnswer(7, emotion.Answer{ItemID: item.ID, Option: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{DataDir: dir, Clock: clock.NewSimulated(t0.Add(time.Hour))})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Users() != 1 {
		t.Fatalf("reopened users %d", s2.Users())
	}
	p, err := s2.Profile(7)
	if err != nil {
		t.Fatal(err)
	}
	if p.AnsweredItems != 1 || p.Objective[0] != 42 {
		t.Fatalf("reopened profile %+v", p)
	}
}

func TestGradualEITFlow(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	for i := 0; i < 5; i++ {
		item, err := s.NextQuestion(1)
		if err != nil {
			t.Fatal(err)
		}
		if item.ID != i {
			t.Fatalf("question %d has id %d", i, item.ID)
		}
		if err := s.SubmitAnswer(1, emotion.Answer{ItemID: item.ID, Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	sens, err := s.Sensibilities(1)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, w := range sens {
		if w > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("answers produced no sensibility")
	}
	if _, err := s.NextQuestion(42); !errors.Is(err, ErrNoProfile) {
		t.Fatal("question for unknown user")
	}
}

func TestEITBankCyclesViaFacade(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	bankLen := 64
	for i := 0; i < bankLen; i++ {
		item, err := s.NextQuestion(1)
		if err != nil {
			t.Fatal(err)
		}
		s.SubmitAnswer(1, emotion.Answer{ItemID: item.ID, Option: 2})
	}
	item, err := s.NextQuestion(1)
	if err != nil {
		t.Fatalf("bank did not cycle: %v", err)
	}
	if item.ID != 0 {
		t.Fatalf("cycled item id %d", item.ID)
	}
}

func TestIngestEvents(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	events := []lifelog.Event{
		{UserID: 1, Time: t0.Add(-2 * time.Hour), Type: lifelog.EventClick, Action: 5},
		{UserID: 1, Time: t0.Add(-110 * time.Minute), Type: lifelog.EventEnroll, Action: 10},
		{UserID: 99, Time: t0.Add(-1 * time.Hour), Type: lifelog.EventClick, Action: 6},
	}
	processed, skipped, err := s.IngestEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if processed != 2 || skipped != 1 {
		t.Fatalf("processed %d skipped %d", processed, skipped)
	}
	p, _ := s.Profile(1)
	if p.Subjective[0] != math.Log1p(2) { // ll_events (log-compressed)
		t.Fatalf("subjective events %v", p.Subjective[0])
	}
	// Empty batch is fine.
	if _, _, err := s.IngestEvents(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRewardPunishViaFacade(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	if err := s.Reward(1, []emotion.Attribute{emotion.Hopeful}); err != nil {
		t.Fatal(err)
	}
	sens, _ := s.Sensibilities(1)
	if sens[emotion.Hopeful] <= 0 {
		t.Fatal("reward had no effect")
	}
	before := sens[emotion.Hopeful]
	if err := s.Punish(1, []emotion.Attribute{emotion.Hopeful}); err != nil {
		t.Fatal(err)
	}
	sens, _ = s.Sensibilities(1)
	if sens[emotion.Hopeful] >= before {
		t.Fatal("punish had no effect")
	}
	if err := s.Reward(99, nil); !errors.Is(err, ErrNoProfile) {
		t.Fatal("reward unknown user")
	}
	if err := s.Punish(99, nil); !errors.Is(err, ErrNoProfile) {
		t.Fatal("punish unknown user")
	}
}

func TestDominantAttributesAndAdvise(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	for i := 0; i < 6; i++ {
		s.Reward(1, []emotion.Attribute{emotion.Motivated})
	}
	dom, err := s.DominantAttributes(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dom) == 0 || dom[0].AttrID != int(emotion.Motivated) {
		t.Fatalf("dominant %v", dom)
	}
	adv, err := s.Advise(1, "training")
	if err != nil {
		t.Fatal(err)
	}
	if adv.Excitation[emotion.Motivated] <= 0 {
		t.Fatalf("advice excitation %v", adv.Excitation[emotion.Motivated])
	}
}

func TestAssignMessageViaFacade(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	product := messaging.Product{
		Name:            "Course X",
		SalesAttributes: []emotion.Attribute{emotion.Motivated, emotion.Hopeful},
	}
	// Fresh profile → standard message.
	asg, err := s.AssignMessage(1, product)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Case != messaging.CaseStandard {
		t.Fatalf("fresh profile case %v", asg.Case)
	}
	// Build sensibility then re-assign.
	for i := 0; i < 8; i++ {
		s.Reward(1, []emotion.Attribute{emotion.Motivated})
	}
	asg, err = s.AssignMessage(1, product)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Case == messaging.CaseStandard {
		t.Fatal("built sensibility ignored")
	}
	if asg.Message.Attribute != emotion.Motivated {
		t.Fatalf("assigned %v", asg.Message.Attribute)
	}
}

func TestTrainAndSelect(t *testing.T) {
	s := newSPA(t, "")
	r := rng.New(3)
	const n = 300
	// Register users; give responders distinctive objective attributes.
	responders := map[uint64]bool{}
	for id := uint64(1); id <= n; id++ {
		hot := r.Bool(0.3)
		responders[id] = hot
		x := []float64{r.NormFloat64(), r.NormFloat64()}
		if hot {
			x[0] += 2.5
		}
		if err := s.Register(id, x); err != nil {
			t.Fatal(err)
		}
	}
	var feats [][]float64
	var labels []bool
	for id := uint64(1); id <= n; id++ {
		fv, err := s.FeatureVector(id)
		if err != nil {
			t.Fatal(err)
		}
		feats = append(feats, fv)
		labels = append(labels, responders[id])
	}
	if err := s.TrainPropensity(feats, labels); err != nil {
		t.Fatal(err)
	}
	top, err := s.SelectTop(50)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, id := range top {
		if responders[id] {
			hot++
		}
	}
	if hot < 35 {
		t.Fatalf("selection found only %d/50 responders", hot)
	}
}

func TestPropensityBeforeTraining(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, []float64{1})
	if _, err := s.Propensity(1); !errors.Is(err, ErrNoModel) {
		t.Fatalf("untrained propensity: %v", err)
	}
	if _, err := s.SelectTop(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTrainPropensityValidation(t *testing.T) {
	s := newSPA(t, "")
	if err := s.TrainPropensity([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if err := s.TrainPropensity(nil, nil); err == nil {
		t.Fatal("empty training accepted")
	}
}

func TestRegistryVocabulary(t *testing.T) {
	s := newSPA(t, "")
	reg := s.Registry()
	if len(reg.OfKind(attributes.Objective)) != 8 {
		t.Fatalf("objective attrs %d", len(reg.OfKind(attributes.Objective)))
	}
	if len(reg.OfKind(attributes.Subjective)) != lifelog.DenseLen {
		t.Fatalf("subjective attrs %d", len(reg.OfKind(attributes.Subjective)))
	}
	if len(reg.OfKind(attributes.Emotional)) != emotion.NumAttributes {
		t.Fatalf("emotional attrs %d", len(reg.OfKind(attributes.Emotional)))
	}
}

func TestBadParamsRejected(t *testing.T) {
	bad := sum.Params{EITAlpha: 5, RewardAlpha: 0.2, ActivationStep: 0.2, HalfLifeDays: 10}
	if _, err := New(Options{Params: bad}); err == nil {
		t.Fatal("invalid SUM params accepted")
	}
}

func TestMessageDBAccessible(t *testing.T) {
	s := newSPA(t, "")
	if s.MessageDB() == nil {
		t.Fatal("nil message db")
	}
	if err := s.MessageDB().SetPriority(emotion.Lively, 9); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFacadeSubmitAnswer(b *testing.B) {
	s, err := New(Options{Clock: clock.NewSimulated(t0)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.Register(1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item, err := s.NextQuestion(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.SubmitAnswer(1, emotion.Answer{ItemID: item.ID, Option: i % 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHumanValuesScale(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	if _, err := s.ValuesScale(1); err == nil {
		t.Fatal("scale without observations")
	}
	if err := s.ObserveValueAction(99, "enroll_career_course", 1); !errors.Is(err, ErrNoProfile) {
		t.Fatal("unknown user observed")
	}
	for i := 0; i < 5; i++ {
		if err := s.ObserveValueAction(1, "enroll_career_course", 1); err != nil {
			t.Fatal(err)
		}
	}
	scale, err := s.ValuesScale(1)
	if err != nil {
		t.Fatal(err)
	}
	if scale[values.Achievement] <= scale[values.Hedonism] {
		t.Fatalf("career actions did not move scale: %v", scale)
	}
	// Coherence against a matching stated scale.
	var stated values.Scale
	stated[values.Achievement] = 0.6
	stated[values.SelfDirection] = 0.4
	if err := s.SetExplicitValues(1, stated); err != nil {
		t.Fatal(err)
	}
	c, err := s.ValuesCoherence(1)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.5 {
		t.Fatalf("aligned coherence %v", c)
	}
}
