package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/keyspace"
	"repro/internal/store"
	"repro/internal/sum"
)

// Shard handoff (DESIGN.md §10). Moving a set of keyspace slots between
// cluster nodes reuses the replication machinery with one twist on each
// side:
//
//   - The source ships only the records of the moving slots. Both the
//     snapshot export and the tailed waves pass through a slot filter —
//     profile keys name their user ("sum/" + id), the user names the slot
//     (keyspace.Partition), and wave annotations are re-encoded with only
//     the surviving interaction events. Keys outside the profile key space
//     never move; they are node-local state.
//   - The target applies shipped records as LOCAL commits. A follower
//     mirrors the leader's log positions exactly (store.ApplyReplicated),
//     but a handoff target has its own live log, so each filtered wave
//     becomes an ordinary WriteBatch that the store stamps with the next
//     local LSN. The source's LSNs still flow back as stream acks — they
//     are positions in the source's log, not the target's.
//
// ApplyHandoffWave's install half is ApplyReplicatedWave's, under the same
// index-ascending shard lock order, so it is deadlock-free against local
// commits and follower applies alike.

// entrySlot resolves a store key to its keyspace slot; ok is false for
// keys outside the profile key space.
func entrySlot(key []byte) (int, bool) {
	id, ok := sumKeyUser(key)
	if !ok {
		return 0, false
	}
	return keyspace.Partition(id), true
}

// FilterEntriesForSlots keeps the entries whose user belongs to one of the
// given slots. Keys outside the profile key space are dropped: they carry
// node-local state and never travel in a handoff.
func FilterEntriesForSlots(entries []store.LogEntry, slots *keyspace.SlotSet) []store.LogEntry {
	out := make([]store.LogEntry, 0, len(entries))
	for _, e := range entries {
		if slot, ok := entrySlot(e.Key); ok && slots.Has(slot) {
			out = append(out, e)
		}
	}
	return out
}

// FilterWaveForSlots projects one log record onto a slot set: entries are
// filtered by their user's slot, and the annotation is re-encoded with only
// the interaction events of users in those slots. Both results are empty
// when the wave touched none of the slots — the caller skips shipping it
// (the target never sees the record, which is fine because handoff waves
// carry no positions the target must stay contiguous with).
func FilterWaveForSlots(annotation []byte, entries []store.LogEntry, slots *keyspace.SlotSet) ([]byte, []store.LogEntry, error) {
	kept := FilterEntriesForSlots(entries, slots)
	events, err := decodeWaveAnnotation(annotation)
	if err != nil {
		return nil, nil, err
	}
	var keptEvents []taggedEvent
	for _, te := range events {
		if slots.Has(keyspace.Partition(te.UserID)) {
			keptEvents = append(keptEvents, te)
		}
	}
	var ann []byte
	if len(keptEvents) > 0 {
		ann = encodeWaveAnnotation(keptEvents)
	}
	return ann, kept, nil
}

// ExportSlotSnapshot captures the live profile pairs of the given slots and
// the log position the capture is current through — the bootstrap half of a
// handoff stream, as ExportSnapshot is for a full follower.
func (s *SPA) ExportSlotSnapshot(slots *keyspace.SlotSet) ([]store.LogEntry, uint64, error) {
	pairs, lsn, err := s.ExportSnapshot()
	if err != nil {
		return nil, 0, err
	}
	return FilterEntriesForSlots(pairs, slots), lsn, nil
}

// ApplyHandoffWave applies one slot-filtered shipped record on a handoff
// target: the entries commit to the local store as an ordinary batch (the
// store assigns the next local LSN — the source's positions have no meaning
// in this log), then install into shard memory and publish read snapshots
// exactly as ApplyReplicatedWave does, with the annotation's interaction
// events folded into the CF matrix and re-persisted for this node's own
// future followers.
func (s *SPA) ApplyHandoffWave(annotation []byte, entries []store.LogEntry) error {
	if s.db == nil {
		return errors.New("core: handoff requires a durable store")
	}
	if len(entries) == 0 {
		return errors.New("core: empty handoff wave")
	}
	events, err := decodeWaveAnnotation(annotation)
	if err != nil {
		return fmt.Errorf("core: handoff wave: %w", err)
	}
	type shardWork struct {
		install map[uint64]*sum.Profile
		drop    []uint64
		events  []taggedEvent
	}
	work := make(map[int]*shardWork)
	get := func(idx int) *shardWork {
		w := work[idx]
		if w == nil {
			w = &shardWork{}
			work[idx] = w
		}
		return w
	}
	batch := new(store.WriteBatch)
	batch.SetAnnotation(annotation)
	for _, e := range entries {
		id, ok := sumKeyUser(e.Key)
		if !ok {
			return fmt.Errorf("core: handoff wave entry outside profile key space: %q", e.Key)
		}
		w := get(s.shardIndexFor(id))
		if e.Tombstone {
			batch.Delete(e.Key)
			w.drop = append(w.drop, id)
			continue
		}
		p, err := sum.Decode(e.Value)
		if err != nil {
			return fmt.Errorf("core: handoff wave profile %d: %w", id, err)
		}
		if p.UserID != id {
			return fmt.Errorf("core: handoff wave key/profile user mismatch: %d vs %d", id, p.UserID)
		}
		batch.Put(e.Key, e.Value)
		if w.install == nil {
			w.install = make(map[uint64]*sum.Profile)
		}
		w.install[id] = p
	}
	for _, te := range events {
		w := get(s.shardIndexFor(te.UserID))
		w.events = append(w.events, te)
	}

	idxs := make([]int, 0, len(work))
	for idx := range work {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		s.shards[idx].mu.Lock()
	}
	unlock := func() {
		for i := len(idxs) - 1; i >= 0; i-- {
			s.shards[idxs[i]].mu.Unlock()
		}
	}
	if err := s.db.Apply(batch); err != nil {
		unlock()
		return err
	}
	recorded := 0
	for _, idx := range idxs {
		sh := s.shards[idx]
		w := work[idx]
		changed := make([]uint64, 0, len(w.install)+len(w.drop))
		for id, p := range w.install {
			if _, exists := sh.profiles[id]; !exists {
				s.users.Add(1)
			}
			sh.profiles[id] = p
			changed = append(changed, id)
		}
		for _, id := range w.drop {
			if _, exists := sh.profiles[id]; exists {
				s.users.Add(-1)
				delete(sh.profiles, id)
				changed = append(changed, id)
			}
		}
		recorded += s.publishShardLocked(sh, changed, w.events)
	}
	unlock()
	if recorded > 0 {
		s.invalidateRecommender()
	}
	return nil
}

// DropSlotUsers removes every resident user of the given slots from shard
// memory and publishes fresh read snapshots — the source's final step after
// ownership flips to the target. Durable records of the dropped users stay
// in the source's log (rewriting history would break its own followers);
// they are dead weight until compaction and are filtered out again if the
// slots ever hand back. Returns the number of users dropped.
func (s *SPA) DropSlotUsers(slots *keyspace.SlotSet) int {
	// With shards ≤ NumSlots a slot's users share one shard (shard index =
	// slot & mask), so only those shards need their write lock; with more
	// shards than slots every shard may hold slot users.
	candidates := make(map[int]bool)
	if len(s.shards) <= keyspace.NumSlots {
		for _, slot := range slots.Slots() {
			candidates[slot&int(s.mask)] = true
		}
	} else {
		for idx := range s.shards {
			candidates[idx] = true
		}
	}
	dropped := 0
	for idx, sh := range s.shards {
		if !candidates[idx] {
			continue
		}
		sh.mu.Lock()
		var changed []uint64
		for id := range sh.profiles {
			if slots.Has(keyspace.Partition(id)) {
				delete(sh.profiles, id)
				s.users.Add(-1)
				changed = append(changed, id)
			}
		}
		if len(changed) > 0 {
			dropped += len(changed)
			s.publishShardLocked(sh, changed, nil)
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		s.invalidateRecommender()
	}
	return dropped
}
