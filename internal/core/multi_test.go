package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/lifelog"
	"repro/internal/sum"
)

func clickAt(user uint64, at time.Time, action uint32) lifelog.Event {
	return lifelog.Event{UserID: user, Time: at, Type: lifelog.EventClick, Action: action}
}

// TestMultiIngestMatchesConcatenated is the coalescing equivalence: merging
// K batches into one MultiIngest call must leave every profile
// byte-identical to one BatchIngest over the concatenated stream — no event
// lost, no reordering — while attributing counts per batch. (Sequential
// per-batch calls are NOT the reference: each ingest call replaces the
// subjective digest with its own extractor output, so a merged call sees
// strictly more history per user than the last of K separate calls.)
func TestMultiIngestMatchesConcatenated(t *testing.T) {
	const users = 40
	base := t0.Add(-24 * time.Hour)
	var batches [][]lifelog.Event
	for b := 0; b < 6; b++ {
		var evs []lifelog.Event
		for u := 0; u < users; u++ {
			id := uint64(1 + u)
			// Later batches carry later timestamps, as sequential requests
			// from one submitter would.
			for i := 0; i < 3; i++ {
				evs = append(evs, clickAt(id, base.Add(time.Duration(b*100+i)*time.Second),
					uint32((b*31+u*7+i)%lifelog.ActionUniverse)))
			}
		}
		batches = append(batches, evs)
	}

	newCore := func() *SPA {
		s, err := New(Options{Shards: 8, Clock: clock.NewSimulated(t0)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		for u := 0; u < users; u++ {
			if err := s.Register(uint64(1+u), nil); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}

	seq := newCore()
	var concat []lifelog.Event
	for _, b := range batches {
		concat = append(concat, b...)
	}
	wantTotal, sk, err := seq.BatchIngest(concat)
	if err != nil || sk != 0 {
		t.Fatalf("concatenated ingest: processed %d skipped %d err %v", wantTotal, sk, err)
	}

	merged := newCore()
	outs := merged.MultiIngest(batches)
	gotTotal := 0
	for b, out := range outs {
		if out.Err != nil || out.SkippedUnknown != 0 || out.Processed != len(batches[b]) {
			t.Fatalf("batch %d: outcome %+v, want processed %d", b, out, len(batches[b]))
		}
		gotTotal += out.Processed
	}
	if gotTotal != wantTotal {
		t.Fatalf("merged processed %d, concatenated %d", gotTotal, wantTotal)
	}
	for u := 0; u < users; u++ {
		id := uint64(1 + u)
		p1, err := seq.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := merged.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sum.Encode(&p1), sum.Encode(&p2)) {
			t.Fatalf("user %d: sequential and merged ingest diverge", id)
		}
	}
}

// TestMultiIngestAttribution: skipped-unknown counts land on the batch that
// carried the unknown user's events, not on its co-committed neighbours.
func TestMultiIngestAttribution(t *testing.T) {
	s, err := New(Options{Shards: 4, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Register(1, nil)
	s.Register(2, nil)
	at := t0.Add(-time.Hour)
	outs := s.MultiIngest([][]lifelog.Event{
		{clickAt(1, at, 5), clickAt(2, at, 6)},
		{clickAt(99, at, 7), clickAt(1, at.Add(time.Second), 8)},
		nil,
	})
	if outs[0].Processed != 2 || outs[0].SkippedUnknown != 0 || outs[0].Err != nil {
		t.Fatalf("batch 0: %+v", outs[0])
	}
	if outs[1].Processed != 1 || outs[1].SkippedUnknown != 1 || outs[1].Err != nil {
		t.Fatalf("batch 1: %+v", outs[1])
	}
	if outs[2] != (IngestOutcome{}) {
		t.Fatalf("empty batch: %+v", outs[2])
	}
}

// TestMultiIngestBadBatchExcluded: a batch that breaks the merged per-user
// stream is charged the error and excluded; the surviving batches apply and
// the result matches ingesting only the good batches.
func TestMultiIngestBadBatchExcluded(t *testing.T) {
	base := t0.Add(-2 * time.Hour)
	good1 := []lifelog.Event{clickAt(1, base, 5), clickAt(1, base.Add(time.Second), 6)}
	// Internally out-of-order: rejected by sessionization wherever it runs.
	bad := []lifelog.Event{clickAt(2, base.Add(time.Hour), 7), clickAt(2, base, 8)}
	good2 := []lifelog.Event{clickAt(1, base.Add(2*time.Second), 9), clickAt(2, base.Add(time.Minute), 10)}

	newCore := func() *SPA {
		// One shard forces every batch into the same merged stream — the
		// hardest case for exclusion.
		s, err := New(Options{Shards: 1, Clock: clock.NewSimulated(t0)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		s.Register(1, nil)
		s.Register(2, nil)
		return s
	}

	s := newCore()
	outs := s.MultiIngest([][]lifelog.Event{good1, bad, good2})
	if outs[0].Err != nil || outs[0].Processed != 2 {
		t.Fatalf("good batch 0: %+v", outs[0])
	}
	if outs[1].Err == nil || outs[1].Processed != 0 {
		t.Fatalf("bad batch: %+v", outs[1])
	}
	if outs[2].Err != nil || outs[2].Processed != 2 {
		t.Fatalf("good batch 2: %+v", outs[2])
	}

	// Reference: the surviving batches as one stream, in merged order.
	want := newCore()
	if _, _, err := want.BatchIngest(append(append([]lifelog.Event(nil), good1...), good2...)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{1, 2} {
		pGot, err := s.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		pWant, err := want.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sum.Encode(&pGot), sum.Encode(&pWant)) {
			t.Fatalf("user %d: exclusion changed surviving batches' result", id)
		}
	}
}

// TestMultiIngestConflictingBatches: two batches that are each well-formed
// but collide on the same user (the later-arriving one rewinds the user's
// clock) resolve by excluding the later batch only.
func TestMultiIngestConflictingBatches(t *testing.T) {
	base := t0.Add(-2 * time.Hour)
	s, err := New(Options{Shards: 1, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Register(1, nil)
	outs := s.MultiIngest([][]lifelog.Event{
		{clickAt(1, base.Add(time.Hour), 5)},
		{clickAt(1, base, 6)}, // rewinds user 1 within the merged stream
	})
	if outs[0].Err != nil || outs[0].Processed != 1 {
		t.Fatalf("first batch: %+v", outs[0])
	}
	if outs[1].Err == nil || outs[1].Processed != 0 {
		t.Fatalf("conflicting batch: %+v", outs[1])
	}
}

// TestMultiIngestDurable: merged batches group-commit through the store and
// survive a reopen.
func TestMultiIngestDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{DataDir: dir, Shards: 4, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	for u := uint64(1); u <= 8; u++ {
		if err := s.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	at := t0.Add(-time.Hour)
	var batches [][]lifelog.Event
	for u := uint64(1); u <= 8; u++ {
		batches = append(batches, []lifelog.Event{clickAt(u, at, uint32(u)), clickAt(u, at.Add(time.Second), uint32(u+1))})
	}
	for b, out := range s.MultiIngest(batches) {
		if out.Err != nil || out.Processed != 2 {
			t.Fatalf("batch %d: %+v", b, out)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{DataDir: dir, Shards: 4, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for u := uint64(1); u <= 8; u++ {
		p, err := s2.Profile(u)
		if err != nil {
			t.Fatal(err)
		}
		nonzero := false
		for _, v := range p.Subjective {
			if v != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			t.Fatalf("user %d: merged ingest not persisted", u)
		}
	}
}
