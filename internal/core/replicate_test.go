package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/store"
)

// The replication convergence invariant (ISSUE 9): for any acked leader wave
// prefix, a follower that has applied through that LSN answers every
// snapshot read API identically — profiles, sensibilities, recommendations,
// propensity, select-top — including across a leader restart and a follower
// that bootstrapped from a segment snapshot instead of the full log.

// replTestOpts builds leader/follower options over dir. Both sides share a
// simulated clock so profile timestamps are deterministic.
func replTestOpts(dir string, clk clock.Clock, st store.Options) Options {
	return Options{DataDir: dir, Store: st, Shards: 4, Clock: clk}
}

// ingestWave pushes one prepared+committed wave (the pipelined path, which
// is what attaches the interaction-event annotation to the log record).
func ingestWave(t *testing.T, s *SPA, batches [][]lifelog.Event) {
	t.Helper()
	pm := s.PrepareMulti(batches)
	for _, out := range pm.Commit() {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
	}
}

// driftTail applies every leader record the follower is missing.
func driftTail(t *testing.T, leader, follower *SPA) {
	t.Helper()
	leaderLSN, _ := leader.AppliedLSN()
	followerLSN, _ := follower.AppliedLSN()
	if followerLSN >= leaderLSN {
		return
	}
	tail, err := leader.TailLog(followerLSN + 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	for followerLSN < leaderLSN {
		rec, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := follower.ApplyReplicatedWave(rec.LSN, rec.Annotation, rec.Entries); err != nil {
			t.Fatal(err)
		}
		followerLSN = rec.LSN
	}
}

// assertReadConvergence checks every snapshot read API agrees between the
// two instances for the given users.
func assertReadConvergence(t *testing.T, leader, follower *SPA, users []uint64) {
	t.Helper()
	llsn, _ := leader.AppliedLSN()
	flsn, _ := follower.AppliedLSN()
	if llsn != flsn {
		t.Fatalf("applied LSNs diverge: leader %d, follower %d", llsn, flsn)
	}
	if lu, fu := leader.Users(), follower.Users(); lu != fu {
		t.Fatalf("user counts diverge: leader %d, follower %d", lu, fu)
	}
	for _, id := range users {
		lp, lerr := leader.Profile(id)
		fp, ferr := follower.Profile(id)
		if (lerr == nil) != (ferr == nil) {
			t.Fatalf("user %d: profile errs diverge: %v vs %v", id, lerr, ferr)
		}
		if lerr != nil {
			continue
		}
		if !reflect.DeepEqual(lp, fp) {
			t.Fatalf("user %d: profiles diverge:\nleader   %+v\nfollower %+v", id, lp, fp)
		}
		ls, err := leader.Sensibilities(id)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := follower.Sensibilities(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ls, fs) {
			t.Fatalf("user %d: sensibilities diverge", id)
		}
		lr, lerr := leader.RecommendActions(id, 5)
		fr, ferr := follower.RecommendActions(id, 5)
		if (lerr == nil) != (ferr == nil) {
			t.Fatalf("user %d: recommend errs diverge: %v vs %v", id, lerr, ferr)
		}
		if !reflect.DeepEqual(lr, fr) {
			t.Fatalf("user %d: recommendations diverge:\nleader   %+v\nfollower %+v", id, lr, fr)
		}
	}

	// Propensity trains deterministically from identical inputs, so with
	// convergent profiles the scores and the selection ranking must match.
	var features [][]float64
	var labels []bool
	for i, id := range users {
		fv, err := leader.FeatureVector(id)
		if err != nil {
			continue
		}
		features = append(features, fv)
		labels = append(labels, i%2 == 0)
	}
	if err := leader.TrainPropensity(features, labels); err != nil {
		t.Fatal(err)
	}
	if err := follower.TrainPropensity(features, labels); err != nil {
		t.Fatal(err)
	}
	for _, id := range users {
		lp, lerr := leader.Propensity(id)
		fp, ferr := follower.Propensity(id)
		if (lerr == nil) != (ferr == nil) {
			t.Fatalf("user %d: propensity errs diverge: %v vs %v", id, lerr, ferr)
		}
		if lp != fp {
			t.Fatalf("user %d: propensity diverges: %v vs %v", id, lp, fp)
		}
	}
	ltop, lerr := leader.SelectTop(len(users))
	ftop, ferr := follower.SelectTop(len(users))
	if (lerr == nil) != (ferr == nil) {
		t.Fatalf("select-top errs diverge: %v vs %v", lerr, ferr)
	}
	if !reflect.DeepEqual(ltop, ftop) {
		t.Fatalf("select-top diverges:\nleader   %v\nfollower %v", ltop, ftop)
	}
}

func replUsers(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	return ids
}

func TestFollowerConvergesFromFullTail(t *testing.T) {
	clk := clock.NewSimulated(t0)
	leader, err := New(replTestOpts(t.TempDir(), clk, store.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	users := replUsers(20)
	for _, id := range users {
		if err := leader.Register(id, []float64{float64(id), 1}); err != nil {
			t.Fatal(err)
		}
	}
	base := t0.Add(-12 * time.Hour)
	for wave := 0; wave < 5; wave++ {
		var b1, b2 []lifelog.Event
		for i, id := range users {
			at := base.Add(time.Duration(wave*100+i) * time.Second)
			ev := lifelog.Event{UserID: id, Time: at, Type: lifelog.EventClick,
				Action: uint32((int(id)*3 + wave) % lifelog.ActionUniverse)}
			if i%2 == 0 {
				b1 = append(b1, ev)
			} else {
				ev.Type = lifelog.EventEnroll
				b2 = append(b2, ev)
			}
		}
		ingestWave(t, leader, [][]lifelog.Event{b1, b2})
	}
	// Single-put write paths (EIT answers, reinforcement) replicate too.
	if err := leader.Reward(users[0], []emotion.Attribute{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := leader.Punish(users[1], []emotion.Attribute{2}); err != nil {
		t.Fatal(err)
	}

	follower, err := New(replTestOpts(t.TempDir(), clk, store.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	driftTail(t, leader, follower)
	assertReadConvergence(t, leader, follower, users)

	// More leader traffic, another catch-up round: convergence holds at
	// every acked prefix, not just the first.
	var more []lifelog.Event
	for _, id := range users[:10] {
		more = append(more, lifelog.Event{UserID: id, Time: base.Add(time.Hour),
			Type: lifelog.EventInfoRequest, Action: uint32(int(id) % lifelog.ActionUniverse)})
	}
	ingestWave(t, leader, [][]lifelog.Event{more})
	driftTail(t, leader, follower)
	assertReadConvergence(t, leader, follower, users)
}

func TestFollowerConvergesAcrossCrashAndSnapshotCatchup(t *testing.T) {
	clk := clock.NewSimulated(t0)
	leaderDir := t.TempDir()
	// A tiny memtable seals the WAL constantly and a 1-byte retention budget
	// prunes everything but the newest sealed file — forcing the follower
	// onto the snapshot path.
	stOpts := store.Options{MemtableBytes: 2 << 10, LogRetainBytes: 1}
	leader, err := New(replTestOpts(leaderDir, clk, stOpts))
	if err != nil {
		t.Fatal(err)
	}
	users := replUsers(16)
	for _, id := range users {
		if err := leader.Register(id, []float64{float64(id)}); err != nil {
			t.Fatal(err)
		}
	}
	base := t0.Add(-12 * time.Hour)
	for wave := 0; wave < 6; wave++ {
		var evs []lifelog.Event
		for i, id := range users {
			evs = append(evs, lifelog.Event{UserID: id, Time: base.Add(time.Duration(wave*100+i) * time.Second),
				Type: lifelog.EventClick, Action: uint32((int(id) + wave) % lifelog.ActionUniverse)})
		}
		ingestWave(t, leader, [][]lifelog.Event{evs})
	}
	// Leader "crash": close and reopen on the same dir. The reopened leader
	// recovers from its own log — the same bytes it ships.
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	// The reopened leader keeps the pruned history (floor > 1) but gets a
	// normal memtable, so the post-snapshot records the follower will tail
	// stay retained instead of being pruned out from under it.
	stOpts2 := store.Options{LogRetainBytes: 1}
	leader, err = New(replTestOpts(leaderDir, clk, stOpts2))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	// Retention has pruned the log head: a full tail is impossible and the
	// follower must bootstrap from a snapshot.
	if _, err := leader.TailLog(1); !errors.Is(err, store.ErrLogCompacted) {
		t.Fatalf("TailLog(1) = %v, want ErrLogCompacted", err)
	}
	pairs, snapLSN, err := leader.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Post-snapshot traffic, shipped through the tail.
	for wave := 0; wave < 3; wave++ {
		var evs []lifelog.Event
		for i, id := range users {
			evs = append(evs, lifelog.Event{UserID: id, Time: base.Add(time.Duration(1000+wave*100+i) * time.Second),
				Type: lifelog.EventEnroll, Action: uint32((int(id)*2 + wave) % lifelog.ActionUniverse)})
		}
		ingestWave(t, leader, [][]lifelog.Event{evs})
	}

	// Follower bootstrap: restore the snapshot at the store level, then open
	// the core over the restored state — exactly what spad -follow does.
	followerDir := t.TempDir()
	fdb, err := store.Open(followerDir, stOpts2)
	if err != nil {
		t.Fatal(err)
	}
	rp := make([]store.LogEntry, len(pairs))
	copy(rp, pairs)
	if err := fdb.RestoreSnapshot(rp, snapLSN); err != nil {
		t.Fatal(err)
	}
	if err := fdb.Close(); err != nil {
		t.Fatal(err)
	}
	follower, err := New(replTestOpts(followerDir, clk, stOpts2))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if flsn, _ := follower.AppliedLSN(); flsn != snapLSN {
		t.Fatalf("bootstrapped follower AppliedLSN = %d, want %d", flsn, snapLSN)
	}
	driftTail(t, leader, follower)

	// Both sides' CF state warmed from the same post-restart events (the
	// reopened leader is recommendation-cold by design, and the snapshot
	// hands the follower the same cold start), so the full read surface —
	// profiles, recommendations, propensity, select-top — must agree.
	assertReadConvergence(t, leader, follower, users)
}

func TestApplyReplicatedWaveRejectsGaps(t *testing.T) {
	clk := clock.NewSimulated(t0)
	follower, err := New(replTestOpts(t.TempDir(), clk, store.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	entry := []store.LogEntry{{Key: []byte("k"), Value: []byte("v")}}
	if err := follower.ApplyReplicatedWave(2, nil, entry); err == nil {
		t.Fatal("gap accepted")
	}
	if err := follower.ApplyReplicatedWave(1, []byte{0x7f, 0x01}, entry); err == nil {
		t.Fatal("bad annotation version accepted")
	}
}

func TestWaveAnnotationRoundTrip(t *testing.T) {
	in := []taggedEvent{
		{Event: lifelog.Event{UserID: 7, Type: lifelog.EventClick, Action: 3}},
		{Event: lifelog.Event{UserID: 9, Type: lifelog.EventEnroll, Action: 11}},
	}
	out, err := decodeWaveAnnotation(encodeWaveAnnotation(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d events", len(out))
	}
	for i := range in {
		if out[i].UserID != in[i].UserID || out[i].Type != in[i].Type || out[i].Action != in[i].Action {
			t.Fatalf("event %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	if evs, err := decodeWaveAnnotation(nil); err != nil || evs != nil {
		t.Fatalf("empty annotation = %v, %v", evs, err)
	}
	if _, err := decodeWaveAnnotation([]byte{0x02, 0x00}); err == nil {
		t.Fatal("unknown version accepted")
	}
}
