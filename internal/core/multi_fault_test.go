package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/lifelog"
	"repro/internal/store"
	"repro/internal/sum"
)

// newFaultyCore opens a durable, fsync-on core whose WAL goes through the
// store's killable fault seam.
func newFaultyCore(t *testing.T, unbatched bool, shards int) (*SPA, *store.KillableFileOps, string) {
	t.Helper()
	fo := &store.KillableFileOps{}
	dir := t.TempDir()
	s, err := New(Options{
		DataDir:         dir,
		Store:           store.Options{SyncWrites: true, DisableAutoCompaction: true, FileOps: fo},
		Shards:          shards,
		UnbatchedWrites: unbatched,
		Clock:           clock.NewSimulated(t0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fo.Revive()
		s.Close()
	})
	return s, fo, dir
}

// TestIngestStoreFailureLeavesMemoryUnchanged is the divergence regression:
// previously ingestShardMulti wrote the extractor output into the profiles
// BEFORE db.Apply ran, so a store failure reported "not applied" while
// shard memory already carried the new digest (and the unbatched sum.Save
// path mutated every profile before the first failing save). Updates are
// now staged and installed only after the write succeeds — the failed
// outcome must be true in memory too, for both persistence modes.
func TestIngestStoreFailureLeavesMemoryUnchanged(t *testing.T) {
	for _, unbatched := range []bool{false, true} {
		t.Run(fmt.Sprintf("unbatched=%v", unbatched), func(t *testing.T) {
			s, fo, _ := newFaultyCore(t, unbatched, 1)
			for u := uint64(1); u <= 4; u++ {
				if err := s.Register(u, nil); err != nil {
					t.Fatal(err)
				}
			}
			at := t0.Add(-time.Hour)
			// A first healthy ingest gives the profiles a non-trivial state
			// to diverge from. Searches carry no CF interaction weight, so
			// any interaction evidence would have to come from the failed
			// wave below.
			searchAt := func(user uint64, at time.Time) lifelog.Event {
				return lifelog.Event{UserID: user, Time: at, Type: lifelog.EventSearch}
			}
			outs := s.MultiIngest([][]lifelog.Event{{searchAt(1, at), searchAt(2, at)}})
			if outs[0].Err != nil {
				t.Fatal(outs[0].Err)
			}
			before := map[uint64][]byte{}
			for u := uint64(1); u <= 4; u++ {
				p, err := s.Profile(u)
				if err != nil {
					t.Fatal(err)
				}
				before[u] = sum.Encode(&p)
			}

			fo.Kill()
			outs = s.MultiIngest([][]lifelog.Event{
				{clickAt(1, at.Add(time.Minute), 7), clickAt(3, at.Add(time.Minute), 8)},
				{clickAt(4, at.Add(time.Minute), 9)},
			})
			for b, out := range outs {
				if out.Err == nil {
					t.Fatalf("batch %d: store failure not reported: %+v", b, out)
				}
			}
			for u := uint64(1); u <= 4; u++ {
				p, err := s.Profile(u)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sum.Encode(&p), before[u]) {
					t.Fatalf("user %d: failed store write still mutated shard memory", u)
				}
			}
			// The staged CF interactions must not have been installed either.
			if _, err := s.RecommendActions(1, 3); err == nil {
				t.Fatal("failed ingest installed interaction counts")
			}
		})
	}
}

// TestPreparedCommitStoreFailure: the wave-atomic commit path charges every
// contributing batch on an ApplyAll failure and leaves every shard's memory
// untouched.
func TestPreparedCommitStoreFailure(t *testing.T) {
	s, fo, _ := newFaultyCore(t, false, 8)
	for u := uint64(1); u <= 8; u++ {
		if err := s.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	at := t0.Add(-time.Hour)
	before := map[uint64][]byte{}
	for u := uint64(1); u <= 8; u++ {
		p, err := s.Profile(u)
		if err != nil {
			t.Fatal(err)
		}
		before[u] = sum.Encode(&p)
	}
	var batches [][]lifelog.Event
	for u := uint64(1); u <= 8; u++ {
		batches = append(batches, []lifelog.Event{clickAt(u, at, uint32(u))})
	}
	pm := s.PrepareMulti(batches)
	fo.Kill()
	outs := pm.Commit()
	for b, out := range outs {
		if out.Err == nil {
			t.Fatalf("batch %d: wave failure not charged: %+v", b, out)
		}
	}
	for u := uint64(1); u <= 8; u++ {
		p, err := s.Profile(u)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sum.Encode(&p), before[u]) {
			t.Fatalf("user %d: failed wave commit mutated shard memory", u)
		}
	}
}

// TestPrepareCommitMatchesMultiIngest: the split path must be
// indistinguishable from MultiIngest — same per-batch outcomes (including
// bad-batch exclusion) and byte-identical profiles, durably.
func TestPrepareCommitMatchesMultiIngest(t *testing.T) {
	base := t0.Add(-2 * time.Hour)
	batches := [][]lifelog.Event{
		{clickAt(1, base, 5), clickAt(1, base.Add(time.Second), 6), clickAt(3, base, 7)},
		// Internally out-of-order: excluded wherever it lands.
		{clickAt(2, base.Add(time.Hour), 8), clickAt(2, base, 9)},
		{clickAt(1, base.Add(2*time.Second), 10), clickAt(2, base.Add(time.Minute), 11)},
		{clickAt(99, base, 12)}, // unknown user only
		nil,
	}
	open := func(dir string) *SPA {
		s, err := New(Options{DataDir: dir, Shards: 4, Clock: clock.NewSimulated(t0)})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	register := func(s *SPA) {
		for u := uint64(1); u <= 3; u++ {
			if err := s.Register(u, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	a, b := open(dirA), open(dirB)
	register(a)
	register(b)
	outsA := a.MultiIngest(batches)
	outsB := b.PrepareMulti(batches).Commit()
	for i := range outsA {
		if outsA[i].Processed != outsB[i].Processed || outsA[i].SkippedUnknown != outsB[i].SkippedUnknown {
			t.Fatalf("batch %d: counts diverge: %+v vs %+v", i, outsA[i], outsB[i])
		}
		errA, errB := fmt.Sprint(outsA[i].Err), fmt.Sprint(outsB[i].Err)
		if errA != errB {
			t.Fatalf("batch %d: errors diverge: %q vs %q", i, errA, errB)
		}
	}
	compare := func(a, b *SPA, what string) {
		t.Helper()
		for u := uint64(1); u <= 3; u++ {
			pa, err := a.Profile(u)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := b.Profile(u)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sum.Encode(&pa), sum.Encode(&pb)) {
				t.Fatalf("%s: user %d: MultiIngest and Prepare+Commit diverge", what, u)
			}
		}
	}
	compare(a, b, "live")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	a2, b2 := open(dirA), open(dirB)
	defer a2.Close()
	defer b2.Close()
	compare(a2, b2, "reopened")
}

// TestPreparedCommitConcurrent: overlapping Prepare+Commit calls touching
// many shards must not deadlock (commit acquires shard locks in index
// order) and must lose nothing. Run with -race.
func TestPreparedCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{DataDir: dir, Shards: 8, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const users = 64
	for u := uint64(1); u <= users; u++ {
		if err := s.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	at := t0.Add(-time.Hour)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Disjoint user ranges per worker, ascending timestamps.
			lo := uint64(w*8 + 1)
			for r := 0; r < 10; r++ {
				var evs []lifelog.Event
				for u := lo; u < lo+8; u++ {
					evs = append(evs, clickAt(u, at.Add(time.Duration(r)*time.Second), uint32(u%984)))
				}
				outs := s.PrepareMulti([][]lifelog.Event{evs}).Commit()
				if outs[0].Err != nil || outs[0].Processed != 8 {
					errCh <- fmt.Errorf("worker %d round %d: %+v", w, r, outs[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
