package core

import (
	"fmt"

	"repro/internal/values"
)

// Human Values Scale integration (the fifth Fig. 3 component, see
// internal/values). Trackers are in-memory: the paper's deployment
// explicitly excluded this component, so the reproduction exposes it as a
// session-scoped extension rather than part of the durable profile.
// Trackers live in the user's shard, under the shard lock.

// tracker returns the user's values tracker; the caller holds the shard's
// write lock.
func (s *SPA) tracker(sh *shard, userID uint64, create bool) (*values.Tracker, error) {
	if _, ok := sh.profiles[userID]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	tr, ok := sh.trackers[userID]
	if !ok {
		if !create {
			return nil, fmt.Errorf("core: no value observations for user %d", userID)
		}
		if sh.trackers == nil {
			sh.trackers = make(map[uint64]*values.Tracker)
		}
		tr = values.NewTracker(nil, 0, s.clk.Now())
		sh.trackers[userID] = tr
	}
	return tr, nil
}

// ObserveValueAction folds a categorized action into the user's implicit
// Human Values Scale.
func (s *SPA) ObserveValueAction(userID uint64, category string, weight float64) error {
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tr, err := s.tracker(sh, userID, true)
	if err != nil {
		return err
	}
	return tr.Observe(category, weight, s.clk.Now())
}

// SetExplicitValues records the user's stated value preferences.
func (s *SPA) SetExplicitValues(userID uint64, scale values.Scale) error {
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tr, err := s.tracker(sh, userID, true)
	if err != nil {
		return err
	}
	tr.SetExplicit(scale)
	return nil
}

// ValuesScale returns the user's current implicit Human Values Scale.
func (s *SPA) ValuesScale(userID uint64) (values.Scale, error) {
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tr, err := s.tracker(sh, userID, false)
	if err != nil {
		return values.Scale{}, err
	}
	return tr.Implicit(), nil
}

// ValuesCoherence evaluates the coherence function between the user's
// actions and stated preferences (§4 component 5b).
func (s *SPA) ValuesCoherence(userID uint64) (float64, error) {
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tr, err := s.tracker(sh, userID, false)
	if err != nil {
		return 0, err
	}
	return tr.Coherence()
}
