package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/lifelog"
)

// ingestClicks feeds a set of (user, action) click events.
func ingestClicks(t *testing.T, s *SPA, rows map[uint64][]uint32) {
	t.Helper()
	var events []lifelog.Event
	at := t0.Add(-24 * time.Hour)
	for user, actions := range rows {
		tm := at
		for _, a := range actions {
			events = append(events, lifelog.Event{
				UserID: user, Time: tm, Type: lifelog.EventClick, Action: a,
			})
			tm = tm.Add(time.Minute)
		}
	}
	if _, _, err := s.IngestEvents(events); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendActionsCF(t *testing.T) {
	s := newSPA(t, "")
	for id := uint64(1); id <= 3; id++ {
		s.Register(id, nil)
	}
	// Users 1 and 2 share tastes; user 2 also did action 30, which user 1
	// has not seen — the canonical CF recommendation.
	ingestClicks(t, s, map[uint64][]uint32{
		1: {10, 11, 12},
		2: {10, 11, 30},
		3: {500, 501},
	})
	recs, err := s.RecommendActions(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Action != 30 {
		t.Fatalf("recommendations %v, want action 30 first", recs)
	}
	for _, r := range recs {
		if r.Action == 10 || r.Action == 11 || r.Action == 12 {
			t.Fatalf("recommended seen action %d", r.Action)
		}
	}
}

func TestRecommendActionsErrors(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	if _, err := s.RecommendActions(1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	// No interactions ingested yet.
	if _, err := s.RecommendActions(1, 3); err == nil {
		t.Fatal("empty interactions accepted")
	}
	ingestClicks(t, s, map[uint64][]uint32{1: {5}})
	if _, err := s.RecommendActions(99, 3); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestRecommendActionsEmotionalReweighting(t *testing.T) {
	s := newSPA(t, "")
	for id := uint64(1); id <= 4; id++ {
		s.Register(id, nil)
	}
	// User 1's neighbors expose two candidate actions equally: 100 and 200.
	ingestClicks(t, s, map[uint64][]uint32{
		1: {10, 11},
		2: {10, 11, 100},
		3: {10, 11, 200},
	})
	// Tag action 100 as "stimulated" content, 200 as "frightened" content.
	s.SetActionTagger(func(a uint32) []emotion.Attribute {
		switch a {
		case 100:
			return []emotion.Attribute{emotion.Stimulated}
		case 200:
			return []emotion.Attribute{emotion.Frightened}
		default:
			return nil
		}
	})
	// Build strong positive sensibility for Stimulated on user 1.
	for i := 0; i < 8; i++ {
		if err := s.Reward(1, []emotion.Attribute{emotion.Stimulated}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.RecommendActions(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("recs %v", recs)
	}
	if recs[0].Action != 100 {
		t.Fatalf("emotional boost did not promote action 100: %v", recs)
	}
	if recs[0].Score <= recs[1].Score {
		t.Fatalf("boost did not change scores: %v", recs)
	}
}

func TestRecommendActionsInvalidatedByNewIngest(t *testing.T) {
	s := newSPA(t, "")
	s.Register(1, nil)
	s.Register(2, nil)
	ingestClicks(t, s, map[uint64][]uint32{1: {10}, 2: {10, 20}})
	r1, err := s.RecommendActions(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].Action != 20 {
		t.Fatalf("first recs %v", r1)
	}
	// New neighbor evidence arrives: action 21 becomes stronger.
	var events []lifelog.Event
	at := t0.Add(-time.Hour)
	for i := 0; i < 5; i++ {
		events = append(events, lifelog.Event{UserID: 2, Time: at, Type: lifelog.EventEnroll, Action: 21})
		at = at.Add(time.Minute)
	}
	if _, _, err := s.IngestEvents(events); err != nil {
		t.Fatal(err)
	}
	r2, err := s.RecommendActions(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2[0].Action != 21 {
		t.Fatalf("model not rebuilt after ingest: %v", r2)
	}
}

func BenchmarkRecommendActions(b *testing.B) {
	s, err := New(Options{Clock: clock.NewSimulated(t0)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var events []lifelog.Event
	at := t0.Add(-100 * time.Hour)
	for id := uint64(1); id <= 200; id++ {
		s.Register(id, nil)
		for k := 0; k < 20; k++ {
			events = append(events, lifelog.Event{
				UserID: id, Time: at, Type: lifelog.EventClick,
				Action: uint32((int(id)*7 + k*13) % lifelog.ActionUniverse),
			})
			at = at.Add(time.Second)
		}
	}
	if _, _, err := s.IngestEvents(events); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RecommendActions(uint64(i%200+1), 10); err != nil {
			b.Fatal(err)
		}
	}
}
