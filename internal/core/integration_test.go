package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/messaging"
	"repro/internal/rng"
	"repro/internal/synth"
)

// TestEndToEndMiniDeployment drives the whole facade the way a downstream
// integration would: synthetic population → register → weblog ingest → EIT
// touches → propensity training on an observed wave → selection → message
// assignment — asserting that the selected cohort out-responds the
// population and that messaging differentiates users.
func TestEndToEndMiniDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in -short mode")
	}
	const users = 600
	clk := clock.NewSimulated(clock.Epoch)
	pop, err := synth.Generate(synth.DefaultConfig(users, 31))
	if err != nil {
		t.Fatal(err)
	}
	spa, err := New(Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer spa.Close()

	// Register everyone with their socio-demographics.
	for i := range pop.Users {
		u := &pop.Users[i]
		if err := spa.Register(u.ID, u.Objective); err != nil {
			t.Fatal(err)
		}
	}

	// Ingest four weeks of organic browsing through the facade.
	var batch []lifelog.Event
	if err := pop.GenerateWebLogs(synth.WebLogConfig{
		Start: clk.Now().Add(-28 * 24 * time.Hour), Weeks: 4, Seed: 5, TransactionBias: 0.35,
	}, func(e lifelog.Event) error {
		batch = append(batch, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	processed, skipped, err := spa.IngestEvents(batch)
	if err != nil {
		t.Fatal(err)
	}
	if processed == 0 || skipped != 0 {
		t.Fatalf("ingest processed %d skipped %d", processed, skipped)
	}

	// Gradual EIT: 40 touches per user, answered per latent state.
	r := rng.New(9)
	bank := emotion.NewBank()
	for touch := 0; touch < 40; touch++ {
		for i := range pop.Users {
			u := &pop.Users[i]
			item, err := spa.NextQuestion(u.ID)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := pop.AnswerEIT(u, item, bank, r)
			if err != nil {
				t.Fatal(err)
			}
			if opt < 0 {
				continue
			}
			if err := spa.SubmitAnswer(u.ID, emotion.Answer{ItemID: item.ID, Option: opt}); err != nil {
				t.Fatal(err)
			}
		}
		clk.Advance(24 * time.Hour)
	}

	// Historical wave: message everyone, observe ground-truth responses,
	// train the propensity model on the observed outcomes.
	product := messaging.Product{
		Name: "Course in Digital Marketing",
		SalesAttributes: []emotion.Attribute{
			emotion.Enthusiastic, emotion.Motivated, emotion.Lively, emotion.Stimulated,
		},
	}
	var feats [][]float64
	var labels []bool
	responded := make(map[uint64]bool, users)
	for i := range pop.Users {
		u := &pop.Users[i]
		fv, err := spa.FeatureVector(u.ID)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := spa.AssignMessage(u.ID, product)
		if err != nil {
			t.Fatal(err)
		}
		prob := pop.RespondProbability(u, asg.Message.Attribute, asg.Case == messaging.CaseStandard)
		resp := r.Bool(prob)
		responded[u.ID] = resp
		feats = append(feats, fv)
		labels = append(labels, resp)
		// Close the loop.
		if asg.Case != messaging.CaseStandard {
			attrs := []emotion.Attribute{asg.Message.Attribute}
			if resp {
				spa.Reward(u.ID, attrs)
			} else {
				spa.Punish(u.ID, attrs)
			}
		}
	}
	if err := spa.TrainPropensity(feats, labels); err != nil {
		t.Fatal(err)
	}

	// Selection function: the top 25% must out-respond the base rate on a
	// fresh response draw.
	top, err := spa.SelectTop(users / 4)
	if err != nil {
		t.Fatal(err)
	}
	inTop := map[uint64]bool{}
	for _, id := range top {
		inTop[id] = true
	}
	var topResp, allResp int
	for i := range pop.Users {
		u := &pop.Users[i]
		asg, _ := spa.AssignMessage(u.ID, product)
		prob := pop.RespondProbability(u, asg.Message.Attribute, asg.Case == messaging.CaseStandard)
		resp := r.Bool(prob)
		if resp {
			allResp++
			if inTop[u.ID] {
				topResp++
			}
		}
	}
	topRate := float64(topResp) / float64(len(top))
	allRate := float64(allResp) / float64(users)
	if topRate <= allRate*1.3 {
		t.Fatalf("selection did not concentrate responders: top %.3f vs all %.3f", topRate, allRate)
	}

	// Messaging differentiation: after EIT + reinforcement, a meaningful
	// share of users get non-standard messages.
	nonStandard := 0
	for i := range pop.Users {
		asg, err := spa.AssignMessage(pop.Users[i].ID, product)
		if err != nil {
			t.Fatal(err)
		}
		if asg.Case != messaging.CaseStandard {
			nonStandard++
		}
	}
	if nonStandard < users/30 {
		t.Fatalf("only %d/%d users got emotional messages", nonStandard, users)
	}
}
