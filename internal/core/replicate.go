package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/lifelog"
	"repro/internal/store"
	"repro/internal/sum"
)

// Follower-side replication (DESIGN.md §9). A leader's committed log records
// carry everything a replica needs to reproduce its read state:
//
//   - The key/value entries rebuild the durable profiles — the same bytes the
//     leader's own crash recovery would replay.
//   - The record's annotation carries what the entries cannot express: the
//     wave's interaction events, which exist only in the shard snapshots'
//     CF matrix (snapshot.go) and never reach the store. The leader's commit
//     path attaches them (buildShardBatchLocked); replay ignores them; a
//     follower decodes them here and folds them through the same
//     publishShardLocked path the leader used, so RecommendActions converges
//     along with the profile reads.
//
// ApplyReplicatedWave is deliberately shaped like PreparedMulti.Commit's
// install half: store write first (with the leader's LSN, enforcing exact
// log contiguity), then per-shard install + snapshot publish under the shard
// write locks, taken in index order — the same ordering argument that makes
// concurrent local commits deadlock-free makes the follower's apply loop
// safe next to its own read traffic.

// waveAnnotationVersion tags the interaction-event annotation codec.
const waveAnnotationVersion = 0x01

// encodeWaveAnnotation packs a wave's interaction events into the opaque
// annotation blob of its log record: a version byte, a uvarint count, then
// per event uvarint user id, one type byte, uvarint action. Only the fields
// the CF fold (publishShardLocked) consumes travel.
func encodeWaveAnnotation(events []taggedEvent) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(events)*(binary.MaxVarintLen64+1+binary.MaxVarintLen32))
	buf = append(buf, waveAnnotationVersion)
	buf = binary.AppendUvarint(buf, uint64(len(events)))
	for _, te := range events {
		buf = binary.AppendUvarint(buf, te.UserID)
		buf = append(buf, byte(te.Type))
		buf = binary.AppendUvarint(buf, uint64(te.Action))
	}
	return buf
}

// decodeWaveAnnotation unpacks an annotation blob. An empty blob is a wave
// with no interaction events (e.g. a Register or EIT-answer record).
func decodeWaveAnnotation(blob []byte) ([]taggedEvent, error) {
	if len(blob) == 0 {
		return nil, nil
	}
	if blob[0] != waveAnnotationVersion {
		return nil, fmt.Errorf("core: unknown wave annotation version %d", blob[0])
	}
	p := blob[1:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errors.New("core: truncated wave annotation count")
	}
	p = p[n:]
	// Each event costs at least 1+1+1 bytes; never trust the count further.
	if maxPossible := uint64(len(p)) / 3; count > maxPossible {
		return nil, fmt.Errorf("core: wave annotation declares %d events, at most %d fit", count, maxPossible)
	}
	events := make([]taggedEvent, 0, count)
	for i := uint64(0); i < count; i++ {
		var te taggedEvent
		id, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errors.New("core: truncated wave annotation user id")
		}
		p = p[n:]
		if len(p) == 0 {
			return nil, errors.New("core: truncated wave annotation type")
		}
		te.UserID = id
		te.Type = lifelog.EventType(p[0])
		p = p[1:]
		action, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errors.New("core: truncated wave annotation action")
		}
		if action > uint64(^uint32(0)) {
			return nil, fmt.Errorf("core: wave annotation action %d overflows uint32", action)
		}
		p = p[n:]
		te.Action = uint32(action)
		events = append(events, te)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in wave annotation", len(p))
	}
	return events, nil
}

// sumKeyUser parses a profile store key ("sum/" + big-endian user id).
func sumKeyUser(key []byte) (uint64, bool) {
	if len(key) != 12 || string(key[:4]) != "sum/" {
		return 0, false
	}
	return binary.BigEndian.Uint64(key[4:]), true
}

// AppliedLSN reports the durable log position this instance has committed
// through; ok is false on an in-memory-only instance (which has no log to
// ship or apply).
func (s *SPA) AppliedLSN() (lsn uint64, ok bool) {
	if s.db == nil {
		return 0, false
	}
	return s.db.AppliedLSN(), true
}

// LogFloor reports the oldest retained log position (store.LogFloor); ok is
// false on an in-memory-only instance.
func (s *SPA) LogFloor() (lsn uint64, ok bool) {
	if s.db == nil {
		return 0, false
	}
	return s.db.LogFloor(), true
}

// TailLog subscribes to the committed log (store.TailLog) — the leader half
// of replication.
func (s *SPA) TailLog(fromLSN uint64) (*store.LogTail, error) {
	if s.db == nil {
		return nil, errors.New("core: replication requires a durable store")
	}
	return s.db.TailLog(fromLSN)
}

// ExportSnapshot captures the durable key space and its LSN for follower
// bootstrap (store.ExportSnapshot).
func (s *SPA) ExportSnapshot() ([]store.LogEntry, uint64, error) {
	if s.db == nil {
		return nil, 0, errors.New("core: replication requires a durable store")
	}
	return s.db.ExportSnapshot()
}

// ApplyReplicatedWave applies one shipped log record to a follower: the
// entries commit to the local store under the leader's LSN (exact contiguity
// enforced by store.ApplyReplicated), then install into shard memory and
// publish fresh read snapshots, with the annotation's interaction events
// folded into the CF matrix — the same install + publish + invalidate
// sequence the leader's commit stage ran, so every snapshot read API
// (profile, recommend, propensity, select-top) converges to the leader's
// results at the same LSN.
func (s *SPA) ApplyReplicatedWave(lsn uint64, annotation []byte, entries []store.LogEntry) error {
	if s.db == nil {
		return errors.New("core: replication requires a durable store")
	}
	events, err := decodeWaveAnnotation(annotation)
	if err != nil {
		return fmt.Errorf("core: wave %d: %w", lsn, err)
	}
	type shardWork struct {
		install map[uint64]*sum.Profile
		drop    []uint64
		events  []taggedEvent
	}
	work := make(map[int]*shardWork)
	get := func(idx int) *shardWork {
		w := work[idx]
		if w == nil {
			w = &shardWork{}
			work[idx] = w
		}
		return w
	}
	for _, e := range entries {
		id, ok := sumKeyUser(e.Key)
		if !ok {
			// A foreign key space: persisted below, nothing to install.
			continue
		}
		w := get(s.shardIndexFor(id))
		if e.Tombstone {
			w.drop = append(w.drop, id)
			continue
		}
		p, err := sum.Decode(e.Value)
		if err != nil {
			return fmt.Errorf("core: wave %d profile %d: %w", lsn, id, err)
		}
		if p.UserID != id {
			return fmt.Errorf("core: wave %d key/profile user mismatch: %d vs %d", lsn, id, p.UserID)
		}
		if w.install == nil {
			w.install = make(map[uint64]*sum.Profile)
		}
		w.install[id] = p
	}
	for _, te := range events {
		w := get(s.shardIndexFor(te.UserID))
		w.events = append(w.events, te)
	}

	idxs := make([]int, 0, len(work))
	for idx := range work {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		s.shards[idx].mu.Lock()
	}
	unlock := func() {
		for i := len(idxs) - 1; i >= 0; i-- {
			s.shards[idxs[i]].mu.Unlock()
		}
	}
	if err := s.db.ApplyReplicated(lsn, annotation, entries); err != nil {
		unlock()
		return err
	}
	recorded := 0
	for _, idx := range idxs {
		sh := s.shards[idx]
		w := work[idx]
		changed := make([]uint64, 0, len(w.install)+len(w.drop))
		for id, p := range w.install {
			if _, exists := sh.profiles[id]; !exists {
				s.users.Add(1)
			}
			sh.profiles[id] = p
			changed = append(changed, id)
		}
		for _, id := range w.drop {
			if _, exists := sh.profiles[id]; exists {
				s.users.Add(-1)
				delete(sh.profiles, id)
				changed = append(changed, id)
			}
		}
		recorded += s.publishShardLocked(sh, changed, w.events)
	}
	unlock()
	if recorded > 0 {
		s.invalidateRecommender()
	}
	return nil
}
