package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/keyspace"
	"repro/internal/lifelog"
	"repro/internal/sum"
	"repro/internal/values"
)

// shard is one hash partition of the user population. Everything keyed by
// user id lives here: the live (writer-owned) profile map under one
// read-write mutex per partition, and the immutable read snapshot behind an
// atomic pointer. Writers mutate the live map under mu and publish a fresh
// snapshot before unlocking; readers only ever load snap and never touch mu
// (see snapshot.go and DESIGN.md §8).
//
// The partition function is a fixed bit-mixer over the user id, so a
// profile's shard is stable across restarts and independent of shard count
// only in the trivial sense — reopening a store with a different Shards
// value is fine, because shards are a memory layout, not a storage layout.
type shard struct {
	mu       sync.RWMutex
	profiles map[uint64]*sum.Profile
	trackers map[uint64]*values.Tracker // Human Values Scale, session-scoped

	// snap is the current immutable read snapshot; never nil after newShard.
	snap atomic.Pointer[shardSnap]
	// cache is the per-shard recommend cache (recommend.go); entries are
	// valid only for the exact (snapshot, kNN model) pair they were
	// computed under. Never nil after newShard.
	cache atomic.Pointer[recCache]
}

func newShard() *shard {
	sh := &shard{profiles: make(map[uint64]*sum.Profile)}
	sh.snap.Store(&shardSnap{profiles: map[uint64]*sum.Profile{}})
	sh.cache.Store(&recCache{})
	return sh
}

// shardCount normalizes the option: 0 → 16, otherwise the next power of
// two, capped at 1024.
func shardCount(n int) int {
	if n <= 0 {
		n = 16
	}
	if n > 1024 {
		n = 1024
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardFor mixes the user id (splitmix64 finalizer) before masking, so
// sequential ids — the common registration pattern — spread evenly.
func (s *SPA) shardFor(userID uint64) *shard {
	return s.shards[s.shardIndexFor(userID)]
}

// shardIndexFor is shardFor by index — the multi-shard ingest paths key
// their groups by index so lock acquisition can follow a deterministic
// (index-ascending) order. The mixer is keyspace.Mix64, shared with the
// cluster slot map: shard counts and keyspace.NumSlots are both powers of
// two, so a slot's users always share a shard (for Shards ≤ NumSlots) and a
// handoff can filter log records by slot.
func (s *SPA) shardIndexFor(userID uint64) int {
	return int(keyspace.Mix64(userID) & s.mask)
}

// BatchIngest is the high-throughput ingest facade: events are grouped by
// owning shard (preserving per-user order, which sessionization requires)
// and the groups run concurrently, each under its own shard lock with its
// own extractor. Durable profile updates of one shard group commit as a
// single store WriteBatch — one WAL record instead of one per profile.
//
// Semantics match a sequential IngestEvents call: per-user results depend
// only on that user's events, so the fan-out is invisible in the profiles
// (see TestShardedMatchesSingleShard). On error the failing shard group is
// not applied; groups of other shards may be, exactly as two separate
// IngestEvents calls could interleave. Events of unregistered users are
// counted and skipped.
//
// BatchIngest is the one-submitter case of MultiIngest (multi.go), which
// additionally merges independently submitted batches — the serving layer's
// coalesced network requests — into the same per-shard group commits.
func (s *SPA) BatchIngest(events []lifelog.Event) (processed, skippedUnknown int, err error) {
	if len(events) == 0 {
		return 0, 0, nil
	}
	out := s.MultiIngest([][]lifelog.Event{events})
	return out[0].Processed, out[0].SkippedUnknown, out[0].Err
}
