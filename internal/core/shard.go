package core

import (
	"sync"
	"time"

	"repro/internal/lifelog"
	"repro/internal/store"
	"repro/internal/sum"
	"repro/internal/values"
)

// shard is one hash partition of the user population. Everything keyed by
// user id lives here, under one read-write mutex per partition: profile
// mutations for users in different shards never contend, which is what
// lets BatchIngest (and independent API calls) run truly in parallel.
//
// The partition function is a fixed bit-mixer over the user id, so a
// profile's shard is stable across restarts and independent of shard count
// only in the trivial sense — reopening a store with a different Shards
// value is fine, because shards are a memory layout, not a storage layout.
type shard struct {
	mu       sync.RWMutex
	profiles map[uint64]*sum.Profile
	trackers map[uint64]*values.Tracker // Human Values Scale, session-scoped
	pending  map[uint64]map[uint32]float64
}

func newShard() *shard {
	return &shard{profiles: make(map[uint64]*sum.Profile)}
}

// shardCount normalizes the option: 0 → 16, otherwise the next power of
// two, capped at 1024.
func shardCount(n int) int {
	if n <= 0 {
		n = 16
	}
	if n > 1024 {
		n = 1024
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardFor mixes the user id (splitmix64 finalizer) before masking, so
// sequential ids — the common registration pattern — spread evenly.
func (s *SPA) shardFor(userID uint64) *shard {
	h := userID
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return s.shards[h&s.mask]
}

// BatchIngest is the high-throughput ingest facade: events are grouped by
// owning shard (preserving per-user order, which sessionization requires)
// and the groups run concurrently, each under its own shard lock with its
// own extractor. Durable profile updates of one shard group commit as a
// single store WriteBatch — one WAL record instead of one per profile.
//
// Semantics match a sequential IngestEvents call: per-user results depend
// only on that user's events, so the fan-out is invisible in the profiles
// (see TestShardedMatchesSingleShard). On error the failing shard group is
// not applied; groups of other shards may be, exactly as two separate
// IngestEvents calls could interleave. Events of unregistered users are
// counted and skipped.
func (s *SPA) BatchIngest(events []lifelog.Event) (processed, skippedUnknown int, err error) {
	if len(events) == 0 {
		return 0, 0, nil
	}
	now := s.clk.Now()
	groups := make(map[*shard][]lifelog.Event, len(s.shards))
	for _, e := range events {
		sh := s.shardFor(e.UserID)
		groups[sh] = append(groups[sh], e)
	}
	results := make([]ingestResult, 0, len(groups))
	if len(groups) == 1 {
		// Single-shard batches (including every call on a 1-shard core)
		// skip the fan-out machinery entirely.
		for sh, evs := range groups {
			results = append(results, s.ingestShard(sh, evs, now))
		}
	} else {
		var wg sync.WaitGroup
		resCh := make(chan ingestResult, len(groups))
		for sh, evs := range groups {
			wg.Add(1)
			go func(sh *shard, evs []lifelog.Event) {
				defer wg.Done()
				resCh <- s.ingestShard(sh, evs, now)
			}(sh, evs)
		}
		wg.Wait()
		close(resCh)
		for r := range resCh {
			results = append(results, r)
		}
	}
	staleKNN := false
	for _, r := range results {
		staleKNN = staleKNN || r.interactions
	}
	if staleKNN {
		s.invalidateRecommender()
	}
	for _, r := range results {
		processed += r.processed
		skippedUnknown += r.skipped
		if err == nil && r.err != nil {
			err = r.err
		}
	}
	return processed, skippedUnknown, err
}

type ingestResult struct {
	processed    int
	skipped      int
	interactions bool
	err          error
}

// ingestShard applies one shard's slice of the event stream. The feed pass
// runs before any mutation, so a malformed stream (out-of-order events)
// fails without touching profiles; the apply pass then updates subjective
// blocks and CF interaction counts and persists the shard's profiles as
// one WriteBatch.
func (s *SPA) ingestShard(sh *shard, events []lifelog.Event, now time.Time) ingestResult {
	var res ingestResult
	sh.mu.Lock()
	defer sh.mu.Unlock()
	x := lifelog.NewExtractor(30*time.Minute, now)
	for _, e := range events {
		if _, ok := sh.profiles[e.UserID]; !ok {
			res.skipped++
			continue
		}
		if err := x.Feed(e); err != nil {
			res.err = err
			return res
		}
		res.processed++
	}
	for _, e := range events {
		if _, ok := sh.profiles[e.UserID]; ok {
			if sh.noteInteraction(e) {
				res.interactions = true
			}
		}
	}
	var batch store.WriteBatch
	for id, fv := range x.Finish() {
		p := sh.profiles[id]
		p.Subjective = fv.Dense()
		if s.db == nil {
			continue
		}
		if s.unbatched {
			// Compatibility/measurement mode: the seed's one-write-per-
			// profile persistence (see Options.UnbatchedWrites).
			if err := sum.Save(s.db, p); err != nil {
				res.err = err
				return res
			}
			continue
		}
		if err := p.Validate(); err != nil {
			res.err = err
			return res
		}
		batch.Put(sum.Key(id), sum.Encode(p))
	}
	if s.db != nil && batch.Len() > 0 {
		if err := s.db.Apply(&batch); err != nil {
			res.err = err
		}
	}
	return res
}
