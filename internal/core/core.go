// Package core is the Smart Prediction Assistant (SPA) facade: the public
// API a downstream application uses. It wires the four deployed components
// of the paper's Fig. 3 around a persistent profile store:
//
//  1. LifeLogs Pre-processor Agent — IngestEvents runs raw events through an
//     elastic agent pool into session/feature extraction,
//  2. Smart Component — TrainPropensity / Propensity wrap the calibrated
//     linear SVM,
//  3. Attributes Manager Agent — Sensibilities / DominantAttributes expose
//     automatic relevance weights,
//  4. Messaging Agent — AssignMessage generates the individualized
//     emotional argument.
//
// The fifth component (Intelligent User Interface / Human Values Scale) is
// out of scope, exactly as in the paper's deployment (§4).
//
// Profiles are write-through: every mutation is persisted to the embedded
// store so a restarted process resumes with the same Smart User Models.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/attributes"
	"repro/internal/baseline"
	"repro/internal/cf"
	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/messaging"
	"repro/internal/store"
	"repro/internal/sum"
	"repro/internal/svm"
	"repro/internal/values"
)

// Options configure a SPA instance.
type Options struct {
	// DataDir is the storage directory for profiles. Empty selects an
	// in-memory-only instance (no durability).
	DataDir string
	// Params tune the SUM learning dynamics; zero value selects defaults.
	Params sum.Params
	// Clock is the time source; nil selects the wall clock.
	Clock clock.Clock
	// SensibilityThreshold feeds the Messaging Agent; zero selects 0.30.
	SensibilityThreshold float64
	// Policy is the multi-match messaging rule (default BySensibility,
	// the paper's case 3.c.ii).
	Policy messaging.Policy
}

// SPA is the Smart Prediction Assistant. All methods are safe for
// concurrent use.
type SPA struct {
	mu        sync.RWMutex
	db        *store.DB // nil when non-durable
	model     *sum.Model
	msgdb     *messaging.DB
	registry  *attributes.Registry
	clk       clock.Clock
	threshold float64
	policy    messaging.Policy

	profiles map[uint64]*sum.Profile
	scorer   baseline.Scorer
	scaler   *svm.Scaler

	// Recommendation-function state (see recommend.go).
	pendingInteractions map[uint64]map[uint32]float64
	knn                 *cf.KNN
	tagger              ActionTagger

	// Human Values Scale trackers (see values.go).
	valueTrackers map[uint64]*values.Tracker
}

// ErrNoProfile is returned for operations on unregistered users.
var ErrNoProfile = errors.New("core: no such user profile")

// ErrNoModel is returned by Propensity before TrainPropensity has run.
var ErrNoModel = errors.New("core: propensity model not trained")

// New creates (or reopens) a SPA instance.
func New(opts Options) (*SPA, error) {
	params := opts.Params
	if params == (sum.Params{}) {
		params = sum.DefaultParams()
	}
	model, err := sum.NewModel(params, nil)
	if err != nil {
		return nil, err
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.Wall{}
	}
	threshold := opts.SensibilityThreshold
	if threshold == 0 {
		threshold = 0.30
	}
	s := &SPA{
		model:     model,
		msgdb:     messaging.NewDB(),
		registry:  defaultRegistry(),
		clk:       clk,
		threshold: threshold,
		policy:    opts.Policy,
		profiles:  make(map[uint64]*sum.Profile),
	}
	if opts.DataDir != "" {
		db, err := store.Open(opts.DataDir, store.Options{})
		if err != nil {
			return nil, err
		}
		s.db = db
		if err := sum.ForEach(db, func(p *sum.Profile) bool {
			s.profiles[p.UserID] = p
			return true
		}); err != nil {
			db.Close()
			return nil, fmt.Errorf("core: loading profiles: %w", err)
		}
	}
	return s, nil
}

// defaultRegistry declares the attribute vocabulary: objective
// socio-demographics, the LifeLog subjective digest, and the ten emotional
// attributes of the deployment.
func defaultRegistry() *attributes.Registry {
	r := attributes.NewRegistry()
	for _, n := range []string{
		"obj_age", "obj_gender", "obj_education", "obj_employment",
		"obj_income_band", "obj_city_size", "obj_prior_courses", "obj_tenure_months",
	} {
		r.MustRegister(attributes.Def{Name: n, Kind: attributes.Objective, Domain: "training"})
	}
	for _, n := range lifelog.DenseNames() {
		r.MustRegister(attributes.Def{Name: n, Kind: attributes.Subjective, Domain: "training"})
	}
	for _, a := range emotion.AllAttributes() {
		r.MustRegister(attributes.Def{Name: "emo_" + a.String(), Kind: attributes.Emotional, Domain: "training"})
	}
	return r
}

// Registry exposes the attribute vocabulary.
func (s *SPA) Registry() *attributes.Registry { return s.registry }

// Close flushes and releases the store.
func (s *SPA) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.db != nil {
		err := s.db.Close()
		s.db = nil
		return err
	}
	return nil
}

// Register creates a Smart User Model for a new user with the given
// objective attributes. Registering an existing user is an error.
func (s *SPA) Register(userID uint64, objective []float64) error {
	if userID == 0 {
		return errors.New("core: zero user id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.profiles[userID]; dup {
		return fmt.Errorf("core: user %d already registered", userID)
	}
	p := sum.NewProfile(userID, s.clk.Now())
	p.Objective = append([]float64(nil), objective...)
	p.Subjective = make([]float64, lifelog.DenseLen)
	s.profiles[userID] = p
	return s.persistLocked(p)
}

func (s *SPA) persistLocked(p *sum.Profile) error {
	if s.db == nil {
		return nil
	}
	return sum.Save(s.db, p)
}

// Users returns the number of registered profiles.
func (s *SPA) Users() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.profiles)
}

// Profile returns a copy of the user's SUM (callers cannot mutate internal
// state).
func (s *SPA) Profile(userID uint64) (sum.Profile, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[userID]
	if !ok {
		return sum.Profile{}, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	cp := *p
	cp.Objective = append([]float64(nil), p.Objective...)
	cp.Subjective = append([]float64(nil), p.Subjective...)
	return cp, nil
}

// IngestEvents runs a batch of raw LifeLog events through the pre-processor
// (sessionization + feature extraction) and folds the digests into the
// profiles' subjective blocks. Events of unregistered users are counted and
// skipped, mirroring the deployment's handling of anonymous traffic.
func (s *SPA) IngestEvents(events []lifelog.Event) (processed, skippedUnknown int, err error) {
	if len(events) == 0 {
		return 0, 0, nil
	}
	x := lifelog.NewExtractor(30*time.Minute, s.clk.Now())
	s.mu.RLock()
	for _, e := range events {
		if _, ok := s.profiles[e.UserID]; !ok {
			skippedUnknown++
			continue
		}
		if ferr := x.Feed(e); ferr != nil {
			s.mu.RUnlock()
			return processed, skippedUnknown, ferr
		}
		processed++
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range events {
		if _, ok := s.profiles[e.UserID]; ok {
			s.noteInteraction(e)
		}
	}
	for id, fv := range x.Finish() {
		p := s.profiles[id]
		p.Subjective = fv.Dense()
		if err := s.persistLocked(p); err != nil {
			return processed, skippedUnknown, err
		}
	}
	return processed, skippedUnknown, nil
}

// NextQuestion returns the user's next Gradual EIT item (cycling the bank
// when exhausted, as the deployment keeps asking indefinitely).
func (s *SPA) NextQuestion(userID uint64) (emotion.Item, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[userID]
	if !ok {
		return emotion.Item{}, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	item, err := s.model.NextItem(p)
	if errors.Is(err, emotion.ErrExhausted) {
		return s.model.Bank().Item(p.AnsweredItems % s.model.Bank().Len())
	}
	return item, err
}

// SubmitAnswer applies a Gradual EIT answer to the user's SUM.
func (s *SPA) SubmitAnswer(userID uint64, ans emotion.Answer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.profiles[userID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	if err := s.model.ApplyEITAnswer(p, ans, s.clk.Now()); err != nil {
		return err
	}
	return s.persistLocked(p)
}

// Reward applies positive reinforcement for the given attributes (the user
// acted on a recommendation built on them).
func (s *SPA) Reward(userID uint64, attrs []emotion.Attribute) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.profiles[userID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	s.model.Reward(p, attrs, s.clk.Now())
	return s.persistLocked(p)
}

// Punish applies negative reinforcement (recommendation ignored/rejected).
func (s *SPA) Punish(userID uint64, attrs []emotion.Attribute) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.profiles[userID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	s.model.Punish(p, attrs, s.clk.Now())
	return s.persistLocked(p)
}

// Sensibilities returns the user's absolute sensibility weights, indexed by
// emotion.Attribute.
func (s *SPA) Sensibilities(userID uint64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	return s.model.Sensibilities(p), nil
}

// DominantAttributes reports the user's dominant emotional attributes
// (relative weights above the threshold), strongest first.
func (s *SPA) DominantAttributes(userID uint64) ([]attributes.Sensibility, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	return attributes.DominantAttributes(s.model.RelativeSensibilities(p), 0.5), nil
}

// Advise returns the SUM advice-stage excitation/inhibition vector for a
// domain.
func (s *SPA) Advise(userID uint64, domain string) (sum.Advice, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[userID]
	if !ok {
		return sum.Advice{}, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	return s.model.Advise(p, domain), nil
}

// AssignMessage runs the Messaging Agent for a product (§5.3).
func (s *SPA) AssignMessage(userID uint64, product messaging.Product) (messaging.Assignment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[userID]
	if !ok {
		return messaging.Assignment{}, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	return s.msgdb.Assign(product, s.model.Sensibilities(p), s.threshold, s.policy)
}

// MessageDB exposes the message database (priority configuration etc.).
func (s *SPA) MessageDB() *messaging.DB { return s.msgdb }

// FeatureVector materializes a user's full learner input (objective +
// subjective + emotional blocks).
func (s *SPA) FeatureVector(userID uint64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	return p.FeatureVector(true, true, true), nil
}

// TrainPropensity fits the Smart Component's propensity model from labelled
// examples: user feature vectors (as returned by FeatureVector) and
// responded flags.
func (s *SPA) TrainPropensity(features [][]float64, responded []bool) error {
	if len(features) != len(responded) {
		return errors.New("core: label count mismatch")
	}
	d := &svm.Dataset{X: make([][]float64, len(features)), Y: make([]int, len(responded))}
	for i := range features {
		d.X[i] = append([]float64(nil), features[i]...)
		if responded[i] {
			d.Y[i] = 1
		} else {
			d.Y[i] = -1
		}
	}
	scaler, err := svm.FitScaler(d.X)
	if err != nil {
		return err
	}
	if err := scaler.TransformAll(d.X); err != nil {
		return err
	}
	m, err := svm.TrainCalibrated(d, svm.PegasosTrainer(svm.DefaultPegasos()), 1)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.scaler = scaler
	s.scorer = &baseline.SVMScorer{Model: m}
	s.mu.Unlock()
	return nil
}

// Propensity returns the calibrated probability that the user responds to a
// touch — the selection function's ranking key.
func (s *SPA) Propensity(userID uint64) (float64, error) {
	s.mu.RLock()
	scorer, scaler := s.scorer, s.scaler
	p, ok := s.profiles[userID]
	s.mu.RUnlock()
	if scorer == nil {
		return 0, ErrNoModel
	}
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	x := p.FeatureVector(true, true, true)
	if _, err := scaler.Transform(x); err != nil {
		return 0, err
	}
	return scorer.Score(x)
}

// SelectTop ranks all registered users by propensity and returns the top-k
// user IDs — the paper's selection function. Ties break by ascending ID.
func (s *SPA) SelectTop(k int) ([]uint64, error) {
	if k < 1 {
		return nil, errors.New("core: k must be >= 1")
	}
	s.mu.RLock()
	ids := make([]uint64, 0, len(s.profiles))
	for id := range s.profiles {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	type scored struct {
		id    uint64
		score float64
	}
	all := make([]scored, 0, len(ids))
	for _, id := range ids {
		v, err := s.Propensity(id)
		if err != nil {
			return nil, err
		}
		all = append(all, scored{id, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out, nil
}
