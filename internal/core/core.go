// Package core is the Smart Prediction Assistant (SPA) facade: the public
// API a downstream application uses. It wires the four deployed components
// of the paper's Fig. 3 around a persistent profile store:
//
//  1. LifeLogs Pre-processor Agent — IngestEvents/BatchIngest run raw events
//     through an elastic agent pool into session/feature extraction,
//  2. Smart Component — TrainPropensity / Propensity wrap the calibrated
//     linear SVM,
//  3. Attributes Manager Agent — Sensibilities / DominantAttributes expose
//     automatic relevance weights,
//  4. Messaging Agent — AssignMessage generates the individualized
//     emotional argument.
//
// The fifth component (Intelligent User Interface / Human Values Scale) is
// out of scope, exactly as in the paper's deployment (§4).
//
// Profiles live in hash-partitioned shards, each guarded by its own
// read-write mutex, so mutations of different users proceed in parallel
// (see shard.go and DESIGN.md). Profiles are write-through: every mutation
// is persisted to the embedded store — batched per shard on the ingest path
// — so a restarted process resumes with the same Smart User Models.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/attributes"
	"repro/internal/baseline"
	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/messaging"
	"repro/internal/store"
	"repro/internal/sum"
	"repro/internal/svm"
)

// Options configure a SPA instance.
type Options struct {
	// DataDir is the storage directory for profiles. Empty selects an
	// in-memory-only instance (no durability).
	DataDir string
	// Store tunes the embedded store when DataDir is set; the zero value
	// selects store defaults (background compaction on).
	Store store.Options
	// Shards is the number of profile partitions; concurrent calls touching
	// users in different shards never contend. Zero selects 16; values
	// round up to the next power of two. One shard reproduces the old
	// single-mutex behavior exactly.
	Shards int
	// UnbatchedWrites restores the pre-sharding persistence behavior on
	// the ingest path: one store write per updated profile instead of one
	// WriteBatch per shard group. With store.Options.SyncWrites that means
	// one fsync per profile versus one per group. It exists so spabench
	// and BenchmarkShardedIngest can quantify the group-commit win against
	// the old architecture; production should leave it off.
	UnbatchedWrites bool
	// LockedReads restores the pre-snapshot read path: every read takes
	// its shard's read lock (and RecommendActions rebuilds the kNN under a
	// stampeding mutex), so reads contend with writers exactly as they did
	// before the epoch-snapshot refactor. The measurement twin of
	// UnbatchedWrites — spabench [S7] quantifies the snapshot win with it;
	// production should leave it off.
	LockedReads bool
	// Params tune the SUM learning dynamics; zero value selects defaults.
	Params sum.Params
	// Clock is the time source; nil selects the wall clock.
	Clock clock.Clock
	// SensibilityThreshold feeds the Messaging Agent; zero selects 0.30.
	SensibilityThreshold float64
	// Policy is the multi-match messaging rule (default BySensibility,
	// the paper's case 3.c.ii).
	Policy messaging.Policy
}

// SPA is the Smart Prediction Assistant. All methods are safe for
// concurrent use.
type SPA struct {
	db        *store.DB // nil when non-durable
	model     *sum.Model
	msgdb     *messaging.DB
	registry  *attributes.Registry
	clk       clock.Clock
	threshold float64
	policy    messaging.Policy
	unbatched bool
	// lockedReads routes reads through the legacy shard-lock path (see
	// Options.LockedReads); snapshots are still published so the mode can
	// be compared against the default on the same build.
	lockedReads bool

	shards []*shard
	mask   uint64
	// users mirrors the total profile count so Users() never touches the
	// shard locks — health probes must answer even while a commit holds a
	// shard write-locked through a slow fsync.
	users atomic.Int64

	// epoch is the read-snapshot generation: 1 after New, +1 per shard
	// publish (snapshot.go).
	epoch atomic.Uint64

	// Propensity-model state, replaced wholesale by TrainPropensity;
	// readers load the pair with one atomic load (select.go).
	pmodel atomic.Pointer[propModel]
	// prop is the materialized propensity ranking SelectTop serves from,
	// rebuilt single-flight per (epoch, model) under propBuildMu.
	prop        atomic.Pointer[propIndex]
	propBuildMu sync.Mutex

	// Recommendation-function state (see recommend.go): the frozen kNN
	// model tagged with its invalidation generation, rebuilt single-flight
	// under recBuildMu while concurrent readers serve the previous model.
	recGen     atomic.Uint64
	rec        atomic.Pointer[recState]
	recBuildMu sync.Mutex
	tagger     atomic.Pointer[ActionTagger]

	// Read-path counters (snapshot.go ReadStats).
	readCacheHits   atomic.Uint64
	readCacheMisses atomic.Uint64
	knnRebuilds     atomic.Uint64
}

// ErrNoProfile is returned for operations on unregistered users.
var ErrNoProfile = errors.New("core: no such user profile")

// ErrNoModel is returned by Propensity before TrainPropensity has run.
var ErrNoModel = errors.New("core: propensity model not trained")

// ErrAlreadyRegistered is returned by Register for an existing user.
var ErrAlreadyRegistered = errors.New("core: user already registered")

// New creates (or reopens) a SPA instance.
func New(opts Options) (*SPA, error) {
	params := opts.Params
	if params == (sum.Params{}) {
		params = sum.DefaultParams()
	}
	model, err := sum.NewModel(params, nil)
	if err != nil {
		return nil, err
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.Wall{}
	}
	threshold := opts.SensibilityThreshold
	if threshold == 0 {
		threshold = 0.30
	}
	s := &SPA{
		model:       model,
		msgdb:       messaging.NewDB(),
		registry:    defaultRegistry(),
		clk:         clk,
		threshold:   threshold,
		policy:      opts.Policy,
		unbatched:   opts.UnbatchedWrites,
		lockedReads: opts.LockedReads,
	}
	n := shardCount(opts.Shards)
	s.mask = uint64(n - 1)
	s.shards = make([]*shard, n)
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	if opts.DataDir != "" {
		db, err := store.Open(opts.DataDir, opts.Store)
		if err != nil {
			return nil, err
		}
		s.db = db
		if err := sum.ForEach(db, func(p *sum.Profile) bool {
			sh := s.shardFor(p.UserID)
			sh.profiles[p.UserID] = p
			s.users.Add(1)
			return true
		}); err != nil {
			db.Close()
			return nil, fmt.Errorf("core: loading profiles: %w", err)
		}
	}
	s.seedSnapshots()
	return s, nil
}

// defaultRegistry declares the attribute vocabulary: objective
// socio-demographics, the LifeLog subjective digest, and the ten emotional
// attributes of the deployment.
func defaultRegistry() *attributes.Registry {
	r := attributes.NewRegistry()
	for _, n := range []string{
		"obj_age", "obj_gender", "obj_education", "obj_employment",
		"obj_income_band", "obj_city_size", "obj_prior_courses", "obj_tenure_months",
	} {
		r.MustRegister(attributes.Def{Name: n, Kind: attributes.Objective, Domain: "training"})
	}
	for _, n := range lifelog.DenseNames() {
		r.MustRegister(attributes.Def{Name: n, Kind: attributes.Subjective, Domain: "training"})
	}
	for _, a := range emotion.AllAttributes() {
		r.MustRegister(attributes.Def{Name: "emo_" + a.String(), Kind: attributes.Emotional, Domain: "training"})
	}
	return r
}

// Registry exposes the attribute vocabulary.
func (s *SPA) Registry() *attributes.Registry { return s.registry }

// Close flushes and releases the store. Close is idempotent; mutations
// after Close fail with the store's ErrClosed.
func (s *SPA) Close() error {
	if s.db != nil {
		return s.db.Close()
	}
	return nil
}

// Register creates a Smart User Model for a new user with the given
// objective attributes. Registering an existing user is an error.
func (s *SPA) Register(userID uint64, objective []float64) error {
	if userID == 0 {
		return errors.New("core: zero user id")
	}
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.profiles[userID]; dup {
		return fmt.Errorf("%w: %d", ErrAlreadyRegistered, userID)
	}
	p := sum.NewProfile(userID, s.clk.Now())
	p.Objective = append([]float64(nil), objective...)
	p.Subjective = make([]float64, lifelog.DenseLen)
	sh.profiles[userID] = p
	s.users.Add(1)
	s.publishShardLocked(sh, []uint64{userID}, nil)
	return s.persist(p)
}

// persist write-throughs one profile; the caller holds the owning shard's
// write lock, which orders store writes for that user.
func (s *SPA) persist(p *sum.Profile) error {
	if s.db == nil {
		return nil
	}
	return sum.Save(s.db, p)
}

// Users returns the number of registered profiles. Lock-free by design:
// /healthz reports it, and a liveness probe that can block behind a shard
// write lock (held across a stalled fsync) would report the disk's health,
// not the process's.
func (s *SPA) Users() int {
	return int(s.users.Load())
}

// Profile returns a copy of the user's SUM (callers cannot mutate internal
// state).
func (s *SPA) Profile(userID uint64) (sum.Profile, error) {
	p, err := s.viewProfile(userID)
	if err != nil {
		return sum.Profile{}, err
	}
	cp := *p
	cp.Objective = append([]float64(nil), p.Objective...)
	cp.Subjective = append([]float64(nil), p.Subjective...)
	return cp, nil
}

// IngestEvents runs a batch of raw LifeLog events through the pre-processor
// (sessionization + feature extraction) and folds the digests into the
// profiles' subjective blocks. Events of unregistered users are counted and
// skipped, mirroring the deployment's handling of anonymous traffic.
// IngestEvents is BatchIngest: work is partitioned by shard and processed
// in parallel.
func (s *SPA) IngestEvents(events []lifelog.Event) (processed, skippedUnknown int, err error) {
	return s.BatchIngest(events)
}

// NextQuestion returns the user's next Gradual EIT item (cycling the bank
// when exhausted, as the deployment keeps asking indefinitely).
func (s *SPA) NextQuestion(userID uint64) (emotion.Item, error) {
	p, err := s.viewProfile(userID)
	if err != nil {
		return emotion.Item{}, err
	}
	item, err := s.model.NextItem(p)
	if errors.Is(err, emotion.ErrExhausted) {
		return s.model.Bank().Item(p.AnsweredItems % s.model.Bank().Len())
	}
	return item, err
}

// SubmitAnswer applies a Gradual EIT answer to the user's SUM.
func (s *SPA) SubmitAnswer(userID uint64, ans emotion.Answer) error {
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.profiles[userID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	if err := s.model.ApplyEITAnswer(p, ans, s.clk.Now()); err != nil {
		return err
	}
	s.publishShardLocked(sh, []uint64{userID}, nil)
	return s.persist(p)
}

// Reward applies positive reinforcement for the given attributes (the user
// acted on a recommendation built on them).
func (s *SPA) Reward(userID uint64, attrs []emotion.Attribute) error {
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.profiles[userID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	s.model.Reward(p, attrs, s.clk.Now())
	s.publishShardLocked(sh, []uint64{userID}, nil)
	return s.persist(p)
}

// Punish applies negative reinforcement (recommendation ignored/rejected).
func (s *SPA) Punish(userID uint64, attrs []emotion.Attribute) error {
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.profiles[userID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	s.model.Punish(p, attrs, s.clk.Now())
	s.publishShardLocked(sh, []uint64{userID}, nil)
	return s.persist(p)
}

// Sensibilities returns the user's absolute sensibility weights, indexed by
// emotion.Attribute.
func (s *SPA) Sensibilities(userID uint64) ([]float64, error) {
	p, err := s.viewProfile(userID)
	if err != nil {
		return nil, err
	}
	return s.model.Sensibilities(p), nil
}

// DominantAttributes reports the user's dominant emotional attributes
// (relative weights above the threshold), strongest first.
func (s *SPA) DominantAttributes(userID uint64) ([]attributes.Sensibility, error) {
	p, err := s.viewProfile(userID)
	if err != nil {
		return nil, err
	}
	return attributes.DominantAttributes(s.model.RelativeSensibilities(p), 0.5), nil
}

// Advise returns the SUM advice-stage excitation/inhibition vector for a
// domain.
func (s *SPA) Advise(userID uint64, domain string) (sum.Advice, error) {
	p, err := s.viewProfile(userID)
	if err != nil {
		return sum.Advice{}, err
	}
	return s.model.Advise(p, domain), nil
}

// AssignMessage runs the Messaging Agent for a product (§5.3).
func (s *SPA) AssignMessage(userID uint64, product messaging.Product) (messaging.Assignment, error) {
	p, err := s.viewProfile(userID)
	if err != nil {
		return messaging.Assignment{}, err
	}
	return s.msgdb.Assign(product, s.model.Sensibilities(p), s.threshold, s.policy)
}

// MessageDB exposes the message database (priority configuration etc.).
func (s *SPA) MessageDB() *messaging.DB { return s.msgdb }

// StoreStats snapshots the embedded store's internals for health/metrics
// reporting; ok is false on an in-memory-only instance.
func (s *SPA) StoreStats() (st store.Stats, ok bool) {
	if s.db == nil {
		return store.Stats{}, false
	}
	return s.db.Stats(), true
}

// SetStoreObserver installs (or removes, with nil) the embedded store's
// engine observer — the serving layer's hook for WAL-sync and compaction
// latency. A no-op on an in-memory instance.
func (s *SPA) SetStoreObserver(o store.Observer) {
	if s.db != nil {
		s.db.SetObserver(o)
	}
}

// FeatureVector materializes a user's full learner input (objective +
// subjective + emotional blocks).
func (s *SPA) FeatureVector(userID uint64) ([]float64, error) {
	p, err := s.viewProfile(userID)
	if err != nil {
		return nil, err
	}
	return p.FeatureVector(true, true, true), nil
}

// TrainPropensity fits the Smart Component's propensity model from labelled
// examples: user feature vectors (as returned by FeatureVector) and
// responded flags. Training runs without touching the profile shards, so
// ingest traffic continues in parallel; the fitted model is installed
// atomically at the end.
func (s *SPA) TrainPropensity(features [][]float64, responded []bool) error {
	if len(features) != len(responded) {
		return errors.New("core: label count mismatch")
	}
	d := &svm.Dataset{X: make([][]float64, len(features)), Y: make([]int, len(responded))}
	for i := range features {
		d.X[i] = append([]float64(nil), features[i]...)
		if responded[i] {
			d.Y[i] = 1
		} else {
			d.Y[i] = -1
		}
	}
	scaler, err := svm.FitScaler(d.X)
	if err != nil {
		return err
	}
	if err := scaler.TransformAll(d.X); err != nil {
		return err
	}
	m, err := svm.TrainCalibrated(d, svm.PegasosTrainer(svm.DefaultPegasos()), 1)
	if err != nil {
		return err
	}
	s.pmodel.Store(&propModel{scorer: &baseline.SVMScorer{Model: m}, scaler: scaler})
	return nil
}
