package core

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/lifelog"
	"repro/internal/store"
)

// trainOn fits the propensity model on the given users' current feature
// vectors with alternating labels.
func trainOn(t *testing.T, s *SPA, ids ...uint64) {
	t.Helper()
	var feats [][]float64
	var labels []bool
	for i, id := range ids {
		fv, err := s.FeatureVector(id)
		if err != nil {
			t.Fatal(err)
		}
		feats = append(feats, fv)
		labels = append(labels, i%2 == 0)
	}
	if err := s.TrainPropensity(feats, labels); err != nil {
		t.Fatal(err)
	}
}

// TestSelectTopPartialSelection: one profile the scaler cannot transform
// (its objective block has a different dimensionality than the training
// set) must not void the whole ranking. The selection skips it, reports
// the skip, and still ranks everyone else.
func TestSelectTopPartialSelection(t *testing.T) {
	s := newSPA(t, "")
	for id := uint64(1); id <= 8; id++ {
		if err := s.Register(id, []float64{float64(id), 1}); err != nil {
			t.Fatal(err)
		}
	}
	trainOn(t, s, 1, 2, 3, 4, 5, 6, 7, 8)
	// A later registration with a wider objective block: FeatureVector
	// length no longer matches the fitted scaler.
	if err := s.Register(99, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	ids, err := s.SelectTop(20)
	if err == nil {
		t.Fatal("want partial-selection error")
	}
	if !errors.Is(err, ErrPartialSelection) {
		t.Fatalf("err = %v, want ErrPartialSelection", err)
	}
	var partial *PartialSelectionError
	if !errors.As(err, &partial) {
		t.Fatalf("err = %T, want *PartialSelectionError", err)
	}
	if partial.Skipped != 1 {
		t.Fatalf("skipped %d, want 1", partial.Skipped)
	}
	if len(ids) != 8 {
		t.Fatalf("ranked %d users, want 8: %v", len(ids), ids)
	}
	for _, id := range ids {
		if id == 99 {
			t.Fatalf("unscorable user ranked: %v", ids)
		}
	}
}

// TestConcurrentReadsDuringIngest runs every read endpoint against
// concurrent MultiIngest and pipelined PrepareMulti/Commit writers (run
// with -race). Afterward the epoch must have advanced and — extending
// TestRecommendActionsInvalidatedByNewIngest — a read issued after fresh
// neighbor evidence must reflect it.
func TestConcurrentReadsDuringIngest(t *testing.T) {
	s := newSPA(t, t.TempDir())
	s.Register(1, nil)
	s.Register(2, nil)
	ingestClicks(t, s, map[uint64][]uint32{1: {10}, 2: {10, 20}})
	for id := uint64(10); id < 42; id++ {
		if err := s.Register(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	trainOn(t, s, 1, 2, 10, 11, 12, 13)

	e0 := s.SnapshotEpoch()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer A: MultiIngest over its own users; writer B: the pipelined
	// prepare/commit split over a disjoint span. Neither touches the
	// actions that decide user 1's recommendations (10, 20, 21).
	makeBatch := func(base uint64, round int) []lifelog.Event {
		at := t0.Add(time.Duration(round) * time.Minute)
		var evs []lifelog.Event
		for u := uint64(0); u < 8; u++ {
			evs = append(evs, lifelog.Event{
				UserID: base + u, Time: at, Type: lifelog.EventClick,
				Action: uint32(100 + int(base+u)*3%50),
			})
		}
		return evs
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, o := range s.MultiIngest([][]lifelog.Event{makeBatch(10, round)}) {
				if o.Err != nil {
					t.Errorf("multi ingest: %v", o.Err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			pm := s.PrepareMulti([][]lifelog.Event{makeBatch(20, round)})
			for _, o := range pm.Commit() {
				if o.Err != nil {
					t.Errorf("pipelined commit: %v", o.Err)
					return
				}
			}
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			uid := uint64(10 + w)
			for i := 0; i < 150; i++ {
				p, err := s.Profile(uid)
				if err != nil {
					t.Errorf("profile: %v", err)
					return
				}
				// A torn profile would surface as a half-installed
				// subjective block.
				if n := len(p.Subjective); n != 0 && n != lifelog.DenseLen {
					t.Errorf("torn subjective block: len %d", n)
					return
				}
				if _, err := s.RecommendActions(uid, 3); err != nil && !errors.Is(err, ErrNoInteractions) {
					t.Errorf("recommend: %v", err)
					return
				}
				if _, err := s.Propensity(uid); err != nil {
					t.Errorf("propensity: %v", err)
					return
				}
				if _, err := s.SelectTop(4); err != nil {
					t.Errorf("select-top: %v", err)
					return
				}
				if _, err := s.Advise(uid, "training"); err != nil {
					t.Errorf("advise: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers drain first; then stop the writers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done

	if e1 := s.SnapshotEpoch(); e1 <= e0 {
		t.Fatalf("epoch did not advance under ingest: %d -> %d", e0, e1)
	}
	// Post-invalidation freshness: decisive new neighbor evidence must be
	// visible to the very next read.
	var events []lifelog.Event
	at := t0.Add(time.Hour)
	for i := 0; i < 5; i++ {
		events = append(events, lifelog.Event{UserID: 2, Time: at, Type: lifelog.EventEnroll, Action: 21})
		at = at.Add(time.Minute)
	}
	if _, _, err := s.IngestEvents(events); err != nil {
		t.Fatal(err)
	}
	recs, err := s.RecommendActions(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Action != 21 {
		t.Fatalf("read after invalidation served stale model: %v", recs)
	}
}

// gatedFileOps parks WAL writes while armed, so a commit can be held
// mid-sync with its shard write locks taken.
type gatedFileOps struct {
	armed  atomic.Bool
	parked atomic.Int32
	gate   chan struct{}
}

func (f *gatedFileOps) Create(name string) (store.SegFile, error) { return os.Create(name) }
func (f *gatedFileOps) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (f *gatedFileOps) Remove(name string) error                  { return os.Remove(name) }
func (f *gatedFileOps) OpenWAL(name string) (store.WALFile, error) {
	file, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &gatedWAL{fs: f, File: file}, nil
}

type gatedWAL struct {
	fs *gatedFileOps
	*os.File
}

func (w *gatedWAL) Write(p []byte) (int, error) {
	if w.fs.armed.Load() {
		w.fs.parked.Add(1)
		<-w.fs.gate
	}
	return w.File.Write(p)
}

// TestReadsCompleteWhileCommitParkedOnWALSync is the lock-freedom claim
// stated as a test: park a pipelined Commit inside its WAL write — shard
// write locks held — and every read path must still complete.
func TestReadsCompleteWhileCommitParkedOnWALSync(t *testing.T) {
	fops := &gatedFileOps{gate: make(chan struct{})}
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(fops.gate) }) }
	defer release()

	s, err := New(Options{
		DataDir: t.TempDir(),
		Shards:  2,
		Store:   store.Options{SyncWrites: true, FileOps: fops},
		Clock:   clock.NewSimulated(t0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for id := uint64(1); id <= 4; id++ {
		if err := s.Register(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	ingestClicks(t, s, map[uint64][]uint32{1: {10}, 2: {10, 20}})
	trainOn(t, s, 1, 2, 3, 4)
	// Warm the models so the reads below measure the steady state.
	if _, err := s.RecommendActions(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SelectTop(2); err != nil {
		t.Fatal(err)
	}

	// Park a wave that touches both shards.
	pm := s.PrepareMulti([][]lifelog.Event{{
		{UserID: 1, Time: t0.Add(time.Hour), Type: lifelog.EventClick, Action: 30},
		{UserID: 2, Time: t0.Add(time.Hour), Type: lifelog.EventClick, Action: 31},
	}})
	fops.armed.Store(true)
	commitDone := make(chan []IngestOutcome, 1)
	go func() { commitDone <- pm.Commit() }()
	deadline := time.Now().Add(2 * time.Second)
	for fops.parked.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("commit never reached the WAL")
		}
		time.Sleep(time.Millisecond)
	}

	readsDone := make(chan error, 1)
	go func() {
		readsDone <- func() error {
			if _, err := s.Profile(1); err != nil {
				return fmt.Errorf("profile: %w", err)
			}
			if _, err := s.RecommendActions(1, 1); err != nil {
				return fmt.Errorf("recommend: %w", err)
			}
			if _, err := s.Propensity(2); err != nil {
				return fmt.Errorf("propensity: %w", err)
			}
			if _, err := s.SelectTop(2); err != nil {
				return fmt.Errorf("select-top: %w", err)
			}
			if _, err := s.Advise(2, "training"); err != nil {
				return fmt.Errorf("advise: %w", err)
			}
			if _, err := s.Sensibilities(1); err != nil {
				return fmt.Errorf("sensibilities: %w", err)
			}
			return nil
		}()
	}()
	select {
	case err := <-readsDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reads blocked behind a parked commit — read path is not lock-free")
	}

	fops.armed.Store(false)
	release()
	select {
	case out := <-commitDone:
		for _, o := range out {
			if o.Err != nil {
				t.Fatalf("commit: %v", o.Err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit never finished after release")
	}
}

// TestSnapshotEpochAcrossReopen pins the epoch's restart contract: the
// counter is process-local (reseeded to 1 on open, cross-restart ordering
// belongs to the WAL), replayed state is visible through the reseeded
// snapshots, and the epoch is strictly monotone within a process.
func TestSnapshotEpochAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := newSPA(t, dir)
	s1.Register(1, nil)
	s1.Register(2, nil)
	ingestClicks(t, s1, map[uint64][]uint32{1: {10}, 2: {10, 20}})
	if e := s1.SnapshotEpoch(); e < 2 {
		t.Fatalf("epoch %d after writes, want >= 2", e)
	}
	s1.Close()

	s2 := newSPA(t, dir)
	e0 := s2.SnapshotEpoch()
	if e0 < 1 {
		t.Fatalf("epoch %d after reopen, want >= 1", e0)
	}
	// Replayed state must be readable through the reseeded snapshots.
	p, err := s2.Profile(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subjective) != lifelog.DenseLen {
		t.Fatalf("replayed profile lost its subjective block: len %d", len(p.Subjective))
	}
	// CF interaction counts are process-local (derived from the live event
	// stream, not persisted): a reopened core starts cold, not torn.
	if _, err := s2.RecommendActions(1, 1); !errors.Is(err, ErrNoInteractions) {
		t.Fatalf("recommend after reopen: %v, want ErrNoInteractions", err)
	}
	ingestClicks(t, s2, map[uint64][]uint32{1: {11}})
	if e1 := s2.SnapshotEpoch(); e1 <= e0 {
		t.Fatalf("epoch not monotone across a write: %d -> %d", e0, e1)
	}
}

// TestReadStatsCounters pins the read-path gauge hygiene: a fresh core
// starts with zeroed cache counters, a repeated recommendation is a cache
// hit, and an ingest invalidates both the cache and the frozen kNN.
func TestReadStatsCounters(t *testing.T) {
	s := newSPA(t, "")
	rs := s.ReadStats()
	if rs.ReadCacheHits != 0 || rs.ReadCacheMisses != 0 || rs.KNNRebuilds != 0 {
		t.Fatalf("fresh core counters not zero: %+v", rs)
	}
	if rs.SnapshotEpoch != 1 {
		t.Fatalf("fresh epoch %d, want 1", rs.SnapshotEpoch)
	}
	s.Register(1, nil)
	s.Register(2, nil)
	ingestClicks(t, s, map[uint64][]uint32{1: {10}, 2: {10, 20}})

	if _, err := s.RecommendActions(1, 1); err != nil {
		t.Fatal(err)
	}
	rs = s.ReadStats()
	if rs.ReadCacheMisses != 1 || rs.ReadCacheHits != 0 || rs.KNNRebuilds != 1 {
		t.Fatalf("after first read: %+v", rs)
	}
	if _, err := s.RecommendActions(1, 1); err != nil {
		t.Fatal(err)
	}
	rs = s.ReadStats()
	if rs.ReadCacheHits != 1 || rs.ReadCacheMisses != 1 || rs.KNNRebuilds != 1 {
		t.Fatalf("repeat read not a cache hit: %+v", rs)
	}

	ingestClicks(t, s, map[uint64][]uint32{2: {21}})
	if _, err := s.RecommendActions(1, 1); err != nil {
		t.Fatal(err)
	}
	rs = s.ReadStats()
	if rs.ReadCacheMisses != 2 || rs.KNNRebuilds != 2 {
		t.Fatalf("ingest did not invalidate cache and model: %+v", rs)
	}
}

// TestLockedReadsParity: the -locked-reads measurement baseline must be
// behaviorally identical to the snapshot path — same recommendations,
// same ranking, same partial-selection accounting.
func TestLockedReadsParity(t *testing.T) {
	build := func(locked bool) *SPA {
		s, err := New(Options{Clock: clock.NewSimulated(t0), LockedReads: locked})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		for id := uint64(1); id <= 6; id++ {
			if err := s.Register(id, []float64{float64(id % 3), 1}); err != nil {
				t.Fatal(err)
			}
		}
		ingestClicks(t, s, map[uint64][]uint32{1: {10}, 2: {10, 20}, 3: {10, 21}, 4: {40}})
		trainOn(t, s, 1, 2, 3, 4, 5, 6)
		if err := s.Register(99, []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	snap, locked := build(false), build(true)

	rSnap, err := snap.RecommendActions(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rLocked, err := locked.RecommendActions(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rSnap) != fmt.Sprint(rLocked) {
		t.Fatalf("recommendations diverge: %v vs %v", rSnap, rLocked)
	}

	idsSnap, errSnap := snap.SelectTop(10)
	idsLocked, errLocked := locked.SelectTop(10)
	if fmt.Sprint(idsSnap) != fmt.Sprint(idsLocked) {
		t.Fatalf("rankings diverge: %v vs %v", idsSnap, idsLocked)
	}
	var pSnap, pLocked *PartialSelectionError
	if !errors.As(errSnap, &pSnap) || !errors.As(errLocked, &pLocked) || pSnap.Skipped != pLocked.Skipped {
		t.Fatalf("partial accounting diverges: %v vs %v", errSnap, errLocked)
	}
}
