package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/lifelog"
	"repro/internal/store"
	"repro/internal/sum"
)

// ErrBadStream tags ingest failures caused by the submitted events
// themselves (out-of-order per-user timestamps, invalid events) as opposed
// to store failures. The serving layer maps it to the submitter's own 400;
// everything else on an IngestOutcome is the server's fault.
var ErrBadStream = errors.New("core: malformed event stream")

// MultiIngest is the group-commit ingest path: several independently
// submitted event batches (typically concurrent network requests, merged by
// the serving layer's coalescer) are applied as one fan-out over the shards,
// so durable updates of a shard still commit as a single store WriteBatch no
// matter how many submitters contributed events to it. Each input batch gets
// its own IngestOutcome, as if the batches had been ingested separately:
//
//   - Counts are attributed per batch: an event is processed or
//     skipped-as-unknown on behalf of the batch that carried it.
//   - A batch whose events make the merged per-user stream malformed
//     (out-of-order timestamps, invalid events) is excluded and charged the
//     error; the surviving batches are re-validated and applied without it.
//     The feed pass mutates nothing, so exclusion is a pure retry.
//   - A store write failure is charged to every batch that contributed a
//     profile update to the failing shard group, since none of their events
//     in that shard were durably applied.
//
// As with BatchIngest, a batch that fails in one shard group may still have
// been applied in others; Processed counts only what was applied.
func (s *SPA) MultiIngest(batches [][]lifelog.Event) []IngestOutcome {
	out := make([]IngestOutcome, len(batches))
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	if total == 0 {
		return out
	}
	now := s.clk.Now()
	groups := make(map[*shard][]taggedEvent, len(s.shards))
	for b, evs := range batches {
		for _, e := range evs {
			sh := s.shardFor(e.UserID)
			groups[sh] = append(groups[sh], taggedEvent{Event: e, batch: b})
		}
	}
	results := make([]multiResult, 0, len(groups))
	if len(groups) == 1 {
		// Single-shard merges (including every call on a 1-shard core) skip
		// the fan-out machinery entirely.
		for sh, evs := range groups {
			results = append(results, s.ingestShardMulti(sh, evs, len(batches), now))
		}
	} else {
		var wg sync.WaitGroup
		resCh := make(chan multiResult, len(groups))
		for sh, evs := range groups {
			wg.Add(1)
			go func(sh *shard, evs []taggedEvent) {
				defer wg.Done()
				resCh <- s.ingestShardMulti(sh, evs, len(batches), now)
			}(sh, evs)
		}
		wg.Wait()
		close(resCh)
		for r := range resCh {
			results = append(results, r)
		}
	}
	staleKNN := false
	for _, r := range results {
		staleKNN = staleKNN || r.interactions
	}
	if staleKNN {
		s.invalidateRecommender()
	}
	for _, r := range results {
		for b := range out {
			out[b].Processed += r.processed[b]
			out[b].SkippedUnknown += r.skipped[b]
			if out[b].Err == nil && r.errs[b] != nil {
				out[b].Err = r.errs[b]
			}
		}
	}
	return out
}

// IngestOutcome is one batch's result from MultiIngest.
type IngestOutcome struct {
	// Processed counts the batch's events applied to registered profiles.
	Processed int
	// SkippedUnknown counts the batch's events of unregistered users.
	SkippedUnknown int
	// Err is the batch's failure, if any. A failed batch's events were not
	// applied in the shard group that reported the error.
	Err error
}

// taggedEvent carries an event's originating batch index through the shard
// fan-out so counts and errors land on the right submitter.
type taggedEvent struct {
	lifelog.Event
	batch int
}

// multiResult is one shard group's per-batch accounting.
type multiResult struct {
	processed    []int
	skipped      []int
	errs         []error
	interactions bool
}

// ingestShardMulti applies one shard's slice of the merged event stream.
// The feed pass validates before any mutation; when a batch's event breaks
// the merged stream, that batch is excluded (keeping its error) and the pass
// restarts over the survivors — dropping events can never introduce a new
// per-user ordering violation between the remaining ones, so the loop only
// ever shrinks and terminates after at most one retry per batch. The apply
// pass then updates subjective blocks and CF interaction counts and persists
// the shard's profiles as one WriteBatch.
func (s *SPA) ingestShardMulti(sh *shard, events []taggedEvent, nbatches int, now time.Time) multiResult {
	res := multiResult{
		processed: make([]int, nbatches),
		skipped:   make([]int, nbatches),
		errs:      make([]error, nbatches),
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	excluded := make([]bool, nbatches)
	var x *lifelog.Extractor
	for {
		x = lifelog.NewExtractor(30*time.Minute, now)
		failed := -1
		for _, te := range events {
			if excluded[te.batch] {
				continue
			}
			if _, ok := sh.profiles[te.UserID]; !ok {
				res.skipped[te.batch]++
				continue
			}
			if err := x.Feed(te.Event); err != nil {
				failed = te.batch
				res.errs[te.batch] = fmt.Errorf("%w: %w", ErrBadStream, err)
				break
			}
			res.processed[te.batch]++
		}
		if failed < 0 {
			break
		}
		excluded[failed] = true
		for b := range nbatches {
			if !excluded[b] {
				res.processed[b], res.skipped[b] = 0, 0
			}
		}
		res.processed[failed], res.skipped[failed] = 0, 0
	}
	for _, te := range events {
		if excluded[te.batch] {
			continue
		}
		if _, ok := sh.profiles[te.UserID]; ok {
			if sh.noteInteraction(te.Event) {
				res.interactions = true
			}
		}
	}
	var batch store.WriteBatch
	for id, fv := range x.Finish() {
		p := sh.profiles[id]
		p.Subjective = fv.Dense()
		if s.db == nil {
			continue
		}
		if s.unbatched {
			// Compatibility/measurement mode: the seed's one-write-per-
			// profile persistence (see Options.UnbatchedWrites).
			if err := sum.Save(s.db, p); err != nil {
				res.failStore(excluded, err)
				return res
			}
			continue
		}
		if err := p.Validate(); err != nil {
			res.failStore(excluded, err)
			return res
		}
		batch.Put(sum.Key(id), sum.Encode(p))
	}
	if s.db != nil && batch.Len() > 0 {
		if err := s.db.Apply(&batch); err != nil {
			res.failStore(excluded, err)
		}
	}
	return res
}

// failStore charges a persistence failure to every surviving batch that
// contributed applied events to this shard group.
func (r *multiResult) failStore(excluded []bool, err error) {
	for b := range r.errs {
		if !excluded[b] && r.processed[b] > 0 && r.errs[b] == nil {
			r.errs[b] = err
		}
	}
}
