package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/lifelog"
	"repro/internal/store"
	"repro/internal/sum"
)

// ErrBadStream tags ingest failures caused by the submitted events
// themselves (out-of-order per-user timestamps, invalid events) as opposed
// to store failures. The serving layer maps it to the submitter's own 400;
// everything else on an IngestOutcome is the server's fault.
var ErrBadStream = errors.New("core: malformed event stream")

// The group-commit ingest path comes in two shapes built on the same
// machinery:
//
//   - MultiIngest: prepare + commit in one call, each shard group committing
//     independently (its own store WriteBatch, its own failure domain) —
//     the serialized dispatcher's path, and what BatchIngest delegates to.
//   - PrepareMulti / PreparedMulti.Commit: the same work split at the
//     CPU/IO boundary, for the serving layer's pipelined dispatcher.
//     Prepare runs the event validation, sessionization and feature
//     extraction under shard READ locks, mutating nothing; Commit persists
//     every shard's staged updates as one ordered store.ApplyAll sequence
//     (one WAL sync for the whole wave, instead of one per touched shard)
//     and only then installs the staged state in shard memory. The next
//     wave's prepare can run while this wave's commit waits on the disk —
//     fully so when the waves touch disjoint shards; a prepare needing a
//     shard the commit holds write-locked waits at that shard's RLock.
//
// Both shapes stage updates and install them only after the store write
// succeeds: a failed write leaves shard memory exactly as it was, so the
// reported "not applied" outcome is true in memory as well as on disk.

// MultiIngest applies several independently submitted event batches
// (typically concurrent network requests, merged by the serving layer's
// coalescer) as one fan-out over the shards, so durable updates of a shard
// still commit as a single store WriteBatch no matter how many submitters
// contributed events to it. Each input batch gets its own IngestOutcome,
// as if the batches had been ingested separately:
//
//   - Counts are attributed per batch: an event is processed or
//     skipped-as-unknown on behalf of the batch that carried it.
//   - A batch whose events make the merged per-user stream malformed
//     (out-of-order timestamps, invalid events) is excluded and charged the
//     error; the surviving batches are re-validated and applied without it.
//     The prepare pass mutates nothing, so exclusion is a pure retry.
//   - A store write failure is charged to every batch that contributed a
//     profile update to the failing shard group, since none of their events
//     in that shard were durably applied — and, since updates are staged,
//     none of them are visible in shard memory either.
//
// As with BatchIngest, a batch that fails in one shard group may still have
// been applied in others; Processed counts only what was applied.
func (s *SPA) MultiIngest(batches [][]lifelog.Event) []IngestOutcome {
	out := make([]IngestOutcome, len(batches))
	groups, now := s.groupByShard(batches)
	if len(groups) == 0 {
		return out
	}
	results := make([]*preparedGroup, 0, len(groups))
	if len(groups) == 1 {
		// Single-shard merges (including every call on a 1-shard core) skip
		// the fan-out machinery entirely.
		for _, g := range groups {
			sh := s.shards[g.shardIdx]
			sh.mu.Lock()
			s.prepareShardLocked(g, len(batches), now)
			s.commitShardLocked(g)
			sh.mu.Unlock()
			results = append(results, g)
		}
	} else {
		var wg sync.WaitGroup
		for _, g := range groups {
			wg.Add(1)
			go func(g *preparedGroup) {
				defer wg.Done()
				sh := s.shards[g.shardIdx]
				sh.mu.Lock()
				s.prepareShardLocked(g, len(batches), now)
				s.commitShardLocked(g)
				sh.mu.Unlock()
			}(g)
			results = append(results, g)
		}
		wg.Wait()
	}
	s.finishMulti(out, results)
	return out
}

// PrepareMulti runs the CPU-bound half of MultiIngest — validation,
// sessionization, feature extraction, per-batch attribution — without
// mutating anything: shards are only read-locked and the store is not
// touched. The staged result commits later via PreparedMulti.Commit.
func (s *SPA) PrepareMulti(batches [][]lifelog.Event) *PreparedMulti {
	pm := &PreparedMulti{s: s, out: make([]IngestOutcome, len(batches))}
	groups, now := s.groupByShard(batches)
	if len(groups) == 0 {
		return pm
	}
	if len(groups) == 1 {
		for _, g := range groups {
			sh := s.shards[g.shardIdx]
			sh.mu.RLock()
			s.prepareShardLocked(g, len(batches), now)
			sh.mu.RUnlock()
			pm.groups = append(pm.groups, g)
		}
	} else {
		var wg sync.WaitGroup
		for _, g := range groups {
			wg.Add(1)
			go func(g *preparedGroup) {
				defer wg.Done()
				sh := s.shards[g.shardIdx]
				sh.mu.RLock()
				s.prepareShardLocked(g, len(batches), now)
				sh.mu.RUnlock()
			}(g)
			pm.groups = append(pm.groups, g)
		}
		wg.Wait()
	}
	// Deterministic shard order: Commit acquires the write locks in this
	// order, so concurrent Commits can never deadlock against each other.
	sort.Slice(pm.groups, func(i, j int) bool { return pm.groups[i].shardIdx < pm.groups[j].shardIdx })
	return pm
}

// PreparedMulti is the staged, uncommitted result of PrepareMulti: per-batch
// attribution plus every shard's pending profile updates. Nothing is
// visible — in shard memory or in the store — until Commit.
type PreparedMulti struct {
	s         *SPA
	out       []IngestOutcome
	groups    []*preparedGroup // sorted by shard index
	committed bool
	wave      uint64
}

// SetWaveID tags the prepared wave for observability: Commit's store
// sequence carries the tag to the WAL sync (store.ApplyAllTagged), so the
// engine observer can attribute the fsync back to this wave. Call between
// PrepareMulti and Commit; zero (the default) means untagged.
func (pm *PreparedMulti) SetWaveID(id uint64) { pm.wave = id }

// Shards reports how many shards the wave touches.
func (pm *PreparedMulti) Shards() int { return len(pm.groups) }

// Commit persists and installs the staged wave, returning the per-batch
// outcomes (same shape and, on success, byte-identical profile state to a
// MultiIngest of the same batches).
//
// The durable path commits every shard's WriteBatch as one ordered
// store.ApplyAll sequence: one WAL sync for the whole wave, with the
// store guaranteeing the batches reach the log in shard order and that
// crash replay recovers a prefix. All touched shards stay write-locked
// across the sequence, so no other writer's store record can interleave
// with the wave's and memory-vs-durable ordering per user is preserved.
// Unlike MultiIngest's per-shard commits, a store failure here fails the
// whole wave (every contributing batch is charged); staged state is then
// discarded, leaving shard memory untouched.
//
// Callers that overlap several PreparedMulti instances must Commit them in
// prepare order when their batches may share users — the coalescer's
// pipelined dispatcher does (single committer, FIFO waves). Commit must be
// called at most once.
func (pm *PreparedMulti) Commit() []IngestOutcome {
	if pm.committed {
		panic("core: PreparedMulti committed twice")
	}
	pm.committed = true
	s := pm.s
	if len(pm.groups) == 0 {
		return pm.out
	}
	if s.db == nil || s.unbatched {
		// No cross-shard store sequence to order: commit shard by shard,
		// exactly as MultiIngest does.
		for _, g := range pm.groups {
			sh := s.shards[g.shardIdx]
			sh.mu.Lock()
			s.commitShardLocked(g)
			sh.mu.Unlock()
		}
		s.finishMulti(pm.out, pm.groups)
		return pm.out
	}
	for _, g := range pm.groups {
		s.shards[g.shardIdx].mu.Lock()
	}
	seq := make([]*store.WriteBatch, 0, len(pm.groups))
	contributing := make([]*preparedGroup, 0, len(pm.groups))
	for _, g := range pm.groups {
		batch, err := s.buildShardBatchLocked(g)
		if err != nil {
			// A profile that fails validation charges its own shard group
			// and drops it from the wave; the other shards still commit —
			// identical to MultiIngest's handling.
			g.res.failStore(g.excluded, err)
			continue
		}
		if batch.Len() > 0 {
			seq = append(seq, batch)
			contributing = append(contributing, g)
			continue
		}
		// Nothing to persist (all events skipped): install immediately.
		s.installShardLocked(g)
	}
	if err := s.db.ApplyAllTagged(seq, pm.wave); err != nil {
		for _, g := range contributing {
			g.res.failStore(g.excluded, err)
		}
	} else {
		for _, g := range contributing {
			s.installShardLocked(g)
		}
	}
	for i := len(pm.groups) - 1; i >= 0; i-- {
		s.shards[pm.groups[i].shardIdx].mu.Unlock()
	}
	s.finishMulti(pm.out, pm.groups)
	return pm.out
}

// IngestOutcome is one batch's result from MultiIngest.
type IngestOutcome struct {
	// Processed counts the batch's events applied to registered profiles.
	Processed int
	// SkippedUnknown counts the batch's events of unregistered users.
	SkippedUnknown int
	// Err is the batch's failure, if any. A failed batch's events were not
	// applied in the shard group that reported the error.
	Err error
}

// taggedEvent carries an event's originating batch index through the shard
// fan-out so counts and errors land on the right submitter.
type taggedEvent struct {
	lifelog.Event
	batch int
}

// multiResult is one shard group's per-batch accounting.
type multiResult struct {
	processed    []int
	skipped      []int
	errs         []error
	interactions bool
}

// preparedGroup is one shard's slice of a merged wave: the events, and —
// after prepareShardLocked — the staged updates and per-batch accounting.
type preparedGroup struct {
	shardIdx int
	events   []taggedEvent

	res      multiResult
	excluded []bool
	// vectors holds the staged subjective digests (user → dense vector);
	// they replace the profiles' Subjective blocks only at install time.
	vectors map[uint64][]float64
	// interactions are the non-excluded known-user events to fold into the
	// shard's CF counts at install time.
	interactions []taggedEvent
}

// groupByShard tags every event with its batch index and partitions the
// merged stream by owning shard, preserving order.
func (s *SPA) groupByShard(batches [][]lifelog.Event) (map[int]*preparedGroup, time.Time) {
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	if total == 0 {
		return nil, time.Time{}
	}
	groups := make(map[int]*preparedGroup, len(s.shards))
	for b, evs := range batches {
		for _, e := range evs {
			idx := s.shardIndexFor(e.UserID)
			g := groups[idx]
			if g == nil {
				g = &preparedGroup{shardIdx: idx}
				groups[idx] = g
			}
			g.events = append(g.events, taggedEvent{Event: e, batch: b})
		}
	}
	return groups, s.clk.Now()
}

// prepareShardLocked runs the mutation-free half of one shard's ingest: the
// feed pass validates before anything is staged; when a batch's event breaks
// the merged stream, that batch is excluded (keeping its error) and the pass
// restarts over the survivors — dropping events can never introduce a new
// per-user ordering violation between the remaining ones, so the loop only
// ever shrinks and terminates after at most one retry per batch. The caller
// holds the shard's lock (read suffices: only sh.profiles membership is
// consulted).
func (s *SPA) prepareShardLocked(g *preparedGroup, nbatches int, now time.Time) {
	sh := s.shards[g.shardIdx]
	g.res = multiResult{
		processed: make([]int, nbatches),
		skipped:   make([]int, nbatches),
		errs:      make([]error, nbatches),
	}
	g.excluded = make([]bool, nbatches)
	var x *lifelog.Extractor
	for {
		x = lifelog.NewExtractor(30*time.Minute, now)
		failed := -1
		for _, te := range g.events {
			if g.excluded[te.batch] {
				continue
			}
			if _, ok := sh.profiles[te.UserID]; !ok {
				g.res.skipped[te.batch]++
				continue
			}
			if err := x.Feed(te.Event); err != nil {
				failed = te.batch
				g.res.errs[te.batch] = fmt.Errorf("%w: %w", ErrBadStream, err)
				break
			}
			g.res.processed[te.batch]++
		}
		if failed < 0 {
			break
		}
		g.excluded[failed] = true
		for b := range nbatches {
			if !g.excluded[b] {
				g.res.processed[b], g.res.skipped[b] = 0, 0
			}
		}
		g.res.processed[failed], g.res.skipped[failed] = 0, 0
	}
	for _, te := range g.events {
		if g.excluded[te.batch] {
			continue
		}
		if _, ok := sh.profiles[te.UserID]; ok {
			g.interactions = append(g.interactions, te)
		}
	}
	fvs := x.Finish()
	g.vectors = make(map[uint64][]float64, len(fvs))
	for id, fv := range fvs {
		g.vectors[id] = fv.Dense()
	}
}

// commitShardLocked persists and installs one prepared shard group under
// its own store commit (the MultiIngest / serialized-dispatcher path). The
// caller holds the shard's write lock. Updates are staged first and only
// installed once durable: a store failure leaves shard memory untouched, so
// the "not applied" outcome is true everywhere.
func (s *SPA) commitShardLocked(g *preparedGroup) {
	sh := s.shards[g.shardIdx]
	if s.db == nil {
		s.installShardLocked(g)
		return
	}
	if s.unbatched {
		// Compatibility/measurement mode: the seed's one-write-per-profile
		// persistence (see Options.UnbatchedWrites). Each profile installs
		// right after its own save succeeds, so memory never diverges from
		// durable state; on the first failure the rest of the group stays
		// unapplied (and uninstalled). One snapshot publish covers whatever
		// was installed, so readers see the same prefix the live map holds.
		installed := make([]uint64, 0, len(g.vectors))
		for id, vec := range g.vectors {
			p := sh.profiles[id]
			if p == nil {
				continue
			}
			cp := *p
			cp.Subjective = vec
			if err := sum.Save(s.db, &cp); err != nil {
				g.res.failStore(g.excluded, err)
				if len(installed) > 0 {
					s.publishShardLocked(sh, installed, nil)
				}
				return
			}
			p.Subjective = vec
			installed = append(installed, id)
		}
		if s.publishShardLocked(sh, installed, g.interactions) > 0 {
			g.res.interactions = true
		}
		return
	}
	batch, err := s.buildShardBatchLocked(g)
	if err != nil {
		g.res.failStore(g.excluded, err)
		return
	}
	if batch.Len() > 0 {
		if err := s.db.Apply(batch); err != nil {
			g.res.failStore(g.excluded, err)
			return
		}
	}
	s.installShardLocked(g)
}

// buildShardBatchLocked encodes the staged profile states into one store
// WriteBatch without touching the live profiles: each record is the profile
// as it will look after install. The caller holds the shard's write lock,
// which it keeps until after the batch is applied — nothing can move under
// the encoded bytes.
func (s *SPA) buildShardBatchLocked(g *preparedGroup) (*store.WriteBatch, error) {
	sh := s.shards[g.shardIdx]
	var batch store.WriteBatch
	for id, vec := range g.vectors {
		p := sh.profiles[id]
		if p == nil {
			continue
		}
		cp := *p
		cp.Subjective = vec
		if err := cp.Validate(); err != nil {
			return nil, err
		}
		batch.Put(sum.Key(id), sum.Encode(&cp))
	}
	// The wave's interaction events ride the record's annotation: opaque to
	// the store and to replay, but a follower applying this record needs
	// them to rebuild the CF matrix (replicate.go).
	if batch.Len() > 0 && len(g.interactions) > 0 {
		batch.SetAnnotation(encodeWaveAnnotation(g.interactions))
	}
	return &batch, nil
}

// installShardLocked makes the staged updates live in shard memory and
// publishes the shard's next read snapshot — the epoch installation point
// of the commit stage (DESIGN.md §8). The caller holds the shard's write
// lock and has already made the updates durable (or runs non-durably).
func (s *SPA) installShardLocked(g *preparedGroup) {
	sh := s.shards[g.shardIdx]
	changed := make([]uint64, 0, len(g.vectors))
	for id, vec := range g.vectors {
		if p := sh.profiles[id]; p != nil {
			p.Subjective = vec
			changed = append(changed, id)
		}
	}
	if s.publishShardLocked(sh, changed, g.interactions) > 0 {
		g.res.interactions = true
	}
}

// finishMulti folds the shard groups' accounting into the per-batch
// outcomes and invalidates the frozen recommender if any group recorded
// interactions (a lock-free generation bump; the rebuild happens
// single-flight on the next read, from snapshots, with no shard locks).
func (s *SPA) finishMulti(out []IngestOutcome, groups []*preparedGroup) {
	staleKNN := false
	for _, g := range groups {
		staleKNN = staleKNN || g.res.interactions
	}
	if staleKNN {
		s.invalidateRecommender()
	}
	for _, g := range groups {
		for b := range out {
			out[b].Processed += g.res.processed[b]
			out[b].SkippedUnknown += g.res.skipped[b]
			if out[b].Err == nil && g.res.errs[b] != nil {
				out[b].Err = g.res.errs[b]
			}
		}
	}
}

// failStore charges a persistence failure to every surviving batch that
// contributed applied events to this shard group.
func (r *multiResult) failStore(excluded []bool, err error) {
	for b := range r.errs {
		if !excluded[b] && r.processed[b] > 0 && r.errs[b] == nil {
			r.errs[b] = err
		}
	}
}
