package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/keyspace"
	"repro/internal/lifelog"
	"repro/internal/store"
)

// The handoff invariant (ISSUE 10): moving a slot set from a source node to
// a target via slot-filtered snapshot + slot-filtered tail reproduces every
// moved user's profile byte-for-byte on the target, while users outside the
// moving slots never travel. Cross-user state (the CF matrix) is out of
// scope — it rebuilds from the target's own traffic.

// slotsOfUsers collects the keyspace slots of the given users.
func slotsOfUsers(ids []uint64) *keyspace.SlotSet {
	var s keyspace.SlotSet
	for _, id := range ids {
		s.Add(keyspace.Partition(id))
	}
	return &s
}

// shipHandoff runs the target half of a handoff stream in-process: the
// slot snapshot as one local apply, then every remaining source record
// slot-filtered and applied. Returns the source LSN shipped through.
func shipHandoff(t *testing.T, source, target *SPA, slots *keyspace.SlotSet) uint64 {
	t.Helper()
	pairs, snapLSN, err := source.ExportSlotSnapshot(slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) > 0 {
		if err := target.ApplyHandoffWave(nil, pairs); err != nil {
			t.Fatal(err)
		}
	}
	sourceLSN, _ := source.AppliedLSN()
	if snapLSN >= sourceLSN {
		return snapLSN
	}
	tail, err := source.TailLog(snapLSN + 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	shipped := snapLSN
	for shipped < sourceLSN {
		rec, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		shipped = rec.LSN
		ann, entries, err := FilterWaveForSlots(rec.Annotation, rec.Entries, slots)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			continue
		}
		if err := target.ApplyHandoffWave(ann, entries); err != nil {
			t.Fatal(err)
		}
	}
	return shipped
}

func TestSlotHandoffMovesProfilesExactly(t *testing.T) {
	clk := clock.NewSimulated(t0)
	source, err := New(replTestOpts(t.TempDir(), clk, store.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	target, err := New(replTestOpts(t.TempDir(), clk, store.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	users := replUsers(40)
	for _, id := range users {
		if err := source.Register(id, []float64{float64(id), 1}); err != nil {
			t.Fatal(err)
		}
	}
	base := t0.Add(-12 * time.Hour)
	ingestRound := func(round int, ids []uint64) {
		var batch []lifelog.Event
		for i, id := range ids {
			batch = append(batch, lifelog.Event{UserID: id, Time: base.Add(time.Duration(round*1000+i) * time.Second),
				Type: lifelog.EventClick, Action: uint32((int(id)*7 + round) % lifelog.ActionUniverse)})
		}
		ingestWave(t, source, [][]lifelog.Event{batch})
	}
	for round := 0; round < 4; round++ {
		ingestRound(round, users)
	}

	moving := users[:17]
	slots := slotsOfUsers(moving)
	// Staying users whose slots are NOT moving (slot collisions can pull a
	// "staying" user into the moving set; exclude those from the negative
	// assertions).
	var staying []uint64
	for _, id := range users[17:] {
		if !slots.Has(keyspace.Partition(id)) {
			staying = append(staying, id)
		}
	}
	if len(staying) == 0 {
		t.Fatal("test ids collide entirely; pick different ids")
	}

	// Snapshot, then more source traffic before the tail catches up — the
	// wave filter path must carry the delta.
	shipped := shipHandoff(t, source, target, slots)
	ingestRound(4, users)
	shipHandoff(t, source, target, slots)
	if lsn, _ := source.AppliedLSN(); shipped >= lsn {
		t.Fatal("second round shipped nothing; delta path untested")
	}

	for _, id := range moving {
		sp, err := source.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := target.Profile(id)
		if err != nil {
			t.Fatalf("moved user %d missing on target: %v", id, err)
		}
		if !reflect.DeepEqual(sp, tp) {
			t.Fatalf("user %d: profiles diverge:\nsource %+v\ntarget %+v", id, sp, tp)
		}
		ss, err := source.Sensibilities(id)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := target.Sensibilities(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ss, ts) {
			t.Fatalf("user %d: sensibilities diverge", id)
		}
	}
	for _, id := range staying {
		if _, err := target.Profile(id); err == nil {
			t.Fatalf("user %d outside the moving slots leaked to the target", id)
		}
	}

	// Source-side cleanup: dropped users leave memory, stayers are intact.
	before := source.Users()
	dropped := source.DropSlotUsers(slots)
	if dropped == 0 {
		t.Fatal("DropSlotUsers removed nothing")
	}
	if got := source.Users(); got != before-dropped {
		t.Fatalf("user count %d after dropping %d from %d", got, dropped, before)
	}
	for _, id := range moving {
		if _, err := source.Profile(id); err == nil {
			t.Fatalf("moved user %d still readable on source after drop", id)
		}
	}
	for _, id := range staying {
		if _, err := source.Profile(id); err != nil {
			t.Fatalf("staying user %d lost in drop: %v", id, err)
		}
	}
}

func TestFilterWaveForSlots(t *testing.T) {
	clk := clock.NewSimulated(t0)
	s, err := New(replTestOpts(t.TempDir(), clk, store.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := []uint64{1, 2, 3, 4}
	for _, id := range ids {
		if err := s.Register(id, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	var batch []lifelog.Event
	for _, id := range ids {
		batch = append(batch, lifelog.Event{UserID: id, Time: t0, Type: lifelog.EventClick, Action: uint32(id)})
	}
	ingestWave(t, s, [][]lifelog.Event{batch})

	// The multi-shard commit path writes one record per shard group, so
	// scan the whole log: the filter must keep exactly the in-slot user's
	// data across all records.
	lastLSN, _ := s.AppliedLSN()
	tail, err := s.TailLog(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()

	slots := slotsOfUsers(ids[:1])
	totalEntries, totalEvents := 0, 0
	for lsn := uint64(1); lsn <= lastLSN; {
		rec, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		lsn = rec.LSN + 1
		ann, entries, err := FilterWaveForSlots(rec.Annotation, rec.Entries, slots)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			id, ok := sumKeyUser(e.Key)
			if !ok || !slots.Has(keyspace.Partition(id)) {
				t.Fatalf("filtered entries leaked key %q", e.Key)
			}
		}
		events, err := decodeWaveAnnotation(ann)
		if err != nil {
			t.Fatal(err)
		}
		for _, te := range events {
			if !slots.Has(keyspace.Partition(te.UserID)) {
				t.Fatalf("filtered annotation leaked user %d", te.UserID)
			}
		}
		if len(events) > 0 && len(entries) == 0 {
			t.Fatal("annotation survived with no entries")
		}
		totalEntries += len(entries)
		totalEvents += len(events)
	}
	if totalEntries == 0 || totalEvents == 0 {
		t.Fatalf("filter dropped the in-slot user: %d entries, %d events", totalEntries, totalEvents)
	}
}
