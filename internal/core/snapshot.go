package core

import (
	"fmt"

	"repro/internal/lifelog"
	"repro/internal/sum"
)

// Epoch-based immutable read snapshots (DESIGN.md §8). Every write path —
// Register, SubmitAnswer, Reward, Punish, and both ingest commit shapes —
// publishes a fresh copy-on-write snapshot of its shard while holding the
// shard's write lock; every read path loads the current snapshot through an
// atomic pointer and never touches sh.mu. A snapshot is immutable after
// publish: changed profiles are shallow-cloned (the SUM read methods are
// pure, writers mutate only the value-copied Emotional array and replace
// the Subjective slice wholesale, so a struct copy freezes the state), and
// interaction rows are cloned before the wave's deltas are folded in.
//
// The global epoch counts publishes. It is process-local: reopening a store
// replays the durable profiles into a fresh epoch-1 snapshot, and cross-
// restart ordering belongs to the WAL sequence, not the epoch. Within a
// process the epoch is strictly monotone, so "did anything change since I
// looked" is one atomic load.

// shardSnap is one shard's immutable read snapshot: the profile map and the
// accumulated CF interaction counts, both frozen at publish time.
type shardSnap struct {
	profiles map[uint64]*sum.Profile
	// interactions is the cumulative user → action → weight matrix the
	// recommender freezes into a kNN model. Owned by the snapshot chain:
	// there is no mutable copy anywhere, a publish clones only the rows the
	// wave touched.
	interactions map[uint64]map[uint32]float64
}

// publishShardLocked installs a new immutable snapshot for sh, re-cloning
// the changed profiles from live shard memory and folding the given
// interaction events into copy-on-write rows. The caller holds sh.mu for
// writing. Returns how many interaction events were recorded (zero-weight
// and out-of-universe events don't count), so ingest can invalidate the
// recommender once per wave.
func (s *SPA) publishShardLocked(sh *shard, changed []uint64, events []taggedEvent) int {
	prev := sh.snap.Load()
	next := &shardSnap{
		profiles:     make(map[uint64]*sum.Profile, len(prev.profiles)+len(changed)),
		interactions: prev.interactions,
	}
	for id, p := range prev.profiles {
		next.profiles[id] = p
	}
	for _, id := range changed {
		if p := sh.profiles[id]; p != nil {
			cp := *p
			next.profiles[id] = &cp
		} else {
			// The id left live memory since the last publish (a replicated
			// tombstone): drop it from the read snapshot too.
			delete(next.profiles, id)
		}
	}
	recorded := 0
	if len(events) > 0 {
		inter := make(map[uint64]map[uint32]float64, len(prev.interactions)+1)
		for u, row := range prev.interactions {
			inter[u] = row
		}
		cloned := make(map[uint64]bool, 4)
		for _, te := range events {
			w := interactionWeight(te.Type)
			if w == 0 || int(te.Action) >= lifelog.ActionUniverse {
				continue
			}
			row := inter[te.UserID]
			if !cloned[te.UserID] {
				nrow := make(map[uint32]float64, len(row)+1)
				for a, v := range row {
					nrow[a] = v
				}
				inter[te.UserID] = nrow
				row = nrow
				cloned[te.UserID] = true
			}
			row[te.Action] += w
			recorded++
		}
		next.interactions = inter
	}
	sh.snap.Store(next)
	// The per-shard recommend cache keys its validity to the snapshot
	// pointer, so dropping it here is an optimization (free the entries),
	// not a correctness requirement.
	sh.cache.Store(&recCache{})
	s.epoch.Add(1)
	return recorded
}

// seedSnapshots builds every shard's initial snapshot from the profiles New
// just loaded (or none) and establishes epoch 1. Called before the SPA is
// visible to any other goroutine.
func (s *SPA) seedSnapshots() {
	for _, sh := range s.shards {
		profiles := make(map[uint64]*sum.Profile, len(sh.profiles))
		for id, p := range sh.profiles {
			cp := *p
			profiles[id] = &cp
		}
		sh.snap.Store(&shardSnap{profiles: profiles})
	}
	s.epoch.Store(1)
}

// viewProfile returns a stable profile for reading. In snapshot mode (the
// default) it is a lock-free load: the returned profile is frozen, safe to
// read concurrently with any writer. With Options.LockedReads it reproduces
// the pre-snapshot read path — shard read lock, copy out — so benchmarks
// can measure what the snapshot buys.
func (s *SPA) viewProfile(userID uint64) (*sum.Profile, error) {
	sh := s.shardFor(userID)
	if s.lockedReads {
		sh.mu.RLock()
		p, ok := sh.profiles[userID]
		var cp sum.Profile
		if ok {
			cp = *p
		}
		sh.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
		}
		return &cp, nil
	}
	p, ok := sh.snap.Load().profiles[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	return p, nil
}

// SnapshotEpoch reports the current read-snapshot epoch: 1 after New
// (including a reopen's replay), +1 per shard publish. Monotone within the
// process; see the package comment in this file for the restart contract.
func (s *SPA) SnapshotEpoch() uint64 {
	return s.epoch.Load()
}

// ReadStats snapshots the read-path counters for /metrics.
type ReadStats struct {
	// SnapshotEpoch is SnapshotEpoch().
	SnapshotEpoch uint64
	// ReadCacheHits / ReadCacheMisses count per-shard recommend-cache
	// outcomes. Process-local, reset to zero on restart.
	ReadCacheHits   uint64
	ReadCacheMisses uint64
	// KNNRebuilds counts single-flight kNN model builds — with healthy
	// caching this grows with invalidation epochs, not with read traffic.
	KNNRebuilds uint64
}

// ReadStats reports the read-path counters.
func (s *SPA) ReadStats() ReadStats {
	return ReadStats{
		SnapshotEpoch:   s.epoch.Load(),
		ReadCacheHits:   s.readCacheHits.Load(),
		ReadCacheMisses: s.readCacheMisses.Load(),
		KNNRebuilds:     s.knnRebuilds.Load(),
	}
}
