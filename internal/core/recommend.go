package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cf"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/sum"
)

// The recommendation function (§5.4 #1): "to send in an individualized
// manner the action with most probabilities of execution by the user."
// Collaborative filtering over the 984-action universe produces the base
// ranking; the SUM's advice-stage vector then re-weights actions whose
// emotional tags resonate with (or repel) the user — the paper's
// "activation or inhibition of excitatory attributes from each domain"
// applied to the action catalogue.
//
// Interaction counts accumulate per shard (under the shard's lock, on the
// ingest path); the frozen kNN model is global, guarded by recMu, and is
// invalidated whenever any shard notes a new interaction.

// ErrNoInteractions is returned by RecommendActions before any interaction
// has been ingested — there is nothing for collaborative filtering to rank
// yet. Distinguishable from infrastructure failures so callers (the
// serving layer maps it to 409) can tell "retry after ingest" from "the
// server is broken".
var ErrNoInteractions = errors.New("core: no interactions ingested yet")

// ActionTagger maps an action ordinal to the emotional attributes its
// content exercises (e.g. a fast-paced bootcamp page → stimulated,
// impatient). A nil tagger disables emotional re-weighting.
type ActionTagger func(action uint32) []emotion.Attribute

// SetActionTagger installs the tagger used by RecommendActions.
func (s *SPA) SetActionTagger(t ActionTagger) {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	s.tagger = t
}

// invalidateRecommender drops the frozen kNN model; the next
// RecommendActions call rebuilds it from the shards' interaction counts.
func (s *SPA) invalidateRecommender() {
	s.recMu.Lock()
	s.knn = nil
	s.recMu.Unlock()
}

// interactionWeight grades event types for the CF matrix: transactions are
// stronger preference evidence than clicks.
func interactionWeight(t lifelog.EventType) float64 {
	switch t {
	case lifelog.EventEnroll:
		return 3
	case lifelog.EventInfoRequest:
		return 2
	case lifelog.EventClick:
		return 1
	case lifelog.EventPageView:
		return 0.5
	default:
		return 0
	}
}

// noteInteraction accumulates a raw event into the shard's pending
// interaction counts (called with the shard's write lock held). It reports
// whether it recorded anything, so the caller can invalidate the frozen
// model once per batch instead of once per event.
func (sh *shard) noteInteraction(e lifelog.Event) bool {
	w := interactionWeight(e.Type)
	if w == 0 || int(e.Action) >= lifelog.ActionUniverse {
		return false
	}
	if sh.pending == nil {
		sh.pending = make(map[uint64]map[uint32]float64)
	}
	row := sh.pending[e.UserID]
	if row == nil {
		row = make(map[uint32]float64)
		sh.pending[e.UserID] = row
	}
	row[e.Action] += w
	return true
}

// buildKNN freezes the accumulated interactions of every shard into a kNN
// model. Called with recMu held; takes each shard's read lock in turn.
func (s *SPA) buildKNN() (*cf.KNN, error) {
	m := cf.NewInteractions(lifelog.ActionUniverse)
	rows := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		for user, row := range sh.pending {
			rows++
			for action, w := range row {
				if err := m.Add(user, action, w); err != nil {
					sh.mu.RUnlock()
					return nil, err
				}
			}
		}
		sh.mu.RUnlock()
	}
	if rows == 0 {
		return nil, ErrNoInteractions
	}
	m.Freeze()
	return cf.NewKNN(m, 25)
}

// RecommendActions returns the top-n actions for the user: the CF ranking
// re-weighted by the user's advice vector over the tagged attributes.
// Positive excitation boosts resonant actions; negative excitation
// (aversion) inhibits them.
func (s *SPA) RecommendActions(userID uint64, n int) ([]cf.Recommendation, error) {
	if n < 1 {
		return nil, errors.New("core: n must be >= 1")
	}
	// Identity before model state: an unknown user is ErrNoProfile even on
	// a cold system where the kNN build would fail with ErrNoInteractions —
	// callers (and the serving layer's 404-vs-409 mapping) must not see a
	// registration question answered with a model answer. The shard lock is
	// released before recMu so the buildKNN lock order (recMu → shard
	// RLocks) is never nested in reverse.
	sh := s.shardFor(userID)
	sh.mu.RLock()
	p, ok := sh.profiles[userID]
	var adv sum.Advice
	if ok {
		adv = s.model.Advise(p, "training")
	}
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}

	s.recMu.Lock()
	if s.knn == nil {
		knn, err := s.buildKNN()
		if err != nil {
			s.recMu.Unlock()
			return nil, err
		}
		s.knn = knn
	}
	knn := s.knn
	tagger := s.tagger
	s.recMu.Unlock()

	// Over-fetch so emotional re-ranking has candidates to promote.
	fetch := n * 3
	if fetch < 10 {
		fetch = 10
	}
	recs, err := knn.RecommendTopN(userID, fetch)
	if err != nil {
		return nil, err
	}
	if tagger != nil {
		for i := range recs {
			boost := 0.0
			for _, attr := range tagger(recs[i].Action) {
				if int(attr) >= 0 && int(attr) < emotion.NumAttributes {
					boost += adv.Excitation[attr]
				}
			}
			// 1 + boost keeps inhibition meaningful (boost can be negative)
			// without flipping score signs for mild aversions.
			factor := 1 + 0.8*boost
			if factor < 0.1 {
				factor = 0.1
			}
			recs[i].Score *= factor
		}
		sortRecs(recs)
	}
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs, nil
}

func sortRecs(recs []cf.Recommendation) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Score != recs[j].Score {
			return recs[i].Score > recs[j].Score
		}
		return recs[i].Action < recs[j].Action
	})
}
