package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cf"
	"repro/internal/emotion"
	"repro/internal/lifelog"
)

// The recommendation function (§5.4 #1): "to send in an individualized
// manner the action with most probabilities of execution by the user."
// Collaborative filtering over the 984-action universe produces the base
// ranking; the SUM's advice-stage vector then re-weights actions whose
// emotional tags resonate with (or repel) the user — the paper's
// "activation or inhibition of excitatory attributes from each domain"
// applied to the action catalogue.

// ActionTagger maps an action ordinal to the emotional attributes its
// content exercises (e.g. a fast-paced bootcamp page → stimulated,
// impatient). A nil tagger disables emotional re-weighting.
type ActionTagger func(action uint32) []emotion.Attribute

// SetActionTagger installs the tagger used by RecommendActions.
func (s *SPA) SetActionTagger(t ActionTagger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tagger = t
}

// interactionWeight grades event types for the CF matrix: transactions are
// stronger preference evidence than clicks.
func interactionWeight(t lifelog.EventType) float64 {
	switch t {
	case lifelog.EventEnroll:
		return 3
	case lifelog.EventInfoRequest:
		return 2
	case lifelog.EventClick:
		return 1
	case lifelog.EventPageView:
		return 0.5
	default:
		return 0
	}
}

// noteInteraction accumulates a raw event into the pending interaction
// counts (called from IngestEvents with the write lock held).
func (s *SPA) noteInteraction(e lifelog.Event) {
	w := interactionWeight(e.Type)
	if w == 0 || int(e.Action) >= lifelog.ActionUniverse {
		return
	}
	if s.pendingInteractions == nil {
		s.pendingInteractions = make(map[uint64]map[uint32]float64)
	}
	row := s.pendingInteractions[e.UserID]
	if row == nil {
		row = make(map[uint32]float64)
		s.pendingInteractions[e.UserID] = row
	}
	row[e.Action] += w
	s.knn = nil // invalidate the frozen model
}

// buildKNNLocked freezes the accumulated interactions into a kNN model.
func (s *SPA) buildKNNLocked() error {
	if len(s.pendingInteractions) == 0 {
		return errors.New("core: no interactions ingested yet")
	}
	m := cf.NewInteractions(lifelog.ActionUniverse)
	for user, row := range s.pendingInteractions {
		for action, w := range row {
			if err := m.Add(user, action, w); err != nil {
				return err
			}
		}
	}
	m.Freeze()
	knn, err := cf.NewKNN(m, 25)
	if err != nil {
		return err
	}
	s.knn = knn
	return nil
}

// RecommendActions returns the top-n actions for the user: the CF ranking
// re-weighted by the user's advice vector over the tagged attributes.
// Positive excitation boosts resonant actions; negative excitation
// (aversion) inhibits them.
func (s *SPA) RecommendActions(userID uint64, n int) ([]cf.Recommendation, error) {
	if n < 1 {
		return nil, errors.New("core: n must be >= 1")
	}
	s.mu.Lock()
	if s.knn == nil {
		if err := s.buildKNNLocked(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	knn := s.knn
	p, ok := s.profiles[userID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	adv := s.model.Advise(p, "training")
	tagger := s.tagger
	s.mu.Unlock()

	// Over-fetch so emotional re-ranking has candidates to promote.
	fetch := n * 3
	if fetch < 10 {
		fetch = 10
	}
	recs, err := knn.RecommendTopN(userID, fetch)
	if err != nil {
		return nil, err
	}
	if tagger != nil {
		for i := range recs {
			boost := 0.0
			for _, attr := range tagger(recs[i].Action) {
				if int(attr) >= 0 && int(attr) < emotion.NumAttributes {
					boost += adv.Excitation[attr]
				}
			}
			// 1 + boost keeps inhibition meaningful (boost can be negative)
			// without flipping score signs for mild aversions.
			factor := 1 + 0.8*boost
			if factor < 0.1 {
				factor = 0.1
			}
			recs[i].Score *= factor
		}
		sortRecs(recs)
	}
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs, nil
}

func sortRecs(recs []cf.Recommendation) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Score != recs[j].Score {
			return recs[i].Score > recs[j].Score
		}
		return recs[i].Action < recs[j].Action
	})
}
