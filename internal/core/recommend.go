package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cf"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/sum"
)

// The recommendation function (§5.4 #1): "to send in an individualized
// manner the action with most probabilities of execution by the user."
// Collaborative filtering over the 984-action universe produces the base
// ranking; the SUM's advice-stage vector then re-weights actions whose
// emotional tags resonate with (or repel) the user — the paper's
// "activation or inhibition of excitatory attributes from each domain"
// applied to the action catalogue.
//
// Interaction counts live in the shard snapshots (snapshot.go): the ingest
// publish folds each wave's events into copy-on-write rows, so the kNN
// build iterates frozen state without a single lock. The frozen model
// itself is rebuilt single-flight per invalidation generation: the first
// reader to observe a stale model rebuilds it under recBuildMu while
// concurrent readers keep serving the previous model (bounded staleness —
// at most the waves ingested since that build), so an ingest can never
// stampede the read path into N parallel rebuilds. On top of the model, a
// small per-shard cache remembers finished rankings; it is keyed to the
// exact (snapshot, model) pair, so any write to the shard or model rebuild
// invalidates it wholesale.

// ErrNoInteractions is returned by RecommendActions before any interaction
// has been ingested — there is nothing for collaborative filtering to rank
// yet. Distinguishable from infrastructure failures so callers (the
// serving layer maps it to 409) can tell "retry after ingest" from "the
// server is broken".
var ErrNoInteractions = errors.New("core: no interactions ingested yet")

// ActionTagger maps an action ordinal to the emotional attributes its
// content exercises (e.g. a fast-paced bootcamp page → stimulated,
// impatient). A nil tagger disables emotional re-weighting.
type ActionTagger func(action uint32) []emotion.Attribute

// SetActionTagger installs the tagger used by RecommendActions. Cached
// rankings were computed with the previous tagger, so every shard's
// recommend cache is dropped.
func (s *SPA) SetActionTagger(t ActionTagger) {
	if t == nil {
		s.tagger.Store(nil)
	} else {
		s.tagger.Store(&t)
	}
	for _, sh := range s.shards {
		sh.cache.Store(&recCache{})
	}
}

// actionTagger loads the installed tagger (nil when none).
func (s *SPA) actionTagger() ActionTagger {
	if p := s.tagger.Load(); p != nil {
		return *p
	}
	return nil
}

// invalidateRecommender marks the frozen kNN model stale; the next
// RecommendActions call rebuilds it (single-flight) from the shard
// snapshots' interaction counts.
func (s *SPA) invalidateRecommender() {
	s.recGen.Add(1)
}

// interactionWeight grades event types for the CF matrix: transactions are
// stronger preference evidence than clicks.
func interactionWeight(t lifelog.EventType) float64 {
	switch t {
	case lifelog.EventEnroll:
		return 3
	case lifelog.EventInfoRequest:
		return 2
	case lifelog.EventClick:
		return 1
	case lifelog.EventPageView:
		return 0.5
	default:
		return 0
	}
}

// recState is one frozen kNN model tagged with the invalidation generation
// it was built at.
type recState struct {
	knn *cf.KNN
	gen uint64
}

// recCache is one shard's recommend cache: finished rankings valid only
// for the exact snapshot and model identity they were computed under. The
// maps are immutable after publish; inserts CAS a rebuilt cache in and
// simply give up on contention (the cache is best-effort).
type recCache struct {
	snap    *shardSnap
	knn     *cf.KNN
	entries map[uint64]recEntry
}

// recEntry is one cached ranking, keyed by the n it was computed for.
type recEntry struct {
	n    int
	recs []cf.Recommendation
}

// recCacheCap bounds one shard's cache; a full cache restarts from the
// inserted entry (generational eviction — cheap, and ingest clears it
// anyway).
const recCacheCap = 128

// cacheInsert publishes a ranking into the shard cache, keyed to the
// snapshot and model it was computed from. Lock-free: lost CAS races and
// stale snapshots just skip the insert.
func (sh *shard) cacheInsert(snap *shardSnap, knn *cf.KNN, userID uint64, n int, recs []cf.Recommendation) {
	cur := sh.cache.Load()
	next := &recCache{snap: snap, knn: knn}
	if cur != nil && cur.snap == snap && cur.knn == knn && len(cur.entries) < recCacheCap {
		next.entries = make(map[uint64]recEntry, len(cur.entries)+1)
		for id, e := range cur.entries {
			next.entries[id] = e
		}
	} else {
		next.entries = make(map[uint64]recEntry, 1)
	}
	next.entries[userID] = recEntry{n: n, recs: append([]cf.Recommendation(nil), recs...)}
	sh.cache.CompareAndSwap(cur, next)
}

// buildKNN freezes the shard snapshots' accumulated interactions into a
// kNN model. Lock-free: snapshots are immutable, so no shard lock is taken
// and no lock order exists between the model build and the write path.
func (s *SPA) buildKNN(lockShards bool) (*cf.KNN, error) {
	m := cf.NewInteractions(lifelog.ActionUniverse)
	rows := 0
	for _, sh := range s.shards {
		if lockShards {
			sh.mu.RLock()
		}
		snap := sh.snap.Load()
		for user, row := range snap.interactions {
			rows++
			for action, w := range row {
				if err := m.Add(user, action, w); err != nil {
					if lockShards {
						sh.mu.RUnlock()
					}
					return nil, err
				}
			}
		}
		if lockShards {
			sh.mu.RUnlock()
		}
	}
	if rows == 0 {
		return nil, ErrNoInteractions
	}
	m.Freeze()
	return cf.NewKNN(m, 25)
}

// currentKNN returns a model no staler than the newest finished build:
// fresh when this reader wins the rebuild (or nobody is rebuilding),
// otherwise the previous generation's model — bounded staleness, never a
// stampede.
func (s *SPA) currentKNN() (*cf.KNN, error) {
	gen := s.recGen.Load()
	if st := s.rec.Load(); st != nil && st.gen == gen {
		return st.knn, nil
	}
	if s.recBuildMu.TryLock() {
		knn, err := s.rebuildKNNLocked()
		s.recBuildMu.Unlock()
		return knn, err
	}
	// A rebuild is in flight: serve the previous model.
	if st := s.rec.Load(); st != nil {
		return st.knn, nil
	}
	// No model has ever been built; wait for the builder and recheck.
	s.recBuildMu.Lock()
	knn, err := s.rebuildKNNLocked()
	s.recBuildMu.Unlock()
	return knn, err
}

// rebuildKNNLocked builds (or reuses, when a racing builder got there
// first) the model for the current generation. Caller holds recBuildMu.
func (s *SPA) rebuildKNNLocked() (*cf.KNN, error) {
	// Generation before snapshots: a publish landing mid-build makes the
	// result conservatively stale, never wrongly fresh.
	gen := s.recGen.Load()
	if st := s.rec.Load(); st != nil && st.gen == gen {
		return st.knn, nil
	}
	knn, err := s.buildKNN(false)
	if err != nil {
		return nil, err
	}
	s.rec.Store(&recState{knn: knn, gen: gen})
	s.knnRebuilds.Add(1)
	return knn, nil
}

// RecommendActions returns the top-n actions for the user: the CF ranking
// re-weighted by the user's advice vector over the tagged attributes.
// Positive excitation boosts resonant actions; negative excitation
// (aversion) inhibits them.
func (s *SPA) RecommendActions(userID uint64, n int) ([]cf.Recommendation, error) {
	if n < 1 {
		return nil, errors.New("core: n must be >= 1")
	}
	if s.lockedReads {
		return s.recommendActionsLocked(userID, n)
	}
	// Identity before model state: an unknown user is ErrNoProfile even on
	// a cold system where the kNN build would fail with ErrNoInteractions —
	// callers (and the serving layer's 404-vs-409 mapping) must not see a
	// registration question answered with a model answer.
	sh := s.shardFor(userID)
	snap := sh.snap.Load()
	p, ok := snap.profiles[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	knn, err := s.currentKNN()
	if err != nil {
		return nil, err
	}
	if c := sh.cache.Load(); c != nil && c.snap == snap && c.knn == knn {
		if e, hit := c.entries[userID]; hit && e.n == n {
			s.readCacheHits.Add(1)
			return append([]cf.Recommendation(nil), e.recs...), nil
		}
	}
	s.readCacheMisses.Add(1)
	recs, err := s.rankActions(knn, p, userID, n)
	if err != nil {
		return nil, err
	}
	sh.cacheInsert(snap, knn, userID, n, recs)
	return recs, nil
}

// recommendActionsLocked is the pre-snapshot read path (Options.
// LockedReads): profile and advice under the shard read lock, then a
// stampeding rebuild — every reader that finds the model stale rebuilds it
// while holding the build mutex and the shard read locks, exactly the
// contention the snapshot path removes. No cache.
func (s *SPA) recommendActionsLocked(userID uint64, n int) ([]cf.Recommendation, error) {
	sh := s.shardFor(userID)
	sh.mu.RLock()
	p, ok := sh.profiles[userID]
	var cp sum.Profile
	if ok {
		cp = *p
	}
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProfile, userID)
	}
	s.recBuildMu.Lock()
	gen := s.recGen.Load()
	st := s.rec.Load()
	if st == nil || st.gen != gen {
		knn, err := s.buildKNN(true)
		if err != nil {
			s.recBuildMu.Unlock()
			return nil, err
		}
		st = &recState{knn: knn, gen: gen}
		s.rec.Store(st)
		s.knnRebuilds.Add(1)
	}
	knn := st.knn
	s.recBuildMu.Unlock()
	return s.rankActions(knn, &cp, userID, n)
}

// rankActions runs the model query and the emotional re-weighting for one
// frozen profile.
func (s *SPA) rankActions(knn *cf.KNN, p *sum.Profile, userID uint64, n int) ([]cf.Recommendation, error) {
	adv := s.model.Advise(p, "training")
	tagger := s.actionTagger()

	// Over-fetch so emotional re-ranking has candidates to promote.
	fetch := n * 3
	if fetch < 10 {
		fetch = 10
	}
	recs, err := knn.RecommendTopN(userID, fetch)
	if err != nil {
		return nil, err
	}
	if tagger != nil {
		for i := range recs {
			boost := 0.0
			for _, attr := range tagger(recs[i].Action) {
				if int(attr) >= 0 && int(attr) < emotion.NumAttributes {
					boost += adv.Excitation[attr]
				}
			}
			// 1 + boost keeps inhibition meaningful (boost can be negative)
			// without flipping score signs for mild aversions.
			factor := 1 + 0.8*boost
			if factor < 0.1 {
				factor = 0.1
			}
			recs[i].Score *= factor
		}
		sortRecs(recs)
	}
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs, nil
}

func sortRecs(recs []cf.Recommendation) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Score != recs[j].Score {
			return recs[i].Score > recs[j].Score
		}
		return recs[i].Action < recs[j].Action
	})
}
