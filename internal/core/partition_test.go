package core

import (
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/keyspace"
)

// TestShardAssignmentAgreesWithPartition pins the contract cluster routing
// is built on: the server-side shard index is keyspace.Partition masked to
// the shard count, for every shard count the core accepts — so a client
// that knows only Partition and the slot→node topology always names the
// node (and inside it, the shard) that owns a user. If the core's mixer or
// masking ever drifts from keyspace, handoff slot filters would silently
// split users across nodes; this test makes that a loud failure.
func TestShardAssignmentAgreesWithPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, shards := range []int{1, 2, 8, 16, 64, 256} {
		s, err := New(Options{Shards: shards, Clock: clock.NewSimulated(clock.Epoch)})
		if err != nil {
			t.Fatal(err)
		}
		count := len(s.shards)
		if count != shards {
			t.Fatalf("shard count %d normalized to %d", shards, count)
		}
		for i := 0; i < 4096; i++ {
			id := rng.Uint64()
			got := s.shardIndexFor(id)
			if want := keyspace.PartitionN(id, count); got != want {
				t.Fatalf("shards=%d id=%d: shardIndexFor=%d, PartitionN=%d", shards, id, got, want)
			}
			// count ≤ NumSlots here, so the slot determines the shard: the
			// property a slot-filtered handoff stream depends on.
			if want := keyspace.Partition(id) & (count - 1); got != want {
				t.Fatalf("shards=%d id=%d: shardIndexFor=%d, Partition&mask=%d", shards, id, got, want)
			}
		}
		s.Close()
	}
}
