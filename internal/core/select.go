package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/svm"
)

// The selection function (§5.4): rank the whole population by calibrated
// response propensity. Pre-snapshot this was O(users) shard-lock
// round-trips per request (and a modelMu read per user); now a materialized
// propensity index is rebuilt single-flight per (snapshot epoch, model) and
// a request is a bounds-checked slice copy.

// propModel pairs the trained scorer with its feature scaler so readers
// take both with one atomic load and a ranking never mixes generations.
type propModel struct {
	scorer baseline.Scorer
	scaler *svm.Scaler
}

// ErrPartialSelection tags a SelectTop ranking that skipped profiles whose
// feature vectors the model could not score (dimension drift after
// re-registration, a corrupt profile). The ranking that IS returned is
// valid; errors.Is(err, ErrPartialSelection) distinguishes "ranked most of
// the population" from a failed request, and the typed
// *PartialSelectionError carries the skip count.
var ErrPartialSelection = errors.New("core: selection skipped unscorable profiles")

// PartialSelectionError details a partial SelectTop ranking.
type PartialSelectionError struct {
	// Skipped is how many registered profiles could not be scored.
	Skipped int
	// Cause is the first scoring failure encountered.
	Cause error
}

func (e *PartialSelectionError) Error() string {
	return fmt.Sprintf("%v: %d skipped (first cause: %v)", ErrPartialSelection, e.Skipped, e.Cause)
}

func (e *PartialSelectionError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrPartialSelection) match.
func (e *PartialSelectionError) Is(target error) bool { return target == ErrPartialSelection }

// propIndex is one materialized ranking: every scorable user, best first
// (ties by ascending ID), tagged with the snapshot epoch and model identity
// it was computed from.
type propIndex struct {
	epoch   uint64
	model   *propModel
	ids     []uint64
	skipped int
	cause   error
}

// Propensity returns the calibrated probability that the user responds to a
// touch — the selection function's ranking key.
func (s *SPA) Propensity(userID uint64) (float64, error) {
	pm := s.pmodel.Load()
	if pm == nil {
		return 0, ErrNoModel
	}
	p, err := s.viewProfile(userID)
	if err != nil {
		return 0, err
	}
	x := p.FeatureVector(true, true, true)
	if _, err := pm.scaler.Transform(x); err != nil {
		return 0, err
	}
	return pm.scorer.Score(x)
}

// SelectTop ranks all registered users by propensity and returns the top-k
// user IDs — the paper's selection function. Ties break by ascending ID.
// Unscorable profiles are skipped, not fatal: when any were, the ranking is
// returned together with a *PartialSelectionError (match with
// errors.Is(err, ErrPartialSelection)).
func (s *SPA) SelectTop(k int) ([]uint64, error) {
	if k < 1 {
		return nil, errors.New("core: k must be >= 1")
	}
	if s.lockedReads {
		return s.selectTopLocked(k)
	}
	ix, err := s.currentPropIndex()
	if err != nil {
		return nil, err
	}
	if k > len(ix.ids) {
		k = len(ix.ids)
	}
	out := append([]uint64(nil), ix.ids[:k]...)
	if ix.skipped > 0 {
		return out, &PartialSelectionError{Skipped: ix.skipped, Cause: ix.cause}
	}
	return out, nil
}

// currentPropIndex returns a propensity index no staler than the newest
// fully built one: fresh (current epoch and model) when this reader wins or
// nobody is building, otherwise the previous index for the same model —
// bounded staleness instead of a rebuild stampede.
func (s *SPA) currentPropIndex() (*propIndex, error) {
	pm := s.pmodel.Load()
	if pm == nil {
		return nil, ErrNoModel
	}
	epoch := s.epoch.Load()
	if ix := s.prop.Load(); ix != nil && ix.model == pm && ix.epoch == epoch {
		return ix, nil
	}
	if s.propBuildMu.TryLock() {
		ix := s.rebuildPropIndexLocked(pm)
		s.propBuildMu.Unlock()
		return ix, nil
	}
	// A rebuild is in flight: serve the previous ranking for this model.
	if ix := s.prop.Load(); ix != nil && ix.model == pm {
		return ix, nil
	}
	// No index for this model yet; wait for the builder and recheck.
	s.propBuildMu.Lock()
	ix := s.rebuildPropIndexLocked(pm)
	s.propBuildMu.Unlock()
	return ix, nil
}

// rebuildPropIndexLocked builds (or reuses, when a racing builder got
// there first) the index for the current epoch. Caller holds propBuildMu.
func (s *SPA) rebuildPropIndexLocked(pm *propModel) *propIndex {
	// Epoch before reading snapshots: publishes that land mid-build make
	// the result conservatively stale, never wrongly fresh.
	epoch := s.epoch.Load()
	if ix := s.prop.Load(); ix != nil && ix.model == pm && ix.epoch == epoch {
		return ix
	}
	type scored struct {
		id    uint64
		score float64
	}
	all := make([]scored, 0, int(s.users.Load()))
	skipped := 0
	var cause error
	for _, sh := range s.shards {
		snap := sh.snap.Load()
		for id, p := range snap.profiles {
			x := p.FeatureVector(true, true, true)
			if _, err := pm.scaler.Transform(x); err != nil {
				skipped++
				if cause == nil {
					cause = err
				}
				continue
			}
			v, err := pm.scorer.Score(x)
			if err != nil {
				skipped++
				if cause == nil {
					cause = err
				}
				continue
			}
			all = append(all, scored{id, v})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	ids := make([]uint64, len(all))
	for i, sc := range all {
		ids[i] = sc.id
	}
	ix := &propIndex{epoch: epoch, model: pm, ids: ids, skipped: skipped, cause: cause}
	s.prop.Store(ix)
	return ix
}

// selectTopLocked is the pre-snapshot selection path (Options.LockedReads):
// O(shards) read locks to collect the population, then one feature
// materialization per user under its shard's read lock. The scorer pair is
// still taken once per call, not once per user — that fix predates the
// index. Skip-and-count semantics match the snapshot path.
func (s *SPA) selectTopLocked(k int) ([]uint64, error) {
	pm := s.pmodel.Load()
	if pm == nil {
		return nil, ErrNoModel
	}
	var ids []uint64
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.profiles {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	type scored struct {
		id    uint64
		score float64
	}
	all := make([]scored, 0, len(ids))
	skipped := 0
	var cause error
	for _, id := range ids {
		sh := s.shardFor(id)
		sh.mu.RLock()
		p := sh.profiles[id]
		var x []float64
		if p != nil {
			// Materialize under the shard lock: a concurrent ingest may be
			// rewriting the profile's slices.
			x = p.FeatureVector(true, true, true)
		}
		sh.mu.RUnlock()
		if p == nil {
			continue // racing deregistration can't happen today; be safe
		}
		if _, err := pm.scaler.Transform(x); err != nil {
			skipped++
			if cause == nil {
				cause = err
			}
			continue
		}
		v, err := pm.scorer.Score(x)
		if err != nil {
			skipped++
			if cause == nil {
				cause = err
			}
			continue
		}
		all = append(all, scored{id, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	if skipped > 0 {
		return out, &PartialSelectionError{Skipped: skipped, Cause: cause}
	}
	return out, nil
}
