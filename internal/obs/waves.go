package obs

import (
	"sync"
	"time"
)

// WaveTrace is one group commit's life story: the wave ID the coalescer
// minted, how much it carried, and how long each stage took. Durations
// cover the wave's full path — queue wait is the LONGEST wait among the
// merged requests (the tail a client saw, not the average), CommitWait is
// the pipelined handoff stall (prepared, waiting for the previous wave's
// commit to finish), and WALSync is the slice of Commit spent in the
// store's fsync, attributed back through the store observer by wave ID.
// Under the serialized dispatcher Prepare and CommitWait are zero and
// Commit covers the whole MultiIngest call.
type WaveTrace struct {
	ID       uint64
	Start    time.Time // gather began (first request of the wave left the queue)
	Requests int
	Events   int
	Shards   int

	QueueWait  time.Duration // max over the wave's requests
	Gather     time.Duration
	Prepare    time.Duration
	CommitWait time.Duration
	Commit     time.Duration
	WALSync    time.Duration

	// Err reports whether any request in the wave failed (malformed stream
	// or store failure); per-request detail stays with the responses.
	Err bool
}

// Total is the wave's in-server latency from gather start to commit end.
// Queue wait is not included: it overlaps the previous wave's stages.
func (t WaveTrace) Total() time.Duration {
	return t.Gather + t.Prepare + t.CommitWait + t.Commit
}

// WaveRing keeps the last N wave traces for GET /debug/waves. Recording is
// a mutex-guarded slot write — one per wave, not per request, so the lock
// is far off the hot path.
type WaveRing struct {
	mu   sync.Mutex
	buf  []WaveTrace
	next uint64 // total records; next%len(buf) is the slot to write
}

// NewWaveRing allocates a ring of n slots (minimum 1).
func NewWaveRing(n int) *WaveRing {
	if n < 1 {
		n = 1
	}
	return &WaveRing{buf: make([]WaveTrace, n)}
}

// Record stores one trace, evicting the oldest when full.
func (r *WaveRing) Record(t WaveTrace) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = t
	r.next++
	r.mu.Unlock()
}

// Last returns up to n traces, newest first.
func (r *WaveRing) Last(n int) []WaveTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := r.next
	if have > uint64(len(r.buf)) {
		have = uint64(len(r.buf))
	}
	if n < 0 {
		n = 0
	}
	if uint64(n) > have {
		n = int(have)
	}
	out := make([]WaveTrace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.next-1-uint64(i))%uint64(len(r.buf))])
	}
	return out
}
