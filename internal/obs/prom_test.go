package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestWriteParseRoundTrip(t *testing.T) {
	h := new(Histogram)
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(100 * time.Hour) // exercises the overflow → +Inf fold
	s := h.Snapshot()

	fams := []PromFamily{
		{Name: "spa_requests_total", Help: "Total requests.", Type: "counter",
			Samples: []PromSample{{Value: 42}}},
		{Name: "spa_queue_depth", Help: "Pending jobs.", Type: "gauge",
			Samples: []PromSample{{Value: 3}}},
		{Name: "spa_stage_duration_seconds", Help: "Stage latency.", Type: "histogram",
			Hists: []PromHist{
				{Labels: `stage="decode"`, Counts: s.Counts[:], SumNanos: s.SumNanos},
				{Labels: `stage="commit"`, Counts: nil, SumNanos: 0},
			}},
	}
	var b strings.Builder
	if err := WriteProm(&b, fams); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	parsed, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm: %v\nexposition:\n%s", err, text)
	}
	if got := parsed["spa_requests_total"].Samples["spa_requests_total"]; got != 42 {
		t.Fatalf("counter = %g, want 42", got)
	}
	hist := parsed["spa_stage_duration_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hist)
	}
	if got := hist.Samples[`spa_stage_duration_seconds_count{stage="decode"}`]; got != 3 {
		t.Fatalf("_count = %g, want 3", got)
	}
	if got := hist.Samples[`spa_stage_duration_seconds_bucket{le="+Inf",stage="decode"}`]; got != 3 {
		t.Fatalf("+Inf bucket = %g, want 3", got)
	}
	wantSum := float64(s.SumNanos) / 1e9
	if got := hist.Samples[`spa_stage_duration_seconds_sum{stage="decode"}`]; math.Abs(got-wantSum) > wantSum*1e-9 {
		t.Fatalf("_sum = %g, want %g", got, wantSum)
	}
	// The empty label set still exposes a full, zero-valued bucket series.
	if got := hist.Samples[`spa_stage_duration_seconds_count{stage="commit"}`]; got != 0 {
		t.Fatalf("empty hist _count = %g, want 0", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing HELP": `# TYPE x counter
x 1
`,
		"missing TYPE": `# HELP x help
x 1
`,
		"sample before TYPE": `x 1
# HELP x help
# TYPE x counter
`,
		"bad value": `# HELP x help
# TYPE x counter
x notanumber
`,
		"unknown type": `# HELP x help
# TYPE x rainbow
x 1
`,
		"duplicate series": `# HELP x help
# TYPE x counter
x 1
x 2
`,
		"histogram without +Inf": `# HELP h help
# TYPE h histogram
h_bucket{le="0.1"} 1
h_sum 0.05
h_count 1
`,
		"non-cumulative buckets": `# HELP h help
# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="0.2"} 3
h_bucket{le="+Inf"} 5
h_sum 0.5
h_count 5
`,
		"count disagrees with +Inf": `# HELP h help
# TYPE h histogram
h_bucket{le="+Inf"} 5
h_sum 0.5
h_count 4
`,
		"missing _sum": `# HELP h help
# TYPE h histogram
h_bucket{le="+Inf"} 5
h_count 5
`,
	}
	for name, text := range cases {
		if _, err := ParseProm(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted malformed exposition", name)
		}
	}
}

func TestParseAcceptsLabelsAndTimestamps(t *testing.T) {
	text := `# HELP x help text here
# TYPE x counter
x{path="/v1/ingest",method="POST"} 7 1712345678901
`
	fams, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams["x"].Samples[`x{method="POST",path="/v1/ingest"}`]; got != 7 {
		t.Fatalf("labelled sample = %g, want 7", got)
	}
}
