package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) writer. The serving
// layer renders one wire.Metrics snapshot through this, so the Prometheus
// and JSON views of /metrics can never disagree about a counter.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromFamily is one metric family to expose: a counter/gauge with plain
// samples, or a histogram with one bucketed series per label set.
type PromFamily struct {
	Name string
	Help string
	Type string // "counter", "gauge" or "histogram"

	// Samples are the counter/gauge series. Labels is the pre-rendered
	// label body without braces (`stage="decode"`), empty for none; values
	// must already be escaped (the server only uses identifier-safe ones).
	Samples []PromSample

	// Hists are the histogram series, one per label set, all over the
	// shared BoundsNanos buckets. Counts are per-bucket (non-cumulative);
	// trailing buckets may be trimmed. The writer emits the cumulative
	// `_bucket` series, `_sum` (seconds) and `_count`.
	Hists []PromHist
}

// PromSample is one counter/gauge sample.
type PromSample struct {
	Labels string
	Value  float64
}

// PromHist is one histogram series.
type PromHist struct {
	Labels   string
	Counts   []uint64
	SumNanos uint64
}

// WriteProm renders the families in exposition order: HELP, TYPE, then
// every sample of the family.
func WriteProm(w io.Writer, fams []PromFamily) error {
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			writeSample(&b, f.Name, s.Labels, s.Value)
		}
		for _, h := range f.Hists {
			writeHist(&b, f.Name, h)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatPromValue(v))
	b.WriteByte('\n')
}

func writeHist(b *strings.Builder, name string, h PromHist) {
	counts := h.Counts
	if len(counts) > NumBuckets {
		counts = counts[:NumBuckets]
	}
	var cum uint64
	for i, bound := range boundsNanos {
		if i < len(counts) {
			cum += counts[i]
		}
		writeSample2(b, name+"_bucket", h.Labels, `le="`+formatPromValue(float64(bound)/1e9)+`"`, float64(cum))
	}
	// Overflow bucket folds into +Inf.
	if len(counts) == NumBuckets {
		cum += counts[NumBuckets-1]
	}
	writeSample2(b, name+"_bucket", h.Labels, `le="+Inf"`, float64(cum))
	writeSample2(b, name+"_sum", h.Labels, "", float64(h.SumNanos)/1e9)
	writeSample2(b, name+"_count", h.Labels, "", float64(cum))
}

// writeSample2 writes one sample with up to two label bodies joined.
func writeSample2(b *strings.Builder, name, labels, extra string, v float64) {
	joined := labels
	if extra != "" {
		if joined != "" {
			joined += ","
		}
		joined += extra
	}
	writeSample(b, name, joined, v)
}

func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
