package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal validating parser for the text exposition format — just enough
// to make "the endpoint emits parseable Prometheus" a testable claim (the
// golden test in the server package and spabench -check-metrics both run
// scrapes through it). It checks what a real scraper relies on: every
// sample belongs to a family with HELP and TYPE declared first, values
// parse, no series repeats, and histogram series are le-sorted, cumulative
// and +Inf-terminated with consistent _sum/_count.

// ParsedFamily is one family as seen by ParseProm.
type ParsedFamily struct {
	Name    string
	Type    string
	HasHelp bool
	// Samples maps a canonical series key — name plus sorted label pairs,
	// e.g. `spa_stage_duration_seconds_bucket{le="+Inf",stage="decode"}` or
	// a bare name for unlabelled series — to its value.
	Samples map[string]float64
}

// ParseProm reads one exposition and returns its families keyed by family
// name, or an error describing the first malformation.
func ParseProm(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(fams, line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := parseSample(fams, line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if !f.HasHelp {
			return nil, fmt.Errorf("family %s: missing # HELP", f.Name)
		}
		if f.Type == "" {
			return nil, fmt.Errorf("family %s: missing # TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func parseComment(fams map[string]*ParsedFamily, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 4 || fields[3] == "" {
			return fmt.Errorf("HELP without text: %q", line)
		}
		getFamily(fams, fields[2]).HasHelp = true
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE without type: %q", line)
		}
		typ := strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", typ)
		}
		f := getFamily(fams, fields[2])
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", f.Name)
		}
		if f.Type != "" {
			return fmt.Errorf("duplicate TYPE for %s", f.Name)
		}
		f.Type = typ
	}
	return nil
}

func getFamily(fams map[string]*ParsedFamily, name string) *ParsedFamily {
	f := fams[name]
	if f == nil {
		f = &ParsedFamily{Name: name, Samples: make(map[string]float64)}
		fams[name] = f
	}
	return f
}

func parseSample(fams map[string]*ParsedFamily, line string) error {
	name, rest, err := splitMetricName(line)
	if err != nil {
		return err
	}
	var labels []string
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated label set: %q", line)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return fmt.Errorf("malformed sample: %q", line)
	}
	value, err := parsePromValue(fields[0])
	if err != nil {
		return fmt.Errorf("bad value %q: %w", fields[0], err)
	}

	// Resolve the owning family: histogram sub-series belong to their base.
	famName := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := fams[base]; ok && f.Type == "histogram" {
				famName = base
			}
			break
		}
	}
	f, ok := fams[famName]
	if !ok || f.Type == "" {
		return fmt.Errorf("sample %s before its # TYPE", name)
	}
	sort.Strings(labels)
	key := name
	if len(labels) > 0 {
		key += "{" + strings.Join(labels, ",") + "}"
	}
	if _, dup := f.Samples[key]; dup {
		return fmt.Errorf("duplicate series %s", key)
	}
	f.Samples[key] = value
	return nil
}

func splitMetricName(line string) (string, string, error) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9') {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return "", "", fmt.Errorf("malformed metric name in %q", line)
	}
	return line[:i], line[i:], nil
}

// parseLabels splits `k="v",k2="v2"` into canonical `k="v"` pairs.
func parseLabels(s string) ([]string, error) {
	var out []string
	for s != "" {
		eq := strings.Index(s, "=")
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label pair")
		}
		name := s[:eq]
		rest := s[eq+2:]
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for j := 0; j < len(rest); j++ {
			if rest[j] == '\\' {
				j++
				continue
			}
			if rest[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value")
		}
		out = append(out, name+`="`+rest[:end]+`"`)
		s = rest[end+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if s != "" {
			return nil, fmt.Errorf("junk after label value")
		}
	}
	return out, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogram checks every label set of a histogram family for the
// invariants a scraper assumes: le values parse and strictly ascend,
// cumulative counts never decrease, +Inf is present and agrees with
// _count, and _sum exists.
func validateHistogram(f *ParsedFamily) error {
	type series struct {
		le  float64
		cum float64
	}
	groups := make(map[string][]series) // label-set (minus le) → buckets
	sums := make(map[string]bool)
	counts := make(map[string]float64)
	for key, v := range f.Samples {
		name, labels := splitSeriesKey(key)
		switch {
		case name == f.Name+"_bucket":
			le, rest, err := extractLE(labels)
			if err != nil {
				return fmt.Errorf("family %s: %w", f.Name, err)
			}
			groups[rest] = append(groups[rest], series{le: le, cum: v})
		case name == f.Name+"_sum":
			sums[labels] = true
		case name == f.Name+"_count":
			counts[labels] = v
		default:
			return fmt.Errorf("family %s: stray series %s", f.Name, key)
		}
	}
	if len(groups) == 0 {
		return fmt.Errorf("family %s: histogram with no _bucket series", f.Name)
	}
	for labels, buckets := range groups {
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
		last := buckets[len(buckets)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("family %s{%s}: missing le=\"+Inf\" bucket", f.Name, labels)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].le == buckets[i-1].le {
				return fmt.Errorf("family %s{%s}: duplicate le bound", f.Name, labels)
			}
			if buckets[i].cum < buckets[i-1].cum {
				return fmt.Errorf("family %s{%s}: buckets not cumulative at le=%g", f.Name, labels, buckets[i].le)
			}
		}
		cnt, ok := counts[labels]
		if !ok {
			return fmt.Errorf("family %s{%s}: missing _count", f.Name, labels)
		}
		if cnt != last.cum {
			return fmt.Errorf("family %s{%s}: _count %g != +Inf bucket %g", f.Name, labels, cnt, last.cum)
		}
		if !sums[labels] {
			return fmt.Errorf("family %s{%s}: missing _sum", f.Name, labels)
		}
	}
	return nil
}

// splitSeriesKey splits a canonical series key into metric name and the
// sorted label body (no braces).
func splitSeriesKey(key string) (string, string) {
	if i := strings.Index(key, "{"); i >= 0 {
		return key[:i], strings.TrimSuffix(key[i+1:], "}")
	}
	return key, ""
}

// extractLE pulls the le pair out of a sorted label body, returning its
// value and the remaining labels.
func extractLE(labels string) (float64, string, error) {
	var rest []string
	le := ""
	for _, pair := range splitLabelBody(labels) {
		if strings.HasPrefix(pair, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(pair, `le="`), `"`)
			continue
		}
		rest = append(rest, pair)
	}
	if le == "" {
		return 0, "", fmt.Errorf("_bucket series without le label {%s}", labels)
	}
	v, err := parsePromValue(le)
	if err != nil {
		return 0, "", fmt.Errorf("bad le %q: %w", le, err)
	}
	return v, strings.Join(rest, ","), nil
}

// splitLabelBody splits a canonical label body on commas outside quotes.
func splitLabelBody(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
