// Package obs is the observability kernel: lock-free latency histograms,
// the wave-trace ring buffer, and the Prometheus text exposition
// writer/parser. It depends on nothing but the standard library and is
// imported by every layer that measures itself (server, store adapters,
// benches), so the instrumentation vocabulary cannot drift between them.
//
// The histogram is fixed-shape: log-spaced buckets, 4 per octave, starting
// at 64ns. Recording is one atomic add into a bucket plus one into the sum
// — no locks, no allocation — so it is safe on the ingest hot path.
// Quantiles are estimated from the bucket a rank falls into, taking the
// geometric midpoint of the bucket's bounds; with 4 buckets per octave the
// worst-case relative error is 2^(1/8) ≈ ±9%.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// minBoundNanos is the first bucket's upper bound: everything at or
	// under 64ns lands in bucket 0 (well below anything a stage measures).
	minBoundNanos    = 64
	bucketsPerOctave = 4
	numOctaves       = 28
	// NumBuckets counts the finite buckets plus the overflow bucket. The
	// finite range tops out at 64ns·2^27.75 ≈ 14.4s; anything slower —
	// already an outage, not a latency — lands in the overflow bucket.
	NumBuckets = bucketsPerOctave*numOctaves + 1
)

// boundsNanos[i] is the inclusive upper bound of bucket i in nanoseconds;
// the overflow bucket (index NumBuckets-1) has no finite bound.
var boundsNanos [NumBuckets - 1]int64

func init() {
	for i := range boundsNanos {
		boundsNanos[i] = int64(math.Round(minBoundNanos * math.Pow(2, float64(i)/bucketsPerOctave)))
	}
}

// BoundsNanos returns a copy of the shared bucket upper bounds. Every
// histogram in the process uses the same bounds, so one copy in a metrics
// snapshot describes all of them.
func BoundsNanos() []int64 {
	out := make([]int64, len(boundsNanos))
	copy(out, boundsNanos[:])
	return out
}

// bucketIndex maps a duration in nanoseconds to its bucket. Bounds at
// whole-octave indices are exact powers of two (64<<k), so the octave is
// one bit-length computation and the sub-octave position at most a 4-step
// scan — cheap enough for a per-request hot path.
func bucketIndex(n int64) int {
	if n <= minBoundNanos {
		return 0
	}
	// v ∈ (64<<k, 64<<(k+1)] ⇒ bits.Len64(v-1) == 7+k.
	k := bits.Len64(uint64(n-1)) - 7
	if k >= numOctaves {
		return NumBuckets - 1
	}
	for i := bucketsPerOctave*k + 1; i < len(boundsNanos); i++ {
		if n <= boundsNanos[i] {
			return i
		}
	}
	return NumBuckets - 1
}

// Histogram is a lock-free fixed-bucket latency histogram. The zero value
// is NOT ready to use — histograms hold an atomic array and must not be
// copied after first use; allocate with new(Histogram) and share the
// pointer.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // total observed nanoseconds
}

// Observe records one duration. Negative durations (a clock that stepped
// backwards mid-measurement) clamp to zero rather than corrupting a bucket.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.counts[bucketIndex(n)].Add(1)
	h.sum.Add(uint64(n))
}

// Snapshot copies the live counters. Concurrent Observe calls may land
// between the bucket reads, so a snapshot is consistent only to within the
// observations in flight while it was taken — fine for metrics, and why
// counts and sum are read without a lock.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumNanos = h.sum.Load()
	return s
}

// Snapshot is an immutable copy of a histogram's counters, the unit that
// merges, diffs and answers quantile queries.
type Snapshot struct {
	Counts   [NumBuckets]uint64
	SumNanos uint64
}

// Count is the total number of observations in the snapshot.
func (s Snapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean is the average observed duration, zero when empty.
func (s Snapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / n)
}

// Quantile estimates the q-quantile (q in [0,1]) from the buckets.
func (s Snapshot) Quantile(q float64) time.Duration {
	return QuantileFromCounts(s.Counts[:], q)
}

// Sub returns the observations recorded between prev and s — the
// before/after diff a bench section uses to attribute latency to its own
// window. Counters are monotonic, so saturating subtraction only triggers
// if prev postdates s.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var out Snapshot
	for i := range s.Counts {
		if s.Counts[i] > prev.Counts[i] {
			out.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
	}
	if s.SumNanos > prev.SumNanos {
		out.SumNanos = s.SumNanos - prev.SumNanos
	}
	return out
}

// Merge returns the union of two snapshots (shard or replica roll-up).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s
	for i := range o.Counts {
		out.Counts[i] += o.Counts[i]
	}
	out.SumNanos += o.SumNanos
	return out
}

// QuantileFromCounts estimates the q-quantile from per-bucket counts over
// the shared bounds. counts may be shorter than NumBuckets (trailing zero
// buckets trimmed, as the wire form does); longer slices are an error by
// construction and the extra buckets are ignored. Empty counts answer 0.
//
// The estimate is the geometric midpoint of the bucket the rank falls in:
// exact to within the bucket's width (relative error ≤ 2^(1/8) ≈ 9%). The
// overflow bucket answers its lower bound.
func QuantileFromCounts(counts []uint64, q float64) time.Duration {
	if len(counts) > NumBuckets {
		counts = counts[:NumBuckets]
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(boundsNanos) {
			return time.Duration(boundsNanos[len(boundsNanos)-1])
		}
		hi := boundsNanos[i]
		if i == 0 {
			return time.Duration(hi / 2)
		}
		lo := boundsNanos[i-1]
		return time.Duration(math.Round(math.Sqrt(float64(lo) * float64(hi))))
	}
	return time.Duration(boundsNanos[len(boundsNanos)-1])
}
