package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// referenceIndex is the obviously-correct bucket lookup: a binary search
// over the bounds. bucketIndex must agree everywhere.
func referenceIndex(n int64) int {
	i := sort.Search(len(boundsNanos), func(i int) bool { return n <= boundsNanos[i] })
	return i // len(boundsNanos) == overflow == NumBuckets-1
}

func TestBucketIndexMatchesReference(t *testing.T) {
	var cases []int64
	cases = append(cases, 0, 1, 63, 64, 65)
	for _, b := range boundsNanos {
		cases = append(cases, b-1, b, b+1)
	}
	rng := rand.New(rand.NewSource(1))
	for range 10000 {
		cases = append(cases, rng.Int63n(int64(30*time.Second)))
	}
	cases = append(cases, math.MaxInt64)
	for _, n := range cases {
		if got, want := bucketIndex(n), referenceIndex(n); got != want {
			t.Fatalf("bucketIndex(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBoundsMonotonic(t *testing.T) {
	for i := 1; i < len(boundsNanos); i++ {
		if boundsNanos[i] <= boundsNanos[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d then %d", i, boundsNanos[i-1], boundsNanos[i])
		}
	}
	if boundsNanos[0] != minBoundNanos {
		t.Fatalf("first bound = %d, want %d", boundsNanos[0], minBoundNanos)
	}
	// Whole-octave bounds are exact powers of two times the base.
	for k := 0; k < numOctaves; k++ {
		if boundsNanos[bucketsPerOctave*k] != minBoundNanos<<k {
			t.Fatalf("octave bound %d = %d, want %d", k, boundsNanos[bucketsPerOctave*k], minBoundNanos<<k)
		}
	}
}

func TestQuantileWithinBucketError(t *testing.T) {
	h := new(Histogram)
	rng := rand.New(rand.NewSource(7))
	var exact []float64
	for range 20000 {
		// Log-uniform over 100ns..100ms — spans many octaves.
		d := time.Duration(math.Exp(rng.Float64()*math.Log(1e6) + math.Log(100)))
		h.Observe(d)
		exact = append(exact, float64(d))
	}
	sort.Float64s(exact)
	s := h.Snapshot()
	if got, want := s.Count(), uint64(len(exact)); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	// The geometric-midpoint estimate must stay within one bucket's width
	// of the true quantile: a factor of 2^(1/4) each way is generous cover
	// for the ±2^(1/8) nominal bound plus rank discretization.
	slack := math.Pow(2, 0.25)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := exact[int(math.Ceil(q*float64(len(exact))))-1]
		got := float64(s.Quantile(q))
		if got < want/slack || got > want*slack {
			t.Errorf("Quantile(%g) = %g, true %g (ratio %.3f)", q, got, want, got/want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Snapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h := new(Histogram)
	h.Observe(100 * time.Hour) // beyond the finite range
	s := h.Snapshot()
	if got, want := s.Quantile(0.5), time.Duration(boundsNanos[len(boundsNanos)-1]); got != want {
		t.Fatalf("overflow Quantile = %v, want %v", got, want)
	}
	h2 := new(Histogram)
	h2.Observe(-time.Second) // clamped, not corrupted
	if got := h2.Snapshot().Count(); got != 1 {
		t.Fatalf("negative observation Count = %d, want 1", got)
	}
}

func TestSnapshotSubAndMerge(t *testing.T) {
	h := new(Histogram)
	h.Observe(time.Millisecond)
	before := h.Snapshot()
	h.Observe(time.Second)
	h.Observe(2 * time.Second)
	diff := h.Snapshot().Sub(before)
	if got := diff.Count(); got != 2 {
		t.Fatalf("Sub Count = %d, want 2", got)
	}
	if got, lo, hi := diff.Quantile(0.5), 800*time.Millisecond, 1300*time.Millisecond; got < lo || got > hi {
		t.Fatalf("Sub Quantile(0.5) = %v, want ~1s", got)
	}
	merged := before.Merge(diff)
	if got, want := merged.Count(), h.Snapshot().Count(); got != want {
		t.Fatalf("Merge Count = %d, want %d", got, want)
	}
	if merged.SumNanos != h.Snapshot().SumNanos {
		t.Fatalf("Merge Sum = %d, want %d", merged.SumNanos, h.Snapshot().SumNanos)
	}
}

func TestQuantileFromTrimmedCounts(t *testing.T) {
	h := new(Histogram)
	for range 100 {
		h.Observe(time.Microsecond)
	}
	s := h.Snapshot()
	// Trim trailing zeros the way the wire form does.
	last := 0
	for i, c := range s.Counts {
		if c != 0 {
			last = i
		}
	}
	trimmed := s.Counts[:last+1]
	if got, want := QuantileFromCounts(trimmed, 0.5), s.Quantile(0.5); got != want {
		t.Fatalf("trimmed Quantile = %v, full %v", got, want)
	}
}

// TestHistogramConcurrent is the -race exercise: concurrent observers and
// snapshotters, with the final snapshot exactly accounting for every
// observation.
func TestHistogramConcurrent(t *testing.T) {
	h := new(Histogram)
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := range goroutines {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for range perG {
				h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(g))
	}
	// Snapshot while writes are in flight: must not race or corrupt.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range 100 {
			s := h.Snapshot()
			if s.Count() > goroutines*perG {
				t.Error("snapshot overcounts")
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := h.Snapshot().Count(); got != goroutines*perG {
		t.Fatalf("final Count = %d, want %d", got, goroutines*perG)
	}
}

func TestWaveRing(t *testing.T) {
	r := NewWaveRing(4)
	if got := r.Last(10); len(got) != 0 {
		t.Fatalf("empty ring Last = %v", got)
	}
	for i := uint64(1); i <= 6; i++ {
		r.Record(WaveTrace{ID: i})
	}
	got := r.Last(10)
	if len(got) != 4 {
		t.Fatalf("Last returned %d traces, want 4", len(got))
	}
	for i, want := range []uint64{6, 5, 4, 3} {
		if got[i].ID != want {
			t.Fatalf("Last[%d].ID = %d, want %d (newest first)", i, got[i].ID, want)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[0].ID != 6 || got[1].ID != 5 {
		t.Fatalf("Last(2) = %v", got)
	}
}

func TestWaveTraceTotal(t *testing.T) {
	tr := WaveTrace{Gather: 1, Prepare: 2, CommitWait: 3, Commit: 4, QueueWait: 100}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %v, want 10 (queue wait excluded)", got)
	}
}
