package server

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/wire"
)

// writePromMetrics renders one metrics snapshot as Prometheus text
// exposition (version 0.0.4). It consumes the same wire.Metrics value the
// JSON encoder does — the two representations are projections of a single
// snapshot, never separate reads of the live counters.
//
// Naming follows the Prometheus conventions the JSON names predate:
// monotonic counters get _total, durations become seconds, and the stage /
// endpoint histograms fold into two families with a label instead of a
// family per name.
func writePromMetrics(w io.Writer, m wire.Metrics) error {
	bool01 := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	fams := []obs.PromFamily{
		{Name: "spad_uptime_seconds", Help: "Seconds since the server started.", Type: "gauge",
			Samples: []obs.PromSample{{Value: m.UptimeSeconds}}},
		{Name: "spad_users", Help: "Registered Smart User Models.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.Users)}}},
		{Name: "spad_requests_total", Help: "HTTP requests received.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.Requests)}}},
		{Name: "spad_request_errors_total", Help: "HTTP requests answered with an error body.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.RequestErrors)}}},
		{Name: "spad_ingest_requests_total", Help: "Ingest requests received (HTTP and stream frames).", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.IngestRequests)}}},
		{Name: "spad_ingest_binary_total", Help: "Ingest requests that negotiated the binary framing.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.IngestBinary)}}},
		{Name: "spad_ingest_events_total", Help: "Events committed through group commits.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.IngestEvents)}}},
		{Name: "spad_ingest_rejected_total", Help: "Ingest requests rejected by admission control (503).", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.IngestRejected)}}},
		{Name: "spad_ingest_commits_total", Help: "Group commits dispatched.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.IngestCommits)}}},
		{Name: "spad_coalesced_requests_total", Help: "Requests summed over group commits.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.CoalescedRequests)}}},
		{Name: "spad_max_coalesced", Help: "Largest group commit observed.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.MaxCoalesced)}}},
		{Name: "spad_queue_depth", Help: "Pending ingest queue length.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.QueueDepth)}}},
		{Name: "spad_queue_capacity", Help: "Pending ingest queue bound.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.QueueCapacity)}}},
		{Name: "spad_pipeline_depth", Help: "Coalescer waves in flight (pipelined dispatcher, <= 2).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.PipelineDepth)}}},
		{Name: "spad_pipeline_overlap_total", Help: "Waves whose prepare finished while an earlier wave was in flight.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.PipelineOverlap)}}},
		{Name: "spad_stream_conns", Help: "Live ingest stream sessions.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.StreamConns)}}},
		{Name: "spad_stream_frames_total", Help: "Ingest request frames received over streams.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.StreamFrames)}}},
		{Name: "spad_last_wave_id", Help: "Newest coalescer wave ID minted (0 before the first wave).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.LastWaveID)}}},
		{Name: "spad_snapshot_epoch", Help: "Read-snapshot generation (1 after open, +1 per shard publish; process-local).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.SnapshotEpoch)}}},
		{Name: "spad_read_cache_hits_total", Help: "Recommend-cache hits on the lock-free read path.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.ReadCacheHits)}}},
		{Name: "spad_read_cache_misses_total", Help: "Recommend-cache misses on the lock-free read path.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.ReadCacheMisses)}}},
		{Name: "spad_knn_rebuilds_total", Help: "Single-flight CF kNN model rebuilds.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.KNNRebuilds)}}},
		{Name: "spad_durable", Help: "1 when the core runs on a durable store.", Type: "gauge",
			Samples: []obs.PromSample{{Value: bool01(m.Durable)}}},
		{Name: "spad_store_segments", Help: "On-disk segments in the store.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.StoreSegments)}}},
		{Name: "spad_store_segment_bytes", Help: "Total bytes across store segments.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.StoreSegmentBytes)}}},
		{Name: "spad_store_memtable_keys", Help: "Keys resident in the store memtable.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.StoreMemtableKeys)}}},
		{Name: "spad_store_compactions_total", Help: "Completed store compactions.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.StoreCompactions)}}},
		{Name: "spad_wal_sealed_files", Help: "Sealed WAL history files retained for replication.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.WALSealedFiles)}}},
		{Name: "spad_wal_sealed_bytes", Help: "Bytes across sealed WAL history files.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.WALSealedBytes)}}},
		{Name: "spad_wal_discarded_bytes_total", Help: "WAL bytes dropped by corrupt-tail truncation during replay.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.WALDiscardedBytes)}}},
		{Name: "spad_repl_applied_lsn", Help: "Last log position committed locally (leader: committed; follower: applied).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.ReplAppliedLSN)}}},
		{Name: "spad_repl_lag_waves", Help: "Replication lag in waves (leader: worst follower; follower: behind last reported leader position).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.ReplLagWaves)}}},
		{Name: "spad_repl_followers", Help: "Live replication sessions (0 on followers and standalone nodes).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.ReplFollowers)}}},
		{Name: "spad_repl_snapshot_bytes_total", Help: "Snapshot bytes moved for replication (shipped on a leader, restored on a follower).", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.ReplSnapshotBytes)}}},
		{Name: "spad_cluster_epoch", Help: "Topology epoch this node serves under (0 outside cluster mode).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.ClusterEpoch)}}},
		{Name: "spad_cluster_slots_owned", Help: "Keyspace slots this node currently owns (0 outside cluster mode).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(m.ClusterSlotsOwned)}}},
		{Name: "spad_cluster_bounces_total", Help: "Requests bounced 421 to the owning node.", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.ClusterBounces)}}},
		{Name: "spad_slot_moves_total", Help: "Slots moved through handoffs (shipped or acquired).", Type: "counter",
			Samples: []obs.PromSample{{Value: float64(m.SlotMoves)}}},
	}
	if fam, ok := histFamily("spad_stage_duration_seconds",
		"Pipeline stage latency (decode, queue, gather, prepare, commit, wal_sync, compaction, repl_apply).",
		"stage", stageNames, m.Stages); ok {
		fams = append(fams, fam)
	}
	if fam, ok := histFamily("spad_endpoint_duration_seconds",
		"HTTP endpoint latency by handler name.",
		"endpoint", endpointNames, m.Endpoints); ok {
		fams = append(fams, fam)
	}
	return obs.WriteProm(w, fams)
}

// histFamily folds a name→histogram map into one labeled Prometheus
// histogram family, in the fixed name order so scrapes are diffable.
func histFamily(name, help, label string, order []string, hists map[string]wire.Histogram) (obs.PromFamily, bool) {
	fam := obs.PromFamily{Name: name, Help: help, Type: "histogram"}
	for _, n := range order {
		h, ok := hists[n]
		if !ok {
			continue
		}
		fam.Hists = append(fam.Hists, obs.PromHist{
			Labels:   fmt.Sprintf("%s=%q", label, n),
			Counts:   h.Counts,
			SumNanos: h.SumNanos,
		})
	}
	return fam, len(fam.Hists) > 0
}
