package server

// Cluster mode (DESIGN.md §10): several spad nodes split the user
// population by keyspace slot. Each node serves reads AND writes — but only
// for the slots it owns; everything else bounces with 421 + an X-SPA-Owner
// header naming the owner, exactly as a follower bounces writes to its
// leader. The slot → node map is the topology: versioned by a monotonic
// epoch, identical on every node once gossip converges, served on
// /v1/topology for routing clients.
//
// Topology lifecycle:
//
//   - Epoch 1 is deterministic: the sorted node ids round-robin over the
//     256 slots, so every node computes the same initial map from the same
//     -peers flag with no coordination.
//   - Every ownership change (a shard handoff, handoff.go) bumps the epoch
//     exactly once, on the handoff source, and the new map reaches the
//     target in the handoff-commit frame. Before minting, the source
//     adopts the target's current map (syncWith): a multi-owner handoff
//     reaches each source in turn, usually faster than gossip, and a
//     source minting from a map that predates the previous source's flip
//     would collide — two conflicting maps at the same epoch never
//     reconcile, and a later mint from the stale line could gossip
//     already-moved slots back to a node that has dropped their users.
//     Syncing first makes every epoch minted along a handoff chain
//     strictly higher than every flip the target has already absorbed.
//     Everyone else learns new maps by gossip: each node polls its peers'
//     /v1/topology a few times a second and adopts any validated map with
//     a higher epoch than its own.
//   - Each adopted or minted epoch is persisted (topology.json in the data
//     dir), so a restarting node resumes from the last map it served
//     under, not from the epoch-1 default — a node whose slots moved away
//     while it was up must not reclaim them by restarting.
//
// Write fencing: while a handoff is shipping its final waves, writes to
// the moving slots answer 503 + Retry-After (NOT 421 — ownership has not
// flipped yet, and bouncing to the not-yet-owner would ping-pong). The
// fence works in two steps: admitClusterWrite holds the guard read-side
// across the whole write (check + commit), and the handoff takes the
// write side once the fence flag is up, so when the barrier returns every
// admitted write to the moving slots is durably in the log.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/keyspace"
	"repro/internal/lifelog"
	"repro/internal/wire"
)

const (
	// topologyFile is the persisted map's name inside the cluster dir.
	topologyFile = "topology.json"
	// gossipInterval paces the peer topology polls.
	gossipInterval = 2 * time.Second
	// gossipTimeout bounds one peer poll.
	gossipTimeout = 2 * time.Second
)

// cluster is a node's live view of the slot map plus the write fence.
type cluster struct {
	srv    *Server
	nodeID string
	addr   string // this node's advertised host:port
	dir    string // topology persistence dir ("" = in-memory only)

	// guard is the write-drain barrier: every cluster write holds the read
	// side from ownership check through commit; a handoff fence takes the
	// write side to wait out in-flight writers.
	guard sync.RWMutex

	mu     sync.Mutex
	epoch  uint64
	nodes  map[string]string // node id -> advertised addr
	slots  [keyspace.NumSlots]string
	fenced keyspace.SlotSet
	fence  bool

	// handoffMu serializes source-side handoffs: one outbound slot
	// transfer at a time keeps the fence and epoch arithmetic simple.
	handoffMu sync.Mutex

	stop chan struct{}
	done chan struct{}
}

// newCluster builds the node's initial topology: the deterministic epoch-1
// map over the sorted node ids, superseded by a persisted map with a
// higher epoch if one exists in dir.
func newCluster(s *Server, nodeID, addr string, peers map[string]string, dir string) *cluster {
	c := &cluster{
		srv:    s,
		nodeID: nodeID,
		addr:   addr,
		dir:    dir,
		nodes:  map[string]string{nodeID: addr},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for id, a := range peers {
		if id != nodeID {
			c.nodes[id] = a
		}
	}
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	c.epoch = 1
	for i := range c.slots {
		c.slots[i] = ids[i%len(ids)]
	}
	if t, err := c.loadPersisted(); err != nil {
		s.logf("spad: cluster: ignoring persisted topology: %v", err)
	} else if t != nil && t.Epoch > c.epoch {
		c.adoptLocked(*t)
	}
	return c
}

// loadPersisted reads the persisted topology, nil when none exists.
func (c *cluster) loadPersisted() (*wire.Topology, error) {
	if c.dir == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(filepath.Join(c.dir, topologyFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var t wire.Topology
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// persistLocked writes the current map; best effort (a node that cannot
// persist still serves, it just rejoins on the epoch-1 default).
func (c *cluster) persistLocked() {
	if c.dir == "" {
		return
	}
	t := c.topologyLocked()
	raw, err := json.Marshal(t)
	if err == nil {
		path := filepath.Join(c.dir, topologyFile)
		tmp := path + ".tmp"
		if err = os.WriteFile(tmp, raw, 0o644); err == nil {
			err = os.Rename(tmp, path)
		}
	}
	if err != nil {
		c.srv.logf("spad: cluster: persisting topology: %v", err)
	}
}

func (c *cluster) topologyLocked() wire.Topology {
	t := wire.Topology{
		Epoch:  c.epoch,
		NodeID: c.nodeID,
		Nodes:  make(map[string]string, len(c.nodes)),
		Slots:  make([]string, keyspace.NumSlots),
	}
	for id, a := range c.nodes {
		t.Nodes[id] = a
	}
	copy(t.Slots, c.slots[:])
	return t
}

// topology snapshots the current map for /v1/topology and gossip.
func (c *cluster) topology() wire.Topology {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.topologyLocked()
}

// adoptLocked installs a validated map with a higher epoch.
func (c *cluster) adoptLocked(t wire.Topology) {
	c.epoch = t.Epoch
	for id, a := range t.Nodes {
		c.nodes[id] = a
	}
	copy(c.slots[:], t.Slots)
	c.persistLocked()
}

// adopt installs t if it supersedes the current map; reports whether it did.
func (c *cluster) adopt(t wire.Topology) bool {
	if err := t.Validate(); err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Epoch <= c.epoch {
		return false
	}
	c.adoptLocked(t)
	return true
}

// syncWith pulls a peer's current topology and adopts it if newer — the
// cross-node coordination step a handoff source runs against its target
// before minting an epoch (see the lifecycle comment above). Adopting is
// best-effort monotonic (adopt ignores equal or lower epochs); only a
// failure to obtain a valid map at all is an error, because then the
// source cannot rule out that its own map predates a flip the target has
// already absorbed.
func (c *cluster) syncWith(addr string) error {
	client := &http.Client{Timeout: gossipTimeout}
	resp, err := client.Get("http://" + addr + wire.TopologyPath)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer %s answered %d to topology fetch", addr, resp.StatusCode)
	}
	var t wire.Topology
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return err
	}
	if err := t.Validate(); err != nil {
		return err
	}
	c.adopt(t)
	return nil
}

// ensureNode records a node's advertised address (a handoff target may be
// a fresh node the -peers flags never named).
func (c *cluster) ensureNode(id, addr string) {
	if id == "" || addr == "" {
		return
	}
	c.mu.Lock()
	if c.nodes[id] != addr {
		c.nodes[id] = addr
		c.persistLocked()
	}
	c.mu.Unlock()
}

// slotState reports one slot's owner, its address, the epoch, and whether
// the slot is currently write-fenced.
func (c *cluster) slotState(slot int) (owner, addr string, epoch uint64, fenced bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner = c.slots[slot]
	return owner, c.nodes[owner], c.epoch, c.fence && c.fenced.Has(slot)
}

// ownsAll reports whether this node owns every slot in the set; when not,
// the first foreign slot and its owner come back for the error message.
func (c *cluster) ownsAll(slots *keyspace.SlotSet) (bool, int, string, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, slot := range slots.Slots() {
		if owner := c.slots[slot]; owner != c.nodeID {
			return false, slot, owner, c.nodes[owner]
		}
	}
	return true, 0, "", ""
}

// slotsOwned counts the slots this node currently owns.
func (c *cluster) slotsOwned() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, owner := range c.slots {
		if owner == c.nodeID {
			n++
		}
	}
	return n
}

func (c *cluster) epochNow() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// setFence raises or clears the write fence over a slot set. Clearing is
// idempotent.
func (c *cluster) setFence(slots *keyspace.SlotSet, on bool) {
	c.mu.Lock()
	if on {
		c.fenced = *slots
		c.fence = true
	} else {
		c.fenced = keyspace.SlotSet{}
		c.fence = false
	}
	c.mu.Unlock()
}

// flipTo reassigns the slots to the target node at a freshly minted epoch
// and returns it — the source side of a handoff commit.
func (c *cluster) flipTo(slots *keyspace.SlotSet, targetID, targetAddr string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	if targetAddr != "" {
		c.nodes[targetID] = targetAddr
	}
	for _, slot := range slots.Slots() {
		c.slots[slot] = targetID
	}
	c.persistLocked()
	return c.epoch
}

// acquire installs this node as the slots' owner at the given epoch — the
// target side of a handoff commit. The epoch was minted by the source, so
// it is adopted even though the rest of the map is carried over.
func (c *cluster) acquire(slots *keyspace.SlotSet, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		c.epoch = epoch
	}
	for _, slot := range slots.Slots() {
		c.slots[slot] = c.nodeID
	}
	c.persistLocked()
}

// gossipLoop polls peers' topologies and adopts anything newer, so every
// node converges to the highest-epoch map without a coordinator.
func (c *cluster) gossipLoop() {
	defer close(c.done)
	client := &http.Client{Timeout: gossipTimeout}
	tick := time.NewTicker(gossipInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		peers := make([]string, 0, len(c.nodes))
		for id, a := range c.nodes {
			if id != c.nodeID {
				peers = append(peers, a)
			}
		}
		c.mu.Unlock()
		for _, addr := range peers {
			resp, err := client.Get("http://" + addr + wire.TopologyPath)
			if err != nil {
				continue
			}
			var t wire.Topology
			err = json.NewDecoder(resp.Body).Decode(&t)
			resp.Body.Close()
			if err != nil {
				continue
			}
			c.adopt(t)
		}
	}
}

// stopWait stops the gossip loop and waits for it to unwind.
func (c *cluster) stopWait() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// ---- ownership enforcement (server side) ----

// setOwnerHeaders names the owning node on a bounce so the client can
// retry without re-fetching the whole map.
func setOwnerHeaders(w http.ResponseWriter, addr string, epoch uint64) {
	w.Header().Set(wire.OwnerHeader, addr)
	w.Header().Set(wire.EpochHeader, strconv.FormatUint(epoch, 10))
}

// bounceMisowned answers 421 + X-SPA-Owner when another node owns the
// user's slot — the read-path check (no fence: reads stay local until the
// ownership flip). Returns true when the request was answered.
func (s *Server) bounceMisowned(w http.ResponseWriter, userID uint64) bool {
	if s.cluster == nil {
		return false
	}
	slot := keyspace.Partition(userID)
	owner, addr, epoch, _ := s.cluster.slotState(slot)
	if owner == s.cluster.nodeID {
		return false
	}
	s.met.clusterBounces.Add(1)
	setOwnerHeaders(w, addr, epoch)
	s.writeError(w, http.StatusMisdirectedRequest,
		fmt.Errorf("slot %d (user %d) is owned by node %s at %s", slot, userID, owner, addr))
	return true
}

// admitClusterWrite is the write-path check: ownership plus the handoff
// fence, under the cluster write guard. On success it returns a release
// the caller must run once the write has committed (usually via defer) —
// that is what lets a fence barrier conclude every admitted write is in
// the log. On refusal the response has been written and ok is false.
func (s *Server) admitClusterWrite(w http.ResponseWriter, ids ...uint64) (release func(), ok bool) {
	if s.cluster == nil {
		return func() {}, true
	}
	c := s.cluster
	c.guard.RLock()
	for _, id := range ids {
		slot := keyspace.Partition(id)
		owner, addr, epoch, fenced := c.slotState(slot)
		if owner != c.nodeID {
			c.guard.RUnlock()
			s.met.clusterBounces.Add(1)
			setOwnerHeaders(w, addr, epoch)
			s.writeError(w, http.StatusMisdirectedRequest,
				fmt.Errorf("slot %d (user %d) is owned by node %s at %s", slot, id, owner, addr))
			return nil, false
		}
		if fenced {
			c.guard.RUnlock()
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("slot %d (user %d) is being handed off; retry shortly", slot, id))
			return nil, false
		}
	}
	return c.guard.RUnlock, true
}

// admitStreamWrite is admitClusterWrite for the streamed ingest path: on
// refusal it returns the error frame to answer in order (release is nil).
func (s *Server) admitStreamWrite(events []lifelog.Event) (release func(), refuse []byte) {
	if s.cluster == nil {
		return func() {}, nil
	}
	c := s.cluster
	c.guard.RLock()
	for _, e := range events {
		slot := keyspace.Partition(e.UserID)
		owner, addr, _, fenced := c.slotState(slot)
		if owner != c.nodeID {
			c.guard.RUnlock()
			s.met.clusterBounces.Add(1)
			return nil, wire.EncodeStreamError(http.StatusMisdirectedRequest,
				fmt.Sprintf("slot %d (user %d) is owned by node %s at %s", slot, e.UserID, owner, addr))
		}
		if fenced {
			c.guard.RUnlock()
			return nil, wire.EncodeStreamError(http.StatusServiceUnavailable,
				fmt.Sprintf("slot %d (user %d) is being handed off; retry shortly", slot, e.UserID))
		}
	}
	return c.guard.RUnlock, nil
}

// ingestUserIDs collects the distinct user ids of a batch, preserving
// first-appearance order (batches are small; the quadratic scan never
// beats a map's constant factors at these sizes).
func ingestUserIDs(events []lifelog.Event) []uint64 {
	ids := make([]uint64, 0, 8)
outer:
	for _, e := range events {
		for _, id := range ids {
			if id == e.UserID {
				continue outer
			}
		}
		ids = append(ids, e.UserID)
	}
	return ids
}

// handleTopology serves the versioned slot map.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeError(w, http.StatusNotImplemented, errors.New("not a cluster node (spad -cluster)"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.cluster.topology())
}
