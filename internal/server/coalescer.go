package server

import (
	"context"
	"errors"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/obs"
)

// The cross-request ingest coalescer: the server-side analogue of the
// store's WAL group commit. Concurrently arriving ingest requests queue
// here; a single dispatcher merges whatever is pending into one group
// commit, so N requests pay one commit per wave instead of N. No
// artificial delay is needed — while one commit (and its fsync) is in
// flight, the next wave of requests piles up behind it, which is exactly
// the batch the dispatcher grabs next. MaxDelay adds an optional linger
// for workloads that prefer bigger batches over latency.
//
// The dispatcher runs in one of two shapes:
//
//   - Serialized (default): one goroutine loops gather → MultiIngest →
//     fan-back. Every fsync leaves the CPU idle and every extract pass
//     leaves the disk idle.
//   - Pipelined (Options.Pipeline): two stages. Stage 1 gathers a wave and
//     runs the CPU-bound prepare (validation, sessionization, extraction,
//     per-batch attribution) via core.PrepareMulti; stage 2 — a single
//     committer goroutine — persists the prepared wave (one ordered
//     store.ApplyAll, one WAL sync for the whole wave, which is the bulk
//     of the measured win) and fans the outcomes back. Stage 1 of wave
//     N+1 runs concurrently with stage 2 of wave N; genuine CPU/disk
//     overlap materializes when the waves touch disjoint shards — a
//     prepare that needs a shard the commit holds write-locked waits at
//     that shard's RLock (the price of keeping encode+WAL-order atomic
//     against other writers), which pipeline_overlap makes visible by
//     counting only prepares that finished while a commit was in flight.
//     The handoff channel is unbuffered, so at most one prepared wave
//     waits while one commits (pipeline depth ≤ 2).
//
// Correctness properties (see coalescer_test.go; the suites run under both
// dispatcher shapes):
//   - FIFO: requests enter the merged stream in queue order, so a client
//     that waits for its response before sending the next request keeps its
//     users' event streams ordered across commits. Under pipelining the
//     single gatherer fixes wave order and the single committer commits in
//     that order, so the property carries over — and store.ApplyAll
//     guarantees same-shard WriteBatches of successive waves reach the WAL
//     in that order too (crash replay recovers a wave prefix).
//   - No loss: every queued request is dispatched exactly once, including
//     during shutdown drain.
//   - Per-request status: outcomes are attributed per batch, so one
//     submitter's malformed stream fails only that submitter; on
//     successful commits (and for malformed-stream charging) the two
//     dispatchers produce byte-identical per-request outcomes. Store
//     failures differ in blast radius only: the serialized path fails the
//     batches touching the failing shard group, the pipelined wave-atomic
//     commit fails the whole wave (see core.PreparedMulti.Commit).

// errQueueFull rejects a request when the pending queue is at capacity —
// the admission-control signal that becomes 503 + Retry-After.
var errQueueFull = errors.New("server: ingest queue full")

// errDraining rejects new requests once shutdown has begun.
var errDraining = errors.New("server: draining")

// multiIngester is the coalescer's view of the core (seam for tests).
type multiIngester interface {
	MultiIngest(batches [][]lifelog.Event) []core.IngestOutcome
}

// waveCommit is a prepared wave awaiting its commit (stage 2's unit of
// work). *core.PreparedMulti implements it.
type waveCommit interface {
	Commit() []core.IngestOutcome
}

// wavePreparer is the pipelined coalescer's view of the core: stage 1 calls
// PrepareWave, stage 2 calls Commit on the result. Seam for tests; the real
// backend is spaPreparer.
type wavePreparer interface {
	PrepareWave(batches [][]lifelog.Event) waveCommit
}

// spaPreparer adapts *core.SPA's PrepareMulti to the wavePreparer seam.
type spaPreparer struct{ spa *core.SPA }

func (p spaPreparer) PrepareWave(batches [][]lifelog.Event) waveCommit {
	return p.spa.PrepareMulti(batches)
}

type ingestJob struct {
	events []lifelog.Event
	done   chan ingestDone
	// enqueuedAt stamps admission (set inside enqueue/enqueueWait); the
	// dispatcher observes the queue-wait stage against it at gather time.
	enqueuedAt time.Time
}

type ingestDone struct {
	outcome core.IngestOutcome
	merged  int // requests sharing the commit, >= 1
}

type coalescer struct {
	backend  multiIngester
	pipe     wavePreparer // non-nil selects the two-stage pipelined dispatcher
	met      *metrics
	queue    chan *ingestJob
	maxBatch int
	maxDelay time.Duration
	// slowWave, when positive, logs a line for every wave whose
	// gather→commit total meets the threshold; logf defaults to
	// log.Printf (tests substitute a recorder).
	slowWave time.Duration
	logf     func(format string, args ...any)

	mu     sync.Mutex
	closed bool
	quit   chan struct{}
	done   chan struct{}
	// producers tracks blocking enqueueWait callers that have passed the
	// closed check and may still be waiting for queue room. close waits for
	// them before closing quit, so the dispatcher's final drain cannot race
	// a late blocking send (the job would be queued with nobody left to
	// commit it).
	producers sync.WaitGroup
}

func newCoalescer(backend multiIngester, pipe wavePreparer, met *metrics, queueDepth, maxBatch int, maxDelay, slowWave time.Duration, logf func(string, ...any)) *coalescer {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if logf == nil {
		logf = log.Printf
	}
	c := &coalescer{
		backend:  backend,
		pipe:     pipe,
		met:      met,
		queue:    make(chan *ingestJob, queueDepth),
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		slowWave: slowWave,
		logf:     logf,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.run()
	return c
}

// submit enqueues one request's events and blocks until its group commit
// completes, returning the request's own outcome and the commit's size.
// A context cancellation (the HTTP client hung up) releases the caller
// immediately with ctx's error — but the job is already accepted, so the
// dispatcher still commits it; the buffered done channel absorbs the
// result nobody is waiting for. Without this a disconnected client would
// pin its handler goroutine until the commit lands.
func (c *coalescer) submit(ctx context.Context, events []lifelog.Event) (core.IngestOutcome, int, error) {
	job := &ingestJob{events: events, done: make(chan ingestDone, 1)}
	if err := c.enqueue(job); err != nil {
		return core.IngestOutcome{}, 0, err
	}
	select {
	case d := <-job.done:
		return d.outcome, d.merged, nil
	case <-ctx.Done():
		return core.IngestOutcome{}, 0, ctx.Err()
	}
}

// enqueue admits one job without blocking — the HTTP path, where a full
// queue must surface immediately as 503 + Retry-After.
func (c *coalescer) enqueue(job *ingestJob) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errDraining
	}
	// Stamp before the send: the dispatcher may pick the job up the moment
	// it lands in the channel. A rejected job's stamp is discarded with it.
	job.enqueuedAt = time.Now()
	select {
	case c.queue <- job:
		return nil
	default:
		return errQueueFull
	}
}

// enqueueWait admits one job, blocking until the queue has room — the
// stream path, where backpressure travels as withheld credit instead of a
// 503: the stream reader parks here, stops writing responses (and thus
// granting credit), and the client's send window closes by itself. The
// park is always bounded: the dispatcher keeps consuming until quit
// closes, and quit cannot close while a producer is registered — so the
// queue drains and the send lands. ctx is an escape hatch for callers
// that have one; the stream reader passes context.Background() and relies
// on dispatcher progress (it cannot observe its connection dying while
// parked here — a frame read off a now-dead conn still commits, its
// answer written to nobody, same as the HTTP path's hung-up client). The
// producers group keeps the blocking send safe against close: once past
// the closed check the dispatcher is guaranteed to still be consuming
// when the send lands.
func (c *coalescer) enqueueWait(ctx context.Context, job *ingestJob) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errDraining
	}
	c.producers.Add(1)
	c.mu.Unlock()
	defer c.producers.Done()
	// Stamped before the (possibly blocking) send: a producer parked on a
	// full queue is exactly the wait the queue stage should show.
	job.enqueuedAt = time.Now()
	select {
	case c.queue <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops admission, waits for the dispatcher to drain every queued
// request, and returns. Safe to call more than once.
func (c *coalescer) close() {
	c.mu.Lock()
	closing := !c.closed
	c.closed = true
	c.mu.Unlock()
	if closing {
		// No new producer can register (closed is set); wait out the ones
		// already blocking so every accepted job is in the queue before the
		// dispatcher begins its final drain. They cannot wait long: the
		// dispatcher keeps consuming until quit closes.
		c.producers.Wait()
		close(c.quit)
	}
	<-c.done
}

// depth is the current pending-queue length (metrics gauge).
func (c *coalescer) depth() int { return len(c.queue) }

// capacity is the pending-queue bound.
func (c *coalescer) capacity() int { return cap(c.queue) }

func (c *coalescer) run() {
	defer close(c.done)
	if c.pipe != nil {
		c.runPipelined()
		return
	}
	for {
		var first *ingestJob
		select {
		case first = <-c.queue:
		case <-c.quit:
			c.drain()
			return
		}
		gatherStart := time.Now()
		batch := c.gather(first)
		c.dispatch(batch, gatherStart)
	}
}

// observeQueueWaits records each job's admission→gather wait in the queue
// histogram and returns the longest — the wave's QueueWait. Jobs without a
// stamp (tests constructing jobs by hand) are skipped.
func (c *coalescer) observeQueueWaits(jobs []*ingestJob, gatherStart time.Time) time.Duration {
	var maxWait time.Duration
	var st *obsState
	if c.met != nil {
		st = c.met.obs()
	}
	for _, j := range jobs {
		if j.enqueuedAt.IsZero() {
			continue
		}
		w := gatherStart.Sub(j.enqueuedAt)
		if w < 0 {
			w = 0
		}
		if st != nil {
			st.stage("queue", w)
		}
		if w > maxWait {
			maxWait = w
		}
	}
	return maxWait
}

// finishWave records the completed trace in the ring and emits the
// slow-wave log line when the gather→commit total meets the threshold.
func (c *coalescer) finishWave(t obs.WaveTrace) {
	if c.met != nil {
		c.met.obs().waves.Record(t)
	}
	if c.slowWave > 0 && t.Total() >= c.slowWave {
		c.logf("spad: slow wave %d: total=%s requests=%d events=%d shards=%d queue_wait=%s gather=%s prepare=%s commit_wait=%s commit=%s wal_sync=%s err=%t",
			t.ID, t.Total(), t.Requests, t.Events, t.Shards,
			t.QueueWait, t.Gather, t.Prepare, t.CommitWait, t.Commit, t.WALSync, t.Err)
	}
}

// anyErr reports whether any batch in the wave failed.
func anyErr(outs []core.IngestOutcome) bool {
	for _, o := range outs {
		if o.Err != nil {
			return true
		}
	}
	return false
}

// wave is one gathered-and-prepared group commit in flight between the
// pipeline's stages, carrying its trace-so-far across the handoff.
type wave struct {
	jobs     []*ingestJob
	events   int
	prepared waveCommit

	id        uint64
	start     time.Time // gather began
	queueWait time.Duration
	gather    time.Duration
	prepare   time.Duration
	prepDone  time.Time // prepare finished; commitStart - prepDone = handoff stall
	shards    int
}

// runPipelined is the two-stage dispatcher: this goroutine is stage 1
// (gather + prepare), the committer goroutine is stage 2 (commit +
// fan-back). The unbuffered handoff bounds the pipeline at one wave
// preparing/prepared plus one committing; FIFO order is preserved because
// both stages are single goroutines connected by a channel.
func (c *coalescer) runPipelined() {
	commitq := make(chan *wave)
	commitDone := make(chan struct{})
	go func() {
		defer close(commitDone)
		for w := range commitq {
			c.commitWave(w)
		}
	}()
	defer func() {
		close(commitq)
		<-commitDone
	}()
	for {
		var first *ingestJob
		select {
		case first = <-c.queue:
		case <-c.quit:
			// Drain: everything still queued leaves in merged, prepared
			// waves through the same two stages — the committer finishes
			// them before the deferred close returns.
			for {
				select {
				case j := <-c.queue:
					gatherStart := time.Now()
					c.prepareAndSend(commitq, c.gatherPending([]*ingestJob{j}), gatherStart)
				default:
					return
				}
			}
		}
		gatherStart := time.Now()
		c.prepareAndSend(commitq, c.gather(first), gatherStart)
	}
}

// prepareAndSend runs stage 1 for one wave: CPU-bound prepare, then hand
// the staged wave to the committer. The send blocks while a previous wave
// is still committing.
//
// Overlap is measured, not assumed: a prepare whose shards are all held
// write-locked by the in-flight commit spends its time blocked in RLock
// rather than extracting, so the overlap counter samples the depth gauge
// AFTER the prepare returns — it advances only when the prepare finished
// while an earlier wave was still in flight, i.e. the two stages genuinely
// ran concurrently (waves over disjoint shards).
func (c *coalescer) prepareAndSend(commitq chan<- *wave, jobs []*ingestJob, gatherStart time.Time) {
	batches := make([][]lifelog.Event, len(jobs))
	events := 0
	for i, j := range jobs {
		batches[i] = j.events
		events += len(j.events)
	}
	w := &wave{jobs: jobs, events: events, start: gatherStart}
	w.queueWait = c.observeQueueWaits(jobs, gatherStart)
	w.gather = time.Since(gatherStart)
	if c.met != nil {
		w.id = c.met.waveSeq.Add(1)
		c.met.obs().stage("gather", w.gather)
		c.met.pipelineDepth.Add(1)
	}
	// The wave ID rides the prepared commit into the store so the WAL sync
	// it triggers can be attributed back to this trace. Optional interface:
	// test fakes that only implement Commit keep working untagged.
	prepStart := time.Now()
	prepared := c.pipe.PrepareWave(batches)
	if tagged, ok := prepared.(interface{ SetWaveID(uint64) }); ok {
		tagged.SetWaveID(w.id)
	}
	w.prepare = time.Since(prepStart)
	w.prepDone = time.Now()
	if sh, ok := prepared.(interface{ Shards() int }); ok {
		w.shards = sh.Shards()
	}
	if c.met != nil {
		c.met.obs().stage("prepare", w.prepare)
		if c.met.pipelineDepth.Load() > 1 {
			c.met.pipelineOverlap.Add(1)
		}
	}
	w.prepared = prepared
	commitq <- w
}

// commitWave is stage 2: persist the prepared wave and release its waiters.
// The metrics settle BEFORE the fan-back: a submitter that reads /metrics
// the instant its response arrives must see the wave accounted for and the
// depth gauge back down.
func (c *coalescer) commitWave(w *wave) {
	commitStart := time.Now()
	commitWait := commitStart.Sub(w.prepDone)
	if commitWait < 0 {
		commitWait = 0
	}
	outs := w.prepared.Commit()
	commit := time.Since(commitStart)
	if c.met != nil {
		st := c.met.obs()
		st.stage("commit", commit)
		c.met.pipelineDepth.Add(-1)
		c.met.noteCommit(len(w.jobs), w.events)
		c.finishWave(obs.WaveTrace{
			ID:         w.id,
			Start:      w.start,
			Requests:   len(w.jobs),
			Events:     w.events,
			Shards:     w.shards,
			QueueWait:  w.queueWait,
			Gather:     w.gather,
			Prepare:    w.prepare,
			CommitWait: commitWait,
			Commit:     commit,
			WALSync:    st.takeWaveSync(w.id),
			Err:        anyErr(outs),
		})
	}
	for i, j := range w.jobs {
		j.done <- ingestDone{outcome: outs[i], merged: len(w.jobs)}
	}
}

// gather merges the first job with whatever else is already pending, up to
// maxBatch; with MaxDelay set it lingers that long for stragglers.
func (c *coalescer) gather(first *ingestJob) []*ingestJob {
	batch := []*ingestJob{first}
	var timeout <-chan time.Time
	if c.maxDelay > 0 {
		t := time.NewTimer(c.maxDelay)
		defer t.Stop()
		timeout = t.C
	}
	for len(batch) < c.maxBatch {
		if timeout == nil {
			return c.gatherPending(batch)
		}
		select {
		case j := <-c.queue:
			batch = append(batch, j)
		case <-timeout:
			timeout = nil
		case <-c.quit:
			// Shutdown cuts the linger short, but still scoops whatever is
			// already queued: with quit closed this select would otherwise
			// be perpetually ready and fragment the drain into near-empty
			// commits, de-coalescing exactly when the backlog is largest.
			return c.gatherPending(batch)
		}
	}
	return batch
}

// gatherPending tops batch up to maxBatch from the queue without blocking.
func (c *coalescer) gatherPending(batch []*ingestJob) []*ingestJob {
	for len(batch) < c.maxBatch {
		select {
		case j := <-c.queue:
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// drain commits everything still queued at shutdown — graceful drain means
// accepted requests are never dropped, and they still leave in merged
// waves: gatherPending batches nonblockingly (gather would consult the
// already-closed quit channel and commit ~one request at a time).
func (c *coalescer) drain() {
	for {
		select {
		case j := <-c.queue:
			gatherStart := time.Now()
			c.dispatch(c.gatherPending([]*ingestJob{j}), gatherStart)
		default:
			return
		}
	}
}

// dispatch is the serialized path's single stage: gather already happened
// (gatherStart marks its beginning), MultiIngest is prepare+commit fused,
// so the whole call lands in the commit histogram and the trace's
// Prepare/CommitWait/WALSync stay zero — /debug/waves shows which shape
// produced a trace by which stages are populated.
func (c *coalescer) dispatch(jobs []*ingestJob, gatherStart time.Time) {
	batches := make([][]lifelog.Event, len(jobs))
	events := 0
	for i, j := range jobs {
		batches[i] = j.events
		events += len(j.events)
	}
	queueWait := c.observeQueueWaits(jobs, gatherStart)
	gather := time.Since(gatherStart)
	var id uint64
	if c.met != nil {
		id = c.met.waveSeq.Add(1)
		c.met.obs().stage("gather", gather)
	}
	commitStart := time.Now()
	outs := c.backend.MultiIngest(batches)
	commit := time.Since(commitStart)
	for i, j := range jobs {
		j.done <- ingestDone{outcome: outs[i], merged: len(jobs)}
	}
	if c.met != nil {
		c.met.obs().stage("commit", commit)
		c.met.noteCommit(len(jobs), events)
		c.finishWave(obs.WaveTrace{
			ID:        id,
			Start:     gatherStart,
			Requests:  len(jobs),
			Events:    events,
			QueueWait: queueWait,
			Gather:    gather,
			Commit:    commit,
			Err:       anyErr(outs),
		})
	}
}
