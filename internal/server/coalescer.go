package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lifelog"
)

// The cross-request ingest coalescer: the server-side analogue of the
// store's WAL group commit. Concurrently arriving ingest requests queue
// here; a single dispatcher merges whatever is pending into one
// core.MultiIngest call, so N requests pay one group commit per shard
// instead of N. No artificial delay is needed — while one commit (and its
// fsync) is in flight, the next wave of requests piles up behind it, which
// is exactly the batch the dispatcher grabs next. MaxDelay adds an optional
// linger for workloads that prefer bigger batches over latency.
//
// Correctness properties (see coalescer_test.go):
//   - FIFO: requests enter the merged stream in queue order, so a client
//     that waits for its response before sending the next request keeps its
//     users' event streams ordered across commits.
//   - No loss: every queued request is dispatched exactly once, including
//     during shutdown drain.
//   - Per-request status: MultiIngest attributes outcomes per batch, so one
//     submitter's malformed stream fails only that submitter.

// errQueueFull rejects a request when the pending queue is at capacity —
// the admission-control signal that becomes 503 + Retry-After.
var errQueueFull = errors.New("server: ingest queue full")

// errDraining rejects new requests once shutdown has begun.
var errDraining = errors.New("server: draining")

// multiIngester is the coalescer's view of the core (seam for tests).
type multiIngester interface {
	MultiIngest(batches [][]lifelog.Event) []core.IngestOutcome
}

type ingestJob struct {
	events []lifelog.Event
	done   chan ingestDone
}

type ingestDone struct {
	outcome core.IngestOutcome
	merged  int // requests sharing the commit, >= 1
}

type coalescer struct {
	backend  multiIngester
	met      *metrics
	queue    chan *ingestJob
	maxBatch int
	maxDelay time.Duration

	mu     sync.Mutex
	closed bool
	quit   chan struct{}
	done   chan struct{}
}

func newCoalescer(backend multiIngester, met *metrics, queueDepth, maxBatch int, maxDelay time.Duration) *coalescer {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	if maxBatch <= 0 {
		maxBatch = 64
	}
	c := &coalescer{
		backend:  backend,
		met:      met,
		queue:    make(chan *ingestJob, queueDepth),
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.run()
	return c
}

// submit enqueues one request's events and blocks until its group commit
// completes, returning the request's own outcome and the commit's size.
// A context cancellation (the HTTP client hung up) releases the caller
// immediately with ctx's error — but the job is already accepted, so the
// dispatcher still commits it; the buffered done channel absorbs the
// result nobody is waiting for. Without this a disconnected client would
// pin its handler goroutine until the commit lands.
func (c *coalescer) submit(ctx context.Context, events []lifelog.Event) (core.IngestOutcome, int, error) {
	job := &ingestJob{events: events, done: make(chan ingestDone, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return core.IngestOutcome{}, 0, errDraining
	}
	select {
	case c.queue <- job:
		c.mu.Unlock()
	default:
		c.mu.Unlock()
		return core.IngestOutcome{}, 0, errQueueFull
	}
	select {
	case d := <-job.done:
		return d.outcome, d.merged, nil
	case <-ctx.Done():
		return core.IngestOutcome{}, 0, ctx.Err()
	}
}

// close stops admission, waits for the dispatcher to drain every queued
// request, and returns. Safe to call more than once.
func (c *coalescer) close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.quit)
	}
	c.mu.Unlock()
	<-c.done
}

// depth is the current pending-queue length (metrics gauge).
func (c *coalescer) depth() int { return len(c.queue) }

// capacity is the pending-queue bound.
func (c *coalescer) capacity() int { return cap(c.queue) }

func (c *coalescer) run() {
	defer close(c.done)
	for {
		var first *ingestJob
		select {
		case first = <-c.queue:
		case <-c.quit:
			c.drain()
			return
		}
		batch := c.gather(first)
		c.dispatch(batch)
	}
}

// gather merges the first job with whatever else is already pending, up to
// maxBatch; with MaxDelay set it lingers that long for stragglers.
func (c *coalescer) gather(first *ingestJob) []*ingestJob {
	batch := []*ingestJob{first}
	var timeout <-chan time.Time
	if c.maxDelay > 0 {
		t := time.NewTimer(c.maxDelay)
		defer t.Stop()
		timeout = t.C
	}
	for len(batch) < c.maxBatch {
		if timeout == nil {
			return c.gatherPending(batch)
		}
		select {
		case j := <-c.queue:
			batch = append(batch, j)
		case <-timeout:
			timeout = nil
		case <-c.quit:
			// Shutdown cuts the linger short, but still scoops whatever is
			// already queued: with quit closed this select would otherwise
			// be perpetually ready and fragment the drain into near-empty
			// commits, de-coalescing exactly when the backlog is largest.
			return c.gatherPending(batch)
		}
	}
	return batch
}

// gatherPending tops batch up to maxBatch from the queue without blocking.
func (c *coalescer) gatherPending(batch []*ingestJob) []*ingestJob {
	for len(batch) < c.maxBatch {
		select {
		case j := <-c.queue:
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// drain commits everything still queued at shutdown — graceful drain means
// accepted requests are never dropped, and they still leave in merged
// waves: gatherPending batches nonblockingly (gather would consult the
// already-closed quit channel and commit ~one request at a time).
func (c *coalescer) drain() {
	for {
		select {
		case j := <-c.queue:
			c.dispatch(c.gatherPending([]*ingestJob{j}))
		default:
			return
		}
	}
}

func (c *coalescer) dispatch(jobs []*ingestJob) {
	batches := make([][]lifelog.Event, len(jobs))
	events := 0
	for i, j := range jobs {
		batches[i] = j.events
		events += len(j.events)
	}
	outs := c.backend.MultiIngest(batches)
	for i, j := range jobs {
		j.done <- ingestDone{outcome: outs[i], merged: len(jobs)}
	}
	if c.met != nil {
		c.met.noteCommit(len(jobs), events)
	}
}
