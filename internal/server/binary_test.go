package server

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/wire"
)

func postBinary(t *testing.T, url string, frame []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", wire.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestIngestBinaryJSONEquivalence drives the same event shapes through
// both framings of /v1/ingest on one live server: the outcomes must match
// field for field, both users' profiles must land, and the negotiation
// must be visible in /metrics.
func TestIngestBinaryJSONEquivalence(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 4}, Options{})
	for _, id := range []uint64{1, 2} {
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: id}, nil); code != http.StatusCreated {
			t.Fatalf("register %d: %d", id, code)
		}
	}
	mk := func(user uint64) []lifelog.Event {
		return []lifelog.Event{
			{UserID: user, Time: t0, Type: lifelog.EventClick, Action: 7, Value: 1.5},
			{UserID: user, Time: t0.Add(time.Second), Type: lifelog.EventEnroll, Action: 7},
			{UserID: 99, Time: t0, Type: lifelog.EventClick, Action: 3}, // unknown either way
		}
	}

	var viaJSON wire.IngestResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(mk(1))}, &viaJSON); code != http.StatusOK {
		t.Fatalf("json ingest: %d", code)
	}

	resp, raw := postBinary(t, ts.URL, wire.EncodeIngestRequest(wire.FromEvents(mk(2))))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary ingest: %d %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !wire.IsBinaryContentType(ct) {
		t.Fatalf("binary request answered with Content-Type %q", ct)
	}
	viaBinary, err := wire.DecodeIngestResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if viaBinary.Processed != viaJSON.Processed || viaBinary.SkippedUnknown != viaJSON.SkippedUnknown {
		t.Fatalf("binary outcome %+v != json outcome %+v", viaBinary, viaJSON)
	}
	if viaBinary.Processed != 2 || viaBinary.SkippedUnknown != 1 {
		t.Fatalf("binary outcome: %+v", viaBinary)
	}

	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatal("metrics failed")
	}
	if m.IngestRequests != 2 || m.IngestBinary != 1 {
		t.Fatalf("negotiation accounting: requests %d binary %d", m.IngestRequests, m.IngestBinary)
	}
	if spa.Users() != 2 {
		t.Fatalf("users: %d", spa.Users())
	}
}

// TestIngestBinaryErrors: malformed frames are the client's 400 (as JSON),
// oversized frames die on the shared body cap with 413, and a malformed
// event stream inside a well-formed frame still gets the domain's 400.
func TestIngestBinaryErrors(t *testing.T) {
	ts, _ := testServer(t, core.Options{Shards: 1}, Options{MaxBodyBytes: 4096})
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: 1}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}

	if resp, _ := postBinary(t, ts.URL, []byte("not a frame")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed frame: %d", resp.StatusCode)
	}

	var big []lifelog.Event
	for seq := 1; seq <= 1024; seq++ {
		big = append(big, evAt(1, seq))
	}
	if resp, _ := postBinary(t, ts.URL, wire.EncodeIngestRequest(wire.FromEvents(big))); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized frame: %d", resp.StatusCode)
	}

	outOfOrder := []lifelog.Event{evAt(1, 5), evAt(1, 1)}
	if resp, _ := postBinary(t, ts.URL, wire.EncodeIngestRequest(wire.FromEvents(outOfOrder))); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed stream: %d", resp.StatusCode)
	}
}

// TestIngestBinaryDisabled: -no-binary answers 415 (the client's fallback
// trigger) while JSON keeps working untouched.
func TestIngestBinaryDisabled(t *testing.T) {
	ts, _ := testServer(t, core.Options{Shards: 1}, Options{DisableBinary: true})
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: 1}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	frame := wire.EncodeIngestRequest(wire.FromEvents([]lifelog.Event{evAt(1, 1)}))
	if resp, _ := postBinary(t, ts.URL, frame); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("binary with DisableBinary: %d, want 415", resp.StatusCode)
	}
	var ing wire.IngestResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents([]lifelog.Event{evAt(1, 1)})}, &ing); code != http.StatusOK || ing.Processed != 1 {
		t.Fatalf("json fallback path: %d %+v", code, ing)
	}
}
