package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// logRecorder captures Logf lines for assertion; the coalescer logs from
// its own goroutines, so it locks.
type logRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (r *logRecorder) logf(format string, args ...any) {
	r.mu.Lock()
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

func (r *logRecorder) contains(substr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func ingestOne(t *testing.T, url string, user uint64) {
	t.Helper()
	ev := []lifelog.Event{{UserID: user, Time: t0, Type: lifelog.EventClick, Action: 1}}
	if code, _ := doJSON(t, "POST", url+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(ev)}, nil); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
}

func fetchProm(t *testing.T, url string) (map[string]*obs.ParsedFamily, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type %q, want %q", ct, obs.PromContentType)
	}
	fams, err := obs.ParseProm(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("unparseable exposition: %v\n%s", err, raw)
	}
	return fams, string(raw)
}

// TestMetricsPrometheusExposition: the text exposition must parse under
// the strict parser (HELP/TYPE present, le-sorted cumulative buckets,
// +Inf, _count consistency — ParseProm enforces all of it) and carry the
// stage histograms as real _bucket series.
func TestMetricsPrometheusExposition(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	ingestOne(t, ts.URL, 1)

	fams, raw := fetchProm(t, ts.URL)
	for _, want := range []string{
		"spad_requests_total", "spad_ingest_commits_total", "spad_users",
		"spad_stage_duration_seconds", "spad_endpoint_duration_seconds",
	} {
		if fams[want] == nil {
			t.Fatalf("family %s missing from exposition:\n%s", want, raw)
		}
	}
	if typ := fams["spad_stage_duration_seconds"].Type; typ != "histogram" {
		t.Fatalf("stage family type %q", typ)
	}
	if !strings.Contains(raw, `spad_stage_duration_seconds_bucket{stage="commit",le="`) {
		t.Fatalf("no commit-stage _bucket series:\n%s", raw)
	}
	// The commit wave must have been observed by scrape time (the response
	// is fanned back after the histogram observation on the pipelined path,
	// and the serialized dispatch observes before noteCommit; either way a
	// completed ingest means a nonzero commit count eventually).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if fams["spad_stage_duration_seconds"].Samples[`spad_stage_duration_seconds_count{stage="commit"}`] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("commit stage count never reached 1:\n%s", raw)
		}
		time.Sleep(5 * time.Millisecond)
		fams, raw = fetchProm(t, ts.URL)
	}
	// format=prometheus works without the Accept header, and a default
	// request keeps answering JSON (back-compat with spabench and curl).
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("?format=prometheus content type %q", ct)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q, want application/json", ct)
	}
}

// TestMetricsJSONPromConsistency: both formats render the same snapshot
// type, so scrape-stable values must agree between consecutive scrapes in
// the two formats.
func TestMetricsJSONPromConsistency(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	ingestOne(t, ts.URL, 1)
	ingestOne(t, ts.URL, 1)

	// The commit-stage observation can land just after the ingest response
	// (serialized dispatch fans back first); settle before comparing.
	deadline := time.Now().Add(2 * time.Second)
	var m wire.Metrics
	for {
		if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
			t.Fatalf("metrics: %d", code)
		}
		if m.Stages["commit"].Count == m.IngestCommits {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("commit stage count %d never caught up to commits %d", m.Stages["commit"].Count, m.IngestCommits)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fams, raw := fetchProm(t, ts.URL)
	get := func(series string) float64 {
		for _, f := range fams {
			if v, ok := f.Samples[series]; ok {
				return v
			}
		}
		t.Fatalf("series %s missing:\n%s", series, raw)
		return 0
	}
	checks := map[string]float64{
		"spad_ingest_commits_total":                         float64(m.IngestCommits),
		"spad_ingest_events_total":                          float64(m.IngestEvents),
		"spad_ingest_requests_total":                        float64(m.IngestRequests),
		"spad_users":                                        float64(m.Users),
		"spad_last_wave_id":                                 float64(m.LastWaveID),
		`spad_stage_duration_seconds_count{stage="commit"}`: float64(m.Stages["commit"].Count),
		`spad_stage_duration_seconds_count{stage="gather"}`: float64(m.Stages["gather"].Count),
	}
	for series, want := range checks {
		if got := get(series); got != want {
			t.Errorf("%s = %v, want %v (JSON)", series, got, want)
		}
	}
	// The bucket counts themselves must agree: JSON per-bucket counts sum
	// to the +Inf cumulative value.
	var total uint64
	for _, c := range m.Stages["commit"].Counts {
		total += c
	}
	if got := get(`spad_stage_duration_seconds_bucket{le="+Inf",stage="commit"}`); got != float64(total) {
		t.Errorf("+Inf bucket %v, want %v", got, total)
	}
}

// TestReadyzFlipsUnderDrain: once drain begins — with a commit still in
// flight — /readyz must answer 503 "draining" while /healthz keeps
// reporting live, and the in-flight request must still complete.
func TestReadyzFlipsUnderDrain(t *testing.T) {
	fops := &stallingFileOps{gate: make(chan struct{})}
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(fops.gate) }) }
	defer release()

	ts, spa := testServer(t,
		core.Options{DataDir: t.TempDir(), Shards: 2,
			Store: store.Options{SyncWrites: true, FileOps: fops}},
		Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)

	readyStatus := func() (int, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h wire.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h.Status
	}
	if code, status := readyStatus(); code != http.StatusOK || status != "ok" {
		t.Fatalf("readyz before drain: %d %q", code, status)
	}

	// Park one ingest inside its WAL write, then begin the drain.
	fops.armed.Store(true)
	inflight := make(chan int, 1)
	go func() {
		ev := []lifelog.Event{{UserID: 1, Time: t0, Type: lifelog.EventClick, Action: 1}}
		code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(ev)}, nil)
		inflight <- code
	}()
	// Wait until the commit is actually stalled (queue drained into the
	// dispatcher, no response yet).
	time.Sleep(50 * time.Millisecond)
	select {
	case code := <-inflight:
		t.Fatalf("ingest finished before drain began: %d", code)
	default:
	}

	srv.BeginDrain()
	if code, status := readyStatus(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("readyz under drain: %d %q, want 503 draining", code, status)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz under drain: %d, liveness must not flip", code)
	}

	release()
	select {
	case code := <-inflight:
		if code != http.StatusOK {
			t.Fatalf("in-flight ingest after drain: %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight ingest never completed")
	}
}

// TestStreamConnsGaugeHygiene: connection paths that never reach a live
// session must leave the gauge at zero, and a session that dies at the
// handshake must return it to zero.
func TestStreamConnsGaugeHygiene(t *testing.T) {
	t.Run("hijack_unsupported", func(t *testing.T) {
		spa, err := core.New(core.Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer spa.Close()
		srv := New(spa, Options{})
		defer srv.Close()
		// httptest.ResponseRecorder implements no Hijacker: the upgrade
		// must fail with 500 and the gauge must stay untouched.
		req := httptest.NewRequest("GET", wire.StreamPath, nil)
		req.Header.Set("Upgrade", wire.StreamProtocol)
		req.Header.Set("Connection", "Upgrade")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("non-hijackable upgrade: %d", rec.Code)
		}
		if got := srv.met.streamConns.Load(); got != 0 {
			t.Fatalf("stream_conns = %d after failed hijack, want 0", got)
		}
	})
	t.Run("client_dies_at_handshake", func(t *testing.T) {
		ts, _ := testServer(t, core.Options{Shards: 1}, Options{})
		srv := spaFromTS(t, ts)
		// Upgrade for real, then slam the connection before speaking the
		// protocol; the session must unwind and the gauge return to zero.
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: x\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n",
			wire.StreamPath, wire.StreamProtocol)
		conn.Close()
		deadline := time.Now().Add(5 * time.Second)
		for srv.met.streamConns.Load() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("stream_conns = %d after dead handshake, want 0", srv.met.streamConns.Load())
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

// failingCommitPreparer prepares waves whose Commit reports a store-level
// failure for every batch.
type failingCommitPreparer struct{}

func (failingCommitPreparer) PrepareWave(batches [][]lifelog.Event) waveCommit {
	return commitFunc(func() []core.IngestOutcome {
		outs := make([]core.IngestOutcome, len(batches))
		for i := range outs {
			outs[i].Err = errors.New("injected commit failure")
		}
		return outs
	})
}

// TestPipelineDepthZeroAfterCommitFailure: a commit-stage store failure
// must not leak the depth gauge, and the wave's trace must carry the
// error flag.
func TestPipelineDepthZeroAfterCommitFailure(t *testing.T) {
	met := &metrics{}
	c := newCoalescer(nil, failingCommitPreparer{}, met, 64, 4, 0, 0, nil)
	defer c.close()
	out, _, err := c.submit(context.Background(), []lifelog.Event{evAt(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil {
		t.Fatal("expected the injected failure in the outcome")
	}
	if got := met.pipelineDepth.Load(); got != 0 {
		t.Fatalf("pipeline_depth = %d after failed commit, want 0", got)
	}
	traces := met.obs().waves.Last(1)
	if len(traces) != 1 || !traces[0].Err || traces[0].ID == 0 {
		t.Fatalf("wave trace after failed commit: %+v", traces)
	}
}

// TestDebugWaves: a committed ingest shows up as a wave trace, newest
// first, and a bad n is the caller's 400.
func TestDebugWaves(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{Pipeline: true})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	ingestOne(t, ts.URL, 1)
	ingestOne(t, ts.URL, 1)

	var waves wire.WavesResponse
	deadline := time.Now().Add(2 * time.Second)
	for {
		if code, _ := doJSON(t, "GET", ts.URL+"/debug/waves?n=1", nil, &waves); code != http.StatusOK {
			t.Fatalf("debug/waves: %d", code)
		}
		if len(waves.Waves) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no wave traces after committed ingest")
		}
		time.Sleep(5 * time.Millisecond)
	}
	w := waves.Waves[0]
	if w.ID == 0 || w.Requests < 1 || w.Events < 1 || w.Shards < 1 {
		t.Fatalf("wave trace: %+v", w)
	}
	if w.TotalNanos < w.CommitNanos {
		t.Fatalf("total %d < commit %d", w.TotalNanos, w.CommitNanos)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/debug/waves?n=bogus", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad n: %d", code)
	}
}

// TestAccessAndSlowWaveLogs: the opt-in access log emits one line per
// completed request, and a sub-threshold SlowWave setting logs every wave.
func TestAccessAndSlowWaveLogs(t *testing.T) {
	rec := &logRecorder{}
	ts, spa := testServer(t, core.Options{Shards: 2},
		Options{AccessLog: true, SlowWave: time.Nanosecond, Logf: rec.logf})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if !rec.contains("GET /healthz 200") {
		t.Fatalf("no access-log line for /healthz: %v", rec.lines)
	}
	ingestOne(t, ts.URL, 1)
	deadline := time.Now().Add(2 * time.Second)
	for !rec.contains("slow wave") {
		if time.Now().After(deadline) {
			t.Fatalf("no slow-wave line: %v", rec.lines)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
