package server

// Shard handoff (DESIGN.md §10): moving a set of keyspace slots from the
// node that owns them (the source) to another (the target), under live
// load, without losing an acknowledged write. The transfer is target-
// driven and rides the replication transport:
//
//   1. The target POSTs /v1/cluster/handoff (handleHandoff), resolves
//      which slots it wants from which current owners, and dials each
//      source on wire.ReplPath — the same upgrade a follower performs —
//      but opens with a handoff-subscribe frame (0x0E) instead of a
//      replication subscribe.
//   2. The source ships a slot-filtered snapshot (the reused snapshot
//      begin/chunk/end frames), then tails its own log shipping each
//      record slot-filtered as a wave frame, credit-windowed and acked
//      exactly like follower replication. Wave LSNs are SOURCE positions:
//      the target applies each wave as a LOCAL commit (ApplyHandoffWave)
//      and echoes the source position back as its ack.
//   3. When the source has shipped through its current head, it fences
//      writes to the moving slots (503 + Retry-After, see cluster.go),
//      waits out in-flight writers via the cluster guard, flushes the
//      coalescer with a sentinel wave, and ships what those last commits
//      appended. After the target has acked everything shipped, the
//      source flips ownership at a freshly minted topology epoch and
//      sends the handoff-commit frame (0x0F) carrying the final LSN and
//      the new epoch.
//   4. The target installs itself as the slots' owner at that epoch; the
//      source unfences (the slots now bounce 421 to the target) and drops
//      the moved users from shard memory. Gossip spreads the new epoch to
//      the other nodes.
//
// No acked write is lost: a write is acknowledged only after its commit,
// every commit to the moving slots lands before the fence barrier or not
// at all, and the source waits for the target's ack of the last shipped
// frame before flipping. If the stream dies at any earlier point the
// source unfences and keeps its slots — the target's partial copy is
// overwritten by the next attempt's snapshot.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/store"
	"repro/internal/wire"
)

const (
	// handoffReadTimeout bounds one frame wait on the target's pull loop;
	// the source is actively shipping, so a long silence is a dead peer.
	handoffReadTimeout = 30 * time.Second
	// handoffAckWait bounds how long the source waits for the target to
	// acknowledge the final shipped frame before giving up (and keeping
	// its slots).
	handoffAckWait = 30 * time.Second
)

// flushCoalescer pushes a sentinel (empty) request through the coalescer
// and waits for its commit. Waves commit in FIFO order, so when the
// sentinel's wave is done every job enqueued before it has committed —
// the step that closes the gap between "the stream reader released the
// cluster guard after enqueueing" and "that job's wave hit the log". A
// non-nil error means that conclusion does NOT hold (the sentinel never
// committed); the caller must not treat the log as drained.
func (s *Server) flushCoalescer() error {
	if s.co == nil {
		return nil
	}
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if _, _, err = s.co.submit(context.Background(), nil); !errors.Is(err, errQueueFull) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("ingest queue stayed full through the flush window: %w", err)
}

// serveHandoff runs the source side of one slot transfer over an upgraded
// replication connection; sess already carries the conn and hello, br is
// positioned after the handoff-subscribe frame.
func (s *Server) serveHandoff(sess *replSession, br *bufio.Reader, hs wire.HandoffSubscribe) {
	c := s.cluster
	if c == nil {
		sess.sendError(http.StatusNotImplemented, errors.New("not a cluster node (spad -cluster)"))
		return
	}
	if hs.NodeID == c.nodeID {
		sess.sendError(http.StatusBadRequest, errors.New("handoff target is the source itself"))
		return
	}
	if !c.handoffMu.TryLock() {
		sess.sendError(http.StatusConflict, errors.New("another handoff is in progress"))
		return
	}
	defer c.handoffMu.Unlock()
	c.ensureNode(hs.NodeID, hs.Addr)
	// Epoch coordination: adopt the target's current map before doing
	// anything else, so the epoch minted at the flip supersedes every flip
	// the target has already absorbed from other sources (cluster.go's
	// lifecycle comment has the collision scenario). No valid map means no
	// safe mint — refuse the handoff.
	if err := c.syncWith(hs.Addr); err != nil {
		sess.sendError(http.StatusPreconditionFailed,
			fmt.Errorf("syncing topology with target %s: %w", hs.Addr, err))
		return
	}
	// Ownership is checked against the post-sync map: the adopted topology
	// may have moved slots away from this node.
	if owns, slot, owner, addr := c.ownsAll(&hs.Slots); !owns {
		sess.sendError(http.StatusMisdirectedRequest,
			fmt.Errorf("slot %d is owned by node %s at %s", slot, owner, addr))
		return
	}

	// Bootstrap: the moving slots' current profiles, and the log position
	// the capture is current through.
	pairs, snapLSN, err := s.spa.ExportSlotSnapshot(&hs.Slots)
	if err != nil {
		sess.sendError(http.StatusInternalServerError, err)
		return
	}
	if err := sess.sendSnapshotPairs(pairs, snapLSN); err != nil {
		return
	}

	tail, err := s.spa.TailLog(snapLSN + 1)
	if err != nil {
		sess.sendError(http.StatusInternalServerError, err)
		return
	}
	if !sess.installTail(tail) {
		tail.Close()
		return
	}
	sess.credit = make(chan struct{}, hs.Window)
	for i := 0; i < hs.Window; i++ {
		sess.credit <- struct{}{}
	}
	sess.acked.Store(snapLSN)
	sess.sent.Store(snapLSN)
	go sess.readAcks(br)

	// shipThrough tails the source log up to target, shipping each record
	// slot-filtered; records the filter empties advance the position
	// without a frame (handoff waves carry no contiguity the target
	// checks). lastShipped is the newest source LSN actually framed — the
	// position the final ack wait keys on.
	pos, lastShipped := snapLSN, uint64(0)
	shipThrough := func(target uint64) error {
		for pos < target {
			rec, err := tail.Next()
			if err != nil {
				switch {
				case errors.Is(err, store.ErrTailClosed), errors.Is(err, store.ErrClosed):
				default:
					sess.sendError(http.StatusInternalServerError, err)
				}
				return err
			}
			pos = rec.LSN
			ann, entries, err := core.FilterWaveForSlots(rec.Annotation, rec.Entries, &hs.Slots)
			if err != nil {
				sess.sendError(http.StatusInternalServerError, err)
				return err
			}
			if len(entries) == 0 {
				continue
			}
			select {
			case <-sess.credit:
			case <-sess.closedCh:
				return errors.New("session closed")
			}
			wentries := make([]wire.ReplEntry, len(entries))
			for i, e := range entries {
				wentries[i] = wire.ReplEntry{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}
			}
			frame := wire.EncodeReplWave(wire.ReplWave{LSN: rec.LSN, Annotation: ann, Entries: wentries})
			sess.noteSent(rec.LSN, len(frame))
			if err := sess.writeFrames(frame); err != nil {
				return err
			}
			lastShipped = rec.LSN
		}
		return nil
	}

	// Phase 1: catch up to the head under live writes.
	if head, ok := s.spa.AppliedLSN(); ok {
		if err := shipThrough(head); err != nil {
			return
		}
	}

	// Phase 2: fence the moving slots, wait out admitted writers (the
	// guard barrier), flush the coalescer's queue, and ship the final
	// delta. From here until the flip, writes to the moving slots answer
	// 503; everything else flows.
	c.setFence(&hs.Slots, true)
	fenced := true
	defer func() {
		if fenced {
			c.setFence(&hs.Slots, false)
		}
	}()
	// The empty critical section IS the barrier: taking the write lock
	// waits out every reader admitted before the fence went up.
	c.guard.Lock()
	c.guard.Unlock() //nolint:staticcheck // SA2001: empty section intended
	if err := s.flushCoalescer(); err != nil {
		// An unflushed queue can still hold a fenced-slot write admitted
		// before the fence went up; flipping now would commit it on the old
		// owner, unshipped — a lost acknowledged write. Abort instead: keep
		// the slots, unfence (deferred), and let the target retry.
		sess.sendError(http.StatusServiceUnavailable,
			fmt.Errorf("draining pending ingest before the flip: %w", err))
		return
	}
	final, _ := s.spa.AppliedLSN()
	if err := shipThrough(final); err != nil {
		return
	}

	// Phase 3: the flip is legal only once the target holds everything
	// shipped — wait for its cumulative ack to reach the last framed
	// position.
	deadline := time.Now().Add(handoffAckWait)
	for sess.acked.Load() < lastShipped {
		if time.Now().After(deadline) {
			sess.sendError(http.StatusGatewayTimeout,
				fmt.Errorf("target never acked through %d (acked %d)", lastShipped, sess.acked.Load()))
			return
		}
		select {
		case <-sess.closedCh:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Phase 4: flip ownership at a fresh epoch and tell the target. If the
	// commit frame is lost the target still converges: gossip carries the
	// source's higher-epoch map, which already names the target as owner.
	moved := hs.Slots.Count()
	epoch := c.flipTo(&hs.Slots, hs.NodeID, hs.Addr)
	if err := sess.writeFrames(wire.EncodeHandoffCommit(wire.HandoffCommit{LSN: final, Epoch: epoch})); err != nil {
		s.logf("spad: handoff: commit frame to %s lost (epoch %d stands): %v", hs.NodeID, epoch, err)
	}
	c.setFence(&hs.Slots, false)
	fenced = false
	s.met.slotMoves.Add(uint64(moved))
	dropped := s.spa.DropSlotUsers(&hs.Slots)
	s.logf("spad: handoff: moved %d slots (%d users) to node %s at epoch %d", moved, dropped, hs.NodeID, epoch)
}

// handleHandoff is the target side's entry point: POST /v1/cluster/handoff
// with a slot list and/or a source node whose entire ownership should move
// here. The target pulls from each current owner in turn.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		s.writeError(w, http.StatusNotImplemented, errors.New("not a cluster node (spad -cluster)"))
		return
	}
	if _, durable := s.spa.AppliedLSN(); !durable {
		s.writeError(w, http.StatusNotImplemented, errors.New("handoff requires a durable store (spad -data)"))
		return
	}
	var req wire.HandoffRequest
	if !s.decode(w, r, &req) {
		return
	}
	topo := c.topology()
	var want keyspace.SlotSet
	for _, slot := range req.Slots {
		if slot < 0 || slot >= keyspace.NumSlots {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("slot %d out of range", slot))
			return
		}
		want.Add(slot)
	}
	if req.FromNode != "" {
		if _, ok := topo.Nodes[req.FromNode]; !ok {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown node %q", req.FromNode))
			return
		}
		for slot, owner := range topo.Slots {
			if owner == req.FromNode {
				want.Add(slot)
			}
		}
	}
	// Group the wanted slots by current owner, dropping what is already
	// ours; each group is one pull stream.
	groups := make(map[string]*keyspace.SlotSet)
	for _, slot := range want.Slots() {
		owner := topo.Slots[slot]
		if owner == c.nodeID {
			continue
		}
		g := groups[owner]
		if g == nil {
			g = new(keyspace.SlotSet)
			groups[owner] = g
		}
		g.Add(slot)
	}
	owners := make([]string, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	moved := 0
	for _, owner := range owners {
		addr := topo.Nodes[owner]
		if addr == "" {
			s.writeError(w, http.StatusBadGateway, fmt.Errorf("no address for node %q", owner))
			return
		}
		if err := s.pullSlots(addr, groups[owner]); err != nil {
			// Earlier groups have already moved; report the failure with
			// the partial progress visible in the topology epoch.
			s.writeError(w, http.StatusBadGateway,
				fmt.Errorf("pulling %d slots from node %s (%d already moved): %w",
					groups[owner].Count(), owner, moved, err))
			return
		}
		moved += groups[owner].Count()
	}
	s.writeJSON(w, http.StatusOK, wire.HandoffResponse{Moved: moved, Epoch: c.epochNow()})
}

// pullSlots runs the target side of one handoff stream: dial the source,
// apply the snapshot and the filtered waves as local commits, ack source
// positions, and adopt ownership on the commit frame.
func (s *Server) pullSlots(sourceAddr string, slots *keyspace.SlotSet) error {
	c := s.cluster
	window := defaultReplWindow
	if window > wire.MaxStreamCredit {
		window = wire.MaxStreamCredit
	}
	conn, br, bw, hello, err := dialUpgrade(sourceAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := writeFlushFrame(conn, bw, wire.EncodeHandoffSubscribe(wire.HandoffSubscribe{
		Slots:  *slots,
		Window: window,
		NodeID: c.nodeID,
		Addr:   c.addr,
	})); err != nil {
		return err
	}
	conn.SetDeadline(time.Time{})

	applyEntries := func(annotation []byte, wentries []wire.ReplEntry) error {
		entries := make([]store.LogEntry, len(wentries))
		for i, e := range wentries {
			entries[i] = store.LogEntry{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}
		}
		applyStart := time.Now()
		if err := s.spa.ApplyHandoffWave(annotation, entries); err != nil {
			return err
		}
		s.met.obs().stage("repl_apply", time.Since(applyStart))
		return nil
	}

	for {
		conn.SetReadDeadline(time.Now().Add(handoffReadTimeout))
		frame, err := wire.ReadStreamFrame(br, hello.MaxFrameBytes)
		if err != nil {
			return fmt.Errorf("handoff stream: %w", err)
		}
		kind, err := wire.FrameKind(frame)
		if err != nil {
			return err
		}
		switch kind {
		case wire.KindReplSnapshotBegin, wire.KindReplSnapshotEnd, wire.KindReplHeartbeat:
			// Chunk frames carry the state; begin/end only bracket them,
			// and the final consistency check is the commit-frame ack wait.
		case wire.KindReplSnapshotChunk:
			chunk, err := wire.DecodeReplSnapshotChunk(frame)
			if err != nil {
				return err
			}
			if err := applyEntries(nil, chunk); err != nil {
				return err
			}
		case wire.KindReplWave:
			wv, err := wire.DecodeReplWave(frame)
			if err != nil {
				return err
			}
			if err := applyEntries(wv.Annotation, wv.Entries); err != nil {
				return fmt.Errorf("applying handoff wave %d: %w", wv.LSN, err)
			}
			if err := writeFlushFrame(conn, bw, wire.EncodeReplAck(wv.LSN)); err != nil {
				return err
			}
		case wire.KindHandoffCommit:
			hc, err := wire.DecodeHandoffCommit(frame)
			if err != nil {
				return err
			}
			c.acquire(slots, hc.Epoch)
			s.met.slotMoves.Add(uint64(slots.Count()))
			s.logf("spad: handoff: acquired %d slots from %s at epoch %d", slots.Count(), sourceAddr, hc.Epoch)
			return nil
		case wire.KindStreamError:
			se, derr := wire.DecodeStreamError(frame)
			if derr != nil {
				return derr
			}
			return fmt.Errorf("source refused handoff: %d %s", se.Status, se.Message)
		default:
			return fmt.Errorf("unexpected frame kind %#x in handoff stream", kind)
		}
	}
}

// writeFlushFrame writes one frame and flushes, bounded by the replication
// write timeout.
func writeFlushFrame(conn net.Conn, bw *bufio.Writer, frame []byte) error {
	conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	if err := wire.WriteStreamFrame(bw, frame); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	return nil
}
