package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
)

var t0 = clock.Epoch

// recordingBackend is a multiIngester that journals every commit it
// receives (batches in submission order) and can slow down or fail on
// demand — the seam that lets the stress tests observe exactly what the
// coalescer fed downstream.
type recordingBackend struct {
	delay   time.Duration
	failOn  func(batch []lifelog.Event) error
	mu      sync.Mutex
	commits [][][]lifelog.Event
}

func (b *recordingBackend) MultiIngest(batches [][]lifelog.Event) []core.IngestOutcome {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	cp := make([][]lifelog.Event, len(batches))
	outs := make([]core.IngestOutcome, len(batches))
	for i, batch := range batches {
		cp[i] = append([]lifelog.Event(nil), batch...)
		if b.failOn != nil {
			outs[i].Err = b.failOn(batch)
		}
		if outs[i].Err == nil {
			outs[i].Processed = len(batch)
		}
	}
	b.mu.Lock()
	b.commits = append(b.commits, cp)
	b.mu.Unlock()
	return outs
}

func (b *recordingBackend) snapshot() [][][]lifelog.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([][][]lifelog.Event(nil), b.commits...)
}

func evAt(user uint64, seq int) lifelog.Event {
	return lifelog.Event{
		UserID: user,
		Time:   t0.Add(time.Duration(seq) * time.Second),
		Type:   lifelog.EventClick,
		Action: uint32(seq % lifelog.ActionUniverse),
	}
}

// TestCoalescerOrderAndCompleteness is the correctness core: many clients
// submit sequential requests through one coalescer; afterwards the merged
// stream the backend saw must contain every event exactly once, with every
// user's timestamps strictly increasing across commit boundaries — and the
// concurrency must actually have produced multi-request commits.
func TestCoalescerOrderAndCompleteness(t *testing.T) {
	const (
		clients          = 8
		requestsPer      = 40
		eventsPerRequest = 5
	)
	// The delay stands in for a durable group commit (the fsync window):
	// while one commit runs, the other clients' requests pile up.
	backend := &recordingBackend{delay: 500 * time.Microsecond}
	c := newCoalescer(backend, nil, 256, 64, 0)
	defer c.close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			user := uint64(cl + 1)
			seq := 0
			for r := 0; r < requestsPer; r++ {
				var events []lifelog.Event
				for e := 0; e < eventsPerRequest; e++ {
					seq++
					events = append(events, evAt(user, seq))
				}
				out, merged, err := c.submit(context.Background(), events)
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", cl, err)
					return
				}
				if merged < 1 || out.Err != nil || out.Processed != eventsPerRequest {
					errs <- fmt.Errorf("client %d: outcome %+v merged %d", cl, out, merged)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	commits := backend.snapshot()
	lastSeen := map[uint64]time.Time{}
	total := 0
	maxMerged := 0
	for _, commit := range commits {
		if len(commit) > maxMerged {
			maxMerged = len(commit)
		}
		for _, batch := range commit {
			for _, e := range batch {
				total++
				if last, ok := lastSeen[e.UserID]; ok && !e.Time.After(last) {
					t.Fatalf("user %d: event at %v not after %v — order broken across merged requests",
						e.UserID, e.Time, last)
				}
				lastSeen[e.UserID] = e.Time
			}
		}
	}
	if want := clients * requestsPer * eventsPerRequest; total != want {
		t.Fatalf("backend saw %d events, submitted %d — events lost or duplicated", total, want)
	}
	if maxMerged < 2 {
		t.Fatalf("no commit merged more than one request — coalescing never engaged")
	}
}

// TestCoalescerErrorFanback drives the coalescer against the real core: a
// malformed request merged with healthy ones must fail alone, and the
// healthy requests' events must all land in the profiles.
func TestCoalescerErrorFanback(t *testing.T) {
	const clients = 6
	spa, err := core.New(core.Options{Shards: 1, Clock: clock.NewSimulated(t0.Add(time.Hour))})
	if err != nil {
		t.Fatal(err)
	}
	defer spa.Close()
	for cl := 0; cl < clients; cl++ {
		if err := spa.Register(uint64(cl+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := newCoalescer(spa, nil, 256, 64, time.Millisecond)
	defer c.close()

	var wg sync.WaitGroup
	type result struct {
		bad bool
		out core.IngestOutcome
		err error
	}
	results := make(chan result, clients*20)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			user := uint64(cl + 1)
			bad := cl == 0 // client 0 submits internally out-of-order streams
			seq := 0
			for r := 0; r < 20; r++ {
				var events []lifelog.Event
				for e := 0; e < 4; e++ {
					seq++
					events = append(events, evAt(user, seq))
				}
				if bad {
					events[0], events[len(events)-1] = events[len(events)-1], events[0]
				}
				out, _, err := c.submit(context.Background(), events)
				results <- result{bad: bad, out: out, err: err}
			}
		}(cl)
	}
	wg.Wait()
	close(results)
	for res := range results {
		if res.err != nil {
			t.Fatalf("submit error: %v", res.err)
		}
		if res.bad && res.out.Err == nil {
			t.Fatal("malformed request reported success")
		}
		if !res.bad && res.out.Err != nil {
			t.Fatalf("healthy request failed: %v", res.out.Err)
		}
		if !res.bad && res.out.Processed != 4 {
			t.Fatalf("healthy request processed %d of 4", res.out.Processed)
		}
	}
}

// TestCoalescerAdmissionControl: with a tiny queue and a slow backend, the
// overflow must be rejected with errQueueFull — never blocked, never lost.
func TestCoalescerAdmissionControl(t *testing.T) {
	backend := &recordingBackend{delay: 20 * time.Millisecond}
	c := newCoalescer(backend, nil, 2, 1, 0)
	defer c.close()

	const submitters = 16
	var wg sync.WaitGroup
	var accepted, rejected sync.Map
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := c.submit(context.Background(), []lifelog.Event{evAt(uint64(i+1), 1)})
			if errors.Is(err, errQueueFull) {
				rejected.Store(i, true)
			} else if err == nil {
				accepted.Store(i, true)
			} else {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	nAccepted, nRejected := 0, 0
	accepted.Range(func(_, _ any) bool { nAccepted++; return true })
	rejected.Range(func(_, _ any) bool { nRejected++; return true })
	if nAccepted+nRejected != submitters {
		t.Fatalf("accounted %d of %d submitters", nAccepted+nRejected, submitters)
	}
	if nRejected == 0 {
		t.Fatal("queue of depth 2 absorbed 16 concurrent submitters — admission control inert")
	}
	// Every accepted request must have reached the backend exactly once.
	total := 0
	for _, commit := range backend.snapshot() {
		total += len(commit)
	}
	if total != nAccepted {
		t.Fatalf("backend saw %d requests, accepted %d", total, nAccepted)
	}
}

// gatedBackend blocks its first MultiIngest call until released — the seam
// that lets a test pile up a backlog behind an in-flight commit and then
// trigger shutdown at a known point.
type gatedBackend struct {
	recordingBackend
	started chan struct{} // closed when the first commit begins
	release chan struct{} // first commit waits for this
	first   sync.Once
}

func (b *gatedBackend) MultiIngest(batches [][]lifelog.Event) []core.IngestOutcome {
	b.first.Do(func() {
		close(b.started)
		<-b.release
	})
	return b.recordingBackend.MultiIngest(batches)
}

// TestCoalescerDrainMergesBacklog is the graceful-drain batching
// regression: shutting down with a backlog behind a slow commit must still
// drain in merged waves. The old drain re-used gather, whose select
// consulted the already-closed quit channel — perpetually ready, so the
// drain fragmented into ~single-request commits exactly when the backlog
// was largest.
func TestCoalescerDrainMergesBacklog(t *testing.T) {
	const backlog = 32
	backend := &gatedBackend{started: make(chan struct{}), release: make(chan struct{})}
	// maxDelay > 0 is the trigger: it put the quit case into gather's
	// select in the first place.
	c := newCoalescer(backend, nil, 64, 64, time.Millisecond)

	var wg sync.WaitGroup
	errs := make(chan error, backlog+1)
	submit := func(user uint64) {
		defer wg.Done()
		if _, _, err := c.submit(context.Background(), []lifelog.Event{evAt(user, 1)}); err != nil {
			errs <- err
		}
	}
	// One request occupies the dispatcher (held inside MultiIngest by the
	// gate)...
	wg.Add(1)
	go submit(1)
	<-backend.started
	// ...while a backlog accumulates in the queue.
	for i := 0; i < backlog; i++ {
		wg.Add(1)
		go submit(uint64(i + 2))
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.depth() < backlog && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if c.depth() < backlog {
		t.Fatalf("backlog never queued: depth %d", c.depth())
	}
	// Begin shutdown, then let the stuck commit finish: the dispatcher
	// drains the backlog with quit already closed.
	go c.close()
	time.Sleep(2 * time.Millisecond)
	close(backend.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	maxMerged := 0
	total := 0
	for _, commit := range backend.snapshot() {
		if len(commit) > maxMerged {
			maxMerged = len(commit)
		}
		total += len(commit)
	}
	if total != backlog+1 {
		t.Fatalf("backend saw %d requests, want %d", total, backlog+1)
	}
	// The whole backlog is queued when the drain starts, so it must leave
	// in a handful of large commits — not one-request dribbles.
	if maxMerged < backlog/2 {
		t.Fatalf("largest drain commit merged %d of %d backlogged requests — drain de-coalesced", maxMerged, backlog)
	}
}

// TestCoalescerSubmitHonorsContext: a canceled context releases the
// waiting submitter immediately, but the accepted job still commits — the
// handler goroutine is freed without breaking the no-loss guarantee.
func TestCoalescerSubmitHonorsContext(t *testing.T) {
	backend := &gatedBackend{started: make(chan struct{}), release: make(chan struct{})}
	c := newCoalescer(backend, nil, 64, 1, 0) // maxBatch 1: the canceled job commits alone
	defer c.close()

	// Occupy the dispatcher so the next submit stays queued.
	go c.submit(context.Background(), []lifelog.Event{evAt(1, 1)})
	<-backend.started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.submit(ctx, []lifelog.Event{evAt(2, 1)})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submit still blocked after cancel — disconnected client pins its handler")
	}

	// The abandoned job must still reach the backend exactly once.
	close(backend.release)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, commit := range backend.snapshot() {
			total += len(commit)
		}
		if total == 2 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("abandoned job never committed: %d commits", len(backend.snapshot()))
}

// TestCoalescerDrain: close() must commit everything already accepted and
// reject everything after.
func TestCoalescerDrain(t *testing.T) {
	backend := &recordingBackend{delay: 5 * time.Millisecond}
	c := newCoalescer(backend, nil, 64, 8, 0)

	const pre = 12
	var wg sync.WaitGroup
	okCh := make(chan bool, pre)
	for i := 0; i < pre; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := c.submit(context.Background(), []lifelog.Event{evAt(uint64(i+1), 1)})
			okCh <- err == nil
		}(i)
	}
	// Let the submitters enqueue, then shut down while commits are slow.
	time.Sleep(2 * time.Millisecond)
	c.close()
	wg.Wait()
	close(okCh)

	completed := 0
	for ok := range okCh {
		if ok {
			completed++
		}
	}
	total := 0
	for _, commit := range backend.snapshot() {
		total += len(commit)
	}
	if total != completed {
		t.Fatalf("backend committed %d requests, %d submitters saw success — drain dropped work", total, completed)
	}
	if _, _, err := c.submit(context.Background(), []lifelog.Event{evAt(1, 2)}); !errors.Is(err, errDraining) {
		t.Fatalf("submit after close: %v, want errDraining", err)
	}
	if c.depth() != 0 {
		t.Fatalf("queue depth %d after drain", c.depth())
	}
}
