package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
)

var t0 = clock.Epoch

// recordingBackend is a multiIngester that journals every commit it
// receives (batches in submission order) and can slow down or fail on
// demand — the seam that lets the stress tests observe exactly what the
// coalescer fed downstream.
type recordingBackend struct {
	delay   time.Duration
	failOn  func(batch []lifelog.Event) error
	mu      sync.Mutex
	commits [][][]lifelog.Event
}

func (b *recordingBackend) MultiIngest(batches [][]lifelog.Event) []core.IngestOutcome {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	cp := make([][]lifelog.Event, len(batches))
	outs := make([]core.IngestOutcome, len(batches))
	for i, batch := range batches {
		cp[i] = append([]lifelog.Event(nil), batch...)
		if b.failOn != nil {
			outs[i].Err = b.failOn(batch)
		}
		if outs[i].Err == nil {
			outs[i].Processed = len(batch)
		}
	}
	b.mu.Lock()
	b.commits = append(b.commits, cp)
	b.mu.Unlock()
	return outs
}

func (b *recordingBackend) snapshot() [][][]lifelog.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([][][]lifelog.Event(nil), b.commits...)
}

// commitFunc adapts a closure to the waveCommit seam.
type commitFunc func() []core.IngestOutcome

func (f commitFunc) Commit() []core.IngestOutcome { return f() }

// pipeAdapter turns any multiIngester into a wavePreparer whose prepare is
// free and whose commit is the MultiIngest call, so the recording and gated
// fakes drive the pipelined dispatcher unchanged — every journaled
// MultiIngest call is then a stage-2 commit.
type pipeAdapter struct{ mi multiIngester }

func (p pipeAdapter) PrepareWave(batches [][]lifelog.Event) waveCommit {
	return commitFunc(func() []core.IngestOutcome { return p.mi.MultiIngest(batches) })
}

// dispatcherModes runs the suite body under both dispatcher shapes: the
// serialized single-goroutine loop and the two-stage pipeline.
func dispatcherModes(t *testing.T, body func(t *testing.T, pipelined bool)) {
	for _, mode := range []struct {
		name      string
		pipelined bool
	}{{"serialized", false}, {"pipelined", true}} {
		t.Run(mode.name, func(t *testing.T) { body(t, mode.pipelined) })
	}
}

// newTestCoalescer wires a coalescer over a fake backend in either shape.
func newTestCoalescer(backend multiIngester, pipelined bool, met *metrics, queueDepth, maxBatch int, maxDelay time.Duration) *coalescer {
	var pipe wavePreparer
	if pipelined {
		pipe = pipeAdapter{mi: backend}
	}
	return newCoalescer(backend, pipe, met, queueDepth, maxBatch, maxDelay, 0, nil)
}

func evAt(user uint64, seq int) lifelog.Event {
	return lifelog.Event{
		UserID: user,
		Time:   t0.Add(time.Duration(seq) * time.Second),
		Type:   lifelog.EventClick,
		Action: uint32(seq % lifelog.ActionUniverse),
	}
}

// TestCoalescerOrderAndCompleteness is the correctness core: many clients
// submit sequential requests through one coalescer; afterwards the merged
// stream the backend saw must contain every event exactly once, with every
// user's timestamps strictly increasing across commit boundaries — and the
// concurrency must actually have produced multi-request commits. The FIFO
// property must survive the pipelined dispatcher: its single gatherer fixes
// wave order and its single committer commits in that order.
func TestCoalescerOrderAndCompleteness(t *testing.T) {
	dispatcherModes(t, func(t *testing.T, pipelined bool) {
		const (
			clients          = 8
			requestsPer      = 40
			eventsPerRequest = 5
		)
		// The delay stands in for a durable group commit (the fsync window):
		// while one commit runs, the other clients' requests pile up.
		backend := &recordingBackend{delay: 500 * time.Microsecond}
		c := newTestCoalescer(backend, pipelined, nil, 256, 64, 0)
		defer c.close()

		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				user := uint64(cl + 1)
				seq := 0
				for r := 0; r < requestsPer; r++ {
					var events []lifelog.Event
					for e := 0; e < eventsPerRequest; e++ {
						seq++
						events = append(events, evAt(user, seq))
					}
					out, merged, err := c.submit(context.Background(), events)
					if err != nil {
						errs <- fmt.Errorf("client %d: %v", cl, err)
						return
					}
					if merged < 1 || out.Err != nil || out.Processed != eventsPerRequest {
						errs <- fmt.Errorf("client %d: outcome %+v merged %d", cl, out, merged)
						return
					}
				}
			}(cl)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		commits := backend.snapshot()
		lastSeen := map[uint64]time.Time{}
		total := 0
		maxMerged := 0
		for _, commit := range commits {
			if len(commit) > maxMerged {
				maxMerged = len(commit)
			}
			for _, batch := range commit {
				for _, e := range batch {
					total++
					if last, ok := lastSeen[e.UserID]; ok && !e.Time.After(last) {
						t.Fatalf("user %d: event at %v not after %v — order broken across merged requests",
							e.UserID, e.Time, last)
					}
					lastSeen[e.UserID] = e.Time
				}
			}
		}
		if want := clients * requestsPer * eventsPerRequest; total != want {
			t.Fatalf("backend saw %d events, submitted %d — events lost or duplicated", total, want)
		}
		if maxMerged < 2 {
			t.Fatalf("no commit merged more than one request — coalescing never engaged")
		}
	})
}

// TestCoalescerErrorFanback drives the coalescer against the real core: a
// malformed request merged with healthy ones must fail alone, and the
// healthy requests' events must all land in the profiles. The pipelined
// mode runs the real PrepareMulti/Commit split.
func TestCoalescerErrorFanback(t *testing.T) {
	dispatcherModes(t, func(t *testing.T, pipelined bool) {
		const clients = 6
		spa, err := core.New(core.Options{Shards: 1, Clock: clock.NewSimulated(t0.Add(time.Hour))})
		if err != nil {
			t.Fatal(err)
		}
		defer spa.Close()
		for cl := 0; cl < clients; cl++ {
			if err := spa.Register(uint64(cl+1), nil); err != nil {
				t.Fatal(err)
			}
		}
		var pipe wavePreparer
		if pipelined {
			pipe = spaPreparer{spa: spa}
		}
		c := newCoalescer(spa, pipe, nil, 256, 64, time.Millisecond, 0, nil)
		defer c.close()

		var wg sync.WaitGroup
		type result struct {
			bad bool
			out core.IngestOutcome
			err error
		}
		results := make(chan result, clients*20)
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				user := uint64(cl + 1)
				bad := cl == 0 // client 0 submits internally out-of-order streams
				seq := 0
				for r := 0; r < 20; r++ {
					var events []lifelog.Event
					for e := 0; e < 4; e++ {
						seq++
						events = append(events, evAt(user, seq))
					}
					if bad {
						events[0], events[len(events)-1] = events[len(events)-1], events[0]
					}
					out, _, err := c.submit(context.Background(), events)
					results <- result{bad: bad, out: out, err: err}
				}
			}(cl)
		}
		wg.Wait()
		close(results)
		for res := range results {
			if res.err != nil {
				t.Fatalf("submit error: %v", res.err)
			}
			if res.bad && res.out.Err == nil {
				t.Fatal("malformed request reported success")
			}
			if !res.bad && res.out.Err != nil {
				t.Fatalf("healthy request failed: %v", res.out.Err)
			}
			if !res.bad && res.out.Processed != 4 {
				t.Fatalf("healthy request processed %d of 4", res.out.Processed)
			}
		}
	})
}

// TestCoalescerAdmissionControl: with a tiny queue and a slow backend, the
// overflow must be rejected with errQueueFull — never blocked, never lost.
// The pipeline holds at most two extra requests in flight (one preparing,
// one committing), so admission control stays effective there too.
func TestCoalescerAdmissionControl(t *testing.T) {
	dispatcherModes(t, func(t *testing.T, pipelined bool) {
		backend := &recordingBackend{delay: 20 * time.Millisecond}
		c := newTestCoalescer(backend, pipelined, nil, 2, 1, 0)
		defer c.close()

		const submitters = 16
		var wg sync.WaitGroup
		var accepted, rejected sync.Map
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, _, err := c.submit(context.Background(), []lifelog.Event{evAt(uint64(i+1), 1)})
				if errors.Is(err, errQueueFull) {
					rejected.Store(i, true)
				} else if err == nil {
					accepted.Store(i, true)
				} else {
					t.Errorf("submit %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		nAccepted, nRejected := 0, 0
		accepted.Range(func(_, _ any) bool { nAccepted++; return true })
		rejected.Range(func(_, _ any) bool { nRejected++; return true })
		if nAccepted+nRejected != submitters {
			t.Fatalf("accounted %d of %d submitters", nAccepted+nRejected, submitters)
		}
		if nRejected == 0 {
			t.Fatal("queue of depth 2 absorbed 16 concurrent submitters — admission control inert")
		}
		// Every accepted request must have reached the backend exactly once.
		total := 0
		for _, commit := range backend.snapshot() {
			total += len(commit)
		}
		if total != nAccepted {
			t.Fatalf("backend saw %d requests, accepted %d", total, nAccepted)
		}
	})
}

// gatedBackend blocks its first MultiIngest call until released — the seam
// that lets a test pile up a backlog behind an in-flight commit and then
// trigger shutdown at a known point. Under the pipeAdapter the gate blocks
// the first stage-2 commit.
type gatedBackend struct {
	recordingBackend
	started chan struct{} // closed when the first commit begins
	release chan struct{} // first commit waits for this
	first   sync.Once
}

func (b *gatedBackend) MultiIngest(batches [][]lifelog.Event) []core.IngestOutcome {
	b.first.Do(func() {
		close(b.started)
		<-b.release
	})
	return b.recordingBackend.MultiIngest(batches)
}

// TestCoalescerDrainMergesBacklog is the graceful-drain batching
// regression: shutting down with a backlog behind a slow commit must still
// drain in merged waves. The old drain re-used gather, whose select
// consulted the already-closed quit channel — perpetually ready, so the
// drain fragmented into ~single-request commits exactly when the backlog
// was largest.
func TestCoalescerDrainMergesBacklog(t *testing.T) {
	const backlog = 32
	backend := &gatedBackend{started: make(chan struct{}), release: make(chan struct{})}
	// maxDelay > 0 is the trigger: it put the quit case into gather's
	// select in the first place.
	c := newCoalescer(backend, nil, nil, 64, 64, time.Millisecond, 0, nil)

	var wg sync.WaitGroup
	errs := make(chan error, backlog+1)
	submit := func(user uint64) {
		defer wg.Done()
		if _, _, err := c.submit(context.Background(), []lifelog.Event{evAt(user, 1)}); err != nil {
			errs <- err
		}
	}
	// One request occupies the dispatcher (held inside MultiIngest by the
	// gate)...
	wg.Add(1)
	go submit(1)
	<-backend.started
	// ...while a backlog accumulates in the queue.
	for i := 0; i < backlog; i++ {
		wg.Add(1)
		go submit(uint64(i + 2))
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.depth() < backlog && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if c.depth() < backlog {
		t.Fatalf("backlog never queued: depth %d", c.depth())
	}
	// Begin shutdown, then let the stuck commit finish: the dispatcher
	// drains the backlog with quit already closed.
	go c.close()
	time.Sleep(2 * time.Millisecond)
	close(backend.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	maxMerged := 0
	total := 0
	for _, commit := range backend.snapshot() {
		if len(commit) > maxMerged {
			maxMerged = len(commit)
		}
		total += len(commit)
	}
	if total != backlog+1 {
		t.Fatalf("backend saw %d requests, want %d", total, backlog+1)
	}
	// The whole backlog is queued when the drain starts, so it must leave
	// in a handful of large commits — not one-request dribbles.
	if maxMerged < backlog/2 {
		t.Fatalf("largest drain commit merged %d of %d backlogged requests — drain de-coalesced", maxMerged, backlog)
	}
}

// TestPipelinedDrainMergesBacklog: same scenario under the two-stage
// dispatcher. Stage 1 keeps at most one prepared wave in flight, so part of
// the backlog sits in the queue when shutdown begins; the drain must still
// leave in merged waves, not one-request dribbles.
func TestPipelinedDrainMergesBacklog(t *testing.T) {
	const (
		backlog  = 32
		maxBatch = 8
	)
	backend := &gatedBackend{started: make(chan struct{}), release: make(chan struct{})}
	c := newTestCoalescer(backend, true, nil, 64, maxBatch, time.Millisecond)

	var wg sync.WaitGroup
	errs := make(chan error, backlog+1)
	submit := func(user uint64) {
		defer wg.Done()
		if _, _, err := c.submit(context.Background(), []lifelog.Event{evAt(user, 1)}); err != nil {
			errs <- err
		}
	}
	wg.Add(1)
	go submit(1)
	<-backend.started
	for i := 0; i < backlog; i++ {
		wg.Add(1)
		go submit(uint64(i + 2))
	}
	// Stage 1 can absorb one maxBatch-sized wave beyond the gated commit;
	// the rest must be queued before shutdown begins.
	deadline := time.Now().Add(5 * time.Second)
	for c.depth() < backlog-maxBatch && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if c.depth() < backlog-maxBatch {
		t.Fatalf("backlog never queued: depth %d", c.depth())
	}
	go c.close()
	time.Sleep(2 * time.Millisecond)
	close(backend.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	maxMerged := 0
	total := 0
	commits := backend.snapshot()
	for _, commit := range commits {
		if len(commit) > maxMerged {
			maxMerged = len(commit)
		}
		total += len(commit)
	}
	if total != backlog+1 {
		t.Fatalf("backend saw %d requests, want %d", total, backlog+1)
	}
	if maxMerged < maxBatch/2 {
		t.Fatalf("largest drain commit merged %d requests (maxBatch %d) — pipelined drain de-coalesced", maxMerged, maxBatch)
	}
}

// TestCoalescerSubmitHonorsContext: a canceled context releases the
// waiting submitter immediately, but the accepted job still commits — the
// handler goroutine is freed without breaking the no-loss guarantee.
func TestCoalescerSubmitHonorsContext(t *testing.T) {
	backend := &gatedBackend{started: make(chan struct{}), release: make(chan struct{})}
	c := newCoalescer(backend, nil, nil, 64, 1, 0, 0, nil) // maxBatch 1: the canceled job commits alone
	defer c.close()

	// Occupy the dispatcher so the next submit stays queued.
	go c.submit(context.Background(), []lifelog.Event{evAt(1, 1)})
	<-backend.started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.submit(ctx, []lifelog.Event{evAt(2, 1)})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submit still blocked after cancel — disconnected client pins its handler")
	}

	// The abandoned job must still reach the backend exactly once.
	close(backend.release)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, commit := range backend.snapshot() {
			total += len(commit)
		}
		if total == 2 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("abandoned job never committed: %d commits", len(backend.snapshot()))
}

// TestPipelinedSubmitHonorsContext: the same guarantee under the pipeline.
// Job 1 occupies the committer, job 2 sits prepared in stage 1's handoff,
// job 3 stays queued; canceling job 2's context must release its submitter
// while all three still commit.
func TestPipelinedSubmitHonorsContext(t *testing.T) {
	backend := &gatedBackend{started: make(chan struct{}), release: make(chan struct{})}
	c := newTestCoalescer(backend, true, nil, 64, 1, 0)
	defer c.close()

	go c.submit(context.Background(), []lifelog.Event{evAt(1, 1)})
	<-backend.started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.submit(ctx, []lifelog.Event{evAt(2, 1)})
		done <- err
	}()
	go c.submit(context.Background(), []lifelog.Event{evAt(3, 1)})
	// Job 3 queues once stage 1 is blocked handing job 2's wave over.
	deadline := time.Now().Add(5 * time.Second)
	for c.depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submit still blocked after cancel — disconnected client pins its handler")
	}

	close(backend.release)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, commit := range backend.snapshot() {
			total += len(commit)
		}
		if total == 3 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("abandoned job never committed: %d commits", len(backend.snapshot()))
}

// TestCoalescerDrain: close() must commit everything already accepted and
// reject everything after.
func TestCoalescerDrain(t *testing.T) {
	dispatcherModes(t, func(t *testing.T, pipelined bool) {
		backend := &recordingBackend{delay: 5 * time.Millisecond}
		c := newTestCoalescer(backend, pipelined, nil, 64, 8, 0)

		const pre = 12
		var wg sync.WaitGroup
		okCh := make(chan bool, pre)
		for i := 0; i < pre; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, _, err := c.submit(context.Background(), []lifelog.Event{evAt(uint64(i+1), 1)})
				okCh <- err == nil
			}(i)
		}
		// Let the submitters enqueue, then shut down while commits are slow.
		time.Sleep(2 * time.Millisecond)
		c.close()
		wg.Wait()
		close(okCh)

		completed := 0
		for ok := range okCh {
			if ok {
				completed++
			}
		}
		total := 0
		for _, commit := range backend.snapshot() {
			total += len(commit)
		}
		if total != completed {
			t.Fatalf("backend committed %d requests, %d submitters saw success — drain dropped work", total, completed)
		}
		if _, _, err := c.submit(context.Background(), []lifelog.Event{evAt(1, 2)}); !errors.Is(err, errDraining) {
			t.Fatalf("submit after close: %v, want errDraining", err)
		}
		if c.depth() != 0 {
			t.Fatalf("queue depth %d after drain", c.depth())
		}
	})
}

// journalPreparer journals prepare and commit order per wave and can gate
// the first commit — the instrument that proves the pipeline actually
// overlaps stage 1 of wave N+1 with stage 2 of wave N, and that commits
// still run in wave order.
type journalPreparer struct {
	gate chan struct{} // commit of wave 0 blocks here

	mu        sync.Mutex
	nextWave  int
	prepared  []int
	committed []int
}

func (p *journalPreparer) PrepareWave(batches [][]lifelog.Event) waveCommit {
	p.mu.Lock()
	id := p.nextWave
	p.nextWave++
	p.prepared = append(p.prepared, id)
	p.mu.Unlock()
	return commitFunc(func() []core.IngestOutcome {
		if id == 0 {
			<-p.gate
		}
		p.mu.Lock()
		p.committed = append(p.committed, id)
		p.mu.Unlock()
		outs := make([]core.IngestOutcome, len(batches))
		for i := range outs {
			outs[i].Processed = len(batches[i])
		}
		return outs
	})
}

func (p *journalPreparer) preparedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.prepared)
}

// TestPipelinedOverlapAndCommitOrder: while wave 0's commit is held open,
// wave 1 must still get prepared (the overlap), the depth gauge must show
// two waves in flight, and after release the commits must land in wave
// order with the overlap counter advanced.
func TestPipelinedOverlapAndCommitOrder(t *testing.T) {
	jp := &journalPreparer{gate: make(chan struct{})}
	met := &metrics{}
	c := newCoalescer(nil, jp, met, 64, 1, 0, 0, nil)
	defer c.close()

	results := make(chan error, 2)
	submit := func(user uint64) {
		out, _, err := c.submit(context.Background(), []lifelog.Event{evAt(user, 1)})
		if err == nil && out.Processed != 1 {
			err = fmt.Errorf("outcome %+v", out)
		}
		results <- err
	}
	go submit(1)
	deadline := time.Now().Add(5 * time.Second)
	for jp.preparedCount() < 1 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	go submit(2)
	// Wave 1's prepare must complete while wave 0 is still inside Commit.
	for jp.preparedCount() < 2 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if jp.preparedCount() < 2 {
		t.Fatal("wave 1 never prepared while wave 0's commit was in flight — no overlap")
	}
	if d := met.pipelineDepth.Load(); d != 2 {
		t.Fatalf("pipeline depth %d with one committing and one prepared wave, want 2", d)
	}
	close(jp.gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	jp.mu.Lock()
	committed := append([]int(nil), jp.committed...)
	jp.mu.Unlock()
	if len(committed) != 2 || committed[0] != 0 || committed[1] != 1 {
		t.Fatalf("commit order %v, want [0 1]", committed)
	}
	if met.pipelineOverlap.Load() == 0 {
		t.Fatal("overlap counter never advanced")
	}
	if d := met.pipelineDepth.Load(); d != 0 {
		t.Fatalf("pipeline depth %d after quiesce, want 0", d)
	}
}
