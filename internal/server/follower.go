package server

// Follower-side replication (DESIGN.md §9). A follower spad is a normal
// durable instance whose writes arrive over the replication stream
// instead of the ingest endpoints: it dials the leader, subscribes from
// its own committed position, and applies each wave through
// core.ApplyReplicatedWave — the same store-commit + shard-install +
// snapshot-publish sequence the leader's commit stage ran, so every read
// API serves from state that converges to the leader's at the applied
// position. Client-facing writes answer 421 + the leader's address
// (rejectFollowerWrite in server.go).
//
// Startup ordering matters: a follower whose position predates the
// leader's retained log floor must restore a state snapshot BEFORE the
// core opens (the core loads its shard memory from the store exactly
// once, at New). BootstrapFollower does that store-level restore; the
// in-process follower loop then only ever needs the tail. If the follower
// falls behind the floor mid-run — the leader answers a reconnect with a
// snapshot — the loop parks in the "stalled" state and keeps serving
// stale reads; a process restart re-bootstraps. That trade keeps the
// live core's memory install path append-only (no mid-run state swap).

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/wire"
)

const (
	// defaultReplWindow is the wave credit a follower grants its leader.
	defaultReplWindow = 256
	// replDialTimeout bounds connect + upgrade + hello + subscribe.
	replDialTimeout = 10 * time.Second
	// replReadTimeout bounds one frame wait on the follower; the leader
	// heartbeats every second, so several missed intervals mean a dead
	// connection, not an idle one.
	replReadTimeout = 10 * time.Second
	// replBackoffMax caps the reconnect backoff.
	replBackoffMax = 5 * time.Second
)

var errFollowerStopped = errors.New("server: follower stopped")

// errNeedsSnapshot marks a mid-run resume the leader answered with a
// snapshot: the follower fell behind the retained history.
var errNeedsSnapshot = errors.New("server: follower fell behind the leader's retained log; restart to re-bootstrap")

// follower is the in-process replication loop of a FollowerOf server.
type follower struct {
	srv    *Server
	leader string // host:port
	window int

	stop chan struct{}
	done chan struct{}

	mu            sync.Mutex
	state         string // "connecting", "streaming", "stalled"
	lastErr       string
	leaderLSN     uint64
	lastHeartbeat time.Time
	conn          net.Conn // live connection, closed by stopWait to unblock reads
}

func newFollower(s *Server, leader string, window int) *follower {
	if window <= 0 {
		window = defaultReplWindow
	}
	if window > wire.MaxStreamCredit {
		window = wire.MaxStreamCredit
	}
	return &follower{
		srv:    s,
		leader: leader,
		window: window,
		state:  "connecting",
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// run is the follower's reconnect loop; it exits only on stopWait.
func (f *follower) run() {
	defer close(f.done)
	backoff := 250 * time.Millisecond
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		started := time.Now()
		err := f.session()
		if errors.Is(err, errFollowerStopped) {
			return
		}
		if errors.Is(err, errNeedsSnapshot) {
			f.setState("stalled", err.Error())
			f.srv.logf("spad: replication: %v", err)
			backoff = replBackoffMax
		} else {
			f.setState("connecting", err.Error())
			f.srv.logf("spad: replication: leader %s: %v (reconnecting)", f.leader, err)
			if time.Since(started) > replReadTimeout {
				// A session that lived a while earns a fresh backoff.
				backoff = 250 * time.Millisecond
			}
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > replBackoffMax {
			backoff = replBackoffMax
		}
	}
}

// stopWait stops the loop and waits for it to unwind.
func (f *follower) stopWait() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	<-f.done
}

func (f *follower) setState(state, lastErr string) {
	f.mu.Lock()
	f.state = state
	f.lastErr = lastErr
	f.mu.Unlock()
}

// adoptConn publishes the live connection for stopWait; returns false if
// the follower is already stopping (the caller must close conn and bail).
func (f *follower) adoptConn(conn net.Conn) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.stop:
		return false
	default:
	}
	f.conn = conn
	return true
}

func (f *follower) noteWave(lsn uint64) {
	f.mu.Lock()
	if lsn > f.leaderLSN {
		f.leaderLSN = lsn
	}
	f.mu.Unlock()
}

func (f *follower) noteHeartbeat(leaderLSN uint64) {
	f.mu.Lock()
	if leaderLSN > f.leaderLSN {
		f.leaderLSN = leaderLSN
	}
	f.lastHeartbeat = time.Now()
	f.mu.Unlock()
}

// fillStatus adds the follower's live view to a status snapshot.
func (f *follower) fillStatus(st *wire.ReplicationStatus, applied uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st.State = f.state
	st.LeaderLSN = f.leaderLSN
	if !f.lastHeartbeat.IsZero() {
		st.LastHeartbeatUnixNano = f.lastHeartbeat.UnixNano()
	}
	if f.leaderLSN > applied {
		st.LagWaves = f.leaderLSN - applied
	}
}

// lagWaves reports how far the follower trails the last reported leader
// position.
func (f *follower) lagWaves(applied uint64) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.leaderLSN > applied {
		return f.leaderLSN - applied
	}
	return 0
}

// session runs one connection: dial, subscribe from the local applied
// position, then apply waves until the connection dies.
func (f *follower) session() error {
	applied, ok := f.srv.spa.AppliedLSN()
	if !ok {
		// Misconfiguration, not a transient: park until stopped.
		f.setState("stalled", "replication requires a durable store")
		<-f.stop
		return errFollowerStopped
	}
	conn, br, bw, hello, err := dialRepl(f.leader, applied+1, f.window)
	if err != nil {
		return err
	}
	if !f.adoptConn(conn) {
		conn.Close()
		return errFollowerStopped
	}
	defer conn.Close()
	f.setState("streaming", "")
	maxFrame := hello.MaxFrameBytes

	for {
		conn.SetReadDeadline(time.Now().Add(replReadTimeout))
		frame, err := wire.ReadStreamFrame(br, maxFrame)
		if err != nil {
			select {
			case <-f.stop:
				return errFollowerStopped
			default:
			}
			return err
		}
		kind, err := wire.FrameKind(frame)
		if err != nil {
			return err
		}
		switch kind {
		case wire.KindReplWave:
			wv, err := wire.DecodeReplWave(frame)
			if err != nil {
				return err
			}
			entries := make([]store.LogEntry, len(wv.Entries))
			for i, e := range wv.Entries {
				entries[i] = store.LogEntry{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}
			}
			applyStart := time.Now()
			if err := f.srv.spa.ApplyReplicatedWave(wv.LSN, wv.Annotation, entries); err != nil {
				return fmt.Errorf("applying wave %d: %w", wv.LSN, err)
			}
			f.srv.met.obs().stage("repl_apply", time.Since(applyStart))
			f.noteWave(wv.LSN)
			conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
			if err := wire.WriteStreamFrame(bw, wire.EncodeReplAck(wv.LSN)); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			conn.SetWriteDeadline(time.Time{})
		case wire.KindReplHeartbeat:
			lsn, err := wire.DecodeReplHeartbeat(frame)
			if err != nil {
				return err
			}
			f.noteHeartbeat(lsn)
		case wire.KindReplSnapshotBegin:
			// Our position predates the leader's retained history; a
			// snapshot cannot be installed into a live core (the shard
			// memory was loaded at New), so park stalled.
			return errNeedsSnapshot
		case wire.KindStreamError:
			se, derr := wire.DecodeStreamError(frame)
			if derr != nil {
				return derr
			}
			return fmt.Errorf("leader refused: %d %s", se.Status, se.Message)
		case wire.KindStreamDrain:
			return errors.New("leader draining")
		default:
			return fmt.Errorf("unexpected frame kind %#x", kind)
		}
	}
}

// leaderHostPort normalizes a leader address: a bare host:port passes
// through, a URL contributes its host.
func leaderHostPort(addr string) (string, error) {
	if strings.Contains(addr, "://") {
		u, err := url.Parse(addr)
		if err != nil {
			return "", fmt.Errorf("server: parsing leader address: %w", err)
		}
		if u.Host == "" {
			return "", fmt.Errorf("server: leader address %q has no host", addr)
		}
		addr = u.Host
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return "", fmt.Errorf("server: leader address %q is not host:port: %w", addr, err)
	}
	return addr, nil
}

// dialRepl connects to a leader and completes the replication handshake:
// HTTP upgrade on wire.ReplPath, the leader's hello, then the subscribe.
// The returned connection has no deadline armed.
func dialRepl(leaderAddr string, fromLSN uint64, window int) (net.Conn, *bufio.Reader, *bufio.Writer, wire.StreamHello, error) {
	conn, br, bw, hello, err := dialUpgrade(leaderAddr)
	if err != nil {
		return nil, nil, nil, hello, err
	}
	if err := wire.WriteStreamFrame(bw, wire.EncodeReplSubscribe(wire.ReplSubscribe{
		FromLSN: fromLSN,
		Window:  window,
	})); err != nil {
		conn.Close()
		return nil, nil, nil, hello, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, nil, nil, hello, err
	}
	conn.SetDeadline(time.Time{})
	return conn, br, bw, hello, nil
}

// dialUpgrade connects to a peer's replication endpoint and completes the
// transport handshake — TCP dial, HTTP upgrade on wire.ReplPath, the
// peer's hello — leaving the protocol's opening frame (replication or
// handoff subscribe) to the caller. The dial deadline is still armed on
// return; the caller clears it after writing its first frame.
func dialUpgrade(peerAddr string) (net.Conn, *bufio.Reader, *bufio.Writer, wire.StreamHello, error) {
	var hello wire.StreamHello
	addr, err := leaderHostPort(peerAddr)
	if err != nil {
		return nil, nil, nil, hello, err
	}
	conn, err := net.DialTimeout("tcp", addr, replDialTimeout)
	if err != nil {
		return nil, nil, nil, hello, err
	}
	conn.SetDeadline(time.Now().Add(replDialTimeout))
	br := bufio.NewReader(conn)
	req := "GET " + wire.ReplPath + " HTTP/1.1\r\nHost: " + addr +
		"\r\nConnection: Upgrade\r\nUpgrade: " + wire.StreamProtocol + "\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		conn.Close()
		return nil, nil, nil, hello, err
	}
	resp, err := http.ReadResponse(br, &http.Request{Method: "GET"})
	if err != nil {
		conn.Close()
		return nil, nil, nil, hello, err
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		conn.Close()
		msg := strings.TrimSpace(string(raw))
		return nil, nil, nil, hello, fmt.Errorf("server: leader %s answered %d to the replication upgrade: %s", addr, resp.StatusCode, msg)
	}
	frame, err := wire.ReadStreamFrame(br, 1<<20)
	if err != nil {
		conn.Close()
		return nil, nil, nil, hello, fmt.Errorf("server: reading replication hello: %w", err)
	}
	if kind, kerr := wire.FrameKind(frame); kerr == nil && kind == wire.KindStreamError {
		se, derr := wire.DecodeStreamError(frame)
		conn.Close()
		if derr != nil {
			return nil, nil, nil, hello, derr
		}
		return nil, nil, nil, hello, fmt.Errorf("server: leader refused replication: %d %s", se.Status, se.Message)
	}
	if hello, err = wire.DecodeStreamHello(frame); err != nil {
		conn.Close()
		return nil, nil, nil, hello, fmt.Errorf("server: decoding replication hello: %w", err)
	}
	return conn, br, bufio.NewWriter(conn), hello, nil
}

// BootstrapFollower prepares a follower's data directory before its core
// opens: it subscribes to the leader from the directory's committed
// position and, if the leader answers with a snapshot (the position
// predates the retained log floor — always true for a fresh directory
// against a pruned leader), restores it at the store level. The core then
// opens on the restored state and the in-process follower loop resumes
// from the snapshot position. Returns the restored snapshot bytes (zero
// when the position was still retained and no snapshot was needed).
func BootstrapFollower(dataDir, leaderAddr string, stOpts store.Options) (int64, error) {
	db, err := store.Open(dataDir, stOpts)
	if err != nil {
		return 0, err
	}
	restored, err := bootstrapStore(db, leaderAddr)
	cerr := db.Close()
	if err != nil {
		return 0, err
	}
	return restored, cerr
}

// bootstrapStore probes the leader once with the store's applied position
// and restores the snapshot if one is offered.
func bootstrapStore(db *store.DB, leaderAddr string) (int64, error) {
	conn, br, _, hello, err := dialRepl(leaderAddr, db.AppliedLSN()+1, defaultReplWindow)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	maxFrame := hello.MaxFrameBytes

	readFrame := func() ([]byte, byte, error) {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		frame, err := wire.ReadStreamFrame(br, maxFrame)
		if err != nil {
			return nil, 0, err
		}
		kind, err := wire.FrameKind(frame)
		if err != nil {
			return nil, 0, err
		}
		return frame, kind, nil
	}

	frame, kind, err := readFrame()
	if err != nil {
		return 0, fmt.Errorf("server: bootstrap probe: %w", err)
	}
	switch kind {
	case wire.KindReplWave, wire.KindReplHeartbeat:
		// The position is still retained: the runtime loop can resume
		// directly. (The leader started streaming to this probe; dropping
		// the connection is fine, nothing was acked.)
		return 0, nil
	case wire.KindReplSnapshotBegin:
	case wire.KindStreamError:
		se, derr := wire.DecodeStreamError(frame)
		if derr != nil {
			return 0, derr
		}
		return 0, fmt.Errorf("server: leader refused bootstrap: %d %s", se.Status, se.Message)
	default:
		return 0, fmt.Errorf("server: unexpected bootstrap frame kind %#x", kind)
	}

	begin, err := wire.DecodeReplSnapshotBegin(frame)
	if err != nil {
		return 0, err
	}
	var pairs []store.LogEntry
	var restored int64
	for {
		frame, kind, err := readFrame()
		if err != nil {
			return 0, fmt.Errorf("server: snapshot transfer: %w", err)
		}
		if kind == wire.KindReplSnapshotEnd {
			endLSN, err := wire.DecodeReplSnapshotEnd(frame)
			if err != nil {
				return 0, err
			}
			if endLSN != begin.SnapshotLSN {
				return 0, fmt.Errorf("server: snapshot end lsn %d, began at %d", endLSN, begin.SnapshotLSN)
			}
			break
		}
		if kind != wire.KindReplSnapshotChunk {
			return 0, fmt.Errorf("server: unexpected frame kind %#x inside snapshot", kind)
		}
		chunk, err := wire.DecodeReplSnapshotChunk(frame)
		if err != nil {
			return 0, err
		}
		for _, e := range chunk {
			pairs = append(pairs, store.LogEntry{Key: e.Key, Value: e.Value})
			restored += int64(len(e.Key) + len(e.Value))
		}
	}
	if uint64(len(pairs)) != begin.Pairs {
		return 0, fmt.Errorf("server: snapshot carried %d pairs, begin declared %d", len(pairs), begin.Pairs)
	}
	if err := db.RestoreSnapshot(pairs, begin.SnapshotLSN); err != nil {
		return 0, err
	}
	return restored, nil
}
