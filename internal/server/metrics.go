package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// metrics holds the serving-layer counters behind /metrics. Everything is
// atomic: handlers and the coalescer dispatcher bump them concurrently.
type metrics struct {
	requests      atomic.Uint64
	requestErrors atomic.Uint64

	ingestRequests atomic.Uint64
	ingestBinary   atomic.Uint64
	ingestEvents   atomic.Uint64
	ingestRejected atomic.Uint64

	ingestCommits     atomic.Uint64
	coalescedRequests atomic.Uint64
	maxCoalesced      atomic.Int64

	// Pipelined dispatcher instrumentation. pipelineDepth is a gauge of
	// waves in flight (preparing, prepared-waiting, committing; ≤ 2 by
	// construction). pipelineOverlap counts waves whose prepare FINISHED
	// while an earlier wave was still in flight — i.e. the stages measured
	// as genuinely concurrent, which requires the waves not to collide on
	// write-locked shards; a low ratio against ingestCommits means the
	// workload's waves serialize at the shard locks and the pipeline's win
	// is the single wave fsync. Both stay zero under the serialized
	// dispatcher.
	pipelineDepth   atomic.Int64
	pipelineOverlap atomic.Uint64

	// Streamed ingest (stream.go). streamConns gauges live stream
	// sessions; streamFrames counts ingest request frames received over
	// streams (a subset of ingestRequests).
	streamConns  atomic.Int64
	streamFrames atomic.Uint64

	// waveSeq mints the monotonically increasing wave IDs the coalescer
	// tags group commits with (1-based; 0 means "no wave").
	waveSeq atomic.Uint64

	// Cluster mode (cluster.go). clusterBounces counts requests answered
	// 421 because another node owns the user's slot; slotMoves counts
	// slots this node shipped or acquired through handoffs. Both stay
	// zero outside cluster mode but always render, so the metric key set
	// is deployment-independent.
	clusterBounces atomic.Uint64
	slotMoves      atomic.Uint64

	// replSnapshotBytes counts snapshot bytes this process moved for
	// replication: chunk frames shipped to bootstrapping followers on a
	// leader, or the restored bootstrap size on a follower (seeded from
	// Options.FollowerBootstrapBytes).
	replSnapshotBytes atomic.Int64

	// Stage-latency histograms and the wave-trace ring, built lazily so a
	// zero-value metrics (tests construct these directly) works without a
	// constructor.
	obsOnce sync.Once
	ob      *obsState
}

// stageNames is the fixed key set of the per-stage histograms, in pipeline
// order. "queue" is the wait between admission and gather; "wal_sync" and
// "compaction" arrive through the store observer; "repl_apply" is the
// follower-side wave apply (repl.go), zero on a leader.
var stageNames = []string{"decode", "queue", "gather", "prepare", "commit", "wal_sync", "compaction", "repl_apply"}

// endpointNames is the fixed key set of the per-endpoint latency
// histograms; the maps stay immutable after build so lookups are
// lock-free. The stream upgrade endpoint is deliberately absent: a
// hijacked connection's "request" lasts the whole session.
var endpointNames = []string{
	"register", "ingest", "question", "answer", "reward", "punish",
	"propensity", "sensibilities", "advice", "recommend", "select_top",
	"healthz", "readyz", "metrics", "debug_waves", "replication_status",
	"topology", "handoff",
}

// waveRingSize is how many wave traces /debug/waves retains.
const waveRingSize = 256

// obsState bundles the stage/endpoint histograms and the wave ring.
type obsState struct {
	stages    map[string]*obs.Histogram
	endpoints map[string]*obs.Histogram
	waves     *obs.WaveRing

	// waveSync maps in-flight wave ID → WAL-sync duration, fed by the
	// store observer during Commit and popped by the committer right
	// after. Commits are serialized, so the map holds at most a couple of
	// entries; the mutex is per-wave, not per-request.
	syncMu   sync.Mutex
	waveSync map[uint64]time.Duration
}

// obs returns the lazily built observability state.
func (m *metrics) obs() *obsState {
	m.obsOnce.Do(func() {
		st := &obsState{
			stages:    make(map[string]*obs.Histogram, len(stageNames)),
			endpoints: make(map[string]*obs.Histogram, len(endpointNames)),
			waves:     obs.NewWaveRing(waveRingSize),
			waveSync:  make(map[uint64]time.Duration),
		}
		for _, n := range stageNames {
			st.stages[n] = new(obs.Histogram)
		}
		for _, n := range endpointNames {
			st.endpoints[n] = new(obs.Histogram)
		}
		m.ob = st
	})
	return m.ob
}

// stage records one stage duration.
func (st *obsState) stage(name string, d time.Duration) {
	if h := st.stages[name]; h != nil {
		h.Observe(d)
	}
}

// noteWaveSync records a WAL sync, remembering tagged ones so the
// committer can attribute the duration to its wave's trace.
func (st *obsState) noteWaveSync(wave uint64, d time.Duration) {
	st.stage("wal_sync", d)
	if wave == 0 {
		return
	}
	st.syncMu.Lock()
	st.waveSync[wave] = d
	st.syncMu.Unlock()
}

// takeWaveSync pops the recorded WAL-sync duration for a wave (zero if the
// commit never synced — unsynced stores, empty waves).
func (st *obsState) takeWaveSync(wave uint64) time.Duration {
	st.syncMu.Lock()
	d := st.waveSync[wave]
	delete(st.waveSync, wave)
	st.syncMu.Unlock()
	return d
}

// storeObserver adapts the metrics histograms to the store.Observer seam.
type storeObserver struct{ m *metrics }

func (o storeObserver) WALSync(wave uint64, d time.Duration) {
	o.m.obs().noteWaveSync(wave, d)
}

func (o storeObserver) Compaction(d time.Duration, err error) {
	o.m.obs().stage("compaction", d)
}

// noteCommit records one dispatched group commit of n requests. Events are
// counted here — on the commit side of admission control — so rejected
// requests never inflate IngestEvents.
func (m *metrics) noteCommit(requests, events int) {
	m.ingestCommits.Add(1)
	m.ingestEvents.Add(uint64(events))
	m.coalescedRequests.Add(uint64(requests))
	for {
		cur := m.maxCoalesced.Load()
		if int64(requests) <= cur || m.maxCoalesced.CompareAndSwap(cur, int64(requests)) {
			return
		}
	}
}

// histDTO converts a histogram to its wire form, trimming trailing zero
// buckets.
func histDTO(h *obs.Histogram) wire.Histogram {
	s := h.Snapshot()
	last := -1
	for i, c := range s.Counts {
		if c != 0 {
			last = i
		}
	}
	out := wire.Histogram{Count: s.Count(), SumNanos: s.SumNanos}
	if last >= 0 {
		out.Counts = append([]uint64(nil), s.Counts[:last+1]...)
	}
	return out
}

// waveDTO converts a wave trace to its wire form.
func waveDTO(t obs.WaveTrace) wire.WaveTrace {
	return wire.WaveTrace{
		ID:              t.ID,
		StartUnixNano:   t.Start.UnixNano(),
		Requests:        t.Requests,
		Events:          t.Events,
		Shards:          t.Shards,
		QueueWaitNanos:  t.QueueWait.Nanoseconds(),
		GatherNanos:     t.Gather.Nanoseconds(),
		PrepareNanos:    t.Prepare.Nanoseconds(),
		CommitWaitNanos: t.CommitWait.Nanoseconds(),
		CommitNanos:     t.Commit.Nanoseconds(),
		WALSyncNanos:    t.WALSync.Nanoseconds(),
		TotalNanos:      t.Total().Nanoseconds(),
		Err:             t.Err,
	}
}
