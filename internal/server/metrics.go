package server

import "sync/atomic"

// metrics holds the serving-layer counters behind /metrics. Everything is
// atomic: handlers and the coalescer dispatcher bump them concurrently.
type metrics struct {
	requests      atomic.Uint64
	requestErrors atomic.Uint64

	ingestRequests atomic.Uint64
	ingestBinary   atomic.Uint64
	ingestEvents   atomic.Uint64
	ingestRejected atomic.Uint64

	ingestCommits     atomic.Uint64
	coalescedRequests atomic.Uint64
	maxCoalesced      atomic.Int64

	// Pipelined dispatcher instrumentation. pipelineDepth is a gauge of
	// waves in flight (preparing, prepared-waiting, committing; ≤ 2 by
	// construction). pipelineOverlap counts waves whose prepare FINISHED
	// while an earlier wave was still in flight — i.e. the stages measured
	// as genuinely concurrent, which requires the waves not to collide on
	// write-locked shards; a low ratio against ingestCommits means the
	// workload's waves serialize at the shard locks and the pipeline's win
	// is the single wave fsync. Both stay zero under the serialized
	// dispatcher.
	pipelineDepth   atomic.Int64
	pipelineOverlap atomic.Uint64

	// Streamed ingest (stream.go). streamConns gauges live stream
	// sessions; streamFrames counts ingest request frames received over
	// streams (a subset of ingestRequests).
	streamConns  atomic.Int64
	streamFrames atomic.Uint64
}

// noteCommit records one dispatched group commit of n requests. Events are
// counted here — on the commit side of admission control — so rejected
// requests never inflate IngestEvents.
func (m *metrics) noteCommit(requests, events int) {
	m.ingestCommits.Add(1)
	m.ingestEvents.Add(uint64(events))
	m.coalescedRequests.Add(uint64(requests))
	for {
		cur := m.maxCoalesced.Load()
		if int64(requests) <= cur || m.maxCoalesced.CompareAndSwap(cur, int64(requests)) {
			return
		}
	}
}
