package server

import "sync/atomic"

// metrics holds the serving-layer counters behind /metrics. Everything is
// atomic: handlers and the coalescer dispatcher bump them concurrently.
type metrics struct {
	requests      atomic.Uint64
	requestErrors atomic.Uint64

	ingestRequests atomic.Uint64
	ingestBinary   atomic.Uint64
	ingestEvents   atomic.Uint64
	ingestRejected atomic.Uint64

	ingestCommits     atomic.Uint64
	coalescedRequests atomic.Uint64
	maxCoalesced      atomic.Int64
}

// noteCommit records one dispatched group commit of n requests. Events are
// counted here — on the commit side of admission control — so rejected
// requests never inflate IngestEvents.
func (m *metrics) noteCommit(requests, events int) {
	m.ingestCommits.Add(1)
	m.ingestEvents.Add(uint64(events))
	m.coalescedRequests.Add(uint64(requests))
	for {
		cur := m.maxCoalesced.Load()
		if int64(requests) <= cur || m.maxCoalesced.CompareAndSwap(cur, int64(requests)) {
			return
		}
	}
}
