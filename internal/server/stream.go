package server

// Streamed binary ingest: one long-lived connection carrying a sequence of
// SPAB ingest-request frames (internal/wire stream.go), each answered by an
// in-order response or error frame. The transport is reached two ways —
// an HTTP upgrade on /v1/ingest/stream (the daemon's existing port) or a
// raw TCP listener (ServeStream, spad -stream-addr) — and both feed the
// same per-connection loop, which in turn feeds the same coalescer the
// per-request handlers use, so streamed and HTTP traffic merge into the
// same group commits.
//
// Flow control is credit-based instead of 503-based: the hello frame
// grants the client a send window, and one credit is returned with each
// answered frame. The reader enqueues into the coalescer with the BLOCKING
// path (enqueueWait) — when the pending queue is full the reader parks,
// responses (and their piggybacked credit) stop, the client's window
// closes, and the TCP receive buffer is the only slack left. That is the
// same admission control the HTTP path exerts, expressed as "stop sending"
// rather than "try again later".
//
// Responses stay in request order because two single-goroutine stages
// compose: the reader enqueues jobs into the coalescer and appends them to
// the session's pending FIFO in the same loop, and the responder answers
// the FIFO head-first, waiting on each job's done channel before touching
// the next. Drain mirrors the HTTP path's guarantee — no accepted frame is
// dropped: on Close the server sends a drain frame, keeps reading (frames
// already in flight on the wire are still accepted and committed), and the
// reader exits on the client's drain ack, EOF, or the drain deadline; the
// responder then flushes every outstanding answer before the connection
// closes.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lifelog"
	"repro/internal/wire"
)

const (
	// defaultStreamWindow is the per-stream credit grant: request frames a
	// client may have in flight. Deep enough to keep the coalescer fed,
	// shallow enough that one stream cannot monopolize the pending queue.
	defaultStreamWindow = 32
	// defaultStreamDrainWait bounds how long Close waits for a client to
	// acknowledge the drain frame before the read deadline cuts it off.
	defaultStreamDrainWait = 5 * time.Second
)

// streamPending is one awaited answer in a session's FIFO: a coalescer job
// whose outcome becomes a response frame, or a pre-built error frame for a
// request that never reached the coalescer.
type streamPending struct {
	job   *ingestJob
	frame []byte
}

// streamSession is one live streamed-ingest connection.
type streamSession struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// wmu serializes frame writes: the responder, the hello, and a
	// concurrent Close-initiated drain frame share the connection.
	wmu sync.Mutex

	pending chan streamPending
	done    chan struct{} // closed when serve returns; Close waits on it

	// outstanding counts request frames read but not yet answered. It
	// enforces the advertised credit window: the reader increments per
	// request frame, the responder decrements before writing the answer
	// (and its piggybacked credit), so for any credit a compliant client
	// holds the matching decrement has already happened — the count can
	// exceed the window only when the client sends beyond its credit.
	outstanding atomic.Int32

	// drainDeadline (unix nanos, nonzero once initiateDrain ran) lets the
	// farewell write cap itself at Close's drain deadline instead of
	// re-arming a fresh one, keeping shutdown within one streamDrainWait.
	drainDeadline atomic.Int64

	drainOnce sync.Once
}

// writeFrames writes the given frames as one flushed unit.
func (sess *streamSession) writeFrames(frames ...[]byte) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	for _, f := range frames {
		if err := wire.WriteStreamFrame(sess.bw, f); err != nil {
			return err
		}
	}
	return sess.bw.Flush()
}

// initiateDrain tells the client to stop sending and bounds how long the
// session may take to wind down — reads (waiting for the drain ack) AND
// writes (a client that stopped reading must not park the responder, and
// through it Close, on a full TCP send buffer). Idempotent.
//
// The deadline is armed BEFORE the drain frame is written: writeFrames
// takes wmu, and if the responder is already blocked in a write to a
// client that stopped reading, it holds wmu and only an armed deadline
// can interrupt it. Writing first would park this goroutine — and through
// it drainStreams and Server.Close — behind that stalled write forever.
func (sess *streamSession) initiateDrain(deadline time.Time) {
	sess.drainOnce.Do(func() {
		sess.drainDeadline.Store(deadline.UnixNano())
		sess.conn.SetDeadline(deadline)
		sess.writeFrames(wire.EncodeStreamDrain())
	})
}

// ServeStream accepts raw-TCP streamed-ingest connections from ln until
// the listener closes — the spad -stream-addr transport, the same protocol
// the HTTP upgrade negotiates minus the handshake. Transient accept
// failures (fd exhaustion, a connection aborted before accept) are retried
// with the same backoff net/http's Serve uses, so a brief resource spike
// cannot permanently kill the endpoint while the daemon keeps running.
func (s *Server) ServeStream(ln net.Listener) error {
	var delay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else {
					delay *= 2
				}
				if delay > time.Second {
					delay = time.Second
				}
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		go s.serveStream(conn, bufio.NewReader(conn), bufio.NewWriter(conn))
	}
}

// handleIngestStream upgrades an HTTP request into a stream session.
func (s *Server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	if s.noBinary {
		// 404, not 415: clients probe this endpoint and fall back to the
		// per-request path on "no such endpoint", same as on a pre-stream
		// daemon.
		s.writeError(w, http.StatusNotFound,
			errors.New("streamed ingest disabled; use per-request /v1/ingest"))
		return
	}
	if !strings.EqualFold(r.Header.Get("Upgrade"), wire.StreamProtocol) ||
		!strings.Contains(strings.ToLower(r.Header.Get("Connection")), "upgrade") {
		w.Header().Set("Upgrade", wire.StreamProtocol)
		s.writeError(w, http.StatusUpgradeRequired,
			fmt.Errorf("use Connection: Upgrade with Upgrade: %s", wire.StreamProtocol))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("connection cannot be hijacked"))
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	// The 101 goes through the hijacked buffer so any pipelined client
	// bytes already read stay ahead of the stream reader.
	buf.Writer.WriteString("HTTP/1.1 101 Switching Protocols\r\nUpgrade: " +
		wire.StreamProtocol + "\r\nConnection: Upgrade\r\n\r\n")
	if err := buf.Writer.Flush(); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{}) // the server's header timeouts no longer apply
	s.serveStream(conn, buf.Reader, buf.Writer)
}

// serveStream runs one connection's session to completion.
func (s *Server) serveStream(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	if s.noBinary {
		// Streams are binary-only, and DisableBinary promises JSON-only
		// traffic; the raw TCP path must refuse like the upgrade path does
		// (the HTTP handler 404s before ever reaching here).
		s.met.requestErrors.Add(1)
		wire.WriteStreamFrame(bw, wire.EncodeStreamError(http.StatusNotImplemented,
			"streamed ingest disabled; use per-request /v1/ingest"))
		bw.Flush()
		conn.Close()
		return
	}
	if s.followerOf != "" {
		// Streamed ingest is a write path; a follower refuses it with the
		// same status the HTTP write handlers answer, naming the leader.
		s.met.requestErrors.Add(1)
		wire.WriteStreamFrame(bw, wire.EncodeStreamError(http.StatusMisdirectedRequest,
			"this instance is a read-only follower; write to the leader at "+s.followerOf))
		bw.Flush()
		conn.Close()
		return
	}
	sess := &streamSession{
		srv:     s,
		conn:    conn,
		br:      br,
		bw:      bw,
		pending: make(chan streamPending, s.streamWindow),
		done:    make(chan struct{}),
	}
	if !s.registerStream(sess) {
		s.met.requestErrors.Add(1)
		sess.writeFrames(wire.EncodeStreamError(http.StatusServiceUnavailable, "server draining"))
		conn.Close()
		return
	}
	s.met.streamConns.Add(1)
	defer func() {
		s.met.streamConns.Add(-1)
		s.unregisterStream(sess)
		conn.Close()
		close(sess.done)
	}()

	if err := sess.writeFrames(wire.EncodeStreamHello(wire.StreamHello{
		Credit:        s.streamWindow,
		MaxFrameBytes: s.maxBody,
	})); err != nil {
		close(sess.pending)
		return
	}

	respDone := make(chan struct{})
	go sess.respond(respDone)

	// terminal, when set, is a stream-level refusal written after every
	// outstanding request has been answered — answers never reorder.
	var terminal []byte
loop:
	for {
		frame, err := wire.ReadStreamFrame(br, s.maxBody)
		if err != nil {
			// EOF at a frame boundary is the client hanging up (its
			// enqueued frames still commit; nobody reads the answers).
			// Frame-level garbage is terminal: past a framing error the
			// byte stream cannot be trusted.
			if errors.Is(err, wire.ErrBadFrame) {
				terminal = wire.EncodeStreamError(http.StatusBadRequest, err.Error())
			}
			break
		}
		kind, err := wire.FrameKind(frame)
		if err != nil {
			terminal = wire.EncodeStreamError(http.StatusBadRequest, err.Error())
			break
		}
		switch kind {
		case wire.KindIngestRequest:
			if int(sess.outstanding.Add(1)) > s.streamWindow {
				// The client sent past its credit: the window is a protocol
				// promise, not advice, or one stream could monopolize the
				// pending queue the window exists to share.
				terminal = wire.EncodeStreamError(http.StatusBadRequest,
					fmt.Sprintf("credit window exceeded: more than %d request frames outstanding", s.streamWindow))
				break loop
			}
			s.met.requests.Add(1)
			s.met.ingestRequests.Add(1)
			s.met.streamFrames.Add(1)
			decodeStart := time.Now()
			wevents, err := wire.DecodeIngestRequest(frame)
			if err != nil {
				// The frame boundary was sound, so only this request is
				// poisoned: answer it in order and keep reading.
				sess.pending <- streamPending{frame: wire.EncodeStreamError(
					http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))}
				continue
			}
			events := wire.ToEvents(wevents)
			s.met.obs().stage("decode", time.Since(decodeStart))
			// Cluster ownership check. Unlike the HTTP path the guard is
			// released after ENQUEUE, not commit — the responder, not this
			// reader, waits out the commit, and blocking the reader on it
			// would serialize the stream. A handoff fence closes that gap
			// with a coalescer sentinel flush (handoff.go) that drains
			// everything enqueued before the barrier.
			release, refuse := s.admitStreamWrite(events)
			if refuse != nil {
				sess.pending <- streamPending{frame: refuse}
				continue
			}
			job := &ingestJob{events: events, done: make(chan ingestDone, 1)}
			if s.co == nil {
				out := s.spa.MultiIngest([][]lifelog.Event{events})[0]
				s.met.noteCommit(1, len(events))
				job.done <- ingestDone{outcome: out, merged: 1}
			} else if err := s.co.enqueueWait(context.Background(), job); err != nil {
				release()
				sess.pending <- streamPending{frame: wire.EncodeStreamError(
					http.StatusServiceUnavailable, err.Error())}
				continue
			}
			release()
			sess.pending <- streamPending{job: job}
		case wire.KindStreamDrain:
			// Client is done sending; answer what we have and close.
			break loop
		default:
			terminal = wire.EncodeStreamError(http.StatusBadRequest,
				fmt.Sprintf("unexpected frame kind %#x", kind))
			break loop
		}
	}
	close(sess.pending)
	<-respDone
	// The session is over; bound the farewell write. A peer that stopped
	// reading — the credit violator the terminal frame answers, or a client
	// that hung up mid-drain — must not pin this goroutine (and its
	// s.streams entry) on a full send buffer until Server.Close. If Close
	// already armed the drain deadline, keep the earlier of the two so
	// shutdown never stretches past its documented bound.
	farewell := time.Now().Add(sess.srv.streamDrainWait)
	if dd := sess.drainDeadline.Load(); dd != 0 {
		if d := time.Unix(0, dd); d.Before(farewell) {
			farewell = d
		}
	}
	sess.conn.SetDeadline(farewell)
	if terminal != nil {
		// Counted like every HTTP-path error: a terminated stream client
		// must not be invisible to request_errors alerting.
		s.met.requestErrors.Add(1)
		sess.writeFrames(terminal)
		return
	}
	// Good-bye drain: every accepted frame has been answered.
	sess.writeFrames(wire.EncodeStreamDrain())
}

// respond is the session's single answer stage: it resolves the pending
// FIFO head-first, so answers carry exactly the arrival order of their
// requests, and returns one credit with each answer. Write failures do not
// stop the loop — the jobs behind a dead connection still hold committed
// outcomes that must be consumed.
func (sess *streamSession) respond(done chan struct{}) {
	defer close(done)
	for p := range sess.pending {
		frame := p.frame
		if p.job != nil {
			d := <-p.job.done
			if err := d.outcome.Err; err != nil {
				frame = wire.EncodeStreamError(domainStatus(err), err.Error())
			} else {
				frame = wire.EncodeIngestResponse(wire.IngestResponse{
					Processed:      d.outcome.Processed,
					SkippedUnknown: d.outcome.SkippedUnknown,
					CoalescedWith:  d.merged,
				})
			}
		}
		if kind, err := wire.FrameKind(frame); err == nil && kind == wire.KindStreamError {
			sess.srv.met.requestErrors.Add(1)
		}
		// Decrement before the credit goes on the wire: a compliant client
		// sends its next frame only after reading this credit, so the
		// reader's window check can never trip on a frame this credit paid
		// for.
		sess.outstanding.Add(-1)
		sess.writeFrames(frame, wire.EncodeStreamCredit(1))
	}
}

// registerStream admits a new session unless the server is draining.
func (s *Server) registerStream(sess *streamSession) bool {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.streamsDraining {
		return false
	}
	if s.streams == nil {
		s.streams = make(map[*streamSession]struct{})
	}
	s.streams[sess] = struct{}{}
	return true
}

func (s *Server) unregisterStream(sess *streamSession) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	delete(s.streams, sess)
}

// drainStreams runs the stream half of Close: refuse new sessions, tell
// every live one to drain, and wait for them to finish. It runs BEFORE the
// coalescer closes — stream readers are coalescer producers, and the
// no-loss drain argument needs every producer stopped before the
// dispatcher's final sweep.
func (s *Server) drainStreams() {
	s.streamMu.Lock()
	s.streamsDraining = true
	sessions := make([]*streamSession, 0, len(s.streams))
	for sess := range s.streams {
		sessions = append(sessions, sess)
	}
	s.streamMu.Unlock()
	deadline := time.Now().Add(s.streamDrainWait)
	// Arm every session concurrently: initiateDrain can block up to the
	// whole drain window behind one responder parked mid-write (it shares
	// that session's wmu), and arming sequentially would let one stalled
	// session spend the shared deadline before healthy sessions even get
	// theirs — failing their in-flight frames instantly instead of
	// granting the documented drain grace.
	for _, sess := range sessions {
		go sess.initiateDrain(deadline)
	}
	for _, sess := range sessions {
		<-sess.done
	}
}
