package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/store"
	"repro/internal/wire"
)

// testServer boots a full HTTP server around a fresh in-memory core.
func testServer(t *testing.T, copts core.Options, sopts Options) (*httptest.Server, *core.SPA) {
	t.Helper()
	if copts.Clock == nil {
		copts.Clock = clock.NewSimulated(t0.Add(24 * time.Hour))
	}
	spa, err := core.New(copts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(spa, sopts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		spa.Close()
	})
	return ts, spa
}

func doJSON(t *testing.T, method, url string, in any, out any) (int, http.Header) {
	t.Helper()
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestAPILifecycle(t *testing.T) {
	ts, _ := testServer(t, core.Options{Shards: 4}, Options{})

	// Register; duplicate is a conflict.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: 1, Objective: []float64{30, 1}}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: 1}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate register: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("zero user id: %d", code)
	}

	// Ingest: two known-user events, one unknown.
	events := []lifelog.Event{
		{UserID: 1, Time: t0, Type: lifelog.EventClick, Action: 7},
		{UserID: 1, Time: t0.Add(time.Second), Type: lifelog.EventEnroll, Action: 7},
		{UserID: 9, Time: t0, Type: lifelog.EventClick, Action: 3},
	}
	var ing wire.IngestResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(events)}, &ing); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	if ing.Processed != 2 || ing.SkippedUnknown != 1 || ing.CoalescedWith < 1 {
		t.Fatalf("ingest response: %+v", ing)
	}

	// Malformed stream → the submitter's own 400.
	bad := []lifelog.Event{
		{UserID: 1, Time: t0.Add(time.Hour), Type: lifelog.EventClick, Action: 1},
		{UserID: 1, Time: t0, Type: lifelog.EventClick, Action: 2},
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(bad)}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed ingest: %d", code)
	}

	// EIT loop.
	var q wire.Question
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/1/question", nil, &q); code != http.StatusOK {
		t.Fatalf("question: %d", code)
	}
	if q.Prompt == "" || len(q.Options) == 0 {
		t.Fatalf("question: %+v", q)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users/1/answer", wire.AnswerRequest{ItemID: q.ID, Option: 0}, nil); code != http.StatusOK {
		t.Fatalf("answer: %d", code)
	}

	// Reinforcement; unknown attribute names are the client's fault.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users/1/reward", wire.AttributesRequest{Attributes: []string{"lively"}}, nil); code != http.StatusOK {
		t.Fatalf("reward: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users/1/punish", wire.AttributesRequest{Attributes: []string{"bored"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("punish with bad attribute: %d", code)
	}

	// Reads.
	var sens wire.SensibilitiesResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/1/sensibilities", nil, &sens); code != http.StatusOK {
		t.Fatalf("sensibilities: %d", code)
	}
	if len(sens.Sensibilities) != 10 {
		t.Fatalf("sensibilities: %d attributes", len(sens.Sensibilities))
	}
	var adv wire.AdviceResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/1/advice?domain=training", nil, &adv); code != http.StatusOK {
		t.Fatalf("advice: %d", code)
	}
	// CF needs a neighbour: user 2 shares action 7 and adds action 3, so
	// user 1 has an unseen action to be recommended.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: 2}, nil); code != http.StatusCreated {
		t.Fatal("register user 2 failed")
	}
	neighbour := []lifelog.Event{
		{UserID: 2, Time: t0, Type: lifelog.EventClick, Action: 7},
		{UserID: 2, Time: t0.Add(time.Second), Type: lifelog.EventEnroll, Action: 3},
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(neighbour)}, nil); code != http.StatusOK {
		t.Fatal("neighbour ingest failed")
	}
	var recs wire.RecommendResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/1/recommendations?n=3", nil, &recs); code != http.StatusOK {
		t.Fatalf("recommendations: %d", code)
	}
	if len(recs.Recommendations) == 0 {
		t.Fatal("no recommendations after enroll interaction")
	}

	// Propensity before training is a conflict, not a crash.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/1/propensity", nil, nil); code != http.StatusConflict {
		t.Fatalf("propensity untrained: %d", code)
	}

	// Unknown users 404 on every per-user route.
	for _, route := range []string{"question", "sensibilities", "advice", "recommendations", "propensity"} {
		code, _ := doJSON(t, "GET", ts.URL+"/v1/users/77/"+route, nil, nil)
		if code != http.StatusNotFound && !(route == "propensity" && code == http.StatusConflict) {
			t.Fatalf("%s for unknown user: %d", route, code)
		}
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/zero/question", nil, nil); code != http.StatusBadRequest {
		t.Fatal("non-numeric user id accepted")
	}

	// select-top needs a model; bad k is a 400 regardless.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/select-top?k=x", nil, nil); code != http.StatusBadRequest {
		t.Fatal("bad k accepted")
	}

	// Oversized bodies are refused before they buffer (413, not 400/OOM):
	// a syntactically valid event list past the default 8 MiB cap.
	one := []byte(`{"user_id":1,"time_unix_nano":1,"type":1,"action":5},`)
	var hugeBody bytes.Buffer
	hugeBody.WriteString(`{"events":[`)
	for hugeBody.Len() < 9<<20 {
		hugeBody.Write(one)
	}
	hugeBody.Truncate(hugeBody.Len() - 1)
	hugeBody.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", &hugeBody)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d", resp.StatusCode)
	}

	// Health.
	var h wire.Health
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" || h.Users != 2 {
		t.Fatalf("health: %+v", h)
	}
}

// TestConcurrentClientsEndToEnd is the HTTP-level stress pass: concurrent
// clients ingest disjoint user streams through the full stack (server,
// coalescer, sharded core, group commit) with sync writes on; afterwards
// every event must be accounted for and the metrics must show coalescing.
func TestConcurrentClientsEndToEnd(t *testing.T) {
	const (
		clients     = 8
		requestsPer = 15
		perRequest  = 6
	)
	ts, spa := testServer(t,
		core.Options{DataDir: t.TempDir(), Shards: 8, Store: store.Options{SyncWrites: true}},
		Options{})

	for cl := 0; cl < clients; cl++ {
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: uint64(cl + 1)}, nil); code != http.StatusCreated {
			t.Fatalf("register client %d: %d", cl, code)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			user := uint64(cl + 1)
			seq := 0
			for r := 0; r < requestsPer; r++ {
				var events []lifelog.Event
				for e := 0; e < perRequest; e++ {
					seq++
					events = append(events, evAt(user, seq))
				}
				var resp wire.IngestResponse
				code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(events)}, &resp)
				if code != http.StatusOK {
					errCh <- fmt.Errorf("client %d request %d: status %d", cl, r, code)
					return
				}
				if resp.Processed != perRequest {
					errCh <- fmt.Errorf("client %d request %d: processed %d", cl, r, resp.Processed)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	wantEvents := uint64(clients * requestsPer * perRequest)
	if m.IngestEvents != wantEvents || m.IngestRequests != clients*requestsPer {
		t.Fatalf("metrics accounting: %+v", m)
	}
	if m.IngestCommits == 0 || m.CoalescedRequests != m.IngestRequests {
		t.Fatalf("commit accounting: %+v", m)
	}
	if !m.Durable {
		t.Fatal("metrics claim non-durable for a DataDir-backed core")
	}
	if spa.Users() != clients {
		t.Fatalf("users: %d", spa.Users())
	}
}

// TestIngestBackpressureHTTP: a full pending queue must surface as
// 503 + Retry-After on the wire.
func TestIngestBackpressureHTTP(t *testing.T) {
	ts, _ := testServer(t, core.Options{Shards: 1}, Options{QueueDepth: 1, MaxBatch: 1})

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: 1}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	const submitters = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	saw503 := false
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			events := []lifelog.Event{evAt(1, i+1)}
			code, hdr := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(events)}, nil)
			if code == http.StatusServiceUnavailable {
				mu.Lock()
				saw503 = true
				mu.Unlock()
				if hdr.Get("Retry-After") == "" {
					t.Error("503 without Retry-After")
				}
			}
		}(i)
	}
	wg.Wait()
	if !saw503 {
		t.Skip("queue never filled on this machine — backpressure path not exercised")
	}
}

// TestServerDrainOnClose: requests accepted before Close complete; the
// coalescer refuses new work afterwards.
func TestServerDrainOnClose(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 2, Clock: clock.NewSimulated(t0.Add(24 * time.Hour))})
	if err != nil {
		t.Fatal(err)
	}
	defer spa.Close()
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := New(spa, Options{})
	out, merged, err := srv.co.submit(context.Background(), []lifelog.Event{evAt(1, 1)})
	if err != nil || out.Err != nil || merged != 1 {
		t.Fatalf("pre-close submit: %+v %d %v", out, merged, err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, _, err := srv.co.submit(context.Background(), []lifelog.Event{evAt(1, 2)}); err == nil {
		t.Fatal("submit accepted after Close")
	}
}

// TestPipelinedServerEndToEnd: Options.Pipeline serves the same wire
// contract over HTTP — concurrent durable ingests succeed, outcomes are
// attributed, and /metrics exposes the pipeline gauges.
func TestPipelinedServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ts, spa := testServer(t,
		core.Options{DataDir: dir, Shards: 4, Store: store.Options{SyncWrites: true}},
		Options{Pipeline: true, MaxDelay: time.Millisecond})
	const users = 8
	for u := uint64(1); u <= users; u++ {
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/users", wire.RegisterRequest{UserID: u}, nil); code != http.StatusCreated {
			t.Fatalf("register %d: %d", u, code)
		}
	}
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, users)
	for u := uint64(1); u <= users; u++ {
		wg.Add(1)
		go func(u uint64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var resp wire.IngestResponse
				req := wire.IngestRequest{Events: []wire.Event{
					{UserID: u, TimeUnixNano: t0.Add(time.Duration(r) * time.Minute).UnixNano(), Type: uint8(lifelog.EventClick), Action: 7},
				}}
				code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", req, &resp)
				if code != http.StatusOK || resp.Processed != 1 {
					errs <- fmt.Errorf("user %d round %d: code %d resp %+v", u, r, code, resp)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.IngestEvents != users*rounds || m.IngestCommits == 0 {
		t.Fatalf("metrics accounting: %+v", m)
	}
	if m.PipelineDepth != 0 {
		t.Fatalf("pipeline depth %d after quiesce", m.PipelineDepth)
	}
	// Every profile must be durable: reopen and compare.
	for u := uint64(1); u <= users; u++ {
		if _, err := spa.Profile(u); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDecodeRejectsTrailingData: one JSON value per body. A second
// concatenated value used to be silently dropped — the server acknowledged
// a request it had only half-read. Regression across the three mutating
// JSON endpoints.
func TestDecodeRejectsTrailingData(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct{ path, body string }{
		{"/v1/users", `{"user_id":2}{"user_id":3}`},
		{"/v1/ingest", `{"events":[{"user_id":1,"time_unix_nano":1,"type":1,"action":5}]}{"events":[]}`},
		{"/v1/users/1/answer", `{"item_id":1,"option":0}["trailing"]`},
		{"/v1/ingest", `{"events":[]}garbage`},
	}
	for _, c := range cases {
		if code := post(c.path, c.body); code != http.StatusBadRequest {
			t.Errorf("%s with trailing data: %d, want 400", c.path, code)
		}
	}
	// Nothing from the trailing values may have been applied.
	if got := spa.Users(); got != 1 {
		t.Fatalf("trailing register applied: %d users", got)
	}
	// Trailing whitespace is not trailing data.
	if code := post("/v1/users", `{"user_id":4}`+"\n\t "); code != http.StatusCreated {
		t.Fatalf("trailing whitespace rejected: %d", code)
	}
}

// TestRecommendErrorMapping: handleRecommend routes every failure through
// the domain mapping. Cold starts stay 409, but infrastructure failures
// must not masquerade as "retry after ingest" — store.ErrClosed is 503,
// unknown internal errors 500 (previously both answered 409).
func TestRecommendErrorMapping(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	// No interactions ingested yet: a retryable client-side condition.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/1/recommendations?n=3", nil, nil); code != http.StatusConflict {
		t.Fatalf("no-interactions: %d, want 409", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/9/recommendations?n=3", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown user: %d, want 404", code)
	}
	// The mapping itself: the statuses every endpoint (now including
	// recommend) answers for the facade's error vocabulary.
	for _, c := range []struct {
		err  error
		want int
	}{
		{core.ErrNoInteractions, http.StatusConflict},
		{store.ErrClosed, http.StatusServiceUnavailable},
		{fmt.Errorf("wrapped: %w", store.ErrClosed), http.StatusServiceUnavailable},
		{errors.New("disk exploded"), http.StatusInternalServerError},
		{core.ErrNoProfile, http.StatusNotFound},
		{core.ErrNoModel, http.StatusConflict},
	} {
		if got := domainStatus(c.err); got != c.want {
			t.Errorf("domainStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
