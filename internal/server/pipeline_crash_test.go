package server

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/store"
	"repro/internal/sum"
)

// TestPipelinedCrashOrdering is the crash half of the pipelining ordering
// argument, end-to-end: two successive waves flow through the pipelined
// dispatcher into a real durable core; the store dies between the commits;
// WAL replay after the "crash" must never surface wave N+1's same-shard
// state without wave N's. Here that means: wave N is fully recovered, wave
// N+1 — whose commit the dead device rejected — is absent, and the live
// process's shard memory agrees with the durable state for both waves.
func TestPipelinedCrashOrdering(t *testing.T) {
	const users = 8
	fo := &store.KillableFileOps{}
	dir := t.TempDir()
	spa, err := core.New(core.Options{
		DataDir: dir,
		Store:   store.Options{SyncWrites: true, DisableAutoCompaction: true, FileOps: fo},
		Shards:  4,
		Clock:   clock.NewSimulated(t0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer spa.Close()
	for u := uint64(1); u <= users; u++ {
		if err := spa.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	c := newCoalescer(spa, spaPreparer{spa: spa}, nil, 64, 64, time.Millisecond, 0, nil)
	defer c.close()

	submitWave := func(seq int) []error {
		var wg sync.WaitGroup
		errs := make([]error, users)
		for u := uint64(1); u <= users; u++ {
			wg.Add(1)
			go func(u uint64) {
				defer wg.Done()
				out, _, err := c.submit(context.Background(),
					[]lifelog.Event{evAt(u, seq), evAt(u, seq+1)})
				if err == nil {
					err = out.Err
				}
				errs[u-1] = err
			}(u)
		}
		wg.Wait()
		return errs
	}

	// Wave N commits while the device is healthy.
	for u, err := range submitWave(1) {
		if err != nil {
			t.Fatalf("wave N user %d: %v", u+1, err)
		}
	}
	waveN := map[uint64][]byte{}
	for u := uint64(1); u <= users; u++ {
		p, err := spa.Profile(u)
		if err != nil {
			t.Fatal(err)
		}
		waveN[u] = sum.Encode(&p)
	}

	// The device dies between the two commits; wave N+1 must fail...
	fo.Kill()
	for u, err := range submitWave(10) {
		if err == nil {
			t.Fatalf("wave N+1 user %d: commit on a dead device reported success", u+1)
		}
	}
	// ...and the failed wave must not be visible in shard memory either.
	for u := uint64(1); u <= users; u++ {
		p, err := spa.Profile(u)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sum.Encode(&p), waveN[u]) {
			t.Fatalf("user %d: failed wave N+1 leaked into shard memory", u)
		}
	}

	// Crash: reopen the directory without closing (the dead process still
	// holds its file handles; replay sees only what reached the log).
	spa2, err := core.New(core.Options{DataDir: dir, Shards: 4, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer spa2.Close()
	for u := uint64(1); u <= users; u++ {
		p, err := spa2.Profile(u)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sum.Encode(&p), waveN[u]) {
			t.Fatalf("user %d: replay diverged from wave N (wave N+1 surfacing without it, or wave N lost)", u)
		}
	}
}
