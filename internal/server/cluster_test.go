package server

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/lifelog"
	"repro/internal/wire"
)

// clusterNode is one in-process cluster member with its advertised address
// known before the server started (the peer map needs every address up
// front, so the listener is bound first).
type clusterNode struct {
	id   string
	addr string
	ts   *httptest.Server
	spa  *core.SPA
	srv  *Server
}

func (n *clusterNode) url() string { return "http://" + n.addr }

// startCluster boots n nodes that all know each other's addresses. Each
// node gets its own durable core when durable is set; the shared simulated
// clock keeps profiles byte-comparable across nodes.
func startCluster(t *testing.T, ids []string, durable bool) map[string]*clusterNode {
	t.Helper()
	clk := clock.NewSimulated(t0.Add(24 * time.Hour))
	nodes := make(map[string]*clusterNode, len(ids))
	peers := make(map[string]string, len(ids))
	listeners := make(map[string]net.Listener, len(ids))
	for _, id := range ids {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[id] = l
		peers[id] = l.Addr().String()
	}
	for _, id := range ids {
		copts := core.Options{Shards: 4, Clock: clk}
		if durable {
			copts.DataDir = t.TempDir()
		}
		spa, err := core.New(copts)
		if err != nil {
			t.Fatal(err)
		}
		srv := New(spa, Options{
			ClusterNodeID: id,
			ClusterAddr:   peers[id],
			ClusterPeers:  peers,
			ClusterDir:    copts.DataDir,
		})
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = listeners[id]
		ts.Start()
		nodes[id] = &clusterNode{id: id, addr: peers[id], ts: ts, spa: spa, srv: srv}
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
			spa.Close()
		})
	}
	return nodes
}

func fetchTopology(t *testing.T, url string) wire.Topology {
	t.Helper()
	var topo wire.Topology
	if code, _ := doJSON(t, "GET", url+wire.TopologyPath, nil, &topo); code != http.StatusOK {
		t.Fatalf("topology: %d", code)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("served topology invalid: %v", err)
	}
	return topo
}

// usersOwnedBy picks count user ids whose slots the given node owns under
// the topology, scanning upward from a base id.
func usersOwnedBy(topo wire.Topology, node string, base uint64, count int) []uint64 {
	var ids []uint64
	for id := base; len(ids) < count; id++ {
		if topo.Slots[keyspace.Partition(id)] == node {
			ids = append(ids, id)
		}
	}
	return ids
}

func registerAndIngest(t *testing.T, url string, id uint64) {
	t.Helper()
	if code, _ := doJSON(t, "POST", url+"/v1/users",
		wire.RegisterRequest{UserID: id, Objective: []float64{30, 1}}, nil); code != http.StatusCreated {
		t.Fatalf("register %d: %d", id, code)
	}
	ev := []lifelog.Event{
		{UserID: id, Time: t0, Type: lifelog.EventClick, Action: uint32(id % lifelog.ActionUniverse)},
		{UserID: id, Time: t0.Add(time.Second), Type: lifelog.EventEnroll, Action: uint32(id % lifelog.ActionUniverse)},
	}
	if code, _ := doJSON(t, "POST", url+"/v1/ingest",
		wire.IngestRequest{Events: wire.FromEvents(ev)}, nil); code != http.StatusOK {
		t.Fatalf("ingest %d: %d", id, code)
	}
}

func TestClusterTopologyAndOwnershipBounce(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, false)
	a, b := nodes["a"], nodes["b"]

	// Both nodes serve the same deterministic epoch-1 map, split evenly.
	topoA := fetchTopology(t, a.url())
	topoB := fetchTopology(t, b.url())
	if topoA.Epoch != 1 || topoB.Epoch != 1 {
		t.Fatalf("epochs %d/%d, want 1/1", topoA.Epoch, topoB.Epoch)
	}
	if topoA.NodeID != "a" || topoB.NodeID != "b" {
		t.Fatalf("node ids %q/%q", topoA.NodeID, topoB.NodeID)
	}
	counts := map[string]int{}
	for i, owner := range topoA.Slots {
		if owner != topoB.Slots[i] {
			t.Fatalf("slot %d: %q on a, %q on b", i, owner, topoB.Slots[i])
		}
		counts[owner]++
	}
	if counts["a"] != keyspace.NumSlots/2 || counts["b"] != keyspace.NumSlots/2 {
		t.Fatalf("slot split %v", counts)
	}

	aUser := usersOwnedBy(topoA, "a", 1, 1)[0]
	bUser := usersOwnedBy(topoA, "b", 1, 1)[0]

	// Owned writes and reads work on the owner.
	registerAndIngest(t, a.url(), aUser)
	if code, _ := doJSON(t, "GET", a.url()+"/v1/users/"+strconv.FormatUint(aUser, 10)+"/sensibilities", nil, nil); code != http.StatusOK {
		t.Fatalf("owned read: %d", code)
	}

	// Mis-owned writes and reads bounce 421 naming the owner.
	for _, probe := range []struct {
		method, path string
		body         any
	}{
		{"POST", "/v1/users", wire.RegisterRequest{UserID: bUser, Objective: []float64{30, 1}}},
		{"POST", "/v1/ingest", wire.IngestRequest{Events: wire.FromEvents([]lifelog.Event{
			{UserID: bUser, Time: t0, Type: lifelog.EventClick, Action: 1}})}},
		{"POST", "/v1/users/" + strconv.FormatUint(bUser, 10) + "/reward", wire.AttributesRequest{}},
		{"GET", "/v1/users/" + strconv.FormatUint(bUser, 10) + "/propensity", nil},
		{"GET", "/v1/users/" + strconv.FormatUint(bUser, 10) + "/recommendations", nil},
	} {
		code, hdr := doJSON(t, probe.method, a.url()+probe.path, probe.body, nil)
		if code != http.StatusMisdirectedRequest {
			t.Fatalf("%s %s: %d, want 421", probe.method, probe.path, code)
		}
		if got := hdr.Get("X-SPA-Owner"); got != b.addr {
			t.Fatalf("%s %s X-SPA-Owner %q, want %q", probe.method, probe.path, got, b.addr)
		}
		if got := hdr.Get("X-SPA-Epoch"); got != "1" {
			t.Fatalf("%s %s X-SPA-Epoch %q, want 1", probe.method, probe.path, got)
		}
	}

	// Status reports the cluster identity; metrics carry the bounce count
	// in both formats.
	st := replStatus(t, a.url())
	if st.NodeID != "a" || st.TopologyEpoch != 1 {
		t.Fatalf("status node %q epoch %d", st.NodeID, st.TopologyEpoch)
	}
	var m wire.Metrics
	if code, _ := doJSON(t, "GET", a.url()+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.ClusterEpoch != 1 || m.ClusterSlotsOwned != keyspace.NumSlots/2 || m.ClusterBounces == 0 {
		t.Fatalf("cluster metrics: epoch %d owned %d bounces %d", m.ClusterEpoch, m.ClusterSlotsOwned, m.ClusterBounces)
	}
	_, promText := fetchProm(t, a.url())
	for _, series := range []string{"spad_cluster_epoch", "spad_cluster_slots_owned", "spad_cluster_bounces_total", "spad_slot_moves_total"} {
		if !strings.Contains(promText, series) {
			t.Fatalf("prometheus exposition missing %s", series)
		}
	}
}

// TestClusterMetricsRenderZeroOutsideClusterMode pins the satellite
// contract: the cluster series exist — as zeros — on standalone daemons,
// so the stable metric key set is deployment-independent.
func TestClusterMetricsRenderZeroOutsideClusterMode(t *testing.T) {
	ts, _ := testServer(t, core.Options{Shards: 2}, Options{})
	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.ClusterEpoch != 0 || m.ClusterSlotsOwned != 0 || m.ClusterBounces != 0 || m.SlotMoves != 0 {
		t.Fatalf("standalone cluster metrics nonzero: %+v", m)
	}
	if code, _ := doJSON(t, "GET", ts.URL+wire.TopologyPath, nil, nil); code != http.StatusNotImplemented {
		t.Fatalf("topology on standalone: %d, want 501", code)
	}
}

func TestClusterHandoffMovesSlotsOverHTTP(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, true)
	a, b := nodes["a"], nodes["b"]
	topo := fetchTopology(t, a.url())

	aUsers := usersOwnedBy(topo, "a", 1, 8)
	bUsers := usersOwnedBy(topo, "b", 1, 8)
	for _, id := range aUsers {
		registerAndIngest(t, a.url(), id)
	}
	for _, id := range bUsers {
		registerAndIngest(t, b.url(), id)
	}

	// Capture what the owner serves before the move; the target must serve
	// it byte-identically after.
	before := make(map[uint64]string, len(aUsers))
	for _, id := range aUsers {
		before[id] = getBody(t, a.url()+"/v1/users/"+strconv.FormatUint(id, 10)+"/sensibilities")
	}

	// The target pulls every slot node a owns.
	var resp wire.HandoffResponse
	if code, _ := doJSON(t, "POST", b.url()+wire.HandoffPath,
		wire.HandoffRequest{FromNode: "a"}, &resp); code != http.StatusOK {
		t.Fatalf("handoff: %d", code)
	}
	if resp.Moved != keyspace.NumSlots/2 || resp.Epoch != 2 {
		t.Fatalf("handoff response %+v, want 128 moved at epoch 2", resp)
	}

	// Both nodes now serve the epoch-2 map with b owning everything.
	for _, n := range []*clusterNode{a, b} {
		got := fetchTopology(t, n.url())
		if got.Epoch != 2 {
			t.Fatalf("node %s epoch %d after handoff", n.id, got.Epoch)
		}
		for slot, owner := range got.Slots {
			if owner != "b" {
				t.Fatalf("node %s: slot %d still owned by %q", n.id, slot, owner)
			}
		}
	}

	// Moved users read identically from the new owner; the old owner
	// bounces them to b.
	for _, id := range aUsers {
		path := "/v1/users/" + strconv.FormatUint(id, 10) + "/sensibilities"
		if got := getBody(t, b.url()+path); got != before[id] {
			t.Fatalf("user %d diverged after handoff:\nbefore %s\nafter  %s", id, before[id], got)
		}
		code, hdr := doJSON(t, "GET", a.url()+path, nil, nil)
		if code != http.StatusMisdirectedRequest {
			t.Fatalf("moved user %d on a: %d, want 421", id, code)
		}
		if got := hdr.Get("X-SPA-Owner"); got != b.addr {
			t.Fatalf("moved user %d X-SPA-Owner %q", id, got)
		}
	}

	// The new owner accepts writes for moved users.
	if code, _ := doJSON(t, "POST", b.url()+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents([]lifelog.Event{
		{UserID: aUsers[0], Time: t0.Add(time.Minute), Type: lifelog.EventClick, Action: 2}})}, nil); code != http.StatusOK {
		t.Fatalf("post-handoff ingest on b: %d", code)
	}

	// slot_moves counted on both sides; the source dropped the moved users.
	var ma, mb wire.Metrics
	doJSON(t, "GET", a.url()+"/metrics", nil, &ma)
	doJSON(t, "GET", b.url()+"/metrics", nil, &mb)
	if ma.SlotMoves == 0 || mb.SlotMoves == 0 {
		t.Fatalf("slot_moves a=%d b=%d, want both > 0", ma.SlotMoves, mb.SlotMoves)
	}
	if ma.ClusterSlotsOwned != 0 || mb.ClusterSlotsOwned != keyspace.NumSlots {
		t.Fatalf("slots owned a=%d b=%d", ma.ClusterSlotsOwned, mb.ClusterSlotsOwned)
	}
	if got := a.spa.Users(); got != 0 {
		t.Fatalf("source still models %d users after full handoff", got)
	}
}

// TestClusterMultiOwnerHandoffEpochsChain pins the epoch-coordination fix:
// a target pulling from two owners back-to-back (faster than gossip can
// spread the first flip) must see strictly increasing epochs, because each
// source adopts the target's map before minting. Without the sync both
// sources mint the same epoch with conflicting maps — gossip (higher-epoch
// only) never reconciles them, and slots already moved can be gossiped
// back to a node that has dropped their users.
func TestClusterMultiOwnerHandoffEpochsChain(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b", "c"}, true)
	a, b, c := nodes["a"], nodes["b"], nodes["c"]
	topo := fetchTopology(t, c.url())

	// Seed a user on each source so the moved slots carry state.
	aUser := usersOwnedBy(topo, "a", 1, 1)[0]
	bUser := usersOwnedBy(topo, "b", 1, 1)[0]
	registerAndIngest(t, a.url(), aUser)
	registerAndIngest(t, b.url(), bUser)
	beforeA := getBody(t, a.url()+"/v1/users/"+strconv.FormatUint(aUser, 10)+"/sensibilities")
	beforeB := getBody(t, b.url()+"/v1/users/"+strconv.FormatUint(bUser, 10)+"/sensibilities")

	// One handoff request naming every slot: c pulls a's group, then b's,
	// sequentially on the same POST — two flips, two distinct epochs.
	all := make([]int, keyspace.NumSlots)
	for i := range all {
		all[i] = i
	}
	var resp wire.HandoffResponse
	if code, _ := doJSON(t, "POST", c.url()+wire.HandoffPath,
		wire.HandoffRequest{Slots: all}, &resp); code != http.StatusOK {
		t.Fatalf("handoff: %d", code)
	}
	wantMoved := 0
	for _, owner := range topo.Slots {
		if owner != "c" {
			wantMoved++
		}
	}
	if resp.Moved != wantMoved || resp.Epoch != 3 {
		t.Fatalf("handoff response %+v, want %d moved at epoch 3 (2 would mean a collision)", resp, wantMoved)
	}

	// The second source and the target hold the chained map immediately;
	// the first source converges by gossip — it must end on epoch 3 with
	// nothing assigned back to itself.
	for _, n := range []*clusterNode{b, c} {
		got := fetchTopology(t, n.url())
		if got.Epoch != 3 {
			t.Fatalf("node %s epoch %d after chained handoff, want 3", n.id, got.Epoch)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := fetchTopology(t, a.url())
		if got.Epoch == 3 {
			for slot, owner := range got.Slots {
				if owner != "c" {
					t.Fatalf("node a at epoch 3 still routes slot %d to %q", slot, owner)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node a stuck at epoch %d, gossip never delivered the chained map", got.Epoch)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Both moved users stay reachable on the new owner, byte-identical.
	if got := getBody(t, c.url()+"/v1/users/"+strconv.FormatUint(aUser, 10)+"/sensibilities"); got != beforeA {
		t.Fatalf("user %d diverged after chained handoff", aUser)
	}
	if got := getBody(t, c.url()+"/v1/users/"+strconv.FormatUint(bUser, 10)+"/sensibilities"); got != beforeB {
		t.Fatalf("user %d diverged after chained handoff", bUser)
	}
}

// getBody fetches a URL and returns its body, failing on non-200.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, raw)
	}
	return string(raw)
}
