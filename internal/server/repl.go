package server

// Leader-side replication (DESIGN.md §9): the server half of the WAL-
// shipping stream. A follower upgrades a connection on wire.ReplPath (the
// same Upgrade: spa-stream/1 dance the ingest stream uses), the leader
// answers with the stream hello, the follower subscribes with its resume
// position and a wave-credit window, and the session settles into three
// concurrent strands over one connection:
//
//   - the wave writer (the session's main goroutine) tails the committed
//     log (core.TailLog → store.TailLog) and ships each record as a wave
//     frame, blocking on the follower-granted window — a slow follower
//     exerts backpressure by withholding acks, never by growing a queue;
//   - the ack reader consumes the follower's cumulative acks (reopening
//     the window and driving the lag accounting) and treats EOF or a
//     drain frame as the follower hanging up;
//   - the heartbeat ticker reports the leader's committed position once a
//     second so an idle, caught-up follower can still measure staleness.
//
// When the subscribed position predates the retained log floor, the
// session first ships a state snapshot (ExportSnapshot → snapshot
// begin/chunk/end frames, paced by TCP alone — the follower is not
// applying waves during bootstrap) and resumes tailing from the
// snapshot's position. Only records the store has durably committed are
// ever shipped: TailLog subscribes to the post-sync commit stream, so a
// follower cannot apply a wave the leader would not itself recover.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/internal/wire"
)

const (
	// replHeartbeatInterval paces the leader's position reports; followers
	// read with a deadline several intervals long, so a silent leader is
	// detected as a dead connection.
	replHeartbeatInterval = time.Second
	// replWriteTimeout bounds any single frame write (and the subscribe
	// read): a follower that stopped reading must not park the session.
	replWriteTimeout = 10 * time.Second
	// replSnapshotChunkBytes targets one snapshot chunk frame's payload,
	// far under the 8 MiB frame cap.
	replSnapshotChunkBytes = 1 << 20
	// replAckFrameMax bounds frames read back from the follower — acks,
	// heartbeat-sized control traffic only.
	replAckFrameMax = 4 << 10
)

// replInflight is one shipped, unacknowledged wave: its position and its
// frame size, retained so acks can settle the lag-bytes gauge.
type replInflight struct {
	lsn   uint64
	bytes int64
}

// replSession is one live leader→follower replication stream.
type replSession struct {
	srv  *Server
	conn net.Conn
	bw   *bufio.Writer

	// wmu serializes frame writes: the wave writer, the heartbeat ticker,
	// and the snapshot sender share the connection.
	wmu sync.Mutex

	// acked is the follower's cumulative applied position (only the ack
	// reader stores). sent is the last wave position shipped.
	acked atomic.Uint64
	sent  atomic.Uint64

	// credit holds the follower-granted wave window; the writer takes one
	// token per wave, the ack reader returns one per acknowledged record.
	credit chan struct{}

	inflightMu    sync.Mutex
	inflight      []replInflight
	inflightBytes int64

	mu     sync.Mutex
	tail   *store.LogTail
	closed bool

	closedCh chan struct{} // closed by shutdown
	done     chan struct{} // closed when serveRepl returns
}

// shutdown tears the session down once: wakes a writer blocked in
// tail.Next, fails in-flight reads/writes, and unblocks the credit wait.
func (sess *replSession) shutdown() {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	sess.closed = true
	t := sess.tail
	sess.mu.Unlock()
	close(sess.closedCh)
	if t != nil {
		t.Close()
	}
	sess.conn.Close()
}

// installTail publishes the session's log tail so shutdown can close it.
// Returns false if the session was already shut down (the caller must
// close the tail itself and bail).
func (sess *replSession) installTail(t *store.LogTail) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return false
	}
	sess.tail = t
	return true
}

// writeFrames writes the given frames as one flushed unit, bounded by the
// write timeout.
func (sess *replSession) writeFrames(frames ...[]byte) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	sess.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	for _, f := range frames {
		if err := wire.WriteStreamFrame(sess.bw, f); err != nil {
			return err
		}
	}
	if err := sess.bw.Flush(); err != nil {
		return err
	}
	sess.conn.SetWriteDeadline(time.Time{})
	return nil
}

// sendError ships a terminal stream error frame (best effort).
func (sess *replSession) sendError(status int, err error) {
	sess.srv.met.requestErrors.Add(1)
	sess.writeFrames(wire.EncodeStreamError(status, err.Error()))
}

// noteSent records one shipped wave for the lag-bytes accounting.
func (sess *replSession) noteSent(lsn uint64, frameBytes int) {
	sess.sent.Store(lsn)
	sess.inflightMu.Lock()
	sess.inflight = append(sess.inflight, replInflight{lsn: lsn, bytes: int64(frameBytes)})
	sess.inflightBytes += int64(frameBytes)
	sess.inflightMu.Unlock()
}

// noteAcked settles every in-flight wave through lsn and returns the
// number of records acknowledged (the credit to return).
func (sess *replSession) noteAcked(lsn uint64) int {
	prev := sess.acked.Load()
	if lsn <= prev {
		return 0
	}
	sess.acked.Store(lsn)
	sess.inflightMu.Lock()
	for len(sess.inflight) > 0 && sess.inflight[0].lsn <= lsn {
		sess.inflightBytes -= sess.inflight[0].bytes
		sess.inflight = sess.inflight[1:]
	}
	sess.inflightMu.Unlock()
	return int(lsn - prev)
}

// lagBytes reports the wave payload sent but not yet acknowledged.
func (sess *replSession) lagBytes() int64 {
	sess.inflightMu.Lock()
	defer sess.inflightMu.Unlock()
	return sess.inflightBytes
}

// handleReplStream upgrades an HTTP request into a leader-side
// replication session.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	if s.followerOf != "" {
		// Chained replication is out of scope: followers do not re-ship.
		w.Header().Set("X-SPA-Leader", s.followerOf)
		s.writeError(w, http.StatusMisdirectedRequest,
			fmt.Errorf("this instance follows %s; subscribe to the leader", s.followerOf))
		return
	}
	if _, ok := s.spa.AppliedLSN(); !ok {
		s.writeError(w, http.StatusNotImplemented,
			errors.New("replication requires a durable store (spad -data)"))
		return
	}
	if !strings.EqualFold(r.Header.Get("Upgrade"), wire.StreamProtocol) ||
		!strings.Contains(strings.ToLower(r.Header.Get("Connection")), "upgrade") {
		w.Header().Set("Upgrade", wire.StreamProtocol)
		s.writeError(w, http.StatusUpgradeRequired,
			fmt.Errorf("use Connection: Upgrade with Upgrade: %s", wire.StreamProtocol))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("connection cannot be hijacked"))
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	buf.Writer.WriteString("HTTP/1.1 101 Switching Protocols\r\nUpgrade: " +
		wire.StreamProtocol + "\r\nConnection: Upgrade\r\n\r\n")
	if err := buf.Writer.Flush(); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	s.serveRepl(conn, buf.Reader, buf.Writer)
}

// serveRepl runs one replication session to completion.
func (s *Server) serveRepl(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	sess := &replSession{
		srv:      s,
		conn:     conn,
		bw:       bw,
		closedCh: make(chan struct{}),
		done:     make(chan struct{}),
	}
	if !s.registerRepl(sess) {
		s.met.requestErrors.Add(1)
		wire.WriteStreamFrame(bw, wire.EncodeStreamError(http.StatusServiceUnavailable, "server draining"))
		bw.Flush()
		conn.Close()
		close(sess.done)
		return
	}
	defer func() {
		s.unregisterRepl(sess)
		sess.shutdown()
		close(sess.done)
	}()

	if err := sess.writeFrames(wire.EncodeStreamHello(wire.StreamHello{
		Credit:        s.streamWindow,
		MaxFrameBytes: s.maxBody,
	})); err != nil {
		return
	}

	// The subscribe must be the follower's first and only unsolicited
	// frame; bound the wait so a silent connection cannot pin a session.
	// The frame kind picks the protocol: a replication subscribe starts a
	// follower stream, a handoff subscribe starts a slot transfer
	// (handoff.go) over the same transport.
	conn.SetReadDeadline(time.Now().Add(replWriteTimeout))
	frame, err := wire.ReadStreamFrame(br, replAckFrameMax)
	if err != nil {
		return
	}
	if kind, kerr := wire.FrameKind(frame); kerr == nil && kind == wire.KindHandoffSubscribe {
		hs, err := wire.DecodeHandoffSubscribe(frame)
		if err != nil {
			sess.sendError(http.StatusBadRequest, err)
			return
		}
		conn.SetReadDeadline(time.Time{})
		s.serveHandoff(sess, br, hs)
		return
	}
	sub, err := wire.DecodeReplSubscribe(frame)
	if err != nil {
		sess.sendError(http.StatusBadRequest, err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	// Resolve the resume position: tail directly when it is still
	// retained, otherwise ship a snapshot and tail from its position. The
	// loop covers the race where retention prunes between the export and
	// the re-subscribe — each round moves the position forward, and a
	// store that keeps outrunning the transfer gives up with an error.
	from := sub.FromLSN
	var tail *store.LogTail
	for attempt := 0; ; attempt++ {
		tail, err = s.spa.TailLog(from)
		if err == nil {
			break
		}
		if !errors.Is(err, store.ErrLogCompacted) || attempt >= 3 {
			sess.sendError(http.StatusInternalServerError, err)
			return
		}
		if from, err = sess.sendSnapshot(); err != nil {
			return
		}
	}
	if !sess.installTail(tail) {
		tail.Close()
		return
	}

	sess.credit = make(chan struct{}, sub.Window)
	for i := 0; i < sub.Window; i++ {
		sess.credit <- struct{}{}
	}
	sess.acked.Store(from - 1)
	sess.sent.Store(from - 1)

	go sess.readAcks(br)
	go sess.heartbeatLoop()

	// An immediate heartbeat tells a caught-up follower the leader's
	// position before the first ticker fires — bootstrap probes rely on a
	// prompt first frame to classify the resume position as retained.
	if lsn, ok := s.spa.AppliedLSN(); ok {
		if err := sess.writeFrames(wire.EncodeReplHeartbeat(lsn)); err != nil {
			return
		}
	}

	for {
		rec, err := tail.Next()
		if err != nil {
			switch {
			case errors.Is(err, store.ErrTailClosed), errors.Is(err, store.ErrClosed):
				// Session shutdown or store close: just unwind.
			case errors.Is(err, store.ErrLogCompacted):
				// Retention overtook a follower too slow for the history
				// budget; it must reconnect and bootstrap from a snapshot.
				sess.sendError(http.StatusGone, err)
			default:
				sess.sendError(http.StatusInternalServerError, err)
			}
			return
		}
		if len(rec.Entries) == 0 {
			// The store never commits empty records; a hole here would
			// desync the follower's contiguity check, so fail loudly.
			sess.sendError(http.StatusInternalServerError,
				fmt.Errorf("log record %d has no entries", rec.LSN))
			return
		}
		select {
		case <-sess.credit:
		case <-sess.closedCh:
			return
		}
		entries := make([]wire.ReplEntry, len(rec.Entries))
		for i, e := range rec.Entries {
			entries[i] = wire.ReplEntry{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}
		}
		waveFrame := wire.EncodeReplWave(wire.ReplWave{
			LSN:        rec.LSN,
			Annotation: rec.Annotation,
			Entries:    entries,
		})
		sess.noteSent(rec.LSN, len(waveFrame))
		if err := sess.writeFrames(waveFrame); err != nil {
			return
		}
	}
}

// sendSnapshot ships the current state as a begin/chunk/end sequence and
// returns the position waves resume from.
func (sess *replSession) sendSnapshot() (resumeFrom uint64, err error) {
	pairs, snapLSN, err := sess.srv.spa.ExportSnapshot()
	if err != nil {
		sess.sendError(http.StatusInternalServerError, err)
		return 0, err
	}
	if err := sess.sendSnapshotPairs(pairs, snapLSN); err != nil {
		return 0, err
	}
	return snapLSN + 1, nil
}

// sendSnapshotPairs ships an already-exported pair set as the snapshot
// begin/chunk/end sequence — shared by full-state follower bootstraps and
// slot-filtered handoff bootstraps.
func (sess *replSession) sendSnapshotPairs(pairs []store.LogEntry, snapLSN uint64) error {
	if err := sess.writeFrames(wire.EncodeReplSnapshotBegin(wire.ReplSnapshotBegin{
		SnapshotLSN: snapLSN,
		Pairs:       uint64(len(pairs)),
	})); err != nil {
		return err
	}
	var chunk []wire.ReplEntry
	var chunkBytes int
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		f := wire.EncodeReplSnapshotChunk(chunk)
		sess.srv.met.replSnapshotBytes.Add(int64(len(f)))
		chunk, chunkBytes = nil, 0
		return sess.writeFrames(f)
	}
	for _, p := range pairs {
		chunk = append(chunk, wire.ReplEntry{Key: p.Key, Value: p.Value})
		chunkBytes += len(p.Key) + len(p.Value)
		if chunkBytes >= replSnapshotChunkBytes {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return sess.writeFrames(wire.EncodeReplSnapshotEnd(snapLSN))
}

// readAcks is the session's read side: cumulative acks reopen the wave
// window and settle the lag accounting; a drain frame or EOF is the
// follower hanging up, and anything else is a protocol violation — all
// three end the session.
func (sess *replSession) readAcks(br *bufio.Reader) {
	defer sess.shutdown()
	for {
		frame, err := wire.ReadStreamFrame(br, replAckFrameMax)
		if err != nil {
			return
		}
		kind, err := wire.FrameKind(frame)
		if err != nil {
			return
		}
		switch kind {
		case wire.KindReplAck:
			lsn, err := wire.DecodeReplAck(frame)
			if err != nil {
				return
			}
			for n := sess.noteAcked(lsn); n > 0; n-- {
				select {
				case sess.credit <- struct{}{}:
				default:
					// More acks than shipped waves: a protocol violation,
					// but credit beyond the window is simply dropped.
				}
			}
		case wire.KindStreamDrain:
			return
		default:
			return
		}
	}
}

// heartbeatLoop reports the leader's committed position once an interval.
func (sess *replSession) heartbeatLoop() {
	t := time.NewTicker(replHeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-sess.closedCh:
			return
		case <-t.C:
			lsn, ok := sess.srv.spa.AppliedLSN()
			if !ok {
				return
			}
			if err := sess.writeFrames(wire.EncodeReplHeartbeat(lsn)); err != nil {
				sess.shutdown()
				return
			}
		}
	}
}

// registerRepl admits a replication session unless the server is draining.
func (s *Server) registerRepl(sess *replSession) bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.replsDraining {
		return false
	}
	if s.repls == nil {
		s.repls = make(map[*replSession]struct{})
	}
	s.repls[sess] = struct{}{}
	return true
}

func (s *Server) unregisterRepl(sess *replSession) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	delete(s.repls, sess)
}

// drainRepls runs the replication half of Close: refuse new sessions,
// tear down every live one, and wait for them to unwind. Followers
// reconnect with backoff and resume from their applied position — a
// leader restart costs a follower nothing but the reconnect.
func (s *Server) drainRepls() {
	s.replMu.Lock()
	s.replsDraining = true
	sessions := make([]*replSession, 0, len(s.repls))
	for sess := range s.repls {
		sessions = append(sessions, sess)
	}
	s.replMu.Unlock()
	for _, sess := range sessions {
		sess.shutdown()
	}
	for _, sess := range sessions {
		<-sess.done
	}
}

// replicationStatus assembles the GET /v1/replication/status body — also
// the source of the repl_* gauges in /metrics, so the two views cannot
// disagree about a scrape.
func (s *Server) replicationStatus() wire.ReplicationStatus {
	st := wire.ReplicationStatus{Role: "none"}
	if s.cluster != nil {
		st.NodeID = s.cluster.nodeID
		st.TopologyEpoch = s.cluster.epochNow()
	}
	applied, durable := s.spa.AppliedLSN()
	st.AppliedLSN = applied
	if floor, ok := s.spa.LogFloor(); ok {
		st.LogFloorLSN = floor
	}
	if s.followerOf != "" {
		st.Role = "follower"
		st.Leader = s.followerOf
		st.SnapshotBytes = s.met.replSnapshotBytes.Load()
		if s.follower != nil {
			s.follower.fillStatus(&st, applied)
		}
		return st
	}
	if !durable {
		return st
	}
	st.Role = "leader"
	st.SnapshotBytes = s.met.replSnapshotBytes.Load()
	s.replMu.Lock()
	sessions := make([]*replSession, 0, len(s.repls))
	for sess := range s.repls {
		sessions = append(sessions, sess)
	}
	s.replMu.Unlock()
	for _, sess := range sessions {
		acked := sess.acked.Load()
		fs := wire.ReplFollowerStatus{AckedLSN: acked, LagBytes: sess.lagBytes()}
		if applied > acked {
			fs.LagWaves = applied - acked
		}
		st.Followers = append(st.Followers, fs)
		if fs.LagWaves > st.LagWaves {
			st.LagWaves = fs.LagWaves
		}
		if fs.LagBytes > st.LagBytes {
			st.LagBytes = fs.LagBytes
		}
	}
	return st
}

// handleReplStatus serves GET /v1/replication/status for both roles.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.replicationStatus())
}
