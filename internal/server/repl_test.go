package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wire"
)

// readBoth issues the same GET against two nodes and asserts they answer
// identically — the convergence check for the read path, independent of
// each endpoint's domain semantics (a cold-start 409 must match too).
func readBoth(t *testing.T, leaderURL, followerURL, path string) {
	t.Helper()
	fetch := func(base string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(raw)
	}
	lCode, lBody := fetch(leaderURL)
	fCode, fBody := fetch(followerURL)
	if lCode != fCode || lBody != fBody {
		t.Fatalf("GET %s diverged: leader %d %q, follower %d %q", path, lCode, lBody, fCode, fBody)
	}
}

// replStatus fetches one node's /v1/replication/status.
func replStatus(t *testing.T, url string) wire.ReplicationStatus {
	t.Helper()
	var st wire.ReplicationStatus
	if code, _ := doJSON(t, "GET", url+"/v1/replication/status", nil, &st); code != http.StatusOK {
		t.Fatalf("replication status: %d", code)
	}
	return st
}

// waitCaughtUp polls a follower's status until it has applied through the
// target position on a live stream.
func waitCaughtUp(t *testing.T, url string, target uint64) wire.ReplicationStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := replStatus(t, url)
		if st.AppliedLSN >= target && st.State == "streaming" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at lsn %d (state %q), want >= %d", st.AppliedLSN, st.State, target)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicationFollowerServesReads is the serving-layer half of the
// convergence story: a fresh follower resumes the leader's retained log
// over the wire, applies every wave through its own core, and then serves
// the read API from replicated state while bouncing writes back to the
// leader.
func TestReplicationFollowerServesReads(t *testing.T) {
	clk := clock.NewSimulated(t0.Add(24 * time.Hour))
	leaderTS, _ := testServer(t,
		core.Options{DataDir: t.TempDir(), Shards: 2, Clock: clk},
		Options{})

	for user := uint64(1); user <= 3; user++ {
		if code, _ := doJSON(t, "POST", leaderTS.URL+"/v1/users",
			wire.RegisterRequest{UserID: user, Objective: []float64{30, 1}}, nil); code != http.StatusCreated {
			t.Fatalf("register %d: %d", user, code)
		}
		ingestOne(t, leaderTS.URL, user)
	}
	leaderSt := replStatus(t, leaderTS.URL)
	if leaderSt.Role != "leader" {
		t.Fatalf("leader role %q", leaderSt.Role)
	}
	if leaderSt.AppliedLSN == 0 {
		t.Fatal("leader applied lsn is zero after commits")
	}

	followerTS, followerSPA := testServer(t,
		core.Options{DataDir: t.TempDir(), Shards: 2, Clock: clk},
		Options{FollowerOf: leaderTS.URL})
	st := waitCaughtUp(t, followerTS.URL, leaderSt.AppliedLSN)
	if st.Role != "follower" || st.Leader == "" {
		t.Fatalf("follower status role %q leader %q", st.Role, st.Leader)
	}
	if st.LagWaves != 0 {
		t.Fatalf("caught-up follower reports lag %d", st.LagWaves)
	}

	// Replicated state serves the read API identically to the leader.
	if users := followerSPA.Users(); users != 3 {
		t.Fatalf("follower sees %d users, want 3", users)
	}
	for _, path := range []string{
		"/v1/users/1/propensity",
		"/v1/users/1/sensibilities",
		"/v1/users/2/recommendations?n=3",
		"/v1/select-top?k=2",
	} {
		readBoth(t, leaderTS.URL, followerTS.URL, path)
	}

	// Writes bounce with 421 and the leader's address, on every write
	// endpoint.
	leaderAddr := strings.TrimPrefix(leaderTS.URL, "http://")
	for _, w := range []struct {
		method, path string
		body         any
	}{
		{"POST", "/v1/users", wire.RegisterRequest{UserID: 9, Objective: []float64{30, 1}}},
		{"POST", "/v1/ingest", wire.IngestRequest{}},
		{"POST", "/v1/users/1/answer", wire.AnswerRequest{}},
		{"POST", "/v1/users/1/reward", wire.AttributesRequest{}},
		{"POST", "/v1/users/1/punish", wire.AttributesRequest{}},
	} {
		code, hdr := doJSON(t, w.method, followerTS.URL+w.path, w.body, nil)
		if code != http.StatusMisdirectedRequest {
			t.Fatalf("%s %s on follower: %d, want 421", w.method, w.path, code)
		}
		if got := hdr.Get("X-SPA-Leader"); got != leaderAddr {
			t.Fatalf("%s %s X-SPA-Leader %q, want %q", w.method, w.path, got, leaderAddr)
		}
	}

	// New leader commits flow through the live stream.
	ingestOne(t, leaderTS.URL, 2)
	after := replStatus(t, leaderTS.URL)
	waitCaughtUp(t, followerTS.URL, after.AppliedLSN)

	// The leader sees its follower; the follower's lag metrics read zero.
	leaderSt = replStatus(t, leaderTS.URL)
	if len(leaderSt.Followers) != 1 {
		t.Fatalf("leader sees %d followers, want 1", len(leaderSt.Followers))
	}
	if leaderSt.Followers[0].AckedLSN != after.AppliedLSN {
		t.Fatalf("leader follower acked %d, want %d", leaderSt.Followers[0].AckedLSN, after.AppliedLSN)
	}

	// Both exposition formats carry the replication series, and the
	// follower's apply work landed in the repl_apply stage histogram.
	fams, raw := fetchProm(t, followerTS.URL)
	applied, ok := fams["spad_repl_applied_lsn"]
	if !ok {
		t.Fatalf("no spad_repl_applied_lsn family:\n%s", raw)
	}
	if got := applied.Samples["spad_repl_applied_lsn"]; got < float64(after.AppliedLSN) {
		t.Fatalf("prom applied lsn %v, want >= %d", got, after.AppliedLSN)
	}
	if _, ok := fams["spad_repl_lag_waves"]; !ok {
		t.Fatal("no spad_repl_lag_waves family")
	}
	stageKey := `spad_stage_duration_seconds_count{stage="repl_apply"}`
	if cnt := fams["spad_stage_duration_seconds"].Samples[stageKey]; cnt == 0 {
		t.Fatalf("repl_apply stage histogram empty:\n%s", raw)
	}
	var jm wire.Metrics
	if code, _ := doJSON(t, "GET", followerTS.URL+"/metrics", nil, &jm); code != http.StatusOK {
		t.Fatal("follower json metrics")
	}
	if jm.ReplRole != "follower" || jm.ReplAppliedLSN < after.AppliedLSN {
		t.Fatalf("json metrics role %q applied %d", jm.ReplRole, jm.ReplAppliedLSN)
	}

	leaderFams, _ := fetchProm(t, leaderTS.URL)
	if got := leaderFams["spad_repl_followers"].Samples["spad_repl_followers"]; got != 1 {
		t.Fatalf("leader spad_repl_followers %v, want 1", got)
	}
}

// TestReplicationSnapshotBootstrap covers the catch-up path: a leader
// whose history budget pruned the early log answers a fresh follower's
// probe with a state snapshot; BootstrapFollower restores it at the store
// level before the core opens, and the runtime loop resumes from the
// snapshot position.
func TestReplicationSnapshotBootstrap(t *testing.T) {
	clk := clock.NewSimulated(t0.Add(24 * time.Hour))
	stOpts := store.Options{MemtableBytes: 2 << 10, LogRetainBytes: 1}
	leaderTS, _ := testServer(t,
		core.Options{DataDir: t.TempDir(), Shards: 2, Store: stOpts, Clock: clk},
		Options{})

	// Churn until memtable flushes have sealed and pruned the early WAL:
	// the log floor moving past 1 proves a fresh follower cannot tail from
	// the beginning.
	var floor uint64
	var registered int
	for user := uint64(1); user <= 500 && floor <= 1; user++ {
		if code, _ := doJSON(t, "POST", leaderTS.URL+"/v1/users",
			wire.RegisterRequest{UserID: user, Objective: []float64{30, 1}}, nil); code != http.StatusCreated {
			t.Fatalf("register %d: %d", user, code)
		}
		ingestOne(t, leaderTS.URL, user)
		registered++
		floor = replStatus(t, leaderTS.URL).LogFloorLSN
	}
	if floor <= 1 {
		t.Fatal("leader log floor never advanced; cannot exercise the snapshot path")
	}
	leaderSt := replStatus(t, leaderTS.URL)

	leaderAddr := strings.TrimPrefix(leaderTS.URL, "http://")
	followerDir := t.TempDir()
	restored, err := BootstrapFollower(followerDir, leaderAddr, store.Options{})
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if restored == 0 {
		t.Fatal("bootstrap restored zero bytes below the log floor")
	}

	followerTS, followerSPA := testServer(t,
		core.Options{DataDir: followerDir, Shards: 2, Clock: clk},
		Options{FollowerOf: leaderAddr, FollowerBootstrapBytes: restored})
	st := waitCaughtUp(t, followerTS.URL, leaderSt.AppliedLSN)
	if st.SnapshotBytes != restored {
		t.Fatalf("follower snapshot bytes %d, want %d", st.SnapshotBytes, restored)
	}

	// The bootstrapped state is complete: every registered user is there,
	// including user 1, whose register wave exists only inside the
	// snapshot (its log record was pruned).
	if users := followerSPA.Users(); users != registered {
		t.Fatalf("follower sees %d users, want %d", users, registered)
	}
	// Profile-backed reads match the leader exactly. (CF interaction
	// counts are process-local by design — a restarted leader starts cold
	// too — so recommendation parity is out of scope for the snapshot
	// path; the live-stream test covers it.)
	for _, user := range []int{1, registered / 2, registered} {
		readBoth(t, leaderTS.URL, followerTS.URL, fmt.Sprintf("/v1/users/%d/propensity", user))
		readBoth(t, leaderTS.URL, followerTS.URL, fmt.Sprintf("/v1/users/%d/sensibilities", user))
	}

	// The leader accounted the shipped snapshot chunks.
	if leaderSt := replStatus(t, leaderTS.URL); leaderSt.SnapshotBytes == 0 {
		t.Fatal("leader shipped a snapshot but reports zero snapshot bytes")
	}
}

// TestReplicationRefusals pins the role checks around the stream: a
// non-durable node refuses to lead, and a follower refuses both chained
// replication and streamed ingest.
func TestReplicationRefusals(t *testing.T) {
	memTS, _ := testServer(t, core.Options{Shards: 1}, Options{})
	resp, err := http.Get(memTS.URL + wire.ReplPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("non-durable leader answered %d, want 501", resp.StatusCode)
	}
	if st := replStatus(t, memTS.URL); st.Role != "none" {
		t.Fatalf("in-memory node role %q, want none", st.Role)
	}

	clk := clock.NewSimulated(t0.Add(24 * time.Hour))
	leaderTS, _ := testServer(t,
		core.Options{DataDir: t.TempDir(), Shards: 1, Clock: clk},
		Options{})
	followerTS, _ := testServer(t,
		core.Options{DataDir: t.TempDir(), Shards: 1, Clock: clk},
		Options{FollowerOf: leaderTS.URL})

	resp, err = http.Get(followerTS.URL + wire.ReplPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower answered %d to a replication subscribe, want 421", resp.StatusCode)
	}
}
