// Package server is the SPA serving layer: an HTTP/JSON daemon wrapping the
// *core.SPA facade so the platform is reachable by a live user population
// instead of only in-process callers — the paper's SPA as an online service.
//
// The API surface mirrors the facade: register, ingest, next-question /
// submit-answer, reward / punish, propensity, select-top, advise, recommend,
// plus /healthz and a /metrics snapshot. Ingest requests do not hit the core
// directly: they pass through a cross-request coalescer (coalescer.go) that
// merges concurrent arrivals into one group commit, with a bounded pending
// queue as admission control — when it is full the server answers
// 503 + Retry-After instead of queueing unboundedly. Ingest is also
// reachable as a persistent binary stream (stream.go): an HTTP upgrade on
// /v1/ingest/stream or a raw TCP listener (ServeStream), flow-controlled
// by server-granted credit instead of 503s, feeding the same coalescer.
// Close drains stream sessions and then the coalescer, so accepted
// requests are never dropped by a shutdown.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// Options tune the serving layer. The zero value is a sensible production
// default: coalescing on, 256-deep pending queue, commits of up to 64
// requests, no linger.
type Options struct {
	// DisableCoalescing commits every ingest request on its own — the
	// measurement baseline for spabench's [S2] section; production leaves
	// it off.
	DisableCoalescing bool
	// QueueDepth bounds the pending ingest queue (default 256). A full
	// queue rejects with 503 + Retry-After.
	QueueDepth int
	// MaxBatch caps how many requests merge into one group commit
	// (default 64).
	MaxBatch int
	// MaxDelay lets the dispatcher linger to gather a fuller batch. Zero
	// commits whatever is already pending: with durable sync writes the
	// in-flight commit itself is the natural batching window.
	MaxDelay time.Duration
	// Pipeline selects the coalescer's two-stage dispatcher: each wave's
	// shard WriteBatches commit as one ordered store sequence with a
	// single WAL sync (the main throughput win), and wave N+1's CPU-bound
	// prepare runs concurrently with wave N's commit when the waves touch
	// disjoint shards. On successful commits per-request outcomes are
	// byte-identical to the serialized dispatcher; a store write failure
	// fails the whole wave rather than only the failing shard group's
	// batches (see core.PreparedMulti.Commit). Ignored with
	// DisableCoalescing (spad -pipeline).
	Pipeline bool
	// MaxBodyBytes caps one request body (default 8 MiB); larger bodies
	// answer 413 before any decoding buffers them.
	MaxBodyBytes int64
	// DisableBinary refuses the binary ingest framing with 415, forcing
	// every client back onto JSON — an escape hatch for debugging with
	// curl/tcpdump-friendly traffic (spad -no-binary). It also disables
	// the streamed ingest endpoint (streams are binary-only).
	DisableBinary bool
	// StreamWindow is the per-stream credit grant: ingest frames one
	// stream client may have in flight (default 32).
	StreamWindow int
	// StreamDrainWait bounds how long Close waits for a stream client to
	// acknowledge the drain frame (default 5s).
	StreamDrainWait time.Duration
	// SlowWave logs a line for every coalescer wave whose gather→commit
	// total meets the threshold (spad -slow-wave); zero disables.
	SlowWave time.Duration
	// AccessLog logs one line per completed HTTP request — method, path,
	// status, bytes, duration (spad -access-log). The duration shares the
	// endpoint histogram's clock, so a logged line and the histogram agree.
	AccessLog bool
	// Logf receives slow-wave and access-log lines (default log.Printf);
	// tests substitute a recorder.
	Logf func(format string, args ...any)

	// FollowerOf makes this server a replication follower of the given
	// leader (host:port or URL). A follower applies the leader's waves
	// through the core — every read API works — and answers writes with
	// 421 + an X-SPA-Leader header naming where they belong. Requires a
	// durable core (replication ships the WAL).
	FollowerOf string
	// ReplWindow is the wave credit a follower grants its leader — waves
	// in flight before the leader must wait for acks (default 256).
	ReplWindow int
	// FollowerBootstrapBytes seeds the repl_snapshot_bytes counter with
	// the size of the snapshot BootstrapFollower restored before the core
	// opened, so the follower's metrics account for its own bootstrap.
	FollowerBootstrapBytes int64

	// ClusterNodeID makes this server a cluster node (cluster.go): it
	// serves only the keyspace slots it owns, bounces the rest with
	// 421 + X-SPA-Owner, exposes the slot map on /v1/topology, and takes
	// part in shard handoffs (spad -cluster). Mutually exclusive with
	// FollowerOf: a node is either a partition owner or a read replica.
	ClusterNodeID string
	// ClusterAddr is this node's advertised host:port — the address peers
	// and bounced clients are told to dial. Required with ClusterNodeID.
	ClusterAddr string
	// ClusterPeers maps peer node IDs to their advertised addresses
	// (spad -peers id=addr,...). The deterministic epoch-1 slot map
	// round-robins over the sorted IDs of peers ∪ self.
	ClusterPeers map[string]string
	// ClusterDir persists topology.json across restarts (usually the data
	// dir); empty keeps the map in memory only.
	ClusterDir string
}

// Server is the spad request handler. Create with New, serve with any
// http.Server, and Close on the way out (after the http.Server has stopped
// accepting) to drain the coalescer.
type Server struct {
	spa       *core.SPA
	mux       *http.ServeMux
	co        *coalescer // nil when coalescing is disabled
	met       metrics
	maxBody   int64
	noBinary  bool
	start     time.Time
	accessLog bool
	logf      func(format string, args ...any)
	// draining flips once shutdown begins (BeginDrain/Close); /readyz
	// answers 503 from then on so load balancers stop routing while
	// in-flight requests finish.
	draining atomic.Bool

	// Streamed-ingest session registry (stream.go).
	streamWindow    int
	streamDrainWait time.Duration
	streamMu        sync.Mutex
	streams         map[*streamSession]struct{}
	streamsDraining bool

	// Replication (repl.go leader side, follower.go follower side).
	// followerOf is the normalized leader host:port, empty on a leader;
	// follower is the in-process apply loop when followerOf is set.
	followerOf    string
	follower      *follower
	replMu        sync.Mutex
	repls         map[*replSession]struct{}
	replsDraining bool

	// Cluster mode (cluster.go): slot ownership, topology, write fence.
	// nil on standalone and follower servers.
	cluster *cluster
}

// New wires the handler around an opened SPA. The caller keeps ownership of
// the SPA: Close drains the serving layer but does not close the core.
func New(spa *core.SPA, opts Options) *Server {
	s := &Server{spa: spa, mux: http.NewServeMux(), start: time.Now()}
	s.maxBody = opts.MaxBodyBytes
	s.noBinary = opts.DisableBinary
	if s.maxBody <= 0 {
		s.maxBody = 8 << 20
	}
	s.streamWindow = opts.StreamWindow
	if s.streamWindow <= 0 {
		s.streamWindow = defaultStreamWindow
	}
	if s.streamWindow > wire.MaxStreamCredit {
		// The hello cannot advertise more — clients reject larger grants
		// at the handshake, which would kill every stream before its
		// first frame.
		s.streamWindow = wire.MaxStreamCredit
	}
	s.streamDrainWait = opts.StreamDrainWait
	if s.streamDrainWait <= 0 {
		s.streamDrainWait = defaultStreamDrainWait
	}
	s.accessLog = opts.AccessLog
	s.logf = opts.Logf
	if s.logf == nil {
		s.logf = log.Printf
	}
	if !opts.DisableCoalescing {
		var pipe wavePreparer
		if opts.Pipeline {
			pipe = spaPreparer{spa: spa}
		}
		s.co = newCoalescer(spa, pipe, &s.met, opts.QueueDepth, opts.MaxBatch, opts.MaxDelay, opts.SlowWave, s.logf)
	}
	// The store reports WAL-sync and compaction durations straight into the
	// stage histograms (and tagged syncs into their wave's trace).
	spa.SetStoreObserver(storeObserver{m: &s.met})
	s.mux.HandleFunc("POST /v1/users", s.handle("register", s.handleRegister))
	s.mux.HandleFunc("POST /v1/ingest", s.handle("ingest", s.handleIngest))
	// The stream upgrade is deliberately unwrapped: its hijacked connection
	// outlives the "request", so a latency sample would be meaningless.
	s.mux.HandleFunc("GET "+wire.StreamPath, s.handleIngestStream)
	s.mux.HandleFunc("GET /v1/users/{id}/question", s.handle("question", s.handleQuestion))
	s.mux.HandleFunc("POST /v1/users/{id}/answer", s.handle("answer", s.handleAnswer))
	s.mux.HandleFunc("POST /v1/users/{id}/reward", s.handle("reward", s.handleReinforce(true)))
	s.mux.HandleFunc("POST /v1/users/{id}/punish", s.handle("punish", s.handleReinforce(false)))
	s.mux.HandleFunc("GET /v1/users/{id}/propensity", s.handle("propensity", s.handlePropensity))
	s.mux.HandleFunc("GET /v1/users/{id}/sensibilities", s.handle("sensibilities", s.handleSensibilities))
	s.mux.HandleFunc("GET /v1/users/{id}/advice", s.handle("advice", s.handleAdvice))
	s.mux.HandleFunc("GET /v1/users/{id}/recommendations", s.handle("recommend", s.handleRecommend))
	s.mux.HandleFunc("GET /v1/select-top", s.handle("select_top", s.handleSelectTop))
	s.mux.HandleFunc("GET /healthz", s.handle("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /readyz", s.handle("readyz", s.handleReady))
	s.mux.HandleFunc("GET /metrics", s.handle("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /debug/waves", s.handle("debug_waves", s.handleWaves))
	// The replication upgrade is unwrapped like the ingest stream: the
	// hijacked connection outlives the "request".
	s.mux.HandleFunc("GET "+wire.ReplPath, s.handleReplStream)
	s.mux.HandleFunc("GET /v1/replication/status", s.handle("replication_status", s.handleReplStatus))
	s.mux.HandleFunc("GET "+wire.TopologyPath, s.handle("topology", s.handleTopology))
	s.mux.HandleFunc("POST "+wire.HandoffPath, s.handle("handoff", s.handleHandoff))
	s.met.replSnapshotBytes.Store(opts.FollowerBootstrapBytes)
	if opts.ClusterNodeID != "" {
		s.cluster = newCluster(s, opts.ClusterNodeID, opts.ClusterAddr, opts.ClusterPeers, opts.ClusterDir)
		go s.cluster.gossipLoop()
	}
	if opts.FollowerOf != "" {
		leader, err := leaderHostPort(opts.FollowerOf)
		if err != nil {
			// Surface the misconfiguration loudly but keep the read path up:
			// the follower parks stalled and never streams.
			s.logf("spad: %v", err)
			leader = opts.FollowerOf
		}
		s.followerOf = leader
		s.follower = newFollower(s, leader, opts.ReplWindow)
		go s.follower.run()
	}
	return s
}

// IsFollower reports whether this server replicates from a leader; Leader
// names it (host:port) when so.
func (s *Server) IsFollower() bool { return s.followerOf != "" }
func (s *Server) Leader() string   { return s.followerOf }

// rejectFollowerWrite answers a write on a follower: 421 Misdirected
// Request plus an X-SPA-Leader header naming where writes belong. Returns
// true when the request was rejected.
func (s *Server) rejectFollowerWrite(w http.ResponseWriter) bool {
	if s.followerOf == "" {
		return false
	}
	w.Header().Set("X-SPA-Leader", s.followerOf)
	s.writeError(w, http.StatusMisdirectedRequest,
		fmt.Errorf("this instance is a read-only follower; write to the leader at %s", s.followerOf))
	return true
}

// handle wraps one endpoint with per-endpoint latency observation and the
// optional access log. The handler name is fixed at registration — never
// derived from the request path — so the histogram label set stays bounded
// whatever clients send.
func (s *Server) handle(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &respRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		d := time.Since(start)
		if hist := s.met.obs().endpoints[name]; hist != nil {
			hist.Observe(d)
		}
		if s.accessLog {
			s.logf("spad: %s %s %d %dB %s", r.Method, r.URL.Path, rec.status, rec.bytes, d)
		}
	}
}

// respRecorder captures status and byte count for the access log while
// delegating everything else. Unwrap keeps http.ResponseController
// features (flush, deadlines) reachable through the wrapper.
type respRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (r *respRecorder) WriteHeader(status int) {
	if !r.wroteHeader {
		r.status = status
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *respRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *respRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// BeginDrain marks the server not-ready: /readyz starts answering 503
// "draining" while /healthz keeps reporting live. Call it before the HTTP
// listener's graceful Shutdown so load balancers drain traffic first.
// Close calls it too, for callers that skip the explicit step.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Close stops ingest admission and drains every request already queued in
// the coalescer. Call after the http.Server has finished Shutdown, so no
// handler is still about to enqueue. Stream sessions drain first — their
// readers are coalescer producers, so in-flight stream frames are accepted,
// committed and answered before the coalescer's final sweep; then the
// coalescer drains everything queued. Safe to call more than once.
func (s *Server) Close() {
	s.BeginDrain()
	if s.follower != nil {
		s.follower.stopWait()
	}
	if s.cluster != nil {
		s.cluster.stopWait()
	}
	s.drainStreams()
	s.drainRepls()
	if s.co != nil {
		s.co.close()
	}
}

// ---- plumbing ----

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.met.requestErrors.Add(1)
	s.writeJSON(w, status, wire.Error{Message: err.Error()})
}

// domainStatus maps facade errors onto HTTP statuses — the single mapping
// both transports use (writeDomainError for HTTP, the stream responder for
// error frames), so a given failure answers with the same status whatever
// the request spoke.
func domainStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrBadStream):
		// A malformed event stream is the submitter's fault.
		return http.StatusBadRequest
	case errors.Is(err, core.ErrNoProfile):
		return http.StatusNotFound
	case errors.Is(err, core.ErrAlreadyRegistered):
		return http.StatusConflict
	case errors.Is(err, core.ErrNoModel):
		return http.StatusConflict
	case errors.Is(err, core.ErrNoInteractions):
		// Nothing ingested yet — the caller can retry after ingest.
		return http.StatusConflict
	case errors.Is(err, store.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeDomainError maps facade errors onto HTTP statuses.
func (s *Server) writeDomainError(w http.ResponseWriter, err error) {
	s.writeError(w, domainStatus(err), err)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	// The coalescer's queue bounds request count; this bounds bytes, so a
	// single oversized body cannot bypass admission control.
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	// One value per body: a second JSON value after the first
	// ({"user_id":1}{"user_id":2}) would be decoded-and-dropped silently,
	// acknowledging data the server never looked at.
	if _, err := dec.Token(); err != io.EOF {
		s.writeError(w, http.StatusBadRequest, errors.New("decoding request: trailing data after JSON value"))
		return false
	}
	return true
}

// readBody slurps a capped raw body (the binary path's counterpart of
// decode): same byte bound, same 413 mapping.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return nil, false
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return nil, false
	}
	return raw, true
}

func (s *Server) userID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil || id == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad user id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

// ---- handlers ----

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	var req wire.RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.UserID == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("zero user id"))
		return
	}
	release, ok := s.admitClusterWrite(w, req.UserID)
	if !ok {
		return
	}
	defer release()
	if err := s.spa.Register(req.UserID, req.Objective); err != nil {
		// Duplicate → 409; anything else (store write failure) is ours.
		s.writeDomainError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, struct{}{})
}

// handleIngest dispatches on Content-Type: application/x-spa-binary
// selects the length-prefixed framing of internal/wire, anything else is
// the JSON baseline. Both paths share the body cap, the coalescer, and the
// error vocabulary (errors always answer as JSON, whatever the request
// spoke — status handling stays one code path for every client).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	decodeStart := time.Now()
	binaryReq := wire.IsBinaryContentType(r.Header.Get("Content-Type"))
	var events []lifelog.Event
	if binaryReq {
		if s.noBinary {
			s.writeError(w, http.StatusUnsupportedMediaType,
				errors.New("binary ingest framing disabled; use application/json"))
			return
		}
		raw, ok := s.readBody(w, r)
		if !ok {
			return
		}
		wevents, err := wire.DecodeIngestRequest(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		events = wire.ToEvents(wevents)
		s.met.ingestBinary.Add(1)
	} else {
		var req wire.IngestRequest
		if !s.decode(w, r, &req) {
			return
		}
		events = wire.ToEvents(req.Events)
	}
	// The decode stage covers body read + unmarshal + domain conversion for
	// both framings — the successful ones; a 400/413 never reaches here.
	s.met.obs().stage("decode", time.Since(decodeStart))
	s.met.ingestRequests.Add(1)
	// Cluster ownership covers every user in the batch, and the guard is
	// held through the commit (submit waits for it): an acked write to an
	// owned slot is durably logged before any handoff fence barrier passes.
	release, ok := s.admitClusterWrite(w, ingestUserIDs(events)...)
	if !ok {
		return
	}
	defer release()

	var (
		out    core.IngestOutcome
		merged = 1
	)
	if s.co == nil {
		out = s.spa.MultiIngest([][]lifelog.Event{events})[0]
		s.met.noteCommit(1, len(events))
	} else {
		var err error
		out, merged, err = s.co.submit(r.Context(), events)
		switch {
		case errors.Is(err, errQueueFull):
			s.met.ingestRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, errDraining):
			w.Header().Set("Retry-After", "5")
			s.writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			// The client hung up while its accepted job was waiting on the
			// commit. The job still commits; nobody reads this answer.
			s.writeError(w, http.StatusRequestTimeout, err)
			return
		}
	}
	if out.Err != nil {
		// Malformed event stream → the submitter's 400; store failures are
		// ours (503 when closing, 500 otherwise). All via domainStatus.
		s.writeDomainError(w, out.Err)
		return
	}
	resp := wire.IngestResponse{
		Processed:      out.Processed,
		SkippedUnknown: out.SkippedUnknown,
		CoalescedWith:  merged,
	}
	if binaryReq {
		w.Header().Set("Content-Type", wire.ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		w.Write(wire.EncodeIngestResponse(resp))
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuestion(w http.ResponseWriter, r *http.Request) {
	id, ok := s.userID(w, r)
	if !ok {
		return
	}
	if s.bounceMisowned(w, id) {
		return
	}
	item, err := s.spa.NextQuestion(id)
	if err != nil {
		s.writeDomainError(w, err)
		return
	}
	q := wire.Question{ID: item.ID, Branch: item.Branch.String(), Prompt: item.Prompt}
	for _, o := range item.Options {
		q.Options = append(q.Options, o.Text)
	}
	s.writeJSON(w, http.StatusOK, q)
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	id, ok := s.userID(w, r)
	if !ok {
		return
	}
	release, ok := s.admitClusterWrite(w, id)
	if !ok {
		return
	}
	defer release()
	var req wire.AnswerRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.spa.SubmitAnswer(id, emotion.Answer{ItemID: req.ItemID, Option: req.Option}); err != nil {
		// A bad item/option is the submitter's fault; unknown users and
		// store failures go through the domain mapping (404/503/500).
		if errors.Is(err, emotion.ErrBadAnswer) {
			s.writeError(w, http.StatusBadRequest, err)
		} else {
			s.writeDomainError(w, err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleReinforce(reward bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.rejectFollowerWrite(w) {
			return
		}
		id, ok := s.userID(w, r)
		if !ok {
			return
		}
		release, ok := s.admitClusterWrite(w, id)
		if !ok {
			return
		}
		defer release()
		var req wire.AttributesRequest
		if !s.decode(w, r, &req) {
			return
		}
		attrs, err := req.ToAttributes()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if reward {
			err = s.spa.Reward(id, attrs)
		} else {
			err = s.spa.Punish(id, attrs)
		}
		if err != nil {
			s.writeDomainError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, struct{}{})
	}
}

func (s *Server) handlePropensity(w http.ResponseWriter, r *http.Request) {
	id, ok := s.userID(w, r)
	if !ok {
		return
	}
	if s.bounceMisowned(w, id) {
		return
	}
	p, err := s.spa.Propensity(id)
	if err != nil {
		s.writeDomainError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, wire.PropensityResponse{Propensity: p})
}

func (s *Server) handleSensibilities(w http.ResponseWriter, r *http.Request) {
	id, ok := s.userID(w, r)
	if !ok {
		return
	}
	if s.bounceMisowned(w, id) {
		return
	}
	sens, err := s.spa.Sensibilities(id)
	if err != nil {
		s.writeDomainError(w, err)
		return
	}
	resp := wire.SensibilitiesResponse{Sensibilities: make(map[string]float64, len(sens))}
	for i, v := range sens {
		resp.Sensibilities[emotion.Attribute(i).String()] = v
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	id, ok := s.userID(w, r)
	if !ok {
		return
	}
	if s.bounceMisowned(w, id) {
		return
	}
	domain := r.URL.Query().Get("domain")
	if domain == "" {
		domain = "training"
	}
	adv, err := s.spa.Advise(id, domain)
	if err != nil {
		s.writeDomainError(w, err)
		return
	}
	resp := wire.AdviceResponse{Domain: adv.Domain, Excitation: make(map[string]float64, emotion.NumAttributes)}
	for i, v := range adv.Excitation {
		resp.Excitation[emotion.Attribute(i).String()] = v
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	id, ok := s.userID(w, r)
	if !ok {
		return
	}
	if s.bounceMisowned(w, id) {
		return
	}
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", q))
			return
		}
		n = v
	}
	recs, err := s.spa.RecommendActions(id, n)
	if err != nil {
		// Everything routes through the domain mapping: cold starts
		// (ErrNoInteractions) answer 409, but a store failure must answer
		// 503/500 here like on every other endpoint — the old blanket 409
		// told clients "retry after ingest" about a server-side fault.
		s.writeDomainError(w, err)
		return
	}
	resp := wire.RecommendResponse{Recommendations: make([]wire.Recommendation, len(recs))}
	for i, rec := range recs {
		resp.Recommendations[i] = wire.Recommendation{Action: rec.Action, Score: rec.Score}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSelectTop ranks this node's resident users. In cluster mode that
// is deliberately node-local: a global top-k would need a scatter-gather
// over every owner, and the endpoint's contract ("rank the users this
// instance models") already matches the partitioned reality.
func (s *Server) handleSelectTop(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", r.URL.Query().Get("k")))
		return
	}
	ids, err := s.spa.SelectTop(k)
	if err != nil {
		// A partial ranking is an answer, not a failure: some profiles
		// could not be scored (core.ErrPartialSelection) but the ranking
		// over the rest is valid, so answer 200 with the skip count
		// instead of failing the whole request.
		var partial *core.PartialSelectionError
		if !errors.As(err, &partial) {
			s.writeDomainError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, wire.SelectTopResponse{UserIDs: ids, Skipped: partial.Skipped})
		return
	}
	s.writeJSON(w, http.StatusOK, wire.SelectTopResponse{UserIDs: ids})
}

// handleHealth is pure liveness: 200 "ok" for as long as the process can
// answer at all, drain or no drain — restart-deciders watch this one.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, wire.Health{Status: "ok", Users: s.spa.Users()})
}

// handleReady is readiness: 200 "ok" until drain begins, 503 "draining"
// after — routing-deciders watch this one, and flip before the listener
// dies rather than when it dies.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, wire.Health{Status: "draining", Users: s.spa.Users()})
		return
	}
	s.writeJSON(w, http.StatusOK, wire.Health{Status: "ok", Users: s.spa.Users()})
}

// handleWaves serves the last n coalescer wave traces, newest first
// (?n=, default 64, capped at the ring size).
func (s *Server) handleWaves(w http.ResponseWriter, r *http.Request) {
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", q))
			return
		}
		n = v
	}
	if n > waveRingSize {
		n = waveRingSize
	}
	traces := s.met.obs().waves.Last(n)
	resp := wire.WavesResponse{Waves: make([]wire.WaveTrace, len(traces))}
	for i, t := range traces {
		resp.Waves[i] = waveDTO(t)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// snapshotMetrics collects the full metrics snapshot once; both the JSON
// and the Prometheus renderers serve from the same value, so the two
// formats cannot disagree about a scrape.
func (s *Server) snapshotMetrics() wire.Metrics {
	m := wire.Metrics{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Users:             s.spa.Users(),
		Requests:          s.met.requests.Load(),
		RequestErrors:     s.met.requestErrors.Load(),
		IngestRequests:    s.met.ingestRequests.Load(),
		IngestBinary:      s.met.ingestBinary.Load(),
		IngestEvents:      s.met.ingestEvents.Load(),
		IngestRejected:    s.met.ingestRejected.Load(),
		IngestCommits:     s.met.ingestCommits.Load(),
		CoalescedRequests: s.met.coalescedRequests.Load(),
		MaxCoalesced:      int(s.met.maxCoalesced.Load()),
		PipelineDepth:     int(s.met.pipelineDepth.Load()),
		PipelineOverlap:   s.met.pipelineOverlap.Load(),
		StreamConns:       int(s.met.streamConns.Load()),
		StreamFrames:      s.met.streamFrames.Load(),
		LastWaveID:        s.met.waveSeq.Load(),
	}
	rs := s.spa.ReadStats()
	m.SnapshotEpoch = rs.SnapshotEpoch
	m.ReadCacheHits = rs.ReadCacheHits
	m.ReadCacheMisses = rs.ReadCacheMisses
	m.KNNRebuilds = rs.KNNRebuilds
	if s.co != nil {
		m.QueueDepth = s.co.depth()
		m.QueueCapacity = s.co.capacity()
	}
	if st, ok := s.spa.StoreStats(); ok {
		m.Durable = true
		m.StoreSegments = st.Segments
		m.StoreSegmentBytes = st.SegmentBytes
		m.StoreMemtableKeys = st.MemtableKeys
		m.StoreCompactions = st.Compactions
		m.StoreCompactError = st.CompactionErr
		m.WALSealedFiles = st.WALSealedFiles
		m.WALSealedBytes = st.WALSealedBytes
		m.WALDiscardedBytes = st.WALDiscardedBytes
		// Replication is meaningful only on a durable core; the status and
		// the metrics snapshot share one collector so they cannot disagree.
		rst := s.replicationStatus()
		m.ReplRole = rst.Role
		m.ReplAppliedLSN = rst.AppliedLSN
		m.ReplLagWaves = rst.LagWaves
		m.ReplFollowers = len(rst.Followers)
		m.ReplSnapshotBytes = rst.SnapshotBytes
	}
	// The cluster series render on every node — zeros outside cluster mode
	// — so dashboards and the -check-metrics stable map never see the key
	// set change with deployment shape.
	if s.cluster != nil {
		m.ClusterEpoch = s.cluster.epochNow()
		m.ClusterSlotsOwned = s.cluster.slotsOwned()
	}
	m.ClusterBounces = s.met.clusterBounces.Load()
	m.SlotMoves = s.met.slotMoves.Load()
	ob := s.met.obs()
	m.StageBoundsNanos = obs.BoundsNanos()
	m.Stages = make(map[string]wire.Histogram, len(stageNames))
	for _, n := range stageNames {
		m.Stages[n] = histDTO(ob.stages[n])
	}
	m.Endpoints = make(map[string]wire.Histogram, len(endpointNames))
	for _, n := range endpointNames {
		m.Endpoints[n] = histDTO(ob.endpoints[n])
	}
	return m
}

// wantsProm decides the /metrics representation. JSON stays the default —
// spabench, the smoke scripts and curl without headers predate the text
// exposition — so Prometheus must be asked for, by ?format=prometheus or
// an Accept naming text/plain or OpenMetrics. (A scraper's typical Accept
// lists both; curl's default */* keeps JSON.)
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.snapshotMetrics()
	if wantsProm(r) {
		w.Header().Set("Content-Type", obs.PromContentType)
		w.WriteHeader(http.StatusOK)
		writePromMetrics(w, m)
		return
	}
	s.writeJSON(w, http.StatusOK, m)
}
