package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/spaclient"
	"repro/internal/store"
	"repro/internal/wire"
)

// streamClient builds a StreamIngester over a test server's base URL.
func streamClient(t *testing.T, baseURL string, opts spaclient.StreamOptions) *spaclient.StreamIngester {
	t.Helper()
	c := spaclient.New(baseURL, spaclient.Options{Timeout: 10 * time.Second})
	si := c.Stream(opts)
	t.Cleanup(func() { si.Close() })
	return si
}

// TestStreamEndToEnd: concurrent Ingest calls multiplex onto one upgraded
// connection, every batch commits with in-order answers, and the metrics
// account for the session and its frames.
func TestStreamEndToEnd(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 4}, Options{})
	const users = 4
	for u := uint64(1); u <= users; u++ {
		if err := spa.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})

	const rounds = 8
	var wg sync.WaitGroup
	errCh := make(chan error, users)
	for u := uint64(1); u <= users; u++ {
		wg.Add(1)
		go func(u uint64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := si.Ingest([]lifelog.Event{evAt(u, r+1)})
				if err != nil {
					errCh <- fmt.Errorf("user %d round %d: %v", u, r, err)
					return
				}
				if resp.Processed != 1 || resp.SkippedUnknown != 0 || resp.CoalescedWith < 1 {
					errCh <- fmt.Errorf("user %d round %d: %+v", u, r, resp)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.StreamConns != 1 {
		t.Fatalf("stream conns %d, want 1", m.StreamConns)
	}
	if m.StreamFrames != users*rounds {
		t.Fatalf("stream frames %d, want %d", m.StreamFrames, users*rounds)
	}
	if m.IngestEvents != users*rounds {
		t.Fatalf("ingest events %d, want %d", m.IngestEvents, users*rounds)
	}
	if err := si.Close(); err != nil {
		t.Fatal(err)
	}
	// The gauge settles once the session is gone.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
			t.Fatalf("metrics: %d", code)
		}
		if m.StreamConns == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream conns %d after Close", m.StreamConns)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamRawTCP: the same protocol over spad -stream-addr's raw
// listener, no HTTP handshake.
func TestStreamRawTCP(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	si := streamClient(t, ts.URL, spaclient.StreamOptions{Addr: ln.Addr().String()})
	for r := 0; r < 3; r++ {
		resp, err := si.Ingest([]lifelog.Event{evAt(1, r+1)})
		if err != nil || resp.Processed != 1 {
			t.Fatalf("round %d: %+v %v", r, resp, err)
		}
	}
}

// spaFromTS reaches the *Server under a httptest server so tests can use
// ServeStream and the metrics directly.
func spaFromTS(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	srv, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatalf("handler is %T, not *Server", ts.Config.Handler)
	}
	return srv
}

// TestStreamInOrderErrors: a poisoned batch mid-stream gets its own
// in-order error answer (same status vocabulary as HTTP) and the stream
// keeps serving the batches around it.
func TestStreamInOrderErrors(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})

	if resp, err := si.Ingest([]lifelog.Event{evAt(1, 1)}); err != nil || resp.Processed != 1 {
		t.Fatalf("first: %+v %v", resp, err)
	}
	// Same user, backwards time: core.ErrBadStream → 400 for this batch only.
	_, err := si.Ingest([]lifelog.Event{evAt(1, 10), evAt(1, 5)})
	var apiErr *spaclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("poisoned batch: %v", err)
	}
	if resp, err := si.Ingest([]lifelog.Event{evAt(1, 20)}); err != nil || resp.Processed != 1 {
		t.Fatalf("after error: %+v %v", resp, err)
	}
}

// TestStreamFallback: a daemon with the binary framing disabled has no
// stream endpoint; the ingester transparently speaks per-request JSON.
func TestStreamFallback(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{DisableBinary: true})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})
	resp, err := si.Ingest([]lifelog.Event{evAt(1, 1)})
	if err != nil || resp.Processed != 1 {
		t.Fatalf("fallback ingest: %+v %v", resp, err)
	}
	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.StreamConns != 0 || m.StreamFrames != 0 {
		t.Fatalf("fallback opened a stream: %+v", m)
	}
	if m.IngestRequests != 1 {
		t.Fatalf("per-request fallback not used: %+v", m)
	}
}

// TestStreamRefusedWhileDraining: once Close has begun, new stream
// sessions are refused instead of silently accepted and stranded.
func TestStreamRefusedWhileDraining(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 2, Clock: clock.NewSimulated(t0.Add(24 * time.Hour))})
	if err != nil {
		t.Fatal(err)
	}
	defer spa.Close()
	srv := New(spa, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	srv.Close()

	c := spaclient.New(ts.URL, spaclient.Options{})
	si := c.Stream(spaclient.StreamOptions{})
	defer si.Close()
	if _, err := si.Ingest([]lifelog.Event{evAt(1, 1)}); err == nil {
		t.Fatal("stream accepted on a draining server")
	}
}

// TestStreamUpgradeRequired: a plain GET without the upgrade headers is
// told how to upgrade rather than hijacked.
func TestStreamUpgradeRequired(t *testing.T) {
	ts, _ := testServer(t, core.Options{Shards: 1}, Options{})
	resp, err := http.Get(ts.URL + wire.StreamPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("status %d, want 426", resp.StatusCode)
	}
	if got := resp.Header.Get("Upgrade"); got != wire.StreamProtocol {
		t.Fatalf("Upgrade header %q", got)
	}
}

// TestStreamBadFrameTerminal: framing-level garbage poisons the byte
// stream, so the server answers everything outstanding, sends a terminal
// error frame, and closes — it does not guess at resynchronization.
func TestStreamBadFrameTerminal(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := readHello(br); err != nil {
		t.Fatal(err)
	}
	// One good frame, then garbage with a valid length prefix.
	good := wire.EncodeIngestRequest(wire.FromEvents([]lifelog.Event{evAt(1, 1)}))
	if err := wire.WriteStreamFrame(conn, good); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteStreamFrame(conn, []byte("not a SPAB frame")); err != nil {
		t.Fatal(err)
	}
	// First answer: the good frame's response, in order.
	frame := mustReadFrame(t, br)
	if kind, _ := wire.FrameKind(frame); kind != wire.KindIngestResponse {
		t.Fatalf("first answer kind %#x", kind)
	}
	// Then (skipping the credit grant) a terminal error, then EOF.
	sawError := false
	for {
		frame, err := wire.ReadStreamFrame(br, 1<<20)
		if err != nil {
			break
		}
		if kind, _ := wire.FrameKind(frame); kind == wire.KindStreamError {
			se, err := wire.DecodeStreamError(frame)
			if err != nil || se.Status != http.StatusBadRequest {
				t.Fatalf("terminal error: %+v %v", se, err)
			}
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no terminal error frame before close")
	}
}

func readHello(br *bufio.Reader) (wire.StreamHello, error) {
	frame, err := wire.ReadStreamFrame(br, 1<<20)
	if err != nil {
		return wire.StreamHello{}, err
	}
	return wire.DecodeStreamHello(frame)
}

func mustReadFrame(t *testing.T, br *bufio.Reader) []byte {
	t.Helper()
	frame, err := wire.ReadStreamFrame(br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestStreamDrainMixedTraffic is the acceptance drain test: HTTP requests
// and stream frames in flight together while the server shuts down. Every
// acknowledged batch must be committed and accounted; every in-flight one
// must get a definitive answer (success or a draining refusal) — nothing
// hangs, nothing acknowledged is lost.
func TestStreamDrainMixedTraffic(t *testing.T) {
	dir := t.TempDir()
	spa, err := core.New(core.Options{
		DataDir: dir, Shards: 4, Store: store.Options{SyncWrites: true},
		Clock: clock.NewSimulated(t0.Add(24 * time.Hour)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(spa, Options{Pipeline: true, StreamDrainWait: 2 * time.Second})
	ts := httptest.NewServer(srv)

	const (
		httpClients   = 3
		streamClients = 3
	)
	for u := uint64(1); u <= httpClients+streamClients; u++ {
		if err := spa.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}

	var acked atomic.Int64 // events the server acknowledged
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// HTTP lanes: hammer /v1/ingest until told to stop; after stop, errors
	// are expected (the listener is going away), but an OK means committed.
	for cl := 0; cl < httpClients; cl++ {
		wg.Add(1)
		go func(user uint64) {
			defer wg.Done()
			c := spaclient.New(ts.URL, spaclient.Options{Timeout: 5 * time.Second})
			for seq := 1; ; seq++ {
				resp, err := c.Ingest([]lifelog.Event{evAt(user, seq)})
				if err == nil && resp.Processed == 1 {
					acked.Add(1)
				}
				select {
				case <-stop:
					return
				default:
				}
				if err != nil {
					return
				}
			}
		}(uint64(cl + 1))
	}
	// Stream lanes: same, over persistent connections.
	for cl := 0; cl < streamClients; cl++ {
		wg.Add(1)
		go func(user uint64) {
			defer wg.Done()
			c := spaclient.New(ts.URL, spaclient.Options{Timeout: 5 * time.Second})
			si := c.Stream(spaclient.StreamOptions{})
			defer si.Close()
			for seq := 1; ; seq++ {
				resp, err := si.Ingest([]lifelog.Event{evAt(user, seq)})
				if err == nil && resp.Processed == 1 {
					acked.Add(1)
				}
				select {
				case <-stop:
					return
				default:
				}
				if err != nil {
					return
				}
			}
		}(uint64(httpClients + cl + 1))
	}

	// Let traffic build, then shut down mid-flight, exactly like spad's
	// SIGTERM path: stop HTTP intake, then drain streams + coalescer.
	time.Sleep(100 * time.Millisecond)
	ts.CloseClientConnections()
	close(stop)
	ts.Close()
	srv.Close()
	wg.Wait()

	committed := srv.met.ingestEvents.Load()
	if committed < uint64(acked.Load()) {
		t.Fatalf("committed %d < acknowledged %d", committed, acked.Load())
	}
	if acked.Load() == 0 {
		t.Fatal("no traffic was acknowledged before the drain")
	}
	// Durability: reopen the store and count nothing lost structurally.
	if err := spa.Close(); err != nil {
		t.Fatal(err)
	}
	spa2, err := core.New(core.Options{
		DataDir: dir, Shards: 4, Store: store.Options{SyncWrites: true},
		Clock: clock.NewSimulated(t0.Add(48 * time.Hour)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer spa2.Close()
	if got := spa2.Users(); got != httpClients+streamClients {
		t.Fatalf("reopened users %d", got)
	}
}

// TestStreamBackpressureByCredit: with a tiny window and queue, a burst of
// concurrent senders cannot overrun the server — calls serialize behind
// credit instead of failing, and every batch still commits exactly once.
func TestStreamBackpressureByCredit(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2},
		Options{StreamWindow: 1, QueueDepth: 2, MaxBatch: 2})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})
	const n = 16
	var wg sync.WaitGroup
	var processed atomic.Int64
	errCh := make(chan error, n)
	var seqMu sync.Mutex
	seq := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seqMu.Lock()
			seq++
			ev := evAt(1, seq)
			seqMu.Unlock()
			// Per-user order across a shared stream is not guaranteed for
			// concurrent senders; use strictly increasing times issued
			// under the lock so most interleavings stay legal, and accept
			// per-batch 400s (bad interleavings) but never transport errors.
			resp, err := si.Ingest([]lifelog.Event{ev})
			var apiErr *spaclient.APIError
			if err != nil && !(errors.As(err, &apiErr) && apiErr.Status == http.StatusBadRequest) {
				errCh <- err
				return
			}
			processed.Add(int64(resp.Processed))
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if processed.Load() == 0 {
		t.Fatal("nothing processed under backpressure")
	}
}

// TestStreamDecodeErrorPerFrame: a frame whose SPAB payload is malformed
// (sound length, bad contents) fails alone; the session survives.
func TestStreamDecodeErrorPerFrame(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := readHello(br); err != nil {
		t.Fatal(err)
	}
	// A truncated-but-SPAB ingest frame: header fine, payload garbage.
	bad := wire.EncodeIngestRequest(wire.FromEvents([]lifelog.Event{evAt(1, 1)}))
	bad = bad[:len(bad)-2]
	if err := wire.WriteStreamFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	good := wire.EncodeIngestRequest(wire.FromEvents([]lifelog.Event{evAt(1, 2)}))
	if err := wire.WriteStreamFrame(conn, good); err != nil {
		t.Fatal(err)
	}
	var kinds []byte
	for len(kinds) < 4 {
		frame := mustReadFrame(t, br)
		kind, err := wire.FrameKind(frame)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, kind)
	}
	want := []byte{wire.KindStreamError, wire.KindStreamCredit, wire.KindIngestResponse, wire.KindStreamCredit}
	if !bytes.Equal(kinds, want) {
		t.Fatalf("answer kinds %v, want %v", kinds, want)
	}
}

// TestStreamRawTCPDisabledFallsBack: DisableBinary disables streams on the
// raw TCP listener too (streams are binary-only), and the refusal is
// spoken in-protocol so the client falls back to per-request HTTP.
func TestStreamRawTCPDisabledFallsBack(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{DisableBinary: true})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	si := streamClient(t, ts.URL, spaclient.StreamOptions{Addr: ln.Addr().String()})
	resp, err := si.Ingest([]lifelog.Event{evAt(1, 1)})
	if err != nil || resp.Processed != 1 {
		t.Fatalf("fallback ingest: %+v %v", resp, err)
	}
	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.StreamFrames != 0 || m.StreamConns != 0 {
		t.Fatalf("disabled raw listener served a stream: %+v", m)
	}
}
