package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/spaclient"
	"repro/internal/store"
	"repro/internal/sum"
	"repro/internal/torture"
	"repro/internal/wire"
)

// streamClient builds a StreamIngester over a test server's base URL.
func streamClient(t *testing.T, baseURL string, opts spaclient.StreamOptions) *spaclient.StreamIngester {
	t.Helper()
	c := spaclient.New(baseURL, spaclient.Options{Timeout: 10 * time.Second})
	si := c.Stream(opts)
	t.Cleanup(func() { si.Close() })
	return si
}

// TestStreamEndToEnd: concurrent Ingest calls multiplex onto one upgraded
// connection, every batch commits with in-order answers, and the metrics
// account for the session and its frames.
func TestStreamEndToEnd(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 4}, Options{})
	const users = 4
	for u := uint64(1); u <= users; u++ {
		if err := spa.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})

	const rounds = 8
	var wg sync.WaitGroup
	errCh := make(chan error, users)
	for u := uint64(1); u <= users; u++ {
		wg.Add(1)
		go func(u uint64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := si.Ingest([]lifelog.Event{evAt(u, r+1)})
				if err != nil {
					errCh <- fmt.Errorf("user %d round %d: %v", u, r, err)
					return
				}
				if resp.Processed != 1 || resp.SkippedUnknown != 0 || resp.CoalescedWith < 1 {
					errCh <- fmt.Errorf("user %d round %d: %+v", u, r, resp)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.StreamConns != 1 {
		t.Fatalf("stream conns %d, want 1", m.StreamConns)
	}
	if m.StreamFrames != users*rounds {
		t.Fatalf("stream frames %d, want %d", m.StreamFrames, users*rounds)
	}
	if m.IngestEvents != users*rounds {
		t.Fatalf("ingest events %d, want %d", m.IngestEvents, users*rounds)
	}
	if err := si.Close(); err != nil {
		t.Fatal(err)
	}
	// The gauge settles once the session is gone.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
			t.Fatalf("metrics: %d", code)
		}
		if m.StreamConns == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream conns %d after Close", m.StreamConns)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamRawTCP: the same protocol over spad -stream-addr's raw
// listener, no HTTP handshake.
func TestStreamRawTCP(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	si := streamClient(t, ts.URL, spaclient.StreamOptions{Addr: ln.Addr().String()})
	for r := 0; r < 3; r++ {
		resp, err := si.Ingest([]lifelog.Event{evAt(1, r+1)})
		if err != nil || resp.Processed != 1 {
			t.Fatalf("round %d: %+v %v", r, resp, err)
		}
	}
}

// spaFromTS reaches the *Server under a httptest server so tests can use
// ServeStream and the metrics directly.
func spaFromTS(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	srv, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatalf("handler is %T, not *Server", ts.Config.Handler)
	}
	return srv
}

// TestStreamInOrderErrors: a poisoned batch mid-stream gets its own
// in-order error answer (same status vocabulary as HTTP) and the stream
// keeps serving the batches around it.
func TestStreamInOrderErrors(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})

	if resp, err := si.Ingest([]lifelog.Event{evAt(1, 1)}); err != nil || resp.Processed != 1 {
		t.Fatalf("first: %+v %v", resp, err)
	}
	// Same user, backwards time: core.ErrBadStream → 400 for this batch only.
	_, err := si.Ingest([]lifelog.Event{evAt(1, 10), evAt(1, 5)})
	var apiErr *spaclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("poisoned batch: %v", err)
	}
	if resp, err := si.Ingest([]lifelog.Event{evAt(1, 20)}); err != nil || resp.Processed != 1 {
		t.Fatalf("after error: %+v %v", resp, err)
	}
}

// TestStreamFallback: a daemon with the binary framing disabled has no
// stream endpoint; the ingester transparently speaks per-request JSON.
func TestStreamFallback(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{DisableBinary: true})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})
	resp, err := si.Ingest([]lifelog.Event{evAt(1, 1)})
	if err != nil || resp.Processed != 1 {
		t.Fatalf("fallback ingest: %+v %v", resp, err)
	}
	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.StreamConns != 0 || m.StreamFrames != 0 {
		t.Fatalf("fallback opened a stream: %+v", m)
	}
	if m.IngestRequests != 1 {
		t.Fatalf("per-request fallback not used: %+v", m)
	}
}

// TestStreamRefusedWhileDraining: once Close has begun, new stream
// sessions are refused instead of silently accepted and stranded.
func TestStreamRefusedWhileDraining(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 2, Clock: clock.NewSimulated(t0.Add(24 * time.Hour))})
	if err != nil {
		t.Fatal(err)
	}
	defer spa.Close()
	srv := New(spa, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	srv.Close()

	c := spaclient.New(ts.URL, spaclient.Options{})
	si := c.Stream(spaclient.StreamOptions{})
	defer si.Close()
	if _, err := si.Ingest([]lifelog.Event{evAt(1, 1)}); err == nil {
		t.Fatal("stream accepted on a draining server")
	}
}

// TestStreamUpgradeRequired: a plain GET without the upgrade headers is
// told how to upgrade rather than hijacked.
func TestStreamUpgradeRequired(t *testing.T) {
	ts, _ := testServer(t, core.Options{Shards: 1}, Options{})
	resp, err := http.Get(ts.URL + wire.StreamPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("status %d, want 426", resp.StatusCode)
	}
	if got := resp.Header.Get("Upgrade"); got != wire.StreamProtocol {
		t.Fatalf("Upgrade header %q", got)
	}
}

// TestStreamBadFrameTerminal: framing-level garbage poisons the byte
// stream, so the server answers everything outstanding, sends a terminal
// error frame, and closes — it does not guess at resynchronization.
func TestStreamBadFrameTerminal(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := readHello(br); err != nil {
		t.Fatal(err)
	}
	// One good frame, then garbage with a valid length prefix.
	good := wire.EncodeIngestRequest(wire.FromEvents([]lifelog.Event{evAt(1, 1)}))
	if err := wire.WriteStreamFrame(conn, good); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteStreamFrame(conn, []byte("not a SPAB frame")); err != nil {
		t.Fatal(err)
	}
	// First answer: the good frame's response, in order.
	frame := mustReadFrame(t, br)
	if kind, _ := wire.FrameKind(frame); kind != wire.KindIngestResponse {
		t.Fatalf("first answer kind %#x", kind)
	}
	// Then (skipping the credit grant) a terminal error, then EOF.
	sawError := false
	for {
		frame, err := wire.ReadStreamFrame(br, 1<<20)
		if err != nil {
			break
		}
		if kind, _ := wire.FrameKind(frame); kind == wire.KindStreamError {
			se, err := wire.DecodeStreamError(frame)
			if err != nil || se.Status != http.StatusBadRequest {
				t.Fatalf("terminal error: %+v %v", se, err)
			}
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no terminal error frame before close")
	}
}

func readHello(br *bufio.Reader) (wire.StreamHello, error) {
	frame, err := wire.ReadStreamFrame(br, 1<<20)
	if err != nil {
		return wire.StreamHello{}, err
	}
	return wire.DecodeStreamHello(frame)
}

func mustReadFrame(t *testing.T, br *bufio.Reader) []byte {
	t.Helper()
	frame, err := wire.ReadStreamFrame(br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestStreamDrainMixedTraffic is the acceptance drain test: HTTP requests
// and stream frames in flight together while the server shuts down. Every
// acknowledged batch must be committed and accounted; every in-flight one
// must get a definitive answer (success or a draining refusal) — nothing
// hangs, nothing acknowledged is lost.
func TestStreamDrainMixedTraffic(t *testing.T) {
	dir := t.TempDir()
	spa, err := core.New(core.Options{
		DataDir: dir, Shards: 4, Store: store.Options{SyncWrites: true},
		Clock: clock.NewSimulated(t0.Add(24 * time.Hour)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(spa, Options{Pipeline: true, StreamDrainWait: 2 * time.Second})
	ts := httptest.NewServer(srv)

	const (
		httpClients   = 3
		streamClients = 3
	)
	for u := uint64(1); u <= httpClients+streamClients; u++ {
		if err := spa.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}

	var acked atomic.Int64 // events the server acknowledged
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// HTTP lanes: hammer /v1/ingest until told to stop; after stop, errors
	// are expected (the listener is going away), but an OK means committed.
	for cl := 0; cl < httpClients; cl++ {
		wg.Add(1)
		go func(user uint64) {
			defer wg.Done()
			c := spaclient.New(ts.URL, spaclient.Options{Timeout: 5 * time.Second})
			for seq := 1; ; seq++ {
				resp, err := c.Ingest([]lifelog.Event{evAt(user, seq)})
				if err == nil && resp.Processed == 1 {
					acked.Add(1)
				}
				select {
				case <-stop:
					return
				default:
				}
				if err != nil {
					return
				}
			}
		}(uint64(cl + 1))
	}
	// Stream lanes: same, over persistent connections.
	for cl := 0; cl < streamClients; cl++ {
		wg.Add(1)
		go func(user uint64) {
			defer wg.Done()
			c := spaclient.New(ts.URL, spaclient.Options{Timeout: 5 * time.Second})
			si := c.Stream(spaclient.StreamOptions{})
			defer si.Close()
			for seq := 1; ; seq++ {
				resp, err := si.Ingest([]lifelog.Event{evAt(user, seq)})
				if err == nil && resp.Processed == 1 {
					acked.Add(1)
				}
				select {
				case <-stop:
					return
				default:
				}
				if err != nil {
					return
				}
			}
		}(uint64(httpClients + cl + 1))
	}

	// Let traffic build, then shut down mid-flight, exactly like spad's
	// SIGTERM path: stop HTTP intake, then drain streams + coalescer.
	time.Sleep(100 * time.Millisecond)
	ts.CloseClientConnections()
	close(stop)
	ts.Close()
	srv.Close()
	wg.Wait()

	committed := srv.met.ingestEvents.Load()
	if committed < uint64(acked.Load()) {
		t.Fatalf("committed %d < acknowledged %d", committed, acked.Load())
	}
	if acked.Load() == 0 {
		t.Fatal("no traffic was acknowledged before the drain")
	}
	// Durability: reopen the store and count nothing lost structurally.
	if err := spa.Close(); err != nil {
		t.Fatal(err)
	}
	spa2, err := core.New(core.Options{
		DataDir: dir, Shards: 4, Store: store.Options{SyncWrites: true},
		Clock: clock.NewSimulated(t0.Add(48 * time.Hour)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer spa2.Close()
	if got := spa2.Users(); got != httpClients+streamClients {
		t.Fatalf("reopened users %d", got)
	}
}

// TestStreamBackpressureByCredit: with a tiny window and queue, a burst of
// concurrent senders cannot overrun the server — calls serialize behind
// credit instead of failing, and every batch still commits exactly once.
func TestStreamBackpressureByCredit(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2},
		Options{StreamWindow: 1, QueueDepth: 2, MaxBatch: 2})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})
	const n = 16
	var wg sync.WaitGroup
	var processed atomic.Int64
	errCh := make(chan error, n)
	var seqMu sync.Mutex
	seq := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seqMu.Lock()
			seq++
			ev := evAt(1, seq)
			seqMu.Unlock()
			// Per-user order across a shared stream is not guaranteed for
			// concurrent senders; use strictly increasing times issued
			// under the lock so most interleavings stay legal, and accept
			// per-batch 400s (bad interleavings) but never transport errors.
			resp, err := si.Ingest([]lifelog.Event{ev})
			var apiErr *spaclient.APIError
			if err != nil && !(errors.As(err, &apiErr) && apiErr.Status == http.StatusBadRequest) {
				errCh <- err
				return
			}
			processed.Add(int64(resp.Processed))
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if processed.Load() == 0 {
		t.Fatal("nothing processed under backpressure")
	}
}

// TestStreamDecodeErrorPerFrame: a frame whose SPAB payload is malformed
// (sound length, bad contents) fails alone; the session survives.
func TestStreamDecodeErrorPerFrame(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := readHello(br); err != nil {
		t.Fatal(err)
	}
	// A truncated-but-SPAB ingest frame: header fine, payload garbage.
	bad := wire.EncodeIngestRequest(wire.FromEvents([]lifelog.Event{evAt(1, 1)}))
	bad = bad[:len(bad)-2]
	if err := wire.WriteStreamFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	good := wire.EncodeIngestRequest(wire.FromEvents([]lifelog.Event{evAt(1, 2)}))
	if err := wire.WriteStreamFrame(conn, good); err != nil {
		t.Fatal(err)
	}
	var kinds []byte
	for len(kinds) < 4 {
		frame := mustReadFrame(t, br)
		kind, err := wire.FrameKind(frame)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, kind)
	}
	want := []byte{wire.KindStreamError, wire.KindStreamCredit, wire.KindIngestResponse, wire.KindStreamCredit}
	if !bytes.Equal(kinds, want) {
		t.Fatalf("answer kinds %v, want %v", kinds, want)
	}
}

// stuckConn is a net.Conn whose writes park forever — the shape of a peer
// that stopped reading behind a full TCP send buffer — until a deadline is
// armed, after which every parked and future write fails.
type stuckConn struct {
	inWrite chan struct{} // closed when the first write has parked
	unblock chan struct{} // closed by SetDeadline; writes then fail
	onceIn  sync.Once
	onceOut sync.Once
}

func (c *stuckConn) Write(p []byte) (int, error) {
	c.onceIn.Do(func() { close(c.inWrite) })
	<-c.unblock
	return 0, errors.New("injected write deadline")
}
func (c *stuckConn) Read(p []byte) (int, error) { <-c.unblock; return 0, io.EOF }
func (c *stuckConn) Close() error               { return nil }
func (c *stuckConn) LocalAddr() net.Addr        { return &net.TCPAddr{} }
func (c *stuckConn) RemoteAddr() net.Addr       { return &net.TCPAddr{} }
func (c *stuckConn) SetDeadline(t time.Time) error {
	if !t.IsZero() {
		c.onceOut.Do(func() { close(c.unblock) })
	}
	return nil
}
func (c *stuckConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *stuckConn) SetWriteDeadline(t time.Time) error { return nil }

// TestStreamDrainInterruptsStalledWrite: initiateDrain must arm the
// session deadline BEFORE writing the drain frame. The drain write shares
// wmu with the responder, so if the responder is already parked in a write
// to a client that stopped reading, a write-first drain would block on wmu
// with the deadline never set — and one stalled client would hang
// drainStreams, Server.Close, and spad's SIGTERM path forever.
func TestStreamDrainInterruptsStalledWrite(t *testing.T) {
	fc := &stuckConn{inWrite: make(chan struct{}), unblock: make(chan struct{})}
	sess := &streamSession{conn: fc, bw: bufio.NewWriter(fc)}
	// The responder's stance: wmu held, parked in a write nobody drains.
	go sess.writeFrames(wire.EncodeStreamCredit(1))
	<-fc.inWrite
	done := make(chan struct{})
	go func() {
		sess.initiateDrain(time.Now().Add(10 * time.Millisecond))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("initiateDrain parked behind a stalled responder write")
	}
}

// stallingFileOps passes through to the real filesystem but, once armed,
// parks every WAL write on a gate — commits hang instead of failing, which
// pins coalescer jobs (and therefore the stream responder, and therefore
// credit returns) for as long as a test needs.
type stallingFileOps struct {
	armed atomic.Bool
	gate  chan struct{}
}

func (f *stallingFileOps) Create(name string) (store.SegFile, error) { return os.Create(name) }
func (f *stallingFileOps) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
func (f *stallingFileOps) Remove(name string) error { return os.Remove(name) }
func (f *stallingFileOps) OpenWAL(name string) (store.WALFile, error) {
	file, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &stallingWAL{fs: f, File: file}, nil
}

type stallingWAL struct {
	fs *stallingFileOps
	*os.File
}

func (w *stallingWAL) Write(p []byte) (int, error) {
	if w.fs.armed.Load() {
		<-w.fs.gate
	}
	return w.File.Write(p)
}

// TestStreamCreditViolationTerminal: the credit window is a protocol
// promise, not advice. A client that keeps sending with zero credit
// outstanding gets a terminal 400 — after every frame it was entitled to
// send is still answered in order.
func TestStreamCreditViolationTerminal(t *testing.T) {
	fops := &stallingFileOps{gate: make(chan struct{})}
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(fops.gate) }) }
	defer release()

	// SyncWrites matters: it forces each commit through the (stallable)
	// WAL write instead of parking bytes in the WAL's bufio buffer.
	ts, spa := testServer(t,
		core.Options{DataDir: t.TempDir(), Shards: 2,
			Store: store.Options{SyncWrites: true, FileOps: fops}},
		Options{StreamWindow: 2})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	hello, err := readHello(br)
	if err != nil {
		t.Fatal(err)
	}
	if hello.Credit != 2 {
		t.Fatalf("hello credit %d, want 2", hello.Credit)
	}
	// Stall commits, then send window+1 frames without waiting for any
	// credit back: the first two are within the grant, the third violates
	// it — and with commits pinned, no credit can come back to excuse it.
	fops.armed.Store(true)
	for seq := 1; seq <= 3; seq++ {
		frame := wire.EncodeIngestRequest(wire.FromEvents([]lifelog.Event{evAt(1, seq)}))
		if err := wire.WriteStreamFrame(conn, frame); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the reader has counted all three frames — with commits
	// pinned no credit can come back, so outstanding reaches exactly 3 and
	// stays there — then let the commits go so the responder can flush the
	// in-window answers and the terminal error. Polling the counter (not
	// sleeping) makes the violation deterministic: the gate only opens
	// after the window check has already tripped.
	var sess *streamSession
	deadline := time.Now().Add(5 * time.Second)
	for sess == nil {
		if time.Now().After(deadline) {
			t.Fatal("stream session never registered")
		}
		srv.streamMu.Lock()
		for s := range srv.streams {
			sess = s
		}
		srv.streamMu.Unlock()
		time.Sleep(time.Millisecond)
	}
	for sess.outstanding.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("server reader never consumed the violating frame")
		}
		time.Sleep(time.Millisecond)
	}
	release()

	// A regression that stops tripping the window would leave the server
	// waiting for more frames; bound the reads so that fails instead of
	// hanging the package.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var responses int
	var terminal *wire.StreamError
	for {
		frame, err := wire.ReadStreamFrame(br, 1<<20)
		if err != nil {
			break // server closed after the terminal error
		}
		switch kind, _ := wire.FrameKind(frame); kind {
		case wire.KindIngestResponse:
			responses++
		case wire.KindStreamError:
			se, err := wire.DecodeStreamError(frame)
			if err != nil {
				t.Fatal(err)
			}
			terminal = &se
		}
	}
	if responses != 2 {
		t.Fatalf("answered %d in-window frames, want 2", responses)
	}
	if terminal == nil {
		t.Fatal("no terminal error frame for the credit violation")
	}
	if terminal.Status != http.StatusBadRequest || !strings.Contains(terminal.Message, "credit window exceeded") {
		t.Fatalf("terminal error %+v", terminal)
	}
	if got := srv.met.streamFrames.Load(); got != 2 {
		t.Fatalf("stream frames %d, want 2 (violating frame must not count)", got)
	}
}

// TestStreamClientWriteDeadline: StreamOptions.Timeout bounds an Ingest
// call even when the server stops reading mid-write — the blocked write
// must break the connection within the budget instead of parking every
// concurrent caller (and Close) behind wmu forever.
func TestStreamClientWriteDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetReadBuffer(4 << 10) // shrink the pipe the write must fill
		}
		// Grant credit, then never read another byte.
		wire.WriteStreamFrame(conn, wire.EncodeStreamHello(wire.StreamHello{Credit: 4}))
		accepted <- conn
	}()

	c := spaclient.New("http://stream.invalid", spaclient.Options{})
	si := c.Stream(spaclient.StreamOptions{Addr: ln.Addr().String(), Timeout: 500 * time.Millisecond})
	t.Cleanup(func() { si.Close() })

	// A batch whose frame dwarfs any kernel socket buffering, so the write
	// is guaranteed to block against a non-reading peer.
	big := make([]lifelog.Event, 1<<20)
	for i := range big {
		big[i] = evAt(1, i+1)
	}
	start := time.Now()
	_, err = si.Ingest(big)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ingest into a non-reading server succeeded")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("ingest returned after %v; write deadline did not fire", elapsed)
	}
	if conn := <-accepted; conn != nil {
		conn.Close()
	}
}

// TestStreamClosePromptDuringDial: a dial stuck against an endpoint that
// accepts but never completes the handshake is bounded by DialTimeout —
// and must not park Close for that long, since Close only needs the state
// mutex, not the dial.
func TestStreamClosePromptDuringDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var connMu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			conns = append(conns, conn) // hold open, never send the hello
			connMu.Unlock()
		}
	}()
	t.Cleanup(func() {
		connMu.Lock()
		defer connMu.Unlock()
		for _, conn := range conns {
			conn.Close()
		}
	})

	c := spaclient.New("http://stream.invalid", spaclient.Options{})
	si := c.Stream(spaclient.StreamOptions{Addr: ln.Addr().String(), DialTimeout: 10 * time.Second})
	go si.Ingest([]lifelog.Event{evAt(1, 1)}) // parks in the hello read
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	si.Close()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Close took %v behind an in-flight dial", d)
	}
}

// TestStreamIngestCloseRace: Ingest calls racing Close resolve cleanly —
// either a real answer (the frame beat the drain onto the wire) or
// ErrIngesterClosed (it backed out bytes-unsent) — never a spurious
// transport failure from a frame written behind the drain frame that the
// server's reader, already gone, would never answer.
func TestStreamIngestCloseRace(t *testing.T) {
	const lanes = 8
	ts, spa := testServer(t, core.Options{Shards: 4}, Options{})
	for u := uint64(1); u <= lanes; u++ {
		if err := spa.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		si := streamClient(t, ts.URL, spaclient.StreamOptions{})
		var wg sync.WaitGroup
		errCh := make(chan error, lanes)
		for u := uint64(1); u <= lanes; u++ {
			wg.Add(1)
			go func(u uint64) {
				defer wg.Done()
				for seq := 1; seq <= 64; seq++ {
					if _, err := si.Ingest([]lifelog.Event{evAt(u, seq)}); err != nil {
						errCh <- err
						return
					}
				}
			}(u)
		}
		time.Sleep(time.Duration(round) * time.Millisecond)
		si.Close()
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if !errors.Is(err, spaclient.ErrIngesterClosed) {
				t.Fatalf("round %d: ingest racing close: %v", round, err)
			}
		}
	}
}

// TestStreamRawTCPDisabledFallsBack: DisableBinary disables streams on the
// raw TCP listener too (streams are binary-only), and the refusal is
// spoken in-protocol so the client falls back to per-request HTTP.
func TestStreamRawTCPDisabledFallsBack(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{DisableBinary: true})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	srv := spaFromTS(t, ts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)

	si := streamClient(t, ts.URL, spaclient.StreamOptions{Addr: ln.Addr().String()})
	resp, err := si.Ingest([]lifelog.Event{evAt(1, 1)})
	if err != nil || resp.Processed != 1 {
		t.Fatalf("fallback ingest: %+v %v", resp, err)
	}
	var m wire.Metrics
	if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.StreamFrames != 0 || m.StreamConns != 0 {
		t.Fatalf("disabled raw listener served a stream: %+v", m)
	}
}

// TestStreamTortureSmoke is the serving-layer slice of the storage torture
// harness (internal/torture): a randomized fault schedule runs underneath
// the pipelined coalescer while one persistent stream session multiplexes
// several users' frames on top. Whatever the schedule injects — one-shot
// failures, torn writes, a device kill — the durability contract must
// hold: every frame the stream ACKNOWLEDGED is recovered when the
// directory is reopened with healthy file ops. Frames the stream rejected
// may land either way (their WAL record can be durable before the fault
// fires), but only whole.
func TestStreamTortureSmoke(t *testing.T) {
	for _, seed := range []int64{3, 17, 29, 45, 61, 88} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			streamTortureRound(t, seed)
		})
	}
}

func streamTortureRound(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	classes := []torture.OpClass{
		torture.OpWALWrite, torture.OpWALSync,
		torture.OpSegCreate, torture.OpSegWrite, torture.OpSegSync,
	}
	modes := []torture.Mode{torture.ModeFail, torture.ModeShort, torture.ModeKill}
	plan := make([]torture.Fault, 1+r.Intn(2))
	for i := range plan {
		plan[i] = torture.Fault{
			Class: classes[r.Intn(len(classes))],
			Mode:  modes[r.Intn(len(modes))],
			// Coalescing merges the ~72 frames into a handful of WAL
			// records, so early op indices are the ones a run reaches.
			Nth: uint64(1 + r.Intn(12)),
		}
	}
	fo := torture.NewScheduledOps(plan)

	const (
		users  = 6
		frames = 12
	)
	dir := t.TempDir()
	spa, err := core.New(core.Options{
		DataDir: dir,
		Store: store.Options{
			SyncWrites:            true,
			MemtableBytes:         2 << 10, // tiny: frames cross flushes, so segment faults matter
			DisableAutoCompaction: true,
			FileOps:               fo,
		},
		Shards: 4,
		Clock:  clock.NewSimulated(t0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := uint64(1); u <= users; u++ {
		if err := spa.Register(u, nil); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(spa, Options{Pipeline: true, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(srv)
	si := streamClient(t, ts.URL, spaclient.StreamOptions{})
	fo.Arm()

	// Each user ships frames in order on the shared stream and stops at
	// its first failure, so at most one frame per user is ambiguous.
	// Frame f carries events 2f+1 and 2f+2 — per-user monotone times.
	frameEvents := func(u uint64, f int) []lifelog.Event {
		return []lifelog.Event{evAt(u, 2*f+1), evAt(u, 2*f+2)}
	}
	acked := make([]int, users+1) // frames acknowledged, per user
	failed := make([]bool, users+1)
	var wg sync.WaitGroup
	for u := uint64(1); u <= users; u++ {
		wg.Add(1)
		go func(u uint64) {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				resp, err := si.Ingest(frameEvents(u, f))
				if err != nil {
					failed[u] = true
					return
				}
				if resp.Processed != 2 || resp.SkippedUnknown != 0 {
					t.Errorf("user %d frame %d: acked with %+v", u, f, resp)
					return
				}
				acked[u] = f + 1
			}
		}(u)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("plan %v, fired %v", plan, fo.Fired())
	}
	t.Logf("plan %v, fired %v, acked %v", plan, fo.Fired(), acked[1:])

	// Tear the serving stack down; Close may fail on a faulted device,
	// which is exactly a crash. No background compactor is running, so
	// the directory is quiet afterwards either way.
	si.Close()
	ts.Close()
	srv.Close()
	_ = spa.Close()

	// Reopen with healthy ops and rebuild the acked prefix on an
	// in-memory shadow core; profiles must agree user by user.
	spa2, err := core.New(core.Options{
		DataDir: dir,
		Store:   store.Options{SyncWrites: true, DisableAutoCompaction: true},
		Shards:  4,
		Clock:   clock.NewSimulated(t0),
	})
	if err != nil {
		t.Fatalf("recovery open failed (plan %v, fired %v): %v", plan, fo.Fired(), err)
	}
	defer spa2.Close()
	shadow, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer shadow.Close()

	profile := func(c *core.SPA, u uint64) []byte {
		t.Helper()
		p, err := c.Profile(u)
		if err != nil {
			t.Fatalf("profile %d (plan %v, fired %v): %v", u, plan, fo.Fired(), err)
		}
		return sum.Encode(&p)
	}
	for u := uint64(1); u <= users; u++ {
		if err := shadow.Register(u, nil); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < acked[u]; f++ {
			if _, _, err := shadow.IngestEvents(frameEvents(u, f)); err != nil {
				t.Fatal(err)
			}
		}
		got := profile(spa2, u)
		if bytes.Equal(got, profile(shadow, u)) {
			continue
		}
		// One allowance: the frame whose answer was an error may still
		// have committed before the fault fired — durable ahead of the
		// ack is legal, a torn or reordered frame is not.
		if failed[u] && acked[u] < frames {
			if _, _, err := shadow.IngestEvents(frameEvents(u, acked[u])); err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(got, profile(shadow, u)) {
				continue
			}
		}
		t.Fatalf("user %d: %d acked frames not recovered (plan %v, fired %v)",
			u, acked[u], plan, fo.Fired())
	}
}
