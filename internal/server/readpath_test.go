package server

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/wire"
)

// trainServer fits a propensity model on the registered users — the wire
// API has no training endpoint (training is an offline batch job), so
// tests train through the core handle exactly as spabench [S7] does.
func trainServer(t *testing.T, spa *core.SPA, ids ...uint64) {
	t.Helper()
	var feats [][]float64
	var labels []bool
	for i, id := range ids {
		fv, err := spa.FeatureVector(id)
		if err != nil {
			t.Fatal(err)
		}
		feats = append(feats, fv)
		labels = append(labels, i%2 == 0)
	}
	if err := spa.TrainPropensity(feats, labels); err != nil {
		t.Fatal(err)
	}
}

// TestSelectTopPartialAnswers200WithSkipped: a ranking that had to skip
// unscorable profiles is still a ranking — the endpoint answers 200 with
// the skip count, not a whole-request error.
func TestSelectTopPartialAnswers200WithSkipped(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	for id := uint64(1); id <= 6; id++ {
		if err := spa.Register(id, []float64{float64(id), 1}); err != nil {
			t.Fatal(err)
		}
	}
	trainServer(t, spa, 1, 2, 3, 4, 5, 6)
	// Registered after training with a wider objective block: the fitted
	// scaler cannot transform it.
	if err := spa.Register(99, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	var resp wire.SelectTopResponse
	code, _ := doJSON(t, "GET", ts.URL+"/v1/select-top?k=10", nil, &resp)
	if code != http.StatusOK {
		t.Fatalf("select-top: %d", code)
	}
	if resp.Skipped != 1 {
		t.Fatalf("skipped %d, want 1", resp.Skipped)
	}
	if len(resp.UserIDs) != 6 {
		t.Fatalf("ranked %d users, want 6: %v", len(resp.UserIDs), resp.UserIDs)
	}
	for _, id := range resp.UserIDs {
		if id == 99 {
			t.Fatalf("unscorable user ranked: %v", resp.UserIDs)
		}
	}
}

// TestReadPathMetricsHygiene pins the read-path gauges across both
// exposition formats: a fresh server starts at epoch >= 1 with zeroed
// cache counters, the epoch rises monotonically with ingest, and the
// Prometheus series always agree with the JSON snapshot.
func TestReadPathMetricsHygiene(t *testing.T) {
	ts, spa := testServer(t, core.Options{Shards: 2}, Options{})
	if err := spa.Register(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := spa.Register(2, nil); err != nil {
		t.Fatal(err)
	}

	snapshot := func() wire.Metrics {
		var m wire.Metrics
		if code, _ := doJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
			t.Fatalf("metrics: %d", code)
		}
		return m
	}
	crossCheck := func(m wire.Metrics) {
		t.Helper()
		fams, raw := fetchProm(t, ts.URL)
		get := func(series string) float64 {
			for _, f := range fams {
				if v, ok := f.Samples[series]; ok {
					return v
				}
			}
			t.Fatalf("series %s missing:\n%s", series, raw)
			return 0
		}
		checks := map[string]float64{
			"spad_snapshot_epoch":          float64(m.SnapshotEpoch),
			"spad_read_cache_hits_total":   float64(m.ReadCacheHits),
			"spad_read_cache_misses_total": float64(m.ReadCacheMisses),
			"spad_knn_rebuilds_total":      float64(m.KNNRebuilds),
		}
		for series, want := range checks {
			if got := get(series); got != want {
				t.Errorf("%s = %v in exposition, %v in JSON", series, got, want)
			}
		}
	}

	m0 := snapshot()
	// Registers publish snapshots, so the epoch is past its seed of 1; the
	// read caches must be untouched.
	if m0.SnapshotEpoch < 1 {
		t.Fatalf("fresh snapshot_epoch %d, want >= 1", m0.SnapshotEpoch)
	}
	if m0.ReadCacheHits != 0 || m0.ReadCacheMisses != 0 || m0.KNNRebuilds != 0 {
		t.Fatalf("fresh read counters not zero: %+v", m0)
	}
	crossCheck(m0)

	// Ingest interactions, then pull the same recommendation twice: the
	// epoch must rise, the first read misses, the second hits.
	evs := []lifelog.Event{
		{UserID: 1, Time: t0, Type: lifelog.EventClick, Action: 10},
		{UserID: 2, Time: t0, Type: lifelog.EventClick, Action: 10},
		{UserID: 2, Time: t0.Add(time.Minute), Type: lifelog.EventClick, Action: 20},
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/ingest", wire.IngestRequest{Events: wire.FromEvents(evs)}, nil); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	for i := 0; i < 2; i++ {
		var rec wire.RecommendResponse
		if code, _ := doJSON(t, "GET", ts.URL+"/v1/users/1/recommendations?n=1", nil, &rec); code != http.StatusOK {
			t.Fatalf("recommend: %d", code)
		}
	}
	m1 := snapshot()
	if m1.SnapshotEpoch <= m0.SnapshotEpoch {
		t.Fatalf("epoch not monotone across ingest: %d -> %d", m0.SnapshotEpoch, m1.SnapshotEpoch)
	}
	if m1.ReadCacheMisses != 1 || m1.ReadCacheHits != 1 || m1.KNNRebuilds != 1 {
		t.Fatalf("read counters after two pulls: %+v", m1)
	}
	crossCheck(m1)
}
