package campaign

import (
	"fmt"

	"repro/internal/colstore"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/synth"
)

// Attribute-matrix materialization: the Smart Component's scan path. The
// paper's deployment "gathers 75 objective, subjective and emotional
// attributes of 3,162,069 registered users" (§5.1); this file lays the
// pipeline's profiles out column-wise so per-attribute statistics (density,
// moments — the sparsity the paper discusses) and top-k scans run at column
// speed instead of dragging whole profiles through the cache.

// AttributeColumns returns the column names of the materialized matrix in
// layout order: objective block, subjective block, then the emotional block
// (signed sensibility per attribute followed by confidence per attribute).
func AttributeColumns() []string {
	var names []string
	names = append(names, synth.ObjectiveNames()...)
	names = append(names, lifelog.DenseNames()...)
	for _, a := range emotion.AllAttributes() {
		names = append(names, "emo_"+a.String())
	}
	for _, a := range emotion.AllAttributes() {
		names = append(names, "emo_conf_"+a.String())
	}
	return names
}

// AttributeMatrix materializes every profile into a columnar matrix.
// Emotional columns are only set for attributes with evidence, so column
// density reflects the Gradual EIT's actual coverage (the paper's sparsity
// problem made measurable).
func (pl *Pipeline) AttributeMatrix() (*colstore.Matrix, error) {
	names := AttributeColumns()
	m := colstore.New(len(pl.Profiles))
	cols := make([]*colstore.Column, len(names))
	for i, n := range names {
		c, err := m.AddColumn(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	nObj := synth.NumObjective
	nSub := lifelog.DenseLen
	for row, p := range pl.Profiles {
		if len(p.Objective) != nObj {
			return nil, fmt.Errorf("campaign: profile %d objective len %d", p.UserID, len(p.Objective))
		}
		for j, v := range p.Objective {
			cols[j].Set(row, float32(v))
		}
		for j, v := range p.Subjective {
			if j >= nSub {
				break
			}
			cols[nObj+j].Set(row, float32(v))
		}
		for a, st := range p.Emotional {
			if st.Evidence == 0 {
				continue // null until the EIT activates it
			}
			cols[nObj+nSub+a].Set(row, float32(st.Activation*float64(st.Valence)))
			cols[nObj+nSub+emotion.NumAttributes+a].Set(row, float32(st.Confidence()))
		}
	}
	return m, nil
}

// AttributeReport is one row of the §5.1-style attribute inventory.
type AttributeReport struct {
	Name    string
	Kind    string
	Density float64
	Mean    float64
	Std     float64
}

// AttributeInventory summarizes every column — the reproduction of the
// paper's "75 attributes" description with measured sparsity.
func (pl *Pipeline) AttributeInventory() ([]AttributeReport, error) {
	m, err := pl.AttributeMatrix()
	if err != nil {
		return nil, err
	}
	names := AttributeColumns()
	nObj := synth.NumObjective
	nSub := lifelog.DenseLen
	out := make([]AttributeReport, 0, len(names))
	for i, n := range names {
		c, err := m.Column(n)
		if err != nil {
			return nil, err
		}
		st := c.Stats()
		kind := "objective"
		switch {
		case i >= nObj+nSub:
			kind = "emotional"
		case i >= nObj:
			kind = "subjective"
		}
		out = append(out, AttributeReport{
			Name:    n,
			Kind:    kind,
			Density: c.Density(),
			Mean:    st.Mean,
			Std:     st.Std,
		})
	}
	return out, nil
}
