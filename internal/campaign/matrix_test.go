package campaign

import (
	"testing"

	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/synth"
)

func TestAttributeColumnsLayout(t *testing.T) {
	names := AttributeColumns()
	want := synth.NumObjective + lifelog.DenseLen + 2*emotion.NumAttributes
	if len(names) != want {
		t.Fatalf("%d columns, want %d", len(names), want)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate column %q", n)
		}
		seen[n] = true
	}
}

func TestAttributeMatrixDensity(t *testing.T) {
	pl := smallPipeline(t, 300, 21)
	// Before any EIT, emotional columns must be fully null; objective full.
	m, err := pl.AttributeMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 300 {
		t.Fatalf("rows %d", m.Rows())
	}
	age, _ := m.Column("obj_age")
	if age.Density() != 1 {
		t.Fatalf("objective density %v", age.Density())
	}
	emo, _ := m.Column("emo_enthusiastic")
	if emo.Density() != 0 {
		t.Fatalf("pre-EIT emotional density %v", emo.Density())
	}

	// After warmup, emotional coverage rises but stays below 1 (users who
	// never answer remain null — the sparsity problem).
	if _, err := pl.WarmupEIT(10); err != nil {
		t.Fatal(err)
	}
	m2, err := pl.AttributeMatrix()
	if err != nil {
		t.Fatal(err)
	}
	emo2, _ := m2.Column("emo_enthusiastic")
	if emo2.Density() <= 0.3 {
		t.Fatalf("post-EIT emotional density %v", emo2.Density())
	}
	conf, _ := m2.Column("emo_conf_enthusiastic")
	if conf.Density() != emo2.Density() {
		t.Fatal("confidence density differs from activation density")
	}
}

func TestAttributeInventory(t *testing.T) {
	pl := smallPipeline(t, 200, 22)
	pl.WarmupEIT(5)
	inv, err := pl.AttributeInventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(inv) != len(AttributeColumns()) {
		t.Fatalf("inventory size %d", len(inv))
	}
	kinds := map[string]int{}
	for _, r := range inv {
		if r.Density < 0 || r.Density > 1 {
			t.Fatalf("density %v for %s", r.Density, r.Name)
		}
		kinds[r.Kind]++
	}
	if kinds["objective"] != synth.NumObjective {
		t.Fatalf("objective kinds %d", kinds["objective"])
	}
	if kinds["subjective"] != lifelog.DenseLen {
		t.Fatalf("subjective kinds %d", kinds["subjective"])
	}
	if kinds["emotional"] != 2*emotion.NumAttributes {
		t.Fatalf("emotional kinds %d", kinds["emotional"])
	}
}

func BenchmarkAttributeMatrix(b *testing.B) {
	pop, err := synth.Generate(synth.DefaultConfig(2000, 1))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := NewPipeline(pop, 1)
	if err != nil {
		b.Fatal(err)
	}
	pl.WarmupEIT(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.AttributeMatrix(); err != nil {
			b.Fatal(err)
		}
	}
}
