package campaign

import (
	"testing"
)

// tinyExperiment keeps learner-path tests fast.
func tinyExperiment(seed uint64, l Learner, fs FeatureSet) ExperimentConfig {
	return ExperimentConfig{
		Users:           300,
		Seed:            seed,
		WarmupTouches:   6,
		WebLogWeeks:     1,
		TrainCampaigns:  2,
		TrainSampleFrac: 1.0,
		Depth:           0.40,
		Features:        fs,
		Learner:         l,
		UpdateSUM:       true,
	}
}

func TestPrepareAllLearners(t *testing.T) {
	for _, l := range []Learner{
		LearnerSVM, LearnerSVMDual, LearnerLogistic, LearnerRandom, LearnerPopularity,
	} {
		t.Run(l.String(), func(t *testing.T) {
			ex, err := Prepare(tinyExperiment(3, l, FullFeatures()))
			if err != nil {
				t.Fatal(err)
			}
			if ex.Scorer == nil {
				t.Fatal("nil scorer")
			}
			if ex.TrainSize != 600 {
				t.Fatalf("train size %d", ex.TrainSize)
			}
			// One campaign run must work for every learner.
			runner := &Runner{Pipeline: ex.Pipeline, Scorer: ex.Scorer, Features: FullFeatures(), Depth: 0.4}
			res, err := runner.Run(DefaultCampaigns()[0])
			if err != nil {
				t.Fatal(err)
			}
			if res.Contacted != 120 {
				t.Fatalf("contacted %d", res.Contacted)
			}
		})
	}
}

func TestPrepareUnknownLearner(t *testing.T) {
	cfg := tinyExperiment(1, Learner(99), FullFeatures())
	if _, err := Prepare(cfg); err == nil {
		t.Fatal("unknown learner accepted")
	}
}

func TestPrepareSkipsOptionalPhases(t *testing.T) {
	cfg := tinyExperiment(5, LearnerLogistic, ObjectiveOnly())
	cfg.WarmupTouches = 0
	cfg.WebLogWeeks = 0
	ex, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ex.WebLogEvents != 0 || ex.EITAnswers != 0 {
		t.Fatalf("phases ran: %d events %d answers", ex.WebLogEvents, ex.EITAnswers)
	}
}

func TestScaledScorerCopiesInput(t *testing.T) {
	ex, err := Prepare(tinyExperiment(7, LearnerLogistic, ObjectiveOnly()))
	if err != nil {
		t.Fatal(err)
	}
	x := ex.Pipeline.Features(0, ObjectiveOnly(), DefaultCampaigns()[0])
	orig := append([]float64(nil), x...)
	if _, err := ex.Scorer.Score(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("scorer mutated caller's feature vector")
		}
	}
}

func TestFeatureSetAffectsDimension(t *testing.T) {
	pl := smallPipeline(t, 100, 9)
	c := DefaultCampaigns()[0]
	dims := map[string]int{}
	for _, fs := range []FeatureSet{
		ObjectiveOnly(),
		{Subjective: true},
		{Emotional: true},
		FullFeatures(),
	} {
		dims[fs.String()] = len(pl.Features(0, fs, c))
	}
	if dims["OSE"] != dims["O"]+dims["S"]+dims["E"] {
		t.Fatalf("feature blocks not additive: %v", dims)
	}
}
