package campaign

import (
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/svm"
	"repro/internal/synth"
)

// ExperimentConfig drives the end-to-end Fig. 6 reproduction.
type ExperimentConfig struct {
	Users int
	Seed  uint64
	// WarmupTouches is how many Gradual EIT rounds precede training.
	WarmupTouches int
	// WebLogWeeks is how much organic browsing to ingest.
	WebLogWeeks int
	// TrainCampaigns is how many historical waves generate labels.
	TrainCampaigns int
	// TrainSampleFrac subsamples targets per historical wave.
	TrainSampleFrac float64
	// Depth is the selection operating point (paper: 0.40).
	Depth float64
	// Features is the learner input (FullFeatures for SPA).
	Features FeatureSet
	// Learner picks the propensity model.
	Learner Learner
	// UpdateSUM keeps the reward/punish loop on during evaluation.
	UpdateSUM bool
}

// Learner selects the trained scorer for the experiment.
type Learner int

const (
	// LearnerSVM is the paper's configuration (Pegasos + Platt).
	LearnerSVM Learner = iota
	// LearnerSVMDual uses dual coordinate descent (offline trainer).
	LearnerSVMDual
	// LearnerLogistic is the conventional baseline.
	LearnerLogistic
	// LearnerRandom is the null baseline.
	LearnerRandom
	// LearnerPopularity scores everyone identically.
	LearnerPopularity
)

// String implements fmt.Stringer.
func (l Learner) String() string {
	switch l {
	case LearnerSVM:
		return "svm-pegasos"
	case LearnerSVMDual:
		return "svm-dualcd"
	case LearnerLogistic:
		return "logistic"
	case LearnerRandom:
		return "random"
	case LearnerPopularity:
		return "popularity"
	default:
		return fmt.Sprintf("Learner(%d)", int(l))
	}
}

// DefaultExperiment returns the SPA configuration at the given scale. At
// paper scale (users in the millions) the training subsample shrinks so the
// labelled dataset stays near one million rows — propensity accuracy
// saturates well before that, and an unsampled 1.34M × 10-wave design
// matrix would need several GiB.
func DefaultExperiment(users int, seed uint64) ExperimentConfig {
	sampleFrac := 0.5
	if users > 200_000 {
		sampleFrac = 100_000.0 / float64(users)
	}
	return ExperimentConfig{
		Users:           users,
		Seed:            seed,
		WarmupTouches:   96,
		WebLogWeeks:     8,
		TrainCampaigns:  10,
		TrainSampleFrac: sampleFrac,
		Depth:           0.40,
		Features:        FullFeatures(),
		Learner:         LearnerSVM,
		UpdateSUM:       true,
	}
}

func (c ExperimentConfig) validate() error {
	if c.Users < 100 {
		return errors.New("campaign: need at least 100 users")
	}
	if c.WarmupTouches < 0 || c.WebLogWeeks < 0 {
		return errors.New("campaign: negative phase lengths")
	}
	if c.TrainCampaigns < 1 {
		return errors.New("campaign: need at least one training campaign")
	}
	if c.Depth <= 0 || c.Depth > 1 {
		return errors.New("campaign: depth out of (0,1]")
	}
	return nil
}

// Experiment holds the assembled state after Prepare, so callers can run
// several evaluation variants against identical profiles.
type Experiment struct {
	Config   ExperimentConfig
	Pipeline *Pipeline
	Scorer   baseline.Scorer
	// TrainSize is the number of labelled examples used.
	TrainSize int
	// WebLogEvents is how many raw events were ingested.
	WebLogEvents int
	// EITAnswers is how many Gradual EIT answers were collected.
	EITAnswers int
}

// Prepare builds population, profiles (weblogs + EIT warmup), and the
// trained scorer — everything up to the evaluation campaigns.
func Prepare(cfg ExperimentConfig) (*Experiment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pop, err := synth.Generate(synth.DefaultConfig(cfg.Users, cfg.Seed))
	if err != nil {
		return nil, err
	}
	pl, err := NewPipeline(pop, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ex := &Experiment{Config: cfg, Pipeline: pl}
	if cfg.WebLogWeeks > 0 {
		ex.WebLogEvents, err = pl.IngestWebLogs(cfg.WebLogWeeks, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
	}
	if cfg.WarmupTouches > 0 {
		ex.EITAnswers, err = pl.WarmupEIT(cfg.WarmupTouches)
		if err != nil {
			return nil, err
		}
	}
	// Historical waves for labels: reuse the campaign catalogue cyclically.
	catalogue := DefaultCampaigns()
	var hist []Campaign
	for i := 0; i < cfg.TrainCampaigns; i++ {
		c := catalogue[i%len(catalogue)]
		c.ID = -(i + 1) // negative ids mark historical waves
		hist = append(hist, c)
	}
	data, err := pl.TrainingData(hist, cfg.Features, cfg.TrainSampleFrac)
	if err != nil {
		return nil, err
	}
	ex.TrainSize = data.Len()
	// Standardize: raw LifeLog counts span orders of magnitude while the
	// emotional block lives in [-1,1]; unscaled, the margin is dominated by
	// whichever block has the largest numbers.
	scaler, err := svm.FitScaler(data.X)
	if err != nil {
		return nil, err
	}
	if err := scaler.TransformAll(data.X); err != nil {
		return nil, err
	}
	inner, err := trainLearner(cfg.Learner, data, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ex.Scorer = &ScaledScorer{Scaler: scaler, Inner: inner}
	return ex, nil
}

// ScaledScorer standardizes the feature vector with the training-time
// scaler before delegating. It copies the input so callers' buffers are
// untouched.
type ScaledScorer struct {
	Scaler *svm.Scaler
	Inner  baseline.Scorer
}

// Score implements baseline.Scorer.
func (s *ScaledScorer) Score(x []float64) (float64, error) {
	buf := append([]float64(nil), x...)
	if _, err := s.Scaler.Transform(buf); err != nil {
		return 0, err
	}
	return s.Inner.Score(buf)
}

func trainLearner(l Learner, data *svm.Dataset, seed uint64) (baseline.Scorer, error) {
	switch l {
	case LearnerSVM:
		m, err := svm.TrainCalibrated(data, svm.PegasosTrainer(svm.DefaultPegasos()), seed)
		if err != nil {
			return nil, err
		}
		return &baseline.SVMScorer{Model: m}, nil
	case LearnerSVMDual:
		m, err := svm.TrainCalibrated(data, svm.DualCDTrainer(svm.DefaultDualCD()), seed)
		if err != nil {
			return nil, err
		}
		return &baseline.SVMScorer{Model: m}, nil
	case LearnerLogistic:
		m, err := baseline.TrainLogistic(data, baseline.DefaultLogistic())
		if err != nil {
			return nil, err
		}
		return m, nil
	case LearnerRandom:
		return &baseline.Random{Seed: seed}, nil
	case LearnerPopularity:
		pos := 0
		for _, y := range data.Y {
			if y == 1 {
				pos++
			}
		}
		return &baseline.Popularity{BaseRate: float64(pos) / float64(data.Len())}, nil
	default:
		return nil, fmt.Errorf("campaign: unknown learner %v", l)
	}
}

// RunFig6 executes the ten evaluation campaigns and assembles Fig. 6.
func (ex *Experiment) RunFig6() (*Fig6, error) {
	runner := &Runner{
		Pipeline:  ex.Pipeline,
		Scorer:    ex.Scorer,
		Features:  ex.Config.Features,
		Depth:     ex.Config.Depth,
		UpdateSUM: ex.Config.UpdateSUM,
	}
	return runner.RunAll(DefaultCampaigns())
}

// RunExperiment is the one-call convenience: Prepare + RunFig6.
func RunExperiment(cfg ExperimentConfig) (*Fig6, *Experiment, error) {
	ex, err := Prepare(cfg)
	if err != nil {
		return nil, nil, err
	}
	fig, err := ex.RunFig6()
	if err != nil {
		return nil, nil, err
	}
	return fig, ex, nil
}
