package campaign

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/emotion"
	"repro/internal/messaging"
	"repro/internal/ranking"
)

// Result summarizes one evaluation campaign.
type Result struct {
	Campaign Campaign
	// Scored holds (propensity, would-respond) for every target, feeding
	// the gains curve.
	Scored []ranking.Scored
	// Contacted is how many users the selection function chose.
	Contacted int
	// UsefulImpacts is responders among the contacted.
	UsefulImpacts int
	// PredictiveScore is the paper's Fig. 6(b) metric: useful impacts /
	// contacted.
	PredictiveScore float64
	// CaseCounts tallies Messaging Agent cases across the target set.
	CaseCounts map[messaging.Case]int
}

// Fig6 aggregates the full evaluation (both panels of the paper's Fig. 6).
type Fig6 struct {
	PerCampaign []Result
	// Gains is the pooled cumulative redemption curve (Fig. 6a).
	Gains []ranking.GainsPoint
	// CapturedAt40 is the pooled capture at 40 % commercial action; the
	// paper reports "more than 76 %".
	CapturedAt40 float64
	// AvgPredictiveScore averages Fig. 6(b) over campaigns; paper: 21 %.
	AvgPredictiveScore float64
	// TotalUsefulImpacts sums responders reached; paper: 282,938.
	TotalUsefulImpacts int
	// TotalContacted sums contacts.
	TotalContacted int
	// BaseRate is the pre-SPA comparator: the expected redemption of an
	// untargeted campaign with the standard (non-emotional) message — the
	// process the paper's "improved the redemption ... in a 90 %" refers to.
	BaseRate float64
	// ObservedRate is the realized response rate across all targets under
	// SPA messaging (includes the recommendation-function uplift even for
	// users the selection function skipped).
	ObservedRate float64
	// RedemptionImprovement is AvgPredictiveScore/BaseRate − 1; paper: ~0.9.
	RedemptionImprovement float64
	// AUC is the pooled ranking quality.
	AUC float64
}

// Runner executes evaluation campaigns against a trained scorer.
type Runner struct {
	Pipeline *Pipeline
	Scorer   baseline.Scorer
	Features FeatureSet
	// Depth is the selection function's contact fraction (paper operating
	// point: 0.40).
	Depth float64
	// UpdateSUM applies reward/punish to contacted users during evaluation
	// (the paper's closed loop, Fig. 4; disable for the A3 ablation).
	UpdateSUM bool
}

// Validate checks runner configuration.
func (r *Runner) Validate() error {
	if r.Pipeline == nil {
		return errors.New("campaign: nil pipeline")
	}
	if r.Scorer == nil {
		return errors.New("campaign: nil scorer")
	}
	if r.Depth <= 0 || r.Depth > 1 {
		return fmt.Errorf("campaign: depth %v out of (0,1]", r.Depth)
	}
	return nil
}

// Run executes one campaign: score every target, contact the top Depth
// fraction, observe responses. Counterfactual responses of non-contacted
// users are drawn from the same assigned message so the gains curve covers
// the full target set.
func (r *Runner) Run(c Campaign) (Result, error) {
	if err := r.Validate(); err != nil {
		return Result{}, err
	}
	pl := r.Pipeline
	n := len(pl.Profiles)
	res := Result{Campaign: c, CaseCounts: make(map[messaging.Case]int)}
	res.Scored = make([]ranking.Scored, n)
	responded := make([]bool, n)
	msgAttr := make([]emotion.Attribute, n)
	stdMsg := make([]bool, n)
	for i := 0; i < n; i++ {
		x := pl.Features(i, r.Features, c)
		score, err := r.Scorer.Score(x)
		if err != nil {
			return Result{}, fmt.Errorf("campaign %d user %d: %w", c.ID, i+1, err)
		}
		resp, asg, err := pl.touchOutcome(i, c, false)
		if err != nil {
			return Result{}, err
		}
		responded[i] = resp
		msgAttr[i] = asg.Message.Attribute
		stdMsg[i] = asg.Case == messaging.CaseStandard
		res.Scored[i] = ranking.Scored{Score: score, Responded: resp}
		res.CaseCounts[asg.Case]++
	}
	// Selection function: top Depth fraction by score.
	k := int(float64(n) * r.Depth)
	if k < 1 {
		k = 1
	}
	top := topKIndices(res.Scored, k)
	for _, i := range top {
		res.Contacted++
		if responded[i] {
			res.UsefulImpacts++
		}
		if r.UpdateSUM && !stdMsg[i] {
			attrs := []emotion.Attribute{msgAttr[i]}
			if responded[i] {
				pl.Model.Reward(pl.Profiles[i], attrs, pl.now)
			} else {
				pl.Model.Punish(pl.Profiles[i], attrs, pl.now)
			}
		}
	}
	if res.Contacted > 0 {
		res.PredictiveScore = float64(res.UsefulImpacts) / float64(res.Contacted)
	}
	pl.Advance(7 * 24 * time.Hour) // one week between campaigns
	return res, nil
}

// RunAll executes the campaign set and assembles the Fig. 6 aggregate.
func (r *Runner) RunAll(campaigns []Campaign) (*Fig6, error) {
	if len(campaigns) == 0 {
		return nil, errors.New("campaign: no campaigns")
	}
	fig := &Fig6{}
	var pooled []ranking.Scored
	var scoreSum float64
	for _, c := range campaigns {
		res, err := r.Run(c)
		if err != nil {
			return nil, err
		}
		fig.PerCampaign = append(fig.PerCampaign, res)
		pooled = append(pooled, res.Scored...)
		scoreSum += res.PredictiveScore
		fig.TotalUsefulImpacts += res.UsefulImpacts
		fig.TotalContacted += res.Contacted
	}
	fig.AvgPredictiveScore = scoreSum / float64(len(campaigns))
	gains, err := ranking.GainsCurve(pooled, nil)
	if err != nil {
		return nil, err
	}
	fig.Gains = gains
	fig.CapturedAt40, err = ranking.CapturedAt(pooled, 0.40)
	if err != nil {
		return nil, err
	}
	fig.ObservedRate = ranking.BaseRate(pooled)
	// Pre-SPA comparator: expected response to an untargeted standard-
	// message blast (deterministic mean over the population).
	pl := r.Pipeline
	var stdSum float64
	for i := range pl.Pop.Users {
		stdSum += pl.Pop.RespondProbability(&pl.Pop.Users[i], 0, true)
	}
	fig.BaseRate = stdSum / float64(len(pl.Pop.Users))
	// The paper's "+90 %" compares the 21 % achieved at 40 % depth against
	// the redemption an untargeted blast over the same waves would get —
	// the observed rate over the full (randomly chosen) target set.
	if fig.ObservedRate > 0 {
		fig.RedemptionImprovement = fig.AvgPredictiveScore/fig.ObservedRate - 1
	}
	if auc, err := ranking.AUC(pooled); err == nil {
		fig.AUC = auc
	}
	return fig, nil
}

func topKIndices(s []ranking.Scored, k int) []int {
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s[idx[a]].Score > s[idx[b]].Score })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
