package campaign

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/emotion"
	"repro/internal/messaging"
	"repro/internal/synth"
)

func smallPipeline(t *testing.T, users int, seed uint64) *Pipeline {
	t.Helper()
	pop, err := synth.Generate(synth.DefaultConfig(users, seed))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(pop, seed)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestDefaultCampaignsMix(t *testing.T) {
	cs := DefaultCampaigns()
	if len(cs) != 10 {
		t.Fatalf("%d campaigns, want 10", len(cs))
	}
	push, news := 0, 0
	for i, c := range cs {
		if c.ID != i+1 {
			t.Fatalf("campaign %d has id %d", i, c.ID)
		}
		if err := c.Product.Validate(); err != nil {
			t.Fatalf("campaign %d product: %v", i, err)
		}
		switch c.Kind {
		case Push:
			push++
		case Newsletter:
			news++
		}
	}
	// §5.4: "eight Push and two newsletters campaigns".
	if push != 8 || news != 2 {
		t.Fatalf("mix %d push / %d newsletter", push, news)
	}
}

func TestKindAndFeatureSetStrings(t *testing.T) {
	if Push.String() != "push" || Newsletter.String() != "newsletter" {
		t.Fatal("kind strings")
	}
	if FullFeatures().String() != "OSE" || ObjectiveOnly().String() != "O" {
		t.Fatal("feature set strings")
	}
	if (FeatureSet{}).String() != "none" {
		t.Fatal("empty feature set string")
	}
}

func TestNewPipelineInitializesProfiles(t *testing.T) {
	pl := smallPipeline(t, 200, 1)
	if len(pl.Profiles) != 200 {
		t.Fatalf("%d profiles", len(pl.Profiles))
	}
	for i, p := range pl.Profiles {
		if p.UserID != uint64(i+1) {
			t.Fatalf("profile %d has user %d", i, p.UserID)
		}
		if len(p.Objective) != synth.NumObjective {
			t.Fatalf("objective len %d", len(p.Objective))
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewPipeline(nil, 1); err == nil {
		t.Fatal("nil population accepted")
	}
}

func TestIngestWebLogsFillsSubjective(t *testing.T) {
	pl := smallPipeline(t, 300, 2)
	events, err := pl.IngestWebLogs(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if events < 300 {
		t.Fatalf("only %d events", events)
	}
	nonZero := 0
	for _, p := range pl.Profiles {
		for _, v := range p.Subjective {
			if v != 0 {
				nonZero++
				break
			}
		}
	}
	if nonZero < 150 {
		t.Fatalf("only %d profiles got subjective features", nonZero)
	}
}

func TestWarmupEITActivatesProfiles(t *testing.T) {
	pl := smallPipeline(t, 300, 3)
	answers, err := pl.WarmupEIT(10)
	if err != nil {
		t.Fatal(err)
	}
	if answers < 1000 {
		t.Fatalf("only %d answers from 300 users × 10 touches", answers)
	}
	activated := 0
	for _, p := range pl.Profiles {
		for _, s := range p.Emotional {
			if s.Activation > 0 {
				activated++
				break
			}
		}
	}
	if activated < 200 {
		t.Fatalf("only %d profiles activated", activated)
	}
}

func TestWarmupEITCyclesBank(t *testing.T) {
	pl := smallPipeline(t, 50, 4)
	// More touches than the bank has items must not error.
	bankLen := pl.Model.Bank().Len()
	if _, err := pl.WarmupEIT(bankLen + 10); err != nil {
		t.Fatal(err)
	}
}

func TestFeaturesShape(t *testing.T) {
	pl := smallPipeline(t, 100, 5)
	c := DefaultCampaigns()[0]
	full := pl.Features(0, FullFeatures(), c)
	objOnly := pl.Features(0, ObjectiveOnly(), c)
	if len(objOnly) != synth.NumObjective {
		t.Fatalf("objective-only len %d", len(objOnly))
	}
	if len(full) <= len(objOnly) {
		t.Fatal("full features not larger")
	}
	// Emotional on adds the match block.
	emoOnly := pl.Features(0, FeatureSet{Emotional: true}, c)
	if len(emoOnly) != 2*emotion.NumAttributes+MatchBlockLen {
		t.Fatalf("emotional feature len %d", len(emoOnly))
	}
}

func TestTrainingDataShapeAndLabels(t *testing.T) {
	pl := smallPipeline(t, 400, 6)
	pl.WarmupEIT(5)
	d, err := pl.TrainingData(DefaultCampaigns()[:2], FullFeatures(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 800 {
		t.Fatalf("training size %d, want 800", d.Len())
	}
	pos := 0
	for _, y := range d.Y {
		if y == 1 {
			pos++
		}
	}
	rate := float64(pos) / float64(d.Len())
	if rate < 0.01 || rate > 0.5 {
		t.Fatalf("implausible training response rate %v", rate)
	}
}

func TestTrainingDataValidation(t *testing.T) {
	pl := smallPipeline(t, 200, 7)
	if _, err := pl.TrainingData(DefaultCampaigns()[:1], FullFeatures(), 0); err == nil {
		t.Fatal("zero sample frac accepted")
	}
	if _, err := pl.TrainingData(DefaultCampaigns()[:1], FullFeatures(), 1.5); err == nil {
		t.Fatal("frac > 1 accepted")
	}
}

func TestRunnerValidation(t *testing.T) {
	pl := smallPipeline(t, 200, 8)
	r := &Runner{}
	if err := r.Validate(); err == nil {
		t.Fatal("empty runner validated")
	}
	r.Pipeline = pl
	if err := r.Validate(); err == nil {
		t.Fatal("nil scorer validated")
	}
	r.Scorer = &baseline.Random{Seed: 1}
	r.Depth = 0
	if err := r.Validate(); err == nil {
		t.Fatal("zero depth validated")
	}
	r.Depth = 0.4
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunProducesConsistentCounts(t *testing.T) {
	pl := smallPipeline(t, 500, 9)
	pl.WarmupEIT(5)
	r := &Runner{Pipeline: pl, Scorer: &baseline.Random{Seed: 1}, Features: FullFeatures(), Depth: 0.4}
	res, err := r.Run(DefaultCampaigns()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scored) != 500 {
		t.Fatalf("scored %d", len(res.Scored))
	}
	if res.Contacted != 200 {
		t.Fatalf("contacted %d, want 40%% of 500", res.Contacted)
	}
	if res.UsefulImpacts > res.Contacted {
		t.Fatal("impacts exceed contacts")
	}
	if res.PredictiveScore < 0 || res.PredictiveScore > 1 {
		t.Fatalf("predictive score %v", res.PredictiveScore)
	}
	total := 0
	for _, n := range res.CaseCounts {
		total += n
	}
	if total != 500 {
		t.Fatalf("case counts sum %d", total)
	}
}

func TestRunAllAggregates(t *testing.T) {
	pl := smallPipeline(t, 400, 10)
	pl.WarmupEIT(5)
	r := &Runner{Pipeline: pl, Scorer: &baseline.Random{Seed: 1}, Features: FullFeatures(), Depth: 0.4}
	fig, err := r.RunAll(DefaultCampaigns()[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.PerCampaign) != 3 {
		t.Fatalf("%d campaigns", len(fig.PerCampaign))
	}
	if fig.TotalContacted != 3*160 {
		t.Fatalf("total contacted %d", fig.TotalContacted)
	}
	if len(fig.Gains) == 0 {
		t.Fatal("no gains curve")
	}
	if fig.BaseRate <= 0 || fig.BaseRate >= 1 {
		t.Fatalf("base rate %v", fig.BaseRate)
	}
	// Random scorer must capture ≈ depth at 40%.
	if fig.CapturedAt40 < 0.25 || fig.CapturedAt40 > 0.55 {
		t.Fatalf("random scorer captured %v at 40%%", fig.CapturedAt40)
	}
	if _, err := r.RunAll(nil); err == nil {
		t.Fatal("empty campaign set accepted")
	}
}

func TestExperimentConfigValidation(t *testing.T) {
	bad := []ExperimentConfig{
		{Users: 10, TrainCampaigns: 1, Depth: 0.4},
		{Users: 200, TrainCampaigns: 0, Depth: 0.4},
		{Users: 200, TrainCampaigns: 1, Depth: 0},
		{Users: 200, TrainCampaigns: 1, Depth: 0.4, WarmupTouches: -1},
	}
	for i, cfg := range bad {
		if _, err := Prepare(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestLearnerStrings(t *testing.T) {
	names := map[Learner]string{
		LearnerSVM: "svm-pegasos", LearnerSVMDual: "svm-dualcd",
		LearnerLogistic: "logistic", LearnerRandom: "random",
		LearnerPopularity: "popularity",
	}
	for l, want := range names {
		if l.String() != want {
			t.Fatalf("learner %d string %q", l, l.String())
		}
	}
}

// TestFig6Shape is the headline reproduction check (DESIGN.md §5): at the
// paper's 40 % commercial-action operating point the SPA configuration must
// capture well over half of responders (paper: >76 %; pinned seed at test
// scale gives ~0.77), achieve a predictive score near 21 %, and beat the
// objective-only baseline decisively.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment in -short mode")
	}
	cfg := DefaultExperiment(3000, 2)
	fig, ex, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ex.TrainSize < 10000 {
		t.Fatalf("training set only %d", ex.TrainSize)
	}
	if fig.CapturedAt40 < 0.65 {
		t.Fatalf("captured@40 = %v, want >= 0.65 (paper: >0.76)", fig.CapturedAt40)
	}
	if fig.AvgPredictiveScore < 0.15 || fig.AvgPredictiveScore > 0.30 {
		t.Fatalf("avg predictive score %v, want ~0.21", fig.AvgPredictiveScore)
	}
	if fig.RedemptionImprovement < 0.6 {
		t.Fatalf("redemption improvement %v, want ~0.9", fig.RedemptionImprovement)
	}
	if fig.AUC < 0.70 {
		t.Fatalf("pooled AUC %v", fig.AUC)
	}

	// Baseline: objective-only logistic must be clearly worse.
	cfgB := cfg
	cfgB.Features = ObjectiveOnly()
	cfgB.Learner = LearnerLogistic
	figB, _, err := RunExperiment(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if figB.CapturedAt40 >= fig.CapturedAt40-0.1 {
		t.Fatalf("baseline captured %v too close to SPA %v", figB.CapturedAt40, fig.CapturedAt40)
	}
}

// TestFig6Deterministic pins byte-level reproducibility of the headline
// experiment.
func TestFig6Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment in -short mode")
	}
	cfg := DefaultExperiment(500, 11)
	a, _, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CapturedAt40 != b.CapturedAt40 || a.TotalUsefulImpacts != b.TotalUsefulImpacts {
		t.Fatalf("experiment not deterministic: %v/%v vs %v/%v",
			a.CapturedAt40, a.TotalUsefulImpacts, b.CapturedAt40, b.TotalUsefulImpacts)
	}
}

func TestMessagingCasesAppearInCampaign(t *testing.T) {
	pl := smallPipeline(t, 800, 12)
	pl.WarmupEIT(30)
	r := &Runner{Pipeline: pl, Scorer: &baseline.Random{Seed: 1}, Features: FullFeatures(), Depth: 0.4}
	res, err := r.Run(DefaultCampaigns()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.CaseCounts[messaging.CaseStandard] == 0 {
		t.Fatal("no standard-message users (implausible)")
	}
	if res.CaseCounts[messaging.CaseSingle]+res.CaseCounts[messaging.CaseMultiSensibility] == 0 {
		t.Fatal("no emotionally-matched users after warmup")
	}
}

func TestPipelineClockAdvances(t *testing.T) {
	pl := smallPipeline(t, 100, 13)
	t0 := pl.Now()
	pl.WarmupEIT(3)
	if !pl.Now().After(t0) {
		t.Fatal("warmup did not advance clock")
	}
	t1 := pl.Now()
	pl.Advance(time.Hour)
	if pl.Now().Sub(t1) != time.Hour {
		t.Fatal("advance wrong")
	}
}

func BenchmarkPipelineWarmupTouch(b *testing.B) {
	pop, err := synth.Generate(synth.DefaultConfig(1000, 1))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := NewPipeline(pop, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.WarmupEIT(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignRun(b *testing.B) {
	pop, err := synth.Generate(synth.DefaultConfig(2000, 1))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := NewPipeline(pop, 1)
	if err != nil {
		b.Fatal(err)
	}
	pl.WarmupEIT(10)
	r := &Runner{Pipeline: pl, Scorer: &baseline.Random{Seed: 1}, Features: FullFeatures(), Depth: 0.4}
	cs := DefaultCampaigns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cs[i%len(cs)]); err != nil {
			b.Fatal(err)
		}
	}
}
