// Package campaign reproduces the paper's business case (§5): ten push and
// newsletter campaigns over a large population, with SPA's two functions —
//
//	"1. The recommendation function: to send in an individualized manner the
//	 action with most probabilities of execution by the user.
//	 2. The selection function: to choose the user with greater propensity to
//	 follow a course in the recommender system." (§5.4)
//
// The pipeline wires the substrates together: synth population → Gradual
// EIT warmup + WebLog ingest (profile building) → SVM propensity training on
// historical campaigns → the ten evaluation campaigns producing Fig. 6(a)
// (cumulative redemption curve) and Fig. 6(b) (per-campaign predictive
// scores).
package campaign

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/messaging"
	"repro/internal/rng"
	"repro/internal/sum"
	"repro/internal/svm"
	"repro/internal/synth"
)

// Kind distinguishes the two campaign channels of the deployment
// ("eight Push and two newsletters campaigns").
type Kind int

const (
	// Push is a push communication.
	Push Kind = iota
	// Newsletter is an e-mail newsletter.
	Newsletter
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Push:
		return "push"
	case Newsletter:
		return "newsletter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Campaign is one communication wave.
type Campaign struct {
	ID      int
	Kind    Kind
	Product messaging.Product
}

// DefaultCampaigns returns the paper's mix: eight push and two newsletter
// campaigns, each selling a training course whose sales attributes rotate
// through the emotional vocabulary.
func DefaultCampaigns() []Campaign {
	courses := []struct {
		name  string
		attrs []emotion.Attribute
	}{
		{"Course in Digital Marketing", []emotion.Attribute{emotion.Enthusiastic, emotion.Motivated, emotion.Lively, emotion.Stimulated}},
		{"MBA Essentials", []emotion.Attribute{emotion.Motivated, emotion.Hopeful, emotion.Impatient}},
		{"English B2 Certification", []emotion.Attribute{emotion.Hopeful, emotion.Shy, emotion.Frightened, emotion.Motivated}},
		{"Web Development Bootcamp", []emotion.Attribute{emotion.Stimulated, emotion.Enthusiastic, emotion.Impatient}},
		{"Accounting Fundamentals", []emotion.Attribute{emotion.Motivated, emotion.Apathetic, emotion.Hopeful}},
		{"Graphic Design Studio", []emotion.Attribute{emotion.Lively, emotion.Stimulated, emotion.Empathic}},
		{"Nursing Assistant Diploma", []emotion.Attribute{emotion.Empathic, emotion.Hopeful, emotion.Frightened}},
		{"Project Management (PMP)", []emotion.Attribute{emotion.Motivated, emotion.Impatient, emotion.Enthusiastic}},
		{"Human Resources Newsletter Special", []emotion.Attribute{emotion.Empathic, emotion.Motivated, emotion.Shy}},
		{"Languages Newsletter Special", []emotion.Attribute{emotion.Hopeful, emotion.Shy, emotion.Enthusiastic, emotion.Apathetic}},
	}
	out := make([]Campaign, len(courses))
	for i, c := range courses {
		kind := Push
		if i >= 8 {
			kind = Newsletter
		}
		out[i] = Campaign{
			ID:      i + 1,
			Kind:    kind,
			Product: messaging.Product{Name: c.name, SalesAttributes: c.attrs},
		}
	}
	return out
}

// FeatureSet selects which SUM blocks feed the learner (the A1 ablation).
type FeatureSet struct {
	Objective  bool
	Subjective bool
	Emotional  bool
}

// FullFeatures enables all three blocks (the SPA configuration).
func FullFeatures() FeatureSet { return FeatureSet{Objective: true, Subjective: true, Emotional: true} }

// ObjectiveOnly is the pre-SPA baseline configuration.
func ObjectiveOnly() FeatureSet { return FeatureSet{Objective: true} }

// String implements fmt.Stringer.
func (fs FeatureSet) String() string {
	s := ""
	if fs.Objective {
		s += "O"
	}
	if fs.Subjective {
		s += "S"
	}
	if fs.Emotional {
		s += "E"
	}
	if s == "" {
		return "none"
	}
	return s
}

// Pipeline owns the simulation state: population, profiles, messaging and
// the virtual clock.
type Pipeline struct {
	Pop      *synth.Population
	Model    *sum.Model
	Profiles []*sum.Profile // index = userID-1
	MsgDB    *messaging.DB

	// SensibilityThreshold feeds the Messaging Agent (§5.3 step 3).
	SensibilityThreshold float64
	// Policy is the multi-match rule for message assignment.
	Policy messaging.Policy

	now time.Time
	r   *rng.RNG
}

// NewPipeline initializes profiles (objective attributes filled from the
// population; subjective and emotional blocks empty until ingest/warmup).
func NewPipeline(pop *synth.Population, seed uint64) (*Pipeline, error) {
	if pop == nil {
		return nil, errors.New("campaign: nil population")
	}
	model, err := sum.NewModel(sum.DefaultParams(), nil)
	if err != nil {
		return nil, err
	}
	start := time.Date(2006, time.January, 2, 0, 0, 0, 0, time.UTC)
	pl := &Pipeline{
		Pop:                  pop,
		Model:                model,
		MsgDB:                messaging.NewDB(),
		SensibilityThreshold: 0.25,
		Policy:               messaging.BySensibility,
		now:                  start,
		r:                    rng.New(seed ^ 0x5eed),
	}
	pl.Profiles = make([]*sum.Profile, pop.Len())
	for i := range pop.Users {
		u := &pop.Users[i]
		p := sum.NewProfile(u.ID, start)
		p.Objective = append([]float64(nil), u.Objective...)
		p.Subjective = make([]float64, lifelog.DenseLen)
		pl.Profiles[i] = p
	}
	return pl, nil
}

// Now returns the pipeline's virtual time.
func (pl *Pipeline) Now() time.Time { return pl.now }

// Advance moves the virtual clock.
func (pl *Pipeline) Advance(d time.Duration) { pl.now = pl.now.Add(d) }

// IngestWebLogs generates `weeks` of organic browsing and folds the
// extracted per-user features into the subjective profile block — the
// LifeLogs Pre-processor path.
func (pl *Pipeline) IngestWebLogs(weeks int, seed uint64) (events int, err error) {
	x := lifelog.NewExtractor(30*time.Minute, pl.now.Add(time.Duration(weeks)*7*24*time.Hour))
	n := 0
	err = pl.Pop.GenerateWebLogs(synth.WebLogConfig{
		Start:           pl.now,
		Weeks:           weeks,
		Seed:            seed,
		TransactionBias: 0.35,
	}, func(e lifelog.Event) error {
		n++
		return x.Feed(e)
	})
	if err != nil {
		return n, err
	}
	for id, fv := range x.Finish() {
		pl.Profiles[id-1].Subjective = fv.Dense()
	}
	pl.Advance(time.Duration(weeks) * 7 * 24 * time.Hour)
	return n, nil
}

// WarmupEIT runs `touches` rounds of the Gradual EIT marketing strategy
// (§5.2): each round sends one question to every user; users answer
// according to their latent state and answer rate; answers update the SUM.
// Returns the total number of answers collected.
func (pl *Pipeline) WarmupEIT(touches int) (answers int, err error) {
	bank := pl.Model.Bank()
	for t := 0; t < touches; t++ {
		for i := range pl.Profiles {
			p := pl.Profiles[i]
			item, err := pl.Model.NextItem(p)
			if errors.Is(err, emotion.ErrExhausted) {
				// The deployment keeps asking indefinitely (one question per
				// touch, §5.2); cycle the bank with fresh phrasings.
				item, err = pl.Model.Bank().Item(p.AnsweredItems % pl.Model.Bank().Len())
			}
			if err != nil {
				return answers, err
			}
			u := &pl.Pop.Users[i]
			opt, err := pl.Pop.AnswerEIT(u, item, bank, pl.r)
			if err != nil {
				return answers, err
			}
			if opt < 0 {
				continue // ignored question — the sparsity problem
			}
			if err := pl.Model.ApplyEITAnswer(p, emotion.Answer{ItemID: item.ID, Option: opt}, pl.now); err != nil {
				return answers, err
			}
			answers++
		}
		pl.Advance(24 * time.Hour) // one touch per day during warmup
	}
	return answers, nil
}

// assignMessage runs the Messaging Agent for one user and campaign.
func (pl *Pipeline) assignMessage(p *sum.Profile, c Campaign) (messaging.Assignment, error) {
	sens := pl.Model.Sensibilities(p)
	return pl.MsgDB.Assign(c.Product, sens, pl.SensibilityThreshold, pl.Policy)
}

// touchOutcome simulates one contacted user: message assignment, ground-
// truth response draw, and reward/punish SUM update.
func (pl *Pipeline) touchOutcome(i int, c Campaign, updateSUM bool) (responded bool, asg messaging.Assignment, err error) {
	p := pl.Profiles[i]
	u := &pl.Pop.Users[i]
	asg, err = pl.assignMessage(p, c)
	if err != nil {
		return false, asg, err
	}
	standard := asg.Case == messaging.CaseStandard
	prob := pl.Pop.RespondProbability(u, asg.Message.Attribute, standard)
	responded = pl.r.Bool(prob)
	if updateSUM && !standard {
		attrs := []emotion.Attribute{asg.Message.Attribute}
		if responded {
			pl.Model.Reward(p, attrs, pl.now)
		} else {
			pl.Model.Punish(p, attrs, pl.now)
		}
	}
	return responded, asg, nil
}

// Features materializes the learner input for user i under the feature set:
// the SUM blocks plus, when emotional features are on, the Advice-stage
// campaign-match block — SPA's activation/inhibition signal for the
// product's sales attributes (§3 stage 2). The match block is what lets the
// propensity model see *this campaign's* emotional resonance rather than
// only campaign-agnostic state.
func (pl *Pipeline) Features(i int, fs FeatureSet, c Campaign) []float64 {
	x := pl.Profiles[i].FeatureVector(fs.Objective, fs.Subjective, fs.Emotional)
	if fs.Emotional {
		x = append(x, pl.matchBlock(i, c)...)
	}
	return x
}

// MatchBlockLen is the length of the campaign-match feature block.
const MatchBlockLen = 3

// matchBlock summarizes the user's estimated emotional resonance with the
// campaign product: the maximum, mean and assigned-attribute signed
// sensibility over the product's sales attributes. All values derive from
// the SUM estimate (never from ground-truth latents).
func (pl *Pipeline) matchBlock(i int, c Campaign) []float64 {
	p := pl.Profiles[i]
	maxM := 0.0
	sum := 0.0
	first := true
	for _, a := range c.Product.SalesAttributes {
		s := p.Emotional[a]
		m := s.Activation * float64(s.Valence)
		if first || m > maxM {
			maxM = m
			first = false
		}
		sum += m
	}
	mean := 0.0
	if n := len(c.Product.SalesAttributes); n > 0 {
		mean = sum / float64(n)
	}
	// Assigned-attribute match: what the Messaging Agent would send.
	assigned := 0.0
	if asg, err := pl.assignMessage(p, c); err == nil && asg.Case != messaging.CaseStandard {
		s := p.Emotional[asg.Message.Attribute]
		assigned = s.Activation * float64(s.Valence)
	}
	return []float64{maxM, mean, assigned}
}

// TrainingData simulates historical campaigns with random targeting (the
// paper targets users "chosen in random way") and returns the labelled
// dataset: features at send time, label = responded.
func (pl *Pipeline) TrainingData(campaigns []Campaign, fs FeatureSet, sampleFrac float64) (*svm.Dataset, error) {
	if sampleFrac <= 0 || sampleFrac > 1 {
		return nil, errors.New("campaign: sample fraction out of (0,1]")
	}
	d := &svm.Dataset{}
	for _, c := range campaigns {
		for i := range pl.Profiles {
			if !pl.r.Bool(sampleFrac) {
				continue
			}
			x := pl.Features(i, fs, c)
			responded, _, err := pl.touchOutcome(i, c, true)
			if err != nil {
				return nil, err
			}
			y := -1
			if responded {
				y = 1
			}
			d.X = append(d.X, x)
			d.Y = append(d.Y, y)
		}
		pl.Advance(7 * 24 * time.Hour)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: training data: %w", err)
	}
	return d, nil
}
