package svm

import (
	"errors"
	"math"
)

// Platt scaling (Platt 1999, with the Lin–Weng–Keerthi 2007 numerically
// stable Newton fit): maps SVM margins f to calibrated probabilities
// P(y=+1|f) = 1/(1+exp(A·f+B)). The paper's selection function ranks users
// by "propensity to accept a recommended item"; calibrated probabilities
// make those propensities comparable across campaigns.

// PlattScaler holds the fitted sigmoid.
type PlattScaler struct {
	A, B float64
}

// Prob maps a margin to P(y=+1).
func (p *PlattScaler) Prob(margin float64) float64 {
	fApB := p.A*margin + p.B
	// Numerically stable sigmoid.
	if fApB >= 0 {
		e := math.Exp(-fApB)
		return e / (1 + e)
	}
	return 1 / (1 + math.Exp(fApB))
}

// FitPlatt fits the sigmoid on held-out margins and ±1 labels using the
// regularized maximum-likelihood target of Lin et al. (Newton's method with
// backtracking). margins and labels must be parallel and contain both
// classes.
func FitPlatt(margins []float64, labels []int) (*PlattScaler, error) {
	if len(margins) != len(labels) {
		return nil, errors.New("svm: platt input length mismatch")
	}
	if len(margins) == 0 {
		return nil, errors.New("svm: platt empty input")
	}
	var nPos, nNeg float64
	for _, y := range labels {
		switch y {
		case 1:
			nPos++
		case -1:
			nNeg++
		default:
			return nil, errors.New("svm: platt labels must be ±1")
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, errors.New("svm: platt needs both classes")
	}
	// Regularized targets.
	hiTarget := (nPos + 1) / (nPos + 2)
	loTarget := 1 / (nNeg + 2)
	n := len(margins)
	t := make([]float64, n)
	for i, y := range labels {
		if y == 1 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}
	a := 0.0
	b := math.Log((nNeg + 1) / (nPos + 1))
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
		eps     = 1e-5
	)
	fval := plattObjective(margins, t, a, b)
	for iter := 0; iter < maxIter; iter++ {
		// Gradient and Hessian.
		var h11, h22, h21, g1, g2 float64
		h11, h22 = sigma, sigma
		for i, f := range margins {
			fApB := a*f + b
			var p, q float64
			if fApB >= 0 {
				e := math.Exp(-fApB)
				p = e / (1 + e)
				q = 1 / (1 + e)
			} else {
				e := math.Exp(fApB)
				p = 1 / (1 + e)
				q = e / (1 + e)
			}
			d2 := p * q
			h11 += f * f * d2
			h22 += d2
			h21 += f * d2
			d1 := t[i] - p
			g1 += f * d1
			g2 += d1
		}
		if math.Abs(g1) < eps && math.Abs(g2) < eps {
			break
		}
		// Newton direction (2×2 solve).
		det := h11*h22 - h21*h21
		if det == 0 {
			break
		}
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB
		// Backtracking line search.
		step := 1.0
		for step >= minStep {
			newA, newB := a+step*dA, b+step*dB
			newF := plattObjective(margins, t, newA, newB)
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return &PlattScaler{A: a, B: b}, nil
}

func plattObjective(margins, t []float64, a, b float64) float64 {
	var obj float64
	for i, f := range margins {
		fApB := a*f + b
		if fApB >= 0 {
			obj += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			obj += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}
	return obj
}

// Calibrate fits Platt scaling for the model on a held-out dataset and
// attaches it.
func (m *Model) Calibrate(holdout *Dataset) error {
	if err := holdout.Validate(); err != nil {
		return err
	}
	margins := make([]float64, holdout.Len())
	for i := range holdout.X {
		f, err := m.Margin(holdout.X[i])
		if err != nil {
			return err
		}
		margins[i] = f
	}
	ps, err := FitPlatt(margins, holdout.Y)
	if err != nil {
		return err
	}
	m.Platt = ps
	return nil
}
