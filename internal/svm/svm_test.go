package svm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// gaussianBlobs builds a two-class dataset with means ±mu and unit noise.
func gaussianBlobs(n, dim int, mu float64, seed uint64) *Dataset {
	r := rng.New(seed)
	d := &Dataset{}
	for i := 0; i < n; i++ {
		y := 1
		m := mu
		if i%2 == 1 {
			y = -1
			m = -mu
		}
		x := make([]float64, dim)
		for j := range x {
			x[j] = m + r.NormFloat64()
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	good := gaussianBlobs(10, 2, 1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Dataset{
		{},
		{X: [][]float64{{1}}, Y: []int{1, -1}},
		{X: [][]float64{{1}, {2}}, Y: []int{1, 0}},
		{X: [][]float64{{1}, {2, 3}}, Y: []int{1, -1}},
		{X: [][]float64{{1}, {2}}, Y: []int{1, 1}},
		{X: [][]float64{{}, {}}, Y: []int{1, -1}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("bad dataset %d validated", i)
		}
	}
}

func TestPegasosSeparable(t *testing.T) {
	d := gaussianBlobs(2000, 5, 2.5, 42)
	m, err := TrainPegasos(d, DefaultPegasos())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Fatalf("pegasos accuracy %v on well-separated blobs", acc)
	}
}

func TestDualCDSeparable(t *testing.T) {
	d := gaussianBlobs(1000, 5, 2.5, 43)
	m, err := TrainDualCD(d, DefaultDualCD())
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := m.Accuracy(d)
	if acc < 0.98 {
		t.Fatalf("dualcd accuracy %v", acc)
	}
}

func TestDualCDBeatsOrMatchesPegasosObjective(t *testing.T) {
	d := gaussianBlobs(600, 8, 1.0, 7)
	lambda := 1e-3
	peg, err := TrainPegasos(d, PegasosParams{Lambda: lambda, Epochs: 5, Seed: 1, Project: true})
	if err != nil {
		t.Fatal(err)
	}
	cd, err := TrainDualCD(d, DualCDParams{C: 1 / (lambda * float64(d.Len())), MaxEpochs: 300, Tol: 1e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lp, _ := peg.HingeLoss(d, lambda)
	lc, _ := cd.HingeLoss(d, lambda)
	if lc > lp*1.05 {
		t.Fatalf("dual CD objective %v much worse than pegasos %v", lc, lp)
	}
}

func TestTrainersDeterministic(t *testing.T) {
	d := gaussianBlobs(300, 4, 1.5, 9)
	m1, _ := TrainPegasos(d, DefaultPegasos())
	m2, _ := TrainPegasos(d, DefaultPegasos())
	for j := range m1.Weights {
		if m1.Weights[j] != m2.Weights[j] {
			t.Fatal("pegasos nondeterministic under fixed seed")
		}
	}
	c1, _ := TrainDualCD(d, DefaultDualCD())
	c2, _ := TrainDualCD(d, DefaultDualCD())
	for j := range c1.Weights {
		if c1.Weights[j] != c2.Weights[j] {
			t.Fatal("dualcd nondeterministic under fixed seed")
		}
	}
}

func TestTrainerParamValidation(t *testing.T) {
	d := gaussianBlobs(10, 2, 1, 1)
	if _, err := TrainPegasos(d, PegasosParams{Lambda: 0, Epochs: 1}); err == nil {
		t.Fatal("lambda 0 accepted")
	}
	if _, err := TrainPegasos(d, PegasosParams{Lambda: 1, Epochs: 0}); err == nil {
		t.Fatal("epochs 0 accepted")
	}
	if _, err := TrainDualCD(d, DualCDParams{C: 0, MaxEpochs: 1}); err == nil {
		t.Fatal("C 0 accepted")
	}
	if _, err := TrainDualCD(d, DualCDParams{C: 1, MaxEpochs: 0}); err == nil {
		t.Fatal("maxEpochs 0 accepted")
	}
}

func TestMarginDimensionCheck(t *testing.T) {
	m := &Model{Weights: []float64{1, 2}}
	if _, err := m.Margin([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := m.Predict([]float64{1, 2, 3}); err == nil {
		t.Fatal("predict dimension mismatch accepted")
	}
}

func TestPredictSign(t *testing.T) {
	m := &Model{Weights: []float64{1}, Bias: 0}
	p, _ := m.Predict([]float64{3})
	if p != 1 {
		t.Fatal("positive side")
	}
	p, _ = m.Predict([]float64{-3})
	if p != -1 {
		t.Fatal("negative side")
	}
}

func TestPlattCalibration(t *testing.T) {
	d := gaussianBlobs(3000, 3, 1.2, 11)
	train, hold, err := Split(d, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainPegasos(train, DefaultPegasos())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(hold); err != nil {
		t.Fatal(err)
	}
	if m.Platt == nil {
		t.Fatal("calibration did not attach")
	}
	// Calibrated probabilities must be monotone in the margin and in [0,1].
	prev := -1.0
	for _, f := range []float64{-3, -1, 0, 1, 3} {
		p := m.Platt.Prob(f)
		if p < 0 || p > 1 {
			t.Fatalf("prob %v out of range", p)
		}
		if p < prev {
			t.Fatalf("calibrated probability not monotone at margin %v", f)
		}
		prev = p
	}
	// Mean predicted propensity should approximate the base rate (~0.5).
	var sum float64
	for i := range d.X {
		p, err := m.Propensity(d.X[i])
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	mean := sum / float64(d.Len())
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("mean calibrated propensity %v, want ~0.5", mean)
	}
}

func TestPlattRejectsDegenerate(t *testing.T) {
	if _, err := FitPlatt([]float64{1, 2}, []int{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitPlatt(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := FitPlatt([]float64{1, 2}, []int{1, 1}); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := FitPlatt([]float64{1, 2}, []int{1, 0}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestPropensityFallbackWithoutPlatt(t *testing.T) {
	m := &Model{Weights: []float64{1}}
	p, err := m.Propensity([]float64{0})
	if err != nil || p != 0.5 {
		t.Fatalf("fallback propensity %v %v", p, err)
	}
}

func TestImbalancedPropensityRanking(t *testing.T) {
	// 10% positive rate, like campaign response data. The calibrated model
	// must rank true positives above negatives on average.
	r := rng.New(21)
	d := &Dataset{}
	for i := 0; i < 4000; i++ {
		y := -1
		mu := -0.8
		if r.Bool(0.1) {
			y = 1
			mu = 0.8
		}
		x := []float64{mu + r.NormFloat64(), mu + r.NormFloat64()}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	m, err := TrainCalibrated(d, PegasosTrainer(DefaultPegasos()), 3)
	if err != nil {
		t.Fatal(err)
	}
	var posSum, negSum float64
	var nPos, nNeg int
	for i := range d.X {
		p, _ := m.Propensity(d.X[i])
		if d.Y[i] == 1 {
			posSum += p
			nPos++
		} else {
			negSum += p
			nNeg++
		}
	}
	if posSum/float64(nPos) <= negSum/float64(nNeg) {
		t.Fatal("propensity does not separate classes")
	}
	// Calibration sanity: mean propensity ≈ base rate.
	mean := (posSum + negSum) / float64(d.Len())
	base := float64(nPos) / float64(d.Len())
	if math.Abs(mean-base) > 0.05 {
		t.Fatalf("mean propensity %v vs base rate %v", mean, base)
	}
}

func TestSplitStratified(t *testing.T) {
	d := gaussianBlobs(1000, 2, 1, 13)
	a, b, err := Split(d, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len()+b.Len() != d.Len() {
		t.Fatal("split lost samples")
	}
	frac := func(ds *Dataset) float64 {
		pos := 0
		for _, y := range ds.Y {
			if y == 1 {
				pos++
			}
		}
		return float64(pos) / float64(ds.Len())
	}
	if math.Abs(frac(a)-0.5) > 0.02 || math.Abs(frac(b)-0.5) > 0.02 {
		t.Fatalf("stratification broken: %v / %v", frac(a), frac(b))
	}
}

func TestSplitBadFraction(t *testing.T) {
	d := gaussianBlobs(10, 2, 1, 1)
	for _, f := range []float64{0, 1, -0.5, 2} {
		if _, _, err := Split(d, f, 1); err == nil {
			t.Fatalf("fraction %v accepted", f)
		}
	}
}

func TestCrossValidate(t *testing.T) {
	d := gaussianBlobs(500, 3, 2, 17)
	res, err := CrossValidate(d, PegasosTrainer(PegasosParams{Lambda: 1e-3, Epochs: 5, Seed: 1}), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracy) != 5 {
		t.Fatalf("%d folds", len(res.FoldAccuracy))
	}
	if res.MeanAccuracy < 0.95 {
		t.Fatalf("cv mean accuracy %v", res.MeanAccuracy)
	}
	if res.StdAccuracy < 0 || res.StdAccuracy > 0.1 {
		t.Fatalf("cv std %v", res.StdAccuracy)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := gaussianBlobs(20, 2, 1, 1)
	if _, err := CrossValidate(d, PegasosTrainer(DefaultPegasos()), 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := CrossValidate(d, PegasosTrainer(DefaultPegasos()), 21, 1); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestScalerRoundTrip(t *testing.T) {
	X := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TransformAll(X); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		var mean, ss float64
		for i := range X {
			mean += X[i][j]
		}
		mean /= 3
		for i := range X {
			d := X[i][j] - mean
			ss += d * d
		}
		if math.Abs(mean) > 1e-12 || math.Abs(ss/3-1) > 1e-12 {
			t.Fatalf("column %d not standardized: mean %v var %v", j, mean, ss/3)
		}
	}
}

func TestScalerConstantColumn(t *testing.T) {
	X := [][]float64{{5}, {5}, {5}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	if s.Std[0] != 1 {
		t.Fatalf("constant column std %v", s.Std[0])
	}
	out, _ := s.Transform([]float64{5})
	if out[0] != 0 {
		t.Fatalf("constant column transforms to %v", out[0])
	}
}

func TestScalerErrors(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := FitScaler([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged accepted")
	}
	s, _ := FitScaler([][]float64{{1}, {2}})
	if _, err := s.Transform([]float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// Property: hinge loss is non-negative and zero only when all margins meet
// the functional margin of 1.
func TestHingeLossProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := gaussianBlobs(50, 3, 1.0, seed)
		m, err := TrainDualCD(d, DefaultDualCD())
		if err != nil {
			return false
		}
		l, err := m.HingeLoss(d, 1e-4)
		return err == nil && l >= 0 && !math.IsNaN(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Platt Prob is always a valid probability and monotone.
func TestPlattProbProperty(t *testing.T) {
	f := func(a, b, f1, f2 float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		ps := &PlattScaler{A: a, B: b}
		p1 := ps.Prob(f1)
		p2 := ps.Prob(f2)
		if math.IsNaN(p1) || p1 < 0 || p1 > 1 || math.IsNaN(p2) || p2 < 0 || p2 > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrainPegasos(b *testing.B) {
	d := gaussianBlobs(5000, 30, 1.0, 1)
	p := PegasosParams{Lambda: 1e-4, Epochs: 3, Seed: 1, Project: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainPegasos(d, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainDualCD(b *testing.B) {
	d := gaussianBlobs(2000, 30, 1.0, 1)
	p := DualCDParams{C: 1, MaxEpochs: 20, Tol: 1e-3, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainDualCD(d, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPropensity(b *testing.B) {
	d := gaussianBlobs(1000, 55, 1.0, 1)
	m, err := TrainCalibrated(d, PegasosTrainer(DefaultPegasos()), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Propensity(d.X[i%d.Len()]); err != nil {
			b.Fatal(err)
		}
	}
}
