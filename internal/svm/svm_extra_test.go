package svm

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestPlattSignConvention: for a model whose margins correlate positively
// with the positive class, the fitted A must be negative (LIBSVM
// convention: P = 1/(1+exp(A·f+B)) increasing in f when A < 0).
func TestPlattSignConvention(t *testing.T) {
	r := rng.New(5)
	var margins []float64
	var labels []int
	for i := 0; i < 2000; i++ {
		y := -1
		mu := -1.0
		if r.Bool(0.4) {
			y = 1
			mu = 1.0
		}
		margins = append(margins, mu+r.NormFloat64()*0.7)
		labels = append(labels, y)
	}
	ps, err := FitPlatt(margins, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ps.A >= 0 {
		t.Fatalf("A = %v, want negative for positively-correlated margins", ps.A)
	}
	if ps.Prob(2) <= ps.Prob(-2) {
		t.Fatal("calibrated probability not increasing in margin")
	}
}

// TestPlattBaseRateRecovery: with uninformative margins the calibrated
// probability must collapse to roughly the base rate everywhere.
func TestPlattBaseRateRecovery(t *testing.T) {
	r := rng.New(7)
	var margins []float64
	var labels []int
	base := 0.2
	for i := 0; i < 5000; i++ {
		y := -1
		if r.Bool(base) {
			y = 1
		}
		margins = append(margins, r.NormFloat64()) // no signal
		labels = append(labels, y)
	}
	ps, err := FitPlatt(margins, labels)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{-1, 0, 1} {
		if p := ps.Prob(f); math.Abs(p-base) > 0.06 {
			t.Fatalf("no-signal calibration at f=%v: %v, want ~%v", f, p, base)
		}
	}
}

// TestPegasosAveragingStability: two different sampling seeds must land on
// nearby solutions (the suffix average removes last-iterate noise).
func TestPegasosAveragingStability(t *testing.T) {
	d := gaussianBlobs(3000, 10, 0.8, 3)
	p1 := DefaultPegasos()
	p2 := DefaultPegasos()
	p2.Seed = 999
	m1, err := TrainPegasos(d, p1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainPegasos(d, p2)
	if err != nil {
		t.Fatal(err)
	}
	// Cosine similarity of weight vectors must be high.
	var dot, n1, n2 float64
	for j := range m1.Weights {
		dot += m1.Weights[j] * m2.Weights[j]
		n1 += m1.Weights[j] * m1.Weights[j]
		n2 += m2.Weights[j] * m2.Weights[j]
	}
	cos := dot / math.Sqrt(n1*n2)
	if cos < 0.9 {
		t.Fatalf("seed-to-seed weight cosine %v; averaging unstable", cos)
	}
}

// TestExtremeFeatureValues: the scaler + trainers must not produce NaNs on
// features spanning many orders of magnitude.
func TestExtremeFeatureValues(t *testing.T) {
	r := rng.New(11)
	d := &Dataset{}
	for i := 0; i < 400; i++ {
		y := 1
		mu := 1.0
		if i%2 == 1 {
			y = -1
			mu = -1.0
		}
		d.X = append(d.X, []float64{
			mu*1e6 + r.NormFloat64()*1e5, // huge scale
			mu*1e-6 + r.NormFloat64()*1e-7,
			mu + r.NormFloat64(),
		})
		d.Y = append(d.Y, y)
	}
	sc, err := FitScaler(d.X)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.TransformAll(d.X); err != nil {
		t.Fatal(err)
	}
	m, err := TrainPegasos(d, DefaultPegasos())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("non-finite weight %v", w)
		}
	}
	acc, _ := m.Accuracy(d)
	if acc < 0.95 {
		t.Fatalf("extreme-scale accuracy %v", acc)
	}
}

// TestCrossValidateDualCD exercises CV with the second trainer.
func TestCrossValidateDualCD(t *testing.T) {
	d := gaussianBlobs(300, 3, 2, 13)
	res, err := CrossValidate(d, DualCDTrainer(DualCDParams{C: 1, MaxEpochs: 50, Tol: 1e-3, Seed: 1}), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy < 0.95 {
		t.Fatalf("dualcd cv accuracy %v", res.MeanAccuracy)
	}
}

// TestDualCDRespectsBoxConstraint: with tiny C the solution must stay small
// (heavily regularized) and with huge C it must fit the training data.
func TestDualCDBoxConstraint(t *testing.T) {
	d := gaussianBlobs(300, 4, 1.5, 17)
	small, err := TrainDualCD(d, DualCDParams{C: 1e-6, MaxEpochs: 100, Tol: 1e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := TrainDualCD(d, DualCDParams{C: 100, MaxEpochs: 300, Tol: 1e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	normOf := func(m *Model) float64 {
		var n float64
		for _, w := range m.Weights {
			n += w * w
		}
		return math.Sqrt(n)
	}
	if normOf(small) >= normOf(big) {
		t.Fatalf("C ordering violated: |w|(C=1e-6)=%v vs |w|(C=100)=%v", normOf(small), normOf(big))
	}
	accBig, _ := big.Accuracy(d)
	if accBig < 0.98 {
		t.Fatalf("large-C training accuracy %v", accBig)
	}
}

// TestTrainCalibratedRejectsDegenerate ensures the pipeline surfaces errors
// from pathological inputs rather than mis-training.
func TestTrainCalibratedRejectsDegenerate(t *testing.T) {
	// Single-class data must be rejected at validation.
	d := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{1, 1, 1}}
	if _, err := TrainCalibrated(d, PegasosTrainer(DefaultPegasos()), 1); err == nil {
		t.Fatal("single-class dataset trained")
	}
}

// TestAccuracyEmptyDataset covers the error path.
func TestAccuracyEmptyDataset(t *testing.T) {
	m := &Model{Weights: []float64{1}}
	if _, err := m.Accuracy(&Dataset{}); err == nil {
		t.Fatal("empty accuracy computed")
	}
	if _, err := m.HingeLoss(&Dataset{}, 0.1); err == nil {
		t.Fatal("empty hinge computed")
	}
}
