package svm

import (
	"errors"
	"math"

	"repro/internal/rng"
)

// Dual coordinate descent for L2-regularized L1-loss SVM (Hsieh et al.,
// ICML 2008; the algorithm behind LIBLINEAR). Solves
//
//	min_α  ½ αᵀQα − eᵀα   s.t. 0 ≤ αᵢ ≤ C,   Q_ij = y_i y_j x_iᵀx_j
//
// maintaining w = Σ αᵢ yᵢ xᵢ so each coordinate update is O(nnz(xᵢ)). It
// reaches a much tighter optimum than Pegasos on the same budget and is the
// offline trainer for nightly model rebuilds.

// DualCDParams configure the trainer.
type DualCDParams struct {
	// C is the per-sample upper bound (soft-margin cost, > 0). Relates to
	// Pegasos' lambda as C = 1/(λ·n).
	C float64
	// MaxEpochs bounds the outer loop.
	MaxEpochs int
	// Tol is the PG-violation stopping tolerance.
	Tol float64
	// Seed drives the coordinate permutation.
	Seed uint64
}

// DefaultDualCD returns standard LIBLINEAR-like settings.
func DefaultDualCD() DualCDParams {
	return DualCDParams{C: 1, MaxEpochs: 200, Tol: 1e-4, Seed: 1}
}

// TrainDualCD fits a linear SVM with an augmented bias feature.
func TrainDualCD(d *Dataset, p DualCDParams) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if p.C <= 0 {
		return nil, errors.New("svm: C must be positive")
	}
	if p.MaxEpochs < 1 {
		return nil, errors.New("svm: MaxEpochs must be >= 1")
	}
	if p.Tol <= 0 {
		p.Tol = 1e-4
	}
	n := d.Len()
	dim := len(d.X[0])
	w := make([]float64, dim+1)
	alpha := make([]float64, n)
	// Qii = ‖xᵢ‖² + 1 (augmented bias).
	qii := make([]float64, n)
	for i, x := range d.X {
		var s float64
		for _, v := range x {
			s += v * v
		}
		qii[i] = s + 1
	}
	r := rng.New(p.Seed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < p.MaxEpochs; epoch++ {
		r.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		maxViolation := 0.0
		for _, i := range idx {
			x := d.X[i]
			y := float64(d.Y[i])
			g := y*dotAug(w, x) - 1 // gradient of the dual coordinate
			// Projected gradient.
			pg := g
			switch {
			case alpha[i] == 0 && g > 0:
				pg = 0
			case alpha[i] == p.C && g < 0:
				pg = 0
			}
			if v := math.Abs(pg); v > maxViolation {
				maxViolation = v
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			ai := old - g/qii[i]
			if ai < 0 {
				ai = 0
			} else if ai > p.C {
				ai = p.C
			}
			alpha[i] = ai
			delta := (ai - old) * y
			for j, v := range x {
				w[j] += delta * v
			}
			w[dim] += delta
		}
		if maxViolation < p.Tol {
			break
		}
	}
	return &Model{Weights: w[:dim], Bias: w[dim]}, nil
}
