package svm

import (
	"errors"
	"math"

	"repro/internal/rng"
)

// Pegasos: Primal Estimated sub-GrAdient SOlver for SVM
// (Shalev-Shwartz, Singer & Srebro, ICML 2007 — contemporary with the
// paper). Minimizes λ/2‖w‖² + mean hinge loss with step 1/(λt) and the
// optional projection onto the ‖w‖ ≤ 1/√λ ball.
//
// Pegasos converges in O(1/(λε)) iterations independent of dataset size,
// which is what makes it the right trainer for SPA's "millions of users"
// scale: each epoch touches samples once, uniformly at random.

// PegasosParams configure the trainer.
type PegasosParams struct {
	// Lambda is the regularization strength (> 0).
	Lambda float64
	// Epochs is the number of passes over the data (>= 1).
	Epochs int
	// Seed drives the sampling order.
	Seed uint64
	// Project enables the optional ball projection (keeps ‖w‖ bounded,
	// slightly better constants on noisy data).
	Project bool
}

// DefaultPegasos returns parameters calibrated for the campaign workloads.
func DefaultPegasos() PegasosParams {
	return PegasosParams{Lambda: 1e-5, Epochs: 20, Seed: 1, Project: true}
}

// TrainPegasos fits a linear SVM. The bias is learned by augmenting an
// implicit constant feature (unregularized bias hurts Pegasos' guarantees;
// an augmented bias keeps them and is standard practice).
func TrainPegasos(d *Dataset, p PegasosParams) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if p.Lambda <= 0 {
		return nil, errors.New("svm: Lambda must be positive")
	}
	if p.Epochs < 1 {
		return nil, errors.New("svm: Epochs must be >= 1")
	}
	dim := len(d.X[0])
	w := make([]float64, dim+1) // last slot = bias weight over constant 1
	// Averaged Pegasos: the average of the iterates over the final epochs is
	// a far more stable solution than the last iterate (Rakhlin et al.'s
	// suffix averaging), and it is what makes the online trainer usable for
	// propensity ranking.
	wAvg := make([]float64, dim+1)
	avgFrom := (p.Epochs * d.Len()) / 2
	avgCount := 0
	r := rng.New(p.Seed)
	n := d.Len()
	t := 0
	for epoch := 0; epoch < p.Epochs; epoch++ {
		for i := 0; i < n; i++ {
			t++
			idx := r.Intn(n)
			x := d.X[idx]
			y := float64(d.Y[idx])
			eta := 1 / (p.Lambda * float64(t))
			margin := dotAug(w, x)
			// Shrink step (sub-gradient of the regularizer).
			scale := 1 - eta*p.Lambda
			if scale < 0 {
				scale = 0
			}
			for j := range w {
				w[j] *= scale
			}
			if y*margin < 1 {
				// Hinge-active: push toward the sample.
				step := eta * y
				for j, v := range x {
					w[j] += step * v
				}
				w[dim] += step // bias feature = 1
			}
			if p.Project {
				projectBall(w, p.Lambda)
			}
			if t > avgFrom {
				for j := range w {
					wAvg[j] += w[j]
				}
				avgCount++
			}
		}
	}
	if avgCount > 0 {
		for j := range wAvg {
			wAvg[j] /= float64(avgCount)
		}
		w = wAvg
	}
	return &Model{Weights: w[:dim], Bias: w[dim]}, nil
}

func dotAug(w []float64, x []float64) float64 {
	var s float64
	for j, v := range x {
		s += w[j] * v
	}
	return s + w[len(w)-1]
}

func projectBall(w []float64, lambda float64) {
	var norm2 float64
	for _, v := range w {
		norm2 += v * v
	}
	maxNorm2 := 1 / lambda
	if norm2 > maxNorm2 && norm2 > 0 {
		scale := math.Sqrt(maxNorm2 / norm2)
		for j := range w {
			w[j] *= scale
		}
	}
}
