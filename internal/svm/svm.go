// Package svm implements the linear Support Vector Machine the paper relies
// on (§5.2): "To reduce the dimensionality of the matrix generated we use
// Support Vector Machines (SVM). Then SVMs are used to classify and to
// predict users' behaviors ... Furthermore, SVMs have been used as a
// learning component in ranking users to assess their propensity to accept
// a recommended item."
//
// Two trainers are provided — Pegasos (primal stochastic sub-gradient, the
// fast default for SPA's millions-of-users scale) and dual coordinate
// descent (the higher-accuracy offline option) — plus Platt scaling to turn
// margins into calibrated propensity probabilities for the selection
// function, and k-fold cross-validation utilities.
//
// Everything is stdlib-only and deterministic under a fixed seed.
package svm

import (
	"errors"
	"fmt"
	"math"
)

// Model is a trained linear classifier: f(x) = w·x + b. Labels are ±1.
type Model struct {
	Weights []float64
	Bias    float64
	// Platt holds the sigmoid calibration (nil until Calibrate is run).
	Platt *PlattScaler
}

// ErrDimension is returned when a vector length does not match the model.
var ErrDimension = errors.New("svm: feature dimension mismatch")

// Margin returns the signed distance-proportional score w·x + b.
func (m *Model) Margin(x []float64) (float64, error) {
	if len(x) != len(m.Weights) {
		return 0, fmt.Errorf("%w: got %d want %d", ErrDimension, len(x), len(m.Weights))
	}
	return dot(m.Weights, x) + m.Bias, nil
}

// Predict returns the class label (+1 / -1).
func (m *Model) Predict(x []float64) (int, error) {
	margin, err := m.Margin(x)
	if err != nil {
		return 0, err
	}
	if margin >= 0 {
		return 1, nil
	}
	return -1, nil
}

// Propensity returns P(y=+1 | x). It requires prior Calibrate; without
// calibration it falls back to a logistic squash of the raw margin, which
// preserves ranking but not calibration.
func (m *Model) Propensity(x []float64) (float64, error) {
	margin, err := m.Margin(x)
	if err != nil {
		return 0, err
	}
	if m.Platt != nil {
		return m.Platt.Prob(margin), nil
	}
	return 1 / (1 + math.Exp(-margin)), nil
}

// Dim returns the model's feature dimension.
func (m *Model) Dim() int { return len(m.Weights) }

// Dataset is a dense design matrix with ±1 labels.
type Dataset struct {
	X [][]float64
	Y []int
}

// Validate checks shape invariants.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return errors.New("svm: empty dataset")
	}
	if len(d.X) != len(d.Y) {
		return errors.New("svm: label count mismatch")
	}
	dim := len(d.X[0])
	if dim == 0 {
		return errors.New("svm: zero-dimension features")
	}
	pos, neg := 0, 0
	for i, y := range d.Y {
		if y != 1 && y != -1 {
			return fmt.Errorf("svm: label %d at row %d (want ±1)", y, i)
		}
		if len(d.X[i]) != dim {
			return fmt.Errorf("svm: ragged row %d", i)
		}
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return errors.New("svm: single-class dataset")
	}
	return nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Accuracy evaluates 0/1 accuracy on a dataset.
func (m *Model) Accuracy(d *Dataset) (float64, error) {
	if len(d.X) == 0 {
		return 0, errors.New("svm: empty dataset")
	}
	correct := 0
	for i := range d.X {
		p, err := m.Predict(d.X[i])
		if err != nil {
			return 0, err
		}
		if p == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(d.X)), nil
}

// HingeLoss computes the regularized empirical hinge objective
// λ/2‖w‖² + mean(max(0, 1 − y·f(x))), matching the Pegasos objective.
func (m *Model) HingeLoss(d *Dataset, lambda float64) (float64, error) {
	if len(d.X) == 0 {
		return 0, errors.New("svm: empty dataset")
	}
	var loss float64
	for i := range d.X {
		margin, err := m.Margin(d.X[i])
		if err != nil {
			return 0, err
		}
		if h := 1 - float64(d.Y[i])*margin; h > 0 {
			loss += h
		}
	}
	loss /= float64(len(d.X))
	return loss + lambda/2*dot(m.Weights, m.Weights), nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Scaler standardizes features to zero mean / unit variance — SVMs need
// comparable feature scales, and the raw LifeLog counts span orders of
// magnitude.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns per-column statistics from the design matrix.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, errors.New("svm: empty matrix")
	}
	dim := len(X[0])
	mean := make([]float64, dim)
	std := make([]float64, dim)
	n := float64(len(X))
	for _, row := range X {
		if len(row) != dim {
			return nil, errors.New("svm: ragged matrix")
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	return &Scaler{Mean: mean, Std: std}, nil
}

// Transform standardizes one vector in place and returns it.
func (s *Scaler) Transform(x []float64) ([]float64, error) {
	if len(x) != len(s.Mean) {
		return nil, ErrDimension
	}
	for j := range x {
		x[j] = (x[j] - s.Mean[j]) / s.Std[j]
	}
	return x, nil
}

// TransformAll standardizes a whole matrix in place.
func (s *Scaler) TransformAll(X [][]float64) error {
	for _, row := range X {
		if _, err := s.Transform(row); err != nil {
			return err
		}
	}
	return nil
}
