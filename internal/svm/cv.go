package svm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Cross-validation and train/calibrate plumbing.

// Split partitions a dataset into two disjoint parts with the first taking
// fraction frac of samples, shuffled by seed. Stratification keeps the
// class balance of both parts close to the original — important because
// campaign response rates are far from 50 %.
func Split(d *Dataset, frac float64, seed uint64) (*Dataset, *Dataset, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("svm: split fraction %v out of (0,1)", frac)
	}
	r := rng.New(seed)
	var posIdx, negIdx []int
	for i, y := range d.Y {
		if y == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	r.Shuffle(len(posIdx), func(i, j int) { posIdx[i], posIdx[j] = posIdx[j], posIdx[i] })
	r.Shuffle(len(negIdx), func(i, j int) { negIdx[i], negIdx[j] = negIdx[j], negIdx[i] })
	a, b := &Dataset{}, &Dataset{}
	take := func(idx []int) {
		cut := int(float64(len(idx)) * frac)
		if cut == 0 {
			cut = 1
		}
		if cut == len(idx) {
			cut = len(idx) - 1
		}
		for _, i := range idx[:cut] {
			a.X = append(a.X, d.X[i])
			a.Y = append(a.Y, d.Y[i])
		}
		for _, i := range idx[cut:] {
			b.X = append(b.X, d.X[i])
			b.Y = append(b.Y, d.Y[i])
		}
	}
	take(posIdx)
	take(negIdx)
	return a, b, nil
}

// Trainer abstracts over the two SVM trainers (and the baselines, which
// implement the same contract in internal/baseline).
type Trainer func(*Dataset) (*Model, error)

// PegasosTrainer adapts TrainPegasos to the Trainer contract.
func PegasosTrainer(p PegasosParams) Trainer {
	return func(d *Dataset) (*Model, error) { return TrainPegasos(d, p) }
}

// DualCDTrainer adapts TrainDualCD to the Trainer contract.
func DualCDTrainer(p DualCDParams) Trainer {
	return func(d *Dataset) (*Model, error) { return TrainDualCD(d, p) }
}

// TrainCalibrated trains on 80 % of the data and Platt-calibrates on the
// held-out 20 % — the standard recipe for propensity models.
func TrainCalibrated(d *Dataset, train Trainer, seed uint64) (*Model, error) {
	fit, hold, err := Split(d, 0.8, seed)
	if err != nil {
		return nil, err
	}
	m, err := train(fit)
	if err != nil {
		return nil, err
	}
	if err := m.Calibrate(hold); err != nil {
		return nil, err
	}
	return m, nil
}

// CVResult summarizes a k-fold run.
type CVResult struct {
	FoldAccuracy []float64
	MeanAccuracy float64
	StdAccuracy  float64
}

// CrossValidate runs stratified k-fold cross-validation with the given
// trainer and returns per-fold and aggregate accuracy.
func CrossValidate(d *Dataset, train Trainer, k int, seed uint64) (*CVResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, errors.New("svm: k must be >= 2")
	}
	if k > d.Len() {
		return nil, errors.New("svm: k exceeds dataset size")
	}
	r := rng.New(seed)
	// Stratified fold assignment.
	fold := make([]int, d.Len())
	var posIdx, negIdx []int
	for i, y := range d.Y {
		if y == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	assign := func(idx []int) {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for pos, i := range idx {
			fold[i] = pos % k
		}
	}
	assign(posIdx)
	assign(negIdx)

	res := &CVResult{}
	for f := 0; f < k; f++ {
		var trainSet, testSet Dataset
		for i := range d.X {
			if fold[i] == f {
				testSet.X = append(testSet.X, d.X[i])
				testSet.Y = append(testSet.Y, d.Y[i])
			} else {
				trainSet.X = append(trainSet.X, d.X[i])
				trainSet.Y = append(trainSet.Y, d.Y[i])
			}
		}
		if err := trainSet.Validate(); err != nil {
			return nil, fmt.Errorf("svm: fold %d train set: %w", f, err)
		}
		m, err := train(&trainSet)
		if err != nil {
			return nil, err
		}
		if len(testSet.X) == 0 {
			return nil, fmt.Errorf("svm: fold %d empty test set", f)
		}
		acc, err := m.Accuracy(&testSet)
		if err != nil {
			return nil, err
		}
		res.FoldAccuracy = append(res.FoldAccuracy, acc)
	}
	var sum float64
	for _, a := range res.FoldAccuracy {
		sum += a
	}
	res.MeanAccuracy = sum / float64(k)
	var ss float64
	for _, a := range res.FoldAccuracy {
		dlt := a - res.MeanAccuracy
		ss += dlt * dlt
	}
	res.StdAccuracy = sqrtSafe(ss / float64(k))
	return res, nil
}

func sqrtSafe(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
