// Package physio implements the paper's future-work extension (§7): "We are
// sensing physiological and contextual parameters of firefighters in Paris
// brigades through wearable computing in the wearIT@work project ... mapping
// physiological signals to user's emotional context. The objective of the
// team commander is to receive advice from the system about firefighter's
// current emotional state and its implications in the rescue operation."
//
// The package provides:
//
//   - a typed physiological sample stream (heart rate, heart-rate
//     variability, skin conductance, respiration, skin temperature,
//     movement),
//   - per-subject baselines learned from calm periods,
//   - a mapper from baseline-normalized signals to the circumplex
//     (arousal/valence) plane and onto the deployment's ten emotional
//     attributes,
//   - an operational-fitness assessor producing the commander advice the
//     paper describes.
//
// Real wearIT@work sensor data is unavailable; internal/physio/simulate.go
// generates the synthetic equivalent (scripted incident timelines with
// subject-specific physiology), which exercises the same code path.
package physio

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/emotion"
)

// Sample is one multi-sensor reading from a wearable.
type Sample struct {
	SubjectID uint64
	Time      time.Time
	// HeartRate in beats per minute.
	HeartRate float64
	// HRV is heart-rate variability (RMSSD, milliseconds); low HRV under
	// load indicates stress.
	HRV float64
	// SkinConductance in microsiemens; rises with sympathetic arousal.
	SkinConductance float64
	// RespirationRate in breaths per minute.
	RespirationRate float64
	// SkinTemp in °C; peripheral temperature drops under acute stress.
	SkinTemp float64
	// Movement is accelerometer magnitude in g.
	Movement float64
}

// Validate checks physiological plausibility bounds (a reading outside
// them indicates sensor fault, and the mapper must not interpret it).
func (s Sample) Validate() error {
	if s.SubjectID == 0 {
		return errors.New("physio: zero subject id")
	}
	if s.Time.IsZero() {
		return errors.New("physio: zero timestamp")
	}
	checks := []struct {
		name      string
		v, lo, hi float64
	}{
		{"heart rate", s.HeartRate, 20, 250},
		{"hrv", s.HRV, 0, 300},
		{"skin conductance", s.SkinConductance, 0, 60},
		{"respiration", s.RespirationRate, 2, 80},
		{"skin temp", s.SkinTemp, 15, 45},
		{"movement", s.Movement, 0, 20},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || c.v < c.lo || c.v > c.hi {
			return fmt.Errorf("physio: %s %.2f outside [%g, %g]", c.name, c.v, c.lo, c.hi)
		}
	}
	return nil
}

// Baseline is a subject's resting physiology, learned from calm periods.
type Baseline struct {
	SubjectID uint64
	HeartRate float64
	HRV       float64
	SkinCond  float64
	Resp      float64
	SkinTemp  float64
	Samples   int
}

// LearnBaseline averages validated samples from a calm period. At least
// minSamples readings are required for a usable baseline.
func LearnBaseline(subject uint64, samples []Sample, minSamples int) (Baseline, error) {
	if minSamples < 1 {
		minSamples = 30
	}
	b := Baseline{SubjectID: subject}
	for _, s := range samples {
		if s.SubjectID != subject {
			continue
		}
		if err := s.Validate(); err != nil {
			continue // faulty readings don't poison the baseline
		}
		b.HeartRate += s.HeartRate
		b.HRV += s.HRV
		b.SkinCond += s.SkinConductance
		b.Resp += s.RespirationRate
		b.SkinTemp += s.SkinTemp
		b.Samples++
	}
	if b.Samples < minSamples {
		return Baseline{}, fmt.Errorf("physio: only %d valid samples, need %d", b.Samples, minSamples)
	}
	n := float64(b.Samples)
	b.HeartRate /= n
	b.HRV /= n
	b.SkinCond /= n
	b.Resp /= n
	b.SkinTemp /= n
	return b, nil
}

// State is the mapped emotional reading.
type State struct {
	SubjectID uint64
	Time      time.Time
	// Arousal in [0, 1]: 0 calm, 1 maximal sympathetic activation.
	Arousal float64
	// Valence in [-1, 1]: negative = distress, positive = engaged/positive.
	Valence emotion.Valence
	// Attributes maps the reading onto the deployment's vocabulary.
	Attributes map[emotion.Attribute]float64
}

// Mapper converts baseline-normalized samples to emotional state. One
// mapper serves many subjects (baselines are passed per call).
type Mapper struct {
	// ExertionDiscount reduces arousal attributed to physical effort
	// (movement explains heart-rate elevation during a climb without
	// emotional stress). In [0,1]; default 0.5.
	ExertionDiscount float64
}

// NewMapper returns a mapper with defaults.
func NewMapper() *Mapper { return &Mapper{ExertionDiscount: 0.5} }

// Map converts one sample to an emotional state estimate.
func (m *Mapper) Map(b Baseline, s Sample) (State, error) {
	if err := s.Validate(); err != nil {
		return State{}, err
	}
	if b.SubjectID != s.SubjectID {
		return State{}, fmt.Errorf("physio: baseline subject %d != sample subject %d", b.SubjectID, s.SubjectID)
	}
	// Baseline-relative deviations, each squashed to [0,1].
	hrDev := squash((s.HeartRate - b.HeartRate) / 40)
	scDev := squash((s.SkinConductance - b.SkinCond) / 8)
	respDev := squash((s.RespirationRate - b.Resp) / 12)
	hrvDrop := squash((b.HRV - s.HRV) / 30)
	tempDrop := squash((b.SkinTemp - s.SkinTemp) / 2)

	// Physical exertion explains part of cardio-respiratory elevation.
	exertion := squash(s.Movement / 3)
	discount := m.ExertionDiscount * exertion
	cardio := math.Max(0, (hrDev+respDev)/2-discount)

	arousal := clamp01(0.40*cardio + 0.35*scDev + 0.25*hrvDrop)

	// Valence: distress markers are HRV collapse and peripheral temperature
	// drop with high arousal; engaged-positive is elevated cardio without
	// them.
	distress := clamp01(0.6*hrvDrop + 0.4*tempDrop)
	valence := emotion.Valence(0.5*cardio - 1.6*distress*arousal).Clamp()

	attrs := map[emotion.Attribute]float64{}
	switch {
	case arousal >= 0.55 && valence < -0.15:
		attrs[emotion.Frightened] = arousal * float64(-valence)
		attrs[emotion.Impatient] = 0.5 * arousal
	case arousal >= 0.55:
		attrs[emotion.Stimulated] = arousal
		attrs[emotion.Lively] = 0.6 * arousal
	case valence < -0.15 && arousal >= 0.3:
		// Mid-arousal distress: apprehension building before the acute
		// threshold.
		attrs[emotion.Frightened] = arousal * (0.4 + float64(-valence))
		attrs[emotion.Shy] = 0.3 * arousal
	case valence < -0.15:
		attrs[emotion.Apathetic] = 0.4 * (1 - arousal)
	case arousal <= 0.2:
		attrs[emotion.Motivated] = 0.4 + 0.3*float64(valence)
	default:
		attrs[emotion.Hopeful] = 0.3
	}
	return State{
		SubjectID:  s.SubjectID,
		Time:       s.Time,
		Arousal:    arousal,
		Valence:    valence,
		Attributes: attrs,
	}, nil
}

// squash maps a deviation (already scaled to ~1 at "strong") into [0,1]
// smoothly, clipping negatives.
func squash(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x / (1 + x)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
