package physio

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/emotion"
	"repro/internal/rng"
)

var testStart = time.Date(2006, 6, 1, 10, 0, 0, 0, time.UTC)

func calmSample(subject uint64, at time.Time) Sample {
	return Sample{
		SubjectID: subject, Time: at,
		HeartRate: 62, HRV: 70, SkinConductance: 4,
		RespirationRate: 14, SkinTemp: 33.5, Movement: 0.1,
	}
}

func stressedSample(subject uint64, at time.Time) Sample {
	return Sample{
		SubjectID: subject, Time: at,
		HeartRate: 135, HRV: 18, SkinConductance: 14,
		RespirationRate: 26, SkinTemp: 31.6, Movement: 0.4,
	}
}

func learnCalm(t *testing.T, subject uint64) Baseline {
	t.Helper()
	var samples []Sample
	for i := 0; i < 60; i++ {
		samples = append(samples, calmSample(subject, testStart.Add(time.Duration(i)*5*time.Second)))
	}
	b, err := LearnBaseline(subject, samples, 30)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSampleValidate(t *testing.T) {
	good := calmSample(1, testStart)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Sample{
		{},
		func() Sample { s := good; s.SubjectID = 0; return s }(),
		func() Sample { s := good; s.HeartRate = 800; return s }(),
		func() Sample { s := good; s.HRV = -1; return s }(),
		func() Sample { s := good; s.SkinTemp = 5; return s }(),
		func() Sample { s := good; s.RespirationRate = 100; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad sample %d validated", i)
		}
	}
}

func TestLearnBaseline(t *testing.T) {
	b := learnCalm(t, 1)
	if b.HeartRate != 62 || b.HRV != 70 {
		t.Fatalf("baseline %+v", b)
	}
	if b.Samples != 60 {
		t.Fatalf("baseline samples %d", b.Samples)
	}
}

func TestLearnBaselineRejectsTooFew(t *testing.T) {
	if _, err := LearnBaseline(1, []Sample{calmSample(1, testStart)}, 30); err == nil {
		t.Fatal("tiny baseline accepted")
	}
}

func TestLearnBaselineSkipsFaultsAndOtherSubjects(t *testing.T) {
	var samples []Sample
	for i := 0; i < 40; i++ {
		samples = append(samples, calmSample(1, testStart.Add(time.Duration(i)*time.Second)))
	}
	fault := calmSample(1, testStart)
	fault.HeartRate = 999 // implausible
	samples = append(samples, fault)
	samples = append(samples, calmSample(2, testStart)) // other subject
	b, err := LearnBaseline(1, samples, 30)
	if err != nil {
		t.Fatal(err)
	}
	if b.Samples != 40 {
		t.Fatalf("baseline counted %d samples", b.Samples)
	}
	if b.HeartRate != 62 {
		t.Fatalf("fault poisoned baseline: %v", b.HeartRate)
	}
}

func TestMapCalmVsStressed(t *testing.T) {
	b := learnCalm(t, 1)
	m := NewMapper()
	calm, err := m.Map(b, calmSample(1, testStart))
	if err != nil {
		t.Fatal(err)
	}
	stressed, err := m.Map(b, stressedSample(1, testStart))
	if err != nil {
		t.Fatal(err)
	}
	if calm.Arousal > 0.15 {
		t.Fatalf("calm arousal %v", calm.Arousal)
	}
	if stressed.Arousal < 0.5 {
		t.Fatalf("stressed arousal %v", stressed.Arousal)
	}
	if stressed.Valence >= 0 {
		t.Fatalf("distress valence %v", stressed.Valence)
	}
	if stressed.Attributes[emotion.Frightened] <= 0 {
		t.Fatalf("distress attributes %v", stressed.Attributes)
	}
}

func TestMapExertionDiscount(t *testing.T) {
	b := learnCalm(t, 1)
	m := NewMapper()
	// Same cardio elevation; one subject is climbing (high movement), the
	// other is still. The climber's emotional arousal must be lower.
	working := Sample{
		SubjectID: 1, Time: testStart,
		HeartRate: 120, HRV: 55, SkinConductance: 6,
		RespirationRate: 24, SkinTemp: 33.6, Movement: 3.0,
	}
	still := working
	still.Movement = 0.1
	sWork, _ := m.Map(b, working)
	sStill, _ := m.Map(b, still)
	if sWork.Arousal >= sStill.Arousal {
		t.Fatalf("exertion not discounted: working %v vs still %v", sWork.Arousal, sStill.Arousal)
	}
}

func TestMapRejectsFaultAndWrongSubject(t *testing.T) {
	b := learnCalm(t, 1)
	m := NewMapper()
	fault := calmSample(1, testStart)
	fault.HeartRate = 500
	if _, err := m.Map(b, fault); err == nil {
		t.Fatal("fault interpreted")
	}
	if _, err := m.Map(b, calmSample(2, testStart)); err == nil {
		t.Fatal("wrong subject accepted")
	}
}

func TestMapBoundsProperty(t *testing.T) {
	b := Baseline{SubjectID: 1, HeartRate: 62, HRV: 70, SkinCond: 4, Resp: 14, SkinTemp: 33.5, Samples: 60}
	m := NewMapper()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := Sample{
			SubjectID:       1,
			Time:            testStart,
			HeartRate:       20 + r.Float64()*230,
			HRV:             r.Float64() * 300,
			SkinConductance: r.Float64() * 60,
			RespirationRate: 2 + r.Float64()*78,
			SkinTemp:        15 + r.Float64()*30,
			Movement:        r.Float64() * 20,
		}
		st, err := m.Map(b, s)
		if err != nil {
			return false
		}
		return st.Arousal >= 0 && st.Arousal <= 1 && st.Valence >= -1 && st.Valence <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateStandardIncident(t *testing.T) {
	r := rng.New(1)
	subj := NewSubject(1, r)
	samples, err := Simulate(subj, StandardIncident(), SimulateConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 200 {
		t.Fatalf("only %d samples", len(samples))
	}
	// Heart rate in the acute phase must exceed staging.
	var stagingHR, searchHR float64
	var ns, nq int
	for i, s := range samples {
		frac := float64(i) / float64(len(samples))
		if frac < 0.15 {
			stagingHR += s.HeartRate
			ns++
		}
		if frac > 0.55 && frac < 0.65 {
			searchHR += s.HeartRate
			nq++
		}
	}
	if stagingHR/float64(ns) >= searchHR/float64(nq) {
		t.Fatal("incident timeline has no physiological arc")
	}
}

func TestSimulateValidation(t *testing.T) {
	subj := NewSubject(1, rng.New(1))
	if _, err := Simulate(subj, nil, SimulateConfig{}); err == nil {
		t.Fatal("empty timeline accepted")
	}
	if _, err := Simulate(subj, StandardIncident(), SimulateConfig{FaultRate: 1.5}); err == nil {
		t.Fatal("bad fault rate accepted")
	}
}

func TestAdvisorGradesIncident(t *testing.T) {
	r := rng.New(7)
	subj := NewSubject(3, r)
	// Baseline from a scripted calm phase.
	calmPhase := []Phase{{Name: "rest", Duration: 5 * time.Minute, Exertion: 0.05, Stress: 0.05}}
	calm, err := Simulate(subj, calmPhase, SimulateConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := LearnBaseline(subj.ID, calm, 30)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := Simulate(subj, StandardIncident(), SimulateConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMapper()
	adv := NewAdvisor()
	var grades []Fitness
	for _, s := range samples {
		st, err := m.Map(baseline, s)
		if err != nil {
			continue // sensor fault
		}
		adv.Observe(st)
		a, err := adv.Advise(subj.ID)
		if err != nil {
			t.Fatal(err)
		}
		grades = append(grades, a.Fitness)
	}
	// The incident must start green and escalate beyond green at the acute
	// phase.
	if grades[5] != FitnessGreen {
		t.Fatalf("staging graded %v", grades[5])
	}
	sawEscalation := false
	for _, g := range grades {
		if g == FitnessAmber || g == FitnessRed {
			sawEscalation = true
		}
	}
	if !sawEscalation {
		t.Fatal("acute phase never escalated")
	}
	if len(adv.Subjects()) != 1 || adv.Subjects()[0] != subj.ID {
		t.Fatalf("subjects %v", adv.Subjects())
	}
}

func TestAdvisorUnknownSubject(t *testing.T) {
	adv := NewAdvisor()
	if _, err := adv.Advise(42); !errors.Is(err, ErrNoObservations) {
		t.Fatalf("unknown subject: %v", err)
	}
}

func TestAdvisorWindowTrims(t *testing.T) {
	adv := NewAdvisor()
	adv.Window = time.Minute
	// Old distressed states followed by calm ones outside the window.
	old := State{SubjectID: 1, Time: testStart, Arousal: 0.9, Valence: -0.8}
	adv.Observe(old)
	recent := State{SubjectID: 1, Time: testStart.Add(5 * time.Minute), Arousal: 0.1, Valence: 0.2}
	adv.Observe(recent)
	a, err := adv.Advise(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fitness != FitnessGreen {
		t.Fatalf("stale distress leaked into grade: %v (arousal %v)", a.Fitness, a.MeanArousal)
	}
}

func TestFitnessStrings(t *testing.T) {
	if FitnessGreen.String() != "green" || FitnessAmber.String() != "amber" || FitnessRed.String() != "red" {
		t.Fatal("fitness strings")
	}
}

func BenchmarkMap(b *testing.B) {
	base := Baseline{SubjectID: 1, HeartRate: 62, HRV: 70, SkinCond: 4, Resp: 14, SkinTemp: 33.5, Samples: 60}
	m := NewMapper()
	s := stressedSample(1, testStart)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(base, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateIncident(b *testing.B) {
	subj := NewSubject(1, rng.New(1))
	phases := StandardIncident()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(subj, phases, SimulateConfig{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
