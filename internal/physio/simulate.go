package physio

import (
	"errors"
	"time"

	"repro/internal/rng"
)

// Synthetic wearable-sensor generation: the stand-in for wearIT@work
// hardware. An incident timeline is a sequence of phases with target
// physiological regimes; the simulator renders subject-specific noisy
// samples at a fixed cadence, including occasional sensor faults (which the
// mapper must reject rather than interpret).

// Phase is one segment of an incident timeline.
type Phase struct {
	Name string
	// Duration of the phase.
	Duration time.Duration
	// Exertion in [0,1]: physical load (drives movement + cardio).
	Exertion float64
	// Stress in [0,1]: psychological load (drives conductance, HRV drop,
	// temperature drop).
	Stress float64
}

// StandardIncident is the scripted rescue-operation timeline used by the
// firefighter example and tests: staging → approach → interior attack →
// victim search (acute) → withdrawal → recovery.
func StandardIncident() []Phase {
	return []Phase{
		{Name: "staging", Duration: 4 * time.Minute, Exertion: 0.1, Stress: 0.1},
		{Name: "approach", Duration: 3 * time.Minute, Exertion: 0.5, Stress: 0.3},
		{Name: "interior attack", Duration: 5 * time.Minute, Exertion: 0.8, Stress: 0.55},
		{Name: "victim search", Duration: 4 * time.Minute, Exertion: 0.7, Stress: 0.9},
		{Name: "withdrawal", Duration: 3 * time.Minute, Exertion: 0.5, Stress: 0.5},
		{Name: "recovery", Duration: 5 * time.Minute, Exertion: 0.1, Stress: 0.2},
	}
}

// Subject models one firefighter's physiology.
type Subject struct {
	ID uint64
	// RestHR etc. are resting values.
	RestHR, RestHRV, RestSC, RestResp, RestTemp float64
	// Reactivity scales the stress response (individual differences).
	Reactivity float64
}

// NewSubject draws a plausible subject from the rng.
func NewSubject(id uint64, r *rng.RNG) Subject {
	return Subject{
		ID:         id,
		RestHR:     r.Gaussian(62, 5),
		RestHRV:    r.Gaussian(70, 12),
		RestSC:     r.Gaussian(4, 1),
		RestResp:   r.Gaussian(14, 1.5),
		RestTemp:   r.Gaussian(33.5, 0.5),
		Reactivity: clamp01(r.Beta(4, 4) + 0.2),
	}
}

// SimulateConfig controls rendering.
type SimulateConfig struct {
	Start time.Time
	// Cadence between samples (default 5 s).
	Cadence time.Duration
	// FaultRate is the probability a sample is a sensor fault (default 0.01).
	FaultRate float64
	Seed      uint64
}

// Simulate renders the timeline for a subject into a sample slice.
func Simulate(subject Subject, phases []Phase, cfg SimulateConfig) ([]Sample, error) {
	if len(phases) == 0 {
		return nil, errors.New("physio: empty timeline")
	}
	if cfg.Cadence <= 0 {
		cfg.Cadence = 5 * time.Second
	}
	if cfg.FaultRate < 0 || cfg.FaultRate >= 1 {
		return nil, errors.New("physio: fault rate out of [0,1)")
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2006, 6, 1, 10, 0, 0, 0, time.UTC)
	}
	r := rng.New(cfg.Seed ^ subject.ID*0x9e3779b9)
	var out []Sample
	at := cfg.Start
	for _, ph := range phases {
		steps := int(ph.Duration / cfg.Cadence)
		for i := 0; i < steps; i++ {
			stress := ph.Stress * subject.Reactivity
			exert := ph.Exertion
			s := Sample{
				SubjectID:       subject.ID,
				Time:            at,
				HeartRate:       subject.RestHR + 70*exert + 35*stress + r.Gaussian(0, 3),
				HRV:             maxF(2, subject.RestHRV-45*stress-10*exert+r.Gaussian(0, 5)),
				SkinConductance: maxF(0.5, subject.RestSC+9*stress+2*exert+r.Gaussian(0, 0.6)),
				RespirationRate: subject.RestResp + 14*exert + 8*stress + r.Gaussian(0, 1),
				SkinTemp:        subject.RestTemp - 1.6*stress + 0.4*exert + r.Gaussian(0, 0.15),
				Movement:        maxF(0, 3.2*exert+r.Gaussian(0, 0.3)),
			}
			if r.Bool(cfg.FaultRate) {
				// Sensor fault: an implausible spike the validator rejects.
				s.HeartRate = 800
			}
			out = append(out, s)
			at = at.Add(cfg.Cadence)
		}
	}
	return out, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
