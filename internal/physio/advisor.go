package physio

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/emotion"
)

// The commander advisor: the Ambient Recommender System of the paper's
// future work. It maintains a rolling emotional-state window per firefighter
// and produces operational-fitness advice "so he can better assess the
// operational fitness of his colleague in particular situations" (§7).

// Fitness grades operational fitness.
type Fitness int

const (
	// FitnessGreen: fully operational.
	FitnessGreen Fitness = iota
	// FitnessAmber: elevated load; monitor, avoid assigning critical tasks.
	FitnessAmber
	// FitnessRed: acute distress; rotate out or pair with support.
	FitnessRed
)

// String implements fmt.Stringer.
func (f Fitness) String() string {
	switch f {
	case FitnessGreen:
		return "green"
	case FitnessAmber:
		return "amber"
	case FitnessRed:
		return "red"
	default:
		return fmt.Sprintf("Fitness(%d)", int(f))
	}
}

// Advice is one commander recommendation for one firefighter.
type Advice struct {
	SubjectID uint64
	Time      time.Time
	Fitness   Fitness
	// MeanArousal and MeanValence summarize the window.
	MeanArousal float64
	MeanValence float64
	// Dominant is the strongest mapped emotional attribute in the window.
	Dominant emotion.Attribute
	// Recommendation is the operational text for the commander.
	Recommendation string
}

// Advisor accumulates mapped states and grades fitness over a sliding
// window.
type Advisor struct {
	// Window is the assessment horizon (default 2 minutes).
	Window time.Duration
	// AmberArousal and RedArousal are the grade thresholds.
	AmberArousal float64
	RedArousal   float64

	states map[uint64][]State
}

// NewAdvisor returns an advisor with calibrated defaults.
func NewAdvisor() *Advisor {
	return &Advisor{
		Window:       2 * time.Minute,
		AmberArousal: 0.45,
		RedArousal:   0.65,
		states:       make(map[uint64][]State),
	}
}

// Observe records a mapped state.
func (a *Advisor) Observe(st State) {
	ss := append(a.states[st.SubjectID], st)
	// Trim outside the window.
	cut := st.Time.Add(-a.Window)
	start := 0
	for start < len(ss) && ss[start].Time.Before(cut) {
		start++
	}
	a.states[st.SubjectID] = ss[start:]
}

// ErrNoObservations is returned when advising on an unobserved subject.
var ErrNoObservations = errors.New("physio: no observations for subject")

// Advise grades a firefighter's current operational fitness.
func (a *Advisor) Advise(subject uint64) (Advice, error) {
	ss := a.states[subject]
	if len(ss) == 0 {
		return Advice{}, fmt.Errorf("%w: %d", ErrNoObservations, subject)
	}
	var arousal, valence float64
	attrSum := map[emotion.Attribute]float64{}
	for _, st := range ss {
		arousal += st.Arousal
		valence += float64(st.Valence)
		for attr, w := range st.Attributes {
			attrSum[attr] += w
		}
	}
	n := float64(len(ss))
	adv := Advice{
		SubjectID:   subject,
		Time:        ss[len(ss)-1].Time,
		MeanArousal: arousal / n,
		MeanValence: valence / n,
	}
	// Dominant attribute: highest accumulated weight; ties break by
	// attribute order for determinism.
	type aw struct {
		a emotion.Attribute
		w float64
	}
	var all []aw
	for attr, w := range attrSum {
		all = append(all, aw{attr, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].a < all[j].a
	})
	if len(all) > 0 {
		adv.Dominant = all[0].a
	}
	distressed := adv.MeanValence < -0.1
	switch {
	case adv.MeanArousal >= a.RedArousal && distressed:
		adv.Fitness = FitnessRed
		adv.Recommendation = "acute distress: rotate out of the hot zone and pair with support"
	case adv.MeanArousal >= a.RedArousal:
		adv.Fitness = FitnessAmber
		adv.Recommendation = "very high load but engaged: shorten task cycles and schedule relief"
	case adv.MeanArousal >= a.AmberArousal:
		adv.Fitness = FitnessAmber
		adv.Recommendation = "elevated load: monitor closely, avoid assigning new critical tasks"
	default:
		adv.Fitness = FitnessGreen
		adv.Recommendation = "operational: fit for assignment"
	}
	return adv, nil
}

// Subjects lists observed subjects in ascending order.
func (a *Advisor) Subjects() []uint64 {
	out := make([]uint64, 0, len(a.states))
	for id := range a.states {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
