package lifelog

import (
	"math"
	"time"
)

// FeatureVector is the pre-processor's per-user digest of a raw stream: the
// behavioural (subjective) attributes the Attributes Manager fuses with
// socio-demographics and EIT-derived emotional attributes.
type FeatureVector struct {
	UserID uint64

	// Volume features.
	Events       int
	Sessions     int
	Transactions int
	Enrollments  int
	Ratings      int
	EITAnswers   int

	// Intensity features.
	MeanSessionMinutes  float64
	MeanEventsPerSess   float64
	TransactionRate     float64 // transactions / events
	MeanRating          float64
	MessageOpenRate     float64 // opens / (opens + unopened campaign touches unknown here: opens per campaign event)
	MessageClickThrough float64 // clicks / opens

	// Recency: days between last event and the extraction horizon.
	RecencyDays float64

	// ActionHistogram counts clicks per action bucket (coarsened to
	// NumActionBuckets so the vector stays dense).
	ActionHistogram [NumActionBuckets]float64
}

// NumActionBuckets coarsens the 984-action universe into dense buckets for
// the feature vector; the raw sparse histogram lives in internal/cf.
const NumActionBuckets = 24

// ActionBucket maps an action ordinal to its bucket.
func ActionBucket(action uint32) int {
	return int(action) * NumActionBuckets / ActionUniverse
}

// Extractor accumulates per-user features from a stream. It embeds a
// Sessionizer so session statistics are computed on the fly — this is the
// online half of the LifeLogs Pre-processor Agent.
type Extractor struct {
	sz      *Sessionizer
	byUser  map[uint64]*acc
	horizon time.Time
}

type acc struct {
	fv            FeatureVector
	sessions      int
	sessionMins   float64
	sessionEvents int
	ratingSum     float64
	msgOpens      int
	msgClicks     int
	lastEvent     time.Time
}

// NewExtractor creates an extractor; horizon is the "now" used for recency
// (typically the campaign send time).
func NewExtractor(idleGap time.Duration, horizon time.Time) *Extractor {
	return &Extractor{
		sz:      NewSessionizer(idleGap),
		byUser:  make(map[uint64]*acc),
		horizon: horizon,
	}
}

// Feed consumes one event.
func (x *Extractor) Feed(e Event) error {
	done, err := x.sz.Feed(e)
	if err != nil {
		return err
	}
	a := x.byUser[e.UserID]
	if a == nil {
		a = &acc{fv: FeatureVector{UserID: e.UserID}}
		x.byUser[e.UserID] = a
	}
	if done != nil {
		x.closeSession(done)
	}
	a.fv.Events++
	a.lastEvent = e.Time
	switch e.Type {
	case EventEnroll:
		a.fv.Enrollments++
	case EventRating:
		a.fv.Ratings++
		a.ratingSum += float64(e.Value)
	case EventEITAnswer:
		a.fv.EITAnswers++
	case EventMessageOpen:
		a.msgOpens++
	case EventMessageClick:
		a.msgClicks++
	case EventClick, EventPageView:
		a.fv.ActionHistogram[ActionBucket(e.Action)]++
	}
	if e.Type.IsTransaction() {
		a.fv.Transactions++
	}
	return nil
}

func (x *Extractor) closeSession(s *Session) {
	a := x.byUser[s.UserID]
	if a == nil {
		return
	}
	a.sessions++
	a.sessionMins += s.Duration().Minutes()
	a.sessionEvents += len(s.Events)
}

// Finish closes open sessions and returns the per-user feature vectors.
func (x *Extractor) Finish() map[uint64]FeatureVector {
	for _, s := range x.sz.FlushAll() {
		x.closeSession(s)
	}
	out := make(map[uint64]FeatureVector, len(x.byUser))
	for id, a := range x.byUser {
		fv := a.fv
		fv.Sessions = a.sessions
		if a.sessions > 0 {
			fv.MeanSessionMinutes = a.sessionMins / float64(a.sessions)
			fv.MeanEventsPerSess = float64(a.sessionEvents) / float64(a.sessions)
		}
		if fv.Events > 0 {
			fv.TransactionRate = float64(fv.Transactions) / float64(fv.Events)
		}
		if fv.Ratings > 0 {
			fv.MeanRating = a.ratingSum / float64(fv.Ratings)
		}
		if fv.Events > 0 {
			fv.MessageOpenRate = float64(a.msgOpens) / float64(fv.Events)
		}
		if a.msgOpens > 0 {
			fv.MessageClickThrough = float64(a.msgClicks) / float64(a.msgOpens)
		}
		if !a.lastEvent.IsZero() {
			fv.RecencyDays = x.horizon.Sub(a.lastEvent).Hours() / 24
			if fv.RecencyDays < 0 {
				fv.RecencyDays = 0
			}
		}
		out[id] = fv
	}
	return out
}

// Dense flattens the vector into the fixed feature layout used by the
// learners: 11 scalars followed by the action histogram. Count features are
// log1p-compressed — raw click-stream counts span orders of magnitude, and
// the linear learners downstream converge far better on the compressed
// scale.
func (fv FeatureVector) Dense() []float64 {
	out := make([]float64, 0, 11+NumActionBuckets)
	out = append(out,
		log1p(float64(fv.Events)),
		log1p(float64(fv.Sessions)),
		log1p(float64(fv.Transactions)),
		log1p(float64(fv.Enrollments)),
		log1p(float64(fv.Ratings)),
		log1p(float64(fv.EITAnswers)),
		fv.MeanSessionMinutes,
		fv.MeanEventsPerSess,
		fv.TransactionRate,
		fv.MeanRating,
		fv.RecencyDays,
	)
	for _, h := range fv.ActionHistogram {
		out = append(out, log1p(h))
	}
	return out
}

func log1p(x float64) float64 { return math.Log1p(x) }

// DenseLen is the length of the Dense layout.
const DenseLen = 11 + NumActionBuckets

// DenseNames labels the Dense layout, index-aligned; used when registering
// subjective attributes.
func DenseNames() []string {
	names := []string{
		"ll_events", "ll_sessions", "ll_transactions", "ll_enrollments",
		"ll_ratings", "ll_eit_answers", "ll_mean_session_min",
		"ll_mean_events_per_sess", "ll_transaction_rate", "ll_mean_rating",
		"ll_recency_days",
	}
	for i := 0; i < NumActionBuckets; i++ {
		names = append(names, "ll_action_bucket_"+itoa2(i))
	}
	return names
}

func itoa2(i int) string {
	const digits = "0123456789"
	return string([]byte{digits[i/10], digits[i%10]})
}
