package lifelog

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2006, 3, 1, 9, 0, 0, 0, time.UTC)

func ev(user uint64, at time.Time, typ EventType, action uint32) Event {
	return Event{UserID: user, Time: at, Type: typ, Action: action}
}

func TestEventTypeStrings(t *testing.T) {
	for typ := EventType(0); typ < numEventTypes; typ++ {
		if typ.String() == "" || !typ.Valid() {
			t.Fatalf("type %d bad", typ)
		}
	}
	if EventType(200).Valid() {
		t.Fatal("invalid type reported valid")
	}
}

func TestIsTransaction(t *testing.T) {
	want := map[EventType]bool{
		EventInfoRequest: true, EventEnroll: true, EventOpinion: true,
		EventMessageClick: true, EventPageView: false, EventClick: false,
		EventSearch: false, EventRating: false, EventEITAnswer: false,
		EventMessageOpen: false,
	}
	for typ, w := range want {
		if typ.IsTransaction() != w {
			t.Fatalf("%v IsTransaction=%v want %v", typ, typ.IsTransaction(), w)
		}
	}
}

func TestEventValidate(t *testing.T) {
	good := ev(1, t0, EventClick, 10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Event{
		{UserID: 0, Time: t0, Type: EventClick},
		{UserID: 1, Type: EventClick},
		{UserID: 1, Time: t0, Type: EventType(99)},
		{UserID: 1, Time: t0, Type: EventClick, Action: ActionUniverse},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Fatalf("bad event %d validated", i)
		}
	}
}

func TestSessionizerSplitsOnIdleGap(t *testing.T) {
	sz := NewSessionizer(30 * time.Minute)
	if _, err := sz.Feed(ev(1, t0, EventPageView, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sz.Feed(ev(1, t0.Add(10*time.Minute), EventClick, 5)); err != nil {
		t.Fatal(err)
	}
	done, err := sz.Feed(ev(1, t0.Add(2*time.Hour), EventClick, 6))
	if err != nil {
		t.Fatal(err)
	}
	if done == nil {
		t.Fatal("gap did not close session")
	}
	if len(done.Events) != 2 || done.Duration() != 10*time.Minute {
		t.Fatalf("closed session: %d events, %v", len(done.Events), done.Duration())
	}
	rest := sz.FlushAll()
	if len(rest) != 1 || len(rest[0].Events) != 1 {
		t.Fatalf("flush: %d sessions", len(rest))
	}
}

func TestSessionizerPerUserIndependence(t *testing.T) {
	sz := NewSessionizer(30 * time.Minute)
	sz.Feed(ev(1, t0, EventPageView, 0))
	sz.Feed(ev(2, t0.Add(time.Minute), EventPageView, 0))
	if sz.OpenSessions() != 2 {
		t.Fatalf("open sessions %d", sz.OpenSessions())
	}
	// User 2's event an hour later must not close user 1's session.
	done, _ := sz.Feed(ev(2, t0.Add(time.Hour), EventClick, 1))
	if done == nil || done.UserID != 2 {
		t.Fatal("wrong session closed")
	}
}

func TestSessionizerRejectsOutOfOrder(t *testing.T) {
	sz := NewSessionizer(0)
	sz.Feed(ev(1, t0.Add(time.Hour), EventPageView, 0))
	if _, err := sz.Feed(ev(1, t0, EventClick, 1)); err == nil {
		t.Fatal("out-of-order event accepted")
	}
}

func TestSessionTransactionCount(t *testing.T) {
	s := Session{Events: []Event{
		ev(1, t0, EventClick, 1),
		ev(1, t0, EventEnroll, 2),
		ev(1, t0, EventInfoRequest, 3),
	}}
	if s.TransactionCount() != 2 {
		t.Fatalf("transactions %d", s.TransactionCount())
	}
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{UserID: 1, Time: t0, Type: EventClick, Action: 42, Value: 0, Campaign: 0},
		{UserID: 2, Time: t0.Add(time.Second), Type: EventRating, Action: 7, Value: 4.5, Campaign: 3},
		{UserID: 1, Time: t0.Add(2 * time.Second), Type: EventEITAnswer, Action: 12, Value: 1},
	}
	for _, e := range events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestLogSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 100) // tiny segments
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := w.Append(ev(uint64(i+1), t0.Add(time.Duration(i)*time.Second), EventClick, uint32(i%ActionUniverse))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "events-*.log"))
	if len(segs) < 2 {
		t.Fatalf("tiny segments produced %d files", len(segs))
	}
	got, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d across segments, want %d", len(got), n)
	}
	for i, e := range got {
		if e.UserID != uint64(i+1) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestLogAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, 0)
	w.Append(ev(1, t0, EventClick, 1))
	w.Close()
	w2, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(ev(2, t0.Add(time.Second), EventClick, 2))
	w2.Close()
	got, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("after reopen read %d events", len(got))
	}
}

func TestLogRejectsInvalidEvent(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, 0)
	defer w.Close()
	if err := w.Append(Event{}); err == nil {
		t.Fatal("invalid event appended")
	}
}

func TestLogDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, 0)
	w.Append(ev(1, t0, EventClick, 1))
	w.Append(ev(2, t0.Add(time.Second), EventClick, 2))
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "events-*.log"))
	raw, _ := os.ReadFile(segs[0])
	raw[recordLen+10] ^= 0xff // corrupt second record's payload
	os.WriteFile(segs[0], raw, 0o644)

	r, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should be intact: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestLogEmptyDir(t *testing.T) {
	dir := t.TempDir()
	r, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty dir: %v", err)
	}
}

func TestPropertyLogRoundTrip(t *testing.T) {
	f := func(users []uint8, vals []uint16) bool {
		if len(users) == 0 {
			return true
		}
		dir, err := os.MkdirTemp("", "lifelogprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		w, err := NewWriter(dir, 200)
		if err != nil {
			return false
		}
		var want []Event
		for i, u := range users {
			v := uint16(0)
			if i < len(vals) {
				v = vals[i]
			}
			e := Event{
				UserID: uint64(u) + 1,
				Time:   t0.Add(time.Duration(i) * time.Second),
				Type:   EventType(uint8(v) % uint8(numEventTypes)),
				Action: uint32(v) % ActionUniverse,
				Value:  float32(v),
			}
			if w.Append(e) != nil {
				return false
			}
			want = append(want, e)
		}
		if w.Close() != nil {
			return false
		}
		got, err := ReadAll(dir)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractorBasics(t *testing.T) {
	horizon := t0.Add(10 * 24 * time.Hour)
	x := NewExtractor(30*time.Minute, horizon)
	feed := []Event{
		ev(1, t0, EventPageView, 10),
		ev(1, t0.Add(5*time.Minute), EventClick, 20),
		ev(1, t0.Add(6*time.Minute), EventEnroll, 100),
		{UserID: 1, Time: t0.Add(7 * time.Minute), Type: EventRating, Action: 100, Value: 4},
		ev(1, t0.Add(3*time.Hour), EventClick, 21), // second session
		ev(2, t0, EventEITAnswer, 0),
	}
	for _, e := range feed {
		if err := x.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	fvs := x.Finish()
	u1 := fvs[1]
	if u1.Events != 5 || u1.Sessions != 2 || u1.Enrollments != 1 || u1.Ratings != 1 {
		t.Fatalf("u1 = %+v", u1)
	}
	if u1.Transactions != 1 {
		t.Fatalf("u1 transactions %d", u1.Transactions)
	}
	if u1.MeanRating != 4 {
		t.Fatalf("mean rating %v", u1.MeanRating)
	}
	wantRecency := horizon.Sub(t0.Add(3*time.Hour)).Hours() / 24
	if diff := u1.RecencyDays - wantRecency; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("recency %v want %v", u1.RecencyDays, wantRecency)
	}
	u2 := fvs[2]
	if u2.EITAnswers != 1 || u2.Sessions != 1 {
		t.Fatalf("u2 = %+v", u2)
	}
}

func TestExtractorActionHistogram(t *testing.T) {
	x := NewExtractor(0, t0.Add(time.Hour))
	x.Feed(ev(1, t0, EventClick, 0))
	x.Feed(ev(1, t0.Add(time.Second), EventClick, ActionUniverse-1))
	fv := x.Finish()[1]
	if fv.ActionHistogram[0] != 1 {
		t.Fatalf("bucket 0 = %v", fv.ActionHistogram[0])
	}
	if fv.ActionHistogram[NumActionBuckets-1] != 1 {
		t.Fatalf("last bucket = %v", fv.ActionHistogram[NumActionBuckets-1])
	}
}

func TestActionBucketRange(t *testing.T) {
	f := func(a uint32) bool {
		b := ActionBucket(a % ActionUniverse)
		return b >= 0 && b < NumActionBuckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDenseLayout(t *testing.T) {
	fv := FeatureVector{Events: 3, MeanRating: 4.5}
	d := fv.Dense()
	if len(d) != DenseLen {
		t.Fatalf("dense len %d want %d", len(d), DenseLen)
	}
	names := DenseNames()
	if len(names) != DenseLen {
		t.Fatalf("names len %d", len(names))
	}
	if d[0] != math.Log1p(3) || d[9] != 4.5 {
		t.Fatalf("dense values misplaced: %v", d[:11])
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
	}
}

func BenchmarkAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := NewWriter(dir, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	e := ev(1, t0, EventClick, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Time = t0.Add(time.Duration(i) * time.Millisecond)
		if err := w.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractorFeed(b *testing.B) {
	x := NewExtractor(30*time.Minute, t0.Add(24*time.Hour))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := ev(uint64(i%1000+1), t0.Add(time.Duration(i)*time.Second), EventClick, uint32(i%ActionUniverse))
		if err := x.Feed(e); err != nil {
			b.Fatal(err)
		}
	}
}
