package lifelog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Segmented append-only event log.
//
// The deployment's WebLogs ran ~50 GB/month, far beyond one file; the log
// rolls to a new segment when the active one exceeds SegmentBytes. Record
// framing (little-endian):
//
//	[4] crc32c of payload
//	[2] payload length
//	payload: [8] user  [8] unix-nanos  [1] type  [4] action  [4] value bits  [4] campaign
//
// Fixed-size payloads keep the reader branch-free; 29 bytes/event means the
// paper's monthly volume would span ~1700 segments at the default size.

const (
	recordPayloadLen = 8 + 8 + 1 + 4 + 4 + 4
	recordLen        = 4 + 2 + recordPayloadLen
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Writer appends events to a segmented log directory.
type Writer struct {
	dir          string
	segmentBytes int64
	f            *os.File
	w            *bufio.Writer
	written      int64
	segIndex     int
	count        uint64
}

// NewWriter opens (or creates) a log directory for appending. segmentBytes
// <= 0 selects 8 MiB segments. Existing segments are preserved; new events
// go to a fresh segment.
func NewWriter(dir string, segmentBytes int64) (*Writer, error) {
	if segmentBytes <= 0 {
		segmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lifelog: creating dir: %w", err)
	}
	existing, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, segmentBytes: segmentBytes, segIndex: len(existing)}
	if err := w.roll(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Writer) roll() error {
	if w.f != nil {
		if err := w.w.Flush(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
	}
	path := filepath.Join(w.dir, fmt.Sprintf("events-%06d.log", w.segIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("lifelog: creating segment: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriterSize(f, 128<<10)
	w.written = 0
	w.segIndex++
	return nil
}

// Append writes one event.
func (w *Writer) Append(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	var payload [recordPayloadLen]byte
	binary.LittleEndian.PutUint64(payload[0:8], e.UserID)
	binary.LittleEndian.PutUint64(payload[8:16], uint64(e.Time.UnixNano()))
	payload[16] = byte(e.Type)
	binary.LittleEndian.PutUint32(payload[17:21], e.Action)
	binary.LittleEndian.PutUint32(payload[21:25], floatBits(e.Value))
	binary.LittleEndian.PutUint32(payload[25:29], e.Campaign)

	var header [6]byte
	binary.LittleEndian.PutUint32(header[0:4], crc32.Checksum(payload[:], crcTable))
	binary.LittleEndian.PutUint16(header[4:6], recordPayloadLen)
	if _, err := w.w.Write(header[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload[:]); err != nil {
		return err
	}
	w.written += recordLen
	w.count++
	if w.written >= w.segmentBytes {
		return w.roll()
	}
	return nil
}

// Count returns how many events this writer has appended.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes and closes the active segment.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func fromBits(u uint32) float32 { return math.Float32frombits(u) }

// Reader iterates a segmented log directory in segment order.
type Reader struct {
	paths []string
	seg   int
	r     *bufio.Reader
	f     *os.File
}

// ErrCorrupt is returned when a record fails its checksum.
var ErrCorrupt = errors.New("lifelog: corrupt record")

// NewReader opens the log directory for sequential reading.
func NewReader(dir string) (*Reader, error) {
	paths, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	return &Reader{paths: paths, seg: -1}, nil
}

func segmentFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "events-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Next returns the next event, or io.EOF at end of log.
func (r *Reader) Next() (Event, error) {
	for {
		if r.r == nil {
			r.seg++
			if r.seg >= len(r.paths) {
				return Event{}, io.EOF
			}
			f, err := os.Open(r.paths[r.seg])
			if err != nil {
				return Event{}, err
			}
			r.f = f
			r.r = bufio.NewReaderSize(f, 128<<10)
		}
		var header [6]byte
		if _, err := io.ReadFull(r.r, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				r.f.Close()
				r.r, r.f = nil, nil
				continue
			}
			return Event{}, err
		}
		wantCRC := binary.LittleEndian.Uint32(header[0:4])
		plen := binary.LittleEndian.Uint16(header[4:6])
		if plen != recordPayloadLen {
			return Event{}, fmt.Errorf("%w: bad length %d", ErrCorrupt, plen)
		}
		var payload [recordPayloadLen]byte
		if _, err := io.ReadFull(r.r, payload[:]); err != nil {
			return Event{}, fmt.Errorf("%w: truncated payload", ErrCorrupt)
		}
		if crc32.Checksum(payload[:], crcTable) != wantCRC {
			return Event{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		return Event{
			UserID:   binary.LittleEndian.Uint64(payload[0:8]),
			Time:     time.Unix(0, int64(binary.LittleEndian.Uint64(payload[8:16]))).UTC(),
			Type:     EventType(payload[16]),
			Action:   binary.LittleEndian.Uint32(payload[17:21]),
			Value:    fromBits(binary.LittleEndian.Uint32(payload[21:25])),
			Campaign: binary.LittleEndian.Uint32(payload[25:29]),
		}, nil
	}
}

// Close releases the current segment handle, if any.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f, r.r = nil, nil
		return err
	}
	return nil
}

// ReadAll drains a directory into memory — test and small-experiment
// convenience.
func ReadAll(dir string) ([]Event, error) {
	r, err := NewReader(dir)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []Event
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
