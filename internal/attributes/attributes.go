// Package attributes implements the paper's Attributes Manager Agent: the
// component that is "able to create, extract, select, and fuse attributes in
// order to evaluate similar attributes for multiple domains of interaction",
// and that "automatically detects the level of sensibility of each user for
// each of his/her dominant attributes by automatically assigning weights
// (relevancies)" (§4, component 3).
//
// The registry types every attribute as objective (socio-demographic),
// subjective (behavioural, from WebLogs) or emotional (from the Gradual EIT
// and reward/punish updates) — the three classes of the business case's 75
// attributes (§5.1).
package attributes

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Kind classifies an attribute.
type Kind int

const (
	// Objective attributes come from socio-demographic databases.
	Objective Kind = iota
	// Subjective attributes are behavioural, derived from WebLogs.
	Subjective
	// Emotional attributes come from the Gradual EIT and interaction
	// reinforcement; they are the paper's contribution.
	Emotional
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Objective:
		return "objective"
	case Subjective:
		return "subjective"
	case Emotional:
		return "emotional"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Def declares one attribute.
type Def struct {
	Name   string
	Kind   Kind
	Domain string // interaction domain, e.g. "training", "leisure"
	// Priority orders attributes for the Messaging Agent's case 3.c.i
	// (higher wins). Zero is the default.
	Priority int
}

// Registry is the authoritative set of attribute definitions. Safe for
// concurrent use.
type Registry struct {
	mu     sync.RWMutex
	defs   []Def
	byName map[string]int
}

// ErrUnknown is returned for lookups of unregistered attributes.
var ErrUnknown = errors.New("attributes: unknown attribute")

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Register adds a definition. Duplicate names are rejected.
func (r *Registry) Register(d Def) (int, error) {
	if d.Name == "" {
		return 0, errors.New("attributes: empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[d.Name]; dup {
		return 0, fmt.Errorf("attributes: %q already registered", d.Name)
	}
	id := len(r.defs)
	r.defs = append(r.defs, d)
	r.byName[d.Name] = id
	return id, nil
}

// MustRegister is Register that panics on error; for static setup code.
func (r *Registry) MustRegister(d Def) int {
	id, err := r.Register(d)
	if err != nil {
		panic(err)
	}
	return id
}

// ID resolves a name.
func (r *Registry) ID(name string) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return id, nil
}

// Def returns the definition for an ID.
func (r *Registry) Def(id int) (Def, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id < 0 || id >= len(r.defs) {
		return Def{}, fmt.Errorf("%w: id %d", ErrUnknown, id)
	}
	return r.defs[id], nil
}

// Len returns the number of registered attributes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.defs)
}

// OfKind returns the IDs of all attributes of the given kind, in
// registration order.
func (r *Registry) OfKind(k Kind) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []int
	for i, d := range r.defs {
		if d.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// Names returns all names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.defs))
	for i, d := range r.defs {
		out[i] = d.Name
	}
	return out
}

// Sensibility is a user's weight for one attribute: the automatic relevance
// assignment of the Attributes Manager. Weight lives in [0, 1].
type Sensibility struct {
	AttrID int
	Weight float64
}

// DominantAttributes returns the attributes whose weight exceeds threshold,
// strongest first — the paper's "dominant attributes" feeding the Messaging
// Agent. Ties break by ascending ID for determinism.
func DominantAttributes(weights []float64, threshold float64) []Sensibility {
	var out []Sensibility
	for id, w := range weights {
		if w > threshold {
			out = append(out, Sensibility{AttrID: id, Weight: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].AttrID < out[j].AttrID
	})
	return out
}

// AutoWeigh converts raw attribute evidence into sensibility weights via a
// softmax-tempered normalization: attributes with more concentrated
// evidence get proportionally more weight, and the result always sums to at
// most 1 per attribute (each weight in [0,1]).
//
// raw may contain negative values (aversions); sensibility is about
// magnitude of response, so the absolute value drives the weight while the
// caller keeps the sign separately as valence.
func AutoWeigh(raw []float64, temperature float64) []float64 {
	if temperature <= 0 {
		temperature = 1
	}
	out := make([]float64, len(raw))
	maxAbs := 0.0
	for _, v := range raw {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return out
	}
	for i, v := range raw {
		// Scaled magnitude through a temperature-controlled exponent keeps
		// ordering while letting hot attributes saturate toward 1.
		x := math.Abs(v) / maxAbs
		out[i] = math.Pow(x, 1/temperature)
	}
	return out
}
