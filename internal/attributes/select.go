package attributes

import (
	"errors"
	"math"
	"sort"
)

// Feature selection: the paper uses SVMs "to classify and to predict users'
// behaviors from attributes which have a high impact on their emotional
// responses" (§5.2). Before training, the Attributes Manager ranks candidate
// attributes by how much information they carry about the response label;
// this file implements mutual information over discretized values plus a
// simple correlation ranker, both stdlib-only.

// MutualInformation estimates I(X; Y) in nats between a continuous feature x
// and a binary label y, discretizing x into bins equal-width over its range.
// Returns 0 for degenerate inputs (constant x, single-class y).
func MutualInformation(x []float64, y []bool, bins int) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("attributes: length mismatch")
	}
	if len(x) == 0 {
		return 0, errors.New("attributes: empty input")
	}
	if bins < 2 {
		bins = 8
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return 0, nil
	}
	// joint[b][c] counts bin b with class c.
	joint := make([][2]float64, bins)
	var classTotal [2]float64
	n := float64(len(x))
	for i, v := range x {
		b := int((v - lo) / (hi - lo) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		c := 0
		if y[i] {
			c = 1
		}
		joint[b][c]++
		classTotal[c]++
	}
	if classTotal[0] == 0 || classTotal[1] == 0 {
		return 0, nil
	}
	var mi float64
	for b := 0; b < bins; b++ {
		binTotal := joint[b][0] + joint[b][1]
		if binTotal == 0 {
			continue
		}
		for c := 0; c < 2; c++ {
			if joint[b][c] == 0 {
				continue
			}
			pxy := joint[b][c] / n
			px := binTotal / n
			py := classTotal[c] / n
			mi += pxy * math.Log(pxy/(px*py))
		}
	}
	if mi < 0 {
		mi = 0 // float noise
	}
	return mi, nil
}

// PointBiserial computes the point-biserial correlation between a continuous
// feature and a binary label — the cheap linear complement to MI.
func PointBiserial(x []float64, y []bool) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("attributes: length mismatch")
	}
	if len(x) < 2 {
		return 0, errors.New("attributes: too few samples")
	}
	var sum1, sum0 float64
	var n1, n0 float64
	for i, v := range x {
		if y[i] {
			sum1 += v
			n1++
		} else {
			sum0 += v
			n0++
		}
	}
	if n1 == 0 || n0 == 0 {
		return 0, nil
	}
	mean1, mean0 := sum1/n1, sum0/n0
	n := float64(len(x))
	var mean, ss float64
	for _, v := range x {
		mean += v
	}
	mean /= n
	for _, v := range x {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / n)
	if std == 0 {
		return 0, nil
	}
	return (mean1 - mean0) / std * math.Sqrt(n1*n0/(n*n)), nil
}

// Ranked is one feature's selection score.
type Ranked struct {
	Index int
	Score float64
}

// SelectTopK ranks columns of the design matrix by mutual information with
// the label and returns the k best (all, ranked, when k <= 0 or k exceeds
// the column count). rows are samples; columns features.
func SelectTopK(features [][]float64, y []bool, k, bins int) ([]Ranked, error) {
	if len(features) == 0 {
		return nil, errors.New("attributes: empty design matrix")
	}
	if len(features) != len(y) {
		return nil, errors.New("attributes: label length mismatch")
	}
	cols := len(features[0])
	col := make([]float64, len(features))
	ranked := make([]Ranked, 0, cols)
	for c := 0; c < cols; c++ {
		for r := range features {
			if len(features[r]) != cols {
				return nil, errors.New("attributes: ragged design matrix")
			}
			col[r] = features[r][c]
		}
		mi, err := MutualInformation(col, y, bins)
		if err != nil {
			return nil, err
		}
		ranked = append(ranked, Ranked{Index: c, Score: mi})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Index < ranked[j].Index
	})
	if k > 0 && k < len(ranked) {
		ranked = ranked[:k]
	}
	return ranked, nil
}

// Fuse merges attribute weight vectors observed in different interaction
// domains into one cross-domain vector — the Attributes Manager's "fuse
// attributes ... for multiple domains of interaction". Each domain
// contributes proportionally to its evidence count; missing attributes
// contribute nothing.
func Fuse(domains []WeightedDomain) []float64 {
	size := 0
	for _, d := range domains {
		if len(d.Weights) > size {
			size = len(d.Weights)
		}
	}
	out := make([]float64, size)
	totals := make([]float64, size)
	for _, d := range domains {
		if d.Evidence <= 0 {
			continue
		}
		w := float64(d.Evidence)
		for i, v := range d.Weights {
			out[i] += v * w
			totals[i] += w
		}
	}
	for i := range out {
		if totals[i] > 0 {
			out[i] /= totals[i]
		}
	}
	return out
}

// WeightedDomain is one domain's attribute weights plus its evidence mass.
type WeightedDomain struct {
	Domain   string
	Weights  []float64
	Evidence int
}
