package attributes

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	id, err := r.Register(Def{Name: "age", Kind: Objective})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first id %d", id)
	}
	id2, _ := r.Register(Def{Name: "enthusiastic", Kind: Emotional, Priority: 3})
	if id2 != 1 {
		t.Fatalf("second id %d", id2)
	}
	got, err := r.ID("enthusiastic")
	if err != nil || got != 1 {
		t.Fatalf("ID lookup: %d %v", got, err)
	}
	d, err := r.Def(1)
	if err != nil || d.Priority != 3 || d.Kind != Emotional {
		t.Fatalf("Def: %+v %v", d, err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len %d", r.Len())
	}
}

func TestRegistryRejectsDuplicatesAndEmpty(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Def{Name: "x"})
	if _, err := r.Register(Def{Name: "x"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := r.Register(Def{Name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestRegistryUnknownLookups(t *testing.T) {
	r := NewRegistry()
	if _, err := r.ID("ghost"); err == nil {
		t.Fatal("unknown name resolved")
	}
	if _, err := r.Def(5); err == nil {
		t.Fatal("unknown id resolved")
	}
}

func TestOfKind(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Def{Name: "a", Kind: Objective})
	r.MustRegister(Def{Name: "b", Kind: Emotional})
	r.MustRegister(Def{Name: "c", Kind: Emotional})
	r.MustRegister(Def{Name: "d", Kind: Subjective})
	em := r.OfKind(Emotional)
	if len(em) != 2 || em[0] != 1 || em[1] != 2 {
		t.Fatalf("OfKind emotional: %v", em)
	}
	if len(r.OfKind(Objective)) != 1 || len(r.OfKind(Subjective)) != 1 {
		t.Fatal("kind partition wrong")
	}
}

func TestKindString(t *testing.T) {
	if Objective.String() != "objective" || Subjective.String() != "subjective" || Emotional.String() != "emotional" {
		t.Fatal("kind strings")
	}
}

func TestDominantAttributes(t *testing.T) {
	weights := []float64{0.2, 0.9, 0.5, 0.9, 0.1}
	dom := DominantAttributes(weights, 0.4)
	if len(dom) != 3 {
		t.Fatalf("dominant count %d", len(dom))
	}
	// Ties (0.9) break by lower ID first.
	if dom[0].AttrID != 1 || dom[1].AttrID != 3 || dom[2].AttrID != 2 {
		t.Fatalf("dominant order %+v", dom)
	}
}

func TestDominantAttributesEmptyWhenBelowThreshold(t *testing.T) {
	if got := DominantAttributes([]float64{0.1, 0.2}, 0.5); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestAutoWeigh(t *testing.T) {
	raw := []float64{0, 0.5, -1.0} // aversion magnitude counts
	w := AutoWeigh(raw, 1)
	if w[0] != 0 {
		t.Fatalf("zero raw weight %v", w[0])
	}
	if w[2] != 1 {
		t.Fatalf("max magnitude weight %v, want 1", w[2])
	}
	if !(w[1] > 0 && w[1] < w[2]) {
		t.Fatalf("ordering broken: %v", w)
	}
}

func TestAutoWeighAllZero(t *testing.T) {
	w := AutoWeigh([]float64{0, 0}, 1)
	if w[0] != 0 || w[1] != 0 {
		t.Fatalf("all-zero weights %v", w)
	}
}

func TestAutoWeighRangeProperty(t *testing.T) {
	f := func(raw []float64, temp float64) bool {
		tp := math.Abs(math.Mod(temp, 5))
		w := AutoWeigh(raw, tp)
		if len(w) != len(raw) {
			return false
		}
		for _, v := range w {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMutualInformationDiscriminates(t *testing.T) {
	// Feature A perfectly separates the classes; feature B is noise.
	r := rng.New(1)
	n := 2000
	xa := make([]float64, n)
	xb := make([]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		y[i] = i%2 == 0
		if y[i] {
			xa[i] = 1 + 0.1*r.NormFloat64()
		} else {
			xa[i] = -1 + 0.1*r.NormFloat64()
		}
		xb[i] = r.NormFloat64()
	}
	miA, err := MutualInformation(xa, y, 10)
	if err != nil {
		t.Fatal(err)
	}
	miB, err := MutualInformation(xb, y, 10)
	if err != nil {
		t.Fatal(err)
	}
	if miA < 0.5 {
		t.Fatalf("separating feature MI %v too low", miA)
	}
	if miB > 0.05 {
		t.Fatalf("noise feature MI %v too high", miB)
	}
	if miA <= miB {
		t.Fatal("MI failed to rank separating feature above noise")
	}
}

func TestMutualInformationDegenerate(t *testing.T) {
	mi, err := MutualInformation([]float64{1, 1, 1}, []bool{true, false, true}, 4)
	if err != nil || mi != 0 {
		t.Fatalf("constant feature: %v %v", mi, err)
	}
	mi, err = MutualInformation([]float64{1, 2, 3}, []bool{true, true, true}, 4)
	if err != nil || mi != 0 {
		t.Fatalf("single class: %v %v", mi, err)
	}
	if _, err := MutualInformation([]float64{1}, []bool{true, false}, 4); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MutualInformation(nil, nil, 4); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMutualInformationNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 200
		x := make([]float64, n)
		y := make([]bool, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.Bool(0.5)
		}
		mi, err := MutualInformation(x, y, 8)
		return err == nil && mi >= 0 && !math.IsNaN(mi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPointBiserial(t *testing.T) {
	x := []float64{1, 2, 3, 10, 11, 12}
	y := []bool{false, false, false, true, true, true}
	r, err := PointBiserial(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Fatalf("strong separation gives r=%v", r)
	}
	// Inverted labels flip the sign.
	yInv := []bool{true, true, true, false, false, false}
	r2, _ := PointBiserial(x, yInv)
	if r2 > -0.9 {
		t.Fatalf("inverted r=%v", r2)
	}
}

func TestPointBiserialDegenerate(t *testing.T) {
	if r, _ := PointBiserial([]float64{5, 5, 5}, []bool{true, false, true}); r != 0 {
		t.Fatalf("constant x r=%v", r)
	}
	if r, _ := PointBiserial([]float64{1, 2, 3}, []bool{true, true, true}); r != 0 {
		t.Fatalf("single class r=%v", r)
	}
	if _, err := PointBiserial([]float64{1}, []bool{true}); err == nil {
		t.Fatal("too-few accepted")
	}
}

func TestSelectTopK(t *testing.T) {
	r := rng.New(2)
	n := 1000
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		y[i] = i%2 == 0
		sig := -1.0
		if y[i] {
			sig = 1.0
		}
		X[i] = []float64{
			r.NormFloat64(),           // noise
			sig + 0.2*r.NormFloat64(), // strong
			r.NormFloat64(),           // noise
			sig*0.4 + r.NormFloat64(), // weak
		}
	}
	top, err := SelectTopK(X, y, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top len %d", len(top))
	}
	if top[0].Index != 1 {
		t.Fatalf("best feature %d, want 1 (scores %+v)", top[0].Index, top)
	}
	if top[1].Index != 3 {
		t.Fatalf("second feature %d, want 3", top[1].Index)
	}
}

func TestSelectTopKErrors(t *testing.T) {
	if _, err := SelectTopK(nil, nil, 1, 4); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := SelectTopK([][]float64{{1}}, []bool{true, false}, 1, 4); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := SelectTopK([][]float64{{1, 2}, {1}}, []bool{true, false}, 1, 4); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestFuse(t *testing.T) {
	domains := []WeightedDomain{
		{Domain: "training", Weights: []float64{0.8, 0.2}, Evidence: 30},
		{Domain: "leisure", Weights: []float64{0.2, 0.6}, Evidence: 10},
	}
	fused := Fuse(domains)
	if len(fused) != 2 {
		t.Fatalf("fused len %d", len(fused))
	}
	want0 := (0.8*30 + 0.2*10) / 40
	if math.Abs(fused[0]-want0) > 1e-12 {
		t.Fatalf("fused[0]=%v want %v", fused[0], want0)
	}
}

func TestFuseIgnoresZeroEvidence(t *testing.T) {
	fused := Fuse([]WeightedDomain{
		{Weights: []float64{0.5}, Evidence: 10},
		{Weights: []float64{99}, Evidence: 0},
	})
	if fused[0] != 0.5 {
		t.Fatalf("zero-evidence domain leaked: %v", fused[0])
	}
}

func TestFuseRaggedDomains(t *testing.T) {
	fused := Fuse([]WeightedDomain{
		{Weights: []float64{1, 1}, Evidence: 1},
		{Weights: []float64{1, 1, 1}, Evidence: 1},
	})
	if len(fused) != 3 {
		t.Fatalf("fused len %d, want max domain size 3", len(fused))
	}
	if fused[2] != 1 {
		t.Fatalf("lone-domain attribute fused to %v", fused[2])
	}
}

func BenchmarkMutualInformation(b *testing.B) {
	r := rng.New(1)
	n := 10000
	x := make([]float64, n)
	y := make([]bool, n)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = r.Bool(0.3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MutualInformation(x, y, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoWeigh(b *testing.B) {
	raw := make([]float64, 75)
	for i := range raw {
		raw[i] = float64(i%10) / 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AutoWeigh(raw, 1.5)
	}
}
