// Package clock provides the simulated time source used by campaign
// timelines, LifeLog event streams and reward/punish decay. The paper's
// deployment spans months of push and newsletter campaigns; the reproduction
// compresses that timeline into a deterministic virtual clock so experiments
// are repeatable and independent of wall time.
package clock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the minimal time source the rest of the system depends on.
// Production code would use Wall; every experiment uses Simulated.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// Wall is the real-time clock.
type Wall struct{}

// Now implements Clock using the operating system clock.
func (Wall) Now() time.Time { return time.Now() }

// Simulated is a manually advanced clock. It is safe for concurrent use:
// agents read it while the campaign driver advances it.
type Simulated struct {
	mu  sync.RWMutex
	now time.Time
}

// Epoch is the default start of simulated timelines: the paper's data cutoff
// (profiles of 3,162,069 users "till 14th March of 2006").
var Epoch = time.Date(2006, time.March, 14, 0, 0, 0, 0, time.UTC)

// NewSimulated returns a simulated clock starting at the given instant. A
// zero time starts at Epoch.
func NewSimulated(start time.Time) *Simulated {
	if start.IsZero() {
		start = Epoch
	}
	return &Simulated{now: start}
}

// Now returns the current simulated instant.
func (s *Simulated) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the clock forward by d. Negative durations are rejected:
// simulated time is monotone, and the decay math in internal/sum depends on
// that.
func (s *Simulated) Advance(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("clock: cannot advance by negative duration %v", d)
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
	return nil
}

// Set jumps to an absolute instant, which must not be before the current
// simulated time.
func (s *Simulated) Set(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Before(s.now) {
		return fmt.Errorf("clock: cannot move backwards from %v to %v", s.now, t)
	}
	s.now = t
	return nil
}
