package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSimulatedStartsAtEpochByDefault(t *testing.T) {
	c := NewSimulated(time.Time{})
	if !c.Now().Equal(Epoch) {
		t.Fatalf("default start %v, want %v", c.Now(), Epoch)
	}
}

func TestSimulatedAdvance(t *testing.T) {
	c := NewSimulated(Epoch)
	if err := c.Advance(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	want := Epoch.Add(48 * time.Hour)
	if !c.Now().Equal(want) {
		t.Fatalf("after advance: %v, want %v", c.Now(), want)
	}
}

func TestSimulatedRejectsNegativeAdvance(t *testing.T) {
	c := NewSimulated(Epoch)
	if err := c.Advance(-time.Second); err == nil {
		t.Fatal("negative advance accepted")
	}
	if !c.Now().Equal(Epoch) {
		t.Fatal("failed advance moved the clock")
	}
}

func TestSimulatedSetMonotone(t *testing.T) {
	c := NewSimulated(Epoch)
	later := Epoch.Add(time.Hour)
	if err := c.Set(later); err != nil {
		t.Fatal(err)
	}
	if err := c.Set(Epoch); err == nil {
		t.Fatal("backwards Set accepted")
	}
	if !c.Now().Equal(later) {
		t.Fatal("failed Set moved the clock")
	}
}

func TestSimulatedConcurrentAccess(t *testing.T) {
	c := NewSimulated(Epoch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = c.Now()
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		if err := c.Advance(time.Millisecond); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	want := Epoch.Add(1000 * time.Millisecond)
	if !c.Now().Equal(want) {
		t.Fatalf("clock drifted under concurrency: %v, want %v", c.Now(), want)
	}
}

func TestWallClockMovesForward(t *testing.T) {
	w := Wall{}
	a := w.Now()
	b := w.Now()
	if b.Before(a) {
		t.Fatal("wall clock went backwards")
	}
}
