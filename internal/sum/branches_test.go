package sum

import (
	"testing"
	"time"

	"repro/internal/emotion"
)

func TestBranchScoresEmptyProfile(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	scores := m.BranchScores(p)
	for i, b := range scores {
		if b.Branch != emotion.Branches()[i] {
			t.Fatalf("branch order: %v", b.Branch)
		}
		if b.Score != 0 || b.Evidence != 0 || b.Coverage != 0 {
			t.Fatalf("fresh profile branch %v: %+v", b.Branch, b)
		}
	}
	if m.TotalEIScore(p) != 0 {
		t.Fatal("fresh total EI nonzero")
	}
}

func TestBranchScoresGrowWithEvidence(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	now := t0
	// Answer the whole bank positively.
	for {
		item, err := m.NextItem(p)
		if err != nil {
			break
		}
		now = now.Add(time.Hour)
		if err := m.ApplyEITAnswer(p, emotion.Answer{ItemID: item.ID, Option: 0}, now); err != nil {
			t.Fatal(err)
		}
	}
	scores := m.BranchScores(p)
	for _, b := range scores {
		if b.Score <= 0 || b.Score > 100 {
			t.Fatalf("branch %v score %v", b.Branch, b.Score)
		}
		if b.Evidence == 0 {
			t.Fatalf("branch %v no evidence after full bank", b.Branch)
		}
	}
	total := m.TotalEIScore(p)
	if total <= 0 || total > 100 {
		t.Fatalf("total EI %v", total)
	}
}

func TestBranchScoresLocalized(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	// Reward only a Managing-branch attribute (motivated).
	for i := 0; i < 6; i++ {
		m.Reward(p, []emotion.Attribute{emotion.Motivated}, t0.Add(time.Duration(i)*time.Hour))
	}
	scores := m.BranchScores(p)
	if scores[emotion.BranchManaging].Score <= 0 {
		t.Fatal("managing branch not scored")
	}
	if scores[emotion.BranchPerceiving].Score != 0 {
		t.Fatalf("perceiving branch leaked: %v", scores[emotion.BranchPerceiving].Score)
	}
	if scores[emotion.BranchManaging].Coverage <= 0 || scores[emotion.BranchManaging].Coverage > 1 {
		t.Fatalf("coverage %v", scores[emotion.BranchManaging].Coverage)
	}
}
