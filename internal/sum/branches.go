package sum

import (
	"math"

	"repro/internal/emotion"
)

// Branch-level Emotional Intelligence scoring. The paper (§3) notes that
// "Emotional Intelligence can be measured, ranging from feelings of boredom
// to feelings of happiness and euphoria, from hostility to fondness" — the
// MSCEIT instrument reports one score per Four-Branch ability. The SUM
// equivalent aggregates each branch's attribute states into a 0–100 score:
// how much *resolved* emotional signal the model holds for that ability,
// where resolution means activation backed by evidence and a decisive
// valence.

// BranchScore is one branch's aggregate.
type BranchScore struct {
	Branch emotion.Branch
	// Score in [0, 100]: 0 = nothing known, 100 = fully resolved states on
	// every attribute of the branch.
	Score float64
	// Evidence is the total observation count across the branch.
	Evidence int
	// Coverage is the fraction of the branch's attributes with any
	// evidence.
	Coverage float64
}

// BranchScores computes the four MSCEIT-style branch aggregates for a
// profile.
func (m *Model) BranchScores(p *Profile) [4]BranchScore {
	var out [4]BranchScore
	counts := [4]int{}
	for _, br := range emotion.Branches() {
		out[br].Branch = br
	}
	for _, s := range p.Emotional {
		br := s.Attribute.Branch()
		counts[br]++
		out[br].Evidence += s.Evidence
		if s.Evidence > 0 {
			out[br].Coverage++
		}
		// Resolution of one attribute: activation × confidence × |valence|.
		out[br].Score += s.Activation * s.Confidence() * math.Abs(float64(s.Valence))
	}
	for _, br := range emotion.Branches() {
		if counts[br] > 0 {
			out[br].Score = 100 * out[br].Score / float64(counts[br])
			out[br].Coverage /= float64(counts[br])
		}
	}
	return out
}

// TotalEIScore is the mean of the four branch scores — the single-number
// summary MSCEIT calls the total EI score.
func (m *Model) TotalEIScore(p *Profile) float64 {
	scores := m.BranchScores(p)
	var sum float64
	for _, b := range scores {
		sum += b.Score
	}
	return sum / 4
}
