// Package sum implements the Smart User Model (SUM) of González et al.: the
// per-user model that acquires, maintains and updates objective, subjective
// and emotional information "through an incremental learning process in
// everyday life" (§2). The three-stage methodology of §3 maps directly onto
// the API:
//
//   - Initialization stage → ApplyEITAnswer (Gradual EIT impacts),
//   - Advice stage         → Advise (activation/inhibition of excitatory
//     attributes for a domain),
//   - Update stage         → Reward / Punish (reinforcement from recent
//     interactions) plus Decay (forgetting).
package sum

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/attributes"
	"repro/internal/emotion"
)

// Profile is one user's Smart User Model.
type Profile struct {
	UserID uint64

	// Objective socio-demographic attributes, dense (registry order for
	// attributes of kind Objective).
	Objective []float64

	// Subjective behavioural attributes (LifeLog feature digest).
	Subjective []float64

	// Emotional holds the activation state of the ten deployed emotional
	// attributes, indexed by emotion.Attribute.
	Emotional [emotion.NumAttributes]emotion.State

	// AnsweredItems counts Gradual EIT answers, driving item scheduling.
	AnsweredItems int

	// UpdatedAt is the instant of the last state change, used for decay.
	UpdatedAt time.Time
}

// NewProfile creates an empty SUM for a user. All emotional attributes start
// dormant (activation 0) with their base valence — the prior before any EIT
// evidence arrives.
func NewProfile(userID uint64, now time.Time) *Profile {
	p := &Profile{UserID: userID, UpdatedAt: now}
	for i := range p.Emotional {
		a := emotion.Attribute(i)
		p.Emotional[i] = emotion.State{
			Attribute: a,
			Valence:   a.BaseValence(),
		}
	}
	return p
}

// Params tune the SUM learning dynamics. Defaults follow the reproduction's
// calibration (see DESIGN.md A3 for the ablation).
type Params struct {
	// EITAlpha is the learning rate applied to EIT answer impacts.
	EITAlpha float64
	// RewardAlpha is the learning rate of reward/punish reinforcement.
	RewardAlpha float64
	// ActivationStep is how much one observation raises activation.
	ActivationStep float64
	// HalfLifeDays is the activation decay half-life; emotional evidence
	// goes stale when the user stops interacting.
	HalfLifeDays float64
	// SensibilityTemperature feeds attributes.AutoWeigh.
	SensibilityTemperature float64
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		EITAlpha:               0.20,
		RewardAlpha:            0.25,
		ActivationStep:         0.30,
		HalfLifeDays:           240,
		SensibilityTemperature: 1.4,
	}
}

func (p Params) validate() error {
	if p.EITAlpha <= 0 || p.EITAlpha > 1 {
		return fmt.Errorf("sum: EITAlpha %v out of (0,1]", p.EITAlpha)
	}
	if p.RewardAlpha <= 0 || p.RewardAlpha > 1 {
		return fmt.Errorf("sum: RewardAlpha %v out of (0,1]", p.RewardAlpha)
	}
	if p.ActivationStep <= 0 || p.ActivationStep > 1 {
		return fmt.Errorf("sum: ActivationStep %v out of (0,1]", p.ActivationStep)
	}
	if p.HalfLifeDays <= 0 {
		return fmt.Errorf("sum: HalfLifeDays %v must be positive", p.HalfLifeDays)
	}
	return nil
}

// Model wraps learning parameters; it is stateless across profiles so one
// Model serves millions of users.
type Model struct {
	params Params
	bank   *emotion.Bank
}

// NewModel builds a Model with the given parameters and EIT bank (nil bank
// selects the default).
func NewModel(params Params, bank *emotion.Bank) (*Model, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if bank == nil {
		bank = emotion.NewBank()
	}
	return &Model{params: params, bank: bank}, nil
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.params }

// Bank exposes the EIT item bank (for campaign touch generation).
func (m *Model) Bank() *emotion.Bank { return m.bank }

// NextItem returns the next Gradual EIT item for the profile, or
// emotion.ErrExhausted when the user has answered the whole bank.
func (m *Model) NextItem(p *Profile) (emotion.Item, error) {
	return m.bank.Next(p.AnsweredItems)
}

// ApplyEITAnswer runs the initialization-stage update. The answer carries
// evidence about every attribute the item *offered*, not only the chosen
// option's: choosing "eager to dive in" activates enthusiasm, while
// declining it when offered is (weaker) evidence against. Activation is an
// exponential moving average of the chosen-option impact magnitude, so it
// converges to the user's choice rate for the attribute instead of
// saturating with exposure count — exposure-count saturation was measured
// to destroy most of the EIT's ranking signal (see the A3 ablation in cmd/spabench).
func (m *Model) ApplyEITAnswer(p *Profile, ans emotion.Answer, now time.Time) error {
	impacts, err := m.bank.Score(ans)
	if err != nil {
		return err
	}
	item, err := m.bank.Item(ans.ItemID)
	if err != nil {
		return err
	}
	m.decay(p, now)
	// Attributes offered anywhere in this item.
	offered := make(map[emotion.Attribute]bool)
	for oi := range item.Options {
		opt, err := m.bank.Score(emotion.Answer{ItemID: ans.ItemID, Option: oi})
		if err != nil {
			return err
		}
		for attr := range opt {
			offered[attr] = true
		}
	}
	alpha := m.params.EITAlpha
	for attr := range offered {
		s := &p.Emotional[attr]
		if v, chosen := impacts[attr]; chosen {
			s.Valence = s.Valence.Blend(v, alpha)
			target := math.Abs(float64(v))
			s.Activation = clamp01(s.Activation + alpha*(target-s.Activation))
			s.Evidence++
		} else {
			// Offered but declined: soft inhibition toward zero.
			s.Activation = clamp01(s.Activation * (1 - alpha/2))
			s.Evidence++
		}
	}
	p.AnsweredItems++
	p.UpdatedAt = now
	return nil
}

// Reward runs the update-stage positive reinforcement: the user acted on a
// recommendation associated with the given attributes, so their activations
// and valences strengthen.
func (m *Model) Reward(p *Profile, attrs []emotion.Attribute, now time.Time) {
	m.decay(p, now)
	for _, a := range attrs {
		if int(a) < 0 || int(a) >= emotion.NumAttributes {
			continue
		}
		s := &p.Emotional[a]
		target := emotion.Valence(1)
		if s.Valence < 0 {
			// Aversion confirmed by action? No: acting on a recommendation
			// is approach evidence; pull valence toward positive.
			target = 0.5
		}
		s.Valence = s.Valence.Blend(target, m.params.RewardAlpha)
		s.Activation = clamp01(s.Activation + m.params.ActivationStep)
		s.Evidence++
	}
	p.UpdatedAt = now
}

// Punish runs the update-stage negative reinforcement: the user ignored or
// rejected a recommendation built on the given attributes.
func (m *Model) Punish(p *Profile, attrs []emotion.Attribute, now time.Time) {
	m.decay(p, now)
	for _, a := range attrs {
		if int(a) < 0 || int(a) >= emotion.NumAttributes {
			continue
		}
		s := &p.Emotional[a]
		s.Valence = s.Valence.Blend(emotion.Valence(-0.3), m.params.RewardAlpha/2)
		s.Activation = clamp01(s.Activation - m.params.ActivationStep/2)
		s.Evidence++
	}
	p.UpdatedAt = now
}

// decay applies exponential forgetting to activations based on elapsed time.
func (m *Model) decay(p *Profile, now time.Time) {
	dt := now.Sub(p.UpdatedAt)
	if dt <= 0 {
		return
	}
	days := dt.Hours() / 24
	factor := math.Exp2(-days / m.params.HalfLifeDays)
	for i := range p.Emotional {
		p.Emotional[i].Activation *= factor
	}
}

// Decay exposes decay for callers advancing time without another update.
func (m *Model) Decay(p *Profile, now time.Time) {
	m.decay(p, now)
	p.UpdatedAt = now
}

// Sensibilities computes the user's per-attribute sensibility weights in
// [0,1]: activation magnitude tempered by evidence confidence and valence
// strength. The scale is absolute — a user with no strong emotional
// evidence has uniformly low weights and falls through to the standard
// message — because the Messaging Agent's threshold (§5.3 step 3) is only
// meaningful against an absolute scale. attributes.AutoWeigh provides the
// complementary per-user relative view for reporting dominant attributes.
func (m *Model) Sensibilities(p *Profile) []float64 {
	raw := make([]float64, emotion.NumAttributes)
	for i, s := range p.Emotional {
		raw[i] = clamp01(s.Activation * s.Confidence() * math.Abs(float64(s.Valence)))
	}
	return raw
}

// RelativeSensibilities is the AutoWeigh-normalized (per-user relative)
// view used when reporting a user's dominant attributes.
func (m *Model) RelativeSensibilities(p *Profile) []float64 {
	return attributes.AutoWeigh(m.Sensibilities(p), m.params.SensibilityTemperature)
}

// Advice is the advice-stage output for one domain: per-attribute excitation
// in [-1, 1]. Positive values mean the recommender should *activate*
// content/messaging resonating with the attribute; negative values mean
// *inhibit* it (aversion).
type Advice struct {
	Domain     string
	Excitation [emotion.NumAttributes]float64
}

// Advise produces the activation/inhibition vector of §3 stage 2: the signed
// product of sensibility and valence polarity. Attributes with negative
// valence and high sensibility yield strong inhibition.
func (m *Model) Advise(p *Profile, domain string) Advice {
	sens := m.Sensibilities(p)
	var adv Advice
	adv.Domain = domain
	for i, s := range p.Emotional {
		adv.Excitation[i] = sens[i] * float64(s.Valence.Polarity())
	}
	return adv
}

// EmotionalFeatures flattens the emotional state into the dense feature
// block the learners consume: for each attribute, activation × valence
// (signed sensibility) followed by confidence. Length 2×NumAttributes.
func (p *Profile) EmotionalFeatures() []float64 {
	out := make([]float64, 0, 2*emotion.NumAttributes)
	for _, s := range p.Emotional {
		out = append(out, s.Activation*float64(s.Valence))
	}
	for _, s := range p.Emotional {
		out = append(out, s.Confidence())
	}
	return out
}

// EmotionalFeatureLen is the length of EmotionalFeatures' output.
const EmotionalFeatureLen = 2 * emotion.NumAttributes

// FeatureVector concatenates the requested blocks into one dense learner
// input. Objective and subjective blocks are used as-is; the emotional
// block comes from EmotionalFeatures.
func (p *Profile) FeatureVector(includeObjective, includeSubjective, includeEmotional bool) []float64 {
	var out []float64
	if includeObjective {
		out = append(out, p.Objective...)
	}
	if includeSubjective {
		out = append(out, p.Subjective...)
	}
	if includeEmotional {
		out = append(out, p.EmotionalFeatures()...)
	}
	return out
}

// Validate checks structural invariants after deserialization.
func (p *Profile) Validate() error {
	if p.UserID == 0 {
		return errors.New("sum: zero user id")
	}
	for i, s := range p.Emotional {
		if s.Attribute != emotion.Attribute(i) {
			return fmt.Errorf("sum: emotional slot %d holds %v", i, s.Attribute)
		}
		if s.Activation < 0 || s.Activation > 1 {
			return fmt.Errorf("sum: activation %v out of range", s.Activation)
		}
		if s.Valence < -1 || s.Valence > 1 {
			return fmt.Errorf("sum: valence %v out of range", s.Valence)
		}
		if s.Evidence < 0 {
			return fmt.Errorf("sum: negative evidence %d", s.Evidence)
		}
	}
	if p.AnsweredItems < 0 {
		return errors.New("sum: negative answered count")
	}
	return nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
