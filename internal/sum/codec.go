package sum

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/emotion"
	"repro/internal/store"
)

// Binary profile codec for the embedded store. Format (little-endian):
//
//	[8]  magic "SPASUM01"
//	[8]  user id
//	[8]  updatedAt unix-nanos
//	[4]  answered items
//	per emotional attribute (NumAttributes):
//	  [8] activation  [8] valence  [4] evidence
//	[4]  len(objective)   then float64s
//	[4]  len(subjective)  then float64s
//
// Versioned magic lets a future format change coexist with old data.

const profileMagic = "SPASUM01"

// ErrBadProfile is returned when decoding fails.
var ErrBadProfile = errors.New("sum: malformed profile record")

// Encode serializes the profile.
func Encode(p *Profile) []byte {
	size := 8 + 8 + 8 + 4 + emotion.NumAttributes*20 + 4 + len(p.Objective)*8 + 4 + len(p.Subjective)*8
	buf := make([]byte, 0, size)
	buf = append(buf, profileMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, p.UserID)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.UpdatedAt.UnixNano()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.AnsweredItems))
	for _, s := range p.Emotional {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Activation))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(s.Valence)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Evidence))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Objective)))
	for _, v := range p.Objective {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Subjective)))
	for _, v := range p.Subjective {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// Decode parses a profile record.
func Decode(raw []byte) (*Profile, error) {
	r := reader{buf: raw}
	magic := r.bytes(8)
	if magic == nil || string(magic) != profileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadProfile)
	}
	p := &Profile{}
	p.UserID = r.u64()
	p.UpdatedAt = time.Unix(0, int64(r.u64())).UTC()
	p.AnsweredItems = int(r.u32())
	for i := range p.Emotional {
		p.Emotional[i].Attribute = emotion.Attribute(i)
		p.Emotional[i].Activation = math.Float64frombits(r.u64())
		p.Emotional[i].Valence = emotion.Valence(math.Float64frombits(r.u64()))
		p.Emotional[i].Evidence = int(r.u32())
	}
	nObj := int(r.u32())
	if r.failed || nObj < 0 || nObj > 1<<20 {
		return nil, fmt.Errorf("%w: objective length", ErrBadProfile)
	}
	p.Objective = make([]float64, nObj)
	for i := range p.Objective {
		p.Objective[i] = math.Float64frombits(r.u64())
	}
	nSub := int(r.u32())
	if r.failed || nSub < 0 || nSub > 1<<20 {
		return nil, fmt.Errorf("%w: subjective length", ErrBadProfile)
	}
	p.Subjective = make([]float64, nSub)
	for i := range p.Subjective {
		p.Subjective[i] = math.Float64frombits(r.u64())
	}
	if r.failed {
		return nil, fmt.Errorf("%w: truncated", ErrBadProfile)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	return p, nil
}

type reader struct {
	buf    []byte
	failed bool
}

func (r *reader) bytes(n int) []byte {
	if r.failed || len(r.buf) < n {
		r.failed = true
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Key returns the store key for a user's profile.
func Key(userID uint64) []byte {
	key := make([]byte, 0, 12)
	key = append(key, "sum/"...)
	key = binary.BigEndian.AppendUint64(key, userID) // big-endian: ordered scans by user id
	return key
}

// Save persists the profile to the store.
func Save(db *store.DB, p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return db.Put(Key(p.UserID), Encode(p))
}

// Load reads a profile from the store; store.ErrNotFound passes through.
func Load(db *store.DB, userID uint64) (*Profile, error) {
	raw, err := db.Get(Key(userID))
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}

// ForEach scans all stored profiles in user-id order.
func ForEach(db *store.DB, fn func(*Profile) bool) error {
	prefix := []byte("sum/")
	end := []byte("sum0") // '0' = '/'+1
	var decodeErr error
	err := db.Scan(prefix, end, func(_, v []byte) bool {
		p, err := Decode(v)
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(p)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}
