package sum

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/emotion"
	"repro/internal/store"
)

var t0 = time.Date(2006, 3, 14, 0, 0, 0, 0, time.UTC)

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewProfileDormant(t *testing.T) {
	p := NewProfile(7, t0)
	if p.UserID != 7 {
		t.Fatalf("user id %d", p.UserID)
	}
	for i, s := range p.Emotional {
		if s.Activation != 0 {
			t.Fatalf("attribute %d starts active", i)
		}
		if s.Valence != emotion.Attribute(i).BaseValence() {
			t.Fatalf("attribute %d valence %v", i, s.Valence)
		}
		if s.Evidence != 0 {
			t.Fatalf("attribute %d has evidence", i)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{EITAlpha: 0, RewardAlpha: 0.1, ActivationStep: 0.1, HalfLifeDays: 1},
		{EITAlpha: 0.1, RewardAlpha: 2, ActivationStep: 0.1, HalfLifeDays: 1},
		{EITAlpha: 0.1, RewardAlpha: 0.1, ActivationStep: 0, HalfLifeDays: 1},
		{EITAlpha: 0.1, RewardAlpha: 0.1, ActivationStep: 0.1, HalfLifeDays: 0},
	}
	for i, p := range bad {
		if _, err := NewModel(p, nil); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
	if _, err := NewModel(DefaultParams(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestGradualEITActivation(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)

	item, err := m.NextItem(p)
	if err != nil {
		t.Fatal(err)
	}
	if item.ID != 0 {
		t.Fatalf("first item %d", item.ID)
	}
	// Answer positively (option 0 boosts an approach attribute).
	if err := m.ApplyEITAnswer(p, emotion.Answer{ItemID: item.ID, Option: 0}, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if p.AnsweredItems != 1 {
		t.Fatalf("answered %d", p.AnsweredItems)
	}
	activated := 0
	for _, s := range p.Emotional {
		if s.Activation > 0 {
			activated++
		}
	}
	if activated == 0 {
		t.Fatal("answer activated nothing")
	}
	// Next item advances.
	item2, _ := m.NextItem(p)
	if item2.ID != 1 {
		t.Fatalf("second item %d", item2.ID)
	}
}

func TestEITAnswerGradualConvergence(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	now := t0
	// Always choose the positive option through the whole bank.
	for {
		item, err := m.NextItem(p)
		if errors.Is(err, emotion.ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Hour)
		if err := m.ApplyEITAnswer(p, emotion.Answer{ItemID: item.ID, Option: 0}, now); err != nil {
			t.Fatal(err)
		}
	}
	if p.AnsweredItems != m.Bank().Len() {
		t.Fatalf("answered %d of %d", p.AnsweredItems, m.Bank().Len())
	}
	// Approach attributes probed by positive options should now be highly
	// activated with positive valence.
	s := p.Emotional[emotion.Enthusiastic]
	if s.Activation < 0.5 {
		t.Fatalf("enthusiastic activation %v after full positive bank", s.Activation)
	}
	if s.Valence <= 0 {
		t.Fatalf("enthusiastic valence %v", s.Valence)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRewardStrengthens(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	before := p.Emotional[emotion.Motivated]
	m.Reward(p, []emotion.Attribute{emotion.Motivated}, t0.Add(time.Hour))
	after := p.Emotional[emotion.Motivated]
	if after.Activation <= before.Activation {
		t.Fatal("reward did not raise activation")
	}
	if after.Valence < before.Valence {
		t.Fatal("reward lowered valence")
	}
	if after.Evidence != before.Evidence+1 {
		t.Fatal("reward did not add evidence")
	}
}

func TestPunishWeakens(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	// Activate first so punish has something to reduce.
	m.Reward(p, []emotion.Attribute{emotion.Motivated}, t0.Add(time.Hour))
	before := p.Emotional[emotion.Motivated]
	m.Punish(p, []emotion.Attribute{emotion.Motivated}, t0.Add(2*time.Hour))
	after := p.Emotional[emotion.Motivated]
	if after.Activation >= before.Activation {
		t.Fatal("punish did not lower activation")
	}
	if after.Valence >= before.Valence {
		t.Fatal("punish did not lower valence")
	}
}

func TestRewardPunishIgnoreInvalidAttrs(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	m.Reward(p, []emotion.Attribute{emotion.Attribute(99)}, t0.Add(time.Hour))
	m.Punish(p, []emotion.Attribute{emotion.Attribute(-1)}, t0.Add(2*time.Hour))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecayHalvesActivation(t *testing.T) {
	params := DefaultParams()
	params.HalfLifeDays = 10
	m, err := NewModel(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile(1, t0)
	for i := 0; i < 6; i++ {
		m.Reward(p, []emotion.Attribute{emotion.Lively}, t0)
	}
	start := p.Emotional[emotion.Lively].Activation
	m.Decay(p, t0.Add(10*24*time.Hour))
	got := p.Emotional[emotion.Lively].Activation
	if math.Abs(got-start/2) > 1e-9 {
		t.Fatalf("after one half-life: %v, want %v", got, start/2)
	}
	// Decay is monotone and never negative.
	m.Decay(p, t0.Add(1000*24*time.Hour))
	if a := p.Emotional[emotion.Lively].Activation; a < 0 || a > got {
		t.Fatalf("long decay produced %v", a)
	}
}

func TestDecayNoTimeNoChange(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	m.Reward(p, []emotion.Attribute{emotion.Lively}, t0)
	before := p.Emotional[emotion.Lively].Activation
	m.Decay(p, t0) // zero elapsed
	if p.Emotional[emotion.Lively].Activation != before {
		t.Fatal("zero-elapsed decay changed state")
	}
}

func TestSensibilitiesRange(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	now := t0
	for i := 0; i < 10; i++ {
		now = now.Add(time.Hour)
		m.Reward(p, []emotion.Attribute{emotion.Enthusiastic, emotion.Hopeful}, now)
	}
	sens := m.Sensibilities(p)
	if len(sens) != emotion.NumAttributes {
		t.Fatalf("sensibilities len %d", len(sens))
	}
	for i, w := range sens {
		if w < 0 || w > 1 {
			t.Fatalf("sensibility %d = %v", i, w)
		}
	}
	if sens[emotion.Enthusiastic] <= sens[emotion.Shy] {
		t.Fatalf("rewarded attribute not dominant: %v vs %v", sens[emotion.Enthusiastic], sens[emotion.Shy])
	}
}

func TestAdviseSignsFollowValence(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	now := t0
	// Build approach evidence on Enthusiastic, aversion on Frightened via
	// EIT answers that hit those attributes.
	for i := 0; i < 20; i++ {
		item, err := m.NextItem(p)
		if err != nil {
			break
		}
		now = now.Add(time.Hour)
		opt := 0
		// For items whose negative option touches Frightened, choose it.
		if impacts, _ := m.Bank().Score(emotion.Answer{ItemID: item.ID, Option: 1}); impacts[emotion.Frightened] != 0 {
			opt = 1
		}
		m.ApplyEITAnswer(p, emotion.Answer{ItemID: item.ID, Option: opt}, now)
	}
	adv := m.Advise(p, "training")
	if adv.Domain != "training" {
		t.Fatal("domain lost")
	}
	if adv.Excitation[emotion.Enthusiastic] <= 0 {
		t.Fatalf("approach attribute excitation %v", adv.Excitation[emotion.Enthusiastic])
	}
	if adv.Excitation[emotion.Frightened] >= 0 {
		t.Fatalf("aversion attribute excitation %v", adv.Excitation[emotion.Frightened])
	}
}

func TestEmotionalFeaturesLayout(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(1, t0)
	m.Reward(p, []emotion.Attribute{emotion.Motivated}, t0.Add(time.Hour))
	f := p.EmotionalFeatures()
	if len(f) != EmotionalFeatureLen {
		t.Fatalf("feature len %d", len(f))
	}
	if f[int(emotion.Motivated)] <= 0 {
		t.Fatalf("signed sensibility for rewarded attribute %v", f[emotion.Motivated])
	}
	if f[emotion.NumAttributes+int(emotion.Motivated)] <= 0 {
		t.Fatal("confidence block zero for attribute with evidence")
	}
}

func TestFeatureVectorBlocks(t *testing.T) {
	p := NewProfile(1, t0)
	p.Objective = []float64{1, 2}
	p.Subjective = []float64{3}
	all := p.FeatureVector(true, true, true)
	if len(all) != 3+EmotionalFeatureLen {
		t.Fatalf("full vector len %d", len(all))
	}
	if len(p.FeatureVector(true, false, false)) != 2 {
		t.Fatal("objective-only length")
	}
	if len(p.FeatureVector(false, false, true)) != EmotionalFeatureLen {
		t.Fatal("emotional-only length")
	}
	if len(p.FeatureVector(false, false, false)) != 0 {
		t.Fatal("empty selection not empty")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := NewProfile(1, t0)
	p.Emotional[2].Activation = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("bad activation validated")
	}
	p = NewProfile(1, t0)
	p.Emotional[0].Valence = -2
	if err := p.Validate(); err == nil {
		t.Fatal("bad valence validated")
	}
	p = NewProfile(0, t0)
	if err := p.Validate(); err == nil {
		t.Fatal("zero user validated")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := newTestModel(t)
	p := NewProfile(42, t0)
	p.Objective = []float64{30, 1, 0.5}
	p.Subjective = []float64{12, 0.25}
	now := t0
	for i := 0; i < 5; i++ {
		item, _ := m.NextItem(p)
		now = now.Add(time.Hour)
		m.ApplyEITAnswer(p, emotion.Answer{ItemID: item.ID, Option: i % 3}, now)
	}
	m.Reward(p, []emotion.Attribute{emotion.Hopeful}, now.Add(time.Hour))

	raw := Encode(p)
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.UserID != p.UserID || got.AnsweredItems != p.AnsweredItems {
		t.Fatalf("scalar fields: %+v", got)
	}
	if !got.UpdatedAt.Equal(p.UpdatedAt) {
		t.Fatalf("updatedAt %v want %v", got.UpdatedAt, p.UpdatedAt)
	}
	for i := range p.Emotional {
		if got.Emotional[i] != p.Emotional[i] {
			t.Fatalf("emotional %d: %+v want %+v", i, got.Emotional[i], p.Emotional[i])
		}
	}
	for i := range p.Objective {
		if got.Objective[i] != p.Objective[i] {
			t.Fatal("objective block")
		}
	}
	for i := range p.Subjective {
		if got.Subjective[i] != p.Subjective[i] {
			t.Fatal("subjective block")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXXXXXXrestofdatathatislongenoughtoparse0000000000000000"),
	}
	for i, raw := range cases {
		if _, err := Decode(raw); err == nil {
			t.Fatalf("garbage %d decoded", i)
		}
	}
	// Truncated valid prefix.
	p := NewProfile(1, t0)
	raw := Encode(p)
	if _, err := Decode(raw[:len(raw)-5]); err == nil {
		t.Fatal("truncated record decoded")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(seed uint64, nAnswers uint8) bool {
		m, _ := NewModel(DefaultParams(), nil)
		p := NewProfile(seed%1000+1, t0)
		now := t0
		for i := 0; i < int(nAnswers)%20; i++ {
			item, err := m.NextItem(p)
			if err != nil {
				break
			}
			now = now.Add(time.Hour)
			if m.ApplyEITAnswer(p, emotion.Answer{ItemID: item.ID, Option: int((seed + uint64(i)) % 3)}, now) != nil {
				return false
			}
		}
		got, err := Decode(Encode(p))
		if err != nil {
			return false
		}
		return got.UserID == p.UserID && got.AnsweredItems == p.AnsweredItems &&
			got.Emotional == p.Emotional
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSaveLoadForEach(t *testing.T) {
	dir := t.TempDir()
	db, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for id := uint64(1); id <= 10; id++ {
		p := NewProfile(id, t0)
		p.Objective = []float64{float64(id)}
		if err := Save(db, p); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Load(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.UserID != 5 || p.Objective[0] != 5 {
		t.Fatalf("loaded %+v", p)
	}
	if _, err := Load(db, 99); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("missing profile: %v", err)
	}
	var ids []uint64
	if err := ForEach(db, func(p *Profile) bool {
		ids = append(ids, p.UserID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("ForEach visited %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ForEach not in user order")
		}
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	db, _ := store.Open(dir, store.Options{})
	defer db.Close()
	p := NewProfile(1, t0)
	p.Emotional[0].Activation = 9
	if err := Save(db, p); err == nil {
		t.Fatal("invalid profile saved")
	}
}

func BenchmarkApplyEITAnswer(b *testing.B) {
	m, _ := NewModel(DefaultParams(), nil)
	p := NewProfile(1, t0)
	now := t0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AnsweredItems = i % m.Bank().Len()
		now = now.Add(time.Minute)
		if err := m.ApplyEITAnswer(p, emotion.Answer{ItemID: p.AnsweredItems, Option: i % 3}, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	p := NewProfile(1, t0)
	p.Objective = make([]float64, 20)
	p.Subjective = make([]float64, 35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := Encode(p)
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
