package emotion

import (
	"testing"
)

func TestCircumplexPositionsValid(t *testing.T) {
	for _, a := range AllAttributes() {
		c := a.Circumplex()
		if c.Valence < -1 || c.Valence > 1 {
			t.Fatalf("%v valence %v", a, c.Valence)
		}
		if c.Arousal < 0 || c.Arousal > 1 {
			t.Fatalf("%v arousal %v", a, c.Arousal)
		}
		if c.Valence != float64(a.BaseValence()) {
			t.Fatalf("%v circumplex valence diverges from base valence", a)
		}
	}
}

func TestCircumplexSeparatesApproachAvoidance(t *testing.T) {
	// Approach attributes sit right of avoidance ones; frightened is the
	// highest-arousal negative state, apathetic the lowest-arousal one.
	if Frightened.Circumplex().Arousal <= Apathetic.Circumplex().Arousal {
		t.Fatal("frightened should out-arouse apathetic")
	}
	if Enthusiastic.Circumplex().Valence <= Frightened.Circumplex().Valence {
		t.Fatal("valence ordering broken")
	}
}

func TestNearestAttributesIdentity(t *testing.T) {
	// Each attribute's own position must rank itself first.
	for _, a := range AllAttributes() {
		got := a.Circumplex().NearestAttributes(1)
		if len(got) != 1 || got[0] != a {
			t.Fatalf("%v nearest is %v", a, got)
		}
	}
}

func TestNearestAttributesQuadrants(t *testing.T) {
	// High-arousal negative → frightened-ish; low-arousal negative →
	// apathetic-ish; high-arousal positive → an energized approach state.
	cases := []struct {
		point Circumplex
		want  Attribute
	}{
		{Circumplex{Valence: -0.8, Arousal: 0.9}, Frightened},
		{Circumplex{Valence: -0.7, Arousal: 0.1}, Apathetic},
		{Circumplex{Valence: 0.9, Arousal: 0.85}, Enthusiastic},
	}
	for _, c := range cases {
		got := c.point.NearestAttributes(1)[0]
		if got != c.want {
			t.Fatalf("point %+v nearest %v, want %v", c.point, got, c.want)
		}
	}
}

func TestNearestAttributesOrderingAndBounds(t *testing.T) {
	p := Circumplex{Valence: 0, Arousal: 0.5}
	all := p.NearestAttributes(NumAttributes)
	if len(all) != NumAttributes {
		t.Fatalf("%d attributes", len(all))
	}
	prev := -1.0
	for _, a := range all {
		d := p.Distance(a.Circumplex())
		if d < prev {
			t.Fatal("distances not ascending")
		}
		prev = d
	}
	if p.NearestAttributes(0) != nil {
		t.Fatal("k=0 returned attributes")
	}
	if len(p.NearestAttributes(99)) != NumAttributes {
		t.Fatal("k clamp")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	a := Circumplex{Valence: 0.5, Arousal: 0.2}
	b := Circumplex{Valence: -0.3, Arousal: 0.9}
	if a.Distance(b) != b.Distance(a) {
		t.Fatal("distance asymmetric")
	}
	if a.Distance(a) != 0 {
		t.Fatal("self distance nonzero")
	}
}
