package emotion

import (
	"errors"
	"fmt"
)

// The Gradual Emotional Intelligence Test (Gradual EIT).
//
// The paper (§3 stage 1, §5.2) acquires emotional attributes through "a
// gradual and noninvasive emotional intelligence test": each push or
// newsletter carries exactly one question about an everyday situation
// (opinions, tastes, pictures); the answer gradually activates the impacted
// emotional attributes. The MSCEIT V2.0 instrument itself is proprietary, so
// this reproduction ships a synthetic item bank with the same interface: every
// item is tagged with a Four-Branch branch, and every answer option carries a
// per-attribute valence impact.

// Item is a single EIT question.
type Item struct {
	ID     int
	Branch Branch
	Prompt string
	// Options are the selectable answers; each activates attributes.
	Options []Option
}

// Option is one answer with its attribute impacts.
type Option struct {
	Text string
	// Impacts maps attribute → valence contribution in [-1, 1]. Choosing
	// this option is evidence that the user's sensibility for the attribute
	// moves toward that valence.
	Impacts map[Attribute]Valence
}

// Answer records a user's reply to an item.
type Answer struct {
	ItemID int
	Option int
}

// Bank is an ordered collection of EIT items, served one per campaign touch
// in round-robin order per user (the "gradual" part).
type Bank struct {
	items []Item
}

// ErrExhausted is returned by Next when the user has answered every item.
var ErrExhausted = errors.New("emotion: item bank exhausted for user")

// NewBank builds the default 64-item synthetic bank: 16 items per branch,
// each probing a subset of the deployed attributes with alternating
// scenario framings. The bank is deterministic — no randomness — so tests
// and experiments see identical items.
func NewBank() *Bank {
	b := &Bank{}
	id := 0
	scenarios := bankScenarios()
	for _, sc := range scenarios {
		b.items = append(b.items, Item{
			ID:      id,
			Branch:  sc.branch,
			Prompt:  sc.prompt,
			Options: sc.options,
		})
		id++
	}
	for i := range b.items {
		b.items[i].ID = i
	}
	return b
}

// Len returns the number of items.
func (b *Bank) Len() int { return len(b.items) }

// ErrBadAnswer tags answer-validation failures — an unknown item id or an
// option the item does not have. Callers (e.g. the serving layer) use it
// to distinguish a malformed submission from an internal failure.
var ErrBadAnswer = errors.New("emotion: bad answer")

// Item returns the item with the given ID.
func (b *Bank) Item(id int) (Item, error) {
	if id < 0 || id >= len(b.items) {
		return Item{}, fmt.Errorf("%w: no item %d", ErrBadAnswer, id)
	}
	return b.items[id], nil
}

// Next returns the item a user should be asked next given how many they
// have already answered: items are served in order, one per touch.
func (b *Bank) Next(answered int) (Item, error) {
	if answered < 0 {
		return Item{}, errors.New("emotion: negative answered count")
	}
	if answered >= len(b.items) {
		return Item{}, ErrExhausted
	}
	return b.items[answered], nil
}

// Score converts an answer into its attribute impacts.
func (b *Bank) Score(a Answer) (map[Attribute]Valence, error) {
	item, err := b.Item(a.ItemID)
	if err != nil {
		return nil, err
	}
	if a.Option < 0 || a.Option >= len(item.Options) {
		return nil, fmt.Errorf("%w: item %d has no option %d", ErrBadAnswer, a.ItemID, a.Option)
	}
	impacts := item.Options[a.Option].Impacts
	out := make(map[Attribute]Valence, len(impacts))
	for attr, v := range impacts {
		if v == 0 {
			continue // zero-impact entries carry no evidence
		}
		out[attr] = v.Clamp()
	}
	return out, nil
}

// scenario is an item template before ID assignment.
type scenario struct {
	branch  Branch
	prompt  string
	options []Option
}

// bankScenarios enumerates 64 items: for each of the four branches, four
// framing templates instantiated over four attribute pairings. Positive
// options push the approach attribute up; negative options push the
// avoidance attribute up (recall avoidance attributes have negative base
// valence — "activating" them is learning an aversion).
func bankScenarios() []scenario {
	type pairing struct {
		up, down Attribute
	}
	// Two pairing sets alternate by round so all ten attributes are
	// reachable through the bank.
	pairingSets := [2][]pairing{
		{
			{Enthusiastic, Apathetic},
			{Motivated, Shy},
			{Hopeful, Frightened},
			{Lively, Impatient},
		},
		{
			{Stimulated, Apathetic},
			{Lively, Shy},
			{Hopeful, Frightened},
			{Enthusiastic, Impatient},
		},
	}
	frames := []struct {
		branch   Branch
		template string
		posText  string
		negText  string
		neuText  string
	}{
		{BranchPerceiving, "Look at this photo from a course classroom. What do you notice first about the people in it?", "Their energy and engagement", "Their distance and unease", "The room itself"},
		{BranchFacilitating, "A new training topic just opened. How does thinking about starting it make you feel?", "Eager to dive in right away", "Worried it is not for me", "No particular feeling"},
		{BranchUnderstanding, "A colleague just finished a course and talks about it constantly. Why, do you think?", "Finishing it genuinely excited them", "They fear falling behind otherwise", "People just talk about work"},
		{BranchManaging, "You have 30 free minutes today. A lesson from your saved course is pending. What do you do?", "Start it now while the mood is right", "Put it off; today is not the day", "Decide later"},
	}
	var out []scenario
	for round := 0; round < 4; round++ {
		// Pairings outer, frames inner: consecutive items rotate through the
		// four branches, as a real gradual test would.
		for _, p := range pairingSets[round%2] {
			for _, f := range frames {
				pos := Option{
					Text: f.posText,
					Impacts: map[Attribute]Valence{
						p.up: Valence(0.6 + 0.1*float64(round%2)),
						// Mild co-activation of the empathic channel on
						// perceiving-branch items: noticing others is itself
						// evidence of perception ability.
						Empathic: co(f.branch, 0.2),
					},
				}
				neg := Option{
					Text: f.negText,
					Impacts: map[Attribute]Valence{
						p.down:   Valence(-0.6 - 0.1*float64(round%2)).Clamp().negAbs(),
						Empathic: co(f.branch, 0.1),
					},
				}
				neu := Option{
					Text:    f.neuText,
					Impacts: map[Attribute]Valence{},
				}
				out = append(out, scenario{
					branch:  f.branch,
					prompt:  f.template,
					options: []Option{pos, neg, neu},
				})
			}
		}
	}
	return out
}

// negAbs forces a negative sign: avoidance activations are aversions.
func (v Valence) negAbs() Valence {
	if v > 0 {
		return -v
	}
	return v
}

func co(b Branch, v Valence) Valence {
	if b == BranchPerceiving {
		return v
	}
	return 0
}
