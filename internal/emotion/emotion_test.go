package emotion

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValenceClamp(t *testing.T) {
	cases := []struct{ in, want Valence }{
		{-2, -1}, {-1, -1}, {-0.5, -0.5}, {0, 0}, {0.5, 0.5}, {1, 1}, {3, 1},
	}
	for _, c := range cases {
		if got := c.in.Clamp(); got != c.want {
			t.Fatalf("Clamp(%v)=%v, want %v", c.in, got, c.want)
		}
	}
}

func TestValencePolarity(t *testing.T) {
	if Valence(0.3).Polarity() != 1 || Valence(-0.3).Polarity() != -1 || Valence(0).Polarity() != 0 {
		t.Fatal("polarity wrong")
	}
	if !Valence(0.1).IsPositive() || Valence(-0.1).IsPositive() || Valence(0).IsPositive() {
		t.Fatal("IsPositive wrong")
	}
}

func TestValenceBlend(t *testing.T) {
	v := Valence(0)
	v = v.Blend(1, 0.5)
	if v != 0.5 {
		t.Fatalf("blend half: %v", v)
	}
	// alpha 0 keeps, alpha 1 replaces.
	if Valence(0.2).Blend(0.9, 0) != 0.2 {
		t.Fatal("alpha 0 changed value")
	}
	if Valence(0.2).Blend(0.9, 1) != 0.9 {
		t.Fatal("alpha 1 did not replace")
	}
	// Out-of-range alphas clamp.
	if Valence(0.2).Blend(0.9, -3) != 0.2 || Valence(0.2).Blend(0.9, 7) != 0.9 {
		t.Fatal("alpha clamp wrong")
	}
}

func TestValenceBlendStaysInRange(t *testing.T) {
	f := func(v, target, alpha float64) bool {
		start := Valence(math.Mod(v, 1)).Clamp()
		tgt := Valence(math.Mod(target, 1)).Clamp()
		a := math.Abs(math.Mod(alpha, 1))
		out := start.Blend(tgt, a)
		return out >= -1 && out <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBranchStringsAndDescriptions(t *testing.T) {
	want := map[Branch]string{
		BranchPerceiving:    "Perceiving Emotions",
		BranchFacilitating:  "Facilitating Thought",
		BranchUnderstanding: "Understanding Emotions",
		BranchManaging:      "Managing Emotions",
	}
	for b, s := range want {
		if b.String() != s {
			t.Fatalf("branch %d string %q", b, b.String())
		}
		if b.Description() == "" {
			t.Fatalf("branch %v missing description", b)
		}
	}
	if Branch(99).Description() != "" {
		t.Fatal("invalid branch has description")
	}
}

func TestTenAttributesMatchPaper(t *testing.T) {
	// §5.1: "enthusiastic, motivated, empathic, hopeful, lively, stimulated,
	// impatient, frightened, shy and apathetic".
	want := []string{
		"enthusiastic", "motivated", "empathic", "hopeful", "lively",
		"stimulated", "impatient", "frightened", "shy", "apathetic",
	}
	attrs := AllAttributes()
	if len(attrs) != len(want) {
		t.Fatalf("%d attributes, want %d", len(attrs), len(want))
	}
	for i, a := range attrs {
		if a.String() != want[i] {
			t.Fatalf("attribute %d = %q, want %q", i, a.String(), want[i])
		}
	}
}

func TestParseAttributeRoundTrip(t *testing.T) {
	for _, a := range AllAttributes() {
		got, err := ParseAttribute(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip %v: %v %v", a, got, err)
		}
	}
	if _, err := ParseAttribute("angry"); err == nil {
		t.Fatal("unknown attribute parsed")
	}
}

func TestBaseValencePolarity(t *testing.T) {
	positive := []Attribute{Enthusiastic, Motivated, Empathic, Hopeful, Lively, Stimulated}
	negative := []Attribute{Impatient, Frightened, Shy, Apathetic}
	for _, a := range positive {
		if v := a.BaseValence(); v <= 0 || v > 1 {
			t.Fatalf("%v base valence %v, want positive in (0,1]", a, v)
		}
	}
	for _, a := range negative {
		if v := a.BaseValence(); v >= 0 || v < -1 {
			t.Fatalf("%v base valence %v, want negative in [-1,0)", a, v)
		}
	}
}

func TestEveryAttributeHasBranch(t *testing.T) {
	counts := map[Branch]int{}
	for _, a := range AllAttributes() {
		b := a.Branch()
		if b < BranchPerceiving || b > BranchManaging {
			t.Fatalf("%v maps to invalid branch %v", a, b)
		}
		counts[b]++
	}
	for _, b := range Branches() {
		if counts[b] == 0 {
			t.Fatalf("branch %v has no attributes", b)
		}
	}
}

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	seen := map[Attribute]bool{}
	for i, row := range rows {
		if row.Branch != Branches()[i] {
			t.Fatalf("row %d branch %v", i, row.Branch)
		}
		if row.Description == "" {
			t.Fatalf("row %d missing description", i)
		}
		for _, a := range row.Attributes {
			if seen[a] {
				t.Fatalf("attribute %v in two branches", a)
			}
			seen[a] = true
		}
	}
	if len(seen) != NumAttributes {
		t.Fatalf("Table 1 covers %d attributes, want %d", len(seen), NumAttributes)
	}
}

func TestStateConfidence(t *testing.T) {
	s := State{Evidence: 0}
	if s.Confidence() != 0 {
		t.Fatalf("zero evidence confidence %v", s.Confidence())
	}
	prev := 0.0
	for e := 1; e <= 20; e++ {
		c := State{Evidence: e}.Confidence()
		if c <= prev || c >= 1 {
			t.Fatalf("confidence not monotone in (0,1): e=%d c=%v prev=%v", e, c, prev)
		}
		prev = c
	}
}

func TestBankSizeAndBranchCoverage(t *testing.T) {
	b := NewBank()
	if b.Len() != 64 {
		t.Fatalf("bank size %d, want 64", b.Len())
	}
	perBranch := map[Branch]int{}
	for i := 0; i < b.Len(); i++ {
		item, err := b.Item(i)
		if err != nil {
			t.Fatal(err)
		}
		if item.ID != i {
			t.Fatalf("item %d has ID %d", i, item.ID)
		}
		if len(item.Options) < 2 {
			t.Fatalf("item %d has %d options", i, len(item.Options))
		}
		if item.Prompt == "" {
			t.Fatalf("item %d has empty prompt", i)
		}
		perBranch[item.Branch]++
	}
	for _, br := range Branches() {
		if perBranch[br] != 16 {
			t.Fatalf("branch %v has %d items, want 16", br, perBranch[br])
		}
	}
}

func TestBankNextIsGradual(t *testing.T) {
	b := NewBank()
	for answered := 0; answered < b.Len(); answered++ {
		item, err := b.Next(answered)
		if err != nil {
			t.Fatal(err)
		}
		if item.ID != answered {
			t.Fatalf("Next(%d) returned item %d", answered, item.ID)
		}
	}
	if _, err := b.Next(b.Len()); err != ErrExhausted {
		t.Fatalf("exhausted bank returned %v", err)
	}
	if _, err := b.Next(-1); err == nil {
		t.Fatal("negative answered accepted")
	}
}

func TestBankScore(t *testing.T) {
	b := NewBank()
	item, _ := b.Item(0)
	impacts, err := b.Score(Answer{ItemID: 0, Option: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) == 0 {
		t.Fatal("positive option produced no impacts")
	}
	foundPositive := false
	for attr, v := range impacts {
		if v < -1 || v > 1 {
			t.Fatalf("impact %v out of range: %v", attr, v)
		}
		if v > 0 {
			foundPositive = true
		}
	}
	if !foundPositive {
		t.Fatal("positive option has no positive impact")
	}
	_ = item

	// Negative option activates an avoidance attribute with negative valence.
	impacts, err = b.Score(Answer{ItemID: 0, Option: 1})
	if err != nil {
		t.Fatal(err)
	}
	foundNegative := false
	for _, v := range impacts {
		if v < 0 {
			foundNegative = true
		}
	}
	if !foundNegative {
		t.Fatal("negative option has no negative-valence impact")
	}
}

func TestBankScoreNeutralOption(t *testing.T) {
	b := NewBank()
	impacts, err := b.Score(Answer{ItemID: 0, Option: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) != 0 {
		t.Fatalf("neutral option impacted %d attributes", len(impacts))
	}
}

func TestBankScoreErrors(t *testing.T) {
	b := NewBank()
	if _, err := b.Score(Answer{ItemID: -1}); err == nil {
		t.Fatal("bad item accepted")
	}
	if _, err := b.Score(Answer{ItemID: 0, Option: 99}); err == nil {
		t.Fatal("bad option accepted")
	}
}

func TestBankEveryAttributeReachable(t *testing.T) {
	b := NewBank()
	impacted := map[Attribute]bool{}
	for i := 0; i < b.Len(); i++ {
		item, _ := b.Item(i)
		for opt := range item.Options {
			impacts, err := b.Score(Answer{ItemID: i, Option: opt})
			if err != nil {
				t.Fatal(err)
			}
			for attr := range impacts {
				impacted[attr] = true
			}
		}
	}
	if len(impacted) != NumAttributes {
		t.Fatalf("only %d/%d attributes reachable via bank", len(impacted), NumAttributes)
	}
}

func BenchmarkBankScore(b *testing.B) {
	bank := NewBank()
	for i := 0; i < b.N; i++ {
		if _, err := bank.Score(Answer{ItemID: i % bank.Len(), Option: i % 3}); err != nil {
			b.Fatal(err)
		}
	}
}
