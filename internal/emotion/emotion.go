// Package emotion models the paper's emotional-context machinery: valences,
// the ten emotional attributes deployed in the emagister.com business case,
// and the Four-Branch Model of Emotional Intelligence (Table 1 of the paper,
// after Mayer–Salovey–Caruso's MSCEIT V2.0) that organizes them. The
// companion file eit.go implements the Gradual Emotional Intelligence Test —
// the paper's non-invasive, one-question-per-touch acquisition channel.
package emotion

import (
	"fmt"
	"math"
)

// Valence is "the degree of attraction or aversion that a person feels
// toward a specific object or event" (paper §3). It is kept in [-1, 1]:
// -1 strong aversion, 0 neutral, +1 strong attraction.
type Valence float64

// Clamp returns the valence limited to [-1, 1].
func (v Valence) Clamp() Valence {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}

// IsPositive reports attraction (v > 0).
func (v Valence) IsPositive() bool { return v > 0 }

// Polarity returns -1, 0 or +1.
func (v Valence) Polarity() int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Blend returns the exponential moving average of v toward target with
// learning rate alpha in [0,1] — the primitive behind the reward/punish
// update stage.
func (v Valence) Blend(target Valence, alpha float64) Valence {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return Valence(float64(v)*(1-alpha) + float64(target)*alpha).Clamp()
}

// Branch is one branch of the Four-Branch Model of Emotional Intelligence
// (MSCEIT V2.0), the paper's Table 1.
type Branch int

const (
	// BranchPerceiving is the ability to perceive emotions in oneself and
	// others as well as in objects, art, stories, music and other stimuli.
	BranchPerceiving Branch = iota
	// BranchFacilitating is the ability to generate, use and feel emotion
	// as necessary to communicate feelings or employ them in other
	// cognitive processes.
	BranchFacilitating
	// BranchUnderstanding is the ability to understand emotional
	// information, to understand how emotions combine and progress through
	// relationship transitions, and to appreciate such emotional meanings.
	BranchUnderstanding
	// BranchManaging is the ability to be open to feelings, and to
	// modulate them in oneself and others so as to promote personal
	// understanding and growth.
	BranchManaging

	numBranches = 4
)

// String implements fmt.Stringer with the MSCEIT branch names.
func (b Branch) String() string {
	switch b {
	case BranchPerceiving:
		return "Perceiving Emotions"
	case BranchFacilitating:
		return "Facilitating Thought"
	case BranchUnderstanding:
		return "Understanding Emotions"
	case BranchManaging:
		return "Managing Emotions"
	default:
		return fmt.Sprintf("Branch(%d)", int(b))
	}
}

// Description returns the MSCEIT V2.0 ability definition for the branch, as
// summarized in the paper's Table 1.
func (b Branch) Description() string {
	switch b {
	case BranchPerceiving:
		return "Ability to perceive emotions in oneself and others as well as in objects, art, stories, music, and other stimuli"
	case BranchFacilitating:
		return "Ability to generate, use, and feel emotion as necessary to communicate feelings or employ them in other cognitive processes"
	case BranchUnderstanding:
		return "Ability to understand emotional information, to understand how emotions combine and progress through relationship transitions, and to appreciate such emotional meanings"
	case BranchManaging:
		return "Ability to be open to feelings, and to modulate them in oneself and others so as to promote personal understanding and growth"
	default:
		return ""
	}
}

// Branches returns the four branches in MSCEIT order.
func Branches() []Branch {
	return []Branch{BranchPerceiving, BranchFacilitating, BranchUnderstanding, BranchManaging}
}

// Attribute identifies one of the ten emotional attributes of the business
// case (§5.1): "enthusiastic, motivated, empathic, hopeful, lively,
// stimulated, impatient, frightened, shy and apathetic".
type Attribute int

const (
	Enthusiastic Attribute = iota
	Motivated
	Empathic
	Hopeful
	Lively
	Stimulated
	Impatient
	Frightened
	Shy
	Apathetic

	// NumAttributes is the size of the deployed emotional attribute set.
	NumAttributes = 10
)

var attrNames = [NumAttributes]string{
	"enthusiastic", "motivated", "empathic", "hopeful", "lively",
	"stimulated", "impatient", "frightened", "shy", "apathetic",
}

// String returns the lowercase attribute name used throughout the paper.
func (a Attribute) String() string {
	if a < 0 || int(a) >= NumAttributes {
		return fmt.Sprintf("Attribute(%d)", int(a))
	}
	return attrNames[a]
}

// ParseAttribute resolves a name (as printed by String) to an Attribute.
func ParseAttribute(name string) (Attribute, error) {
	for i, n := range attrNames {
		if n == name {
			return Attribute(i), nil
		}
	}
	return 0, fmt.Errorf("emotion: unknown attribute %q", name)
}

// AllAttributes returns the ten attributes in canonical order.
func AllAttributes() []Attribute {
	out := make([]Attribute, NumAttributes)
	for i := range out {
		out[i] = Attribute(i)
	}
	return out
}

// BaseValence is the intrinsic polarity of each attribute: the first six are
// approach emotions (positive valence), the last four avoidance emotions
// (negative valence). The magnitudes encode typical arousal and follow the
// circumplex placement of each term.
func (a Attribute) BaseValence() Valence {
	switch a {
	case Enthusiastic:
		return 0.9
	case Motivated:
		return 0.8
	case Empathic:
		return 0.6
	case Hopeful:
		return 0.7
	case Lively:
		return 0.8
	case Stimulated:
		return 0.7
	case Impatient:
		return -0.4
	case Frightened:
		return -0.8
	case Shy:
		return -0.5
	case Apathetic:
		return -0.7
	default:
		return 0
	}
}

// Branch maps the attribute to the Four-Branch ability that the Gradual EIT
// probes when activating it. Perception-flavored states (empathic,
// frightened) sit in Perceiving; energizing states in Facilitating;
// relational/anticipatory states in Understanding; regulation-flavored
// states in Managing.
func (a Attribute) Branch() Branch {
	switch a {
	case Empathic, Frightened:
		return BranchPerceiving
	case Enthusiastic, Lively, Stimulated:
		return BranchFacilitating
	case Hopeful, Shy:
		return BranchUnderstanding
	case Motivated, Impatient, Apathetic:
		return BranchManaging
	default:
		return BranchPerceiving
	}
}

// State is an activation snapshot of one emotional attribute in a Smart
// User Model: how strongly it is activated, with what valence, and how
// confident the system is in the estimate (confidence grows with evidence).
type State struct {
	Attribute  Attribute
	Activation float64 // [0, 1]: 0 dormant, 1 fully activated (sensibility)
	Valence    Valence
	Evidence   int // number of observations contributing
}

// Confidence maps evidence count to (0, 1) with diminishing returns; five
// observations already yield ~0.78.
func (s State) Confidence() float64 {
	return 1 - math.Exp(-0.3*float64(s.Evidence))
}

// Table1Row is one row of the paper's Table 1 rendering.
type Table1Row struct {
	Branch      Branch
	Description string
	Attributes  []Attribute // deployed attributes probing this branch
}

// Table1 returns the Four-Branch Model exactly as the reproduction renders
// the paper's Table 1: branch, MSCEIT ability definition, and the deployed
// attributes mapped to it.
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, numBranches)
	for _, b := range Branches() {
		row := Table1Row{Branch: b, Description: b.Description()}
		for _, a := range AllAttributes() {
			if a.Branch() == b {
				row.Attributes = append(row.Attributes, a)
			}
		}
		rows = append(rows, row)
	}
	return rows
}
