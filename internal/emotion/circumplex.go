package emotion

import "math"

// Circumplex coordinates. Affect research (Russell's circumplex, which the
// MSCEIT literature and the paper's wearIT@work follow-up both lean on)
// places emotional states on a valence × arousal plane. The reproduction
// uses the plane in two directions:
//
//   - internal/physio maps physiological signals to (arousal, valence) and
//     then to the nearest deployed attributes;
//   - this file gives each deployed attribute its canonical circumplex
//     position, closing the loop (attribute → plane → attribute is
//     approximately the identity for well-separated attributes).

// Circumplex is a point on the affect plane.
type Circumplex struct {
	// Valence in [-1, 1].
	Valence float64
	// Arousal in [0, 1].
	Arousal float64
}

// Circumplex returns the attribute's canonical position. Valences reuse
// BaseValence; arousal follows the standard placements (excited states
// high, lethargic states low).
func (a Attribute) Circumplex() Circumplex {
	arousal := map[Attribute]float64{
		Enthusiastic: 0.85,
		Motivated:    0.65,
		Empathic:     0.45,
		Hopeful:      0.50,
		Lively:       0.80,
		Stimulated:   0.75,
		Impatient:    0.70,
		Frightened:   0.90,
		Shy:          0.35,
		Apathetic:    0.10,
	}[a]
	return Circumplex{Valence: float64(a.BaseValence()), Arousal: arousal}
}

// Distance is the Euclidean distance on the plane (valence span 2, arousal
// span 1; both kept in natural units).
func (c Circumplex) Distance(o Circumplex) float64 {
	dv := c.Valence - o.Valence
	da := c.Arousal - o.Arousal
	return math.Sqrt(dv*dv + da*da)
}

// NearestAttributes returns the k deployed attributes closest to the point,
// ascending by distance; ties break in attribute order.
func (c Circumplex) NearestAttributes(k int) []Attribute {
	if k < 1 {
		return nil
	}
	type ad struct {
		a Attribute
		d float64
	}
	all := make([]ad, 0, NumAttributes)
	for _, a := range AllAttributes() {
		all = append(all, ad{a, c.Distance(a.Circumplex())})
	}
	// Insertion sort: ten elements.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			x, y := all[j-1], all[j]
			if y.d < x.d || (y.d == x.d && y.a < x.a) {
				all[j-1], all[j] = y, x
			} else {
				break
			}
		}
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]Attribute, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].a
	}
	return out
}
