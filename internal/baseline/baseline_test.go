package baseline

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/svm"
)

func blobs(n int, mu float64, seed uint64) *svm.Dataset {
	r := rng.New(seed)
	d := &svm.Dataset{}
	for i := 0; i < n; i++ {
		y := 1
		m := mu
		if i%2 == 1 {
			y = -1
			m = -mu
		}
		d.X = append(d.X, []float64{m + r.NormFloat64(), m + r.NormFloat64()})
		d.Y = append(d.Y, y)
	}
	return d
}

func TestLogisticSeparable(t *testing.T) {
	d := blobs(2000, 2, 1)
	l, err := TrainLogistic(d, DefaultLogistic())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := l.Accuracy(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Fatalf("logistic accuracy %v", acc)
	}
}

func TestLogisticProbabilitiesCalibratedShape(t *testing.T) {
	d := blobs(4000, 1, 2)
	l, err := TrainLogistic(d, DefaultLogistic())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range d.X {
		p, err := l.Score(d.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v", p)
		}
		sum += p
	}
	if mean := sum / float64(d.Len()); math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("mean probability %v, want ~0.5", mean)
	}
}

func TestLogisticDeterministic(t *testing.T) {
	d := blobs(300, 1, 3)
	a, _ := TrainLogistic(d, DefaultLogistic())
	b, _ := TrainLogistic(d, DefaultLogistic())
	for j := range a.Weights {
		if a.Weights[j] != b.Weights[j] {
			t.Fatal("logistic nondeterministic")
		}
	}
}

func TestLogisticParamValidation(t *testing.T) {
	d := blobs(10, 1, 1)
	bad := []LogisticParams{
		{LearnRate: 0, Epochs: 1},
		{LearnRate: 0.1, Epochs: 0},
		{LearnRate: 0.1, Epochs: 1, Lambda: -1},
	}
	for i, p := range bad {
		if _, err := TrainLogistic(d, p); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
	if _, err := TrainLogistic(&svm.Dataset{}, DefaultLogistic()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestLogisticDimensionCheck(t *testing.T) {
	l := &Logistic{Weights: []float64{1, 2}}
	if _, err := l.Score([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestRandomScorerDeterministicPerInput(t *testing.T) {
	r := &Random{Seed: 7}
	x := []float64{1, 2, 3}
	a, _ := r.Score(x)
	b, _ := r.Score(x)
	if a != b {
		t.Fatal("same input scored differently")
	}
	c, _ := r.Score([]float64{1, 2, 4})
	if a == c {
		t.Fatal("different inputs collided (suspicious)")
	}
	if a < 0 || a >= 1 {
		t.Fatalf("score %v out of [0,1)", a)
	}
}

func TestRandomScorerSeedMatters(t *testing.T) {
	x := []float64{5, 5}
	a, _ := (&Random{Seed: 1}).Score(x)
	b, _ := (&Random{Seed: 2}).Score(x)
	if a == b {
		t.Fatal("seeds produced identical scores")
	}
}

func TestRandomScoresRoughlyUniform(t *testing.T) {
	r := &Random{Seed: 3}
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		s, _ := r.Score([]float64{float64(i), float64(i * 31)})
		sum += s
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("random score mean %v", mean)
	}
}

func TestPopularityScorer(t *testing.T) {
	p := &Popularity{BaseRate: 0.21}
	a, _ := p.Score([]float64{1})
	b, _ := p.Score([]float64{99, 2})
	if a != 0.21 || b != 0.21 {
		t.Fatal("popularity must score everyone identically")
	}
}

func TestSVMScorerAdapts(t *testing.T) {
	d := blobs(1000, 2, 9)
	m, err := svm.TrainCalibrated(d, svm.PegasosTrainer(svm.DefaultPegasos()), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := &SVMScorer{Model: m}
	hi, err := s.Score([]float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := s.Score([]float64{-3, -3})
	if hi <= lo {
		t.Fatalf("svm scorer ranking broken: %v <= %v", hi, lo)
	}
}

func TestLogisticBeatsRandomOnStructure(t *testing.T) {
	d := blobs(2000, 1, 11)
	l, _ := TrainLogistic(d, DefaultLogistic())
	r := &Random{Seed: 1}
	correct := func(s Scorer) int {
		n := 0
		for i := range d.X {
			p, _ := s.Score(d.X[i])
			pred := -1
			if p >= 0.5 {
				pred = 1
			}
			if pred == d.Y[i] {
				n++
			}
		}
		return n
	}
	if correct(l) <= correct(r) {
		t.Fatal("logistic no better than random on separable data")
	}
}

func BenchmarkTrainLogistic(b *testing.B) {
	d := blobs(5000, 1, 1)
	p := LogisticParams{LearnRate: 0.1, Lambda: 1e-4, Epochs: 3, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainLogistic(d, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogisticScore(b *testing.B) {
	d := blobs(100, 1, 1)
	l, _ := TrainLogistic(d, DefaultLogistic())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Score(d.X[i%d.Len()]); err != nil {
			b.Fatal(err)
		}
	}
}
