// Package baseline implements the non-emotional comparators for the paper's
// headline claims. The paper reports SPA "improved the redemption of Push
// and newsletters campaigns in a 90 %" over the pre-SPA process; the
// reproduction quantifies that delta against explicit baselines (DESIGN.md
// A1/A2):
//
//   - Random targeting (the null campaign),
//   - Popularity / base-rate scoring (everyone gets the global rate),
//   - L2-regularized logistic regression via SGD (the standard 2006 CRM
//     scorer) trained on objective-only features,
//   - the user-kNN CF model from internal/cf, adapted to propensity.
//
// All baselines implement the same Scorer contract the campaign runner
// consumes, so they are interchangeable with the SVM.
package baseline

import (
	"errors"
	"math"

	"repro/internal/rng"
	"repro/internal/svm"
)

// Scorer maps a user feature vector to a propensity-like score. Higher
// means more likely to respond; scores need only be rank-consistent.
type Scorer interface {
	Score(x []float64) (float64, error)
}

// Random scores users uniformly at random (but deterministically per input
// via hashing) — the null baseline.
type Random struct {
	Seed uint64
}

// Score implements Scorer with a stateless hash of the feature vector, so
// equal users always get the same score and the ranking is a uniform
// shuffle.
func (r *Random) Score(x []float64) (float64, error) {
	h := r.Seed ^ 0x9e3779b97f4a7c15
	for _, v := range x {
		bits := math.Float64bits(v)
		h ^= bits
		h *= 0x100000001b3
		h ^= h >> 29
	}
	return float64(h>>11) / (1 << 53), nil
}

// Popularity assigns every user the same score — ranking is arbitrary,
// standing in for untargeted mass mailing.
type Popularity struct {
	BaseRate float64
}

// Score implements Scorer.
func (p *Popularity) Score(_ []float64) (float64, error) { return p.BaseRate, nil }

// SVMScorer adapts a calibrated svm.Model to the Scorer contract.
type SVMScorer struct {
	Model *svm.Model
}

// Score implements Scorer with the model's calibrated propensity.
func (s *SVMScorer) Score(x []float64) (float64, error) {
	return s.Model.Propensity(x)
}

// Logistic is an L2-regularized logistic regression model trained with SGD
// — the conventional pre-SVM propensity scorer.
type Logistic struct {
	Weights []float64
	Bias    float64
}

// LogisticParams configure training.
type LogisticParams struct {
	LearnRate float64
	Lambda    float64
	Epochs    int
	Seed      uint64
}

// DefaultLogistic returns calibrated defaults.
func DefaultLogistic() LogisticParams {
	return LogisticParams{LearnRate: 0.1, Lambda: 1e-4, Epochs: 15, Seed: 1}
}

// TrainLogistic fits the model on a ±1-labelled dataset (same Dataset shape
// as the SVM so the ablation harness can swap learners).
func TrainLogistic(d *svm.Dataset, p LogisticParams) (*Logistic, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if p.LearnRate <= 0 || p.Epochs < 1 || p.Lambda < 0 {
		return nil, errors.New("baseline: bad logistic params")
	}
	dim := len(d.X[0])
	w := make([]float64, dim)
	var b float64
	r := rng.New(p.Seed)
	n := d.Len()
	t := 0
	for epoch := 0; epoch < p.Epochs; epoch++ {
		for i := 0; i < n; i++ {
			t++
			idx := r.Intn(n)
			x := d.X[idx]
			y := 0.0
			if d.Y[idx] == 1 {
				y = 1
			}
			var z float64
			for j, v := range x {
				z += w[j] * v
			}
			z += b
			pred := sigmoid(z)
			grad := pred - y
			eta := p.LearnRate / (1 + p.LearnRate*p.Lambda*float64(t))
			for j, v := range x {
				w[j] -= eta * (grad*v + p.Lambda*w[j])
			}
			b -= eta * grad
		}
	}
	return &Logistic{Weights: w, Bias: b}, nil
}

// Score implements Scorer: P(y=1|x).
func (l *Logistic) Score(x []float64) (float64, error) {
	if len(x) != len(l.Weights) {
		return 0, svm.ErrDimension
	}
	var z float64
	for j, v := range x {
		z += l.Weights[j] * v
	}
	return sigmoid(z + l.Bias), nil
}

// Accuracy evaluates 0/1 accuracy at threshold 0.5.
func (l *Logistic) Accuracy(d *svm.Dataset) (float64, error) {
	if d.Len() == 0 {
		return 0, errors.New("baseline: empty dataset")
	}
	correct := 0
	for i := range d.X {
		p, err := l.Score(d.X[i])
		if err != nil {
			return 0, err
		}
		pred := -1
		if p >= 0.5 {
			pred = 1
		}
		if pred == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len()), nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
