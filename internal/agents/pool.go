package agents

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Pool is the elastic worker group behind the LifeLogs Pre-processor Agent:
// it "replicates itself" — spawning additional workers while the shared
// queue is deep, retiring them when it drains — between a configured min
// and max replica count.
type Pool struct {
	handler Handler
	queue   chan Message
	min     int
	max     int
	// scaleAt is the queue depth per live worker that triggers replication.
	scaleAt int

	mu      sync.Mutex
	workers int
	stopped bool
	wg      sync.WaitGroup

	processed atomic.Uint64
	failures  atomic.Uint64
	peak      atomic.Int64
}

// PoolConfig sizes the pool.
type PoolConfig struct {
	Min, Max int
	QueueCap int
	ScaleAt  int // queue depth per worker triggering growth; default 16
}

// NewPool starts a pool with Min workers.
func NewPool(cfg PoolConfig, handler Handler) (*Pool, error) {
	if handler == nil {
		return nil, errors.New("agents: nil handler")
	}
	if cfg.Min < 1 || cfg.Max < cfg.Min {
		return nil, errors.New("agents: need 1 <= Min <= Max")
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 1024
	}
	if cfg.ScaleAt < 1 {
		cfg.ScaleAt = 16
	}
	p := &Pool{
		handler: handler,
		queue:   make(chan Message, cfg.QueueCap),
		min:     cfg.Min,
		max:     cfg.Max,
		scaleAt: cfg.ScaleAt,
	}
	for i := 0; i < cfg.Min; i++ {
		p.spawn(true)
	}
	return p, nil
}

// spawn adds a worker; core workers never retire, elastic ones retire when
// the queue is empty.
func (p *Pool) spawn(core bool) {
	p.mu.Lock()
	if p.stopped || p.workers >= p.max {
		p.mu.Unlock()
		return
	}
	p.workers++
	if int64(p.workers) > p.peak.Load() {
		p.peak.Store(int64(p.workers))
	}
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer func() {
			p.mu.Lock()
			p.workers--
			p.mu.Unlock()
		}()
		for msg := range p.queue {
			if err := p.handler(msg); err != nil {
				p.failures.Add(1)
			}
			p.processed.Add(1)
			if !core && len(p.queue) == 0 {
				return // elastic worker retires when the burst is over
			}
		}
	}()
}

// Submit enqueues work, growing the pool when the backlog per worker
// exceeds the scale threshold. Blocks when the queue is full.
func (p *Pool) Submit(msg Message) error {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return ErrStopped
	}
	workers := p.workers
	p.mu.Unlock()
	if workers > 0 && len(p.queue) >= workers*p.scaleAt {
		p.spawn(false)
	}
	p.queue <- msg
	return nil
}

// Stop drains the queue and waits for all workers to finish.
func (p *Pool) Stop() (processed, failures uint64) {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return p.processed.Load(), p.failures.Load()
}

// Stats returns live processed/failure counters.
func (p *Pool) Stats() (processed, failures uint64) {
	return p.processed.Load(), p.failures.Load()
}

// Workers reports the current live worker count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers
}

// PeakWorkers reports the maximum simultaneous workers observed — the
// replication behaviour the paper describes.
func (p *Pool) PeakWorkers() int { return int(p.peak.Load()) }
