package agents

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAgentProcessesMessages(t *testing.T) {
	var count atomic.Int64
	a, err := NewAgent("worker", 16, func(m Message) error {
		count.Add(1)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := a.Send(Message{Topic: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	processed, failures := a.Stop()
	if processed != 100 || failures != 0 {
		t.Fatalf("processed %d failures %d", processed, failures)
	}
	if count.Load() != 100 {
		t.Fatalf("handler ran %d times", count.Load())
	}
}

func TestAgentValidation(t *testing.T) {
	h := func(Message) error { return nil }
	if _, err := NewAgent("", 1, h, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewAgent("x", 0, h, nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewAgent("x", 1, nil, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestAgentFailureCounting(t *testing.T) {
	boom := errors.New("boom")
	var sunk []error
	var mu sync.Mutex
	a, _ := NewAgent("flaky", 8, func(m Message) error {
		if m.Topic == "bad" {
			return boom
		}
		return nil
	}, func(name string, err error) {
		mu.Lock()
		sunk = append(sunk, err)
		mu.Unlock()
	})
	a.Send(Message{Topic: "good"})
	a.Send(Message{Topic: "bad"})
	a.Send(Message{Topic: "bad"})
	processed, failures := a.Stop()
	if processed != 3 || failures != 2 {
		t.Fatalf("processed %d failures %d", processed, failures)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sunk) != 2 {
		t.Fatalf("error sink got %d", len(sunk))
	}
	if !errors.Is(sunk[0], boom) {
		t.Fatalf("sink error %v", sunk[0])
	}
}

func TestSendAfterStop(t *testing.T) {
	a, _ := NewAgent("x", 1, func(Message) error { return nil }, nil)
	a.Stop()
	if err := a.Send(Message{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("send after stop: %v", err)
	}
	// Stop is idempotent.
	a.Stop()
}

func TestSupervisorRouting(t *testing.T) {
	s := NewSupervisor()
	var got atomic.Int64
	if _, err := s.Spawn("a", 4, func(Message) error { got.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("a", 4, func(Message) error { return nil }); err == nil {
		t.Fatal("duplicate spawn accepted")
	}
	if err := s.Send("a", Message{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("ghost", Message{}); err == nil {
		t.Fatal("routing to missing agent succeeded")
	}
	p, f := s.StopAll()
	if p != 1 || f != 0 {
		t.Fatalf("stopall %d %d", p, f)
	}
	if got.Load() != 1 {
		t.Fatal("message not delivered")
	}
}

func TestSupervisorCollectsErrors(t *testing.T) {
	s := NewSupervisor()
	s.Spawn("bad", 4, func(Message) error { return errors.New("fail") })
	s.Send("bad", Message{Topic: "x"})
	s.StopAll()
	errs := s.Errors()
	if len(errs) != 1 {
		t.Fatalf("%d errors recorded", len(errs))
	}
}

func TestPoolProcessesAll(t *testing.T) {
	var count atomic.Int64
	p, err := NewPool(PoolConfig{Min: 2, Max: 8, QueueCap: 64}, func(Message) error {
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := p.Submit(Message{Topic: "work"}); err != nil {
			t.Fatal(err)
		}
	}
	processed, failures := p.Stop()
	if processed != n || failures != 0 {
		t.Fatalf("processed %d failures %d", processed, failures)
	}
	if count.Load() != n {
		t.Fatalf("handler ran %d", count.Load())
	}
}

func TestPoolReplicatesUnderLoad(t *testing.T) {
	block := make(chan struct{})
	p, err := NewPool(PoolConfig{Min: 1, Max: 6, QueueCap: 256, ScaleAt: 4}, func(Message) error {
		<-block
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flood while workers are blocked → pool must replicate.
	for i := 0; i < 100; i++ {
		if err := p.Submit(Message{}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.PeakWorkers() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	peak := p.PeakWorkers()
	close(block)
	p.Stop()
	if peak < 2 {
		t.Fatalf("pool never replicated: peak %d", peak)
	}
	if peak > 6 {
		t.Fatalf("pool exceeded max: %d", peak)
	}
}

func TestPoolElasticWorkersRetire(t *testing.T) {
	p, err := NewPool(PoolConfig{Min: 1, Max: 8, QueueCap: 512, ScaleAt: 2}, func(Message) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p.Submit(Message{})
	}
	// Wait for the queue to drain, then check retirement to the core.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pr, _ := p.Stats(); pr == 500 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	deadline = time.Now().Add(2 * time.Second)
	for p.Workers() > 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w := p.Workers(); w != 1 {
		t.Fatalf("elastic workers did not retire: %d live", w)
	}
	p.Stop()
}

func TestPoolValidation(t *testing.T) {
	h := func(Message) error { return nil }
	if _, err := NewPool(PoolConfig{Min: 0, Max: 2}, h); err == nil {
		t.Fatal("min 0 accepted")
	}
	if _, err := NewPool(PoolConfig{Min: 3, Max: 2}, h); err == nil {
		t.Fatal("max < min accepted")
	}
	if _, err := NewPool(PoolConfig{Min: 1, Max: 2}, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestPoolSubmitAfterStop(t *testing.T) {
	p, _ := NewPool(PoolConfig{Min: 1, Max: 1}, func(Message) error { return nil })
	p.Stop()
	if err := p.Submit(Message{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: %v", err)
	}
}

func TestPoolCountsFailures(t *testing.T) {
	p, _ := NewPool(PoolConfig{Min: 1, Max: 1}, func(m Message) error {
		if m.Topic == "bad" {
			return errors.New("x")
		}
		return nil
	})
	p.Submit(Message{Topic: "good"})
	p.Submit(Message{Topic: "bad"})
	processed, failures := p.Stop()
	if processed != 2 || failures != 1 {
		t.Fatalf("%d/%d", processed, failures)
	}
}

func BenchmarkPoolThroughput(b *testing.B) {
	p, err := NewPool(PoolConfig{Min: 4, Max: 8, QueueCap: 4096}, func(Message) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Submit(Message{}); err != nil {
			b.Fatal(err)
		}
	}
	p.Stop()
}
