// Package agents provides the light multi-agent runtime underlying SPA's
// architecture (Fig. 3): named agents with mailboxes, a supervisor that
// routes messages and collects failures, and an elastic worker pool that
// "replicates itself in [a] pro-active way depending [on] user's
// interaction" — the LifeLogs Pre-processor Agent's scaling behaviour (§4
// component 1).
//
// The runtime is deliberately small: goroutines + channels, no reflection,
// bounded mailboxes with back-pressure, and a clean Stop that drains
// in-flight work.
package agents

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Message is the unit of agent communication.
type Message struct {
	// Topic routes the message (e.g. "lifelog.raw", "profile.update").
	Topic string
	// Payload is the opaque content.
	Payload any
}

// Handler processes one message. Returning an error reports the failure to
// the supervisor without killing the agent.
type Handler func(Message) error

// Agent is a named handler with a bounded mailbox served by one goroutine.
type Agent struct {
	name    string
	handler Handler
	mailbox chan Message
	done    chan struct{}
	wg      sync.WaitGroup

	processed atomic.Uint64
	failures  atomic.Uint64
	errSink   func(name string, err error)
}

// ErrStopped is returned when sending to a stopped agent.
var ErrStopped = errors.New("agents: agent stopped")

// NewAgent creates and starts an agent with the given mailbox capacity.
func NewAgent(name string, capacity int, handler Handler, errSink func(string, error)) (*Agent, error) {
	if name == "" {
		return nil, errors.New("agents: empty name")
	}
	if capacity < 1 {
		return nil, errors.New("agents: capacity must be >= 1")
	}
	if handler == nil {
		return nil, errors.New("agents: nil handler")
	}
	a := &Agent{
		name:    name,
		handler: handler,
		mailbox: make(chan Message, capacity),
		done:    make(chan struct{}),
		errSink: errSink,
	}
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

func (a *Agent) loop() {
	defer a.wg.Done()
	for msg := range a.mailbox {
		if err := a.handler(msg); err != nil {
			a.failures.Add(1)
			if a.errSink != nil {
				a.errSink(a.name, fmt.Errorf("%s: %w", msg.Topic, err))
			}
		}
		a.processed.Add(1)
	}
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Send enqueues a message, blocking when the mailbox is full (back-pressure
// keeps ingest from out-running the pre-processor). Sending to a stopped
// agent returns ErrStopped.
func (a *Agent) Send(msg Message) error {
	select {
	case <-a.done:
		return ErrStopped
	default:
	}
	select {
	case a.mailbox <- msg:
		return nil
	case <-a.done:
		return ErrStopped
	}
}

// Stop closes the mailbox, waits for in-flight work, and returns processing
// counters. Idempotent.
func (a *Agent) Stop() (processed, failures uint64) {
	select {
	case <-a.done:
	default:
		close(a.done)
		close(a.mailbox)
	}
	a.wg.Wait()
	return a.processed.Load(), a.failures.Load()
}

// Stats returns live counters.
func (a *Agent) Stats() (processed, failures uint64) {
	return a.processed.Load(), a.failures.Load()
}

// Supervisor owns a set of agents and a shared failure log.
type Supervisor struct {
	mu     sync.Mutex
	agents map[string]*Agent
	errs   []error
}

// NewSupervisor returns an empty supervisor.
func NewSupervisor() *Supervisor {
	return &Supervisor{agents: make(map[string]*Agent)}
}

// Spawn creates, registers and starts an agent.
func (s *Supervisor) Spawn(name string, capacity int, handler Handler) (*Agent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.agents[name]; dup {
		return nil, fmt.Errorf("agents: %q already spawned", name)
	}
	a, err := NewAgent(name, capacity, handler, s.recordError)
	if err != nil {
		return nil, err
	}
	s.agents[name] = a
	return a, nil
}

func (s *Supervisor) recordError(name string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errs = append(s.errs, fmt.Errorf("%s: %w", name, err))
}

// Send routes a message to a named agent.
func (s *Supervisor) Send(name string, msg Message) error {
	s.mu.Lock()
	a, ok := s.agents[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("agents: no agent %q", name)
	}
	return a.Send(msg)
}

// Errors returns a snapshot of recorded handler failures.
func (s *Supervisor) Errors() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.errs...)
}

// StopAll stops every agent and returns aggregate counters.
func (s *Supervisor) StopAll() (processed, failures uint64) {
	s.mu.Lock()
	agents := make([]*Agent, 0, len(s.agents))
	for _, a := range s.agents {
		agents = append(agents, a)
	}
	s.agents = make(map[string]*Agent)
	s.mu.Unlock()
	for _, a := range agents {
		p, f := a.Stop()
		processed += p
		failures += f
	}
	return processed, failures
}
