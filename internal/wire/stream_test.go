package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestStreamControlRoundTrip(t *testing.T) {
	hello := StreamHello{Credit: 32, MaxFrameBytes: 8 << 20}
	gotHello, err := DecodeStreamHello(EncodeStreamHello(hello))
	if err != nil || gotHello != hello {
		t.Fatalf("hello round-trip: %+v %v", gotHello, err)
	}
	n, err := DecodeStreamCredit(EncodeStreamCredit(7))
	if err != nil || n != 7 {
		t.Fatalf("credit round-trip: %d %v", n, err)
	}
	if err := DecodeStreamDrain(EncodeStreamDrain()); err != nil {
		t.Fatalf("drain round-trip: %v", err)
	}
	se, err := DecodeStreamError(EncodeStreamError(503, "draining"))
	if err != nil || se.Status != 503 || se.Message != "draining" {
		t.Fatalf("error round-trip: %+v %v", se, err)
	}
}

func TestStreamFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	frames := [][]byte{
		EncodeStreamHello(StreamHello{Credit: 4, MaxFrameBytes: 1 << 20}),
		EncodeIngestRequest(sampleEvents()),
		EncodeIngestResponse(IngestResponse{Processed: 5, CoalescedWith: 2}),
		EncodeStreamCredit(1),
		EncodeStreamDrain(),
	}
	for _, f := range frames {
		if err := WriteStreamFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := ReadStreamFrame(br, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %x != %x", i, got, want)
		}
	}
	// Clean close at a frame boundary is io.EOF exactly.
	if _, err := ReadStreamFrame(br, 1<<20); err != io.EOF {
		t.Fatalf("boundary EOF: %v", err)
	}
}

func TestStreamFrameReadBounds(t *testing.T) {
	// Declared length above the limit must refuse before allocating.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f}) // uvarint ~268M
	if _, err := ReadStreamFrame(bufio.NewReader(&buf), 1<<20); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized declared length: %v", err)
	}
	// Shorter than a frame header.
	buf.Reset()
	WriteStreamFrame(&buf, []byte{1, 2, 3})
	if _, err := ReadStreamFrame(bufio.NewReader(&buf), 1<<20); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short frame: %v", err)
	}
	// Cut mid-frame: io.ErrUnexpectedEOF, never a short read treated as a
	// whole frame.
	buf.Reset()
	WriteStreamFrame(&buf, EncodeStreamDrain())
	half := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadStreamFrame(bufio.NewReader(bytes.NewReader(half)), 1<<20); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame: %v", err)
	}
}

func TestStreamControlRejectsMalformed(t *testing.T) {
	hello := EncodeStreamHello(StreamHello{Credit: 8, MaxFrameBytes: 1 << 20})
	credit := EncodeStreamCredit(3)
	drain := EncodeStreamDrain()
	serr := EncodeStreamError(400, "nope")

	cases := map[string]func() error{
		"hello wrong kind":      func() error { _, err := DecodeStreamHello(credit); return err },
		"hello truncated":       func() error { _, err := DecodeStreamHello(hello[:len(hello)-1]); return err },
		"hello trailing":        func() error { _, err := DecodeStreamHello(append(append([]byte{}, hello...), 0)); return err },
		"hello zero credit":     func() error { _, err := DecodeStreamHello(EncodeStreamHello(StreamHello{Credit: 0})); return err },
		"credit wrong kind":     func() error { _, err := DecodeStreamCredit(drain); return err },
		"credit zero":           func() error { _, err := DecodeStreamCredit(EncodeStreamCredit(0)); return err },
		"credit trailing":       func() error { _, err := DecodeStreamCredit(append(append([]byte{}, credit...), 1)); return err },
		"drain with payload":    func() error { return DecodeStreamDrain(append(append([]byte{}, drain...), 0)) },
		"error wrong kind":      func() error { _, err := DecodeStreamError(hello); return err },
		"error truncated":       func() error { _, err := DecodeStreamError(serr[:binaryHeaderLen]); return err },
		"error status too low":  func() error { _, err := DecodeStreamError(EncodeStreamError(42, "x")); return err },
		"error status too high": func() error { _, err := DecodeStreamError(EncodeStreamError(900, "x")); return err },
		"kind unknown to check": func() error {
			_, err := FrameKind([]byte("SPA?\x01\x01"))
			return err
		},
	}
	for name, fn := range cases {
		if err := fn(); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err %v, want ErrBadFrame", name, err)
		}
	}
	// FrameKind on a valid frame reports the kind without judging it.
	if kind, err := FrameKind(serr); err != nil || kind != KindStreamError {
		t.Fatalf("FrameKind: %#x %v", kind, err)
	}
}

// FuzzDecodeStreamFrame is the stream decoder's safety contract: arbitrary
// bytes fed through the stream reader and every control decoder must
// either parse cleanly or error — never panic, never over-read — and
// control frames that decode must re-encode canonically.
func FuzzDecodeStreamFrame(f *testing.F) {
	seed := func(frame []byte) {
		var buf bytes.Buffer
		WriteStreamFrame(&buf, frame)
		f.Add(buf.Bytes())
	}
	seed(EncodeStreamHello(StreamHello{Credit: 32, MaxFrameBytes: 8 << 20}))
	seed(EncodeStreamCredit(1))
	seed(EncodeStreamDrain())
	seed(EncodeStreamError(503, "draining"))
	seed(EncodeIngestRequest(sampleEvents()))
	f.Add([]byte{})
	f.Add([]byte{0x05, 'S', 'P', 'A', 'B'})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			frame, err := ReadStreamFrame(br, 1<<16)
			if err != nil {
				if !errors.Is(err, ErrBadFrame) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected read error class: %v", err)
				}
				return
			}
			kind, err := FrameKind(frame)
			if err != nil {
				continue
			}
			switch kind {
			case KindStreamHello:
				if h, err := DecodeStreamHello(frame); err == nil {
					if !bytes.Equal(EncodeStreamHello(h), frame) {
						t.Fatalf("hello not canonical: %+v", h)
					}
				}
			case KindStreamCredit:
				if n, err := DecodeStreamCredit(frame); err == nil {
					if !bytes.Equal(EncodeStreamCredit(n), frame) {
						t.Fatalf("credit not canonical: %d", n)
					}
				}
			case KindStreamDrain:
				DecodeStreamDrain(frame)
			case KindStreamError:
				if se, err := DecodeStreamError(frame); err == nil {
					if !bytes.Equal(EncodeStreamError(se.Status, se.Message), frame) {
						t.Fatalf("error not canonical: %+v", se)
					}
				}
			case KindIngestRequest:
				DecodeIngestRequest(frame)
			case KindIngestResponse:
				DecodeIngestResponse(frame)
			}
		}
	})
}
