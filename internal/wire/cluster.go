package wire

// Cluster framing and DTOs. Cluster mode partitions users across spad
// nodes by keyspace slot (internal/keyspace): a versioned topology maps
// each of the 256 slots to an owning node, and rebalancing moves whole
// slot sets between nodes over the existing SPAB replication transport.
//
// Two frame kinds extend the 0x07-0x0D replication vocabulary (repl.go):
//
//	0x0E handoff-subscribe  target → source, once, first frame after the
//	                        hello on ReplPath: the slot bitmap being moved,
//	                        the wave window credit, and the requesting
//	                        node's id and client-reachable address. The
//	                        source answers with a slot-filtered snapshot
//	                        (snap-begin/chunk/end, reused verbatim) and then
//	                        slot-filtered waves carrying source-log LSNs,
//	                        which the target acks (0x0C) as stream
//	                        positions while applying them locally under its
//	                        own LSNs.
//	0x0F handoff-commit     source → target: the source has fenced writes
//	                        to the moving slots, shipped everything through
//	                        LSN, and bumped the topology to Epoch with the
//	                        target as the new owner. Ownership flips on
//	                        both sides when this frame is processed.
//
// The JSON DTOs below carry the topology map (/v1/topology) and the
// operator-facing handoff trigger (/v1/cluster/handoff).

import (
	"encoding/binary"
	"fmt"

	"repro/internal/keyspace"
)

// Handoff frame kinds, continuing repl.go's 0x07-0x0D vocabulary.
const (
	KindHandoffSubscribe = 0x0E
	KindHandoffCommit    = 0x0F
)

// maxHandoffString bounds the node id and address strings in a
// handoff-subscribe frame; both are operator-chosen short identifiers.
const maxHandoffString = 256

// HandoffSubscribe is the target's opening request on a handoff stream.
type HandoffSubscribe struct {
	// Slots is the set of slots being moved; must be non-empty.
	Slots keyspace.SlotSet
	// Window is the wave credit, exactly as in ReplSubscribe.
	Window int
	// NodeID and Addr identify the requesting (target) node: its cluster
	// node id and the address clients and peers reach it at. The source
	// records them in the topology it publishes after the flip.
	NodeID string
	Addr   string
}

// HandoffCommit is the source's final frame: ownership of the subscribed
// slots flips to the target at topology epoch Epoch, with every source
// record through LSN shipped. LSN may be zero when the source log held no
// records for the moving slots.
type HandoffCommit struct {
	LSN   uint64
	Epoch uint64
}

// EncodeHandoffSubscribe frames the target's opening request.
func EncodeHandoffSubscribe(h HandoffSubscribe) []byte {
	buf := make([]byte, 0, binaryHeaderLen+len(h.Slots)+3*binary.MaxVarintLen64+len(h.NodeID)+len(h.Addr))
	buf = appendBinaryHeader(buf, KindHandoffSubscribe)
	buf = append(buf, h.Slots[:]...)
	buf = binary.AppendUvarint(buf, uint64(h.Window))
	buf = binary.AppendUvarint(buf, uint64(len(h.NodeID)))
	buf = append(buf, h.NodeID...)
	buf = binary.AppendUvarint(buf, uint64(len(h.Addr)))
	return append(buf, h.Addr...)
}

func (r *binReader) handoffString(what string) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("%w: empty %s", ErrBadFrame, what)
	}
	if n > maxHandoffString {
		return "", fmt.Errorf("%w: %s length %d exceeds %d", ErrBadFrame, what, n, maxHandoffString)
	}
	if n > uint64(len(r.p)) {
		return "", fmt.Errorf("%w: %s length %d exceeds %d remaining bytes", ErrBadFrame, what, n, len(r.p))
	}
	s := string(r.p[:n])
	r.p = r.p[n:]
	return s, nil
}

// DecodeHandoffSubscribe parses a handoff-subscribe frame.
func DecodeHandoffSubscribe(frame []byte) (HandoffSubscribe, error) {
	payload, err := checkBinaryHeader(frame, KindHandoffSubscribe)
	if err != nil {
		return HandoffSubscribe{}, err
	}
	r := binReader{p: payload}
	var h HandoffSubscribe
	if len(r.p) < len(h.Slots) {
		return HandoffSubscribe{}, fmt.Errorf("%w: handoff slot bitmap truncated (%d of %d bytes)", ErrBadFrame, len(r.p), len(h.Slots))
	}
	copy(h.Slots[:], r.p)
	r.p = r.p[len(h.Slots):]
	if h.Slots.Count() == 0 {
		return HandoffSubscribe{}, fmt.Errorf("%w: handoff subscribe names no slots", ErrBadFrame)
	}
	window, err := r.uvarint()
	if err != nil {
		return HandoffSubscribe{}, err
	}
	if window == 0 || window > MaxStreamCredit {
		return HandoffSubscribe{}, fmt.Errorf("%w: handoff window %d outside (0, 2^20]", ErrBadFrame, window)
	}
	h.Window = int(window)
	if h.NodeID, err = r.handoffString("handoff node id"); err != nil {
		return HandoffSubscribe{}, err
	}
	if h.Addr, err = r.handoffString("handoff node addr"); err != nil {
		return HandoffSubscribe{}, err
	}
	if len(r.p) != 0 {
		return HandoffSubscribe{}, fmt.Errorf("%w: %d trailing bytes after handoff subscribe", ErrBadFrame, len(r.p))
	}
	return h, nil
}

// EncodeHandoffCommit frames the source's ownership flip.
func EncodeHandoffCommit(c HandoffCommit) []byte {
	buf := make([]byte, 0, binaryHeaderLen+2*binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindHandoffCommit)
	buf = binary.AppendUvarint(buf, c.LSN)
	return binary.AppendUvarint(buf, c.Epoch)
}

// DecodeHandoffCommit parses a handoff-commit frame.
func DecodeHandoffCommit(frame []byte) (HandoffCommit, error) {
	payload, err := checkBinaryHeader(frame, KindHandoffCommit)
	if err != nil {
		return HandoffCommit{}, err
	}
	r := binReader{p: payload}
	var c HandoffCommit
	if c.LSN, err = r.uvarint(); err != nil {
		return HandoffCommit{}, err
	}
	if c.Epoch, err = r.uvarint(); err != nil {
		return HandoffCommit{}, err
	}
	if c.Epoch == 0 {
		return HandoffCommit{}, fmt.Errorf("%w: handoff commit epoch 0 (epochs start at 1)", ErrBadFrame)
	}
	if len(r.p) != 0 {
		return HandoffCommit{}, fmt.Errorf("%w: %d trailing bytes after handoff commit", ErrBadFrame, len(r.p))
	}
	return c, nil
}

// OwnerHeader and EpochHeader accompany a 421 bounce: the owning node's
// client-reachable address (host:port) and the topology epoch the bouncing
// node served under. A routing client retries once against OwnerHeader and
// refreshes its cached map.
const (
	OwnerHeader = "X-SPA-Owner"
	EpochHeader = "X-SPA-Epoch"
)

// TopologyPath is the endpoint serving the cluster's slot map.
const TopologyPath = "/v1/topology"

// HandoffPath is the operator endpoint that makes the receiving node pull
// slots from their current owners.
const HandoffPath = "/v1/cluster/handoff"

// Topology is the GET /v1/topology body: the versioned slot → node map.
// Epochs are monotonic; a node adopts any map with a higher epoch than its
// own, so every ownership change must bump the epoch exactly once.
type Topology struct {
	Epoch uint64 `json:"epoch"`
	// NodeID is the answering node's id — the client learns which replica
	// it asked, and peers gossiping the map learn who published it.
	NodeID string `json:"node_id"`
	// Nodes maps node id → client-reachable base address.
	Nodes map[string]string `json:"nodes"`
	// Slots has exactly keyspace.NumSlots entries; Slots[i] is the node id
	// owning slot i.
	Slots []string `json:"slots"`
}

// Validate checks the structural invariants a routing client relies on.
func (t *Topology) Validate() error {
	if t.Epoch == 0 {
		return fmt.Errorf("wire: topology epoch 0 (epochs start at 1)")
	}
	if len(t.Slots) != keyspace.NumSlots {
		return fmt.Errorf("wire: topology has %d slots, want %d", len(t.Slots), keyspace.NumSlots)
	}
	for id, addr := range t.Nodes {
		if addr == "" {
			// An empty address would silently become a "http://" client
			// route and an empty X-SPA-Owner bounce target downstream.
			return fmt.Errorf("wire: node %q has an empty address", id)
		}
	}
	for i, owner := range t.Slots {
		if _, ok := t.Nodes[owner]; !ok {
			return fmt.Errorf("wire: slot %d owned by unknown node %q", i, owner)
		}
	}
	return nil
}

// HandoffRequest is the POST /v1/cluster/handoff body. The receiving node
// pulls the named slots (and/or every slot currently owned by FromNode)
// from their owners and becomes their owner. Slots it already owns are
// ignored.
type HandoffRequest struct {
	Slots    []int  `json:"slots,omitempty"`
	FromNode string `json:"from_node,omitempty"`
}

// HandoffResponse reports a completed handoff: how many slots moved and
// the topology epoch after the final flip (unchanged if nothing moved).
type HandoffResponse struct {
	Moved int    `json:"moved"`
	Epoch uint64 `json:"epoch"`
}
