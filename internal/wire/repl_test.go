package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestReplSubscribeRoundTrip(t *testing.T) {
	got, err := DecodeReplSubscribe(EncodeReplSubscribe(ReplSubscribe{FromLSN: 42, Window: 64}))
	if err != nil {
		t.Fatal(err)
	}
	if got.FromLSN != 42 || got.Window != 64 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeReplSubscribe(EncodeReplSubscribe(ReplSubscribe{FromLSN: 0, Window: 8})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("from_lsn 0 accepted: %v", err)
	}
	if _, err := DecodeReplSubscribe(EncodeReplSubscribe(ReplSubscribe{FromLSN: 1, Window: 0})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("window 0 accepted: %v", err)
	}
	if _, err := DecodeReplSubscribe(EncodeReplSubscribe(ReplSubscribe{FromLSN: 1, Window: MaxStreamCredit + 1})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized window accepted: %v", err)
	}
}

func TestReplWaveRoundTrip(t *testing.T) {
	in := ReplWave{
		LSN:        7,
		Annotation: []byte("interactions-blob"),
		Entries: []ReplEntry{
			{Key: []byte("sum/a"), Value: []byte{1, 2, 3}},
			{Key: []byte("sum/b"), Tombstone: true},
			{Key: []byte("k"), Value: nil}, // empty value is legal
		},
	}
	got, err := DecodeReplWave(EncodeReplWave(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != in.LSN || !bytes.Equal(got.Annotation, in.Annotation) {
		t.Fatalf("round trip = %+v", got)
	}
	if len(got.Entries) != len(in.Entries) {
		t.Fatalf("entry count = %d", len(got.Entries))
	}
	for i := range in.Entries {
		if !bytes.Equal(got.Entries[i].Key, in.Entries[i].Key) ||
			!bytes.Equal(got.Entries[i].Value, in.Entries[i].Value) ||
			got.Entries[i].Tombstone != in.Entries[i].Tombstone {
			t.Fatalf("entry %d = %+v, want %+v", i, got.Entries[i], in.Entries[i])
		}
	}
	// No-annotation waves stay legal and distinct from empty-entry waves.
	if _, err := DecodeReplWave(EncodeReplWave(ReplWave{LSN: 1, Entries: []ReplEntry{{Key: []byte("k")}}})); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReplWave(EncodeReplWave(ReplWave{LSN: 1})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty wave accepted: %v", err)
	}
	if _, err := DecodeReplWave(EncodeReplWave(ReplWave{LSN: 0, Entries: []ReplEntry{{Key: []byte("k")}}})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("lsn 0 accepted: %v", err)
	}
}

func TestReplSnapshotFramesRoundTrip(t *testing.T) {
	begin, err := DecodeReplSnapshotBegin(EncodeReplSnapshotBegin(ReplSnapshotBegin{SnapshotLSN: 99, Pairs: 12345}))
	if err != nil {
		t.Fatal(err)
	}
	if begin.SnapshotLSN != 99 || begin.Pairs != 12345 {
		t.Fatalf("begin = %+v", begin)
	}

	pairs := []ReplEntry{
		{Key: []byte("sum/a"), Value: []byte("profile-a")},
		{Key: []byte("sum/b"), Value: []byte{}},
	}
	got, err := DecodeReplSnapshotChunk(EncodeReplSnapshotChunk(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0].Key, pairs[0].Key) || !bytes.Equal(got[0].Value, pairs[0].Value) {
		t.Fatalf("chunk = %+v", got)
	}
	if _, err := DecodeReplSnapshotChunk(EncodeReplSnapshotChunk(nil)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty chunk accepted: %v", err)
	}
	if _, err := DecodeReplSnapshotChunk(EncodeReplSnapshotChunk([]ReplEntry{{Key: []byte("k"), Tombstone: true}})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("tombstone in snapshot accepted: %v", err)
	}

	end, err := DecodeReplSnapshotEnd(EncodeReplSnapshotEnd(99))
	if err != nil || end != 99 {
		t.Fatalf("end = %d, %v", end, err)
	}
}

func TestReplAckHeartbeatRoundTrip(t *testing.T) {
	ack, err := DecodeReplAck(EncodeReplAck(1234))
	if err != nil || ack != 1234 {
		t.Fatalf("ack = %d, %v", ack, err)
	}
	hb, err := DecodeReplHeartbeat(EncodeReplHeartbeat(5678))
	if err != nil || hb != 5678 {
		t.Fatalf("heartbeat = %d, %v", hb, err)
	}
	// The kinds must not cross-decode.
	if _, err := DecodeReplAck(EncodeReplHeartbeat(1)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("heartbeat decoded as ack: %v", err)
	}
}

func TestReplFrameKindsDispatch(t *testing.T) {
	frames := map[byte][]byte{
		KindReplSubscribe:     EncodeReplSubscribe(ReplSubscribe{FromLSN: 1, Window: 1}),
		KindReplWave:          EncodeReplWave(ReplWave{LSN: 1, Entries: []ReplEntry{{Key: []byte("k")}}}),
		KindReplSnapshotBegin: EncodeReplSnapshotBegin(ReplSnapshotBegin{SnapshotLSN: 1}),
		KindReplSnapshotChunk: EncodeReplSnapshotChunk([]ReplEntry{{Key: []byte("k")}}),
		KindReplSnapshotEnd:   EncodeReplSnapshotEnd(1),
		KindReplAck:           EncodeReplAck(1),
		KindReplHeartbeat:     EncodeReplHeartbeat(1),
		KindHandoffSubscribe:  EncodeHandoffSubscribe(testHandoffSubscribe()),
		KindHandoffCommit:     EncodeHandoffCommit(HandoffCommit{LSN: 1, Epoch: 1}),
	}
	for want, frame := range frames {
		kind, err := FrameKind(frame)
		if err != nil {
			t.Fatal(err)
		}
		if kind != want {
			t.Fatalf("FrameKind = %#x, want %#x", kind, want)
		}
	}
}

// decodeAnyReplFrame dispatches like a stream endpoint would; the fuzz
// target drives it to prove no frame input can panic a replication peer.
func decodeAnyReplFrame(frame []byte) {
	kind, err := FrameKind(frame)
	if err != nil {
		return
	}
	switch kind {
	case KindReplSubscribe:
		DecodeReplSubscribe(frame)
	case KindReplWave:
		DecodeReplWave(frame)
	case KindReplSnapshotBegin:
		DecodeReplSnapshotBegin(frame)
	case KindReplSnapshotChunk:
		DecodeReplSnapshotChunk(frame)
	case KindReplSnapshotEnd:
		DecodeReplSnapshotEnd(frame)
	case KindReplAck:
		DecodeReplAck(frame)
	case KindReplHeartbeat:
		DecodeReplHeartbeat(frame)
	case KindHandoffSubscribe:
		DecodeHandoffSubscribe(frame)
	case KindHandoffCommit:
		DecodeHandoffCommit(frame)
	}
}

func FuzzDecodeReplFrame(f *testing.F) {
	f.Add(EncodeReplSubscribe(ReplSubscribe{FromLSN: 7, Window: 32}))
	f.Add(EncodeReplWave(ReplWave{LSN: 9, Annotation: []byte("a"), Entries: []ReplEntry{
		{Key: []byte("sum/x"), Value: []byte("v")},
		{Key: []byte("gone"), Tombstone: true},
	}}))
	f.Add(EncodeReplSnapshotBegin(ReplSnapshotBegin{SnapshotLSN: 3, Pairs: 2}))
	f.Add(EncodeReplSnapshotChunk([]ReplEntry{{Key: []byte("k"), Value: []byte("v")}}))
	f.Add(EncodeReplSnapshotEnd(3))
	f.Add(EncodeReplAck(3))
	f.Add(EncodeReplHeartbeat(4))
	f.Add(EncodeHandoffSubscribe(testHandoffSubscribe()))
	f.Add(EncodeHandoffCommit(HandoffCommit{LSN: 12, Epoch: 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeAnyReplFrame(data)
	})
}

func TestDecodeReplTruncations(t *testing.T) {
	// Every prefix of every valid frame must decode to an error, not a
	// panic or a silent success.
	frames := [][]byte{
		EncodeReplSubscribe(ReplSubscribe{FromLSN: 300, Window: 500}),
		EncodeReplWave(ReplWave{LSN: 300, Annotation: []byte("meta"), Entries: []ReplEntry{
			{Key: []byte("key-one"), Value: []byte("value-one")},
			{Key: []byte("key-two"), Tombstone: true},
		}}),
		EncodeReplSnapshotChunk([]ReplEntry{{Key: []byte("key"), Value: []byte("value")}}),
		EncodeHandoffSubscribe(testHandoffSubscribe()),
	}
	for _, frame := range frames {
		kind, err := FrameKind(frame)
		if err != nil {
			t.Fatal(err)
		}
		for cut := binaryHeaderLen; cut < len(frame); cut++ {
			truncated := frame[:cut]
			var derr error
			switch kind {
			case KindReplSubscribe:
				_, derr = DecodeReplSubscribe(truncated)
			case KindReplWave:
				_, derr = DecodeReplWave(truncated)
			case KindReplSnapshotChunk:
				_, derr = DecodeReplSnapshotChunk(truncated)
			case KindHandoffSubscribe:
				_, derr = DecodeHandoffSubscribe(truncated)
			}
			if derr == nil {
				t.Fatalf("kind %#x truncated at %d/%d decoded cleanly", kind, cut, len(frame))
			}
		}
	}
}
