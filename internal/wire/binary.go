package wire

// Binary framing for the ingest hot path. HTTP/JSON costs several µs per
// event to encode and decode — enough to cap the coalescing win on
// CPU-bound hosts (spabench [S2]) — so /v1/ingest negotiates a
// length-prefixed binary frame via Content-Type instead:
//
//	Content-Type: application/x-spa-binary
//
// The frame is versioned and self-describing enough to fail loudly on
// anything it does not recognise:
//
//	[4] magic "SPAB"
//	[1] version (0x01)
//	[1] kind    (0x01 ingest request, 0x02 ingest response)
//	payload
//
// Request payload: a uvarint record count, then per event one
// varint-prefixed record — a uvarint byte length followed by
//
//	uvarint user_id
//	varint  time_unix_nano
//	[1]     type
//	uvarint action
//	uvarint float32 bits of value
//	uvarint campaign
//
// Response payload: varint processed, varint skipped_unknown,
// varint coalesced_with.
//
// The per-record length prefix lets a decoder skip or bound a record
// without understanding every field, and gives future versions room to
// append fields (old fields decode, the length says where the record
// ends). Encode/decode round-trip exactly against the JSON DTOs: the
// fields are the same ones Event carries, value travels as its IEEE-754
// bit pattern, so even NaN payloads survive. Decoding malformed or
// truncated input returns ErrBadFrame-wrapped errors — never panics
// (FuzzDecodeIngestRequest enforces this) — and never trusts a declared
// count or length beyond the bytes actually present.
//
// Error responses are not framed: non-2xx ingest answers keep the JSON
// Error body, so status handling is one code path for both protocols.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"mime"
	"strings"
)

// ContentTypeBinary negotiates the binary ingest framing; anything else on
// /v1/ingest is treated as JSON. A server with the framing disabled answers
// it with 415, which clients take as "speak JSON here from now on".
const ContentTypeBinary = "application/x-spa-binary"

// ErrBadFrame wraps every binary decode failure: wrong magic, wrong
// version, wrong kind, truncation, oversized records, trailing garbage.
var ErrBadFrame = errors.New("wire: bad binary frame")

var binaryMagic = [4]byte{'S', 'P', 'A', 'B'}

// Frame kinds. 0x01/0x02 are the PR 3 per-request vocabulary; 0x03-0x06
// are the stream-control records of stream.go, carved out of the room the
// kind byte reserved.
const (
	KindIngestRequest  = 0x01
	KindIngestResponse = 0x02
	KindStreamHello    = 0x03
	KindStreamCredit   = 0x04
	KindStreamDrain    = 0x05
	KindStreamError    = 0x06
)

const (
	binaryVersion = 0x01

	binaryHeaderLen = 6

	// minRecordLen is the smallest legal record (every field present,
	// single-byte varints); maxRecordLen bounds the largest (worst-case
	// varints sum to 36 bytes) with headroom for appended v2 fields.
	minRecordLen = 6
	maxRecordLen = 64
)

// IsBinaryContentType reports whether a Content-Type header selects the
// binary ingest framing, ignoring media-type parameters. The media type
// must match exactly: when the parameter section is malformed
// (mime.ParseMediaType errors), only the bare type before the first ';'
// is compared — a prefix fallback would let a header like
// "application/x-spa-binaryX;;" select the binary path and feed JSON-era
// decoders frames they never negotiated.
func IsBinaryContentType(ct string) bool {
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		mt = strings.ToLower(strings.TrimSpace(strings.SplitN(ct, ";", 2)[0]))
	}
	return mt == ContentTypeBinary
}

func appendBinaryHeader(buf []byte, kind byte) []byte {
	buf = append(buf, binaryMagic[:]...)
	return append(buf, binaryVersion, kind)
}

// checkBinaryHeader validates magic/version/kind and returns the payload.
func checkBinaryHeader(data []byte, kind byte) ([]byte, error) {
	if len(data) < binaryHeaderLen {
		return nil, fmt.Errorf("%w: %d-byte frame shorter than header", ErrBadFrame, len(data))
	}
	if [4]byte(data[:4]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFrame, data[:4])
	}
	if data[4] != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, data[4])
	}
	if data[5] != kind {
		return nil, fmt.Errorf("%w: frame kind %d, want %d", ErrBadFrame, data[5], kind)
	}
	return data[binaryHeaderLen:], nil
}

// binReader is a bounds-checked cursor over a frame payload.
type binReader struct{ p []byte }

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.p)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint", ErrBadFrame)
	}
	r.p = r.p[n:]
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.p)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrBadFrame)
	}
	r.p = r.p[n:]
	return v, nil
}

func (r *binReader) byte() (byte, error) {
	if len(r.p) == 0 {
		return 0, fmt.Errorf("%w: truncated byte field", ErrBadFrame)
	}
	b := r.p[0]
	r.p = r.p[1:]
	return b, nil
}

func (r *binReader) uvarint32(field string) (uint32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("%w: %s %d overflows uint32", ErrBadFrame, field, v)
	}
	return uint32(v), nil
}

// EncodeIngestRequest frames one event batch.
func EncodeIngestRequest(events []Event) []byte {
	// ~17 bytes/record for realistic ids and nano timestamps; one alloc
	// for typical batches.
	buf := make([]byte, 0, binaryHeaderLen+binary.MaxVarintLen64+len(events)*20)
	buf = appendBinaryHeader(buf, KindIngestRequest)
	buf = binary.AppendUvarint(buf, uint64(len(events)))
	var rec [maxRecordLen]byte
	for _, e := range events {
		r := rec[:0]
		r = binary.AppendUvarint(r, e.UserID)
		r = binary.AppendVarint(r, e.TimeUnixNano)
		r = append(r, e.Type)
		r = binary.AppendUvarint(r, uint64(e.Action))
		r = binary.AppendUvarint(r, uint64(math.Float32bits(e.Value)))
		r = binary.AppendUvarint(r, uint64(e.Campaign))
		buf = binary.AppendUvarint(buf, uint64(len(r)))
		buf = append(buf, r...)
	}
	return buf
}

// DecodeIngestRequest parses a framed event batch. The declared record
// count is never trusted for allocation beyond what the remaining bytes
// could actually hold.
func DecodeIngestRequest(data []byte) ([]Event, error) {
	payload, err := checkBinaryHeader(data, KindIngestRequest)
	if err != nil {
		return nil, err
	}
	r := binReader{p: payload}
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every record costs at least 1 length byte + minRecordLen payload.
	if maxPossible := uint64(len(r.p)) / (1 + minRecordLen); count > maxPossible {
		return nil, fmt.Errorf("%w: %d records declared, at most %d fit in %d bytes",
			ErrBadFrame, count, maxPossible, len(r.p))
	}
	events := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		recLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if recLen < minRecordLen || recLen > maxRecordLen {
			return nil, fmt.Errorf("%w: record %d length %d outside [%d, %d]",
				ErrBadFrame, i, recLen, minRecordLen, maxRecordLen)
		}
		if recLen > uint64(len(r.p)) {
			return nil, fmt.Errorf("%w: record %d length %d exceeds %d remaining bytes",
				ErrBadFrame, i, recLen, len(r.p))
		}
		rec := binReader{p: r.p[:recLen]}
		r.p = r.p[recLen:]
		var e Event
		if e.UserID, err = rec.uvarint(); err != nil {
			return nil, err
		}
		if e.TimeUnixNano, err = rec.varint(); err != nil {
			return nil, err
		}
		if e.Type, err = rec.byte(); err != nil {
			return nil, err
		}
		if e.Action, err = rec.uvarint32("action"); err != nil {
			return nil, err
		}
		bits, err := rec.uvarint32("value bits")
		if err != nil {
			return nil, err
		}
		e.Value = math.Float32frombits(bits)
		if e.Campaign, err = rec.uvarint32("campaign"); err != nil {
			return nil, err
		}
		// A v1 decoder must see exactly the v1 fields; a longer record is
		// a future version's, and ours would have bumped the version byte.
		if len(rec.p) != 0 {
			return nil, fmt.Errorf("%w: record %d has %d trailing bytes", ErrBadFrame, i, len(rec.p))
		}
		events = append(events, e)
	}
	if len(r.p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d records", ErrBadFrame, len(r.p), count)
	}
	return events, nil
}

// EncodeIngestResponse frames one ingest outcome.
func EncodeIngestResponse(resp IngestResponse) []byte {
	buf := make([]byte, 0, binaryHeaderLen+3*binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindIngestResponse)
	buf = binary.AppendVarint(buf, int64(resp.Processed))
	buf = binary.AppendVarint(buf, int64(resp.SkippedUnknown))
	return binary.AppendVarint(buf, int64(resp.CoalescedWith))
}

// DecodeIngestResponse parses a framed ingest outcome.
func DecodeIngestResponse(data []byte) (IngestResponse, error) {
	payload, err := checkBinaryHeader(data, KindIngestResponse)
	if err != nil {
		return IngestResponse{}, err
	}
	r := binReader{p: payload}
	var resp IngestResponse
	read := func(dst *int) {
		if err != nil {
			return
		}
		var v int64
		if v, err = r.varint(); err == nil {
			*dst = int(v)
		}
	}
	read(&resp.Processed)
	read(&resp.SkippedUnknown)
	read(&resp.CoalescedWith)
	if err != nil {
		return IngestResponse{}, err
	}
	if len(r.p) != 0 {
		return IngestResponse{}, fmt.Errorf("%w: %d trailing bytes after response", ErrBadFrame, len(r.p))
	}
	return resp, nil
}
