// Package wire defines the types of the SPA serving API — the single
// vocabulary shared by the spad daemon (internal/server) and the Go client
// (internal/spaclient), so the two cannot drift apart. The baseline
// protocol is plain HTTP/JSON: every message is one object, timestamps
// travel as Unix nanoseconds, and enumerations travel as the lowercase
// names the paper uses. The ingest hot path additionally negotiates a
// length-prefixed binary framing of the same DTOs (binary.go) via
// Content-Type, with JSON as the universal fallback.
package wire

import (
	"fmt"
	"time"

	"repro/internal/emotion"
	"repro/internal/lifelog"
)

// Event is the wire form of one LifeLog event.
type Event struct {
	UserID uint64 `json:"user_id"`
	// TimeUnixNano is the event instant as Unix nanoseconds; per-user event
	// streams must be non-decreasing, as everywhere in the LifeLog pipeline.
	TimeUnixNano int64   `json:"time_unix_nano"`
	Type         uint8   `json:"type"`
	Action       uint32  `json:"action"`
	Value        float32 `json:"value,omitempty"`
	Campaign     uint32  `json:"campaign,omitempty"`
}

// FromEvent converts a LifeLog event to its wire form.
func FromEvent(e lifelog.Event) Event {
	return Event{
		UserID:       e.UserID,
		TimeUnixNano: e.Time.UnixNano(),
		Type:         uint8(e.Type),
		Action:       e.Action,
		Value:        e.Value,
		Campaign:     e.Campaign,
	}
}

// Lifelog converts the wire event back to the domain type.
func (e Event) Lifelog() lifelog.Event {
	return lifelog.Event{
		UserID:   e.UserID,
		Time:     time.Unix(0, e.TimeUnixNano),
		Type:     lifelog.EventType(e.Type),
		Action:   e.Action,
		Value:    e.Value,
		Campaign: e.Campaign,
	}
}

// ToEvents converts a wire batch to domain events.
func ToEvents(in []Event) []lifelog.Event {
	out := make([]lifelog.Event, len(in))
	for i, e := range in {
		out[i] = e.Lifelog()
	}
	return out
}

// FromEvents converts domain events to a wire batch.
func FromEvents(in []lifelog.Event) []Event {
	out := make([]Event, len(in))
	for i, e := range in {
		out[i] = FromEvent(e)
	}
	return out
}

// RegisterRequest creates a Smart User Model.
type RegisterRequest struct {
	UserID    uint64    `json:"user_id"`
	Objective []float64 `json:"objective,omitempty"`
}

// IngestRequest carries one submitter's event batch.
type IngestRequest struct {
	Events []Event `json:"events"`
}

// IngestResponse reports the batch's outcome. CoalescedWith is the number
// of requests (including this one) that shared the group commit — 1 when
// the request committed alone.
type IngestResponse struct {
	Processed      int `json:"processed"`
	SkippedUnknown int `json:"skipped_unknown"`
	CoalescedWith  int `json:"coalesced_with"`
}

// Question is one Gradual EIT item.
type Question struct {
	ID      int      `json:"id"`
	Branch  string   `json:"branch"`
	Prompt  string   `json:"prompt"`
	Options []string `json:"options"`
}

// AnswerRequest submits a Gradual EIT answer.
type AnswerRequest struct {
	ItemID int `json:"item_id"`
	Option int `json:"option"`
}

// AttributesRequest names emotional attributes for reward/punish, by their
// lowercase paper names ("lively", "frightened", ...).
type AttributesRequest struct {
	Attributes []string `json:"attributes"`
}

// ToAttributes resolves the names.
func (r AttributesRequest) ToAttributes() ([]emotion.Attribute, error) {
	if len(r.Attributes) == 0 {
		return nil, fmt.Errorf("wire: no attributes named")
	}
	out := make([]emotion.Attribute, len(r.Attributes))
	for i, n := range r.Attributes {
		a, err := emotion.ParseAttribute(n)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// AttributeNames is the inverse of AttributesRequest.ToAttributes.
func AttributeNames(attrs []emotion.Attribute) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = a.String()
	}
	return out
}

// PropensityResponse is the calibrated response probability.
type PropensityResponse struct {
	Propensity float64 `json:"propensity"`
}

// SensibilitiesResponse maps attribute name → absolute sensibility weight.
type SensibilitiesResponse struct {
	Sensibilities map[string]float64 `json:"sensibilities"`
}

// SelectTopResponse ranks users by propensity, best first. Skipped counts
// registered profiles the model could not score (the ranking is still
// valid without them); zero in the common case.
type SelectTopResponse struct {
	UserIDs []uint64 `json:"user_ids"`
	Skipped int      `json:"skipped,omitempty"`
}

// AdviceResponse is the SUM advice-stage excitation/inhibition vector,
// keyed by attribute name.
type AdviceResponse struct {
	Domain     string             `json:"domain"`
	Excitation map[string]float64 `json:"excitation"`
}

// Recommendation is one ranked action.
type Recommendation struct {
	Action uint32  `json:"action"`
	Score  float64 `json:"score"`
}

// RecommendResponse is the individualized action ranking, best first.
type RecommendResponse struct {
	Recommendations []Recommendation `json:"recommendations"`
}

// Error is the uniform error body; Message is safe to show to operators.
type Error struct {
	Message string `json:"error"`
}

// Health is the liveness body. /healthz answers it with Status "ok" while
// the process lives; /readyz answers it with Status "ok" (200) until drain
// begins, then "draining" (503) so load balancers stop routing before the
// listener dies.
type Health struct {
	Status string `json:"status"`
	Users  int    `json:"users"`
}

// ReplFollowerStatus is one live replication session seen from the
// leader: the follower's cumulative acknowledged position and how far it
// trails the leader's committed head.
type ReplFollowerStatus struct {
	AckedLSN uint64 `json:"acked_lsn"`
	LagWaves uint64 `json:"lag_waves"`
	// LagBytes is the wave payload in flight to this follower — sent but
	// not yet acknowledged.
	LagBytes int64 `json:"lag_bytes"`
}

// ReplicationStatus is the GET /v1/replication/status body. Role is
// "leader" (a durable instance, whether or not anyone subscribed),
// "follower" (Options.FollowerOf), or "none" (in-memory: no log to ship).
// Fields beyond the role/position pair are populated per role.
type ReplicationStatus struct {
	Role       string `json:"role"`
	AppliedLSN uint64 `json:"applied_lsn"`
	// LogFloorLSN is the oldest retained log position; followers resuming
	// below it bootstrap from a snapshot.
	LogFloorLSN uint64 `json:"log_floor_lsn,omitempty"`
	// LagWaves is the worst follower lag (leader) or this follower's own
	// lag behind LeaderLSN (follower). LagBytes is the matching in-flight
	// wave payload, known only on the leader.
	LagWaves uint64 `json:"lag_waves"`
	LagBytes int64  `json:"lag_bytes,omitempty"`
	// SnapshotBytes counts snapshot bytes shipped to bootstrapping
	// followers (leader) or restored at bootstrap (follower).
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`

	// Follower-only fields.
	Leader string `json:"leader,omitempty"`
	// State is "connecting", "streaming", or "stalled" (the follower fell
	// behind the leader's retained history and needs a restart to
	// re-bootstrap; it keeps serving stale reads meanwhile).
	State                 string `json:"state,omitempty"`
	LeaderLSN             uint64 `json:"leader_lsn,omitempty"`
	LastHeartbeatUnixNano int64  `json:"last_heartbeat_unix_nano,omitempty"`

	// Leader-only: one entry per live replication session.
	Followers []ReplFollowerStatus `json:"followers,omitempty"`

	// Cluster-only: this node's id and the topology epoch it is serving
	// under, so an operator can tell from one status body whether the
	// cluster has converged on a map.
	NodeID        string `json:"node_id,omitempty"`
	TopologyEpoch uint64 `json:"topology_epoch,omitempty"`
}

// Histogram is the wire form of one obs latency histogram: per-bucket
// (non-cumulative) observation counts over the shared log-spaced bounds
// published in Metrics.StageBoundsNanos, with trailing zero buckets
// trimmed. SumNanos is the total observed time.
type Histogram struct {
	Count    uint64   `json:"count"`
	SumNanos uint64   `json:"sum_nanos"`
	Counts   []uint64 `json:"counts,omitempty"`
}

// WaveTrace is the wire form of one coalescer wave's stage timeline
// (GET /debug/waves). All stage fields are nanoseconds; QueueWait is the
// longest pre-gather queue wait among the wave's requests, CommitWait the
// pipelined handoff stall, WALSync the slice of Commit spent in the
// store's fsync. Total is gather→commit (queue wait overlaps the previous
// wave and is excluded).
type WaveTrace struct {
	ID              uint64 `json:"id"`
	StartUnixNano   int64  `json:"start_unix_nano"`
	Requests        int    `json:"requests"`
	Events          int    `json:"events"`
	Shards          int    `json:"shards"`
	QueueWaitNanos  int64  `json:"queue_wait_nanos"`
	GatherNanos     int64  `json:"gather_nanos"`
	PrepareNanos    int64  `json:"prepare_nanos"`
	CommitWaitNanos int64  `json:"commit_wait_nanos"`
	CommitNanos     int64  `json:"commit_nanos"`
	WALSyncNanos    int64  `json:"wal_sync_nanos"`
	TotalNanos      int64  `json:"total_nanos"`
	Err             bool   `json:"err,omitempty"`
}

// WavesResponse is the GET /debug/waves body, newest wave first.
type WavesResponse struct {
	Waves []WaveTrace `json:"waves"`
}

// Metrics is the /metrics snapshot: serving-layer counters plus the
// embedded store's internals.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Users         int     `json:"users"`

	// Request counters.
	Requests      uint64 `json:"requests"`
	RequestErrors uint64 `json:"request_errors"`

	// Ingest path: the coalescer's accounting. IngestRequests counts
	// arrivals; IngestBinary the subset that negotiated the binary
	// framing; IngestEvents counts events actually handed to the core in
	// group commits (rejected requests are excluded).
	IngestRequests uint64 `json:"ingest_requests"`
	IngestBinary   uint64 `json:"ingest_binary"`
	IngestEvents   uint64 `json:"ingest_events"`
	IngestRejected uint64 `json:"ingest_rejected"` // 503: pending queue full
	IngestCommits  uint64 `json:"ingest_commits"`  // group commits dispatched
	// CoalescedRequests sums requests over commits; CoalescedRequests /
	// IngestCommits is the mean group size, MaxCoalesced the largest.
	CoalescedRequests uint64 `json:"coalesced_requests"`
	MaxCoalesced      int    `json:"max_coalesced"`
	QueueDepth        int    `json:"queue_depth"`
	QueueCapacity     int    `json:"queue_capacity"`
	// Pipelined-dispatcher instrumentation (spad -pipeline): PipelineDepth
	// gauges waves currently in flight (≤ 2); PipelineOverlap counts waves
	// whose prepare finished while an earlier wave was still in flight —
	// measured concurrency, not an assumption. Both stay zero under the
	// serialized dispatcher.
	PipelineDepth   int    `json:"pipeline_depth"`
	PipelineOverlap uint64 `json:"pipeline_overlap"`
	// Streamed ingest: StreamConns gauges live stream sessions,
	// StreamFrames counts ingest request frames received over streams (a
	// subset of IngestRequests).
	StreamConns  int    `json:"stream_conns"`
	StreamFrames uint64 `json:"stream_frames"`

	// Read path (core epoch snapshots, DESIGN.md §8). SnapshotEpoch is the
	// current read-snapshot generation (1 after open, +1 per shard
	// publish; process-local). ReadCacheHits/Misses count per-shard
	// recommend-cache outcomes; KNNRebuilds counts single-flight CF model
	// builds — it should track invalidation epochs, not read traffic.
	SnapshotEpoch   uint64 `json:"snapshot_epoch"`
	ReadCacheHits   uint64 `json:"read_cache_hits"`
	ReadCacheMisses uint64 `json:"read_cache_misses"`
	KNNRebuilds     uint64 `json:"knn_rebuilds"`

	// Store internals; zero-valued with Durable=false.
	Durable           bool   `json:"durable"`
	StoreSegments     int    `json:"store_segments"`
	StoreSegmentBytes int64  `json:"store_segment_bytes"`
	StoreMemtableKeys int    `json:"store_memtable_keys"`
	StoreCompactions  uint64 `json:"store_compactions"`
	StoreCompactError string `json:"store_compact_error,omitempty"`
	// Retained log history and replay health (zero with Durable=false).
	// WALDiscardedBytes counts the corrupt tail bytes replay dropped at
	// open — nonzero after a torn write.
	WALSealedFiles    int   `json:"wal_sealed_files"`
	WALSealedBytes    int64 `json:"wal_sealed_bytes"`
	WALDiscardedBytes int64 `json:"wal_discarded_bytes"`

	// Replication (DESIGN.md §9). ReplRole is "leader" (durable,
	// shippable log), "follower" (Options.FollowerOf), or empty on an
	// in-memory instance. ReplAppliedLSN mirrors the store's committed
	// position; ReplLagWaves is the worst follower lag seen from a leader,
	// or this follower's own lag behind the last reported leader position.
	// ReplSnapshotBytes counts snapshot bytes shipped (leader) or restored
	// at bootstrap (follower).
	ReplRole          string `json:"repl_role,omitempty"`
	ReplAppliedLSN    uint64 `json:"repl_applied_lsn"`
	ReplLagWaves      uint64 `json:"repl_lag_waves"`
	ReplFollowers     int    `json:"repl_followers"`
	ReplSnapshotBytes int64  `json:"repl_snapshot_bytes"`

	// Cluster mode (DESIGN.md §10). All four stay zero on a non-cluster
	// node, so the series are always present. ClusterEpoch is the current
	// topology epoch; ClusterSlotsOwned the slots this node owns;
	// ClusterBounces counts requests refused with 421 because another node
	// owns the user's slot; SlotMoves counts slots this node has acquired
	// via handoff.
	ClusterEpoch      uint64 `json:"cluster_epoch"`
	ClusterSlotsOwned int    `json:"cluster_slots_owned"`
	ClusterBounces    uint64 `json:"cluster_bounces"`
	SlotMoves         uint64 `json:"slot_moves"`

	// Stage-latency histograms (internal/obs). StageBoundsNanos is the
	// bucket upper-bound vector shared by every histogram below. Stages is
	// keyed by pipeline stage — decode, queue, gather, prepare, commit,
	// wal_sync, compaction; Endpoints by handler name (register, ingest,
	// recommend, ...). LastWaveID is the newest wave ID the coalescer
	// minted (wave IDs are 1-based; 0 means no wave yet).
	StageBoundsNanos []int64              `json:"stage_bounds_nanos,omitempty"`
	Stages           map[string]Histogram `json:"stages,omitempty"`
	Endpoints        map[string]Histogram `json:"endpoints,omitempty"`
	LastWaveID       uint64               `json:"last_wave_id,omitempty"`
}
