package wire

// Stream framing for persistent-connection ingest. The PR 3 binary framing
// removed the codec cost from /v1/ingest but still pays one full HTTP
// request-response cycle per frame — connection bookkeeping, header parse,
// status line, response headers. A stream carries many SPAB frames over
// one long-lived connection instead:
//
//	uvarint frame length, then one SPAB frame (magic/version/kind/payload)
//
// repeated until either side drains. The frames themselves are the PR 3
// vocabulary — kind 0x01 ingest request, kind 0x02 ingest response —
// extended with four stream-control kinds the original header's kind byte
// reserved room for:
//
//	0x03 hello   server → client, once, first frame on every stream:
//	             uvarint credit (request frames the client may have in
//	             flight), uvarint max frame bytes.
//	0x04 credit  server → client: uvarint n — n more request frames may be
//	             sent. Credit is the stream's admission control: where the
//	             HTTP path answers a full queue with 503 + Retry-After, the
//	             stream simply stops granting credit until the queue has
//	             room, and the client's send window closes by itself.
//	0x05 drain   either direction, empty payload. Client → server: "no
//	             more requests; answer what you have, then close". Server →
//	             client: "stop sending; in-flight requests will still be
//	             answered, then the connection closes" — the shutdown path,
//	             so SIGTERM never strands an accepted frame.
//	0x06 error   server → client: uvarint status (the HTTP status the
//	             request would have received), then the message bytes. Sent
//	             in place of an ingest response — answers keep the
//	             request's wire order — or, with no requests outstanding,
//	             as a terminal refusal before close.
//
// Every ingest request frame is answered by exactly one response or error
// frame, in the order the requests arrived; control frames are not
// answered. Decoding malformed control frames returns ErrBadFrame-wrapped
// errors and never panics (FuzzDecodeStreamFrame).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// StreamProtocol names the protocol in the HTTP upgrade handshake on
// StreamPath (Upgrade: spa-stream/1). The same byte stream runs over a raw
// TCP connection (spad -stream-addr) without the handshake.
const StreamProtocol = "spa-stream/1"

// StreamPath is the HTTP upgrade endpoint for streamed ingest.
const StreamPath = "/v1/ingest/stream"

// maxStreamFrameLen bounds a stream frame when the caller does not supply
// a tighter limit — the same 8 MiB default the HTTP body cap uses.
const maxStreamFrameLen = 8 << 20

// StreamHello is the server's opening frame on every stream.
type StreamHello struct {
	// Credit is the client's initial send window: request frames that may
	// be in flight (sent but unanswered) at once.
	Credit int
	// MaxFrameBytes is the largest frame the server will read.
	MaxFrameBytes int64
}

// StreamError answers one request frame with a failure, carrying the HTTP
// status the request would have received on the per-request path so status
// handling stays one vocabulary across transports.
type StreamError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *StreamError) Error() string {
	return fmt.Sprintf("wire: stream error %d: %s", e.Status, e.Message)
}

// FrameKind validates a frame's magic and version and returns its kind
// byte, so a stream endpoint can dispatch before decoding the payload.
func FrameKind(frame []byte) (byte, error) {
	if len(frame) < binaryHeaderLen {
		return 0, fmt.Errorf("%w: %d-byte frame shorter than header", ErrBadFrame, len(frame))
	}
	if [4]byte(frame[:4]) != binaryMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadFrame, frame[:4])
	}
	if frame[4] != binaryVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, frame[4])
	}
	return frame[5], nil
}

// WriteStreamFrame writes one length-prefixed frame. The caller flushes
// any buffering; a frame is not on the wire until its writer is.
func WriteStreamFrame(w io.Writer, frame []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(frame)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// ReadStreamFrame reads one length-prefixed frame, refusing declared
// lengths above maxLen (<= 0 selects the 8 MiB default) before allocating.
// A clean close at a frame boundary surfaces as io.EOF; a connection cut
// mid-frame as io.ErrUnexpectedEOF.
func ReadStreamFrame(br *bufio.Reader, maxLen int64) ([]byte, error) {
	if maxLen <= 0 {
		maxLen = maxStreamFrameLen
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Clean close at the boundary, or a prefix torn mid-varint.
			return nil, err
		}
		// Overlong varint: framing garbage, not a connection condition.
		return nil, fmt.Errorf("%w: frame length prefix: %v", ErrBadFrame, err)
	}
	if n < binaryHeaderLen {
		return nil, fmt.Errorf("%w: %d-byte frame shorter than header", ErrBadFrame, n)
	}
	if n > uint64(maxLen) {
		return nil, fmt.Errorf("%w: %d-byte frame exceeds %d-byte limit", ErrBadFrame, n, maxLen)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(br, frame); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return frame, nil
}

// MaxStreamCredit bounds a hello's credit grant — and therefore any
// server's stream window: DecodeStreamHello rejects grants outside
// (0, MaxStreamCredit], so a server must never advertise more.
const MaxStreamCredit = 1 << 20

// EncodeStreamHello frames the server's opening handshake.
func EncodeStreamHello(h StreamHello) []byte {
	buf := make([]byte, 0, binaryHeaderLen+2*binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindStreamHello)
	buf = binary.AppendUvarint(buf, uint64(h.Credit))
	return binary.AppendUvarint(buf, uint64(h.MaxFrameBytes))
}

// DecodeStreamHello parses a hello frame.
func DecodeStreamHello(frame []byte) (StreamHello, error) {
	payload, err := checkBinaryHeader(frame, KindStreamHello)
	if err != nil {
		return StreamHello{}, err
	}
	r := binReader{p: payload}
	credit, err := r.uvarint()
	if err != nil {
		return StreamHello{}, err
	}
	maxFrame, err := r.uvarint()
	if err != nil {
		return StreamHello{}, err
	}
	if credit == 0 || credit > MaxStreamCredit {
		return StreamHello{}, fmt.Errorf("%w: hello credit %d outside (0, 2^20]", ErrBadFrame, credit)
	}
	if maxFrame > 1<<40 {
		return StreamHello{}, fmt.Errorf("%w: hello max frame %d implausible", ErrBadFrame, maxFrame)
	}
	if len(r.p) != 0 {
		return StreamHello{}, fmt.Errorf("%w: %d trailing bytes after hello", ErrBadFrame, len(r.p))
	}
	return StreamHello{Credit: int(credit), MaxFrameBytes: int64(maxFrame)}, nil
}

// EncodeStreamCredit frames a grant of n more request frames.
func EncodeStreamCredit(n int) []byte {
	buf := make([]byte, 0, binaryHeaderLen+binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindStreamCredit)
	return binary.AppendUvarint(buf, uint64(n))
}

// DecodeStreamCredit parses a credit frame.
func DecodeStreamCredit(frame []byte) (int, error) {
	payload, err := checkBinaryHeader(frame, KindStreamCredit)
	if err != nil {
		return 0, err
	}
	r := binReader{p: payload}
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n == 0 || n > MaxStreamCredit {
		return 0, fmt.Errorf("%w: credit grant %d outside (0, 2^20]", ErrBadFrame, n)
	}
	if len(r.p) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after credit", ErrBadFrame, len(r.p))
	}
	return int(n), nil
}

// EncodeStreamDrain frames a drain announcement.
func EncodeStreamDrain() []byte {
	return appendBinaryHeader(make([]byte, 0, binaryHeaderLen), KindStreamDrain)
}

// DecodeStreamDrain validates a drain frame.
func DecodeStreamDrain(frame []byte) error {
	payload, err := checkBinaryHeader(frame, KindStreamDrain)
	if err != nil {
		return err
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after drain", ErrBadFrame, len(payload))
	}
	return nil
}

// maxStreamErrorMessage caps the message bytes an error frame carries.
const maxStreamErrorMessage = 4 << 10

// EncodeStreamError frames one request's failure.
func EncodeStreamError(status int, message string) []byte {
	if len(message) > maxStreamErrorMessage {
		message = message[:maxStreamErrorMessage]
	}
	buf := make([]byte, 0, binaryHeaderLen+binary.MaxVarintLen64+len(message))
	buf = appendBinaryHeader(buf, KindStreamError)
	buf = binary.AppendUvarint(buf, uint64(status))
	return append(buf, message...)
}

// DecodeStreamError parses an error frame.
func DecodeStreamError(frame []byte) (StreamError, error) {
	payload, err := checkBinaryHeader(frame, KindStreamError)
	if err != nil {
		return StreamError{}, err
	}
	r := binReader{p: payload}
	status, err := r.uvarint()
	if err != nil {
		return StreamError{}, err
	}
	if status < 100 || status > 599 {
		return StreamError{}, fmt.Errorf("%w: stream error status %d outside [100, 599]", ErrBadFrame, status)
	}
	if len(r.p) > maxStreamErrorMessage {
		return StreamError{}, fmt.Errorf("%w: %d-byte error message exceeds %d", ErrBadFrame, len(r.p), maxStreamErrorMessage)
	}
	return StreamError{Status: int(status), Message: string(r.p)}, nil
}
