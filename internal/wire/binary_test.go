package wire

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{UserID: 1, TimeUnixNano: 1136214245000000000, Type: 1, Action: 7},
		{UserID: 18446744073709551615, TimeUnixNano: -62135596800000000, Type: 255, Action: 983, Value: -3.5, Campaign: 4294967295},
		{UserID: 42, TimeUnixNano: 0, Type: 0, Action: 0, Value: math.MaxFloat32, Campaign: 9},
		{UserID: 7, TimeUnixNano: math.MaxInt64, Type: 3, Action: 12, Value: 0.25, Campaign: 1},
		{UserID: 8, TimeUnixNano: math.MinInt64, Type: 4, Action: 1, Value: -0, Campaign: 0},
	}
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	for _, events := range [][]Event{nil, {}, sampleEvents()} {
		frame := EncodeIngestRequest(events)
		got, err := DecodeIngestRequest(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, want %d", len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("event %d: got %+v, want %+v", i, got[i], events[i])
			}
		}
	}
}

// TestBinaryRoundTripMatchesJSON pins the equivalence contract: the binary
// framing and the JSON DTOs carry the identical field set, so a batch
// round-tripped through either encoding must come out the same (for the
// values JSON can express; non-finite floats are binary-only and covered
// by TestBinaryValueBitsExact).
func TestBinaryRoundTripMatchesJSON(t *testing.T) {
	events := sampleEvents()
	viaBinary, err := DecodeIngestRequest(EncodeIngestRequest(events))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(IngestRequest{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	var viaJSON IngestRequest
	if err := json.Unmarshal(raw, &viaJSON); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaBinary, viaJSON.Events) {
		t.Fatalf("binary %+v != json %+v", viaBinary, viaJSON.Events)
	}
}

// TestBinaryValueBitsExact: the float payload travels as raw IEEE-754
// bits, so even a NaN with a distinctive payload survives binary framing.
func TestBinaryValueBitsExact(t *testing.T) {
	for _, bits := range []uint32{0x7fc00abc, math.Float32bits(float32(math.Inf(1))), math.Float32bits(float32(math.Inf(-1)))} {
		events := []Event{{UserID: 1, TimeUnixNano: 1, Type: 1, Value: math.Float32frombits(bits)}}
		got, err := DecodeIngestRequest(EncodeIngestRequest(events))
		if err != nil {
			t.Fatal(err)
		}
		if gotBits := math.Float32bits(got[0].Value); gotBits != bits {
			t.Fatalf("value bits %#x, want %#x", gotBits, bits)
		}
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	for _, resp := range []IngestResponse{
		{},
		{Processed: 128, SkippedUnknown: 3, CoalescedWith: 17},
		{Processed: math.MaxInt32, SkippedUnknown: 1, CoalescedWith: 1},
	} {
		got, err := DecodeIngestResponse(EncodeIngestResponse(resp))
		if err != nil {
			t.Fatalf("decode %+v: %v", resp, err)
		}
		if got != resp {
			t.Fatalf("got %+v, want %+v", got, resp)
		}
	}
}

func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeIngestRequest(sampleEvents())
	cases := map[string][]byte{
		"empty":            {},
		"short header":     valid[:4],
		"bad magic":        append([]byte("NOPE"), valid[4:]...),
		"bad version":      append(append([]byte{}, valid[:4]...), 0x7f, valid[5]),
		"response kind":    EncodeIngestResponse(IngestResponse{Processed: 1}),
		"trailing garbage": append(append([]byte{}, valid...), 0xff),
		"truncated tail":   valid[:len(valid)-3],
		// Declared count far beyond what the remaining bytes could hold
		// must fail before allocating.
		"count overclaim": append(append([]byte{}, valid[:6]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, frame := range cases {
		if _, err := DecodeIngestRequest(frame); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err %v, want ErrBadFrame", name, err)
		}
	}
	if _, err := DecodeIngestResponse(valid); !errors.Is(err, ErrBadFrame) {
		t.Errorf("request frame as response: err %v, want ErrBadFrame", err)
	}
	if _, err := DecodeIngestResponse(EncodeIngestResponse(IngestResponse{})[:7]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated response: err %v, want ErrBadFrame", err)
	}
}

func TestIsBinaryContentType(t *testing.T) {
	for ct, want := range map[string]bool{
		ContentTypeBinary:                 true,
		ContentTypeBinary + "; version=1": true,
		"application/json":                false,
		"application/x-spa-binary-v2":     false,
		"":                                false,
		"application/json; charset=utf-8": false,
		"Application/X-SPA-Binary":        true, // media types are case-insensitive
		// Malformed parameter sections must not widen the match to a
		// prefix: the media type itself still has to be exact.
		"application/x-spa-binaryX;;":          false,
		"application/x-spa-binary-v2;;":        false,
		"application/x-spa-binary;;":           true, // right type, junk params
		"Application/X-SPA-Binary ;=":          true,
		"application/x-spa-binary; version=":   true,
		"application/x-spa-binaryextra; q=0.5": false,
	} {
		if got := IsBinaryContentType(ct); got != want {
			t.Errorf("IsBinaryContentType(%q) = %v, want %v", ct, got, want)
		}
	}
}

// FuzzDecodeIngestRequest is the decoder's safety contract: arbitrary
// bytes must either decode cleanly or error — never panic, never hang —
// and anything that decodes must re-encode to a frame that decodes to the
// same events (the canonical-form round-trip).
func FuzzDecodeIngestRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeIngestRequest(nil))
	f.Add(EncodeIngestRequest(sampleEvents()))
	valid := EncodeIngestRequest(sampleEvents())
	f.Add(valid[:len(valid)/2])
	f.Add(EncodeIngestResponse(IngestResponse{Processed: 3, CoalescedWith: 2}))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeIngestRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("non-ErrBadFrame error: %v", err)
			}
			return
		}
		again, err := DecodeIngestRequest(EncodeIngestRequest(events))
		if err != nil {
			t.Fatalf("re-encode of decoded frame fails: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round-trip changed count: %d != %d", len(again), len(events))
		}
		for i := range events {
			a, b := events[i], again[i]
			// Compare bit patterns: NaN != NaN under ==.
			if a.UserID != b.UserID || a.TimeUnixNano != b.TimeUnixNano || a.Type != b.Type ||
				a.Action != b.Action || a.Campaign != b.Campaign ||
				math.Float32bits(a.Value) != math.Float32bits(b.Value) {
				t.Fatalf("round-trip changed event %d: %+v != %+v", i, a, b)
			}
		}
	})
}
