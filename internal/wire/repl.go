package wire

// Replication framing. A follower replicates the leader by tailing its
// committed log (store.TailLog) over the same SPAB stream transport the
// ingest path uses — one long-lived connection, uvarint length-prefixed
// frames, the PR 5 hello/credit vocabulary for flow control. Seven new
// frame kinds carve the replication conversation out of the kind byte's
// reserved room:
//
//	0x07 subscribe  follower → leader, once, first frame after the hello:
//	                uvarint from_lsn (resume position: the first record the
//	                follower wants), uvarint window (wave frames the leader
//	                may have unacknowledged in flight — the follower is the
//	                receiver here, so it grants the credit).
//	0x08 wave       leader → follower: one committed log record — uvarint
//	                lsn, the record's opaque annotation, and its entries.
//	                Waves consume the subscribe window; the follower's
//	                cumulative acks (0x0C) reopen it.
//	0x09 snap-begin leader → follower: the requested position was compacted
//	                away; a state snapshot follows. uvarint snapshot_lsn
//	                (the position the state is current through), uvarint
//	                pair count.
//	0x0A snap-chunk leader → follower: a run of live key/value pairs.
//	                Snapshot frames are not window-gated — the stream's own
//	                backpressure (TCP) paces them, and the follower is not
//	                applying waves concurrently during bootstrap.
//	0x0B snap-end   leader → follower: uvarint snapshot_lsn again; waves
//	                resume from snapshot_lsn+1.
//	0x0C ack        follower → leader: uvarint applied_lsn, cumulative —
//	                every record through applied_lsn is durably applied.
//	                Reopens the wave window and drives the leader's lag
//	                accounting.
//	0x0D heartbeat  leader → follower, periodic: uvarint leader_lsn (the
//	                leader's current AppliedLSN), so an idle follower can
//	                report lag and staleness without traffic.
//
// Decoding malformed frames returns ErrBadFrame-wrapped errors and never
// panics (FuzzDecodeReplFrame); declared counts are never trusted for
// allocation beyond the bytes actually present.

import (
	"encoding/binary"
	"fmt"
)

// Replication frame kinds, continuing the 0x01-0x06 vocabulary of
// binary.go and stream.go.
const (
	KindReplSubscribe     = 0x07
	KindReplWave          = 0x08
	KindReplSnapshotBegin = 0x09
	KindReplSnapshotChunk = 0x0A
	KindReplSnapshotEnd   = 0x0B
	KindReplAck           = 0x0C
	KindReplHeartbeat     = 0x0D
)

// ReplPath is the HTTP upgrade endpoint for the replication stream; the
// handshake is the same Upgrade: spa-stream/1 dance StreamPath uses.
const ReplPath = "/v1/replicate/stream"

// ReplEntry is one key operation inside a wave or snapshot chunk.
type ReplEntry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

// ReplSubscribe is the follower's opening request.
type ReplSubscribe struct {
	// FromLSN is the first record the follower wants (its AppliedLSN+1).
	FromLSN uint64
	// Window is the wave credit: frames the leader may have unacked in
	// flight.
	Window int
}

// ReplWave is one committed log record in flight.
type ReplWave struct {
	LSN        uint64
	Annotation []byte
	Entries    []ReplEntry
}

// ReplSnapshotBegin opens a snapshot transfer.
type ReplSnapshotBegin struct {
	SnapshotLSN uint64
	// Pairs is the total pair count across all chunks, for progress
	// accounting; the end frame is what closes the transfer.
	Pairs uint64
}

// entry flag bits.
const replEntryTombstone = 0x01

func appendReplEntry(buf []byte, e ReplEntry) []byte {
	var flags byte
	if e.Tombstone {
		flags |= replEntryTombstone
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(e.Key)))
	buf = append(buf, e.Key...)
	if !e.Tombstone {
		buf = binary.AppendUvarint(buf, uint64(len(e.Value)))
		buf = append(buf, e.Value...)
	}
	return buf
}

func (r *binReader) replEntry() (ReplEntry, error) {
	flags, err := r.byte()
	if err != nil {
		return ReplEntry{}, err
	}
	if flags&^replEntryTombstone != 0 {
		return ReplEntry{}, fmt.Errorf("%w: unknown entry flags %#x", ErrBadFrame, flags)
	}
	var e ReplEntry
	e.Tombstone = flags&replEntryTombstone != 0
	klen, err := r.uvarint()
	if err != nil {
		return ReplEntry{}, err
	}
	if klen == 0 {
		return ReplEntry{}, fmt.Errorf("%w: empty entry key", ErrBadFrame)
	}
	if klen > uint64(len(r.p)) {
		return ReplEntry{}, fmt.Errorf("%w: entry key length %d exceeds %d remaining bytes", ErrBadFrame, klen, len(r.p))
	}
	e.Key = r.p[:klen:klen]
	r.p = r.p[klen:]
	if e.Tombstone {
		return e, nil
	}
	vlen, err := r.uvarint()
	if err != nil {
		return ReplEntry{}, err
	}
	if vlen > uint64(len(r.p)) {
		return ReplEntry{}, fmt.Errorf("%w: entry value length %d exceeds %d remaining bytes", ErrBadFrame, vlen, len(r.p))
	}
	e.Value = r.p[:vlen:vlen]
	r.p = r.p[vlen:]
	return e, nil
}

func (r *binReader) replEntries(what string) ([]ReplEntry, error) {
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every entry costs at least flags + klen byte + 1 key byte.
	if maxPossible := uint64(len(r.p)) / 3; count > maxPossible {
		return nil, fmt.Errorf("%w: %d %s entries declared, at most %d fit in %d bytes",
			ErrBadFrame, count, what, maxPossible, len(r.p))
	}
	entries := make([]ReplEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		e, err := r.replEntry()
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// EncodeReplSubscribe frames the follower's opening request.
func EncodeReplSubscribe(s ReplSubscribe) []byte {
	buf := make([]byte, 0, binaryHeaderLen+2*binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindReplSubscribe)
	buf = binary.AppendUvarint(buf, s.FromLSN)
	return binary.AppendUvarint(buf, uint64(s.Window))
}

// DecodeReplSubscribe parses a subscribe frame.
func DecodeReplSubscribe(frame []byte) (ReplSubscribe, error) {
	payload, err := checkBinaryHeader(frame, KindReplSubscribe)
	if err != nil {
		return ReplSubscribe{}, err
	}
	r := binReader{p: payload}
	from, err := r.uvarint()
	if err != nil {
		return ReplSubscribe{}, err
	}
	window, err := r.uvarint()
	if err != nil {
		return ReplSubscribe{}, err
	}
	if from == 0 {
		return ReplSubscribe{}, fmt.Errorf("%w: subscribe from_lsn 0 (positions start at 1)", ErrBadFrame)
	}
	if window == 0 || window > MaxStreamCredit {
		return ReplSubscribe{}, fmt.Errorf("%w: subscribe window %d outside (0, 2^20]", ErrBadFrame, window)
	}
	if len(r.p) != 0 {
		return ReplSubscribe{}, fmt.Errorf("%w: %d trailing bytes after subscribe", ErrBadFrame, len(r.p))
	}
	return ReplSubscribe{FromLSN: from, Window: int(window)}, nil
}

// EncodeReplWave frames one committed log record.
func EncodeReplWave(w ReplWave) []byte {
	size := binaryHeaderLen + 3*binary.MaxVarintLen64 + len(w.Annotation)
	for _, e := range w.Entries {
		size += 1 + 2*binary.MaxVarintLen64 + len(e.Key) + len(e.Value)
	}
	buf := make([]byte, 0, size)
	buf = appendBinaryHeader(buf, KindReplWave)
	buf = binary.AppendUvarint(buf, w.LSN)
	buf = binary.AppendUvarint(buf, uint64(len(w.Annotation)))
	buf = append(buf, w.Annotation...)
	buf = binary.AppendUvarint(buf, uint64(len(w.Entries)))
	for _, e := range w.Entries {
		buf = appendReplEntry(buf, e)
	}
	return buf
}

// DecodeReplWave parses a wave frame. The returned slices alias the frame.
func DecodeReplWave(frame []byte) (ReplWave, error) {
	payload, err := checkBinaryHeader(frame, KindReplWave)
	if err != nil {
		return ReplWave{}, err
	}
	r := binReader{p: payload}
	var w ReplWave
	if w.LSN, err = r.uvarint(); err != nil {
		return ReplWave{}, err
	}
	if w.LSN == 0 {
		return ReplWave{}, fmt.Errorf("%w: wave lsn 0 (positions start at 1)", ErrBadFrame)
	}
	alen, err := r.uvarint()
	if err != nil {
		return ReplWave{}, err
	}
	if alen > uint64(len(r.p)) {
		return ReplWave{}, fmt.Errorf("%w: annotation length %d exceeds %d remaining bytes", ErrBadFrame, alen, len(r.p))
	}
	w.Annotation = r.p[:alen:alen]
	r.p = r.p[alen:]
	if w.Entries, err = r.replEntries("wave"); err != nil {
		return ReplWave{}, err
	}
	if len(w.Entries) == 0 {
		return ReplWave{}, fmt.Errorf("%w: wave with no entries", ErrBadFrame)
	}
	if len(r.p) != 0 {
		return ReplWave{}, fmt.Errorf("%w: %d trailing bytes after wave", ErrBadFrame, len(r.p))
	}
	return w, nil
}

// EncodeReplSnapshotBegin frames the start of a snapshot transfer.
func EncodeReplSnapshotBegin(b ReplSnapshotBegin) []byte {
	buf := make([]byte, 0, binaryHeaderLen+2*binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindReplSnapshotBegin)
	buf = binary.AppendUvarint(buf, b.SnapshotLSN)
	return binary.AppendUvarint(buf, b.Pairs)
}

// DecodeReplSnapshotBegin parses a snapshot-begin frame.
func DecodeReplSnapshotBegin(frame []byte) (ReplSnapshotBegin, error) {
	payload, err := checkBinaryHeader(frame, KindReplSnapshotBegin)
	if err != nil {
		return ReplSnapshotBegin{}, err
	}
	r := binReader{p: payload}
	var b ReplSnapshotBegin
	if b.SnapshotLSN, err = r.uvarint(); err != nil {
		return ReplSnapshotBegin{}, err
	}
	if b.Pairs, err = r.uvarint(); err != nil {
		return ReplSnapshotBegin{}, err
	}
	if len(r.p) != 0 {
		return ReplSnapshotBegin{}, fmt.Errorf("%w: %d trailing bytes after snapshot begin", ErrBadFrame, len(r.p))
	}
	return b, nil
}

// EncodeReplSnapshotChunk frames a run of snapshot pairs. Tombstones never
// appear in a snapshot (it is the live key space).
func EncodeReplSnapshotChunk(pairs []ReplEntry) []byte {
	size := binaryHeaderLen + binary.MaxVarintLen64
	for _, e := range pairs {
		size += 1 + 2*binary.MaxVarintLen64 + len(e.Key) + len(e.Value)
	}
	buf := make([]byte, 0, size)
	buf = appendBinaryHeader(buf, KindReplSnapshotChunk)
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, e := range pairs {
		buf = appendReplEntry(buf, e)
	}
	return buf
}

// DecodeReplSnapshotChunk parses a snapshot chunk. The returned slices
// alias the frame.
func DecodeReplSnapshotChunk(frame []byte) ([]ReplEntry, error) {
	payload, err := checkBinaryHeader(frame, KindReplSnapshotChunk)
	if err != nil {
		return nil, err
	}
	r := binReader{p: payload}
	pairs, err := r.replEntries("snapshot")
	if err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w: empty snapshot chunk", ErrBadFrame)
	}
	for i, e := range pairs {
		if e.Tombstone {
			return nil, fmt.Errorf("%w: snapshot pair %d is a tombstone", ErrBadFrame, i)
		}
	}
	if len(r.p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot chunk", ErrBadFrame, len(r.p))
	}
	return pairs, nil
}

// EncodeReplSnapshotEnd frames the end of a snapshot transfer.
func EncodeReplSnapshotEnd(snapshotLSN uint64) []byte {
	buf := make([]byte, 0, binaryHeaderLen+binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindReplSnapshotEnd)
	return binary.AppendUvarint(buf, snapshotLSN)
}

// DecodeReplSnapshotEnd parses a snapshot-end frame.
func DecodeReplSnapshotEnd(frame []byte) (uint64, error) {
	payload, err := checkBinaryHeader(frame, KindReplSnapshotEnd)
	if err != nil {
		return 0, err
	}
	r := binReader{p: payload}
	lsn, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if len(r.p) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after snapshot end", ErrBadFrame, len(r.p))
	}
	return lsn, nil
}

// EncodeReplAck frames a cumulative applied-through acknowledgement.
func EncodeReplAck(appliedLSN uint64) []byte {
	buf := make([]byte, 0, binaryHeaderLen+binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindReplAck)
	return binary.AppendUvarint(buf, appliedLSN)
}

// DecodeReplAck parses an ack frame.
func DecodeReplAck(frame []byte) (uint64, error) {
	payload, err := checkBinaryHeader(frame, KindReplAck)
	if err != nil {
		return 0, err
	}
	r := binReader{p: payload}
	lsn, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if len(r.p) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after ack", ErrBadFrame, len(r.p))
	}
	return lsn, nil
}

// EncodeReplHeartbeat frames the leader's periodic position report.
func EncodeReplHeartbeat(leaderLSN uint64) []byte {
	buf := make([]byte, 0, binaryHeaderLen+binary.MaxVarintLen64)
	buf = appendBinaryHeader(buf, KindReplHeartbeat)
	return binary.AppendUvarint(buf, leaderLSN)
}

// DecodeReplHeartbeat parses a heartbeat frame.
func DecodeReplHeartbeat(frame []byte) (uint64, error) {
	payload, err := checkBinaryHeader(frame, KindReplHeartbeat)
	if err != nil {
		return 0, err
	}
	r := binReader{p: payload}
	lsn, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if len(r.p) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after heartbeat", ErrBadFrame, len(r.p))
	}
	return lsn, nil
}
