package wire

import (
	"errors"
	"testing"

	"repro/internal/keyspace"
)

// testHandoffSubscribe builds a representative valid subscribe; shared
// with repl_test.go's dispatch, fuzz, and truncation coverage.
func testHandoffSubscribe() HandoffSubscribe {
	h := HandoffSubscribe{Window: 32, NodeID: "node-b", Addr: "127.0.0.1:9102"}
	h.Slots.Add(0)
	h.Slots.Add(17)
	h.Slots.Add(keyspace.NumSlots - 1)
	return h
}

func TestHandoffSubscribeRoundTrip(t *testing.T) {
	in := testHandoffSubscribe()
	got, err := DecodeHandoffSubscribe(EncodeHandoffSubscribe(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots != in.Slots || got.Window != in.Window || got.NodeID != in.NodeID || got.Addr != in.Addr {
		t.Fatalf("round trip = %+v, want %+v", got, in)
	}

	empty := in
	empty.Slots = keyspace.SlotSet{}
	if _, err := DecodeHandoffSubscribe(EncodeHandoffSubscribe(empty)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty slot set accepted: %v", err)
	}
	noWindow := in
	noWindow.Window = 0
	if _, err := DecodeHandoffSubscribe(EncodeHandoffSubscribe(noWindow)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("window 0 accepted: %v", err)
	}
	bigWindow := in
	bigWindow.Window = MaxStreamCredit + 1
	if _, err := DecodeHandoffSubscribe(EncodeHandoffSubscribe(bigWindow)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized window accepted: %v", err)
	}
	noNode := in
	noNode.NodeID = ""
	if _, err := DecodeHandoffSubscribe(EncodeHandoffSubscribe(noNode)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty node id accepted: %v", err)
	}
	noAddr := in
	noAddr.Addr = ""
	if _, err := DecodeHandoffSubscribe(EncodeHandoffSubscribe(noAddr)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty addr accepted: %v", err)
	}
	longID := in
	for len(longID.NodeID) <= maxHandoffString {
		longID.NodeID += "x"
	}
	if _, err := DecodeHandoffSubscribe(EncodeHandoffSubscribe(longID)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized node id accepted: %v", err)
	}
}

func TestHandoffCommitRoundTrip(t *testing.T) {
	got, err := DecodeHandoffCommit(EncodeHandoffCommit(HandoffCommit{LSN: 9001, Epoch: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 9001 || got.Epoch != 4 {
		t.Fatalf("round trip = %+v", got)
	}
	// LSN 0 is legal (the source log held nothing for the moving slots);
	// epoch 0 is not (epochs start at 1).
	if _, err := DecodeHandoffCommit(EncodeHandoffCommit(HandoffCommit{LSN: 0, Epoch: 1})); err != nil {
		t.Fatalf("lsn 0 rejected: %v", err)
	}
	if _, err := DecodeHandoffCommit(EncodeHandoffCommit(HandoffCommit{LSN: 1, Epoch: 0})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("epoch 0 accepted: %v", err)
	}
	// The handoff kinds must not cross-decode.
	if _, err := DecodeHandoffCommit(EncodeHandoffSubscribe(testHandoffSubscribe())); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("subscribe decoded as commit: %v", err)
	}
}

func TestTopologyValidate(t *testing.T) {
	slots := make([]string, keyspace.NumSlots)
	for i := range slots {
		if i%2 == 0 {
			slots[i] = "a"
		} else {
			slots[i] = "b"
		}
	}
	topo := Topology{
		Epoch:  1,
		NodeID: "a",
		Nodes:  map[string]string{"a": "127.0.0.1:9101", "b": "127.0.0.1:9102"},
		Slots:  slots,
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := topo
	bad.Epoch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("epoch 0 accepted")
	}
	bad = topo
	bad.Slots = slots[:100]
	if err := bad.Validate(); err == nil {
		t.Fatal("short slot vector accepted")
	}
	bad = topo
	bad.Slots = append([]string(nil), slots...)
	bad.Slots[7] = "ghost"
	if err := bad.Validate(); err == nil {
		t.Fatal("slot owned by unknown node accepted")
	}
	bad = topo
	bad.Nodes = map[string]string{"a": "127.0.0.1:9101", "b": ""}
	if err := bad.Validate(); err == nil {
		t.Fatal("node with empty address accepted")
	}
}
