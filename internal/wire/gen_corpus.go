//go:build ignore

// Regenerates the checked-in fuzz seed corpora under testdata/fuzz.
//
//	cd internal/wire && go run gen_corpus.go
//
// The corpus gives `go test` (which always executes seed inputs, no
// -fuzz flag needed) coverage of the interesting decode paths: valid
// frames of every kind, truncations at each structural boundary, bad
// magic, version skew, kind confusion, count overclaims and oversized
// length prefixes. A fuzzing run that finds a new crasher appends its
// minimized input here via the usual testdata/fuzz mechanism.
package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/wire"
)

func main() {
	events := []wire.Event{
		{UserID: 1, TimeUnixNano: 1136214245000000000, Type: 1, Action: 7},
		{UserID: math.MaxUint64, TimeUnixNano: -62135596800000000, Type: 255, Action: 983, Value: -3.5, Campaign: math.MaxUint32},
		{UserID: 42, TimeUnixNano: 0, Value: math.MaxFloat32, Campaign: 9},
		{UserID: 7, TimeUnixNano: math.MaxInt64, Type: 3, Action: 12, Value: 0.25, Campaign: 1},
	}

	framed := func(frame []byte) []byte {
		var buf bytes.Buffer
		if err := wire.WriteStreamFrame(&buf, frame); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	validReq := wire.EncodeIngestRequest(events)

	// Count overclaim: a valid request whose event-count varint promises
	// far more events than the payload carries.
	overclaim := append([]byte(nil), validReq...)
	overclaim[6] = 0xFF // count uvarint follows the 6-byte header
	overclaim = append(overclaim[:7], append([]byte{0x7F}, overclaim[7:]...)...)

	versionSkew := append([]byte(nil), validReq...)
	versionSkew[4] ^= 0x40

	badMagic := append([]byte(nil), validReq...)
	copy(badMagic, "SPAM")

	stream := map[string][]byte{
		"hello":          framed(wire.EncodeStreamHello(wire.StreamHello{Credit: 32, MaxFrameBytes: 8 << 20})),
		"credit":         framed(wire.EncodeStreamCredit(1)),
		"credit-zero":    framed(wire.EncodeStreamCredit(0)),
		"drain":          framed(wire.EncodeStreamDrain()),
		"error":          framed(wire.EncodeStreamError(503, "draining")),
		"error-outrange": framed(wire.EncodeStreamError(99999, "status beyond the HTTP range")),
		"ingest":         framed(validReq),
		"back-to-back":   append(framed(wire.EncodeStreamCredit(2)), framed(wire.EncodeStreamDrain())...),
		"bad-magic":      framed(badMagic),
		"empty-frame":    framed(nil),
		"len-overclaim":  {0xC0, 0x80, 0x80, 0x80, 0x08, 'S', 'P', 'A', 'B'}, // uvarint claims ~2GiB
		"truncated-body": framed(validReq)[:8],
	}
	ingest := map[string][]byte{
		"empty-events":   wire.EncodeIngestRequest(nil),
		"sample":         validReq,
		"half":           validReq[:len(validReq)/2],
		"header-only":    validReq[:6],
		"count-overclm":  overclaim,
		"version-skew":   versionSkew,
		"bad-magic":      badMagic,
		"kind-confusion": wire.EncodeIngestResponse(wire.IngestResponse{Processed: 3, CoalescedWith: 2}),
		"trailing-junk":  append(append([]byte(nil), wire.EncodeIngestRequest(nil)...), 0xDE, 0xAD),
	}

	write("FuzzDecodeStreamFrame", stream)
	write("FuzzDecodeIngestRequest", ingest)
}

func write(fuzzer string, corpus map[string][]byte) {
	dir := filepath.Join("testdata", "fuzz", fuzzer)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for name, data := range corpus {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("%s/%s: %d bytes\n", fuzzer, name, len(data))
	}
}
