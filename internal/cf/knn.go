package cf

import (
	"errors"
	"sort"
)

// User-kNN collaborative filtering: predict a user's affinity for an action
// as the similarity-weighted sum of their neighbors' weights on it. This is
// the 2006-era non-emotional recommender the reproduction uses as the CF
// baseline (DESIGN.md A2).

// KNN is a frozen-matrix neighborhood model.
type KNN struct {
	m *Interactions
	k int
}

// NewKNN builds a model over a frozen matrix with neighborhood size k.
func NewKNN(m *Interactions, k int) (*KNN, error) {
	if !m.frozen {
		return nil, ErrNotFrozen
	}
	if k < 1 {
		return nil, errors.New("cf: k must be >= 1")
	}
	return &KNN{m: m, k: k}, nil
}

// Neighbor is one similar user.
type Neighbor struct {
	UserID uint64
	Sim    float64
}

// Neighbors returns the k most cosine-similar users to user (excluding the
// user), descending similarity; ties break by ascending user id. Brute
// force over users — fine at reproduction scale; the production path in
// the paper used SVM ranking precisely because kNN does not scale.
func (knn *KNN) Neighbors(user uint64) ([]Neighbor, error) {
	ia, ok := knn.m.userIdx[user]
	if !ok {
		return nil, nil
	}
	var out []Neighbor
	for ib, id := range knn.m.userIDs {
		if ib == ia {
			continue
		}
		d := knn.m.rowDot(ia, ib)
		if d == 0 {
			continue
		}
		na, nb := knn.m.rowNorm[ia], knn.m.rowNorm[ib]
		if na == 0 || nb == 0 {
			continue
		}
		out = append(out, Neighbor{UserID: id, Sim: d / (na * nb)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].UserID < out[j].UserID
	})
	if len(out) > knn.k {
		out = out[:knn.k]
	}
	return out, nil
}

// ScoreAction predicts user affinity for one action.
func (knn *KNN) ScoreAction(user uint64, action uint32) (float64, error) {
	neigh, err := knn.Neighbors(user)
	if err != nil {
		return 0, err
	}
	var num, den float64
	for _, n := range neigh {
		ib := knn.m.userIdx[n.UserID]
		start, end := knn.m.rowPtr[ib], knn.m.rowPtr[ib+1]
		idx := sort.Search(end-start, func(i int) bool { return knn.m.colIdx[start+i] >= action })
		var w float64
		if idx < end-start && knn.m.colIdx[start+idx] == action {
			w = knn.m.val[start+idx]
		}
		num += n.Sim * w
		den += n.Sim
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// Recommendation is one ranked action.
type Recommendation struct {
	Action uint32
	Score  float64
}

// RecommendTopN returns the n best unseen actions for the user. Users
// without history fall back to global popularity.
func (knn *KNN) RecommendTopN(user uint64, n int) ([]Recommendation, error) {
	if n < 1 {
		return nil, errors.New("cf: n must be >= 1")
	}
	seen := map[uint32]bool{}
	if actions, _, ok := knn.m.Row(user); ok {
		for _, a := range actions {
			seen[a] = true
		}
	} else {
		// Cold start: popularity fallback.
		var out []Recommendation
		for _, a := range knn.m.TopPopular(n) {
			out = append(out, Recommendation{Action: a, Score: knn.m.Popularity(a)})
		}
		return out, nil
	}
	neigh, err := knn.Neighbors(user)
	if err != nil {
		return nil, err
	}
	scores := map[uint32]float64{}
	var simSum float64
	for _, nb := range neigh {
		simSum += nb.Sim
		ib := knn.m.userIdx[nb.UserID]
		start, end := knn.m.rowPtr[ib], knn.m.rowPtr[ib+1]
		for i := start; i < end; i++ {
			a := knn.m.colIdx[i]
			if seen[a] {
				continue
			}
			scores[a] += nb.Sim * knn.m.val[i]
		}
	}
	out := make([]Recommendation, 0, len(scores))
	for a, s := range scores {
		if simSum > 0 {
			s /= simSum
		}
		out = append(out, Recommendation{Action: a, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Action < out[j].Action
	})
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}
